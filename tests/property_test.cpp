// Cross-module property tests: randomized invariants that tie the
// substrates together (simulation vs BDD semantics, retiming legality
// sweeps, fault-collapse soundness under simulation, espresso on wider
// functions, cover algebra laws, ATPG fault-dropping invariance and
// redundancy-vs-reachability agreement).
#include <gtest/gtest.h>

#include <set>

#include "analysis/bddcircuit.h"
#include "analysis/reach.h"
#include "atpg/parallel.h"
#include "fsm/mcnc_suite.h"
#include "base/rng.h"
#include "bdd/bdd.h"
#include "fault/fault.h"
#include "fsim/fsim.h"
#include "netlist/bench_io.h"
#include "netlist/netlist.h"
#include "retime/retime.h"
#include "sim/simulator.h"
#include "synth/cover.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

// Random small sequential circuit: `pis` inputs, `ffs` flip-flops,
// `gates` gates, all-zero FF init, every FF fed from the gate pool.
Netlist random_circuit(std::uint64_t seed, int pis, int ffs, int gates) {
  Rng rng(seed * 1315423911u + 7);
  Netlist nl("rand" + std::to_string(seed));
  std::vector<NodeId> pool;
  for (int i = 0; i < pis; ++i)
    pool.push_back(nl.add_input("i" + std::to_string(i)));
  std::vector<NodeId> dffs;
  for (int i = 0; i < ffs; ++i) {
    const NodeId q = nl.add_dff("q" + std::to_string(i), pool[0],
                                FfInit::kZero);
    dffs.push_back(q);
    pool.push_back(q);
  }
  for (int g = 0; g < gates; ++g) {
    const GateType types[] = {GateType::kAnd, GateType::kOr, GateType::kNand,
                              GateType::kNor, GateType::kXor, GateType::kNot};
    const GateType t = types[rng.next_int(0, 5)];
    const int arity = (t == GateType::kNot) ? 1
                      : (t == GateType::kXor) ? 2
                                              : rng.next_int(2, 4);
    std::vector<NodeId> fanins;
    for (int k = 0; k < arity; ++k)
      fanins.push_back(pool[static_cast<std::size_t>(
          rng.next_int(0, static_cast<int>(pool.size()) - 1))]);
    pool.push_back(nl.add_gate(t, "g" + std::to_string(g), fanins));
  }
  for (std::size_t i = 0; i < dffs.size(); ++i)
    nl.set_fanin(dffs[i], 0,
                 pool[pool.size() - 1 - (i % std::min<std::size_t>(
                                             pool.size(), 5))]);
  nl.add_output("o0", pool.back());
  nl.add_output("o1", pool[pool.size() - 2]);
  return nl;
}

// --- simulation vs BDD semantics -------------------------------------------

class SimVsBdd : public ::testing::TestWithParam<int> {};

TEST_P(SimVsBdd, NodeFunctionsAgreeWithSimulator) {
  const Netlist nl =
      random_circuit(static_cast<std::uint64_t>(GetParam()), 3, 2, 12);
  const BddVarMap vm = BddVarMap::single(
      static_cast<unsigned>(nl.num_dffs()),
      static_cast<unsigned>(nl.num_inputs()));
  BddMgr mgr(vm.total());
  const auto fn = build_node_functions(nl, mgr, vm);

  SeqSimulator sim(nl);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 101);
  for (int round = 0; round < 64; ++round) {
    std::vector<V3> pi(nl.num_inputs());
    std::vector<V3> st(nl.num_dffs());
    std::vector<bool> assign(vm.total(), false);
    for (std::size_t i = 0; i < pi.size(); ++i) {
      const bool b = rng.next_bool();
      pi[i] = b ? V3::kOne : V3::kZero;
      assign[vm.in(static_cast<unsigned>(i))] = b;
    }
    for (std::size_t i = 0; i < st.size(); ++i) {
      const bool b = rng.next_bool();
      st[i] = b ? V3::kOne : V3::kZero;
      assign[vm.ps(static_cast<unsigned>(i))] = b;
    }
    sim.set_state(st);
    sim.eval_outputs(pi);
    for (std::size_t n = 0; n < nl.num_nodes(); ++n) {
      const auto& node = nl.node(static_cast<NodeId>(n));
      if (node.dead) continue;
      const V3 s = sim.value(static_cast<NodeId>(n));
      if (s == V3::kX) continue;
      EXPECT_EQ(mgr.eval(fn[n], assign), s == V3::kOne)
          << "node " << node.name << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimVsBdd, ::testing::Range(0, 8));

// --- retiming legality sweeps ----------------------------------------------

class RetimeLegality : public ::testing::TestWithParam<int> {};

TEST_P(RetimeLegality, DffTargetsAreLegalAndMonotone) {
  const Netlist nl =
      random_circuit(static_cast<std::uint64_t>(GetParam()) + 50, 3, 3, 16);
  if (nl.validate() != std::nullopt) GTEST_SKIP();
  for (std::size_t target : {4u, 8u, 12u}) {
    const RetimeResult r = retime_to_dff_target(
        nl, target, nl.name() + ".t" + std::to_string(target));
    // Legality is CHECKed inside (graph_period); the rebuilt netlist must
    // validate, keep the I/O interface, and keep the gate population.
    // (The achieved FF count is NOT monotone in the target: level sweeps
    // change how fanout chains share registers.)
    EXPECT_EQ(r.netlist.validate(), std::nullopt);
    EXPECT_EQ(r.netlist.num_inputs(), nl.num_inputs());
    EXPECT_EQ(r.netlist.num_outputs(), nl.num_outputs());
    EXPECT_EQ(r.netlist.num_gates(), nl.num_gates());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetimeLegality, ::testing::Range(0, 6));

std::vector<TestSequence> make_test_sequences(const Netlist& nl, int seed) {
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 11);
  std::vector<TestSequence> seqs;
  for (int s = 0; s < 4; ++s) {
    TestSequence seq;
    for (int t = 0; t < 24; ++t) {
      std::vector<V3> v(nl.num_inputs());
      for (auto& x : v) x = rng.next_bool() ? V3::kOne : V3::kZero;
      seq.push_back(std::move(v));
    }
    seqs.push_back(std::move(seq));
  }
  return seqs;
}

// --- fault collapse soundness ----------------------------------------------

class CollapseSoundness : public ::testing::TestWithParam<int> {};

TEST_P(CollapseSoundness, ClassmatesAreDetectionEquivalent) {
  // Every fault in the universe must be detected by a random test set
  // exactly when its class representative is.
  Netlist nl =
      random_circuit(static_cast<std::uint64_t>(GetParam()) + 90, 3, 2, 10);
  for (NodeId ff : nl.dffs()) nl.node_mut(ff).init = FfInit::kUnknown;
  const auto all = enumerate_faults(nl);
  const auto seqs = make_test_sequences(nl, GetParam());
  const auto r_all = run_fault_simulation(nl, all, seqs);

  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> reps;
  for (const auto& cf : collapsed) reps.push_back(cf.representative);
  const auto r_reps = run_fault_simulation(nl, reps, seqs);

  // Build representative detection lookup.
  std::map<Fault, bool> rep_detected;
  for (std::size_t i = 0; i < reps.size(); ++i)
    rep_detected[reps[i]] = r_reps.detected_at[i] >= 0;

  // Equivalence-collapsed faults must agree with their representative on
  // *any* test set. We can't recover the classes from the public API, so
  // check the aggregate: total detections over the universe equal the
  // class-size-weighted detections over representatives.
  std::size_t universe_detected = 0;
  for (std::size_t i = 0; i < all.size(); ++i)
    if (r_all.detected_at[i] >= 0) ++universe_detected;
  std::size_t weighted = 0;
  for (std::size_t i = 0; i < collapsed.size(); ++i)
    if (r_reps.detected_at[i] >= 0)
      weighted += static_cast<std::size_t>(collapsed[i].class_size);
  EXPECT_EQ(universe_detected, weighted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseSoundness, ::testing::Range(0, 6));


// --- cover algebra laws ------------------------------------------------------

TEST(CoverLaws, CofactorOfTautologyIsTautology) {
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    // Build a cover guaranteed tautological: c and its complement cube.
    Cube c;
    c.value = BitVec(6);
    c.care = BitVec(6);
    for (std::size_t b = 0; b < 6; ++b)
      if (rng.next_bool()) {
        c.care.set(b, true);
        c.value.set(b, rng.next_bool());
      }
    // {c} plus, for each cared literal of c, the cube flipping it.
    Cover cover{c};
    for (std::size_t b = c.care.find_first(); b < 6;
         b = c.care.find_next(b)) {
      Cube d;
      d.value = BitVec(6);
      d.care = BitVec(6);
      d.care.set(b, true);
      d.value.set(b, !c.value.get(b));
      cover.push_back(d);
    }
    ASSERT_TRUE(cover_tautology(cover, 6));
    Cube cof;
    cof.value = BitVec(6);
    cof.care = BitVec(6);
    cof.care.set(1, true);
    cof.value.set(1, rng.next_bool());
    EXPECT_TRUE(cover_tautology(cover_cofactor(cover, cof), 6));
  }
}

TEST(CoverLaws, ContainmentIsReflexiveAndAntisymmetricOnCubes) {
  Rng rng(9);
  for (int round = 0; round < 50; ++round) {
    Cube a;
    a.value = BitVec(5);
    a.care = BitVec(5);
    for (std::size_t b = 0; b < 5; ++b)
      if (rng.next_bool()) {
        a.care.set(b, true);
        a.value.set(b, rng.next_bool());
      }
    EXPECT_TRUE(cube_contains(a, a));
    Cube wider = a;
    const std::size_t drop = a.care.find_first();
    if (drop < 5) {
      wider.care.set(drop, false);
      wider.value.set(drop, false);
      EXPECT_TRUE(cube_contains(wider, a));
      EXPECT_FALSE(cube_contains(a, wider));
    }
  }
}

// --- ATPG fault-dropping invariance ------------------------------------------

// Structural fault injection (see differential_oracle_test for the full
// oracle suite around this): reroute readers of the fault site to a
// constant so src/sim simulates the faulty machine directly.
Netlist inject_fault(const Netlist& nl, const Fault& f) {
  Netlist faulty = nl;
  const NodeId c = faulty.add_const(f.stuck1, "fault_const");
  if (f.pin < 0)
    faulty.replace_uses(f.node, c);
  else
    faulty.set_fanin(f.node, static_cast<std::size_t>(f.pin), c);
  return faulty;
}

class AtpgDropInvariance : public ::testing::TestWithParam<int> {};

// Fault dropping (crediting faults that a previously generated test happens
// to detect) is an optimization, not a semantics change: under generous
// budgets the final per-fault verdicts must match a no-drop driver that
// attacks every collapsed fault with a fresh engine.
TEST_P(AtpgDropInvariance, DroppingNeverChangesVerdicts) {
  const Netlist nl =
      random_circuit(static_cast<std::uint64_t>(GetParam()) + 300, 3, 3, 14);
  if (nl.validate() != std::nullopt) GTEST_SKIP();

  ParallelAtpgOptions popts;
  popts.run.random_sequences = 0;  // deterministic phase only: drops do work
  popts.num_threads = 2;
  const auto par = run_parallel_atpg(nl, popts);

  const auto collapsed = collapse_faults(nl);
  ASSERT_EQ(par.status.size(), collapsed.size());
  std::size_t baseline_detected = 0, any_aborted = 0;
  for (std::size_t i = 0; i < collapsed.size(); ++i) {
    AtpgEngine engine(nl, popts.run.engine);  // fresh: no drop, no reuse
    const auto attempt = engine.generate(collapsed[i].representative);
    const std::string what = fault_name(nl, collapsed[i].representative);
    switch (attempt.status) {
      case FaultStatus::kDetected:
        ++baseline_detected;
        // Dropping may only change HOW a fault got detected, never whether.
        EXPECT_EQ(par.status[i], FaultStatus::kDetected) << what;
        break;
      case FaultStatus::kRedundant:
        // Redundant faults are undetectable, so no drop can claim them.
        EXPECT_EQ(par.status[i], FaultStatus::kRedundant) << what;
        break;
      case FaultStatus::kAborted:
        ++any_aborted;
        // A drop may rescue a fault the standalone search gave up on; the
        // claimed detection must then replay under independent simulation.
        if (par.status[i] == FaultStatus::kDetected) {
          ASSERT_GE(par.detected_by[i], 0) << what;
          EXPECT_GE(simulate_fault_serial(
                        nl, collapsed[i].representative,
                        par.run.tests[static_cast<std::size_t>(
                            par.detected_by[i])]),
                    0)
              << what;
        }
        break;
    }
  }
  // With default (generous) budgets these tiny machines should resolve
  // completely, making the invariance check exact:
  if (any_aborted == 0 && par.run.aborted == 0) {
    std::size_t par_detected = 0;
    for (const auto s : par.status)
      if (s == FaultStatus::kDetected) ++par_detected;
    EXPECT_EQ(par_detected, baseline_detected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtpgDropInvariance, ::testing::Range(0, 4));

// --- redundancy vs BDD reachability ------------------------------------------

class RedundancyVsReachability : public ::testing::TestWithParam<int> {};

// Engine-redundant faults must be invisible from every reachable state:
// for each state the BDD reachability analysis enumerates and every input
// vector, the good and fault-injected machines agree on outputs AND next
// state (the engine's proof covers unreachable states too, so this is the
// weaker direction and must always hold).
TEST_P(RedundancyVsReachability, RedundantFaultsInvisibleFromReachableStates) {
  const Netlist nl =
      random_circuit(static_cast<std::uint64_t>(GetParam()) + 400, 3, 2, 10);
  if (nl.validate() != std::nullopt) GTEST_SKIP();

  ParallelAtpgOptions popts;
  popts.run.random_sequences = 0;
  popts.num_threads = 1;
  const auto par = run_parallel_atpg(nl, popts);
  const auto collapsed = collapse_faults(nl);

  std::vector<Fault> redundant;
  for (std::size_t i = 0; i < collapsed.size(); ++i)
    if (par.status[i] == FaultStatus::kRedundant)
      redundant.push_back(collapsed[i].representative);
  if (redundant.empty()) GTEST_SKIP() << "no redundancies at this seed";

  const ReachResult reach = compute_reachable(nl);
  if (!reach.enumerated) GTEST_SKIP() << "state space not enumerated";

  const std::size_t num_pi = nl.num_inputs();
  for (const Fault& f : redundant) {
    const Netlist faulty = inject_fault(nl, f);
    SeqSimulator sg(nl), sf(faulty);
    for (const BitVec& bits : reach.states) {
      std::vector<V3> st(nl.num_dffs());
      for (std::size_t i = 0; i < st.size(); ++i)
        st[i] = bits.get(i) ? V3::kOne : V3::kZero;
      for (std::size_t in = 0; in < (std::size_t{1} << num_pi); ++in) {
        std::vector<V3> pi(num_pi);
        for (std::size_t i = 0; i < num_pi; ++i)
          pi[i] = (in >> i) & 1 ? V3::kOne : V3::kZero;
        sg.set_state(st);
        sf.set_state(st);
        EXPECT_EQ(sg.step(pi), sf.step(pi)) << fault_name(nl, f);
        EXPECT_EQ(sg.next_state(), sf.next_state()) << fault_name(nl, f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedundancyVsReachability,
                         ::testing::Range(0, 6));

// --- CDCL cube-sharing soundness ---------------------------------------------

// The kCdcl engine's cross-fault learning currency is the proven-
// unreachable frame-0 state cube (DESIGN.md §9). Soundness of the whole
// scheme rests on one invariant: a cube may be recorded in the failure
// cache / published to the SharedLearningCache ONLY if it intersects no
// reachable state. Check every exported cube against the exact-BDD
// reachability oracle, across random-circuit seeds and an MCNC machine
// plus its retimed twin (retiming is what manufactures unreachable states,
// so that is where the exports actually happen).
void check_exported_cubes_unreachable(const Netlist& nl) {
  const StateValidityOracle oracle = StateValidityOracle::build(nl);
  if (oracle.info().mode != ValidityOracleInfo::Mode::kExact)
    GTEST_SKIP() << "reachable set not enumerable for " << nl.name();

  EngineOptions eopts;
  eopts.kind = EngineKind::kCdcl;
  eopts.eval_limit = 60'000;
  eopts.backtrack_limit = 200;
  AtpgEngine engine(nl, eopts);
  SharedLearningCache cache;
  SharedLearningCache::View view(&cache, /*read_epoch=*/0);
  engine.set_shared_learning(&view);
  for (const auto& cf : collapse_faults(nl)) engine.generate(cf.representative);
  cache.publish(/*round=*/0, /*unit=*/0, engine);

  // Both the engine-local failure cache and the cubes the shared cache
  // would serve to other workers must be disjoint from the reachable set.
  std::size_t checked = 0;
  for (const StateKey& cube : engine.learned_fail()) {
    EXPECT_EQ(oracle.classify(cube), StateValidity::kInvalid)
        << nl.name() << " local cube " << cube.to_string();
    ++checked;
  }
  for (const StateKey& cube :
       SharedLearningCache::View(&cache, /*read_epoch=*/1).fail_cubes()) {
    EXPECT_EQ(oracle.classify(cube), StateValidity::kInvalid)
        << nl.name() << " shared cube " << cube.to_string();
    ++checked;
  }
  // Silence is not soundness: record how much this circuit exercised.
  ::testing::Test::RecordProperty(nl.name() + "_cubes_checked",
                                  static_cast<int>(checked));
}

class CdclCubeSoundness : public ::testing::TestWithParam<int> {};

TEST_P(CdclCubeSoundness, ExportedCubesNeverExcludeReachableStates) {
  const Netlist nl =
      random_circuit(static_cast<std::uint64_t>(GetParam()) + 500, 3, 3, 14);
  if (nl.validate() != std::nullopt) GTEST_SKIP();
  check_exported_cubes_unreachable(nl);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdclCubeSoundness, ::testing::Range(0, 6));

TEST(CdclCubeSoundness, RetimedMcncTwinExportsOnlyUnreachableCubes) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.35));
  const SynthResult res = synthesize(fsm, {});
  check_exported_cubes_unreachable(res.netlist);
  const RetimeResult rt = retime_to_dff_target(
      res.netlist, 2 * res.netlist.num_dffs(), res.name + ".re");
  check_exported_cubes_unreachable(rt.netlist);
}

// --- bench round trip on random circuits -------------------------------------

class BenchRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BenchRoundTrip, SimulationSurvivesSerialization) {
  const Netlist a =
      random_circuit(static_cast<std::uint64_t>(GetParam()) + 200, 4, 3, 14);
  const Netlist b = read_bench_string(write_bench_string(a), a.name());
  SeqSimulator sa(a), sb(b);
  // .bench drops FF init values (documented): align states explicitly.
  sa.set_state(std::vector<V3>(a.num_dffs(), V3::kZero));
  sb.set_state(std::vector<V3>(b.num_dffs(), V3::kZero));
  Rng rng(3);
  for (int t = 0; t < 100; ++t) {
    std::vector<V3> in(a.num_inputs());
    for (auto& v : in) v = rng.next_bool() ? V3::kOne : V3::kZero;
    EXPECT_EQ(sa.step(in), sb.step(in)) << "cycle " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenchRoundTrip, ::testing::Range(0, 6));

}  // namespace
}  // namespace satpg
