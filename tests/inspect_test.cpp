// Unit tests for the `satpg inspect` analytics layer (harness/inspect):
// artifact detection (events NDJSON vs atpg_run report), hardest-fault
// ranking, provenance aggregation from both source kinds, per-fault
// timelines, trajectory diffs, the v6 --memory view (subsystem table,
// budget verdict, hungriest-fault ranking, pre-v6 rejection), and the
// error paths the CLI maps to exit code 1. All inputs are synthetic strings, so these tests double as the
// byte-stability contract: the expected substrings never depend on the
// machine.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/inspect.h"

namespace satpg {
namespace {

// A small but complete satpg.events.v1 log: two attempted faults; "a s-a-0"
// exports one cube that "b s-a-1" imports twice and hits once as a
// learned-failure.
const char kEventsLog[] =
    "{\"schema\": \"satpg.events.v1\", \"circuit\": \"c17\", \"engine\": "
    "\"cdcl\", \"seed\": 7, \"faults\": 5, \"attempted\": 2}\n"
    "{\"fault\": \"a s-a-0\", \"index\": 0, \"status\": \"aborted\", "
    "\"evals\": 900, \"backtracks\": 9, \"invalid_frac\": 0.25, "
    "\"events\": 2}\n"
    "{\"k\": \"window_grow\", \"at\": 10, \"a\": 2}\n"
    "{\"k\": \"cube_export\", \"at\": 20, \"cube\": \"01X\"}\n"
    "{\"fault\": \"b s-a-1\", \"index\": 3, \"status\": \"detected\", "
    "\"evals\": 400, \"backtracks\": 2, \"invalid_frac\": 0, "
    "\"events\": 3}\n"
    "{\"k\": \"cube_import\", \"at\": 5, \"a\": 1, \"cube\": \"01X\", "
    "\"src\": \"a s-a-0\"}\n"
    "{\"k\": \"cube_import\", \"at\": 30, \"a\": 1, \"cube\": \"01X\", "
    "\"src\": \"a s-a-0\"}\n"
    "{\"k\": \"learn_hit\", \"at\": 44, \"a\": 1, \"cube\": \"01X\", "
    "\"src\": \"a s-a-0\"}\n";

std::string report_text(const char* circuit, int evals_b) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"satpg.atpg_run.v5\",\n"
     << "  \"circuit\": {\"name\": \"" << circuit << "\"},\n"
     << "  \"engine\": {\"kind\": \"cdcl\", \"seed\": 7},\n"
     << "  \"summary\": {\"total_faults\": 5, \"fault_coverage\": 80,\n"
     << "    \"fault_efficiency\": 100, \"evals\": " << 900 + evals_b
     << ", \"cube_exports\": 1},\n"
     << "  \"fe_trace\": [[900, 50.0], [" << 900 + evals_b << ", 100.0]],\n"
     << "  \"per_fault\": [\n"
     << "    {\"fault\": \"a s-a-0\", \"status\": \"aborted\", "
        "\"attempted\": true, \"evals\": 900, \"backtracks\": 9, "
        "\"effort_invalid_frac\": 0.25, \"cube_exports\": 1, "
        "\"cube_sources\": []},\n"
     << "    {\"fault\": \"b s-a-1\", \"status\": \"detected\", "
        "\"attempted\": true, \"evals\": " << evals_b
     << ", \"backtracks\": 2, \"effort_invalid_frac\": 0, "
        "\"cube_exports\": 0, \"cube_sources\": [{\"from\": \"a s-a-0\", "
        "\"epoch\": 1, \"hits\": 3}]}\n"
     << "  ],\n"
     << "  \"cube_provenance\": {\"exports\": 1, \"import_hits\": 3, "
        "\"exporters\": [\n"
     << "    {\"fault\": \"a s-a-0\", \"cubes\": 1, \"beneficiaries\": 1, "
        "\"hits\": 3}]}\n}\n";
  return os.str();
}

std::string inspect_text(const std::string& src, const InspectOptions& opts) {
  std::ostringstream os;
  std::string err;
  EXPECT_TRUE(inspect_source(os, src, opts, &err)) << err;
  return os.str();
}

TEST(InspectTest, EventLogOverviewRanksAndAggregates) {
  const std::string out = inspect_text(kEventsLog, {});
  EXPECT_NE(out.find("event log satpg.events.v1"), std::string::npos);
  EXPECT_NE(out.find("faults: 5 total, 2 attempted"), std::string::npos);
  // Ranking: a s-a-0 (900 evals) above b s-a-1 (400).
  const std::size_t pos_a = out.find("a s-a-0");
  const std::size_t pos_b = out.find("b s-a-1");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  // Provenance derived from the events: 1 export, 3 hits (2 imports +
  // 1 learned-failure hit), all attributed to the exporter.
  EXPECT_NE(out.find("cube provenance: 1 exports, 3 import hits"),
            std::string::npos);
}

TEST(InspectTest, ReportOverviewUsesTheRollupBlock) {
  const std::string out = inspect_text(report_text("c17", 400), {});
  EXPECT_NE(out.find("report satpg.atpg_run.v5"), std::string::npos);
  EXPECT_NE(out.find("cube provenance: 1 exports, 3 import hits"),
            std::string::npos);
}

TEST(InspectTest, EventsAndReportAgreeOnTheProvenanceGraph) {
  // The acceptance property: both artifacts of the same run describe the
  // same exporter -> beneficiary graph.
  const std::string from_events = inspect_text(kEventsLog, {});
  const std::string from_report = inspect_text(report_text("c17", 400), {});
  const std::size_t pe = from_events.find("cube provenance:");
  const std::size_t pr = from_report.find("cube provenance:");
  ASSERT_NE(pe, std::string::npos) << from_events;
  ASSERT_NE(pr, std::string::npos) << from_report;
  EXPECT_EQ(from_events.substr(pe), from_report.substr(pr));
  EXPECT_NE(from_events.find("a s-a-0", pe), std::string::npos);
}

TEST(InspectTest, FaultTimelineByNameAndIndex) {
  InspectOptions by_name;
  by_name.fault = "b s-a-1";
  const std::string out = inspect_text(kEventsLog, by_name);
  EXPECT_NE(out.find("timeline (3 events"), std::string::npos);
  EXPECT_NE(out.find("cube_import"), std::string::npos);
  EXPECT_NE(out.find("src=a s-a-0 epoch=1"), std::string::npos);

  InspectOptions by_index;
  by_index.fault = "3";  // collapsed-fault index of b s-a-1
  EXPECT_EQ(out, inspect_text(kEventsLog, by_index));
}

TEST(InspectTest, UnknownFaultFailsWithoutOutput) {
  std::ostringstream os;
  InspectOptions opts;
  opts.fault = "no such fault";
  std::string err;
  EXPECT_FALSE(inspect_source(os, kEventsLog, opts, &err));
  EXPECT_TRUE(os.str().empty());
  EXPECT_NE(err.find("not found"), std::string::npos);
}

TEST(InspectTest, MalformedInputFails) {
  std::ostringstream os;
  std::string err;
  EXPECT_FALSE(inspect_source(os, "not json at all", {}, &err));
  EXPECT_FALSE(inspect_source(
      os, "{\"schema\": \"satpg.other.v1\", \"summary\": {}}", {}, &err));
  EXPECT_NE(err.find("not an event log"), std::string::npos);
}

TEST(InspectTest, JsonFormatIsValidAndStable) {
  InspectOptions opts;
  opts.json = true;
  const std::string a = inspect_text(kEventsLog, opts);
  EXPECT_NE(a.find("\"schema\": \"satpg.inspect.v1\""), std::string::npos);
  EXPECT_NE(a.find("\"kind\": \"events\""), std::string::npos);
  // Pure function of the input text.
  EXPECT_EQ(a, inspect_text(kEventsLog, opts));
}

TEST(InspectDiffTest, TrajectoryDiffFindsDivergence) {
  std::ostringstream os;
  std::string err;
  ASSERT_TRUE(inspect_diff(os, report_text("c17", 400),
                           report_text("c17.re", 700), {}, &err))
      << err;
  const std::string out = os.str();
  EXPECT_NE(out.find("trajectory diff: c17 (cdcl) -> c17.re (cdcl)"),
            std::string::npos);
  // b s-a-1 grew 400 -> 700; a s-a-0 is identical in both runs.
  EXPECT_NE(out.find("b s-a-1"), std::string::npos);
  EXPECT_EQ(out.find("a s-a-0  aborted"), std::string::npos);
  // Milestones read off the fe_trace.
  EXPECT_NE(out.find("fault-efficiency milestones"), std::string::npos);
}

TEST(InspectDiffTest, IdenticalRunsDiffClean) {
  std::ostringstream os;
  std::string err;
  ASSERT_TRUE(inspect_diff(os, report_text("c17", 400),
                           report_text("c17", 400), {}, &err))
      << err;
  EXPECT_NE(os.str().find("per-fault trajectories identical"),
            std::string::npos);
}

TEST(InspectDiffTest, EventLogsAreRejected) {
  std::ostringstream os;
  std::string err;
  EXPECT_FALSE(
      inspect_diff(os, kEventsLog, report_text("c17", 400), {}, &err));
  EXPECT_NE(err.find("atpg_run reports"), std::string::npos);
}

// A minimal v6 report with the DESIGN.md §11 memory surface: two
// subsystems with activity, a tripped budget, per-fault peak_bytes.
std::string report_text_v6() {
  return
      "{\n  \"schema\": \"satpg.atpg_run.v6\",\n"
      "  \"circuit\": {\"name\": \"c17\"},\n"
      "  \"engine\": {\"kind\": \"cdcl\", \"seed\": 7},\n"
      "  \"watchdog\": {\"memory\": {\"budget\": 1000, \"tripped\": 1, "
      "\"requeued\": 1, \"verdict\": \"degraded\"}},\n"
      "  \"summary\": {\"total_faults\": 2, \"fault_coverage\": 100,\n"
      "    \"fault_efficiency\": 100, \"evals\": 1300, \"cube_exports\": 0},\n"
      "  \"per_fault\": [\n"
      "    {\"fault\": \"a s-a-0\", \"status\": \"detected\", "
      "\"attempted\": true, \"evals\": 900, \"peak_bytes\": 1500, "
      "\"cube_sources\": []},\n"
      "    {\"fault\": \"b s-a-1\", \"status\": \"detected\", "
      "\"attempted\": true, \"evals\": 400, \"peak_bytes\": 700, "
      "\"cube_sources\": []}\n"
      "  ],\n"
      "  \"memory\": {\"subsystems\": {\n"
      "    \"cdcl_clause_db\": {\"live\": 0, \"peak\": 1400, "
      "\"allocated\": 2000, \"allocs\": 4},\n"
      "    \"cnf_encoder\": {\"live\": 0, \"peak\": 100, "
      "\"allocated\": 200, \"allocs\": 2}},\n"
      "   \"total\": {\"live\": 0, \"peak\": 1500, \"allocated\": 2200}}\n"
      "}\n";
}

TEST(InspectMemoryTest, RendersSubsystemsBudgetAndHungriestFaults) {
  InspectOptions opts;
  opts.memory = true;
  const std::string out = inspect_text(report_text_v6(), opts);
  EXPECT_NE(out.find("cdcl_clause_db"), std::string::npos);
  EXPECT_NE(out.find("1400"), std::string::npos);
  EXPECT_NE(out.find("verdict: degraded"), std::string::npos);
  EXPECT_NE(out.find("hungriest faults"), std::string::npos);
  // Ranked by peak bytes: a s-a-0 (1500) above b s-a-1 (700).
  const std::size_t pos_a = out.find("a s-a-0");
  const std::size_t pos_b = out.find("b s-a-1");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);

  InspectOptions jopts = opts;
  jopts.json = true;
  const std::string json = inspect_text(report_text_v6(), jopts);
  EXPECT_NE(json.find("\"schema\": \"satpg.inspect_memory.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"budget\""), std::string::npos);
}

TEST(InspectMemoryTest, SourcesWithoutTheBlockAreRejected) {
  InspectOptions opts;
  opts.memory = true;
  std::ostringstream os;
  std::string err;
  // Pre-v6 report: parses, but carries no memory block.
  EXPECT_FALSE(inspect_source(os, report_text("c17", 400), opts, &err));
  EXPECT_NE(err.find("no memory block"), std::string::npos);
  // Event logs never carry one.
  err.clear();
  EXPECT_FALSE(inspect_source(os, kEventsLog, opts, &err));
  EXPECT_NE(err.find("no memory block"), std::string::npos);
  EXPECT_TRUE(os.str().empty()) << "error paths must write nothing";
}

}  // namespace
}  // namespace satpg
