// Unit tests for the `satpg inspect` analytics layer (harness/inspect):
// artifact detection (events NDJSON vs atpg_run report), hardest-fault
// ranking, provenance aggregation from both source kinds, per-fault
// timelines, trajectory diffs, the v6 --memory view (subsystem table,
// budget verdict, hungriest-fault ranking, pre-v6 rejection), the §12
// --profile view (ranked phase table, fallback-backend "-" columns,
// non-sidecar rejection), the --trend view (config-keyed profile join,
// last-sidecar-wins, error paths), and the error paths the CLI maps to
// exit code 1. All inputs are synthetic strings, so these tests double
// as the byte-stability contract: the expected substrings never depend
// on the machine.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/inspect.h"

namespace satpg {
namespace {

// A small but complete satpg.events.v1 log: two attempted faults; "a s-a-0"
// exports one cube that "b s-a-1" imports twice and hits once as a
// learned-failure.
const char kEventsLog[] =
    "{\"schema\": \"satpg.events.v1\", \"circuit\": \"c17\", \"engine\": "
    "\"cdcl\", \"seed\": 7, \"faults\": 5, \"attempted\": 2}\n"
    "{\"fault\": \"a s-a-0\", \"index\": 0, \"status\": \"aborted\", "
    "\"evals\": 900, \"backtracks\": 9, \"invalid_frac\": 0.25, "
    "\"events\": 2}\n"
    "{\"k\": \"window_grow\", \"at\": 10, \"a\": 2}\n"
    "{\"k\": \"cube_export\", \"at\": 20, \"cube\": \"01X\"}\n"
    "{\"fault\": \"b s-a-1\", \"index\": 3, \"status\": \"detected\", "
    "\"evals\": 400, \"backtracks\": 2, \"invalid_frac\": 0, "
    "\"events\": 3}\n"
    "{\"k\": \"cube_import\", \"at\": 5, \"a\": 1, \"cube\": \"01X\", "
    "\"src\": \"a s-a-0\"}\n"
    "{\"k\": \"cube_import\", \"at\": 30, \"a\": 1, \"cube\": \"01X\", "
    "\"src\": \"a s-a-0\"}\n"
    "{\"k\": \"learn_hit\", \"at\": 44, \"a\": 1, \"cube\": \"01X\", "
    "\"src\": \"a s-a-0\"}\n";

std::string report_text(const char* circuit, int evals_b) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"satpg.atpg_run.v5\",\n"
     << "  \"circuit\": {\"name\": \"" << circuit << "\"},\n"
     << "  \"engine\": {\"kind\": \"cdcl\", \"seed\": 7},\n"
     << "  \"summary\": {\"total_faults\": 5, \"fault_coverage\": 80,\n"
     << "    \"fault_efficiency\": 100, \"evals\": " << 900 + evals_b
     << ", \"cube_exports\": 1},\n"
     << "  \"fe_trace\": [[900, 50.0], [" << 900 + evals_b << ", 100.0]],\n"
     << "  \"per_fault\": [\n"
     << "    {\"fault\": \"a s-a-0\", \"status\": \"aborted\", "
        "\"attempted\": true, \"evals\": 900, \"backtracks\": 9, "
        "\"effort_invalid_frac\": 0.25, \"cube_exports\": 1, "
        "\"cube_sources\": []},\n"
     << "    {\"fault\": \"b s-a-1\", \"status\": \"detected\", "
        "\"attempted\": true, \"evals\": " << evals_b
     << ", \"backtracks\": 2, \"effort_invalid_frac\": 0, "
        "\"cube_exports\": 0, \"cube_sources\": [{\"from\": \"a s-a-0\", "
        "\"epoch\": 1, \"hits\": 3}]}\n"
     << "  ],\n"
     << "  \"cube_provenance\": {\"exports\": 1, \"import_hits\": 3, "
        "\"exporters\": [\n"
     << "    {\"fault\": \"a s-a-0\", \"cubes\": 1, \"beneficiaries\": 1, "
        "\"hits\": 3}]}\n}\n";
  return os.str();
}

std::string inspect_text(const std::string& src, const InspectOptions& opts) {
  std::ostringstream os;
  std::string err;
  EXPECT_TRUE(inspect_source(os, src, opts, &err)) << err;
  return os.str();
}

TEST(InspectTest, EventLogOverviewRanksAndAggregates) {
  const std::string out = inspect_text(kEventsLog, {});
  EXPECT_NE(out.find("event log satpg.events.v1"), std::string::npos);
  EXPECT_NE(out.find("faults: 5 total, 2 attempted"), std::string::npos);
  // Ranking: a s-a-0 (900 evals) above b s-a-1 (400).
  const std::size_t pos_a = out.find("a s-a-0");
  const std::size_t pos_b = out.find("b s-a-1");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  // Provenance derived from the events: 1 export, 3 hits (2 imports +
  // 1 learned-failure hit), all attributed to the exporter.
  EXPECT_NE(out.find("cube provenance: 1 exports, 3 import hits"),
            std::string::npos);
}

TEST(InspectTest, ReportOverviewUsesTheRollupBlock) {
  const std::string out = inspect_text(report_text("c17", 400), {});
  EXPECT_NE(out.find("report satpg.atpg_run.v5"), std::string::npos);
  EXPECT_NE(out.find("cube provenance: 1 exports, 3 import hits"),
            std::string::npos);
}

TEST(InspectTest, EventsAndReportAgreeOnTheProvenanceGraph) {
  // The acceptance property: both artifacts of the same run describe the
  // same exporter -> beneficiary graph.
  const std::string from_events = inspect_text(kEventsLog, {});
  const std::string from_report = inspect_text(report_text("c17", 400), {});
  const std::size_t pe = from_events.find("cube provenance:");
  const std::size_t pr = from_report.find("cube provenance:");
  ASSERT_NE(pe, std::string::npos) << from_events;
  ASSERT_NE(pr, std::string::npos) << from_report;
  EXPECT_EQ(from_events.substr(pe), from_report.substr(pr));
  EXPECT_NE(from_events.find("a s-a-0", pe), std::string::npos);
}

TEST(InspectTest, FaultTimelineByNameAndIndex) {
  InspectOptions by_name;
  by_name.fault = "b s-a-1";
  const std::string out = inspect_text(kEventsLog, by_name);
  EXPECT_NE(out.find("timeline (3 events"), std::string::npos);
  EXPECT_NE(out.find("cube_import"), std::string::npos);
  EXPECT_NE(out.find("src=a s-a-0 epoch=1"), std::string::npos);

  InspectOptions by_index;
  by_index.fault = "3";  // collapsed-fault index of b s-a-1
  EXPECT_EQ(out, inspect_text(kEventsLog, by_index));
}

TEST(InspectTest, UnknownFaultFailsWithoutOutput) {
  std::ostringstream os;
  InspectOptions opts;
  opts.fault = "no such fault";
  std::string err;
  EXPECT_FALSE(inspect_source(os, kEventsLog, opts, &err));
  EXPECT_TRUE(os.str().empty());
  EXPECT_NE(err.find("not found"), std::string::npos);
}

TEST(InspectTest, MalformedInputFails) {
  std::ostringstream os;
  std::string err;
  EXPECT_FALSE(inspect_source(os, "not json at all", {}, &err));
  EXPECT_FALSE(inspect_source(
      os, "{\"schema\": \"satpg.other.v1\", \"summary\": {}}", {}, &err));
  EXPECT_NE(err.find("not an event log"), std::string::npos);
}

TEST(InspectTest, JsonFormatIsValidAndStable) {
  InspectOptions opts;
  opts.json = true;
  const std::string a = inspect_text(kEventsLog, opts);
  EXPECT_NE(a.find("\"schema\": \"satpg.inspect.v1\""), std::string::npos);
  EXPECT_NE(a.find("\"kind\": \"events\""), std::string::npos);
  // Pure function of the input text.
  EXPECT_EQ(a, inspect_text(kEventsLog, opts));
}

TEST(InspectDiffTest, TrajectoryDiffFindsDivergence) {
  std::ostringstream os;
  std::string err;
  ASSERT_TRUE(inspect_diff(os, report_text("c17", 400),
                           report_text("c17.re", 700), {}, &err))
      << err;
  const std::string out = os.str();
  EXPECT_NE(out.find("trajectory diff: c17 (cdcl) -> c17.re (cdcl)"),
            std::string::npos);
  // b s-a-1 grew 400 -> 700; a s-a-0 is identical in both runs.
  EXPECT_NE(out.find("b s-a-1"), std::string::npos);
  EXPECT_EQ(out.find("a s-a-0  aborted"), std::string::npos);
  // Milestones read off the fe_trace.
  EXPECT_NE(out.find("fault-efficiency milestones"), std::string::npos);
}

TEST(InspectDiffTest, IdenticalRunsDiffClean) {
  std::ostringstream os;
  std::string err;
  ASSERT_TRUE(inspect_diff(os, report_text("c17", 400),
                           report_text("c17", 400), {}, &err))
      << err;
  EXPECT_NE(os.str().find("per-fault trajectories identical"),
            std::string::npos);
}

TEST(InspectDiffTest, EventLogsAreRejected) {
  std::ostringstream os;
  std::string err;
  EXPECT_FALSE(
      inspect_diff(os, kEventsLog, report_text("c17", 400), {}, &err));
  EXPECT_NE(err.find("atpg_run reports"), std::string::npos);
}

// A minimal v6 report with the DESIGN.md §11 memory surface: two
// subsystems with activity, a tripped budget, per-fault peak_bytes.
std::string report_text_v6() {
  return
      "{\n  \"schema\": \"satpg.atpg_run.v6\",\n"
      "  \"circuit\": {\"name\": \"c17\"},\n"
      "  \"engine\": {\"kind\": \"cdcl\", \"seed\": 7},\n"
      "  \"watchdog\": {\"memory\": {\"budget\": 1000, \"tripped\": 1, "
      "\"requeued\": 1, \"verdict\": \"degraded\"}},\n"
      "  \"summary\": {\"total_faults\": 2, \"fault_coverage\": 100,\n"
      "    \"fault_efficiency\": 100, \"evals\": 1300, \"cube_exports\": 0},\n"
      "  \"per_fault\": [\n"
      "    {\"fault\": \"a s-a-0\", \"status\": \"detected\", "
      "\"attempted\": true, \"evals\": 900, \"peak_bytes\": 1500, "
      "\"cube_sources\": []},\n"
      "    {\"fault\": \"b s-a-1\", \"status\": \"detected\", "
      "\"attempted\": true, \"evals\": 400, \"peak_bytes\": 700, "
      "\"cube_sources\": []}\n"
      "  ],\n"
      "  \"memory\": {\"subsystems\": {\n"
      "    \"cdcl_clause_db\": {\"live\": 0, \"peak\": 1400, "
      "\"allocated\": 2000, \"allocs\": 4},\n"
      "    \"cnf_encoder\": {\"live\": 0, \"peak\": 100, "
      "\"allocated\": 200, \"allocs\": 2}},\n"
      "   \"total\": {\"live\": 0, \"peak\": 1500, \"allocated\": 2200}}\n"
      "}\n";
}

TEST(InspectMemoryTest, RendersSubsystemsBudgetAndHungriestFaults) {
  InspectOptions opts;
  opts.memory = true;
  const std::string out = inspect_text(report_text_v6(), opts);
  EXPECT_NE(out.find("cdcl_clause_db"), std::string::npos);
  EXPECT_NE(out.find("1400"), std::string::npos);
  EXPECT_NE(out.find("verdict: degraded"), std::string::npos);
  EXPECT_NE(out.find("hungriest faults"), std::string::npos);
  // Ranked by peak bytes: a s-a-0 (1500) above b s-a-1 (700).
  const std::size_t pos_a = out.find("a s-a-0");
  const std::size_t pos_b = out.find("b s-a-1");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);

  InspectOptions jopts = opts;
  jopts.json = true;
  const std::string json = inspect_text(report_text_v6(), jopts);
  EXPECT_NE(json.find("\"schema\": \"satpg.inspect_memory.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"budget\""), std::string::npos);
}

TEST(InspectMemoryTest, SourcesWithoutTheBlockAreRejected) {
  InspectOptions opts;
  opts.memory = true;
  std::ostringstream os;
  std::string err;
  // Pre-v6 report: parses, but carries no memory block.
  EXPECT_FALSE(inspect_source(os, report_text("c17", 400), opts, &err));
  EXPECT_NE(err.find("no memory block"), std::string::npos);
  // Event logs never carry one.
  err.clear();
  EXPECT_FALSE(inspect_source(os, kEventsLog, opts, &err));
  EXPECT_NE(err.find("no memory block"), std::string::npos);
  EXPECT_TRUE(os.str().empty()) << "error paths must write nothing";
}

// A minimal satpg.profile.v1 sidecar whose circuit/engine identity block
// matches report_text(circuit, ...) — so it joins in the trend view.
// `with_cycles` models the perf_event backend; without it, the fallback.
std::string profile_text(const char* circuit, double evals_per_second,
                         bool with_cycles = false) {
  std::ostringstream os;
  const char* cyc = with_cycles ? "4000000" : "0";
  os << "{\n  \"schema\": \"satpg.profile.v1\",\n"
     << "  \"tool\": \"atpg\",\n"
     << "  \"circuit\": {\"name\": \"" << circuit << "\"},\n"
     << "  \"engine\": {\"kind\": \"cdcl\", \"seed\": 7},\n"
     << "  \"backend\": \"" << (with_cycles ? "perf_event" : "fallback")
     << "\",\n"
     << "  \"wall_seconds\": 0.5,\n"
     << "  \"work\": {\"evals\": 1300, \"patterns\": 0},\n"
     << "  \"phases\": {\n"
     << "    \"cdcl.propagate\": {\"subsystem\": \"cdcl\", \"calls\": 10, "
        "\"task_clock_ns\": 9000000, \"cycles\": " << cyc
     << ", \"instructions\": " << (with_cycles ? "8000000" : "0") << "},\n"
     << "    \"fsim.good\": {\"subsystem\": \"fsim\", \"calls\": 4, "
        "\"task_clock_ns\": 1000000, \"cycles\": 0, \"instructions\": 0},\n"
     << "    \"podem.justify\": {\"subsystem\": \"podem\", \"calls\": 0, "
        "\"task_clock_ns\": 0, \"cycles\": 0, \"instructions\": 0}},\n"
     << "  \"total\": {\"calls\": 14, \"task_clock_ns\": 10000000, "
        "\"cycles\": " << cyc << "},\n"
     << "  \"derived\": {\"evals_per_second\": " << evals_per_second;
  if (with_cycles) os << ", \"cycles_per_eval\": 3076.92";
  os << "}\n}\n";
  return os.str();
}

TEST(InspectProfileTest, RendersRankedPhaseTable) {
  InspectOptions opts;
  opts.profile = true;
  const std::string out = inspect_text(profile_text("c17", 2600.0), opts);
  EXPECT_NE(out.find("backend: fallback"), std::string::npos);
  EXPECT_NE(out.find("1300 evals"), std::string::npos);
  // Ranked by task-clock: propagate (9 ms) above fsim.good (1 ms); the
  // zero-call podem.justify row is dropped entirely.
  const std::size_t pos_prop = out.find("cdcl.propagate");
  const std::size_t pos_good = out.find("fsim.good");
  ASSERT_NE(pos_prop, std::string::npos);
  ASSERT_NE(pos_good, std::string::npos);
  EXPECT_LT(pos_prop, pos_good);
  EXPECT_EQ(out.find("podem.justify"), std::string::npos);
  // Task-clock shares: 90.0% / 10.0% of the 10 ms total.
  EXPECT_NE(out.find("90.0"), std::string::npos);
  // Fallback backend: cycle-derived columns render "-", never 0.
  EXPECT_NE(out.find("-"), std::string::npos);
  EXPECT_NE(out.find("evals_per_second"), std::string::npos);

  // perf_event sidecar: cycles and IPC (8e6 instructions / 4e6 cycles).
  const std::string perf =
      inspect_text(profile_text("c17", 2600.0, true), opts);
  EXPECT_NE(perf.find("backend: perf_event"), std::string::npos);
  EXPECT_NE(perf.find("2.00"), std::string::npos) << "ipc column";
  EXPECT_NE(perf.find("cycles_per_eval"), std::string::npos);
}

TEST(InspectProfileTest, JsonFormatIsValidAndStable) {
  InspectOptions opts;
  opts.profile = true;
  opts.json = true;
  const std::string a = inspect_text(profile_text("c17", 2600.0), opts);
  EXPECT_NE(a.find("\"schema\": \"satpg.inspect_profile.v1\""),
            std::string::npos);
  EXPECT_NE(a.find("\"backend\": \"fallback\""), std::string::npos);
  EXPECT_NE(a.find("\"phase\": \"cdcl.propagate\""), std::string::npos);
  EXPECT_NE(a.find("\"evals_per_second\": 2600"), std::string::npos);
  EXPECT_EQ(a, inspect_text(profile_text("c17", 2600.0), opts));
}

TEST(InspectProfileTest, NonProfileSourcesAreRejected) {
  InspectOptions opts;
  opts.profile = true;
  std::ostringstream os;
  std::string err;
  EXPECT_FALSE(inspect_source(os, report_text("c17", 400), opts, &err));
  EXPECT_NE(err.find("not a profile sidecar"), std::string::npos);
  err.clear();
  EXPECT_FALSE(inspect_source(os, kEventsLog, opts, &err));
  EXPECT_TRUE(os.str().empty()) << "error paths must write nothing";
}

std::string trend_text(const std::vector<TrendEntry>& entries,
                       const InspectOptions& opts) {
  std::ostringstream os;
  std::string err;
  EXPECT_TRUE(inspect_trend(os, entries, opts, &err)) << err;
  return os.str();
}

TEST(InspectTrendTest, JoinsProfilesByConfigInAppendOrder) {
  // Run 1 (c17) has a matching sidecar; run 2 (c17.re) does not — its
  // row joins to "-". The sidecar's position in append order is
  // irrelevant: the join key is the circuit/engine configuration.
  const std::vector<TrendEntry> entries = {
      {"aaaa000000000001", report_text("c17", 400)},
      {"bbbb000000000002", report_text("c17.re", 700)},
      {"cccc000000000003", profile_text("c17", 2600.0)},
  };
  const std::string out = trend_text(entries, {});
  EXPECT_NE(out.find("2 archived runs, 1 profile sidecar"),
            std::string::npos);
  // Rows stay in append order, abbreviated to 12 hash chars.
  const std::size_t pos_1 = out.find("aaaa00000000");
  const std::size_t pos_2 = out.find("bbbb00000000");
  ASSERT_NE(pos_1, std::string::npos);
  ASSERT_NE(pos_2, std::string::npos);
  EXPECT_LT(pos_1, pos_2);
  EXPECT_NE(out.find("2600"), std::string::npos) << "joined evals/s";

  InspectOptions jopts;
  jopts.json = true;
  const std::string json = trend_text(entries, jopts);
  EXPECT_NE(json.find("\"schema\": \"satpg.inspect_trend.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"evals_per_second\": 2600"), std::string::npos);
  EXPECT_NE(json.find("\"profile\": null"), std::string::npos)
      << "the unmatched c17.re row must say so explicitly";
  // Fallback sidecar: no cycles_per_eval key, rather than a bogus 0.
  EXPECT_EQ(json.find("cycles_per_eval"), std::string::npos);
  EXPECT_EQ(json, trend_text(entries, jopts)) << "byte-stable";
}

TEST(InspectTrendTest, LastSidecarPerConfigWins) {
  // Re-profiling a configuration supersedes the older sidecar.
  const std::vector<TrendEntry> entries = {
      {"aaaa000000000001", profile_text("c17", 1111.0)},
      {"bbbb000000000002", report_text("c17", 400)},
      {"cccc000000000003", profile_text("c17", 2222.0)},
  };
  const std::string out = trend_text(entries, {});
  EXPECT_NE(out.find("2222"), std::string::npos);
  EXPECT_EQ(out.find("1111"), std::string::npos);
}

TEST(InspectTrendTest, ErrorPaths) {
  std::ostringstream os;
  std::string err;
  // A malformed archived document names the offending entry.
  EXPECT_FALSE(inspect_trend(
      os, {{"deadbeef00000000", "not json"}}, {}, &err));
  EXPECT_NE(err.find("deadbeef"), std::string::npos);
  // Profiles alone make no trend: there is nothing to put in a row.
  err.clear();
  EXPECT_FALSE(inspect_trend(
      os, {{"aaaa000000000001", profile_text("c17", 2600.0)}}, {}, &err));
  EXPECT_NE(err.find("no atpg_run reports"), std::string::npos);
  // So does an empty archive.
  err.clear();
  EXPECT_FALSE(inspect_trend(os, {}, {}, &err));
  EXPECT_TRUE(os.str().empty()) << "error paths must write nothing";
}

}  // namespace
}  // namespace satpg
