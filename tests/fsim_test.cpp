// Tests for the sequential fault simulators: known detections on a hand
// circuit, parallel == serial cross-checks on synthesized machines, state
// tracking, potential-detection semantics, thread-count determinism, and
// the packed StateKey encoding.
#include <gtest/gtest.h>

#include "atpg/engine.h"
#include "base/rng.h"
#include "fsim/fsim.h"
#include "fsm/mcnc_suite.h"
#include "retime/retime.h"
#include "sim/statekey.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

// 1-bit toggle with reset: q' = rst ? 0 : !q ; out = q.
Netlist toggler() {
  Netlist nl("tog");
  const NodeId rst = nl.add_input("rst");
  const NodeId q = nl.add_dff("q", rst, FfInit::kUnknown);
  const NodeId nq = nl.add_gate(GateType::kNot, "nq", {q});
  const NodeId nrst = nl.add_gate(GateType::kNot, "nrst", {rst});
  const NodeId d = nl.add_gate(GateType::kAnd, "d", {nq, nrst});
  nl.set_fanin(q, 0, d);
  nl.add_output("o", q);
  return nl;
}

TestSequence seq_of(std::initializer_list<int> rst_bits) {
  TestSequence s;
  for (int b : rst_bits) s.push_back({b ? V3::kOne : V3::kZero});
  return s;
}

TEST(SerialFsimTest, DetectsStuckToggle) {
  const Netlist nl = toggler();
  // Fault: d s-a-0 (q never becomes 1). rst=1, then run: good q goes
  // 0,1,0,1...; faulty stays 0. First difference at cycle 2 (q==1 good).
  const Fault f{nl.find("d"), -1, false};
  const int t = simulate_fault_serial(nl, f, seq_of({1, 0, 0, 0}));
  EXPECT_EQ(t, 2);
}

TEST(SerialFsimTest, UndetectedWithoutExcitation) {
  const Netlist nl = toggler();
  const Fault f{nl.find("d"), -1, false};
  // Holding reset forever: q stays 0 in both machines.
  EXPECT_EQ(simulate_fault_serial(nl, f, seq_of({1, 1, 1, 1})), -1);
}

TEST(SerialFsimTest, XInitBlocksStrictDetection) {
  const Netlist nl = toggler();
  // Without reset the good machine stays X: strict detection impossible.
  const Fault f{nl.find("d"), -1, false};
  EXPECT_EQ(simulate_fault_serial(nl, f, seq_of({0, 0, 0, 0})), -1);
}

TEST(ParallelFsimTest, MatchesSerialOnToggler) {
  const Netlist nl = toggler();
  const auto faults = enumerate_faults(nl);
  const TestSequence seq = seq_of({1, 0, 0, 0, 1, 0, 0});
  const auto par = run_fault_simulation(nl, faults, {seq});
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const bool serial = simulate_fault_serial(nl, faults[i], seq) >= 0;
    EXPECT_EQ(par.detected_at[i] >= 0, serial)
        << fault_name(nl, faults[i]);
  }
}

// Property: parallel == serial on a synthesized machine and random tests.
class FsimEquiv : public ::testing::TestWithParam<int> {};

TEST_P(FsimEquiv, ParallelMatchesSerial) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  spec.seed += static_cast<std::uint64_t>(GetParam());
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.4));
  const SynthResult res = synthesize(fsm, {});
  const Netlist& nl = res.netlist;

  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  for (const auto& cf : collapsed) faults.push_back(cf.representative);
  const auto seqs = make_random_sequences(
      nl, 3, 24, static_cast<std::uint64_t>(GetParam()) * 7 + 1);

  const auto par = run_fault_simulation(nl, faults, seqs);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    int serial_at = -1;
    for (std::size_t s = 0; s < seqs.size() && serial_at < 0; ++s)
      if (simulate_fault_serial(nl, faults[i], seqs[s]) >= 0)
        serial_at = static_cast<int>(s);
    // Parallel drops faults at first detection, so indices must agree.
    EXPECT_EQ(par.detected_at[i], serial_at) << fault_name(nl, faults[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsimEquiv, ::testing::Range(0, 4));

TEST(FsimTest, TracksGoodStates) {
  const Netlist nl = toggler();
  const auto r = run_fault_simulation(nl, {}, {seq_of({1, 0, 0, 0})});
  // States entered after each cycle: 0, 1, 0, 1 -> {"0", "1"}.
  EXPECT_EQ(r.good_states.size(), 2u);
  EXPECT_TRUE(r.good_states.count(StateKey::from_string("0")));
  EXPECT_TRUE(r.good_states.count(StateKey::from_string("1")));
}

TEST(FsimTest, PotentialDetectionFlagged) {
  const Netlist nl = toggler();
  // rst s-a-0: the faulty machine never initializes; its output stays X
  // while the good machine shows 0/1 — a potential detection only.
  const Fault f{nl.find("rst"), -1, false};
  const auto r = run_fault_simulation(nl, {f}, {seq_of({1, 0, 0, 0})});
  EXPECT_EQ(r.detected_at[0], -1);
  EXPECT_EQ(r.potential_at[0], 0);
}

// Determinism: identical detected_at / potential_at / good_states for every
// thread count, on an MCNC-suite circuit and its retimed twin.
TEST(FsimDeterminismTest, ThreadCountInvariantOnMcncPair) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "s820") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.4));
  SynthOptions so;
  so.encode = EncodeAlgo::kOutputDominant;
  const SynthResult res = synthesize(fsm, so);
  const Netlist& orig = res.netlist;
  const Netlist retimed =
      retime_to_dff_target(orig, orig.num_dffs() * 3, orig.name() + ".re")
          .netlist;

  for (const Netlist* nl : {&orig, &retimed}) {
    const auto collapsed = collapse_faults(*nl);
    std::vector<Fault> faults;
    for (const auto& cf : collapsed) faults.push_back(cf.representative);
    const auto seqs = make_random_sequences(*nl, 3, 24, 11);

    const auto base = run_fault_simulation(*nl, faults, seqs, {1});
    for (const unsigned threads : {2u, 8u}) {
      const auto r = run_fault_simulation(*nl, faults, seqs, {threads});
      EXPECT_EQ(r.detected_at, base.detected_at) << nl->name() << " x"
                                                 << threads;
      EXPECT_EQ(r.potential_at, base.potential_at) << nl->name() << " x"
                                                   << threads;
      EXPECT_EQ(r.good_states, base.good_states) << nl->name() << " x"
                                                 << threads;
      EXPECT_EQ(r.num_detected, base.num_detected);
    }
  }
}

// StateKey round-trips the historical string encoding (MSB-first {0,1,X}
// state strings) and hashes/compares consistently.
TEST(StateKeyTest, RoundTripsOldStringEncoding) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n =
        static_cast<std::size_t>(rng.next_int(1, 80));
    std::string s;
    for (std::size_t i = 0; i < n; ++i) {
      const int k = rng.next_int(0, 2);
      s.push_back(k == 0 ? '0' : k == 1 ? '1' : 'X');
    }
    const StateKey key = StateKey::from_string(s);
    EXPECT_EQ(key.to_string(), s);
    EXPECT_EQ(key.size(), n);
    // Digit i corresponds to character n-1-i (MSB-first convention).
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(v3_char(key.get(i)), s[n - 1 - i]);
    // Equality and hashing agree with the string encoding.
    EXPECT_EQ(key, StateKey::from_string(s));
    EXPECT_EQ(key.hash(), StateKey::from_string(s).hash());
    EXPECT_EQ(key.fully_specified(), s.find('X') == std::string::npos);
    EXPECT_EQ(key.any_known(),
              s.find_first_not_of('X') != std::string::npos);
    // Flipping one digit changes the key.
    StateKey other = key;
    const std::size_t flip =
        static_cast<std::size_t>(rng.next_int(0, static_cast<int>(n) - 1));
    other.set(flip, key.get(flip) == V3::kOne ? V3::kZero : V3::kOne);
    EXPECT_NE(other, key);
  }
  // Incremental set() matches the old cube_key building ('-' == X).
  StateKey cube(4);
  EXPECT_EQ(cube.to_string(), "XXXX");
  cube.set(0, V3::kOne);
  cube.set(2, V3::kZero);
  EXPECT_EQ(cube.to_string(), "X0X1");
  EXPECT_EQ(cube, StateKey::from_string("X0X1"));
}

TEST(FsimTest, GradedCoverageWeightsClasses) {
  std::vector<CollapsedFault> cf{{Fault{}, 3}, {Fault{}, 2}, {Fault{}, 5}};
  const auto [det, total] = graded_coverage(cf, {0, -1, 2});
  EXPECT_EQ(det, 8u);
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace satpg
