// Tests for the sequential fault simulators: known detections on a hand
// circuit, parallel == serial cross-checks on synthesized machines, state
// tracking, and potential-detection semantics.
#include <gtest/gtest.h>

#include "atpg/engine.h"
#include "base/rng.h"
#include "fsim/fsim.h"
#include "fsm/mcnc_suite.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

// 1-bit toggle with reset: q' = rst ? 0 : !q ; out = q.
Netlist toggler() {
  Netlist nl("tog");
  const NodeId rst = nl.add_input("rst");
  const NodeId q = nl.add_dff("q", rst, FfInit::kUnknown);
  const NodeId nq = nl.add_gate(GateType::kNot, "nq", {q});
  const NodeId nrst = nl.add_gate(GateType::kNot, "nrst", {rst});
  const NodeId d = nl.add_gate(GateType::kAnd, "d", {nq, nrst});
  nl.set_fanin(q, 0, d);
  nl.add_output("o", q);
  return nl;
}

TestSequence seq_of(std::initializer_list<int> rst_bits) {
  TestSequence s;
  for (int b : rst_bits) s.push_back({b ? V3::kOne : V3::kZero});
  return s;
}

TEST(SerialFsimTest, DetectsStuckToggle) {
  const Netlist nl = toggler();
  // Fault: d s-a-0 (q never becomes 1). rst=1, then run: good q goes
  // 0,1,0,1...; faulty stays 0. First difference at cycle 2 (q==1 good).
  const Fault f{nl.find("d"), -1, false};
  const int t = simulate_fault_serial(nl, f, seq_of({1, 0, 0, 0}));
  EXPECT_EQ(t, 2);
}

TEST(SerialFsimTest, UndetectedWithoutExcitation) {
  const Netlist nl = toggler();
  const Fault f{nl.find("d"), -1, false};
  // Holding reset forever: q stays 0 in both machines.
  EXPECT_EQ(simulate_fault_serial(nl, f, seq_of({1, 1, 1, 1})), -1);
}

TEST(SerialFsimTest, XInitBlocksStrictDetection) {
  const Netlist nl = toggler();
  // Without reset the good machine stays X: strict detection impossible.
  const Fault f{nl.find("d"), -1, false};
  EXPECT_EQ(simulate_fault_serial(nl, f, seq_of({0, 0, 0, 0})), -1);
}

TEST(ParallelFsimTest, MatchesSerialOnToggler) {
  const Netlist nl = toggler();
  const auto faults = enumerate_faults(nl);
  const TestSequence seq = seq_of({1, 0, 0, 0, 1, 0, 0});
  const auto par = run_fault_simulation(nl, faults, {seq});
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const bool serial = simulate_fault_serial(nl, faults[i], seq) >= 0;
    EXPECT_EQ(par.detected_at[i] >= 0, serial)
        << fault_name(nl, faults[i]);
  }
}

// Property: parallel == serial on a synthesized machine and random tests.
class FsimEquiv : public ::testing::TestWithParam<int> {};

TEST_P(FsimEquiv, ParallelMatchesSerial) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  spec.seed += static_cast<std::uint64_t>(GetParam());
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.4));
  const SynthResult res = synthesize(fsm, {});
  const Netlist& nl = res.netlist;

  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  for (const auto& cf : collapsed) faults.push_back(cf.representative);
  const auto seqs = make_random_sequences(
      nl, 3, 24, static_cast<std::uint64_t>(GetParam()) * 7 + 1);

  const auto par = run_fault_simulation(nl, faults, seqs);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    int serial_at = -1;
    for (std::size_t s = 0; s < seqs.size() && serial_at < 0; ++s)
      if (simulate_fault_serial(nl, faults[i], seqs[s]) >= 0)
        serial_at = static_cast<int>(s);
    // Parallel drops faults at first detection, so indices must agree.
    EXPECT_EQ(par.detected_at[i], serial_at) << fault_name(nl, faults[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsimEquiv, ::testing::Range(0, 4));

TEST(FsimTest, TracksGoodStates) {
  const Netlist nl = toggler();
  const auto r = run_fault_simulation(nl, {}, {seq_of({1, 0, 0, 0})});
  // States entered after each cycle: 0, 1, 0, 1 -> {"0", "1"}.
  EXPECT_EQ(r.good_states.size(), 2u);
  EXPECT_TRUE(r.good_states.count("0"));
  EXPECT_TRUE(r.good_states.count("1"));
}

TEST(FsimTest, PotentialDetectionFlagged) {
  const Netlist nl = toggler();
  // rst s-a-0: the faulty machine never initializes; its output stays X
  // while the good machine shows 0/1 — a potential detection only.
  const Fault f{nl.find("rst"), -1, false};
  const auto r = run_fault_simulation(nl, {f}, {seq_of({1, 0, 0, 0})});
  EXPECT_EQ(r.detected_at[0], -1);
  EXPECT_EQ(r.potential_at[0], 0);
}

TEST(FsimTest, GradedCoverageWeightsClasses) {
  std::vector<CollapsedFault> cf{{Fault{}, 3}, {Fault{}, 2}, {Fault{}, 5}};
  const auto [det, total] = graded_coverage(cf, {0, -1, 2});
  EXPECT_EQ(det, 8u);
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace satpg
