// Tests for the fault model: enumeration and equivalence collapsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fault/fault.h"
#include "netlist/netlist.h"

namespace satpg {
namespace {

Netlist tiny() {
  // a,b -> AND g -> NOT n -> PO; plus a DFF loop off g.
  Netlist nl("tiny");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {a, b});
  const NodeId n = nl.add_gate(GateType::kNot, "n", {g});
  const NodeId q = nl.add_dff("q", n, FfInit::kZero);
  (void)q;
  nl.add_output("o", n);
  return nl;
}

TEST(FaultTest, EnumerationCoversAllLines) {
  const Netlist nl = tiny();
  const auto faults = enumerate_faults(nl);
  // Stems: a, b, g, n, q (2 each) = 10. Pins: g(2), n(1), q(1), o(1) = 5
  // lines * 2 = 10. Total 20.
  EXPECT_EQ(faults.size(), 20u);
  std::set<Fault> unique(faults.begin(), faults.end());
  EXPECT_EQ(unique.size(), faults.size());
}

TEST(FaultTest, NamesAreReadable) {
  const Netlist nl = tiny();
  const Fault f{nl.find("g"), 0, true};
  const std::string name = fault_name(nl, f);
  EXPECT_NE(name.find("g"), std::string::npos);
  EXPECT_NE(name.find("s-a-1"), std::string::npos);
  EXPECT_NE(name.find("in0"), std::string::npos);
}

TEST(CollapseTest, ClassSizesSumToUniverse) {
  const Netlist nl = tiny();
  const auto all = enumerate_faults(nl);
  const auto collapsed = collapse_faults(nl);
  std::size_t total = 0;
  for (const auto& cf : collapsed)
    total += static_cast<std::size_t>(cf.class_size);
  EXPECT_EQ(total, all.size());
  EXPECT_LT(collapsed.size(), all.size());  // something must collapse
}

TEST(CollapseTest, AndGateRuleApplies) {
  // AND input s-a-0 == output s-a-0: the three faults (g,0,0), (g,1,0),
  // (g,-1,0) share one class (whose representative may even sit on the
  // PI stems a/b, which chain-merge in through their single fanout).
  const Netlist nl = tiny();
  const NodeId g = nl.find("g");
  const auto collapsed = collapse_faults(nl);
  int reps_on_g_sa0_family = 0;
  for (const auto& cf : collapsed) {
    const auto& f = cf.representative;
    if (f.node == g && !f.stuck1) ++reps_on_g_sa0_family;
  }
  EXPECT_LE(reps_on_g_sa0_family, 1);
  // The family is at least {a-sa0, b-sa0, g/in0-sa0, g/in1-sa0, g-sa0,
  // n/in-sa0, n-sa1, ...}: some class must have size >= 5.
  int max_class = 0;
  for (const auto& cf : collapsed)
    max_class = std::max(max_class, cf.class_size);
  EXPECT_GE(max_class, 5);
}

TEST(CollapseTest, SingleFanoutStemMergesWithBranch) {
  // g has a single fanout (n): g's stem faults merge with n's input pin
  // faults — and through NOT, with n's output faults.
  Netlist nl("chainy");
  const NodeId a = nl.add_input("a");
  const NodeId buf = nl.add_gate(GateType::kBuf, "buf", {a});
  const NodeId inv = nl.add_gate(GateType::kNot, "inv", {buf});
  nl.add_output("o", inv);
  const auto collapsed = collapse_faults(nl);
  // Universe: stems a/buf/inv (6) + pins buf,inv,o (6) = 12 faults.
  // All of them chain-collapse into exactly 2 classes (one per polarity).
  EXPECT_EQ(collapsed.size(), 2u);
  std::size_t total = 0;
  for (const auto& cf : collapsed)
    total += static_cast<std::size_t>(cf.class_size);
  EXPECT_EQ(total, 12u);
}

TEST(CollapseTest, MultiFanoutStemStaysSeparate) {
  Netlist nl("fan");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(GateType::kBuf, "g1", {a});
  const NodeId g2 = nl.add_gate(GateType::kNot, "g2", {a});
  nl.add_output("o1", g1);
  nl.add_output("o2", g2);
  const auto collapsed = collapse_faults(nl);
  // a's stem must not merge with either branch (fanout = 2): classes
  // include a-sa0/a-sa1 distinct from branch pin faults.
  const NodeId an = nl.find("a");
  int stem_classes = 0;
  for (const auto& cf : collapsed)
    if (cf.representative.node == an && cf.representative.pin == -1)
      ++stem_classes;
  EXPECT_EQ(stem_classes, 2);
}

TEST(CollapseTest, XorDoesNotCollapseInputs) {
  Netlist nl("x");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::kXor, "g", {a, b});
  nl.add_output("o", g);
  const auto all = enumerate_faults(nl);
  const auto collapsed = collapse_faults(nl);
  // Only stem/branch merges are possible (a->g, b->g single fanout).
  // XOR input faults never merge with output faults.
  for (const auto& cf : collapsed) {
    if (cf.representative.node == g && cf.representative.pin >= 0) {
      // Pin faults of g merged only with the PI stems (class of 2).
      EXPECT_LE(cf.class_size, 2);
    }
  }
  EXPECT_GT(collapsed.size(), all.size() / 3);
}

}  // namespace
}  // namespace satpg
