// Tier-2 regression-gate test: runs the real satpg CLI and bench_gate
// binaries against checked-in golden atpg_run.v3 reports (bench/golden/)
// for one cached MCNC circuit and its retimed twin.
//
// Three contracts:
//   * a freshly generated report for the cached circuit gates cleanly
//     against its golden (the run is deterministic, so coverage and evals
//     cannot have moved unless the engine changed);
//   * same for the retimed twin;
//   * gating the twin against the parent trips the effort threshold —
//     the Figure-3 blowup the gate exists to catch.
//
// Paths are injected by CMake: SATPG_CLI_PATH / BENCH_GATE_PATH are the
// built tools, SATPG_GOLDEN_DIR the committed reports, SATPG_SMOKE_CIRCUIT
// the cached netlist.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace satpg {
namespace {

// Flags must match tools/gen_golden.sh, which produced the goldens.
constexpr const char* kGoldenFlags = "--budget=0.2 --seed=7 --threads=2";

int run_cmd(const std::string& cmd) {
  const int rc = std::system((cmd + " > /dev/null 2>&1").c_str());
  return rc < 0 ? -1 : WEXITSTATUS(rc);
}

std::string sh_quote(const std::string& s) { return "\"" + s + "\""; }

class BenchGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    golden_parent_ = std::string(SATPG_GOLDEN_DIR) + "/dk16_parent.v3.json";
    golden_twin_ = std::string(SATPG_GOLDEN_DIR) + "/dk16_retimed.v3.json";
  }

  // Regenerate the twin netlist and a fresh report for `bench`.
  std::string fresh_report(const std::string& bench, const std::string& tag) {
    const std::string out = dir_ + "gate_" + tag + ".json";
    EXPECT_EQ(run_cmd(sh_quote(SATPG_CLI_PATH) + " atpg " + sh_quote(bench) +
                      " " + kGoldenFlags + " --metrics-json=" + out),
              0);
    return out;
  }

  std::string dir_, golden_parent_, golden_twin_;
};

TEST_F(BenchGateTest, FreshParentReportGatesCleanlyAgainstGolden) {
  const std::string fresh = fresh_report(SATPG_SMOKE_CIRCUIT, "parent");
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_parent_) +
                    " " + sh_quote(fresh)),
            0);
}

TEST_F(BenchGateTest, FreshTwinReportGatesCleanlyAgainstGolden) {
  const std::string twin_bench = dir_ + "gate_twin.bench";
  ASSERT_EQ(run_cmd(sh_quote(SATPG_CLI_PATH) + " retime " +
                    sh_quote(SATPG_SMOKE_CIRCUIT) + " " + sh_quote(twin_bench) +
                    " --dffs=6"),
            0);
  const std::string fresh = fresh_report(twin_bench, "twin");
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_twin_) +
                    " " + sh_quote(fresh)),
            0);
}

TEST_F(BenchGateTest, TwinAgainstParentTripsTheEffortThreshold) {
  // The retimed twin burns far more evals than its parent on the same
  // budget flags — the regression the gate must flag (exit 1).
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_parent_) +
                    " " + sh_quote(golden_twin_)),
            1);
  // A sufficiently loose threshold lets the same pair pass, provided
  // coverage held up.
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_parent_) +
                    " " + sh_quote(golden_twin_) +
                    " --max-effort-ratio=1e9 --max-coverage-drop=100"),
            0);
}

TEST_F(BenchGateTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH)), 2);
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_parent_) +
                    " /no/such/report.json"),
            2);
}

}  // namespace
}  // namespace satpg
