// Tier-2 regression-gate test: runs the real satpg CLI and bench_gate
// binaries against checked-in golden atpg_run.v6 reports (bench/golden/)
// for one cached MCNC circuit and its retimed twin, for both the default
// (hitec) engine and the cdcl engine.
//
// Contracts:
//   * a freshly generated report for the cached circuit gates cleanly
//     against its golden (the run is deterministic, so coverage and evals
//     cannot have moved unless the engine changed);
//   * same for the retimed twin, and for both cdcl goldens;
//   * gating the twin against the parent trips the effort threshold —
//     the Figure-3 blowup the gate exists to catch;
//   * on the retimed twin, cdcl with cross-fault cube sharing spends
//     strictly fewer conflicts than the same run with
//     --no-shared-learning (the headline benefit of the shared cache);
//   * the --mem gate passes a fresh run against its golden at the default
//     ratio and flags the same pair once the ratio is squeezed below 1.
//
// Paths are injected by CMake: SATPG_CLI_PATH / BENCH_GATE_PATH are the
// built tools, SATPG_GOLDEN_DIR the committed reports, SATPG_SMOKE_CIRCUIT
// the cached netlist.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace satpg {
namespace {

// Flags must match tools/gen_golden.sh, which produced the goldens.
constexpr const char* kGoldenFlags = "--budget=0.2 --seed=7 --threads=2";

int run_cmd(const std::string& cmd) {
  const int rc = std::system((cmd + " > /dev/null 2>&1").c_str());
  return rc < 0 ? -1 : WEXITSTATUS(rc);
}

std::string sh_quote(const std::string& s) { return "\"" + s + "\""; }

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Pull an unsigned counter ("key": N) out of a metrics report. The first
// occurrence is the run-summary value for summary counters; for per-fault
// counters like cube_blocks, json_counter_sum totals every record.
unsigned long long json_counter(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing counter " << key;
  if (at == std::string::npos) return 0;
  return std::stoull(json.substr(at + needle.size()));
}

unsigned long long json_counter_sum(const std::string& json,
                                    const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  unsigned long long total = 0;
  for (std::size_t at = json.find(needle); at != std::string::npos;
       at = json.find(needle, at + needle.size()))
    total += std::stoull(json.substr(at + needle.size()));
  return total;
}

class BenchGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    golden_parent_ = std::string(SATPG_GOLDEN_DIR) + "/dk16_parent.v6.json";
    golden_twin_ = std::string(SATPG_GOLDEN_DIR) + "/dk16_retimed.v6.json";
    golden_parent_cdcl_ =
        std::string(SATPG_GOLDEN_DIR) + "/dk16_parent_cdcl.v6.json";
    golden_twin_cdcl_ =
        std::string(SATPG_GOLDEN_DIR) + "/dk16_retimed_cdcl.v6.json";
  }

  // Regenerate the twin netlist and a fresh report for `bench`.
  std::string fresh_report(const std::string& bench, const std::string& tag,
                           const std::string& extra_flags = "") {
    const std::string out = dir_ + "gate_" + tag + ".json";
    EXPECT_EQ(run_cmd(sh_quote(SATPG_CLI_PATH) + " atpg " + sh_quote(bench) +
                      " " + kGoldenFlags + " " + extra_flags +
                      " --metrics-json=" + out),
              0);
    return out;
  }

  // Retime the smoke circuit to the golden twin netlist; returns its path.
  std::string make_twin() {
    const std::string twin_bench = dir_ + "gate_twin.bench";
    EXPECT_EQ(run_cmd(sh_quote(SATPG_CLI_PATH) + " retime " +
                      sh_quote(SATPG_SMOKE_CIRCUIT) + " " +
                      sh_quote(twin_bench) + " --dffs=6"),
              0);
    return twin_bench;
  }

  std::string dir_, golden_parent_, golden_twin_;
  std::string golden_parent_cdcl_, golden_twin_cdcl_;
};

TEST_F(BenchGateTest, FreshParentReportGatesCleanlyAgainstGolden) {
  const std::string fresh = fresh_report(SATPG_SMOKE_CIRCUIT, "parent");
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_parent_) +
                    " " + sh_quote(fresh)),
            0);
}

TEST_F(BenchGateTest, FreshTwinReportGatesCleanlyAgainstGolden) {
  const std::string fresh = fresh_report(make_twin(), "twin");
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_twin_) +
                    " " + sh_quote(fresh)),
            0);
}

TEST_F(BenchGateTest, FreshCdclReportsGateCleanlyAgainstGoldens) {
  const std::string parent =
      fresh_report(SATPG_SMOKE_CIRCUIT, "parent_cdcl", "--engine=cdcl");
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " +
                    sh_quote(golden_parent_cdcl_) + " " + sh_quote(parent)),
            0);
  const std::string twin =
      fresh_report(make_twin(), "twin_cdcl", "--engine=cdcl");
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " +
                    sh_quote(golden_twin_cdcl_) + " " + sh_quote(twin)),
            0);
}

TEST_F(BenchGateTest, TwinAgainstParentTripsTheEffortThreshold) {
  // The retimed twin burns far more evals than its parent on the same
  // budget flags — the regression the gate must flag (exit 1).
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_parent_) +
                    " " + sh_quote(golden_twin_)),
            1);
  // A sufficiently loose threshold lets the same pair pass, provided
  // coverage held up.
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_parent_) +
                    " " + sh_quote(golden_twin_) +
                    " --max-effort-ratio=1e9 --max-coverage-drop=100"),
            0);
}

TEST_F(BenchGateTest, SharedLearningSpendsFewerConflictsOnTheTwin) {
  const std::string twin_bench = make_twin();
  const std::string shared = fresh_report(twin_bench, "twin_shared",
                                          "--engine=cdcl");
  const std::string solo = fresh_report(twin_bench, "twin_solo",
                                        "--engine=cdcl --no-shared-learning");
  const unsigned long long shared_conflicts =
      json_counter(read_file(shared), "conflicts");
  const unsigned long long solo_conflicts =
      json_counter(read_file(solo), "conflicts");
  EXPECT_LT(shared_conflicts, solo_conflicts)
      << "cube sharing should strictly reduce total conflicts on the "
         "retimed twin";
  EXPECT_GT(json_counter_sum(read_file(shared), "cube_blocks"), 0ull)
      << "the shared run never imported a proven cube — sharing was inert";
}

TEST_F(BenchGateTest, MemGatePassesCleanRunsAndCatchesGrowth) {
  const std::string fresh = fresh_report(SATPG_SMOKE_CIRCUIT, "parent_mem");
  // Deterministic accounting: a fresh run's peak bytes sit within the
  // default 1.25x of the golden's.
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_parent_) +
                    " " + sh_quote(fresh) + " --mem"),
            0);
  // A ratio below 1.0 makes even byte-identical accounting a violation —
  // proves the check is wired, not vacuous.
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_parent_) +
                    " " + sh_quote(fresh) + " --mem --max-mem-ratio=0.5"),
            1);
}

TEST_F(BenchGateTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH)), 2);
  EXPECT_EQ(run_cmd(sh_quote(BENCH_GATE_PATH) + " " + sh_quote(golden_parent_) +
                    " /no/such/report.json"),
            2);
}

}  // namespace
}  // namespace satpg
