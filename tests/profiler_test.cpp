// Tests for the base/profiler cycle-accounting layer (DESIGN.md §12): the
// phase taxonomy invariants the JSON writers rely on (sorted enum order,
// subsystem-contiguous blocks, wide-kernel tier mapping), the disabled-span
// no-op contract, the fallback backend ladder (SATPG_PROFILE_BACKEND pins
// it; task-clock moves, hardware counters stay zero), per-worker lane
// attribution through the thread pool, the snapshot fold identity
// (total == sum of lanes == sum of phases), the timeline sampler cap, and
// the strict --profile-* flag validation shared by every tool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "base/profiler.h"
#include "base/telemetry_flags.h"
#include "base/threadpool.h"

namespace satpg {
namespace {

// Spin long enough for CLOCK_THREAD_CPUTIME_ID to observe the span.
void burn_cpu() {
  volatile std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < 400000; ++i) acc += i * i;
}

// Every test arms and disarms the process-wide profiler; pin the backend
// explicitly per test so a developer machine with perf_event available
// behaves like the CI runner where it matters.
struct BackendGuard {
  explicit BackendGuard(const char* backend) {
    if (backend)
      ::setenv("SATPG_PROFILE_BACKEND", backend, 1);
    else
      ::unsetenv("SATPG_PROFILE_BACKEND");
  }
  ~BackendGuard() { ::unsetenv("SATPG_PROFILE_BACKEND"); }
};

// --- phase taxonomy ---------------------------------------------------------

TEST(ProfPhaseTest, NamesAreSortedUniqueAndMatchEnumOrder) {
  // The JSON writers iterate the enum and emit keys in declaration order;
  // sorted-name order is what makes the sidecar's phase block sorted.
  std::vector<std::string> names;
  for (std::size_t i = 0; i < kNumProfPhases; ++i)
    names.push_back(prof_phase_name(static_cast<ProfPhase>(i)));
  for (std::size_t i = 1; i < names.size(); ++i)
    EXPECT_LT(names[i - 1], names[i])
        << "enum order must be sorted-name order";
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size());
}

TEST(ProfPhaseTest, SubsystemsAreContiguousAndPrefixNames) {
  // The subsystem rollup in the sidecar assumes each subsystem owns one
  // contiguous enum range, and that "sub.phase" names carry their owner.
  std::vector<std::string> seen_order;
  for (std::size_t i = 0; i < kNumProfPhases; ++i) {
    const auto p = static_cast<ProfPhase>(i);
    const std::string sub = prof_phase_subsystem(p);
    const std::string name = prof_phase_name(p);
    EXPECT_EQ(name.rfind(sub + ".", 0), 0u)
        << name << " must start with \"" << sub << ".\"";
    if (seen_order.empty() || seen_order.back() != sub) {
      for (const auto& earlier : seen_order)
        EXPECT_NE(earlier, sub) << "subsystem " << sub << " is split";
      seen_order.push_back(sub);
    }
  }
  EXPECT_EQ(seen_order,
            (std::vector<std::string>{"atpg", "cdcl", "fsim", "podem"}));
}

TEST(ProfPhaseTest, WideKernelTierMapping) {
  EXPECT_EQ(prof_phase_for_wide_kernel(SimdTier::kScalar),
            ProfPhase::kFsimWideKernelScalar);
  EXPECT_EQ(prof_phase_for_wide_kernel(SimdTier::kSse2),
            ProfPhase::kFsimWideKernelSse2);
  EXPECT_EQ(prof_phase_for_wide_kernel(SimdTier::kAvx2),
            ProfPhase::kFsimWideKernelAvx2);
  EXPECT_EQ(prof_phase_for_wide_kernel(SimdTier::kAvx512),
            ProfPhase::kFsimWideKernelAvx512);
}

TEST(ProfCounterTest, NamesAreStable) {
  EXPECT_STREQ(prof_counter_name(ProfCounter::kTaskClockNs),
               "task_clock_ns");
  EXPECT_STREQ(prof_counter_name(ProfCounter::kCycles), "cycles");
  std::set<std::string> names;
  for (std::size_t i = 0; i < kNumProfCounters; ++i)
    names.insert(prof_counter_name(static_cast<ProfCounter>(i)));
  EXPECT_EQ(names.size(), kNumProfCounters);
}

// --- span / backend contracts ----------------------------------------------

TEST(ProfilerTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(profiler_enabled())
      << "tests must leave the global profiler stopped";
  {
    ProfileSpan span(ProfPhase::kFsimGood);
    burn_cpu();
  }
  // Arm once just to read a snapshot; the span above must not be in it.
  BackendGuard guard("fallback");
  Profiler::global().start();
  Profiler::global().stop();
  const ProfSnapshot snap = Profiler::global().snapshot();
  EXPECT_EQ(snap.total().calls, 0u);
}

TEST(ProfilerTest, FallbackBackendCountsTaskClockOnly) {
  BackendGuard guard("fallback");
  Profiler::global().start();
  EXPECT_TRUE(profiler_enabled());
  {
    ProfileSpan span(ProfPhase::kPodemJustify);
    burn_cpu();
  }
  Profiler::global().stop();
  EXPECT_FALSE(profiler_enabled());

  const ProfSnapshot snap = Profiler::global().snapshot();
  EXPECT_EQ(snap.backend, ProfBackend::kFallback);
  EXPECT_GT(snap.wall_seconds, 0.0);
  const ProfPhaseTotals justify = snap.phase(ProfPhase::kPodemJustify);
  EXPECT_EQ(justify.calls, 1u);
  EXPECT_GT(justify.counter(ProfCounter::kTaskClockNs), 0u)
      << "task-clock moves under both backends";
  // Hardware counters only move under the perf_event backend.
  EXPECT_EQ(justify.counter(ProfCounter::kCycles), 0u);
  EXPECT_EQ(justify.counter(ProfCounter::kInstructions), 0u);
  EXPECT_EQ(justify.counter(ProfCounter::kCacheMisses), 0u);
  // Other phases stay untouched.
  EXPECT_EQ(snap.phase(ProfPhase::kCdclPropagate).calls, 0u);
}

TEST(ProfilerTest, AutoProbeNeverFailsToArm) {
  // Arming must never fail a run: the probe lands on perf_event where the
  // kernel allows it and degrades to the fallback otherwise.
  BackendGuard guard(nullptr);
  Profiler::global().start();
  const ProfBackend backend = Profiler::global().backend();
  EXPECT_TRUE(backend == ProfBackend::kPerfEvent ||
              backend == ProfBackend::kFallback);
  {
    ProfileSpan span(ProfPhase::kCdclPropagate);
    burn_cpu();
  }
  Profiler::global().stop();
  const ProfSnapshot snap = Profiler::global().snapshot();
  EXPECT_EQ(snap.phase(ProfPhase::kCdclPropagate).calls, 1u);
  EXPECT_GT(snap.phase(ProfPhase::kCdclPropagate)
                .counter(ProfCounter::kTaskClockNs),
            0u);
}

TEST(ProfilerTest, RestartResetsLanes) {
  BackendGuard guard("fallback");
  Profiler::global().start();
  { ProfileSpan span(ProfPhase::kFsimBatch); burn_cpu(); }
  Profiler::global().stop();
  EXPECT_EQ(Profiler::global().snapshot().phase(ProfPhase::kFsimBatch).calls,
            1u);

  Profiler::global().start();
  Profiler::global().stop();
  EXPECT_EQ(Profiler::global().snapshot().total().calls, 0u)
      << "start() must reset the lanes from the previous run";
}

// --- lanes ------------------------------------------------------------------

TEST(ProfilerTest, WorkerLanesAttributeSpansPerThread) {
  constexpr unsigned kWorkers = 4;
  constexpr std::uint64_t kSpansPerWorker = 3;
  ThreadPool pool(kWorkers);

  BackendGuard guard("fallback");
  Profiler::global().start();
  pool.run_on_workers(kWorkers, [&](unsigned) {
    for (std::uint64_t i = 0; i < kSpansPerWorker; ++i) {
      ProfileSpan span(ProfPhase::kAtpgMerge);
      burn_cpu();
    }
  });
  Profiler::global().stop();

  const ProfSnapshot snap = Profiler::global().snapshot();
  const ProfPhaseTotals merge = snap.phase(ProfPhase::kAtpgMerge);
  EXPECT_EQ(merge.calls, kWorkers * kSpansPerWorker);
  EXPECT_GT(merge.counter(ProfCounter::kTaskClockNs), 0u);

  // Lanes appear ascending and only for threads that recorded activity;
  // the calling thread is lane 0, pool workers register as >= 1.
  ASSERT_FALSE(snap.lanes.empty());
  std::uint64_t lane_calls = 0;
  for (std::size_t i = 0; i < snap.lanes.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(snap.lanes[i - 1].lane, snap.lanes[i].lane);
    }
    for (std::size_t p = 0; p < kNumProfPhases; ++p)
      lane_calls += snap.lanes[i].phases[p].calls;
  }
  EXPECT_EQ(lane_calls, snap.total().calls)
      << "total() must be exactly the fold of the per-lane totals";
  EXPECT_EQ(snap.lanes.front().lane, 0u)
      << "run_on_workers executes fn(0) on the calling thread";
}

// --- sampler ----------------------------------------------------------------

TEST(ProfilerTest, SamplerHonorsMaxSamplesCap) {
  BackendGuard guard("fallback");
  Profiler::Options opts;
  opts.sample_interval_ms = 1;
  opts.max_samples = 3;
  Profiler::global().start(opts);
  {
    ProfileSpan span(ProfPhase::kFsimGood);
    // Enough wall time for well over max_samples ticks.
    for (int i = 0; i < 60; ++i) burn_cpu();
  }
  Profiler::global().stop();

  const ProfSnapshot snap = Profiler::global().snapshot();
  EXPECT_LE(snap.samples.size(), 3u);
  for (std::size_t i = 1; i < snap.samples.size(); ++i)
    EXPECT_LE(snap.samples[i - 1].at_ms, snap.samples[i].at_ms);
}

TEST(ProfilerTest, NoSamplerWhenIntervalIsZero) {
  BackendGuard guard("fallback");
  Profiler::global().start();  // default Options: interval 0
  { ProfileSpan span(ProfPhase::kFsimGood); burn_cpu(); }
  Profiler::global().stop();
  const ProfSnapshot snap = Profiler::global().snapshot();
  EXPECT_TRUE(snap.samples.empty());
  EXPECT_EQ(snap.samples_dropped, 0u);
}

// --- flag validation --------------------------------------------------------

TEST(TelemetryFlagsTest, ProfileFlagsParseStrictly) {
  TelemetryFlags good;
  EXPECT_TRUE(good.parse("--profile-json=prof.json"));
  EXPECT_TRUE(good.parse("--profile-interval-ms=25"));
  EXPECT_TRUE(good.parse("--profile-max-samples=128"));
  EXPECT_TRUE(good.error.empty()) << good.error;
  EXPECT_TRUE(good.profile_enabled());
  EXPECT_EQ(good.profile_interval_ms, 25u);
  EXPECT_EQ(good.profile_max_samples, 128u);

  // Anything but a positive decimal number must be flagged, never clamped.
  const char* bad[] = {
      "--profile-interval-ms=abc", "--profile-interval-ms=",
      "--profile-interval-ms=0",   "--profile-interval-ms=-3",
      "--profile-interval-ms=5x",  "--profile-max-samples=abc",
      "--profile-max-samples=0",   "--profile-max-samples=-1",
  };
  for (const char* arg : bad) {
    TelemetryFlags f;
    EXPECT_TRUE(f.parse(arg)) << arg << " is ours to consume";
    EXPECT_FALSE(f.error.empty()) << arg << " must fail strict validation";
  }
}

TEST(TelemetryFlagsTest, ProfileDisabledByDefault) {
  TelemetryFlags f;
  EXPECT_FALSE(f.profile_enabled());
  EXPECT_EQ(f.profile_interval_ms, 0u);
  EXPECT_EQ(f.profile_max_samples, 4096u);
}

}  // namespace
}  // namespace satpg
