// Tests for the SCOAP-style testability measures that steer PODEM's
// backtrace.
#include <gtest/gtest.h>

#include "atpg/scoap.h"
#include "netlist/netlist.h"

namespace satpg {
namespace {

TEST(ScoapTest, PrimaryInputsCostOne) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  nl.add_output("o", nl.add_gate(GateType::kBuf, "b", {a}));
  const Scoap s = compute_scoap(nl);
  EXPECT_DOUBLE_EQ(s.cc0[static_cast<std::size_t>(a)], 1.0);
  EXPECT_DOUBLE_EQ(s.cc1[static_cast<std::size_t>(a)], 1.0);
}

TEST(ScoapTest, AndGateAsymmetry) {
  // AND output 1 needs all inputs (sum); 0 needs one input (min).
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {a, b, c});
  nl.add_output("o", g);
  const Scoap s = compute_scoap(nl);
  EXPECT_DOUBLE_EQ(s.cc1[static_cast<std::size_t>(g)], 4.0);  // 1+1+1 + 1
  EXPECT_DOUBLE_EQ(s.cc0[static_cast<std::size_t>(g)], 2.0);  // min + 1
}

TEST(ScoapTest, InverterSwapsCosts) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {a, b});
  const NodeId n = nl.add_gate(GateType::kNot, "n", {g});
  nl.add_output("o", n);
  const Scoap s = compute_scoap(nl);
  EXPECT_DOUBLE_EQ(s.cc0[static_cast<std::size_t>(n)],
                   s.cc1[static_cast<std::size_t>(g)] + 1.0);
  EXPECT_DOUBLE_EQ(s.cc1[static_cast<std::size_t>(n)],
                   s.cc0[static_cast<std::size_t>(g)] + 1.0);
}

TEST(ScoapTest, SequentialPenaltyAccumulatesThroughFfs) {
  // q2 = DFF(q1), q1 = DFF(a): controlling q2 costs two penalties.
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId q1 = nl.add_dff("q1", a, FfInit::kUnknown);
  const NodeId q2 = nl.add_dff("q2", q1, FfInit::kUnknown);
  nl.add_output("o", q2);
  const Scoap s = compute_scoap(nl, /*iterations=*/8, /*seq_penalty=*/20.0);
  // The optimistic FF seed (20) survives where it beats the D-cone cost.
  EXPECT_DOUBLE_EQ(s.cc1[static_cast<std::size_t>(q1)], 20.0);
  EXPECT_DOUBLE_EQ(s.cc1[static_cast<std::size_t>(q2)], 20.0);
  // The D-cone bound still applies: never above cc(D) + penalty.
  EXPECT_LE(s.cc1[static_cast<std::size_t>(q1)], 1.0 + 20.0);
}

TEST(ScoapTest, FeedbackConvergesToFiniteValues) {
  // Self-loop through XOR: iteration must settle (not grow unboundedly
  // within the iteration budget, and stay below the "unreachable" level).
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff("q", a, FfInit::kUnknown);
  const NodeId g = nl.add_gate(GateType::kXor, "g", {q, a});
  nl.set_fanin(q, 0, g);
  nl.add_output("o", g);
  const Scoap s = compute_scoap(nl);
  EXPECT_LT(s.cc0[static_cast<std::size_t>(q)], 1e6);
  EXPECT_LT(s.cc1[static_cast<std::size_t>(q)], 1e6);
}

TEST(ScoapTest, ConstantsArePinned) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId c1 = nl.add_const(true, "one");
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {a, c1});
  nl.add_output("o", g);
  const Scoap s = compute_scoap(nl);
  EXPECT_DOUBLE_EQ(s.cc1[static_cast<std::size_t>(c1)], 0.0);
  EXPECT_GE(s.cc0[static_cast<std::size_t>(c1)], 1e6);  // impossible
}

}  // namespace
}  // namespace satpg
