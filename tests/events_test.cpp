// Flight-recorder tests (DESIGN.md §10): the serialized event stream must
// be byte-identical at any thread count (events ride the same
// deterministic merge as fault_stats and contain no wall clock), arming
// the recorder must not change any search result, and disabled mode must
// record nothing. Plus unit coverage of the NDJSON event rendering
// (zero/empty fields omitted; the LBD histogram only on db_reduce).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "atpg/parallel.h"
#include "base/events.h"
#include "fsm/mcnc_suite.h"
#include "harness/report.h"
#include "netlist/netlist.h"
#include "retime/retime.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

Netlist mcnc_circuit(const std::string& name, double scale) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == name) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, scale));
  return synthesize(fsm, {}).netlist;
}

ParallelAtpgOptions engine_options(EngineKind kind, unsigned threads,
                                   bool record_events) {
  ParallelAtpgOptions popts;
  popts.run.engine.kind = kind;
  popts.run.engine.eval_limit = 60'000;
  popts.run.engine.backtrack_limit = 200;
  popts.run.random_sequences = 2;
  popts.run.random_length = 16;
  popts.num_threads = threads;
  popts.record_events = record_events;
  return popts;
}

std::string serialized_events(const Netlist& nl,
                              const ParallelAtpgOptions& opts,
                              const ParallelAtpgResult& res) {
  std::ostringstream os;
  write_events_json(os, nl, opts, res);
  return os.str();
}

// Every result field the deterministic contract covers, minus events.
std::string result_digest(const ParallelAtpgResult& r) {
  std::ostringstream os;
  os << r.run.detected << '/' << r.run.redundant << '/' << r.run.aborted
     << '/' << r.run.evals << '/' << r.run.backtracks << '/'
     << r.run.tests.size() << '\n';
  for (std::size_t i = 0; i < r.status.size(); ++i)
    os << static_cast<int>(r.status[i]) << ',' << r.detected_by[i] << ','
       << int{r.attempted[i]} << ',' << r.fault_stats[i].evals << '\n';
  return os.str();
}

// --- NDJSON rendering --------------------------------------------------------

TEST(EventJsonTest, ZeroAndEmptyFieldsAreOmitted) {
  SearchEvent e;
  e.kind = SearchEventKind::kJustifyEnter;
  e.at = 42;
  std::string line;
  append_event_json(&line, e);
  EXPECT_EQ(line, "{\"k\": \"justify_enter\", \"at\": 42}");

  e.a = 3;
  e.cube = "01X";
  line.clear();
  append_event_json(&line, e);
  EXPECT_EQ(line,
            "{\"k\": \"justify_enter\", \"at\": 42, \"a\": 3, "
            "\"cube\": \"01X\"}");
}

TEST(EventJsonTest, LbdHistogramOnlyOnDbReduce) {
  SearchEvent e;
  e.kind = SearchEventKind::kRestart;
  e.at = 7;
  e.a = 1;
  e.lbd = {1, 2, 3, 4, 5, 6, 7, 8};  // ignored for non-db_reduce kinds
  std::string line;
  append_event_json(&line, e);
  EXPECT_EQ(line.find("lbd"), std::string::npos);

  e.kind = SearchEventKind::kDbReduce;
  e.b = 9;
  line.clear();
  append_event_json(&line, e);
  EXPECT_EQ(line,
            "{\"k\": \"db_reduce\", \"at\": 7, \"a\": 1, \"b\": 9, "
            "\"lbd\": [1, 2, 3, 4, 5, 6, 7, 8]}");
}

TEST(EventJsonTest, EveryKindHasAStableName) {
  EXPECT_STREQ(search_event_kind_name(SearchEventKind::kWindowGrow),
               "window_grow");
  EXPECT_STREQ(search_event_kind_name(SearchEventKind::kCubeImport),
               "cube_import");
  EXPECT_STREQ(search_event_kind_name(SearchEventKind::kLearnHit),
               "learn_hit");
}

// --- thread invariance -------------------------------------------------------

// The acceptance bar: the whole serialized event log — header, per-fault
// lines, every event — is byte-identical at 1/2/8 threads, for both a
// structural learning engine and the CDCL engine, on a parent circuit and
// its retimed twin.
TEST(EventsThreadInvarianceTest, SerializedLogIsByteIdenticalAcrossThreads) {
  const Netlist parent = mcnc_circuit("dk16", 0.35);
  const RetimeResult rt = retime_to_dff_target(
      parent, 2 * parent.num_dffs(), parent.name() + ".re");
  for (const Netlist* nl : {&parent, &rt.netlist}) {
    for (const EngineKind kind : {EngineKind::kLearning, EngineKind::kCdcl}) {
      const auto opts1 = engine_options(kind, 1, true);
      const auto opts2 = engine_options(kind, 2, true);
      const auto opts8 = engine_options(kind, 8, true);
      const auto r1 = run_parallel_atpg(*nl, opts1);
      const auto r2 = run_parallel_atpg(*nl, opts2);
      const auto r8 = run_parallel_atpg(*nl, opts8);
      const std::string log1 = serialized_events(*nl, opts1, r1);
      EXPECT_EQ(log1, serialized_events(*nl, opts2, r2))
          << nl->name() << " kind=" << static_cast<int>(kind);
      EXPECT_EQ(log1, serialized_events(*nl, opts8, r8))
          << nl->name() << " kind=" << static_cast<int>(kind);
      // A real run must actually record something beyond the header.
      EXPECT_GT(log1.size(), log1.find('\n') + 1);
    }
  }
}

// --- disabled mode -----------------------------------------------------------

TEST(EventsDisabledTest, DisabledRecorderStoresNothing) {
  const Netlist nl = mcnc_circuit("dk16", 0.35);
  const auto opts = engine_options(EngineKind::kCdcl, 2, false);
  const auto res = run_parallel_atpg(nl, opts);
  for (const SearchEventList& events : res.fault_events)
    EXPECT_TRUE(events.empty());
}

TEST(EventsDisabledTest, ArmingTheRecorderChangesNoResult) {
  const Netlist nl = mcnc_circuit("dk16", 0.35);
  for (const EngineKind kind : {EngineKind::kLearning, EngineKind::kCdcl}) {
    const auto off = run_parallel_atpg(nl, engine_options(kind, 2, false));
    const auto on = run_parallel_atpg(nl, engine_options(kind, 2, true));
    EXPECT_EQ(result_digest(off), result_digest(on))
        << "kind=" << static_cast<int>(kind);
    // Cube provenance is always recorded, events or not.
    ASSERT_EQ(off.cube_sources.size(), on.cube_sources.size());
    for (std::size_t i = 0; i < off.cube_sources.size(); ++i) {
      ASSERT_EQ(off.cube_sources[i].size(), on.cube_sources[i].size());
      for (std::size_t j = 0; j < off.cube_sources[i].size(); ++j) {
        EXPECT_EQ(off.cube_sources[i][j].exporter,
                  on.cube_sources[i][j].exporter);
        EXPECT_EQ(off.cube_sources[i][j].epoch, on.cube_sources[i][j].epoch);
        EXPECT_EQ(off.cube_sources[i][j].hits, on.cube_sources[i][j].hits);
      }
    }
  }
}

}  // namespace
}  // namespace satpg
