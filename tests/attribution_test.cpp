// Invalid-state effort attribution: the StateValidityOracle against exact
// reachability ground truth, soundness of the superset fallback, and the
// determinism + Figure-3 contracts of the per-run effort_invalid_frac
// surfaced through FaultSearchStats and the parallel driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "analysis/reach.h"
#include "atpg/parallel.h"
#include "fsm/mcnc_suite.h"
#include "retime/retime.h"
#include "sim/statekey.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

Netlist mcnc_circuit(const std::string& name, double scale) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == name) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, scale));
  return synthesize(fsm, {}).netlist;
}

Netlist retimed_twin(const Netlist& orig) {
  return retime_to_dff_target(orig, orig.num_dffs() * 2, orig.name() + ".re")
      .netlist;
}

ParallelAtpgOptions small_options(unsigned threads) {
  ParallelAtpgOptions popts;
  popts.run.engine.kind = EngineKind::kHitec;
  popts.run.engine.eval_limit = 150'000;
  popts.run.engine.backtrack_limit = 300;
  popts.run.random_sequences = 4;
  popts.run.random_length = 24;
  popts.num_threads = threads;
  return popts;
}

// Ground truth: does `cube` intersect the enumerated reachable set?
bool cube_intersects(const StateKey& cube, const ReachResult& reach) {
  for (const BitVec& s : reach.states) {
    bool compatible = true;
    for (std::size_t i = 0; i < cube.size() && compatible; ++i) {
      const V3 want = cube.get(i);
      if (want == V3::kX) continue;
      const V3 have = s.get(i) ? V3::kOne : V3::kZero;
      if (have != want) compatible = false;
    }
    if (compatible) return true;
  }
  return false;
}

StateKey random_cube(std::size_t num_ffs, std::mt19937_64& rng) {
  StateKey k(num_ffs);
  for (std::size_t i = 0; i < num_ffs; ++i) {
    switch (rng() % 3) {
      case 0:
        k.set(i, V3::kZero);
        break;
      case 1:
        k.set(i, V3::kOne);
        break;
      default:
        break;  // X
    }
  }
  return k;
}

// Exact mode answers every cube, and always agrees with a brute-force scan
// of the enumerated reachable set. Exercised on the retimed twin so both
// verdicts actually occur (its density is < 1).
TEST(AttributionOracleTest, ExactModeMatchesEnumeratedGroundTruth) {
  const Netlist nl = retimed_twin(mcnc_circuit("dk16", 0.4));
  const ReachResult reach = compute_reachable(nl);
  ASSERT_TRUE(reach.enumerated);
  ASSERT_LT(reach.density, 1.0) << "twin should have unreachable states";

  const StateValidityOracle oracle = StateValidityOracle::build(nl);
  ASSERT_EQ(oracle.info().mode, ValidityOracleInfo::Mode::kExact);
  EXPECT_DOUBLE_EQ(oracle.info().num_valid, reach.num_valid);
  EXPECT_DOUBLE_EQ(oracle.info().density, reach.density);

  // The all-X cube intersects any nonempty reachable set.
  EXPECT_EQ(oracle.classify(StateKey(nl.num_dffs())), StateValidity::kValid);

  std::mt19937_64 rng(0xa77b);
  int valid = 0, invalid = 0;
  for (int t = 0; t < 500; ++t) {
    const StateKey cube = random_cube(nl.num_dffs(), rng);
    const StateValidity got = oracle.classify(cube);
    ASSERT_NE(got, StateValidity::kUnknown) << "exact mode never punts";
    const bool expect_valid = cube_intersects(cube, reach);
    EXPECT_EQ(got == StateValidity::kValid, expect_valid)
        << "cube " << cube.to_string();
    (got == StateValidity::kValid ? valid : invalid)++;
  }
  EXPECT_GT(valid, 0);
  EXPECT_GT(invalid, 0) << "test should exercise both verdicts";
}

// Superset mode (forced by disabling enumeration) must be sound: it may
// punt, but it may never call a genuinely reachable cube invalid.
TEST(AttributionOracleTest, SupersetModeIsSoundAgainstExactReachability) {
  const Netlist nl = retimed_twin(mcnc_circuit("dk16", 0.4));
  const ReachResult reach = compute_reachable(nl);
  ASSERT_TRUE(reach.enumerated);

  ReachOptions no_enum;
  no_enum.enumerate_limit = 0;
  const StateValidityOracle oracle = StateValidityOracle::build(nl, no_enum);
  ASSERT_EQ(oracle.info().mode, ValidityOracleInfo::Mode::kSuperset);
  // The BDD analysis still completed, so the exact census rides along.
  EXPECT_DOUBLE_EQ(oracle.info().num_valid, reach.num_valid);

  // Every fully-specified reachable state, and every sub-cube of one,
  // intersects the reachable set — none may classify as invalid.
  std::mt19937_64 rng(0xbeef);
  for (const BitVec& s : reach.states) {
    StateKey full(nl.num_dffs());
    for (std::size_t i = 0; i < nl.num_dffs(); ++i)
      full.set(i, s.get(i) ? V3::kOne : V3::kZero);
    EXPECT_NE(oracle.classify(full), StateValidity::kInvalid)
        << "reachable state " << full.to_string() << " called invalid";
    StateKey sub = full;
    for (std::size_t i = 0; i < nl.num_dffs(); ++i)
      if (rng() % 2) sub.set(i, V3::kX);
    EXPECT_NE(oracle.classify(sub), StateValidity::kInvalid)
        << "reachable sub-cube " << sub.to_string() << " called invalid";
  }
  EXPECT_EQ(oracle.classify(StateKey(nl.num_dffs())), StateValidity::kValid);
}

// A default-constructed oracle is disabled and answers kUnknown.
TEST(AttributionOracleTest, DisabledOracleReturnsUnknown) {
  const StateValidityOracle oracle;
  EXPECT_FALSE(oracle.enabled());
  EXPECT_EQ(oracle.classify(StateKey(4)), StateValidity::kUnknown);
}

// Acceptance criterion: every attribution quantity — the four bucket
// arrays and the derived effort_invalid_frac — is identical at 1, 2, and
// 8 threads.
TEST(AttributionTest, AttributionIdenticalAcrossThreadCounts) {
  const Netlist nl = retimed_twin(mcnc_circuit("dk16", 0.4));
  const ParallelAtpgResult base = run_parallel_atpg(nl, small_options(1));
  for (unsigned threads : {2u, 8u}) {
    const ParallelAtpgResult res =
        run_parallel_atpg(nl, small_options(threads));
    EXPECT_EQ(res.run.attribution.justify_calls,
              base.run.attribution.justify_calls)
        << "threads=" << threads;
    EXPECT_EQ(res.run.attribution.justify_failures,
              base.run.attribution.justify_failures)
        << "threads=" << threads;
    EXPECT_EQ(res.run.attribution.justify_evals,
              base.run.attribution.justify_evals)
        << "threads=" << threads;
    EXPECT_EQ(res.run.attribution.justify_backtracks,
              base.run.attribution.justify_backtracks)
        << "threads=" << threads;
    EXPECT_EQ(res.run.effort_invalid_frac, base.run.effort_invalid_frac)
        << "threads=" << threads;
  }
}

// The paper's Figure 3 mechanism, measured: the retimed twin spends a
// strictly larger fraction of its search effort justifying provably
// invalid state cubes than its parent.
TEST(AttributionTest, RetimedTwinShowsStrictlyHigherInvalidFraction) {
  const Netlist orig = mcnc_circuit("dk16", 0.4);
  const Netlist twin = retimed_twin(orig);

  const ParallelAtpgResult ro = run_parallel_atpg(orig, small_options(2));
  const ParallelAtpgResult rt = run_parallel_atpg(twin, small_options(2));

  EXPECT_NE(rt.run.oracle.mode, ValidityOracleInfo::Mode::kDisabled);
  EXPECT_GT(rt.run.effort_invalid_frac, ro.run.effort_invalid_frac);
  EXPECT_GT(rt.run.effort_invalid_frac, 0.0);
  // An invalid-state justification can never succeed, so failures in the
  // invalid bucket must account for all of its terminated calls.
  const auto& attr = rt.run.attribution;
  EXPECT_GT(attr.justify_calls[static_cast<std::size_t>(
                StateValidity::kInvalid)],
            0u);
}

// Per-fault attribution from the merged FaultSearchStats sums to the
// run-level aggregate (same merge discipline as the other counters).
TEST(AttributionTest, PerFaultAttributionSumsToRunTotals) {
  const Netlist nl = retimed_twin(mcnc_circuit("dk16", 0.4));
  const ParallelAtpgResult res = run_parallel_atpg(nl, small_options(4));
  EffortAttribution sum;
  for (std::size_t i = 0; i < res.fault_stats.size(); ++i) {
    if (!res.attempted[i]) continue;
    sum.add(res.fault_stats[i].attribution);
  }
  EXPECT_EQ(sum.justify_calls, res.run.attribution.justify_calls);
  EXPECT_EQ(sum.justify_failures, res.run.attribution.justify_failures);
  EXPECT_EQ(sum.justify_evals, res.run.attribution.justify_evals);
  EXPECT_EQ(sum.justify_backtracks, res.run.attribution.justify_backtracks);
}

// Attribution can be turned off; the run then reports a disabled oracle
// and an all-zero attribution block.
TEST(AttributionTest, AttributeEffortFlagDisablesTheOracle) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  ParallelAtpgOptions popts = small_options(2);
  popts.run.attribute_effort = false;
  const ParallelAtpgResult res = run_parallel_atpg(nl, popts);
  EXPECT_EQ(res.run.oracle.mode, ValidityOracleInfo::Mode::kDisabled);
  EXPECT_EQ(res.run.effort_invalid_frac, 0.0);
  for (const auto& arr :
       {res.run.attribution.justify_calls, res.run.attribution.justify_evals})
    for (const std::uint64_t v : arr) EXPECT_EQ(v, 0u);
}

}  // namespace
}  // namespace satpg
