// Tests for the §7 observability stack: RunMonitor heartbeat sampling with
// a fake source, DecisionRing window/arm semantics, the stuck-search
// watchdog (observe-only invariance, defer-and-requeue coverage parity and
// thread-count invariance), deterministic capture/replay of watchdog- and
// deadline-flagged searches, and the trace dropped-event metadata.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "atpg/capture.h"
#include "atpg/parallel.h"
#include "base/json.h"
#include "base/metrics.h"
#include "base/monitor.h"
#include "base/trace.h"
#include "fsm/mcnc_suite.h"
#include "retime/retime.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

Netlist mcnc_circuit(const std::string& name, double scale) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == name) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, scale));
  return synthesize(fsm, {}).netlist;
}

ParallelAtpgOptions small_options(EngineKind kind, unsigned threads) {
  ParallelAtpgOptions popts;
  popts.run.engine.kind = kind;
  popts.run.engine.eval_limit = 150'000;
  popts.run.engine.backtrack_limit = 300;
  popts.run.random_sequences = 4;
  popts.run.random_length = 24;
  popts.num_threads = threads;
  return popts;
}

// The deterministic surface of a run — everything the report serializes.
void expect_identical(const ParallelAtpgResult& a, const ParallelAtpgResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.detected_by, b.detected_by) << what;
  EXPECT_EQ(a.run.tests, b.run.tests) << what;
  EXPECT_EQ(a.run.detected, b.run.detected) << what;
  EXPECT_EQ(a.run.redundant, b.run.redundant) << what;
  EXPECT_EQ(a.run.aborted, b.run.aborted) << what;
  EXPECT_EQ(a.run.evals, b.run.evals) << what;
  EXPECT_EQ(a.run.backtracks, b.run.backtracks) << what;
  EXPECT_EQ(a.run.fault_coverage, b.run.fault_coverage) << what;
  EXPECT_EQ(a.run.fault_efficiency, b.run.fault_efficiency) << what;
  EXPECT_EQ(a.run.fe_trace, b.run.fe_trace) << what;
  EXPECT_EQ(a.run.states_traversed, b.run.states_traversed) << what;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// --- DecisionRing -----------------------------------------------------------

TEST(DecisionRingTest, WindowKeepsLastKWithAbsoluteIndices) {
  DecisionRing ring(4);
  for (std::uint32_t i = 0; i < 10; ++i)
    ring.push({DecisionEventKind::kDecision, 0,
               static_cast<std::int32_t>(i), 1, 0});
  EXPECT_EQ(ring.total(), 10u);
  const auto w = ring.window();
  // The window covers absolute indices [6, 10), oldest first.
  ASSERT_EQ(w.size(), 4u);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_EQ(w[i].frame, static_cast<std::int32_t>(6 + i));
}

TEST(DecisionRingTest, ArmStopRaisesFlagAtExactCount) {
  DecisionRing ring(8);
  std::atomic<bool> flag{false};
  ring.arm_stop(3, &flag);
  const DecisionEvent e{DecisionEventKind::kObjective, 1, 0, 2, 0};
  ring.push(e);
  ring.push(e);
  EXPECT_FALSE(flag.load());
  ring.push(e);
  EXPECT_TRUE(flag.load());
  // Recording stops exactly at the armed count: further pushes are ignored.
  ring.push(e);
  EXPECT_EQ(ring.total(), 3u);
}

// --- RunMonitor with a fake source ------------------------------------------

class FakeSource final : public MonitorSource {
 public:
  std::string heartbeat_json(std::uint64_t seq, double elapsed_s) override {
    ++heartbeats;
    return "{\"schema\": \"fake.v1\", \"seq\": " + std::to_string(seq) +
           ", \"elapsed_s\": " + std::to_string(elapsed_s) + "}";
  }
  std::string progress_line(double) override {
    ++progress;
    return "fake progress";
  }
  std::atomic<int> heartbeats{0};
  std::atomic<int> progress{0};
};

TEST(RunMonitorTest, StreamsValidNdjsonWithMonotonicSeq) {
  const std::string path = ::testing::TempDir() + "monitor_fake.ndjson";
  FakeSource src;
  RunMonitorOptions opts;
  opts.heartbeat_json = path;
  opts.interval_ms = 1;
  RunMonitor mon(&src, opts);
  ASSERT_TRUE(mon.start());
  EXPECT_TRUE(mon.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  mon.stop();
  EXPECT_FALSE(mon.running());
  EXPECT_GE(mon.samples(), 1u);

  std::ifstream is(path);
  std::string line, err;
  std::uint64_t expect_seq = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ASSERT_TRUE(json_valid(line, &err)) << err;
    JsonValue v;
    ASSERT_TRUE(json_parse(line, &v, &err)) << err;
    EXPECT_EQ(v.uint_or("seq", ~0ull), expect_seq++);
  }
  EXPECT_EQ(expect_seq, mon.samples());
}

TEST(RunMonitorTest, StopTakesFinalSampleEvenBeforeFirstInterval) {
  const std::string path = ::testing::TempDir() + "monitor_final.ndjson";
  FakeSource src;
  RunMonitorOptions opts;
  opts.heartbeat_json = path;
  opts.interval_ms = 60'000;  // far beyond the test's lifetime
  RunMonitor mon(&src, opts);
  ASSERT_TRUE(mon.start());
  mon.stop();
  // Even an instant run gets one heartbeat: the synchronous final sample.
  EXPECT_EQ(mon.samples(), 1u);
  EXPECT_FALSE(slurp(path).empty());
}

TEST(RunMonitorTest, DisabledOptionsAreANoOp) {
  FakeSource src;
  RunMonitor mon(&src, RunMonitorOptions{});
  EXPECT_TRUE(mon.start());  // no-op succeeds
  EXPECT_FALSE(mon.running());
  mon.stop();
  EXPECT_EQ(mon.samples(), 0u);
  EXPECT_EQ(src.heartbeats.load(), 0);
}

// --- watchdog: observe-only invariance --------------------------------------

// A retimed twin plus a tiny eval threshold guarantees flagged faults.
// Flag-only mode must not change any deterministic result field — the
// watchdog block is pure annotation.
TEST(WatchdogTest, ObserveOnlyFlagsStuckFaultsWithoutChangingResults) {
  const Netlist orig = mcnc_circuit("s820", 0.3);
  const Netlist twin =
      retime_to_dff_target(orig, orig.num_dffs() * 2, orig.name() + ".re")
          .netlist;
  const ParallelAtpgResult base =
      run_parallel_atpg(twin, small_options(EngineKind::kHitec, 2));
  ParallelAtpgOptions wopts = small_options(EngineKind::kHitec, 2);
  wopts.watchdog.stuck_evals = 100;
  const ParallelAtpgResult wd = run_parallel_atpg(twin, wopts);

  expect_identical(base, wd, "watchdog observe-only");
  EXPECT_EQ(base.stuck_faults.size(), 0u);
  ASSERT_FALSE(wd.stuck_faults.empty())
      << "threshold of 100 evals flagged nothing on the retimed twin";
  EXPECT_EQ(wd.deferred_requeued, 0u);
  // Verdicts are in fault-index order with the threshold actually exceeded.
  for (std::size_t i = 0; i < wd.stuck_faults.size(); ++i) {
    EXPECT_GE(wd.stuck_faults[i].evals, wopts.watchdog.stuck_evals);
    EXPECT_FALSE(wd.stuck_faults[i].deferred);
    if (i > 0) {
      EXPECT_LT(wd.stuck_faults[i - 1].fault_index,
                wd.stuck_faults[i].fault_index);
    }
  }
}

// --- watchdog: defer-and-requeue ---------------------------------------------

// Deferred faults get their full budget on the requeue pass, so final
// coverage/efficiency match the no-watchdog run exactly; and the defer
// schedule itself must stay thread-count invariant.
TEST(WatchdogTest, DeferPreservesCoverageAndIsThreadInvariant) {
  const Netlist orig = mcnc_circuit("s820", 0.3);
  const Netlist twin =
      retime_to_dff_target(orig, orig.num_dffs() * 2, orig.name() + ".re")
          .netlist;
  const ParallelAtpgResult base =
      run_parallel_atpg(twin, small_options(EngineKind::kHitec, 1));

  auto defer_run = [&](unsigned threads) {
    ParallelAtpgOptions opts = small_options(EngineKind::kHitec, threads);
    opts.watchdog.stuck_evals = 500;
    opts.watchdog.defer = true;
    return run_parallel_atpg(twin, opts);
  };
  const ParallelAtpgResult d1 = defer_run(1);
  ASSERT_GT(d1.deferred_requeued, 0u) << "defer never engaged";
  EXPECT_EQ(d1.run.fault_coverage, base.run.fault_coverage);
  EXPECT_EQ(d1.run.fault_efficiency, base.run.fault_efficiency);
  EXPECT_EQ(d1.status, base.status);

  for (unsigned threads : {2u, 4u}) {
    const ParallelAtpgResult dt = defer_run(threads);
    expect_identical(d1, dt, "defer threads=" + std::to_string(threads));
    EXPECT_EQ(d1.deferred_requeued, dt.deferred_requeued);
    ASSERT_EQ(d1.stuck_faults.size(), dt.stuck_faults.size());
    for (std::size_t i = 0; i < d1.stuck_faults.size(); ++i) {
      EXPECT_EQ(d1.stuck_faults[i].fault_index,
                dt.stuck_faults[i].fault_index);
      EXPECT_EQ(d1.stuck_faults[i].evals, dt.stuck_faults[i].evals);
      EXPECT_EQ(d1.stuck_faults[i].deferred, dt.stuck_faults[i].deferred);
    }
  }
}

// --- capture/replay -----------------------------------------------------------

// The primary tier-1 replay assertion: capture a watchdog-flagged search,
// re-run it from the capture alone, and require the decision streams to
// match event for event.
TEST(CaptureReplayTest, WatchdogCaptureReplaysExactly) {
  const Netlist orig = mcnc_circuit("s820", 0.3);
  const Netlist twin =
      retime_to_dff_target(orig, orig.num_dffs() * 2, orig.name() + ".re")
          .netlist;
  ParallelAtpgOptions opts = small_options(EngineKind::kHitec, 2);
  opts.watchdog.stuck_evals = 100;
  opts.capture.armed = true;
  const ParallelAtpgResult res = run_parallel_atpg(twin, opts);
  ASSERT_TRUE(res.capture.has_value()) << "watchdog flagged no capture";
  EXPECT_EQ(res.capture->reason, "watchdog");
  EXPECT_GT(res.capture->ring_total, 0u);

  const ReplayResult rep = replay_capture(twin, *res.capture);
  EXPECT_TRUE(rep.ok) << rep.message;
  EXPECT_EQ(rep.replayed_events, res.capture->ring_total);
  EXPECT_EQ(rep.mismatch_index, -1);
  EXPECT_EQ(rep.status, res.capture->status);

  // Round-trip through the JSON file form too.
  const std::string path = ::testing::TempDir() + "wd_capture.json";
  ASSERT_TRUE(write_capture_json(path, *res.capture));
  SearchCapture loaded;
  std::string err;
  ASSERT_TRUE(parse_capture_json(path, &loaded, &err)) << err;
  EXPECT_EQ(loaded.events, res.capture->events);
  EXPECT_TRUE(replay_capture(twin, loaded).ok);
}

// --capture-fault targets one collapsed fault by index; the capture fires
// regardless of watchdog/deadline state and replays exactly.
TEST(CaptureReplayTest, RequestedCaptureReplaysExactly) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  ParallelAtpgOptions opts = small_options(EngineKind::kHitec, 2);
  opts.run.random_sequences = 0;  // keep every fault in the search phase
  opts.capture.armed = true;
  opts.capture.fault = "0";
  const ParallelAtpgResult res = run_parallel_atpg(nl, opts);
  ASSERT_TRUE(res.capture.has_value());
  EXPECT_EQ(res.capture->reason, "requested");
  EXPECT_EQ(res.capture->fault_index, 0u);
  const ReplayResult rep = replay_capture(nl, *res.capture);
  EXPECT_TRUE(rep.ok) << rep.message;
}

// A capture cut short by the wall-clock deadline replays deterministically:
// the armed ring stops the replay at the same absolute event index. The
// deadline is nondeterministic, so retry over growing deadlines until one
// lands mid-search.
TEST(CaptureReplayTest, DeadlineCaptureReplaysExactly) {
  const Netlist orig = mcnc_circuit("s820", 0.3);
  const Netlist twin =
      retime_to_dff_target(orig, orig.num_dffs() * 2, orig.name() + ".re")
          .netlist;
  for (std::uint64_t deadline_ms : {2ull, 10ull, 50ull, 250ull}) {
    ParallelAtpgOptions opts = small_options(EngineKind::kHitec, 2);
    opts.run.random_sequences = 0;
    opts.run.engine.eval_limit = 10'000'000;  // only the deadline can stop it
    opts.deadline_ms = deadline_ms;
    opts.capture.armed = true;
    const ParallelAtpgResult res = run_parallel_atpg(twin, opts);
    if (!res.capture || res.capture->ring_total == 0) continue;
    EXPECT_EQ(res.capture->reason, "deadline");
    const ReplayResult rep = replay_capture(twin, *res.capture);
    EXPECT_TRUE(rep.ok) << "deadline_ms=" << deadline_ms << ": "
                        << rep.message;
    return;
  }
  GTEST_SKIP() << "no deadline landed mid-search on this machine";
}

// Tampered captures are rejected by the config digest.
TEST(CaptureReplayTest, DigestGuardsAgainstEditedCaptures) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  ParallelAtpgOptions opts = small_options(EngineKind::kHitec, 1);
  opts.run.random_sequences = 0;
  opts.capture.armed = true;
  opts.capture.fault = "0";
  const ParallelAtpgResult res = run_parallel_atpg(nl, opts);
  ASSERT_TRUE(res.capture.has_value());
  SearchCapture cap = *res.capture;
  cap.soft_eval_cap = 12345;  // replay input changed, digest now stale
  const ReplayResult rep = replay_capture(nl, cap);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.message.find("digest"), std::string::npos) << rep.message;
}

// --- monitored runs stay deterministic ---------------------------------------

// Arming the in-process monitor (heartbeat sink + tiny interval) must not
// perturb the run: results bit-identical to an unmonitored run.
TEST(MonitoredRunTest, MonitorDoesNotPerturbResults) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  const ParallelAtpgResult base =
      run_parallel_atpg(nl, small_options(EngineKind::kHitec, 2));
  ParallelAtpgOptions mopts = small_options(EngineKind::kHitec, 2);
  mopts.monitor.heartbeat_json =
      ::testing::TempDir() + "monitored_run.ndjson";
  mopts.monitor.interval_ms = 1;
  const ParallelAtpgResult mon = run_parallel_atpg(nl, mopts);
  expect_identical(base, mon, "monitored run");

  // The stream itself: valid NDJSON, schema-tagged, final phase "done".
  std::ifstream is(mopts.monitor.heartbeat_json);
  std::string line, last, err;
  while (std::getline(is, line))
    if (!line.empty()) {
      ASSERT_TRUE(json_valid(line, &err)) << err;
      last = line;
    }
  ASSERT_FALSE(last.empty());
  JsonValue v;
  ASSERT_TRUE(json_parse(last, &v, &err)) << err;
  EXPECT_EQ(v.str_or("schema", ""), "satpg.heartbeat.v2");
  EXPECT_EQ(v.str_or("phase", ""), "done");
  EXPECT_EQ(v.uint_or("faults", 0), v.uint_or("resolved", 1));
}

// --- trace dropped-event surfacing -------------------------------------------

TEST(TraceDroppedTest, MetadataEventAndCounterAlwaysPresent) {
  set_metrics_enabled(true);
  MetricsRegistry::global().reset();
  TraceRecorder rec;
  rec.start();
  rec.add_complete("phase", "test", 0, 0, 10);
  rec.stop();
  EXPECT_EQ(rec.num_dropped(), 0u);

  const std::string path = ::testing::TempDir() + "trace_dropped.json";
  ASSERT_TRUE(rec.write_json(path));
  const std::string json = slurp(path);
  std::string err;
  EXPECT_TRUE(json_valid(json, &err)) << err;
  // The metadata event is present even when nothing was dropped, so its
  // absence can never be confused with "nothing dropped".
  EXPECT_NE(json.find("\"trace_events_dropped\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);

  std::ostringstream ms;
  MetricsRegistry::global().write_json(ms);
  EXPECT_NE(ms.str().find("\"trace_events_dropped\": 0"), std::string::npos);
  set_metrics_enabled(false);
}

}  // namespace
}  // namespace satpg
