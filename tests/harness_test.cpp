// Tests for the experiment harness: suite construction and caching, the
// Table 2 population, and smoke runs of the table generators on a
// scaled-down suite.
#include <gtest/gtest.h>

#include <filesystem>

#include "harness/experiments.h"
#include "harness/suite.h"

namespace satpg {
namespace {

SuiteOptions tiny_suite_options(const char* tag) {
  SuiteOptions opts;
  opts.fsm_scale = 0.35;
  opts.cache_dir =
      (std::filesystem::temp_directory_path() /
       (std::string("satpg_test_cache_") + tag))
          .string();
  std::filesystem::remove_all(opts.cache_dir);
  return opts;
}

TEST(SuiteTest, Table2SpecsMatchPaperPopulation) {
  const auto specs = table2_specs();
  EXPECT_EQ(specs.size(), 16u);
  EXPECT_EQ(specs[0].name(), "dk16.ji.sd");
  EXPECT_EQ(specs[0].retimed_name(), "dk16.ji.sd.re");
  EXPECT_EQ(specs[6].name(), "s510.jo.sr");
  EXPECT_EQ(specs[6].paper_re_dffs, 28);
  EXPECT_EQ(specs[15].name(), "scf.jo.sd");
  // Paper #DFF columns preserved.
  for (const auto& s : specs) {
    EXPECT_GE(s.paper_orig_dffs, 5);
    EXPECT_GT(s.paper_re_dffs, s.paper_orig_dffs);
  }
}

TEST(SuiteTest, BuildsOriginalAndRetimedPair) {
  Suite suite(tiny_suite_options("pair"));
  const Netlist orig = suite.circuit("dk16.ji.sd");
  EXPECT_EQ(orig.validate(), std::nullopt);
  EXPECT_GT(orig.num_gates(), 0u);
  const Netlist re = suite.circuit("dk16.ji.sd.re");
  EXPECT_EQ(re.validate(), std::nullopt);
  EXPECT_GT(re.num_dffs(), orig.num_dffs());
  EXPECT_EQ(re.num_inputs(), orig.num_inputs());
  EXPECT_EQ(re.num_outputs(), orig.num_outputs());
}

TEST(SuiteTest, CacheRoundTripsIdentically) {
  const auto opts = tiny_suite_options("cache");
  Suite first(opts);
  const Netlist a = first.circuit("s820.jc.sr");
  Suite second(opts);  // warm cache now
  const Netlist b = second.circuit("s820.jc.sr");
  EXPECT_EQ(a.num_gates(), b.num_gates());
  EXPECT_EQ(a.num_dffs(), b.num_dffs());
  EXPECT_EQ(a.num_inputs(), b.num_inputs());
  // Library annotation survives the round trip.
  for (std::size_t i = 0; i < b.num_nodes(); ++i) {
    const auto& n = b.node(static_cast<NodeId>(i));
    if (is_combinational(n.type)) EXPECT_GT(n.delay, 0.0);
  }
}

TEST(SuiteTest, Table7LadderNamesResolve) {
  Suite suite(tiny_suite_options("ladder"));
  std::size_t prev = 0;
  for (const auto& [suffix, dffs] : table7_ladder()) {
    const Netlist nl = suite.circuit("s510.jo.sr" + suffix);
    EXPECT_EQ(nl.validate(), std::nullopt);
    EXPECT_GE(nl.num_dffs(), prev);  // ladder is monotone
    prev = nl.num_dffs();
  }
}

TEST(SuiteTest, UnknownNameAborts) {
  Suite suite(tiny_suite_options("bad"));
  EXPECT_DEATH(suite.circuit("nonexistent.xx.yy"), "unknown circuit");
}

TEST(ExperimentTest, Table1Runs) {
  Suite suite(tiny_suite_options("t1"));
  const Table t = run_table1_fsms(suite);
  EXPECT_EQ(t.num_rows(), 6u);
}

TEST(ExperimentTest, EngineTableSmoke) {
  Suite suite(tiny_suite_options("t2"));
  ExperimentOptions opts;
  opts.budget_scale = 0.1;  // keep the smoke test fast
  // Restrict to one pair by running table3's shape through the public
  // helper: use the full Table 2 but at tiny scale it stays tractable...
  // still too slow for a unit test; exercise the options plumbing instead.
  const auto run_opts = scaled_run_options(opts, EngineKind::kHitec);
  EXPECT_EQ(run_opts.engine.eval_limit, 100'000u);
  EXPECT_EQ(run_opts.engine.backtrack_limit, 150u);
  const Netlist nl = suite.circuit("dk16.ji.sd");
  const auto run = run_atpg(nl, run_opts);
  EXPECT_GT(run.fault_coverage, 50.0);
}

TEST(ExperimentTest, FlagParser) {
  const char* argv[] = {"bench", "--budget=2.5", "--seed=7",
                        "--scale=0.5", "--cache=/tmp/x"};
  const auto cfg =
      parse_bench_flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cfg.experiment.budget_scale, 2.5);
  EXPECT_EQ(cfg.experiment.seed, 7u);
  EXPECT_EQ(cfg.suite.seed, 7u);
  EXPECT_DOUBLE_EQ(cfg.suite.fsm_scale, 0.5);
  EXPECT_EQ(cfg.suite.cache_dir, "/tmp/x");
}

}  // namespace
}  // namespace satpg
