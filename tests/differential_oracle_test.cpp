// Differential oracles for the ATPG stack: every detected sequence must be
// confirmed by an independent serial fault-simulation replay from the all-X
// power-up state AND by a two-machine replay on src/sim with the fault
// injected structurally; the good-machine time-frame model is cross-checked
// gate-by-gate against the sequential simulator; redundancy verdicts are
// cross-checked against BDD sequential equivalence of the fault-injected
// netlist.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/seqec.h"
#include "atpg/parallel.h"
#include "atpg/tfm.h"
#include "bdd/bdd.h"
#include "fsim/fsim.h"
#include "fsm/mcnc_suite.h"
#include "sim/simulator.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

Netlist mcnc_circuit(const std::string& name, double scale) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == name) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, scale));
  return synthesize(fsm, {}).netlist;
}

// Structural fault injection: a copy of `nl` whose behaviour is exactly the
// faulty machine. Stem faults reroute every reader of the node to a
// constant; branch faults reroute one fanin slot. This gives an oracle that
// shares no code with the fault simulator's fault overlay.
Netlist inject_fault(const Netlist& nl, const Fault& f) {
  Netlist faulty = nl;
  const NodeId c = faulty.add_const(f.stuck1, "fault_const");
  if (f.pin < 0)
    faulty.replace_uses(f.node, c);
  else
    faulty.set_fanin(f.node, static_cast<std::size_t>(f.pin), c);
  return faulty;
}

// Two-machine replay from all-X power-up on the sequential simulator:
// detected iff some cycle shows a primary output known in both machines
// with differing values (the strict PROOFS-era convention).
bool seqsim_detects(const Netlist& good, const Netlist& faulty,
                    const TestSequence& seq) {
  SeqSimulator sg(good), sf(faulty);
  sg.set_state(std::vector<V3>(good.num_dffs(), V3::kX));
  sf.set_state(std::vector<V3>(faulty.num_dffs(), V3::kX));
  for (const auto& vec : seq) {
    const auto pg = sg.step(vec);
    const auto pf = sf.step(vec);
    for (std::size_t o = 0; o < pg.size(); ++o)
      if (pg[o] != V3::kX && pf[o] != V3::kX && pg[o] != pf[o]) return true;
  }
  return false;
}

ParallelAtpgResult strict_run(const Netlist& nl,
                              EngineKind kind = EngineKind::kHitec) {
  ParallelAtpgOptions popts;
  popts.run.engine.kind = kind;
  popts.run.engine.eval_limit = 150'000;
  popts.run.engine.backtrack_limit = 300;
  popts.run.random_sequences = 4;
  popts.run.random_length = 24;
  popts.run.count_potential_detections = false;
  popts.num_threads = 2;
  return run_parallel_atpg(nl, popts);
}

// --- detections --------------------------------------------------------------

TEST(DifferentialOracleTest, EveryDetectionReplaysUnderTwoIndependentOracles) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  const auto collapsed = collapse_faults(nl);
  const auto r = strict_run(nl);
  ASSERT_EQ(r.status.size(), collapsed.size());

  std::size_t checked = 0, weighted_detected = 0;
  for (std::size_t i = 0; i < collapsed.size(); ++i) {
    if (r.status[i] != FaultStatus::kDetected) continue;
    weighted_detected +=
        static_cast<std::size_t>(collapsed[i].class_size);
    const Fault& f = collapsed[i].representative;
    ASSERT_GE(r.detected_by[i], 0) << fault_name(nl, f);
    ASSERT_LT(static_cast<std::size_t>(r.detected_by[i]),
              r.run.tests.size());
    const TestSequence& seq =
        r.run.tests[static_cast<std::size_t>(r.detected_by[i])];
    // Oracle 1: serial three-valued fault simulation from all-X power-up.
    EXPECT_GE(simulate_fault_serial(nl, f, seq), 0) << fault_name(nl, f);
    // Oracle 2: structural injection + two-machine src/sim replay.
    EXPECT_TRUE(seqsim_detects(nl, inject_fault(nl, f), seq))
        << fault_name(nl, f);
    ++checked;
  }
  EXPECT_GT(checked, collapsed.size() / 2);
  // Strict statuses must reconcile with the strict summary numbers.
  EXPECT_EQ(weighted_detected, r.run.detected);
}

// Same two-oracle replay for the SAT engine: every kCdcl detection — a
// model of the Tseitin time-frame CNF lifted to a vector sequence — must
// be confirmed by the serial fault simulator AND by structural injection
// on the src/sim two-machine replay, neither of which shares a line of
// code with the CNF encoder.
TEST(DifferentialOracleTest, EveryCdclDetectionReplaysUnderTwoIndependentOracles) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  const auto collapsed = collapse_faults(nl);
  const auto r = strict_run(nl, EngineKind::kCdcl);
  ASSERT_EQ(r.status.size(), collapsed.size());

  std::size_t checked = 0;
  for (std::size_t i = 0; i < collapsed.size(); ++i) {
    if (r.status[i] != FaultStatus::kDetected) continue;
    const Fault& f = collapsed[i].representative;
    ASSERT_GE(r.detected_by[i], 0) << fault_name(nl, f);
    const TestSequence& seq =
        r.run.tests[static_cast<std::size_t>(r.detected_by[i])];
    EXPECT_GE(simulate_fault_serial(nl, f, seq), 0) << fault_name(nl, f);
    EXPECT_TRUE(seqsim_detects(nl, inject_fault(nl, f), seq))
        << fault_name(nl, f);
    ++checked;
  }
  EXPECT_GT(checked, collapsed.size() / 2);
}

// --- good-machine cross-check ------------------------------------------------

// The time-frame model (the engine's view of the good machine) must agree
// gate-by-gate, frame-by-frame with the sequential simulator when both
// start from the all-X power-up state and see the same input vectors.
TEST(DifferentialOracleTest, TimeFrameModelMatchesSimulatorGateByGate) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  const auto r = strict_run(nl);
  ASSERT_FALSE(r.run.tests.empty());

  std::size_t sequences = 0;
  for (const auto& seq : r.run.tests) {
    if (sequences++ >= 6) break;
    const int frames = static_cast<int>(std::min<std::size_t>(seq.size(), 12));
    TimeFrameModel tfm(nl, std::nullopt, frames);
    SeqSimulator sim(nl);
    sim.set_state(std::vector<V3>(nl.num_dffs(), V3::kX));
    for (int t = 0; t < frames; ++t) {
      for (std::size_t i = 0; i < nl.num_inputs(); ++i)
        if (seq[static_cast<std::size_t>(t)][i] != V3::kX)
          tfm.assign(t, nl.inputs()[i], seq[static_cast<std::size_t>(t)][i]);
      sim.eval_outputs(seq[static_cast<std::size_t>(t)]);
      for (std::size_t n = 0; n < nl.num_nodes(); ++n) {
        const auto& node = nl.node(static_cast<NodeId>(n));
        if (node.dead) continue;
        EXPECT_EQ(tfm.value(t, static_cast<NodeId>(n)).g,
                  sim.value(static_cast<NodeId>(n)))
            << "node " << node.name << " frame " << t;
      }
      sim.set_state(sim.next_state());
    }
  }
}

// --- redundancy --------------------------------------------------------------

// A hand-built redundancy: y = OR(a, AND(b, !b)); the AND output s-a-0 is
// unexcitable. State space is 2, so exhaustive two-machine comparison over
// every (state, input) is a complete oracle.
TEST(DifferentialOracleTest, HandRedundancyIsBehaviourallyInvisible) {
  Netlist nl("red");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId nb = nl.add_gate(GateType::kNot, "nb", {b});
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {b, nb});
  const NodeId y = nl.add_gate(GateType::kOr, "y", {a, g});
  const NodeId q = nl.add_dff("q", y, FfInit::kUnknown);
  nl.add_output("o", q);

  const Fault f{g, -1, false};
  AtpgEngine engine(nl, {});
  ASSERT_EQ(engine.generate(f).status, FaultStatus::kRedundant);
  // The SAT engine must reach the same verdict through its own proof path
  // (UNSAT single-frame dual-rail CNF instead of PODEM exhaustion).
  EngineOptions cdcl_opts;
  cdcl_opts.kind = EngineKind::kCdcl;
  AtpgEngine cdcl_engine(nl, cdcl_opts);
  ASSERT_EQ(cdcl_engine.generate(f).status, FaultStatus::kRedundant);

  const Netlist faulty = inject_fault(nl, f);
  SeqSimulator sg(nl), sf(faulty);
  for (int state = 0; state < 2; ++state) {
    for (int in = 0; in < 4; ++in) {
      const std::vector<V3> st{state ? V3::kOne : V3::kZero};
      const std::vector<V3> pi{(in & 1) ? V3::kOne : V3::kZero,
                               (in & 2) ? V3::kOne : V3::kZero};
      sg.set_state(st);
      sf.set_state(st);
      EXPECT_EQ(sg.step(pi), sf.step(pi)) << "state " << state << " in " << in;
      EXPECT_EQ(sg.next_state(), sf.next_state())
          << "state " << state << " in " << in;
    }
  }
}

// Engine-redundant faults on a synthesized machine must leave the circuit
// sequentially equivalent to the fault-free original (BDD product-machine
// proof). The engine's free-state single-frame proof is strictly stronger
// than reset-synchronized equivalence, so equivalence must always hold.
TEST(DifferentialOracleTest, RedundantFaultsAreSequentiallyEquivalent) {
  // s820 at this scale is the smallest suite member whose synthesis leaves
  // engine-provable redundancies (dk16 has none at any scale).
  const Netlist nl = mcnc_circuit("s820", 0.5);
  // The oracle itself must accept the identity before we trust it on
  // injected netlists.
  try {
    ASSERT_TRUE(check_sequential_equivalence(nl, nl).equivalent);
  } catch (const BddOverflow&) {
    GTEST_SKIP() << "circuit too large for the BDD oracle";
  }

  const auto collapsed = collapse_faults(nl);
  const auto r = strict_run(nl);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < collapsed.size(); ++i) {
    if (r.status[i] != FaultStatus::kRedundant) continue;
    const Fault& f = collapsed[i].representative;
    try {
      const auto eq = check_sequential_equivalence(nl, inject_fault(nl, f));
      EXPECT_TRUE(eq.equivalent)
          << fault_name(nl, f) << ": " << eq.note;
      ++checked;
    } catch (const BddOverflow&) {
      // Intractable instance: the verdict is checked elsewhere by random
      // barrage (atpg_test) and reachability enumeration (property_test).
    }
  }
  // dk16 at this scale is expected to expose at least one redundancy; if
  // synthesis changes that, the test silently checks nothing — fail loudly
  // instead so the calibration gets revisited.
  EXPECT_GT(checked, 0u);
}

// Every kCdcl `redundant` verdict (an UNSAT proof over the single-frame
// dual-rail CNF with free state) must be confirmed by the BDD sequential-
// equivalence prover on the fault-injected netlist — the independent proof
// path the study's redundancy claims rest on.
TEST(DifferentialOracleTest, CdclRedundantVerdictsAreSequentiallyEquivalent) {
  const Netlist nl = mcnc_circuit("s820", 0.5);
  try {
    ASSERT_TRUE(check_sequential_equivalence(nl, nl).equivalent);
  } catch (const BddOverflow&) {
    GTEST_SKIP() << "circuit too large for the BDD oracle";
  }

  const auto collapsed = collapse_faults(nl);
  const auto r = strict_run(nl, EngineKind::kCdcl);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < collapsed.size(); ++i) {
    if (r.status[i] != FaultStatus::kRedundant) continue;
    const Fault& f = collapsed[i].representative;
    try {
      const auto eq = check_sequential_equivalence(nl, inject_fault(nl, f));
      EXPECT_TRUE(eq.equivalent) << fault_name(nl, f) << ": " << eq.note;
      ++checked;
    } catch (const BddOverflow&) {
      // Intractable instance; covered by the reachability barrage in
      // property_test.
    }
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace satpg
