// Tests for static test-set compaction.
#include <gtest/gtest.h>

#include "atpg/compact.h"
#include "atpg/engine.h"
#include "fsm/mcnc_suite.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

Netlist small_machine() {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "s820") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.35));
  return synthesize(fsm, {}).netlist;
}

TEST(CompactTest, PreservesCoverage) {
  const Netlist nl = small_machine();
  AtpgRunOptions opts;
  opts.engine.eval_limit = 200'000;
  opts.engine.backtrack_limit = 300;
  opts.random_sequences = 16;  // deliberately redundant test set
  const auto run = run_atpg(nl, opts);
  ASSERT_GT(run.tests.size(), 1u);

  const auto c = compact_tests(nl, run.tests);
  EXPECT_EQ(c.before, run.tests.size());
  EXPECT_LE(c.after, c.before);
  EXPECT_GE(c.detected_after, c.detected_before);
}

TEST(CompactTest, DropsUselessSequences) {
  const Netlist nl = small_machine();
  AtpgRunOptions opts;
  opts.engine.eval_limit = 200'000;
  opts.engine.backtrack_limit = 300;
  const auto run = run_atpg(nl, opts);
  // Duplicate the whole test set; compaction must fall back to (at most)
  // the original size.
  std::vector<TestSequence> doubled = run.tests;
  doubled.insert(doubled.end(), run.tests.begin(), run.tests.end());
  const auto c = compact_tests(nl, doubled);
  EXPECT_LE(c.after, run.tests.size());
  EXPECT_EQ(c.detected_after, c.detected_before);
}

TEST(CompactTest, EmptySetIsNoop) {
  const Netlist nl = small_machine();
  const auto c = compact_tests(nl, {});
  EXPECT_EQ(c.before, 0u);
  EXPECT_EQ(c.after, 0u);
  EXPECT_EQ(c.detected_before, 0u);
}

}  // namespace
}  // namespace satpg
