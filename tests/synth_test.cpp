// Tests for src/synth: cover algebra + espresso (exhaustively verified),
// state assignment, tech mapping, and full FSM -> netlist equivalence.
#include <gtest/gtest.h>

#include <set>

#include "base/rng.h"
#include "fsm/mcnc_suite.h"
#include "fsm/minimize.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "synth/cover.h"
#include "synth/encode.h"
#include "synth/library.h"
#include "synth/scripts.h"
#include "synth/synthesize.h"
#include "synth/techmap.h"

namespace satpg {
namespace {

// ---------- cover algebra ----------

TEST(CoverTest, CofactorDropsConflicts) {
  const Cover cover{Cube::from_string("1-0"), Cube::from_string("0-1")};
  const auto cof = cover_cofactor(cover, Cube::from_string("1--"));
  ASSERT_EQ(cof.size(), 1u);
  EXPECT_EQ(cof[0].to_string(), "--0");
}

TEST(CoverTest, TautologyBasics) {
  EXPECT_TRUE(cover_tautology({Cube::from_string("---")}, 3));
  EXPECT_TRUE(cover_tautology(
      {Cube::from_string("1--"), Cube::from_string("0--")}, 3));
  EXPECT_FALSE(cover_tautology({Cube::from_string("1--")}, 3));
}

TEST(CoverTest, CubeContains) {
  EXPECT_TRUE(cube_contains(Cube::from_string("1--"),
                            Cube::from_string("1-0")));
  EXPECT_FALSE(cube_contains(Cube::from_string("1-0"),
                             Cube::from_string("1--")));
  EXPECT_TRUE(cube_contains(Cube::from_string("---"),
                            Cube::from_string("010")));
}

TEST(CoverTest, ContainsCubeSemantically) {
  // Cover {1--, 01-} contains cube 0 1 - but also -1- (split across cubes).
  const Cover cover{Cube::from_string("1--"), Cube::from_string("01-")};
  EXPECT_TRUE(cover_contains_cube(cover, Cube::from_string("01-"), 3));
  EXPECT_TRUE(cover_contains_cube(cover, Cube::from_string("-1-"), 3));
  EXPECT_FALSE(cover_contains_cube(cover, Cube::from_string("0--"), 3));
}

// Exhaustive semantic check of espresso_lite on random functions.
class EspressoProperty : public ::testing::TestWithParam<int> {};

TEST_P(EspressoProperty, MinimizedCoverIsEquivalent) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t nv = 6;
  // Random truth table with ON/DC/OFF classes.
  std::vector<int> klass(1u << nv);  // 0=off,1=on,2=dc
  for (auto& k : klass) k = rng.next_int(0, 5) < 2 ? 1 : (rng.next_bool() ? 0 : 2);
  Cover on, dc;
  for (std::size_t m = 0; m < klass.size(); ++m) {
    Cube c;
    c.value = BitVec::from_value(nv, m);
    c.care = BitVec(nv);
    c.care.set_all();
    if (klass[m] == 1) on.push_back(c);
    if (klass[m] == 2) dc.push_back(c);
  }
  for (int passes = 1; passes <= 2; ++passes) {
    EspressoOptions opts;
    opts.passes = passes;
    opts.seed = static_cast<std::uint64_t>(seed);
    const Cover result = espresso_lite(on, dc, nv, opts);
    // Equivalence: every ON minterm covered; no OFF minterm covered.
    for (std::size_t m = 0; m < klass.size(); ++m) {
      const BitVec bits = BitVec::from_value(nv, m);
      if (klass[m] == 1)
        EXPECT_TRUE(cover_matches(result, bits)) << "ON minterm lost: " << m;
      if (klass[m] == 0)
        EXPECT_FALSE(cover_matches(result, bits))
            << "OFF minterm covered: " << m;
    }
    // And it didn't grow.
    EXPECT_LE(result.size(), on.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspressoProperty, ::testing::Range(0, 12));

TEST(EspressoTest, UsesDontCaresToMerge) {
  // ON = {00, 11}, DC = {01, 10} over 2 vars -> single tautology cube.
  Cover on{Cube::from_string("00"), Cube::from_string("11")};
  Cover dc{Cube::from_string("01"), Cube::from_string("10")};
  const Cover r = espresso_lite(on, dc, 2, {});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].care.count(), 0u);
}

TEST(EspressoTest, EmptyOnGivesEmptyCover) {
  EXPECT_TRUE(espresso_lite({}, {}, 4, {}).empty());
}

// ---------- state assignment ----------

class EncoderProperty
    : public ::testing::TestWithParam<std::tuple<EncodeAlgo, const char*>> {};

TEST_P(EncoderProperty, CodesAreValid) {
  const auto [algo, fsm_name] = GetParam();
  const Fsm fsm = minimize_fsm(mcnc_fsm(fsm_name));
  const Encoding enc = assign_states(fsm, algo);
  // Distinct codes, correct width.
  std::set<std::string> seen;
  for (const auto& c : enc.code) {
    EXPECT_EQ(static_cast<int>(c.size()), enc.bits);
    EXPECT_TRUE(seen.insert(c.to_string()).second) << "duplicate code";
  }
  if (algo == EncodeAlgo::kOneHot) {
    EXPECT_EQ(enc.bits, fsm.num_states());
    for (const auto& c : enc.code) EXPECT_EQ(c.count(), 1u);
  } else {
    // Minimum-bit encoding, reset at all-zero.
    int b = 0;
    while ((1 << b) < fsm.num_states()) ++b;
    EXPECT_EQ(enc.bits, std::max(1, b));
    EXPECT_TRUE(
        enc.code[static_cast<std::size_t>(fsm.reset_state())].none());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgosByFsm, EncoderProperty,
    ::testing::Combine(::testing::Values(EncodeAlgo::kInputDominant,
                                         EncodeAlgo::kOutputDominant,
                                         EncodeAlgo::kCombined,
                                         EncodeAlgo::kOneHot,
                                         EncodeAlgo::kNatural),
                       ::testing::Values("dk16", "s820")),
    [](const auto& info) {
      return std::string(encode_algo_suffix(std::get<0>(info.param))).substr(1) +
             "_" + std::get<1>(info.param);
    });

TEST(EncoderTest, StateOfLooksUpCodes) {
  const Fsm fsm = minimize_fsm(mcnc_fsm("dk16"));
  const Encoding enc = assign_states(fsm, EncodeAlgo::kCombined);
  for (int s = 0; s < fsm.num_states(); ++s)
    EXPECT_EQ(enc.state_of(enc.code[static_cast<std::size_t>(s)]), s);
  EXPECT_EQ(enc.state_of(BitVec::from_value(
                static_cast<std::size_t>(enc.bits),
                (1ULL << enc.bits) - 1)),
            enc.state_of(BitVec(static_cast<std::size_t>(enc.bits), true)));
}

TEST(EncoderTest, AffinityIsSymmetric) {
  const Fsm fsm = minimize_fsm(mcnc_fsm("dk16"));
  for (EncodeAlgo algo : {EncodeAlgo::kInputDominant,
                          EncodeAlgo::kOutputDominant,
                          EncodeAlgo::kCombined}) {
    const auto w = state_affinity(fsm, algo);
    for (std::size_t i = 0; i < w.size(); ++i)
      for (std::size_t j = 0; j < w.size(); ++j)
        EXPECT_DOUBLE_EQ(w[i][j], w[j][i]);
  }
}

// ---------- tech map ----------

TEST(TechMapTest, DecomposesWideGates) {
  Netlist nl("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 11; ++i)
    ins.push_back(nl.add_input("i" + std::to_string(i)));
  const NodeId g = nl.add_gate(GateType::kAnd, "g", ins);
  nl.add_output("o", g);
  for (bool area : {false, true}) {
    Netlist c = nl.clone(area ? "area" : "delay");
    tech_map(c, {area});
    EXPECT_EQ(c.validate(), std::nullopt);
    for (std::size_t i = 0; i < c.num_nodes(); ++i) {
      const auto& n = c.node(static_cast<NodeId>(i));
      if (is_combinational(n.type))
        EXPECT_LE(n.fanins.size(), static_cast<std::size_t>(kMaxLibFanin));
    }
  }
}

TEST(TechMapTest, BalancedBeatsChainOnDelay) {
  Netlist nl("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 16; ++i)
    ins.push_back(nl.add_input("i" + std::to_string(i)));
  nl.add_output("o", nl.add_gate(GateType::kAnd, "g", ins));
  Netlist balanced = nl.clone("b");
  Netlist chain = nl.clone("c");
  tech_map(balanced, {/*area_mode=*/false});
  tech_map(chain, {/*area_mode=*/true});
  EXPECT_LT(critical_path_delay(balanced), critical_path_delay(chain));
}

TEST(TechMapTest, ConstantPropagation) {
  Netlist nl("c");
  const NodeId a = nl.add_input("a");
  const NodeId zero = nl.add_const(false, "z");
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {a, zero});
  const NodeId h = nl.add_gate(GateType::kOr, "h", {g, a});
  nl.add_output("o", h);
  tech_map(nl, {});
  // AND(a,0)=0; OR(0,a)=a; output driven by the input directly.
  EXPECT_EQ(nl.num_gates(), 0u);
  const auto& out = nl.node(nl.outputs()[0]);
  EXPECT_EQ(nl.node(out.fanins[0]).type, GateType::kInput);
}

TEST(TechMapTest, MergesInverterIntoNand) {
  Netlist nl("m");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {a, b});
  const NodeId inv = nl.add_gate(GateType::kNot, "inv", {g});
  nl.add_output("o", inv);
  tech_map(nl, {});
  EXPECT_EQ(nl.num_gates(), 1u);
  bool found_nand = false;
  for (std::size_t i = 0; i < nl.num_nodes(); ++i)
    if (nl.node(static_cast<NodeId>(i)).type == GateType::kNand)
      found_nand = true;
  EXPECT_TRUE(found_nand);
}

TEST(TechMapTest, SharingReducesDuplicates) {
  Netlist nl("s");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(GateType::kAnd, "g1", {a, b});
  const NodeId g2 = nl.add_gate(GateType::kAnd, "g2", {b, a});  // same fn
  nl.add_output("o1", g1);
  nl.add_output("o2", g2);
  tech_map(nl, {/*area_mode=*/true});
  EXPECT_EQ(nl.num_gates(), 1u);
}

// Random-netlist equivalence property: tech_map preserves function.
class TechMapEquiv : public ::testing::TestWithParam<int> {};

TEST_P(TechMapEquiv, PreservesSimulation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 5);
  // Random combinational DAG: 5 inputs, ~25 gates of arbitrary arity.
  Netlist nl("rand");
  std::vector<NodeId> pool;
  for (int i = 0; i < 5; ++i)
    pool.push_back(nl.add_input("i" + std::to_string(i)));
  for (int g = 0; g < 25; ++g) {
    const GateType types[] = {GateType::kAnd,  GateType::kOr,
                              GateType::kNand, GateType::kNor,
                              GateType::kXor,  GateType::kNot};
    const GateType t = types[rng.next_int(0, 5)];
    std::size_t arity = t == GateType::kNot
                            ? 1
                            : (t == GateType::kXor
                                   ? 2
                                   : static_cast<std::size_t>(
                                         rng.next_int(2, 7)));
    std::vector<NodeId> fanins;
    for (std::size_t k = 0; k < arity; ++k)
      fanins.push_back(pool[static_cast<std::size_t>(
          rng.next_int(0, static_cast<int>(pool.size()) - 1))]);
    pool.push_back(nl.add_gate(t, "g" + std::to_string(g), fanins));
  }
  for (int o = 0; o < 4; ++o)
    nl.add_output("o" + std::to_string(o),
                  pool[pool.size() - 1 - static_cast<std::size_t>(o)]);

  Netlist mapped = nl.clone("mapped");
  tech_map(mapped, {GetParam() % 2 == 0});

  SeqSimulator s0(nl), s1(mapped);
  for (unsigned v = 0; v < 32; ++v) {
    std::vector<V3> in;
    for (int i = 0; i < 5; ++i)
      in.push_back((v >> i) & 1 ? V3::kOne : V3::kZero);
    EXPECT_EQ(s0.eval_outputs(in), s1.eval_outputs(in)) << "vector " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TechMapEquiv, ::testing::Range(0, 10));

// ---------- common-cube extraction ----------

TEST(ExtractTest, SharesRepeatedPairs) {
  Netlist nl("x");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId d = nl.add_input("d");
  nl.add_output("o1", nl.add_gate(GateType::kAnd, "g1", {a, b, c}));
  nl.add_output("o2", nl.add_gate(GateType::kAnd, "g2", {a, b, d}));
  const int extractions = extract_common_cubes(nl);
  EXPECT_GE(extractions, 1);
  EXPECT_EQ(nl.validate(), std::nullopt);
}

// ---------- full synthesis equivalence ----------

// For every suite FSM x encoder x script: reset the netlist with one rst=1
// cycle, then lock-step against the symbolic machine on random inputs.
class SynthEquivalence
    : public ::testing::TestWithParam<
          std::tuple<const char*, EncodeAlgo, ScriptKind>> {};

TEST_P(SynthEquivalence, NetlistMatchesFsm) {
  const auto [name, algo, script] = GetParam();
  // Scaled-down machines keep the full flow but make the test fast.
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == name) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.5));

  SynthOptions opts;
  opts.encode = algo;
  opts.script = script;
  const SynthResult res = synthesize(fsm, opts);
  ASSERT_EQ(res.netlist.validate(), std::nullopt);

  const Fsm& m = res.minimized;
  SeqSimulator sim(res.netlist);
  const std::size_t ni = static_cast<std::size_t>(m.num_inputs());
  ASSERT_EQ(res.netlist.num_inputs(), ni + 1);  // + rst

  Rng rng(42);
  // Reset cycle.
  {
    std::vector<V3> in(ni + 1, V3::kZero);
    in[ni] = V3::kOne;  // rst is the last-added input
    sim.step(in);
  }
  // The netlist state must now equal the reset state's code.
  int state = m.reset_state();
  for (int b = 0; b < res.encoding.bits; ++b)
    EXPECT_EQ(sim.state()[static_cast<std::size_t>(b)],
              res.encoding.code[static_cast<std::size_t>(state)].get(
                  static_cast<std::size_t>(b))
                  ? V3::kOne
                  : V3::kZero)
        << "reset code bit " << b;

  for (int t = 0; t < 300; ++t) {
    BitVec bits(ni);
    std::vector<V3> in(ni + 1, V3::kZero);
    for (std::size_t i = 0; i < ni; ++i) {
      const bool v = rng.next_bool();
      bits.set(i, v);
      in[i] = v ? V3::kOne : V3::kZero;
    }
    const auto spec_step = m.step(state, bits);
    ASSERT_TRUE(spec_step.specified);
    const auto out = sim.step(in);
    for (int o = 0; o < m.num_outputs(); ++o) {
      if (spec_step.outputs[static_cast<std::size_t>(o)] == V3::kX) continue;
      EXPECT_EQ(out[static_cast<std::size_t>(o)],
                spec_step.outputs[static_cast<std::size_t>(o)])
          << "cycle " << t << " output " << o;
    }
    state = spec_step.next_state;
    // State code also tracks.
    for (int b = 0; b < res.encoding.bits; ++b)
      EXPECT_EQ(sim.state()[static_cast<std::size_t>(b)],
                res.encoding.code[static_cast<std::size_t>(state)].get(
                    static_cast<std::size_t>(b))
                    ? V3::kOne
                    : V3::kZero)
          << "cycle " << t << " state bit " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FlowMatrix, SynthEquivalence,
    ::testing::Combine(::testing::Values("dk16", "pma", "s820"),
                       ::testing::Values(EncodeAlgo::kInputDominant,
                                         EncodeAlgo::kOutputDominant,
                                         EncodeAlgo::kCombined,
                                         EncodeAlgo::kOneHot),
                       ::testing::Values(ScriptKind::kRugged,
                                         ScriptKind::kDelay)),
    [](const auto& info) {
      std::string s = std::string(std::get<0>(info.param)) +
                      encode_algo_suffix(std::get<1>(info.param)) +
                      script_suffix(std::get<2>(info.param));
      for (char& c : s)
        if (c == '.') c = '_';
      return s;
    });

TEST(SynthTest, NamesFollowPaperConvention) {
  const Fsm fsm = generate_control_fsm(scaled_spec(mcnc_specs()[0], 0.3));
  SynthOptions opts;
  opts.encode = EncodeAlgo::kInputDominant;
  opts.script = ScriptKind::kDelay;
  const auto res = synthesize(fsm, opts);
  EXPECT_EQ(res.name, "dk16.ji.sd");
  EXPECT_EQ(res.netlist.name(), "dk16.ji.sd");
}

TEST(SynthTest, MappedGatesAreLibraryCells) {
  const Fsm fsm = generate_control_fsm(scaled_spec(mcnc_specs()[1], 0.5));
  const auto res = synthesize(fsm, {});
  for (std::size_t i = 0; i < res.netlist.num_nodes(); ++i) {
    const auto& n = res.netlist.node(static_cast<NodeId>(i));
    if (!is_combinational(n.type)) continue;
    EXPECT_LE(n.fanins.size(), static_cast<std::size_t>(kMaxLibFanin));
    EXPECT_GT(n.delay, 0.0) << n.name;
  }
  EXPECT_GT(critical_path_delay(res.netlist), 0.0);
}

TEST(SynthTest, ScriptsTradeAreaForDelay) {
  // Across the suite the rugged script should win on area and the delay
  // script on critical path (allow ties on tiny machines).
  const Fsm fsm = generate_control_fsm(scaled_spec(mcnc_specs()[2], 0.4));
  SynthOptions a;
  a.script = ScriptKind::kRugged;
  SynthOptions d;
  d.script = ScriptKind::kDelay;
  const auto ra = synthesize(fsm, a);
  const auto rd = synthesize(fsm, d);
  EXPECT_LE(ra.netlist.total_area(), rd.netlist.total_area() * 1.1);
  EXPECT_LE(critical_path_delay(rd.netlist),
            critical_path_delay(ra.netlist) * 1.1);
}

}  // namespace
}  // namespace satpg
