// Differential tests for the wide (PPSFP) fault-simulation engine:
// per-tier kernel selftests, wide == baseline == serial cross-checks on
// hand and MCNC circuits (plus retimed twins), potential-detect
// semantics, first-detection tie-breaks, ragged sequence lengths, PVW
// invariants, and metrics parity between engines. Every check runs for
// each SIMD tier the build + CPU can execute, always including the
// portable scalar kernel — the results contract is byte-identity across
// tiers, thread counts, and engines.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "atpg/engine.h"
#include "base/metrics.h"
#include "fsim/fsim.h"
#include "fsm/mcnc_suite.h"
#include "retime/retime.h"
#include "sim/statekey.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

// Every tier the current build + CPU can execute (scalar always can).
std::vector<SimdTier> usable_tiers() {
  std::vector<SimdTier> tiers;
  for (const SimdTier t : {SimdTier::kScalar, SimdTier::kSse2,
                           SimdTier::kAvx2, SimdTier::kAvx512})
    if (fsim_wide_tier_usable(t)) tiers.push_back(t);
  return tiers;
}

// 1-bit toggle with reset: q' = rst ? 0 : !q ; out = q.
Netlist toggler() {
  Netlist nl("tog");
  const NodeId rst = nl.add_input("rst");
  const NodeId q = nl.add_dff("q", rst, FfInit::kUnknown);
  const NodeId nq = nl.add_gate(GateType::kNot, "nq", {q});
  const NodeId nrst = nl.add_gate(GateType::kNot, "nrst", {rst});
  const NodeId d = nl.add_gate(GateType::kAnd, "d", {nq, nrst});
  nl.set_fanin(q, 0, d);
  nl.add_output("o", q);
  return nl;
}

TestSequence seq_of(std::initializer_list<int> rst_bits) {
  TestSequence s;
  for (int b : rst_bits) s.push_back({b ? V3::kOne : V3::kZero});
  return s;
}

FsimResult run_wide(const Netlist& nl, const std::vector<Fault>& faults,
                    const std::vector<TestSequence>& seqs, SimdTier tier,
                    unsigned threads = 1) {
  FsimOptions opts;
  opts.num_threads = threads;
  opts.engine = FsimEngine::kWide;
  opts.simd = tier;
  return run_fault_simulation(nl, faults, seqs, opts);
}

FsimResult run_baseline(const Netlist& nl, const std::vector<Fault>& faults,
                        const std::vector<TestSequence>& seqs,
                        unsigned threads = 1) {
  FsimOptions opts;
  opts.num_threads = threads;
  opts.engine = FsimEngine::kBaseline64;
  return run_fault_simulation(nl, faults, seqs, opts);
}

void expect_same_result(const FsimResult& a, const FsimResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.detected_at, b.detected_at) << label;
  EXPECT_EQ(a.potential_at, b.potential_at) << label;
  EXPECT_EQ(a.good_states, b.good_states) << label;
  EXPECT_EQ(a.num_detected, b.num_detected) << label;
}

TEST(WideKernelTest, SelftestPassesOnEveryUsableTier) {
  for (const SimdTier tier : usable_tiers())
    EXPECT_TRUE(run_wide_kernel_selftest(tier)) << simd_tier_name(tier);
  EXPECT_TRUE(run_wide_kernel_selftest(SimdTier::kAuto));
}

TEST(WideKernelTest, TierResolutionRespectsLadder) {
  // kScalar is always usable and kAuto resolves to something usable.
  EXPECT_TRUE(fsim_wide_tier_usable(SimdTier::kScalar));
  EXPECT_TRUE(fsim_wide_tier_usable(SimdTier::kAuto));
  EXPECT_TRUE(fsim_wide_tier_usable(fsim_wide_resolve_tier(SimdTier::kAuto)));
}

TEST(PvwTest, SlotRoundTripAndWellFormed) {
  PVW w = PVW::all(V3::kX);
  EXPECT_TRUE(w.well_formed());
  for (unsigned g = 0; g < PVW::kSubWords; ++g)
    for (unsigned i = 0; i < 64; i += 13) EXPECT_EQ(w.slot(g, i), V3::kX);
  w.set_slot(2, 5, V3::kOne);
  w.set_slot(7, 63, V3::kZero);
  w.set_slot(0, 0, V3::kOne);
  EXPECT_EQ(w.slot(2, 5), V3::kOne);
  EXPECT_EQ(w.slot(7, 63), V3::kZero);
  EXPECT_EQ(w.slot(0, 0), V3::kOne);
  EXPECT_EQ(w.slot(2, 6), V3::kX);
  EXPECT_TRUE(w.well_formed());
  // A slot claiming both 0 and 1 violates the plane invariant.
  w.zero[2] |= (1ULL << 5);
  EXPECT_FALSE(w.well_formed());
}

TEST(WideFsimTest, MatchesSerialOnToggler) {
  const Netlist nl = toggler();
  const auto faults = enumerate_faults(nl);
  // 9 sequences: spans two lane groups; varied content per lane.
  std::vector<TestSequence> seqs;
  for (int k = 0; k < 9; ++k) {
    TestSequence s = seq_of({1, 0, 0, 0, 1, 0, 0});
    for (int c = 0; c < k % 4; ++c) s.push_back({V3::kZero});
    seqs.push_back(s);
  }
  for (const SimdTier tier : usable_tiers()) {
    const auto wide = run_wide(nl, faults, seqs, tier);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      int serial_at = -1;
      for (std::size_t s = 0; s < seqs.size() && serial_at < 0; ++s)
        if (simulate_fault_serial(nl, faults[i], seqs[s]) >= 0)
          serial_at = static_cast<int>(s);
      EXPECT_EQ(wide.detected_at[i], serial_at)
          << fault_name(nl, faults[i]) << " " << simd_tier_name(tier);
    }
  }
}

TEST(WideFsimTest, PotentialDetectionMatchesBaseline) {
  const Netlist nl = toggler();
  // rst s-a-0: faulty machine never initializes — potential detection
  // only (good output known, faulty output X).
  const Fault f{nl.find("rst"), -1, false};
  const std::vector<TestSequence> seqs{seq_of({1, 0, 0, 0}),
                                       seq_of({0, 0, 0, 0}),
                                       seq_of({1, 1, 0, 0})};
  const auto base = run_baseline(nl, {f}, seqs);
  EXPECT_EQ(base.detected_at[0], -1);
  EXPECT_EQ(base.potential_at[0], 0);
  for (const SimdTier tier : usable_tiers())
    expect_same_result(run_wide(nl, {f}, seqs, tier), base,
                       simd_tier_name(tier));
}

TEST(WideFsimTest, FirstDetectionTieBreaksByLowestSequence) {
  const Netlist nl = toggler();
  const Fault f{nl.find("d"), -1, false};
  // Sequences 1, 3, and 6 all detect; contract: report the lowest index
  // even though all lanes of the group see the detection simultaneously.
  const TestSequence hit = seq_of({1, 0, 0, 0});
  const TestSequence miss = seq_of({1, 1, 1, 1});
  const std::vector<TestSequence> seqs{miss, hit, miss, hit,
                                       miss, miss, hit, miss, hit};
  for (const SimdTier tier : usable_tiers()) {
    const auto r = run_wide(nl, {f}, seqs, tier);
    EXPECT_EQ(r.detected_at[0], 1) << simd_tier_name(tier);
  }
}

// Wide == baseline on synthesized MCNC machines and their retimed twins,
// for every usable tier and thread count. This is the engine acceptance
// contract: FsimResult byte-identical across {baseline64, wide} x
// {1,2,8 threads} x {scalar..widest}.
TEST(WideFsimTest, MatchesBaselineOnMcncPairs) {
  for (const char* name : {"dk16", "s820"}) {
    FsmGenSpec spec;
    for (const auto& s : mcnc_specs())
      if (s.name == name) spec = s;
    const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.4));
    SynthOptions so;
    so.encode = EncodeAlgo::kOutputDominant;
    const SynthResult res = synthesize(fsm, so);
    const Netlist& orig = res.netlist;
    const Netlist retimed =
        retime_to_dff_target(orig, orig.num_dffs() * 3, orig.name() + ".re")
            .netlist;

    for (const Netlist* nl : {&orig, &retimed}) {
      const auto collapsed = collapse_faults(*nl);
      std::vector<Fault> faults;
      for (const auto& cf : collapsed) faults.push_back(cf.representative);
      // 11 sequences: one full lane group plus a ragged partial group.
      const auto seqs = make_random_sequences(*nl, 11, 24, 11);

      const auto base = run_baseline(*nl, faults, seqs);
      for (const SimdTier tier : usable_tiers())
        for (const unsigned threads : {1u, 2u, 8u})
          expect_same_result(
              run_wide(*nl, faults, seqs, tier, threads), base,
              nl->name() + " " + simd_tier_name(tier) + " x" +
                  std::to_string(threads));
    }
  }
}

TEST(WideFsimTest, RaggedSequenceLengths) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const SynthResult res =
      synthesize(generate_control_fsm(scaled_spec(spec, 0.4)), {});
  const Netlist& nl = res.netlist;
  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  for (const auto& cf : collapsed) faults.push_back(cf.representative);

  // Lengths 1..13 across two lane groups: lanes die at different frames,
  // so the per-frame live mask and dead-lane X handling both matter.
  std::vector<TestSequence> seqs;
  for (int k = 1; k <= 13; ++k) {
    const auto one = make_random_sequences(nl, 1, static_cast<std::size_t>(k),
                                           static_cast<std::uint64_t>(k) * 3);
    seqs.push_back(one[0]);
  }
  const auto base = run_baseline(nl, faults, seqs);
  for (const SimdTier tier : usable_tiers())
    expect_same_result(run_wide(nl, faults, seqs, tier), base,
                       simd_tier_name(tier));
}

// Semantic metrics (fsim.calls/sequences/vectors/batches) are identical
// between engines; the full registry dump is byte-identical across wide
// tiers (engine internals included).
TEST(WideFsimTest, MetricsParityAcrossEnginesAndTiers) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const SynthResult res =
      synthesize(generate_control_fsm(scaled_spec(spec, 0.4)), {});
  const Netlist& nl = res.netlist;
  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  for (const auto& cf : collapsed) faults.push_back(cf.representative);
  const auto seqs = make_random_sequences(nl, 11, 24, 11);

  auto& reg = MetricsRegistry::global();
  const bool was_enabled = metrics_enabled();
  set_metrics_enabled(true);

  reg.reset();
  run_baseline(nl, faults, seqs);
  const std::uint64_t base_batches = reg.counter("fsim.batches").total();
  const std::uint64_t base_vectors = reg.counter("fsim.vectors").total();

  std::string first_wide_json;
  for (const SimdTier tier : usable_tiers()) {
    reg.reset();
    run_wide(nl, faults, seqs, tier);
    EXPECT_EQ(reg.counter("fsim.batches").total(), base_batches)
        << simd_tier_name(tier);
    EXPECT_EQ(reg.counter("fsim.vectors").total(), base_vectors)
        << simd_tier_name(tier);
    const std::string json = reg.to_json();
    if (first_wide_json.empty())
      first_wide_json = json;
    else
      EXPECT_EQ(json, first_wide_json) << simd_tier_name(tier);
  }

  reg.reset();
  set_metrics_enabled(was_enabled);
}

}  // namespace
}  // namespace satpg
