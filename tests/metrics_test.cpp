// Tests for the telemetry subsystem (DESIGN.md §5): metrics registry
// correctness, sharded-counter merge determinism across thread counts,
// disabled-mode zero side effects, JSON stability, the trace recorder, and
// the structured ATPG report's thread-count invariance on an MCNC circuit
// and its retimed twin.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "atpg/parallel.h"
#include "base/json.h"
#include "base/metrics.h"
#include "base/threadpool.h"
#include "base/trace.h"
#include "fsm/mcnc_suite.h"
#include "harness/report.h"
#include "retime/retime.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

// Every test leaves the global enable flags off and the registry zeroed so
// suites can run in any order within the binary.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::global().reset();
    set_metrics_enabled(false);
  }
  void TearDown() override {
    set_metrics_enabled(false);
    MetricsRegistry::global().reset();
  }
};

TEST_F(MetricsTest, CounterBasics) {
  set_metrics_enabled(true);
  auto& c = MetricsRegistry::global().counter("test.counter_basics");
  EXPECT_EQ(c.total(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.total(), 42u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
  // Same name returns the same counter object.
  auto& again = MetricsRegistry::global().counter("test.counter_basics");
  EXPECT_EQ(&c, &again);
}

TEST_F(MetricsTest, GaugeBasics) {
  set_metrics_enabled(true);
  auto& g = MetricsRegistry::global().gauge("test.gauge_basics");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, HistogramBucketsAndStats) {
  // bucket 0 holds value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  using H = MetricsRegistry::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(1023), 10u);
  EXPECT_EQ(H::bucket_of(1024), 11u);
  EXPECT_EQ(H::bucket_of(UINT64_MAX), 64u);

  set_metrics_enabled(true);
  auto& h = MetricsRegistry::global().histogram("test.hist_basics");
  for (std::uint64_t v : {0ull, 1ull, 3ull, 3ull, 1024ull}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1031u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports min 0, not UINT64_MAX
}

TEST_F(MetricsTest, DisabledModeHasZeroSideEffects) {
  ASSERT_FALSE(metrics_enabled());
  auto& c = MetricsRegistry::global().counter("test.disabled_counter");
  auto& g = MetricsRegistry::global().gauge("test.disabled_gauge");
  auto& h = MetricsRegistry::global().histogram("test.disabled_hist");
  c.add(1000);
  g.set(7.0);
  h.record(99);
  EXPECT_EQ(c.total(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

// The merged total must be a pure function of what was recorded, no matter
// how many pool workers did the recording or how the scheduler interleaved
// them. Runs the same fixed workload under 1-, 2-, and 8-worker pools.
TEST_F(MetricsTest, ShardedCounterMergeIsThreadCountInvariant) {
  set_metrics_enabled(true);
  constexpr std::uint64_t kAddsPerWorker = 10'000;
  constexpr unsigned kWorkUnits = 8;  // fixed geometry, like atpg/parallel
  std::uint64_t expected = 0;
  std::vector<std::uint64_t> totals;
  for (unsigned threads : {1u, 2u, 8u}) {
    auto& c = MetricsRegistry::global().counter("test.sharded_merge");
    c.reset();
    ThreadPool pool(threads);
    pool.run_on_workers(kWorkUnits, [&](unsigned) {
      for (std::uint64_t i = 0; i < kAddsPerWorker; ++i) c.add();
    });
    totals.push_back(c.total());
    expected = kWorkUnits * kAddsPerWorker;
  }
  for (std::uint64_t t : totals) EXPECT_EQ(t, expected);
}

TEST_F(MetricsTest, HistogramMergeIsThreadCountInvariant) {
  set_metrics_enabled(true);
  constexpr unsigned kWorkUnits = 8;
  std::vector<std::string> dumps;
  for (unsigned threads : {1u, 2u, 8u}) {
    MetricsRegistry::global().reset();
    auto& h = MetricsRegistry::global().histogram("test.sharded_hist");
    ThreadPool pool(threads);
    pool.run_on_workers(kWorkUnits, [&](unsigned unit) {
      for (std::uint64_t i = 0; i < 1000; ++i) h.record(unit * 1000 + i);
    });
    dumps.push_back(MetricsRegistry::global().to_json());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

TEST_F(MetricsTest, JsonIsValidSortedAndStable) {
  set_metrics_enabled(true);
  auto& reg = MetricsRegistry::global();
  reg.counter("test.z_last").add(3);
  reg.counter("test.a_first").add(1);
  reg.gauge("test.gauge").set(0.5);
  reg.histogram("test.hist").record(7);
  const std::string a = reg.to_json();
  const std::string b = reg.to_json();  // reading must not perturb anything
  EXPECT_EQ(a, b);
  std::string err;
  EXPECT_TRUE(json_valid(a, &err)) << err;
  // Sorted name order within each section.
  EXPECT_LT(a.find("test.a_first"), a.find("test.z_last"));
}

TEST_F(MetricsTest, TraceRecorderSmoke) {
  auto& rec = TraceRecorder::global();
  rec.start();
  ASSERT_TRUE(tracing_enabled());
  {
    TraceSpan span("test.phase");
    TraceSpan inner("test.inner", "unit");
  }
  rec.add_counter("test.queue_depth", rec.now_us(), 3);
  rec.stop();
  EXPECT_FALSE(tracing_enabled());
  EXPECT_GE(rec.num_events(), 3u);
  const std::string path = ::testing::TempDir() + "metrics_test_trace.json";
  ASSERT_TRUE(rec.write_json(path));
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  std::string err;
  EXPECT_TRUE(json_valid(ss.str(), &err)) << err;
  EXPECT_NE(ss.str().find("traceEvents"), std::string::npos);
  EXPECT_NE(ss.str().find("test.phase"), std::string::npos);
}

TEST_F(MetricsTest, DisabledTraceSpanRecordsNothing) {
  ASSERT_FALSE(tracing_enabled());
  auto& rec = TraceRecorder::global();
  rec.start();
  rec.stop();  // clears the buffer, then disables
  const std::size_t before = rec.num_events();
  { TraceSpan span("test.disabled_span"); }
  EXPECT_EQ(rec.num_events(), before);
}

// --- structured ATPG report ---------------------------------------------------

Netlist mcnc_circuit(const std::string& name, double scale) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == name) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, scale));
  return synthesize(fsm, {}).netlist;
}

ParallelAtpgOptions small_options(unsigned threads) {
  ParallelAtpgOptions popts;
  popts.run.engine.kind = EngineKind::kHitec;
  popts.run.engine.eval_limit = 150'000;
  popts.run.engine.backtrack_limit = 300;
  popts.run.random_sequences = 4;
  popts.run.random_length = 24;
  popts.num_threads = threads;
  return popts;
}

// Arm the registry the way the CLI does, run, and dump the report.
std::string report_for(const Netlist& nl, unsigned threads) {
  MetricsRegistry::global().reset();
  set_metrics_enabled(true);
  const ParallelAtpgResult res = run_parallel_atpg(nl, small_options(threads));
  set_metrics_enabled(false);
  std::ostringstream os;
  write_atpg_report_json(os, nl, small_options(threads), res);
  return os.str();
}

// The acceptance criterion of this subsystem: the full report — summary,
// per-fault stats, and the metrics registry dump — is byte-identical at any
// thread count, and the retimed twin shows measurably more search effort.
TEST_F(MetricsTest, AtpgReportIdenticalAcrossThreadsAndShowsRetimedBlowup) {
  const Netlist orig = mcnc_circuit("dk16", 0.4);
  const Netlist twin =
      retime_to_dff_target(orig, orig.num_dffs() * 2, orig.name() + ".re")
          .netlist;

  const std::string orig1 = report_for(orig, 1);
  std::string err;
  ASSERT_TRUE(json_valid(orig1, &err)) << err;
  for (unsigned threads : {2u, 8u})
    EXPECT_EQ(orig1, report_for(orig, threads)) << "threads=" << threads;

  const std::string twin1 = report_for(twin, 1);
  ASSERT_TRUE(json_valid(twin1, &err)) << err;
  for (unsigned threads : {2u, 8u})
    EXPECT_EQ(twin1, report_for(twin, threads)) << "threads=" << threads;

  // Retimed blowup, measured on the structured results themselves.
  const ParallelAtpgResult ro = run_parallel_atpg(orig, small_options(2));
  const ParallelAtpgResult rt = run_parallel_atpg(twin, small_options(2));
  EXPECT_GT(rt.run.backtracks, ro.run.backtracks);
  EXPECT_GE(rt.run.justify_failures, ro.run.justify_failures);
  EXPECT_GT(rt.run.backtracks + rt.run.justify_failures,
            ro.run.backtracks + ro.run.justify_failures);
}

// Per-fault stats ride along with the parallel result and agree with the
// merged summary on the thread-count-invariant integers.
TEST_F(MetricsTest, PerFaultStatsSumToRunTotals) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  const ParallelAtpgResult res = run_parallel_atpg(nl, small_options(4));
  ASSERT_EQ(res.fault_stats.size(), res.status.size());
  ASSERT_EQ(res.attempted.size(), res.status.size());
  std::uint64_t impl = 0, growths = 0, jcalls = 0, jfails = 0;
  for (std::size_t i = 0; i < res.fault_stats.size(); ++i) {
    if (!res.attempted[i]) continue;
    impl += res.fault_stats[i].implications;
    growths += res.fault_stats[i].window_growths;
    jcalls += res.fault_stats[i].justify_calls;
    jfails += res.fault_stats[i].justify_failures;
  }
  EXPECT_EQ(impl, res.run.implications);
  EXPECT_EQ(growths, res.run.window_growths);
  EXPECT_EQ(jcalls, res.run.justify_calls);
  EXPECT_EQ(jfails, res.run.justify_failures);
}

}  // namespace
}  // namespace satpg
