// Tests for the ATPG stack: the time-frame model's implication/undo
// machinery, PODEM goals, engine soundness (every detected fault's test is
// fault-simulation verified; every redundant claim cross-checked by
// exhaustive analysis on small circuits), and the three-engine driver.
#include <gtest/gtest.h>

#include "atpg/engine.h"
#include "atpg/podem.h"
#include "atpg/scoap.h"
#include "atpg/tfm.h"
#include "fsm/mcnc_suite.h"
#include "sim/simulator.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

// q' = rst ? 0 : !q ; out = q   (1-bit toggler with reset).
Netlist toggler() {
  Netlist nl("tog");
  const NodeId rst = nl.add_input("rst");
  const NodeId q = nl.add_dff("q", rst, FfInit::kUnknown);
  const NodeId nq = nl.add_gate(GateType::kNot, "nq", {q});
  const NodeId nrst = nl.add_gate(GateType::kNot, "nrst", {rst});
  const NodeId d = nl.add_gate(GateType::kAnd, "d", {nq, nrst});
  nl.set_fanin(q, 0, d);
  nl.add_output("o", q);
  return nl;
}

TEST(TfmTest, InitialStateIsAllX) {
  const Netlist nl = toggler();
  TimeFrameModel tfm(nl, std::nullopt, 2);
  for (int t = 0; t < 2; ++t)
    EXPECT_EQ(tfm.value(t, nl.outputs()[0]).g, V3::kX);
}

TEST(TfmTest, AssignPropagatesAcrossFrames) {
  const Netlist nl = toggler();
  TimeFrameModel tfm(nl, std::nullopt, 3);
  // rst=1 in frame 0 -> q=0 in frame 1 regardless of initial state.
  tfm.assign(0, nl.inputs()[0], V3::kOne);
  EXPECT_EQ(tfm.value(1, nl.dffs()[0]).g, V3::kZero);
  // rst=0 in frame 1 -> q toggles to 1 in frame 2.
  tfm.assign(1, nl.inputs()[0], V3::kZero);
  EXPECT_EQ(tfm.value(2, nl.dffs()[0]).g, V3::kOne);
}

TEST(TfmTest, UndoRestoresExactly) {
  const Netlist nl = toggler();
  TimeFrameModel tfm(nl, std::nullopt, 3);
  std::vector<V5> snapshot;
  for (int t = 0; t < 3; ++t)
    for (std::size_t i = 0; i < nl.num_nodes(); ++i)
      snapshot.push_back(tfm.value(t, static_cast<NodeId>(i)));
  const std::size_t mark = tfm.assign(0, nl.inputs()[0], V3::kOne);
  tfm.assign(1, nl.inputs()[0], V3::kZero);
  tfm.undo_to(mark);
  std::size_t k = 0;
  for (int t = 0; t < 3; ++t)
    for (std::size_t i = 0; i < nl.num_nodes(); ++i)
      EXPECT_EQ(tfm.value(t, static_cast<NodeId>(i)), snapshot[k++]);
}

TEST(TfmTest, PseudoPiAndStemFault) {
  const Netlist nl = toggler();
  const Fault f{nl.dffs()[0], -1, true};  // q stuck at 1
  TimeFrameModel tfm(nl, f, 1);
  // Faulty rail pinned to 1 even with a 0 pseudo-PI assignment.
  tfm.assign(0, nl.dffs()[0], V3::kZero);
  const V5 q = tfm.value(0, nl.dffs()[0]);
  EXPECT_EQ(q.g, V3::kZero);
  EXPECT_EQ(q.f, V3::kOne);
  EXPECT_TRUE(q.is_d());
  // The PO sees the D directly.
  EXPECT_TRUE(tfm.detected_at_po());
}

TEST(TfmTest, EffectPossibleTracksBlocking) {
  const Netlist nl = toggler();
  const Fault f{nl.find("d"), -1, false};  // d s-a-0
  TimeFrameModel tfm(nl, f, 1);
  EXPECT_TRUE(tfm.effect_still_possible(true));
  // Hold rst=1: d is 0 in the good machine too — no excitation possible
  // anywhere in this window.
  tfm.assign(0, nl.inputs()[0], V3::kOne);
  EXPECT_FALSE(tfm.effect_still_possible(true));
}

TEST(PodemTest, FindsDetectionAcrossFrames) {
  const Netlist nl = toggler();
  const Fault f{nl.find("d"), -1, false};
  const Scoap scoap = compute_scoap(nl);
  TimeFrameModel tfm(nl, f, 3);
  Podem podem(tfm, scoap, /*allow_state=*/true, PodemGoal::kDetect);
  PodemBudget budget;
  EXPECT_EQ(podem.search(budget), PodemStatus::kSuccess);
  EXPECT_TRUE(tfm.detected_at_po());
}

TEST(PodemTest, JustifyReachesTargetState) {
  const Netlist nl = toggler();
  const Scoap scoap = compute_scoap(nl);
  TimeFrameModel tfm(nl, std::nullopt, 1);
  // Target: next state q = 0. rst=1 is the easy answer.
  Podem podem(tfm, scoap, true, PodemGoal::kJustify,
              {{nl.dffs()[0], V3::kZero}});
  PodemBudget budget;
  EXPECT_EQ(podem.search(budget), PodemStatus::kSuccess);
  const NodeId d = nl.node(nl.dffs()[0]).fanins[0];
  EXPECT_EQ(tfm.value(0, d).g, V3::kZero);
}

TEST(PodemTest, ExhaustsOnImpossibleJustify) {
  // Target q=1 while holding rst at 1 is impossible... rst is a decision
  // var, so instead ask for an impossible pair: build a circuit where
  // d = AND(a, !a) is constant 0 and demand 1.
  Netlist nl("c0");
  const NodeId a = nl.add_input("a");
  const NodeId na = nl.add_gate(GateType::kNot, "na", {a});
  const NodeId d = nl.add_gate(GateType::kAnd, "d", {a, na});
  const NodeId q = nl.add_dff("q", d, FfInit::kUnknown);
  nl.add_output("o", q);
  const Scoap scoap = compute_scoap(nl);
  TimeFrameModel tfm(nl, std::nullopt, 1);
  Podem podem(tfm, scoap, true, PodemGoal::kJustify, {{q, V3::kOne}});
  PodemBudget budget;
  EXPECT_EQ(podem.search(budget), PodemStatus::kExhausted);
}

TEST(EngineTest, DetectsTogglerFaults) {
  const Netlist nl = toggler();
  EngineOptions opts;
  AtpgEngine engine(nl, opts);
  const Fault f{nl.find("d"), -1, false};
  const auto attempt = engine.generate(f);
  ASSERT_EQ(attempt.status, FaultStatus::kDetected);
  // The engine verified it already; double-check here.
  EXPECT_GE(simulate_fault_serial(nl, f, attempt.sequence), 0);
}

TEST(EngineTest, ProvesUnexcitableFaultRedundant) {
  // y = OR(a, AND(b, !b)): the AND output s-a-0 is redundant.
  Netlist nl("red");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId nb = nl.add_gate(GateType::kNot, "nb", {b});
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {b, nb});
  const NodeId y = nl.add_gate(GateType::kOr, "y", {a, g});
  const NodeId q = nl.add_dff("q", y, FfInit::kUnknown);
  nl.add_output("o", q);
  EngineOptions opts;
  AtpgEngine engine(nl, opts);
  const auto attempt = engine.generate({g, -1, false});
  EXPECT_EQ(attempt.status, FaultStatus::kRedundant);
}

// Soundness sweep: on a synthesized machine every engine's detected faults
// carry verified tests and the redundant ones are never detected by heavy
// random simulation.
class EngineSoundness : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineSoundness, DetectionsVerifiedRedundantsUndetected) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "s820") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.35));
  const SynthResult res = synthesize(fsm, {});
  const Netlist& nl = res.netlist;

  EngineOptions opts;
  opts.kind = GetParam();
  opts.eval_limit = 400'000;
  opts.backtrack_limit = 600;
  AtpgEngine engine(nl, opts);

  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> redundant;
  int detected = 0, aborted = 0;
  for (const auto& cf : collapsed) {
    const auto attempt = engine.generate(cf.representative);
    switch (attempt.status) {
      case FaultStatus::kDetected:
        ++detected;
        EXPECT_GE(
            simulate_fault_serial(nl, cf.representative, attempt.sequence),
            0)
            << fault_name(nl, cf.representative);
        break;
      case FaultStatus::kRedundant:
        redundant.push_back(cf.representative);
        break;
      default:
        ++aborted;
    }
  }
  // The forward-only engine has no pseudo-PI state decisions and no random
  // phase here, so it resolves far fewer faults on its own — the driver
  // pairs it with random warm-up in real runs.
  const double floor = GetParam() == EngineKind::kForward ? 0.25 : 0.75;
  EXPECT_GT(detected, static_cast<int>(collapsed.size() * floor));
  // Redundant faults must survive a serious random barrage.
  if (!redundant.empty()) {
    const auto seqs = make_random_sequences(nl, 16, 64, 99);
    const auto fr = run_fault_simulation(nl, redundant, seqs);
    for (std::size_t i = 0; i < redundant.size(); ++i)
      EXPECT_EQ(fr.detected_at[i], -1)
          << "redundant-labelled fault detected: "
          << fault_name(nl, redundant[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineSoundness,
                         ::testing::Values(EngineKind::kHitec,
                                           EngineKind::kForward,
                                           EngineKind::kLearning),
                         [](const auto& info) {
                           return std::string(engine_kind_name(info.param));
                         });

TEST(DriverTest, RunAtpgProducesConsistentAccounting) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.4));
  const SynthResult res = synthesize(fsm, {});
  AtpgRunOptions opts;
  opts.engine.eval_limit = 300'000;
  opts.engine.backtrack_limit = 500;
  const auto run = run_atpg(res.netlist, opts);
  EXPECT_EQ(run.detected + run.redundant + run.aborted, run.total_faults);
  EXPECT_GE(run.fault_efficiency, run.fault_coverage);
  EXPECT_GT(run.fault_coverage, 80.0);
  EXPECT_FALSE(run.tests.empty());
  EXPECT_GT(run.evals, 0u);
  // The FE trace is monotone non-decreasing in both coordinates.
  for (std::size_t i = 1; i < run.fe_trace.size(); ++i) {
    EXPECT_GE(run.fe_trace[i].first, run.fe_trace[i - 1].first);
    EXPECT_GE(run.fe_trace[i].second, run.fe_trace[i - 1].second - 1e-9);
  }
  // Every reported test detects at least one collapsed fault.
  const auto collapsed = collapse_faults(res.netlist);
  std::vector<Fault> faults;
  for (const auto& cf : collapsed) faults.push_back(cf.representative);
  for (const auto& seq : run.tests) {
    const auto fr = run_fault_simulation(res.netlist, faults, {seq});
    EXPECT_GT(fr.num_detected, 0u);
  }
}

TEST(DriverTest, StrictModeNeverExceedsPotentialCredit) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.4));
  const SynthResult res = synthesize(fsm, {});
  AtpgRunOptions credit;
  credit.engine.eval_limit = 200'000;
  credit.engine.backtrack_limit = 300;
  AtpgRunOptions strict = credit;
  strict.count_potential_detections = false;
  const auto r1 = run_atpg(res.netlist, credit);
  const auto r0 = run_atpg(res.netlist, strict);
  EXPECT_LE(r0.fault_coverage, r1.fault_coverage + 1e-9);
}

// Regression for the per-search budget bug: the eval budget used to be
// rebuilt for every window growth and every recursive justification level,
// so a single hard fault could burn many multiples of eval_limit. The
// budget is now one cumulative counter per fault across all phases
// (propagation windows, justification recursion, redundancy check).
TEST(EngineBudgetTest, EvalBudgetIsCumulativePerFault) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.4));
  const SynthResult res = synthesize(fsm, {});
  const Netlist& nl = res.netlist;

  EngineOptions opts;
  opts.eval_limit = 5'000;
  opts.backtrack_limit = 1'000'000;  // evals are the binding constraint
  AtpgEngine engine(nl, opts);

  std::uint64_t sum = 0;
  int aborted = 0;
  for (const auto& cf : collapse_faults(nl)) {
    const auto attempt = engine.generate(cf.representative);
    sum += attempt.stats.evals;
    if (attempt.status == FaultStatus::kAborted) ++aborted;
    // Slack of one eval_limit absorbs the final propagation pass that runs
    // between the last budget check and the abort; anything above 2x means
    // some phase got a fresh budget again.
    EXPECT_LT(attempt.stats.evals, 2 * opts.eval_limit)
        << fault_name(nl, cf.representative);
  }
  // Accounting: the engine's cumulative counter is the sum of per-attempt
  // work, and the tight limit actually bites so the bound above is
  // exercised (if it never aborts, the test checks nothing — recalibrate).
  EXPECT_EQ(engine.total_evals(), sum);
  EXPECT_GT(aborted, 0);
}

TEST(RandomSequenceTest, AssertsResetFirst) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.4));
  const SynthResult res = synthesize(fsm, {});
  const auto seqs = make_random_sequences(res.netlist, 3, 10, 5);
  int rst_index = -1;
  for (std::size_t i = 0; i < res.netlist.inputs().size(); ++i)
    if (res.netlist.node(res.netlist.inputs()[i]).name == "rst")
      rst_index = static_cast<int>(i);
  ASSERT_GE(rst_index, 0);
  for (const auto& seq : seqs)
    EXPECT_EQ(seq[0][static_cast<std::size_t>(rst_index)], V3::kOne);
}

}  // namespace
}  // namespace satpg
