// Tests for scan DFT: structural correctness of the chain, functional
// transparency in mission mode, shiftability in scan mode, cycle-breaking
// selection, and the headline payoff — scan restores testability on a
// retimed circuit.
#include <gtest/gtest.h>

#include "atpg/engine.h"
#include "dft/scan.h"
#include "fsm/mcnc_suite.h"
#include "retime/retime.h"
#include "sim/simulator.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

Netlist small_machine() {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.4));
  return synthesize(fsm, {}).netlist;
}

TEST(ScanTest, FullScanStructure) {
  const Netlist nl = small_machine();
  const ScanResult scan = insert_full_scan(nl);
  EXPECT_EQ(scan.netlist.validate(), std::nullopt);
  EXPECT_EQ(scan.chain.size(), nl.num_dffs());
  EXPECT_EQ(scan.netlist.num_inputs(), nl.num_inputs() + 2);
  EXPECT_EQ(scan.netlist.num_outputs(), nl.num_outputs() + 1);
  EXPECT_EQ(scan.netlist.num_dffs(), nl.num_dffs());
  EXPECT_NE(scan.netlist.find("scan_in"), kNoNode);
  EXPECT_NE(scan.netlist.find("scan_en"), kNoNode);
}

TEST(ScanTest, MissionModeIsTransparent) {
  const Netlist nl = small_machine();
  const ScanResult scan = insert_full_scan(nl);
  // With scan_en = 0 the scan circuit behaves exactly like the original.
  SeqSimulator s0(nl), s1(scan.netlist);
  Rng rng(17);
  for (int t = 0; t < 200; ++t) {
    std::vector<V3> in0(nl.num_inputs());
    for (std::size_t i = 0; i < in0.size(); ++i)
      in0[i] = (t == 0 && nl.node(nl.inputs()[i]).name == "rst")
                   ? V3::kOne
                   : (rng.next_bool() ? V3::kOne : V3::kZero);
    if (t == 0)
      for (std::size_t i = 0; i < in0.size(); ++i)
        if (nl.node(nl.inputs()[i]).name == "rst") in0[i] = V3::kOne;
    std::vector<V3> in1 = in0;
    in1.push_back(V3::kZero);  // scan_in
    in1.push_back(V3::kZero);  // scan_en
    const auto o0 = s0.step(in0);
    const auto o1 = s1.step(in1);
    for (std::size_t o = 0; o < o0.size(); ++o)
      EXPECT_EQ(o0[o], o1[o]) << "cycle " << t << " output " << o;
  }
}

TEST(ScanTest, ChainShiftsPatternsThrough) {
  const Netlist nl = small_machine();
  const ScanResult scan = insert_full_scan(nl);
  const Netlist& sn = scan.netlist;
  SeqSimulator sim(sn);
  const std::size_t n = scan.chain.size();
  // Shift in an alternating pattern with scan_en = 1.
  std::vector<V3> pattern;
  for (std::size_t i = 0; i < n; ++i)
    pattern.push_back(i % 2 ? V3::kOne : V3::kZero);
  int scan_in_idx = -1, scan_en_idx = -1;
  for (std::size_t i = 0; i < sn.inputs().size(); ++i) {
    if (sn.node(sn.inputs()[i]).name == "scan_in")
      scan_in_idx = static_cast<int>(i);
    if (sn.node(sn.inputs()[i]).name == "scan_en")
      scan_en_idx = static_cast<int>(i);
  }
  ASSERT_GE(scan_in_idx, 0);
  ASSERT_GE(scan_en_idx, 0);
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<V3> in(sn.num_inputs(), V3::kZero);
    in[static_cast<std::size_t>(scan_en_idx)] = V3::kOne;
    in[static_cast<std::size_t>(scan_in_idx)] = pattern[n - 1 - k];
    sim.step(in);
  }
  // The chain (in chain order) now holds the pattern.
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t dff_pos = 0;
    for (std::size_t j = 0; j < sn.dffs().size(); ++j)
      if (sn.dffs()[j] == scan.chain[i]) dff_pos = j;
    EXPECT_EQ(sim.state()[dff_pos], pattern[i]) << "chain position " << i;
  }
}

TEST(ScanTest, CycleBreakingSelectionBreaksCycles) {
  const Netlist nl = small_machine();
  EXPECT_FALSE(breaks_all_cycles(nl, {}));  // state machines have cycles
  const auto picked = select_cycle_breaking_ffs(nl);
  EXPECT_FALSE(picked.empty());
  EXPECT_LE(picked.size(), nl.num_dffs());
  EXPECT_TRUE(breaks_all_cycles(nl, picked));
}

TEST(ScanTest, PartialScanValid) {
  const Netlist nl = small_machine();
  const auto picked = select_cycle_breaking_ffs(nl);
  const ScanResult scan = insert_partial_scan(nl, picked);
  EXPECT_EQ(scan.netlist.validate(), std::nullopt);
  EXPECT_EQ(scan.chain.size(), picked.size());
}

TEST(ScanTest, FullScanRestoresTestabilityOnRetimedCircuit) {
  // The paper's DFT motivation, demonstrated: the retimed circuit is hard
  // for sequential ATPG; after full scan the engine does far better with
  // the same budget.
  const Netlist nl = small_machine();
  const RetimeResult rt =
      retime_to_dff_target(nl, 3 * nl.num_dffs(), nl.name() + ".re");
  AtpgRunOptions opts;
  opts.engine.eval_limit = 150'000;
  opts.engine.backtrack_limit = 200;
  const auto hard = run_atpg(rt.netlist, opts);
  const ScanResult scan = insert_full_scan(rt.netlist);
  const auto scanned = run_atpg(scan.netlist, opts);
  EXPECT_GT(scanned.fault_efficiency, hard.fault_efficiency - 1e-9);
  // Scan makes state directly controllable: expect a solid efficiency.
  EXPECT_GT(scanned.fault_efficiency, 90.0);
}

}  // namespace
}  // namespace satpg
