// Unit tests for src/base: BitVec, Rng, string utilities, Table, JSON
// validation/parsing, telemetry thread indices.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <unordered_set>

#include "base/bitvec.h"
#include "base/json.h"
#include "base/logging.h"
#include "base/metrics.h"
#include "base/rng.h"
#include "base/strutil.h"
#include "base/table.h"

namespace satpg {
namespace {

TEST(BitVecTest, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.none());
}

TEST(BitVecTest, SetGetAcrossWordBoundary) {
  BitVec v(130);
  for (std::size_t i : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    EXPECT_FALSE(v.get(i));
    v.set(i, true);
    EXPECT_TRUE(v.get(i));
  }
  EXPECT_EQ(v.count(), 8u);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count(), 7u);
}

TEST(BitVecTest, FromStringMsbFirst) {
  const BitVec v = BitVec::from_string("1010");
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(v.get(3));
  EXPECT_FALSE(v.get(2));
  EXPECT_TRUE(v.get(1));
  EXPECT_FALSE(v.get(0));
  EXPECT_EQ(v.to_string(), "1010");
}

TEST(BitVecTest, FromValueRoundTrip) {
  for (std::uint64_t x : {0ull, 1ull, 5ull, 255ull, 0xdeadbeefull}) {
    EXPECT_EQ(BitVec::from_value(40, x).to_u64(), x);
  }
}

TEST(BitVecTest, LogicOps) {
  const BitVec a = BitVec::from_string("1100");
  const BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((~a).to_string(), "0011");
}

TEST(BitVecTest, ComplementTrimsTail) {
  BitVec v(70);
  const BitVec c = ~v;
  EXPECT_EQ(c.count(), 70u);  // no phantom bits beyond size
}

TEST(BitVecTest, FindFirstNext) {
  BitVec v(100);
  v.set(3, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_EQ(v.find_first(), 3u);
  EXPECT_EQ(v.find_next(3), 64u);
  EXPECT_EQ(v.find_next(64), 99u);
  EXPECT_EQ(v.find_next(99), 100u);
}

TEST(BitVecTest, SubsetAndOrdering) {
  const BitVec a = BitVec::from_string("0100");
  const BitVec b = BitVec::from_string("0110");
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a < b);
}

TEST(BitVecTest, HashDistinguishes) {
  std::unordered_set<BitVec, BitVecHash> set;
  for (std::uint64_t i = 0; i < 200; ++i)
    set.insert(BitVec::from_value(16, i));
  EXPECT_EQ(set.size(), 200u);
}

TEST(BitVecTest, ResizeGrowsWithValue) {
  BitVec v(3);
  v.set(1, true);
  v.resize(10, false);
  EXPECT_EQ(v.count(), 1u);
  EXPECT_TRUE(v.get(1));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextIntCoversRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIndependent) {
  Rng a(5);
  Rng child = a.fork(1);
  Rng b(5);
  Rng child2 = b.fork(1);
  EXPECT_EQ(child.next_u64(), child2.next_u64());  // fork deterministic
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StrUtilTest, SplitWs) {
  const auto t = split_ws("  a bb\t ccc \n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "ccc");
}

TEST(StrUtilTest, SplitKeepsEmpty) {
  const auto t = split("a,,b", ',');
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], "");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("INPUT(a)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
  EXPECT_TRUE(ends_with("x.re", ".re"));
  EXPECT_FALSE(ends_with("re", ".re"));
}

TEST(StrUtilTest, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
}

TEST(StrUtilTest, FormatDensityMatchesPaperStyle) {
  EXPECT_EQ(format_density(0.84), "0.84");
  EXPECT_EQ(format_density(0.73), "0.73");
  EXPECT_EQ(format_density(2.0e-4), "2.0E-4");
  EXPECT_EQ(format_density(1.8e-6), "1.8E-6");
}

TEST(StrUtilTest, FormatCountMatchesPaperStyle) {
  EXPECT_EQ(format_count(32), "32");
  EXPECT_EQ(format_count(2048), "2048");
  EXPECT_EQ(format_count(524288), "5.24E5");
  EXPECT_EQ(format_count(268435456), "2.68E8");
}

TEST(TableTest, AlignsAndCounts) {
  Table t({"circuit", "#DFF"});
  t.add_row({"dk16.ji.sd", "5"});
  t.add_row({"dk16.ji.sd.re", "19"});
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("dk16.ji.sd.re"), std::string::npos);
  EXPECT_NE(s.find("#DFF"), std::string::npos);
  // Numeric column right-aligned: " 5" appears with leading spaces.
  EXPECT_NE(s.find("   5"), std::string::npos);
}

// ---- JSON validator + parser edge cases -------------------------------------

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  JsonValue v;
  std::string err;
  // BMP escapes: "A", the cent sign (2-byte UTF-8), the euro (3-byte).
  ASSERT_TRUE(json_parse(R"("\u0041\u00a2\u20ac")", &v, &err)) << err;
  EXPECT_EQ(v.string(), "A\xc2\xa2\xe2\x82\xac");
  // Surrogate pair: U+1D11E (musical G clef), 4-byte UTF-8.
  ASSERT_TRUE(json_parse(R"("\ud834\udd1e")", &v, &err)) << err;
  EXPECT_EQ(v.string(), "\xf0\x9d\x84\x9e");
  // Lone surrogates decode to U+FFFD rather than invalid UTF-8.
  ASSERT_TRUE(json_parse(R"("\ud834!")", &v, &err)) << err;
  EXPECT_EQ(v.string(), "\xef\xbf\xbd!");
  ASSERT_TRUE(json_parse(R"("\udd1e")", &v, &err)) << err;
  EXPECT_EQ(v.string(), "\xef\xbf\xbd");
  // Malformed escapes are rejected by validator and parser alike.
  for (const char* bad : {R"("\u12")", R"("\u12zz")", R"("\x41")"}) {
    EXPECT_FALSE(json_valid(bad)) << bad;
    EXPECT_FALSE(json_parse(bad, &v)) << bad;
  }
}

TEST(JsonTest, RejectsNaNAndInfinity) {
  JsonValue v;
  for (const char* bad :
       {"NaN", "Infinity", "-Infinity", "{\"x\": NaN}", "[1, Infinity]",
        "nan", "inf"}) {
    EXPECT_FALSE(json_valid(bad)) << bad;
    EXPECT_FALSE(json_parse(bad, &v)) << bad;
  }
  // Ordinary extreme numbers are fine.
  std::string err;
  ASSERT_TRUE(json_parse("1e308", &v, &err)) << err;
  EXPECT_DOUBLE_EQ(v.number(), 1e308);
}

TEST(JsonTest, DeeplyNestedArraysHitTheDepthCap) {
  const auto nested = [](std::size_t depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  JsonValue v;
  std::string err;
  EXPECT_TRUE(json_valid(nested(kJsonMaxDepth), &err)) << err;
  EXPECT_TRUE(json_parse(nested(kJsonMaxDepth), &v, &err)) << err;
  // One level past the cap must fail cleanly in both, not overflow the
  // stack.
  EXPECT_FALSE(json_valid(nested(kJsonMaxDepth + 1)));
  EXPECT_FALSE(json_parse(nested(kJsonMaxDepth + 1), &v));
  EXPECT_FALSE(json_valid(nested(4000)));
  EXPECT_FALSE(json_parse(nested(4000), &v));
}

TEST(JsonTest, ParsesV2RecordShapes) {
  // The shapes report.cpp emits for atpg_run.v2: nested objects in
  // document order, integer arrays, doubles printed with %.17g.
  const std::string text =
      "{\"schema\": \"satpg.atpg_run.v2\",\n"
      " \"attribution\": {\"oracle\": \"exact\", \"num_valid\": 20,"
      " \"density\": 0.3125,"
      " \"bucket_order\": [\"valid\", \"invalid\", \"unknown\"]},\n"
      " \"summary\": {\"attr_evals\": [10, 7, 0],"
      " \"effort_invalid_frac\": 0.35780918623103503}}";
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(text, &v, &err)) << err;
  EXPECT_EQ(v.str_or("schema", ""), "satpg.atpg_run.v2");
  const JsonValue* attr = v.find("attribution");
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->str_or("oracle", ""), "exact");
  EXPECT_DOUBLE_EQ(attr->num_or("density", -1), 0.3125);
  const JsonValue* order = attr->find("bucket_order");
  ASSERT_NE(order, nullptr);
  ASSERT_TRUE(order->is_array());
  ASSERT_EQ(order->array().size(), 3u);
  EXPECT_EQ(order->array()[1].string(), "invalid");
  const JsonValue* summary = v.find("summary");
  ASSERT_NE(summary, nullptr);
  const JsonValue* evals = summary->find("attr_evals");
  ASSERT_NE(evals, nullptr);
  EXPECT_DOUBLE_EQ(evals->array()[1].number(), 7.0);
  EXPECT_DOUBLE_EQ(summary->num_or("effort_invalid_frac", 0),
                   0.35780918623103503);
  // Members preserve document order.
  EXPECT_EQ(v.members()[0].first, "schema");
  EXPECT_EQ(v.members()[1].first, "attribution");
}

// ---- telemetry thread indices -----------------------------------------------

TEST(TelemetryThreadTest, MainThreadOwnsIndexZero) {
  EXPECT_EQ(telemetry_thread_index(), kMainThreadIndex);
  // Registration is idempotent and never reassigns main.
  EXPECT_EQ(telemetry_register_worker(), kMainThreadIndex);
  EXPECT_EQ(telemetry_thread_index(), kMainThreadIndex);
}

TEST(TelemetryThreadTest, ForeignThreadsReadTheSentinel) {
  unsigned before = 0, after = 0;
  std::thread t([&] {
    before = telemetry_thread_index();
    after = telemetry_register_worker();
  });
  t.join();
  EXPECT_EQ(before, kForeignThreadIndex);
  EXPECT_NE(after, kForeignThreadIndex);
  EXPECT_GE(after, 1u) << "worker indices start above main's 0";
}

TEST(TelemetryThreadTest, LogTagRendersForeignAsQuestionMark) {
  EXPECT_EQ(detail::log_thread_tag(kMainThreadIndex), "t0");
  EXPECT_EQ(detail::log_thread_tag(3), "t3");
  EXPECT_EQ(detail::log_thread_tag(kForeignThreadIndex), "t?");
}

}  // namespace
}  // namespace satpg
