// Unit tests for src/base: BitVec, Rng, string utilities, Table.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "base/bitvec.h"
#include "base/rng.h"
#include "base/strutil.h"
#include "base/table.h"

namespace satpg {
namespace {

TEST(BitVecTest, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.none());
}

TEST(BitVecTest, SetGetAcrossWordBoundary) {
  BitVec v(130);
  for (std::size_t i : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    EXPECT_FALSE(v.get(i));
    v.set(i, true);
    EXPECT_TRUE(v.get(i));
  }
  EXPECT_EQ(v.count(), 8u);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count(), 7u);
}

TEST(BitVecTest, FromStringMsbFirst) {
  const BitVec v = BitVec::from_string("1010");
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(v.get(3));
  EXPECT_FALSE(v.get(2));
  EXPECT_TRUE(v.get(1));
  EXPECT_FALSE(v.get(0));
  EXPECT_EQ(v.to_string(), "1010");
}

TEST(BitVecTest, FromValueRoundTrip) {
  for (std::uint64_t x : {0ull, 1ull, 5ull, 255ull, 0xdeadbeefull}) {
    EXPECT_EQ(BitVec::from_value(40, x).to_u64(), x);
  }
}

TEST(BitVecTest, LogicOps) {
  const BitVec a = BitVec::from_string("1100");
  const BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((~a).to_string(), "0011");
}

TEST(BitVecTest, ComplementTrimsTail) {
  BitVec v(70);
  const BitVec c = ~v;
  EXPECT_EQ(c.count(), 70u);  // no phantom bits beyond size
}

TEST(BitVecTest, FindFirstNext) {
  BitVec v(100);
  v.set(3, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_EQ(v.find_first(), 3u);
  EXPECT_EQ(v.find_next(3), 64u);
  EXPECT_EQ(v.find_next(64), 99u);
  EXPECT_EQ(v.find_next(99), 100u);
}

TEST(BitVecTest, SubsetAndOrdering) {
  const BitVec a = BitVec::from_string("0100");
  const BitVec b = BitVec::from_string("0110");
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a < b);
}

TEST(BitVecTest, HashDistinguishes) {
  std::unordered_set<BitVec, BitVecHash> set;
  for (std::uint64_t i = 0; i < 200; ++i)
    set.insert(BitVec::from_value(16, i));
  EXPECT_EQ(set.size(), 200u);
}

TEST(BitVecTest, ResizeGrowsWithValue) {
  BitVec v(3);
  v.set(1, true);
  v.resize(10, false);
  EXPECT_EQ(v.count(), 1u);
  EXPECT_TRUE(v.get(1));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextIntCoversRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIndependent) {
  Rng a(5);
  Rng child = a.fork(1);
  Rng b(5);
  Rng child2 = b.fork(1);
  EXPECT_EQ(child.next_u64(), child2.next_u64());  // fork deterministic
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StrUtilTest, SplitWs) {
  const auto t = split_ws("  a bb\t ccc \n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "ccc");
}

TEST(StrUtilTest, SplitKeepsEmpty) {
  const auto t = split("a,,b", ',');
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], "");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("INPUT(a)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
  EXPECT_TRUE(ends_with("x.re", ".re"));
  EXPECT_FALSE(ends_with("re", ".re"));
}

TEST(StrUtilTest, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
}

TEST(StrUtilTest, FormatDensityMatchesPaperStyle) {
  EXPECT_EQ(format_density(0.84), "0.84");
  EXPECT_EQ(format_density(0.73), "0.73");
  EXPECT_EQ(format_density(2.0e-4), "2.0E-4");
  EXPECT_EQ(format_density(1.8e-6), "1.8E-6");
}

TEST(StrUtilTest, FormatCountMatchesPaperStyle) {
  EXPECT_EQ(format_count(32), "32");
  EXPECT_EQ(format_count(2048), "2048");
  EXPECT_EQ(format_count(524288), "5.24E5");
  EXPECT_EQ(format_count(268435456), "2.68E8");
}

TEST(TableTest, AlignsAndCounts) {
  Table t({"circuit", "#DFF"});
  t.add_row({"dk16.ji.sd", "5"});
  t.add_row({"dk16.ji.sd.re", "19"});
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("dk16.ji.sd.re"), std::string::npos);
  EXPECT_NE(s.find("#DFF"), std::string::npos);
  // Numeric column right-aligned: " 5" appears with leading spaces.
  EXPECT_NE(s.find("   5"), std::string::npos);
}

}  // namespace
}  // namespace satpg
