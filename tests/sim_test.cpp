// Unit + property tests for src/sim: three-valued gate semantics, the
// 64-way parallel encoding, and sequential stepping.
#include <gtest/gtest.h>

#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "sim/value.h"

namespace satpg {
namespace {

TEST(V3Test, NotTruthTable) {
  EXPECT_EQ(v3_not(V3::kZero), V3::kOne);
  EXPECT_EQ(v3_not(V3::kOne), V3::kZero);
  EXPECT_EQ(v3_not(V3::kX), V3::kX);
}

TEST(V3Test, AndKleene) {
  EXPECT_EQ(v3_and(V3::kZero, V3::kX), V3::kZero);
  EXPECT_EQ(v3_and(V3::kX, V3::kZero), V3::kZero);
  EXPECT_EQ(v3_and(V3::kOne, V3::kX), V3::kX);
  EXPECT_EQ(v3_and(V3::kOne, V3::kOne), V3::kOne);
}

TEST(V3Test, OrKleene) {
  EXPECT_EQ(v3_or(V3::kOne, V3::kX), V3::kOne);
  EXPECT_EQ(v3_or(V3::kX, V3::kOne), V3::kOne);
  EXPECT_EQ(v3_or(V3::kZero, V3::kX), V3::kX);
  EXPECT_EQ(v3_or(V3::kZero, V3::kZero), V3::kZero);
}

TEST(V3Test, XorStrict) {
  EXPECT_EQ(v3_xor(V3::kOne, V3::kZero), V3::kOne);
  EXPECT_EQ(v3_xor(V3::kOne, V3::kOne), V3::kZero);
  EXPECT_EQ(v3_xor(V3::kX, V3::kZero), V3::kX);
  EXPECT_EQ(v3_xor(V3::kOne, V3::kX), V3::kX);
}

// Property: PV ops agree with V3 ops slot-by-slot for all 9 value pairs.
class PvAgreement : public ::testing::TestWithParam<std::pair<V3, V3>> {};

TEST_P(PvAgreement, AndOrXorMatchScalar) {
  const auto [a, b] = GetParam();
  PV pa = PV::all(a), pb = PV::all(b);
  EXPECT_EQ(pv_and(pa, pb).slot(17), v3_and(a, b));
  EXPECT_EQ(pv_or(pa, pb).slot(17), v3_or(a, b));
  EXPECT_EQ(pv_xor(pa, pb).slot(17), v3_xor(a, b));
  EXPECT_EQ(pv_not(pa).slot(17), v3_not(a));
  EXPECT_TRUE(pv_and(pa, pb).well_formed());
  EXPECT_TRUE(pv_xor(pa, pb).well_formed());
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, PvAgreement,
    ::testing::Values(std::pair{V3::kZero, V3::kZero},
                      std::pair{V3::kZero, V3::kOne},
                      std::pair{V3::kZero, V3::kX},
                      std::pair{V3::kOne, V3::kZero},
                      std::pair{V3::kOne, V3::kOne},
                      std::pair{V3::kOne, V3::kX},
                      std::pair{V3::kX, V3::kZero},
                      std::pair{V3::kX, V3::kOne},
                      std::pair{V3::kX, V3::kX}));

TEST(PvTest, SlotIndependence) {
  PV v = PV::all(V3::kX);
  v.set_slot(0, V3::kOne);
  v.set_slot(5, V3::kZero);
  EXPECT_EQ(v.slot(0), V3::kOne);
  EXPECT_EQ(v.slot(5), V3::kZero);
  EXPECT_EQ(v.slot(6), V3::kX);
  EXPECT_TRUE(v.well_formed());
}

// 2-bit counter with enable; out = (q1 & q0).
Netlist make_counter() {
  Netlist nl("counter2");
  const NodeId en = nl.add_input("en");
  const NodeId q0 = nl.add_dff("q0", en, FfInit::kZero);
  const NodeId q1 = nl.add_dff("q1", en, FfInit::kZero);
  const NodeId d0 = nl.add_gate(GateType::kXor, "d0", {q0, en});
  const NodeId a = nl.add_gate(GateType::kAnd, "carry", {q0, en});
  const NodeId d1 = nl.add_gate(GateType::kXor, "d1", {q1, a});
  nl.set_fanin(q0, 0, d0);
  nl.set_fanin(q1, 0, d1);
  const NodeId both = nl.add_gate(GateType::kAnd, "both", {q0, q1});
  nl.add_output("out", both);
  return nl;
}

TEST(SeqSimTest, CounterCountsToThree) {
  const Netlist nl = make_counter();
  SeqSimulator sim(nl);
  // Four enabled cycles: states 0,1,2,3; output = 1 only in state 3.
  std::vector<V3> expected = {V3::kZero, V3::kZero, V3::kZero, V3::kOne};
  for (int t = 0; t < 4; ++t) {
    const auto out = sim.step({V3::kOne});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], expected[static_cast<std::size_t>(t)]) << "cycle " << t;
  }
  // Wrapped to 0.
  EXPECT_EQ(sim.state()[0], V3::kZero);
  EXPECT_EQ(sim.state()[1], V3::kZero);
}

TEST(SeqSimTest, DisabledCounterHolds) {
  const Netlist nl = make_counter();
  SeqSimulator sim(nl);
  sim.step({V3::kOne});  // state -> 1
  for (int t = 0; t < 3; ++t) sim.step({V3::kZero});
  EXPECT_EQ(sim.state()[0], V3::kOne);
  EXPECT_EQ(sim.state()[1], V3::kZero);
}

TEST(SeqSimTest, UnknownStatePropagatesX) {
  Netlist nl("xprop");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff("q", a, FfInit::kUnknown);
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {q, a});
  nl.add_output("o", g);
  SeqSimulator sim(nl);
  // q is X; AND(X, 1) = X, AND(X, 0) = 0.
  EXPECT_EQ(sim.eval_outputs({V3::kOne})[0], V3::kX);
  EXPECT_EQ(sim.eval_outputs({V3::kZero})[0], V3::kZero);
}

TEST(SeqSimTest, SetStateOverridesInit) {
  const Netlist nl = make_counter();
  SeqSimulator sim(nl);
  sim.set_state({V3::kOne, V3::kOne});  // state 3
  const auto out = sim.eval_outputs({V3::kZero});
  EXPECT_EQ(out[0], V3::kOne);
}

TEST(SeqSimTest, StateStringMsbFirst) {
  const Netlist nl = make_counter();
  SeqSimulator sim(nl);
  sim.set_state({V3::kOne, V3::kZero});  // q0=1, q1=0
  EXPECT_EQ(sim.state_string(), "01");
}

TEST(SeqSimTest, SimulateSequenceHelper) {
  const Netlist nl = make_counter();
  const std::vector<std::vector<V3>> ins(4, {V3::kOne});
  const auto outs = simulate_sequence(nl, ins);
  ASSERT_EQ(outs.size(), 4u);
  EXPECT_EQ(outs[3][0], V3::kOne);
}

TEST(GateEvalTest, WideGates) {
  Netlist nl("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 4; ++i)
    ins.push_back(nl.add_input("i" + std::to_string(i)));
  const NodeId nand4 = nl.add_gate(GateType::kNand, "n4", ins);
  const NodeId nor4 = nl.add_gate(GateType::kNor, "o4", ins);
  nl.add_output("po_nand", nand4);
  nl.add_output("po_nor", nor4);
  SeqSimulator sim(nl);
  auto out = sim.eval_outputs({V3::kOne, V3::kOne, V3::kOne, V3::kOne});
  EXPECT_EQ(out[0], V3::kZero);  // NAND(1,1,1,1)=0
  EXPECT_EQ(out[1], V3::kZero);  // NOR(1,...)=0
  out = sim.eval_outputs({V3::kZero, V3::kOne, V3::kOne, V3::kOne});
  EXPECT_EQ(out[0], V3::kOne);
  out = sim.eval_outputs({V3::kZero, V3::kZero, V3::kZero, V3::kZero});
  EXPECT_EQ(out[1], V3::kOne);
}

}  // namespace
}  // namespace satpg
