// Tests for the fault-parallel ATPG driver: bit-identical results across
// thread counts (all three engines, original + retimed circuit), the
// SharedLearningCache epoch-visibility rule, deterministic total-budget
// abort, and the wall-clock deadline plumbing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "atpg/parallel.h"
#include "fsim/fsim.h"
#include "fsm/mcnc_suite.h"
#include "retime/retime.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

Netlist mcnc_circuit(const std::string& name, double scale) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == name) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, scale));
  return synthesize(fsm, {}).netlist;
}

ParallelAtpgOptions small_options(EngineKind kind, unsigned threads) {
  ParallelAtpgOptions popts;
  popts.run.engine.kind = kind;
  popts.run.engine.eval_limit = 150'000;
  popts.run.engine.backtrack_limit = 300;
  popts.run.random_sequences = 4;
  popts.run.random_length = 24;
  popts.num_threads = threads;
  return popts;
}

// Every observable field must match bit-for-bit — the determinism contract
// of DESIGN.md §4d covers statuses, tests, traces, and work accounting.
void expect_identical(const ParallelAtpgResult& a, const ParallelAtpgResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.detected_by, b.detected_by) << what;
  EXPECT_EQ(a.run.tests, b.run.tests) << what;
  EXPECT_EQ(a.run.total_faults, b.run.total_faults) << what;
  EXPECT_EQ(a.run.detected, b.run.detected) << what;
  EXPECT_EQ(a.run.redundant, b.run.redundant) << what;
  EXPECT_EQ(a.run.aborted, b.run.aborted) << what;
  EXPECT_EQ(a.run.evals, b.run.evals) << what;
  EXPECT_EQ(a.run.backtracks, b.run.backtracks) << what;
  EXPECT_EQ(a.run.fault_coverage, b.run.fault_coverage) << what;
  EXPECT_EQ(a.run.fault_efficiency, b.run.fault_efficiency) << what;
  EXPECT_EQ(a.run.verify_failures, b.run.verify_failures) << what;
  EXPECT_EQ(a.run.fe_trace, b.run.fe_trace) << what;
  EXPECT_EQ(a.run.states_traversed, b.run.states_traversed) << what;
  EXPECT_EQ(a.aborted_by_deadline, b.aborted_by_deadline) << what;
}

// --- thread-count invariance ------------------------------------------------

class ParallelDeterminism : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ParallelDeterminism, ThreadCountInvariantOnMcncPair) {
  const Netlist orig = mcnc_circuit("s820", 0.3);
  const Netlist twin =
      retime_to_dff_target(orig, orig.num_dffs() * 2, orig.name() + ".re")
          .netlist;
  for (const Netlist* nl : {&orig, &twin}) {
    const ParallelAtpgResult base =
        run_parallel_atpg(*nl, small_options(GetParam(), 1));
    // Sanity on the baseline itself before comparing against it.
    ASSERT_EQ(base.status.size(), base.detected_by.size());
    EXPECT_EQ(base.run.detected + base.run.redundant + base.run.aborted,
              base.run.total_faults);
    for (unsigned threads : {2u, 8u}) {
      const ParallelAtpgResult r =
          run_parallel_atpg(*nl, small_options(GetParam(), threads));
      expect_identical(base, r,
                       nl->name() + " threads=" + std::to_string(threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ParallelDeterminism,
                         ::testing::Values(EngineKind::kHitec,
                                           EngineKind::kForward,
                                           EngineKind::kLearning,
                                           EngineKind::kCdcl),
                         [](const auto& info) {
                           return std::string(engine_kind_name(info.param));
                         });

// Serial reference: the parallel driver at any thread count must agree with
// the sequential run_atpg() on the summary it feeds into the tables.
TEST(ParallelAtpgTest, MatchesSerialDriverSummary) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  ParallelAtpgOptions popts = small_options(EngineKind::kHitec, 4);
  const auto pres = run_parallel_atpg(nl, popts);
  const auto serial = run_atpg(nl, popts.run);
  EXPECT_EQ(pres.run.total_faults, serial.total_faults);
  EXPECT_EQ(pres.run.detected, serial.detected);
  EXPECT_EQ(pres.run.redundant, serial.redundant);
  EXPECT_EQ(pres.run.aborted, serial.aborted);
  EXPECT_EQ(pres.run.tests, serial.tests);
  EXPECT_EQ(pres.run.evals, serial.evals);
  EXPECT_EQ(pres.run.states_traversed, serial.states_traversed);
}

// --- deterministic total-budget abort ----------------------------------------

TEST(ParallelAtpgTest, TotalEvalBudgetAbortIsThreadCountInvariant) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  auto run_with = [&](unsigned threads) {
    ParallelAtpgOptions popts = small_options(EngineKind::kHitec, threads);
    // No random warm-up and a tight budget so exhaustion fires mid-run.
    popts.run.random_sequences = 0;
    popts.run.total_eval_budget = 2'000;
    return run_parallel_atpg(nl, popts);
  };
  const auto base = run_with(1);
  // The budget must actually bite for this test to mean anything.
  ASSERT_GT(base.run.aborted, 0u);
  for (unsigned threads : {2u, 8u})
    expect_identical(base, run_with(threads),
                     "budget threads=" + std::to_string(threads));
}

// --- wall-clock deadline ------------------------------------------------------

TEST(ParallelAtpgTest, DeadlineAbortsGracefully) {
  const Netlist nl = mcnc_circuit("s820", 0.3);
  ParallelAtpgOptions popts = small_options(EngineKind::kHitec, 2);
  popts.run.random_sequences = 0;  // force everything into the det phase
  popts.deadline_ms = 1;           // fires essentially immediately
  const auto r = run_parallel_atpg(nl, popts);
  // Accounting stays consistent no matter where the deadline cut in, and
  // deadline-hit faults are aborted, never mislabelled.
  EXPECT_EQ(r.run.detected + r.run.redundant + r.run.aborted,
            r.run.total_faults);
  EXPECT_EQ(r.status.size(), r.detected_by.size());
  std::size_t strict_detected = 0;
  for (std::size_t i = 0; i < r.status.size(); ++i) {
    if (r.status[i] == FaultStatus::kDetected) {
      ++strict_detected;
      ASSERT_GE(r.detected_by[i], 0);
      ASSERT_LT(static_cast<std::size_t>(r.detected_by[i]),
                r.run.tests.size());
    }
  }
  EXPECT_LE(r.aborted_by_deadline + strict_detected, r.status.size());
}

TEST(ParallelAtpgTest, NoDeadlineMeansNoDeadlineAborts) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  const auto r = run_parallel_atpg(nl, small_options(EngineKind::kHitec, 2));
  EXPECT_EQ(r.aborted_by_deadline, 0u);
}

// --- shared learning cache ----------------------------------------------------

// Harvest real learning entries by running a kLearning engine, then check
// the epoch-visibility and first-writer-wins rules directly.
TEST(SharedLearningCacheTest, EpochVisibilityAndFirstWriterWins) {
  const Netlist nl = mcnc_circuit("dk16", 0.4);
  EngineOptions opts;
  opts.kind = EngineKind::kLearning;
  AtpgEngine engine(nl, opts);
  const auto collapsed = collapse_faults(nl);
  for (const auto& cf : collapsed) engine.generate(cf.representative);
  ASSERT_FALSE(engine.learned_ok().empty())
      << "learning engine produced no success cache entries";

  SharedLearningCache cache;
  // Published during round 2 -> epoch 3: invisible to rounds <= 2.
  cache.publish(/*round=*/2, /*unit=*/0, engine);
  EXPECT_EQ(cache.size(), engine.learned_ok().size() +
                              engine.learned_fail().size());
  const auto& [key, prefix] = *engine.learned_ok().begin();
  std::vector<std::vector<V3>> got;
  EXPECT_FALSE(cache.view_for_round(0).lookup_ok(key, &got));
  EXPECT_FALSE(cache.view_for_round(2).lookup_ok(key, &got));
  EXPECT_TRUE(cache.view_for_round(3).lookup_ok(key, &got));
  EXPECT_EQ(got, prefix);

  // Re-publishing from an earlier round wins (smaller epoch), making the
  // entry visible earlier; re-publishing from a later round is a no-op.
  cache.publish(/*round=*/0, /*unit=*/1, engine);
  EXPECT_TRUE(cache.view_for_round(1).lookup_ok(key, &got));
  cache.publish(/*round=*/7, /*unit=*/0, engine);
  EXPECT_TRUE(cache.view_for_round(1).lookup_ok(key, &got));
  EXPECT_EQ(got, prefix);

  if (!engine.learned_fail().empty()) {
    const StateKey fail_key = *engine.learned_fail().begin();
    EXPECT_FALSE(cache.view_for_round(0).lookup_fail(fail_key));
    EXPECT_TRUE(cache.view_for_round(1).lookup_fail(fail_key));
  }
}

}  // namespace
}  // namespace satpg
