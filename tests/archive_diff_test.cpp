// Run archive + differ: content-hash identity, idempotent add, prefix
// lookup, report parsing, deterministic diff rendering, and the bench_gate
// thresholds.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "base/json.h"
#include "harness/archive.h"
#include "harness/diff.h"

namespace satpg {
namespace {

// A miniature but structurally complete atpg_run.v2 report.
std::string make_report(const std::string& circuit, double coverage,
                        std::uint64_t evals, double frac,
                        const std::string& fault_evals) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"satpg.atpg_run.v2\",\n"
     << "  \"circuit\": {\"name\": \"" << circuit << "\", \"dffs\": 3},\n"
     << "  \"engine\": {\"kind\": \"hitec\", \"eval_limit\": 100,"
        " \"backtrack_limit\": 10, \"max_forward_frames\": 40,"
        " \"max_backward_frames\": 40, \"seed\": 1},\n"
     << "  \"attribution\": {\"oracle\": \"exact\", \"num_valid\": 5,"
        " \"density\": 0.625,"
        " \"bucket_order\": [\"valid\", \"invalid\", \"unknown\"]},\n"
     << "  \"summary\": {\"total_faults\": 2, \"detected\": 2,"
        " \"fault_coverage\": "
     << coverage << ", \"fault_efficiency\": " << coverage
     << ", \"evals\": " << evals
     << ", \"backtracks\": 3, \"justify_calls\": 4,"
        " \"justify_failures\": 1, \"effort_invalid_frac\": "
     << frac << "},\n"
     << "  \"per_fault\": [\n"
     << "    {\"fault\": \"g1 s-a-0\", \"status\": \"detected\","
        " \"attempted\": true, \"evals\": "
     << fault_evals
     << ", \"backtracks\": 1, \"justify_failures\": 0,"
        " \"effort_invalid_frac\": 0.25},\n"
     << "    {\"fault\": \"g2 s-a-1\", \"status\": \"detected\","
        " \"attempted\": true, \"evals\": 7, \"backtracks\": 2,"
        " \"justify_failures\": 1, \"effort_invalid_frac\": 0.9}\n"
     << "  ]\n}\n";
  return os.str();
}

class ArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "archive_test_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ArchiveTest, AddIsIdempotentAndContentHashKeyed) {
  RunArchive archive(dir_);
  const std::string report = make_report("c1", 95.0, 100, 0.1, "5");

  const ArchiveEntry e1 = archive.add(report);
  const ArchiveEntry e2 = archive.add(report);
  EXPECT_EQ(e1.hash, e2.hash);
  EXPECT_EQ(e1.hash.size(), 16u);
  EXPECT_EQ(e1.schema, "satpg.atpg_run.v2");
  EXPECT_EQ(e1.circuit, "c1");
  EXPECT_EQ(e1.engine, "hitec");
  ASSERT_EQ(archive.list().size(), 1u) << "duplicate add must not re-index";
  EXPECT_EQ(archive.load(e1), report);

  // Different content, same config -> new hash, same config digest.
  const ArchiveEntry e3 = archive.add(make_report("c1", 97.0, 80, 0.2, "5"));
  EXPECT_NE(e3.hash, e1.hash);
  EXPECT_EQ(e3.config_digest, e1.config_digest);
  EXPECT_EQ(archive.list().size(), 2u);

  // Different circuit -> different config digest.
  const ArchiveEntry e4 = archive.add(make_report("c2", 95.0, 100, 0.1, "5"));
  EXPECT_NE(e4.config_digest, e1.config_digest);
}

TEST_F(ArchiveTest, FindResolvesUniquePrefixes) {
  RunArchive archive(dir_);
  const ArchiveEntry e1 = archive.add(make_report("c1", 95.0, 100, 0.1, "5"));
  const ArchiveEntry e2 = archive.add(make_report("c2", 90.0, 200, 0.3, "9"));

  EXPECT_FALSE(archive.find("abc").has_value()) << "short prefix rejected";
  const auto full = archive.find(e1.hash);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->hash, e1.hash);
  const auto prefix = archive.find(e2.hash.substr(0, 8));
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->hash, e2.hash);
  EXPECT_FALSE(archive.find("0123456789abcdef").has_value());
}

TEST_F(ArchiveTest, AddRejectsNonReportInput) {
  RunArchive archive(dir_);
  EXPECT_THROW(archive.add("not json"), std::runtime_error);
  EXPECT_THROW(archive.add("{\"schema\": \"satpg.metrics.v1\"}"),
               std::runtime_error);
  EXPECT_THROW(archive.add_file(dir_ + "/no_such_file.json"),
               std::runtime_error);
}

TEST_F(ArchiveTest, LoadReportSpecPrefersFilesThenHashes) {
  RunArchive archive(dir_);
  const std::string report = make_report("c1", 95.0, 100, 0.1, "5");
  const ArchiveEntry e = archive.add(report);
  EXPECT_EQ(load_report_spec(archive, e.hash.substr(0, 8)), report);

  const std::string path = dir_ + "/direct.json";
  {
    std::ofstream os(path);
    os << "file wins";
  }
  EXPECT_EQ(load_report_spec(archive, path), "file wins");
  EXPECT_THROW(load_report_spec(archive, "zzzz"), std::runtime_error);
}

TEST(RunReportTest, ParsesV2Fields) {
  RunReport r;
  std::string err;
  ASSERT_TRUE(
      parse_run_report(make_report("c1", 95.5, 123, 0.42, "5"), &r, &err))
      << err;
  EXPECT_EQ(r.schema, "satpg.atpg_run.v2");
  EXPECT_EQ(r.circuit, "c1");
  EXPECT_EQ(r.engine, "hitec");
  EXPECT_EQ(r.seed, 1u);
  EXPECT_DOUBLE_EQ(r.fault_coverage, 95.5);
  EXPECT_EQ(r.evals, 123u);
  EXPECT_DOUBLE_EQ(r.effort_invalid_frac, 0.42);
  EXPECT_EQ(r.oracle_mode, "exact");
  EXPECT_DOUBLE_EQ(r.density, 0.625);
  ASSERT_EQ(r.per_fault.size(), 2u);
  EXPECT_EQ(r.per_fault[0].name, "g1 s-a-0");
  EXPECT_EQ(r.per_fault[0].evals, 5u);
  EXPECT_DOUBLE_EQ(r.per_fault[1].effort_invalid_frac, 0.9);

  EXPECT_FALSE(parse_run_report("{}", &r, &err));
  EXPECT_FALSE(parse_run_report("[1, 2]", &r, &err));
}

TEST(RunDiffTest, ComputesDeltasRegressionsAndScatter) {
  RunReport a, b;
  std::string err;
  ASSERT_TRUE(
      parse_run_report(make_report("c1", 95.0, 100, 0.1, "5"), &a, &err));
  ASSERT_TRUE(
      parse_run_report(make_report("c1", 93.0, 150, 0.4, "50"), &b, &err));

  const RunDiff d = diff_runs(a, b);
  EXPECT_DOUBLE_EQ(d.coverage_delta, -2.0);
  EXPECT_DOUBLE_EQ(d.evals_ratio, 1.5);
  EXPECT_NEAR(d.invalid_frac_delta, 0.3, 1e-12);
  // g1's evals grew 5 -> 50; g2 unchanged.
  ASSERT_EQ(d.regressions.size(), 1u);
  EXPECT_EQ(d.regressions[0].name, "g1 s-a-0");
  EXPECT_EQ(d.regressions[0].evals_delta, 45);
  EXPECT_TRUE(d.status_changes.empty());
  // Scatter: fault fracs 0.25 and 0.9 land in bins 2 and 9 of 10.
  ASSERT_EQ(d.scatter_a.size(), 10u);
  EXPECT_EQ(d.scatter_a[2], 1u);
  EXPECT_EQ(d.scatter_a[9], 1u);
  EXPECT_EQ(d.attempted_a, 2u);
  EXPECT_EQ(d.attempted_b, 2u);
}

TEST(RunDiffTest, RenderingIsByteStable) {
  RunReport a, b;
  std::string err;
  ASSERT_TRUE(
      parse_run_report(make_report("c1", 95.0, 100, 0.1, "5"), &a, &err));
  ASSERT_TRUE(
      parse_run_report(make_report("c1", 93.0, 150, 0.4, "50"), &b, &err));
  const RunDiff d = diff_runs(a, b);
  std::ostringstream o1, o2;
  write_run_diff(o1, a, b, d);
  write_run_diff(o2, a, b, diff_runs(a, b));
  EXPECT_FALSE(o1.str().empty());
  EXPECT_EQ(o1.str(), o2.str());
  EXPECT_NE(o1.str().find("effort_invalid_frac scatter"), std::string::npos);
}

TEST(GateTest, ThresholdsCatchCoverageDropAndEffortGrowth) {
  RunReport base, cand;
  std::string err;
  ASSERT_TRUE(
      parse_run_report(make_report("c1", 95.0, 100, 0.1, "5"), &base, &err));

  // Identical candidate passes.
  EXPECT_TRUE(evaluate_gate(base, base).pass);

  // Coverage drop beyond the threshold fails.
  ASSERT_TRUE(
      parse_run_report(make_report("c1", 93.0, 100, 0.1, "5"), &cand, &err));
  GateResult g = evaluate_gate(base, cand);
  EXPECT_FALSE(g.pass);
  ASSERT_EQ(g.violations.size(), 1u);
  EXPECT_NE(g.violations[0].find("coverage"), std::string::npos);

  // Effort growth beyond the ratio fails; loosening the threshold passes.
  ASSERT_TRUE(
      parse_run_report(make_report("c1", 95.0, 200, 0.1, "5"), &cand, &err));
  EXPECT_FALSE(evaluate_gate(base, cand).pass);
  GateOptions loose;
  loose.max_effort_ratio = 3.0;
  EXPECT_TRUE(evaluate_gate(base, cand, loose).pass);

  // Coverage gains never trip the gate.
  ASSERT_TRUE(
      parse_run_report(make_report("c1", 99.0, 100, 0.1, "5"), &cand, &err));
  EXPECT_TRUE(evaluate_gate(base, cand).pass);
}

}  // namespace
}  // namespace satpg
