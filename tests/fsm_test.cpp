// Tests for src/fsm: cubes, KISS2 I/O, completeness/determinism checks,
// minimization, and the generated MCNC-substitute suite properties.
#include <gtest/gtest.h>

#include "fsm/fsm.h"
#include "fsm/kiss_io.h"
#include "fsm/mcnc_suite.h"
#include "fsm/minimize.h"

namespace satpg {
namespace {

TEST(CubeTest, FromToString) {
  const Cube c = Cube::from_string("1-0");
  EXPECT_EQ(c.to_string(), "1-0");
  EXPECT_TRUE(c.care.get(2));
  EXPECT_FALSE(c.care.get(1));
  EXPECT_TRUE(c.care.get(0));
  EXPECT_TRUE(c.value.get(2));
  EXPECT_FALSE(c.value.get(0));
}

TEST(CubeTest, Matches) {
  const Cube c = Cube::from_string("1-0");
  EXPECT_TRUE(c.matches(BitVec::from_string("110")));
  EXPECT_TRUE(c.matches(BitVec::from_string("100")));
  EXPECT_FALSE(c.matches(BitVec::from_string("101")));
  EXPECT_FALSE(c.matches(BitVec::from_string("010")));
}

TEST(CubeTest, Intersects) {
  EXPECT_TRUE(Cube::from_string("1-").intersects(Cube::from_string("-0")));
  EXPECT_FALSE(Cube::from_string("1-").intersects(Cube::from_string("0-")));
  EXPECT_TRUE(
      Cube::from_string("--").intersects(Cube::from_string("01")));
}

TEST(TautologyTest, FullCoverDetected) {
  EXPECT_TRUE(cubes_cover_everything(
      {Cube::from_string("1-"), Cube::from_string("0-")}, 2));
  EXPECT_TRUE(cubes_cover_everything({Cube::from_string("--")}, 2));
  EXPECT_TRUE(cubes_cover_everything(
      {Cube::from_string("11"), Cube::from_string("10"),
       Cube::from_string("0-")},
      2));
}

TEST(TautologyTest, GapsDetected) {
  EXPECT_FALSE(cubes_cover_everything({Cube::from_string("1-")}, 2));
  EXPECT_FALSE(cubes_cover_everything(
      {Cube::from_string("11"), Cube::from_string("00")}, 2));
  EXPECT_FALSE(cubes_cover_everything({}, 2));
}

Fsm toggler() {
  // Two states; input bit toggles, output mirrors state.
  Fsm f("toggler", 1, 1);
  f.add_state("A");
  f.add_state("B");
  f.set_reset_state(0);
  f.add_transition({Cube::from_string("1"), 0, 1, Cube::from_string("0")});
  f.add_transition({Cube::from_string("0"), 0, 0, Cube::from_string("0")});
  f.add_transition({Cube::from_string("1"), 1, 0, Cube::from_string("1")});
  f.add_transition({Cube::from_string("0"), 1, 1, Cube::from_string("1")});
  return f;
}

TEST(FsmTest, StepFollowsTransitions) {
  const Fsm f = toggler();
  auto r = f.step(0, BitVec::from_string("1"));
  EXPECT_TRUE(r.specified);
  EXPECT_EQ(r.next_state, 1);
  EXPECT_EQ(r.outputs[0], V3::kZero);
  r = f.step(1, BitVec::from_string("0"));
  EXPECT_EQ(r.next_state, 1);
  EXPECT_EQ(r.outputs[0], V3::kOne);
}

TEST(FsmTest, UnspecifiedStepReturnsX) {
  Fsm f("partial", 1, 1);
  f.add_state("A");
  f.add_transition({Cube::from_string("1"), 0, 0, Cube::from_string("1")});
  const auto r = f.step(0, BitVec::from_string("0"));
  EXPECT_FALSE(r.specified);
  EXPECT_EQ(r.outputs[0], V3::kX);
}

TEST(FsmTest, CompletenessAndDeterminism) {
  const Fsm f = toggler();
  EXPECT_TRUE(f.check_complete());
  EXPECT_TRUE(f.check_deterministic());

  Fsm g("bad", 1, 1);
  g.add_state("A");
  g.add_transition({Cube::from_string("1"), 0, 0, Cube::from_string("1")});
  EXPECT_FALSE(g.check_complete());
  g.add_transition({Cube::from_string("-"), 0, 0, Cube::from_string("0")});
  EXPECT_TRUE(g.check_complete());
  EXPECT_FALSE(g.check_deterministic());  // overlapping cubes disagree
}

TEST(FsmTest, ReachableStates) {
  Fsm f("r", 1, 1);
  f.add_state("A");
  f.add_state("B");
  f.add_state("island");
  f.add_transition({Cube::from_string("-"), 0, 1, Cube::from_string("0")});
  f.add_transition({Cube::from_string("-"), 1, 0, Cube::from_string("0")});
  f.add_transition({Cube::from_string("-"), 2, 0, Cube::from_string("0")});
  const auto reach = f.reachable_states();
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_FALSE(reach[2]);
}

TEST(KissIoTest, RoundTrip) {
  const Fsm f = toggler();
  const std::string text = write_kiss_string(f);
  const Fsm g = read_kiss_string(text, "toggler");
  EXPECT_EQ(g.num_inputs(), 1);
  EXPECT_EQ(g.num_outputs(), 1);
  EXPECT_EQ(g.num_states(), 2);
  EXPECT_EQ(g.transitions().size(), 4u);
  EXPECT_EQ(g.state_name(g.reset_state()), "A");
  EXPECT_EQ(write_kiss_string(g), text);
}

TEST(KissIoTest, ParsesDirectives) {
  const std::string text = R"(
.i 2
.o 1
.s 2
.r idle
-1 idle run 1
-0 idle idle 0
-- run idle 0
.e
)";
  const Fsm f = read_kiss_string(text, "t");
  EXPECT_EQ(f.num_states(), 2);
  EXPECT_EQ(f.state_name(f.reset_state()), "idle");
}

TEST(KissIoTest, RejectsBadInput) {
  EXPECT_THROW(read_kiss_string(".i 2\n", "x"), std::runtime_error);
  EXPECT_THROW(read_kiss_string(".i 2\n.o 1\n01 a b\n", "x"),
               std::runtime_error);
  EXPECT_THROW(read_kiss_string(".i 2\n.o 1\n.s 5\n-- a a 1\n", "x"),
               std::runtime_error);
}

TEST(MinimizeTest, CollapsesEquivalentPair) {
  // B and C behave identically.
  Fsm f("dup", 1, 1);
  f.add_state("A");
  f.add_state("B");
  f.add_state("C");
  f.add_transition({Cube::from_string("1"), 0, 1, Cube::from_string("0")});
  f.add_transition({Cube::from_string("0"), 0, 2, Cube::from_string("0")});
  f.add_transition({Cube::from_string("-"), 1, 0, Cube::from_string("1")});
  f.add_transition({Cube::from_string("-"), 2, 0, Cube::from_string("1")});
  EXPECT_EQ(fsm_num_equivalence_classes(f), 2);
  const Fsm m = minimize_fsm(f);
  EXPECT_EQ(m.num_states(), 2);
  EXPECT_TRUE(m.check_deterministic());
}

TEST(MinimizeTest, DistinguishesByOutput) {
  Fsm f("d", 1, 1);
  f.add_state("A");
  f.add_state("B");
  f.add_transition({Cube::from_string("-"), 0, 0, Cube::from_string("0")});
  f.add_transition({Cube::from_string("-"), 1, 1, Cube::from_string("1")});
  EXPECT_EQ(fsm_num_equivalence_classes(f), 2);
}

TEST(MinimizeTest, DistinguishesBySuccessor) {
  // Same outputs everywhere; A and B differ only via successor chains.
  Fsm f("d2", 1, 1);
  f.add_state("A");
  f.add_state("B");
  f.add_state("Sink0");
  f.add_state("Sink1");
  f.add_transition({Cube::from_string("-"), 0, 2, Cube::from_string("0")});
  f.add_transition({Cube::from_string("-"), 1, 3, Cube::from_string("0")});
  f.add_transition({Cube::from_string("-"), 2, 2, Cube::from_string("0")});
  f.add_transition({Cube::from_string("-"), 3, 3, Cube::from_string("1")});
  const auto cls = fsm_equivalence_classes(f);
  EXPECT_NE(cls[0], cls[1]);
}

TEST(MinimizeTest, DropsUnreachable) {
  Fsm f("u", 1, 1);
  f.add_state("A");
  f.add_state("ghost");
  f.add_transition({Cube::from_string("-"), 0, 0, Cube::from_string("0")});
  f.add_transition({Cube::from_string("-"), 1, 1, Cube::from_string("1")});
  const Fsm m = minimize_fsm(f);
  EXPECT_EQ(m.num_states(), 1);
}

// Property tests over the whole generated suite.
class McncSuiteTest : public ::testing::TestWithParam<FsmGenSpec> {};

TEST_P(McncSuiteTest, MeetsAllGuarantees) {
  const FsmGenSpec spec = GetParam();
  const Fsm f = generate_control_fsm(spec);
  EXPECT_EQ(f.num_states(), spec.padded_states);
  EXPECT_EQ(f.num_inputs(), spec.num_inputs);
  EXPECT_EQ(f.num_outputs(), spec.num_outputs);
  EXPECT_TRUE(f.check_complete());
  EXPECT_TRUE(f.check_deterministic());
  EXPECT_EQ(fsm_num_equivalence_classes(f), spec.minimal_states);
  const auto reach = f.reachable_states();
  for (int s = 0; s < f.num_states(); ++s) EXPECT_TRUE(reach[s]);
  // Minimization yields exactly the class count.
  const Fsm m = minimize_fsm(f);
  EXPECT_EQ(m.num_states(), spec.minimal_states);
}

TEST_P(McncSuiteTest, GenerationIsDeterministic) {
  const FsmGenSpec spec = GetParam();
  const Fsm a = generate_control_fsm(spec);
  const Fsm b = generate_control_fsm(spec);
  EXPECT_EQ(write_kiss_string(a), write_kiss_string(b));
}

INSTANTIATE_TEST_SUITE_P(PaperSuite, McncSuiteTest,
                         ::testing::ValuesIn(mcnc_specs()),
                         [](const auto& info) { return info.param.name; });

TEST(McncSuiteTest2, ByNameMatchesTable1Dimensions) {
  struct Row {
    const char* name;
    int pi, po, states;
  };
  // Paper Table 1 (raw KISS file dimensions).
  const Row table1[] = {{"dk16", 3, 3, 27},   {"pma", 7, 8, 27},
                        {"s510", 20, 7, 47},  {"s820", 18, 19, 25},
                        {"s832", 18, 19, 25}, {"scf", 27, 54, 121}};
  for (const auto& row : table1) {
    const Fsm f = mcnc_fsm(row.name);
    EXPECT_EQ(f.num_inputs(), row.pi) << row.name;
    EXPECT_EQ(f.num_outputs(), row.po) << row.name;
    EXPECT_EQ(f.num_states(), row.states) << row.name;
  }
}

TEST(McncSuiteTest2, ScaledSpecShrinks) {
  const auto spec = mcnc_specs()[5];  // scf
  const auto small = scaled_spec(spec, 0.25);
  EXPECT_LT(small.minimal_states, spec.minimal_states);
  EXPECT_GE(small.minimal_states, 2);
  EXPECT_LE(small.padded_states, spec.padded_states);
  EXPECT_GE(small.padded_states, small.minimal_states);
}

}  // namespace
}  // namespace satpg
