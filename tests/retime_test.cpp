// Tests for src/retime: graph extraction, FEAS retiming, rebuild
// equivalence, and the atomic-move engine (paper Figures 1-2).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "fsm/mcnc_suite.h"
#include "netlist/netlist.h"
#include "retime/retime.h"
#include "sim/simulator.h"
#include "synth/synthesize.h"
#include "synth/techmap.h"

namespace satpg {
namespace {

// Pipeline-ish circuit with slack: in -> AND -> AND -> FF -> out. Retiming
// can balance the two ANDs across the register.
Netlist make_pipeline() {
  Netlist nl("pipe");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId g1 = nl.add_gate(GateType::kAnd, "g1", {a, b});
  const NodeId g2 = nl.add_gate(GateType::kAnd, "g2", {g1, c});
  const NodeId q = nl.add_dff("q", g2, FfInit::kZero);
  const NodeId g3 = nl.add_gate(GateType::kBuf, "g3", {q});
  nl.add_output("o", g3);
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    auto& n = nl.node_mut(static_cast<NodeId>(i));
    if (is_combinational(n.type)) n.delay = 1.0;
  }
  nl.node_mut(g3).delay = 0.25;  // cheap output side leaves retiming slack
  return nl;
}

TEST(RetimeGraphTest, ExtractsVerticesAndWeights) {
  const Netlist nl = make_pipeline();
  const RetimeGraph g = build_retime_graph(nl);
  EXPECT_EQ(g.num_vertices(), 4);  // host + 3 gates
  // One edge should carry the FF (g2 -> g3 with weight 1).
  int weighted = 0;
  for (const auto& e : g.edges) weighted += e.weight;
  EXPECT_EQ(weighted, 1);
}

TEST(RetimeGraphTest, PeriodMatchesCriticalPath) {
  const Netlist nl = make_pipeline();
  const RetimeGraph g = build_retime_graph(nl);
  const std::vector<int> zero(static_cast<std::size_t>(g.num_vertices()), 0);
  EXPECT_DOUBLE_EQ(graph_period(g, zero), critical_path_delay(nl));
}

TEST(RetimeTest, MinPeriodImproves) {
  const Netlist nl = make_pipeline();
  // Original period: a->g1->g2 = 2.0. Retimed: move FF between g1 and g2
  // yields period 1.0... but host edges a->g1 and q-path constraints keep
  // it >= 1.0 + something; just assert improvement.
  const double before = critical_path_delay(nl);
  const RetimeResult r = retime_min_period(nl, "pipe.re");
  EXPECT_LT(r.period_after, before);
  EXPECT_EQ(r.netlist.validate(), std::nullopt);
  EXPECT_DOUBLE_EQ(critical_path_delay(r.netlist), r.period_after);
}

TEST(RetimeTest, InfeasibleTargetRejected) {
  const Netlist nl = make_pipeline();
  const RetimeGraph g = build_retime_graph(nl);
  EXPECT_FALSE(feasible_retiming(g, 0.5).has_value());  // below gate delay
}

TEST(RetimeTest, TargetPeriodHonored) {
  const Netlist nl = make_pipeline();
  const double min_p = min_feasible_period(nl);
  const RetimeResult r = retime_to_period(nl, min_p + 0.25, "pipe.v1");
  EXPECT_LE(r.period_after, min_p + 0.25 + 1e-9);
}

// Lock-step equivalence after a constant-input settle prefix: retiming
// preserves the I/O behaviour once the moved registers have flushed.
void expect_sequentially_equivalent(const Netlist& a, const Netlist& b,
                                    int prefix, int cycles,
                                    std::uint64_t seed) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  SeqSimulator sa(a), sb(b);
  Rng rng(seed);
  const std::vector<V3> settle(a.num_inputs(), V3::kZero);
  for (int t = 0; t < prefix; ++t) {
    sa.step(settle);
    sb.step(settle);
  }
  for (int t = 0; t < cycles; ++t) {
    std::vector<V3> in(a.num_inputs());
    for (auto& v : in) v = rng.next_bool() ? V3::kOne : V3::kZero;
    const auto oa = sa.step(in);
    const auto ob = sb.step(in);
    for (std::size_t o = 0; o < oa.size(); ++o) {
      if (oa[o] == V3::kX || ob[o] == V3::kX) continue;  // unsettled don't-care
      EXPECT_EQ(oa[o], ob[o]) << "cycle " << t << " output " << o;
    }
  }
}

TEST(RetimeTest, PipelineEquivalentAfterRetiming) {
  const Netlist nl = make_pipeline();
  const RetimeResult r = retime_min_period(nl, "pipe.re");
  expect_sequentially_equivalent(nl, r.netlist, 4, 200, 7);
}

// Full-flow property: every synthesized suite circuit stays equivalent
// under min-period retiming, with rst-driven initialization.
class RetimeEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(RetimeEquivalence, SynthesizedCircuitSurvivesRetiming) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == std::string(GetParam())) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.5));
  SynthOptions opts;
  const SynthResult res = synthesize(fsm, opts);
  const RetimeResult r = retime_min_period(res.netlist, res.name + ".re");
  EXPECT_EQ(r.netlist.validate(), std::nullopt);
  EXPECT_LE(r.period_after, r.period_before + 1e-9);
  EXPECT_EQ(r.netlist.num_inputs(), res.netlist.num_inputs());
  EXPECT_EQ(r.netlist.num_outputs(), res.netlist.num_outputs());

  // Settle prefix with rst=1, zero inputs; rst is the last input.
  SeqSimulator sa(res.netlist), sb(r.netlist);
  std::vector<V3> settle(res.netlist.num_inputs(), V3::kZero);
  settle.back() = V3::kOne;  // rst asserted
  int max_lag = 0;
  for (int lag : r.lag) max_lag = std::max(max_lag, std::abs(lag));
  for (int t = 0; t < max_lag + 2; ++t) {
    sa.step(settle);
    sb.step(settle);
  }
  Rng rng(11);
  for (int t = 0; t < 400; ++t) {
    std::vector<V3> in(res.netlist.num_inputs(), V3::kZero);
    for (std::size_t i = 0; i + 1 < in.size(); ++i)
      in[i] = rng.next_bool() ? V3::kOne : V3::kZero;
    // occasionally pulse reset mid-stream too
    if (rng.next_bernoulli(0.02)) in.back() = V3::kOne;
    const auto oa = sa.step(in);
    const auto ob = sb.step(in);
    if (in.back() == V3::kOne) {
      // Re-settle after an asynchronous-looking reset pulse.
      for (int k = 0; k < max_lag + 2; ++k) {
        std::vector<V3> s2(res.netlist.num_inputs(), V3::kZero);
        s2.back() = V3::kOne;
        sa.step(s2);
        sb.step(s2);
      }
      continue;
    }
    EXPECT_EQ(oa, ob) << "cycle " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, RetimeEquivalence,
                         ::testing::Values("dk16", "pma", "s820"));

// The study's scatter transformation must also preserve behaviour.
TEST(RetimeTest, DffTargetRetimingIsEquivalent) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == std::string("pma")) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.5));
  SynthOptions opts;
  const SynthResult res = synthesize(fsm, opts);
  const RetimeResult r = retime_to_dff_target(
      res.netlist, 3 * res.netlist.num_dffs(), res.name + ".re");
  EXPECT_GE(r.netlist.num_dffs(), 3 * res.netlist.num_dffs());
  int max_lag = 0;
  for (int lag : r.lag) max_lag = std::max(max_lag, std::abs(lag));
  // rst-held settle prefix, then lock-step on random inputs.
  SeqSimulator sa(res.netlist), sb(r.netlist);
  std::vector<V3> settle(res.netlist.num_inputs(), V3::kZero);
  settle.back() = V3::kOne;
  for (int t = 0; t < max_lag + 2; ++t) {
    sa.step(settle);
    sb.step(settle);
  }
  Rng rng(23);
  for (int t = 0; t < 500; ++t) {
    std::vector<V3> in(res.netlist.num_inputs(), V3::kZero);
    for (std::size_t i = 0; i + 1 < in.size(); ++i)
      in[i] = rng.next_bool() ? V3::kOne : V3::kZero;
    EXPECT_EQ(sa.step(in), sb.step(in)) << "cycle " << t;
  }
}

TEST(RetimeTest, RetimingAddsFlipFlopsOnSuiteCircuits) {
  // The paper's core observation setup: min-period retiming of these
  // control circuits grows the register count.
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == std::string("s820")) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.5));
  SynthOptions opts;
  opts.script = ScriptKind::kDelay;
  const SynthResult res = synthesize(fsm, opts);
  const RetimeResult r = retime_to_dff_target(
      res.netlist, 3 * res.netlist.num_dffs(), res.name + ".re");
  EXPECT_GT(r.netlist.num_dffs(), res.netlist.num_dffs());
}

// ---- atomic moves ----

Netlist figure2_circuit() {
  // Paper Figure 2 (top): Q2 -> {G1, Gnot}; Gnot -> G2; {G1,G2} -> G3;
  // G3 -> Q1 -> Gbuf -> Q2; PI 'a' second input of G1/G2; PO from Gbuf.
  Netlist nl("fig2");
  const NodeId a = nl.add_input("a");
  const NodeId q2 = nl.add_dff("Q2", a, FfInit::kZero);  // patched below
  const NodeId g1 = nl.add_gate(GateType::kAnd, "G1", {q2, a});
  const NodeId gnot = nl.add_gate(GateType::kNot, "Gnot", {q2});
  const NodeId g2 = nl.add_gate(GateType::kAnd, "G2", {gnot, a});
  const NodeId g3 = nl.add_gate(GateType::kOr, "G3", {g1, g2});
  const NodeId q1 = nl.add_dff("Q1", g3, FfInit::kZero);
  const NodeId gbuf = nl.add_gate(GateType::kBuf, "Gbuf", {q1});
  nl.set_fanin(q2, 0, gbuf);
  nl.add_output("o", gbuf);
  return nl;
}

TEST(AtomicMoveTest, BackwardMoveMatchesFigure2) {
  Netlist nl = figure2_circuit();
  ASSERT_EQ(nl.validate(), std::nullopt);
  const NodeId g3 = nl.find("G3");
  ASSERT_TRUE(can_move_backward(nl, g3));
  Netlist moved = nl.clone("fig2.re");
  move_backward(moved, moved.find("G3"));
  ASSERT_EQ(moved.validate(), std::nullopt);
  // Q1 split into two FFs: register count 2 -> 3.
  EXPECT_EQ(nl.num_dffs(), 2u);
  EXPECT_EQ(moved.num_dffs(), 3u);
  // Behaviour preserved (settle 2 cycles for the X inits).
  expect_sequentially_equivalent(nl, moved, 2, 200, 3);
}

TEST(AtomicMoveTest, ForwardMoveIsInverseOfBackward) {
  Netlist nl = figure2_circuit();
  move_backward(nl, nl.find("G3"));
  // Now G3's fanins are FFs; forward move restores a single output FF.
  ASSERT_TRUE(can_move_forward(nl, nl.find("G3")));
  move_forward(nl, nl.find("G3"));
  EXPECT_EQ(nl.validate(), std::nullopt);
  EXPECT_EQ(nl.num_dffs(), 2u);
  expect_sequentially_equivalent(figure2_circuit(), nl, 2, 200, 5);
}

TEST(AtomicMoveTest, ForwardMovePreservesInitialState) {
  Netlist nl = figure2_circuit();
  move_backward(nl, nl.find("G3"));
  // Backward from Q1 (init 0) through OR: preimage of 0 is unique (0,0).
  for (NodeId ff : nl.dffs()) {
    if (nl.node(ff).name.rfind("bw_", 0) == 0)
      EXPECT_EQ(nl.node(ff).init, FfInit::kZero);
  }
  move_forward(nl, nl.find("G3"));
  // Forward recomputes OR(0,0) = 0.
  for (NodeId ff : nl.dffs())
    if (nl.node(ff).name.rfind("fw_", 0) == 0)
      EXPECT_EQ(nl.node(ff).init, FfInit::kZero);
}

TEST(AtomicMoveTest, GuardsRejectIllegalMoves) {
  Netlist nl = figure2_circuit();
  EXPECT_FALSE(can_move_forward(nl, nl.find("G1")));   // fanins not all FFs
  EXPECT_FALSE(can_move_backward(nl, nl.find("G1")));  // feeds G3, not a FF
  EXPECT_FALSE(can_move_backward(nl, nl.find("Gbuf")));  // fans out to PO too
}

}  // namespace
}  // namespace satpg
