// Tests for src/analysis: sequential depth, cycle
// census (paper Figure 2 semantics), BDD reachability, and the Theorem 2-4
// retiming-invariance properties over the synthesized suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/reach.h"
#include "analysis/structure.h"
#include "fsm/mcnc_suite.h"
#include "netlist/netlist.h"
#include "retime/retime.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

Netlist figure2_circuit() {
  Netlist nl("fig2");
  const NodeId a = nl.add_input("a");
  const NodeId q2 = nl.add_dff("Q2", a, FfInit::kZero);
  const NodeId g1 = nl.add_gate(GateType::kAnd, "G1", {q2, a});
  const NodeId gnot = nl.add_gate(GateType::kNot, "Gnot", {q2});
  const NodeId g2 = nl.add_gate(GateType::kAnd, "G2", {gnot, a});
  const NodeId g3 = nl.add_gate(GateType::kOr, "G3", {g1, g2});
  const NodeId q1 = nl.add_dff("Q1", g3, FfInit::kZero);
  const NodeId gbuf = nl.add_gate(GateType::kBuf, "Gbuf", {q1});
  nl.set_fanin(q2, 0, gbuf);
  nl.add_output("o", gbuf);
  return nl;
}

TEST(SeqDepthTest, Figure2DepthIsOne) {
  // Every PI->PO path funnels through Gbuf exactly once, so at most the Q1
  // register can be crossed: a -> G1 -> G3 -> [Q1] -> Gbuf -> o. Reaching
  // Q2 requires leaving Gbuf, and the only way back to the PO revisits it.
  const auto r = max_sequential_depth(figure2_circuit());
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.max_depth, 1);
}

TEST(SeqDepthTest, ChainDepthCountsAllFfs) {
  // in -> FF -> FF -> FF -> out: depth 3.
  Netlist nl("chain");
  const NodeId in = nl.add_input("in");
  NodeId prev = in;
  for (int i = 0; i < 3; ++i) {
    const NodeId buf = nl.add_gate(GateType::kBuf, "b" + std::to_string(i),
                                   {prev});
    prev = nl.add_dff("q" + std::to_string(i), buf, FfInit::kZero);
  }
  nl.add_output("o", prev);
  const auto r = max_sequential_depth(nl);
  EXPECT_EQ(r.max_depth, 3);
}

TEST(SeqDepthTest, PicksLongerBranch) {
  // Two parallel paths: one with 1 FF, one with 2 FFs.
  Netlist nl("branch");
  const NodeId in = nl.add_input("in");
  const NodeId q1 = nl.add_dff("q1", in, FfInit::kZero);
  const NodeId q2a = nl.add_dff("q2a", in, FfInit::kZero);
  const NodeId q2b = nl.add_dff("q2b", q2a, FfInit::kZero);
  const NodeId merge = nl.add_gate(GateType::kOr, "m", {q1, q2b});
  nl.add_output("o", merge);
  EXPECT_EQ(max_sequential_depth(nl).max_depth, 2);
}

TEST(CycleCensusTest, Figure2CountsOneCycleBeforeRetiming) {
  const Netlist nl = figure2_circuit();
  const CycleCensus c = count_cycles(nl);
  EXPECT_FALSE(c.saturated);
  // Two structural loops share the FF subset {Q1,Q2}: census counts 1.
  EXPECT_EQ(c.num_cycles, 1);
  EXPECT_EQ(c.max_cycle_length, 2);
}

TEST(CycleCensusTest, Figure2CountsTwoCyclesAfterBackwardMove) {
  Netlist nl = figure2_circuit();
  move_backward(nl, nl.find("G3"));
  const CycleCensus c = count_cycles(nl);
  // Q1 split into Q1a/Q1b: subsets {Q1a,Q2} and {Q1b,Q2}.
  EXPECT_EQ(c.num_cycles, 2);
  EXPECT_EQ(c.max_cycle_length, 2);
}

TEST(CycleCensusTest, SelfLoopCounts) {
  Netlist nl("self");
  const NodeId in = nl.add_input("in");
  const NodeId q = nl.add_dff("q", in, FfInit::kZero);
  const NodeId g = nl.add_gate(GateType::kXor, "g", {q, in});
  nl.set_fanin(q, 0, g);
  nl.add_output("o", g);
  const CycleCensus c = count_cycles(nl);
  EXPECT_EQ(c.num_cycles, 1);
  EXPECT_EQ(c.max_cycle_length, 1);
}

TEST(CycleCensusTest, AcyclicHasNone) {
  Netlist nl("acyc");
  const NodeId in = nl.add_input("in");
  const NodeId q = nl.add_dff("q", in, FfInit::kZero);
  nl.add_output("o", q);
  const CycleCensus c = count_cycles(nl);
  EXPECT_EQ(c.num_cycles, 0);
  EXPECT_EQ(c.max_cycle_length, 0);
}

// ---- reachability ----

// mod-3 counter: 00 -> 01 -> 10 -> 00 (state 11 invalid).
Netlist mod3_counter() {
  Netlist nl("mod3");
  const NodeId tie = nl.add_input("tie");  // unused input keeps PIs nonempty
  const NodeId q0 = nl.add_dff("q0", tie, FfInit::kZero);
  const NodeId q1 = nl.add_dff("q1", tie, FfInit::kZero);
  const NodeId n0 = nl.add_gate(GateType::kNot, "n0", {q0});
  const NodeId n1 = nl.add_gate(GateType::kNot, "n1", {q1});
  const NodeId d0 = nl.add_gate(GateType::kAnd, "d0", {n0, n1});
  nl.set_fanin(q0, 0, d0);
  nl.set_fanin(q1, 0, q0);
  nl.add_output("o", q1);
  return nl;
}

TEST(ReachTest, Mod3CounterDensity) {
  const auto r = compute_reachable(mod3_counter());
  EXPECT_EQ(r.num_dffs, 2);
  EXPECT_DOUBLE_EQ(r.num_valid, 3.0);
  EXPECT_DOUBLE_EQ(r.total_states, 4.0);
  EXPECT_DOUBLE_EQ(r.density, 0.75);
  ASSERT_TRUE(r.enumerated);
  std::set<std::string> states;
  for (const auto& s : r.states) states.insert(s.to_string());
  EXPECT_EQ(states, (std::set<std::string>{"00", "01", "10"}));
}

TEST(ReachTest, UnknownInitMakesAllStatesValid) {
  Netlist nl = mod3_counter();
  for (NodeId ff : nl.dffs()) nl.node_mut(ff).init = FfInit::kUnknown;
  const auto r = compute_reachable(nl);
  // Power-up anywhere: 11 is a valid start (transitions to 00 next).
  EXPECT_DOUBLE_EQ(r.num_valid, 4.0);
}

TEST(ReachTest, SynthesizedCircuitValidStatesMatchFsm) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == std::string("dk16")) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.6));
  const SynthResult res = synthesize(fsm, {});
  const auto r = compute_reachable(res.netlist);
  // Valid states == minimized machine states (every state reachable), and
  // the explicit set is exactly the encoding's codes.
  EXPECT_DOUBLE_EQ(r.num_valid,
                   static_cast<double>(res.minimized.num_states()));
  ASSERT_TRUE(r.enumerated);
  std::set<std::string> got;
  for (const auto& s : r.states) got.insert(s.to_string());
  std::set<std::string> want;
  for (const auto& c : res.encoding.code) want.insert(c.to_string());
  EXPECT_EQ(got, want);
}

TEST(ReachTest, RetimedCircuitDensityDrops) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == std::string("s820")) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.5));
  SynthOptions opts;
  opts.script = ScriptKind::kDelay;
  const SynthResult res = synthesize(fsm, opts);
  const RetimeResult rt = retime_to_dff_target(res.netlist, 3 * res.netlist.num_dffs(), res.name + ".re");
  const auto orig = compute_reachable(res.netlist);
  const auto re = compute_reachable(rt.netlist);
  EXPECT_GT(re.total_states, orig.total_states);
  EXPECT_LT(re.density, orig.density);
  // Valid states grow slower than total states (paper §5).
  EXPECT_GE(re.num_valid, orig.num_valid);
}

// ---- Theorems 2-4 over the synthesized suite ----

class TheoremInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(TheoremInvariance, DepthAndCycleLengthSurviveRetiming) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == std::string(GetParam())) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.45));
  SynthOptions opts;
  opts.script = ScriptKind::kDelay;
  const SynthResult res = synthesize(fsm, opts);
  const RetimeResult rt = retime_to_dff_target(res.netlist, 3 * res.netlist.num_dffs(), res.name + ".re");

  // Theorem 2: max sequential depth invariant. A capped search yields a
  // lower bound, so saturation weakens the check to <= (the theorem itself
  // supplies the other direction).
  const auto d0 = max_sequential_depth(res.netlist);
  const auto d1 = max_sequential_depth(rt.netlist);
  ASSERT_FALSE(d0.saturated);
  if (d1.saturated)
    EXPECT_LE(d1.max_depth, d0.max_depth);
  else
    EXPECT_EQ(d0.max_depth, d1.max_depth);

  // Theorem 4: max cycle length invariant. Theorem 3 + Figure 2: the
  // subset census may only grow.
  const auto c0 = count_cycles(res.netlist);
  const auto c1 = count_cycles(rt.netlist);
  ASSERT_FALSE(c0.saturated);
  ASSERT_FALSE(c1.saturated);
  EXPECT_EQ(c0.max_cycle_length, c1.max_cycle_length);
  EXPECT_GE(c1.num_cycles, c0.num_cycles);
}

INSTANTIATE_TEST_SUITE_P(Suite, TheoremInvariance,
                         ::testing::Values("dk16", "pma", "s820", "s832"));

TEST(DensityTest, WrapperMatchesFullResult) {
  const Netlist nl = mod3_counter();
  EXPECT_DOUBLE_EQ(density_of_encoding(nl), compute_reachable(nl).density);
}

}  // namespace
}  // namespace satpg
