// Unit + property tests for the ROBDD package, including a brute-force
// cross-check of every operator against explicit truth tables.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "bdd/bdd.h"

namespace satpg {
namespace {

TEST(BddTest, Terminals) {
  BddMgr m(4);
  EXPECT_NE(m.zero(), m.one());
  EXPECT_EQ(m.bdd_not(m.zero()), m.one());
  EXPECT_EQ(m.bdd_not(m.one()), m.zero());
}

TEST(BddTest, VarAndNvar) {
  BddMgr m(4);
  const BddRef x = m.var(2);
  EXPECT_EQ(m.bdd_not(x), m.nvar(2));
  EXPECT_EQ(m.bdd_and(x, m.nvar(2)), m.zero());
  EXPECT_EQ(m.bdd_or(x, m.nvar(2)), m.one());
}

TEST(BddTest, CanonicityHashConsing) {
  BddMgr m(4);
  const BddRef a = m.bdd_and(m.var(0), m.var(1));
  const BddRef b = m.bdd_and(m.var(1), m.var(0));
  EXPECT_EQ(a, b);
  const BddRef c = m.bdd_or(m.bdd_and(m.var(0), m.var(1)),
                            m.bdd_and(m.var(0), m.bdd_not(m.var(1))));
  EXPECT_EQ(c, m.var(0));  // reduction collapses
}

TEST(BddTest, EvalMatchesSemantics) {
  BddMgr m(3);
  // f = (x0 & x1) | !x2
  const BddRef f = m.bdd_or(m.bdd_and(m.var(0), m.var(1)), m.nvar(2));
  for (unsigned bits = 0; bits < 8; ++bits) {
    const std::vector<bool> a{(bits & 1) != 0, (bits & 2) != 0,
                              (bits & 4) != 0};
    const bool expect = (a[0] && a[1]) || !a[2];
    EXPECT_EQ(m.eval(f, a), expect) << bits;
  }
}

TEST(BddTest, SatCount) {
  BddMgr m(4);
  EXPECT_DOUBLE_EQ(m.sat_count(m.one(), 4), 16.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.zero(), 4), 0.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(1), 4), 8.0);
  const BddRef f = m.bdd_and(m.var(0), m.var(3));
  EXPECT_DOUBLE_EQ(m.sat_count(f, 4), 4.0);
  const BddRef g = m.bdd_xor(m.var(1), m.var(2));
  EXPECT_DOUBLE_EQ(m.sat_count(g, 4), 8.0);
}

TEST(BddTest, ExistsQuantification) {
  BddMgr m(3);
  // f = x0 & x1; exists x1 . f = x0
  const BddRef f = m.bdd_and(m.var(0), m.var(1));
  EXPECT_EQ(m.exists(f, {1}), m.var(0));
  // exists x0,x1 . f = true
  EXPECT_EQ(m.exists(f, {0, 1}), m.one());
  // exists over non-support var is identity
  EXPECT_EQ(m.exists(f, {2}), f);
}

TEST(BddTest, AndExistsEqualsComposition) {
  Rng rng(3);
  BddMgr m(8);
  // Property check on random functions: and_exists(f,g,V) == exists(f&g,V).
  auto random_fn = [&m, &rng]() {
    BddRef f = rng.next_bool() ? m.one() : m.zero();
    for (int i = 0; i < 6; ++i) {
      const BddRef lit = rng.next_bool()
                             ? m.var(static_cast<unsigned>(rng.next_int(0, 7)))
                             : m.nvar(static_cast<unsigned>(rng.next_int(0, 7)));
      switch (rng.next_int(0, 2)) {
        case 0:
          f = m.bdd_and(f, lit);
          break;
        case 1:
          f = m.bdd_or(f, lit);
          break;
        default:
          f = m.bdd_xor(f, lit);
      }
    }
    return f;
  };
  for (int round = 0; round < 50; ++round) {
    const BddRef f = random_fn();
    const BddRef g = random_fn();
    const std::vector<unsigned> qv{1, 3, 5};
    EXPECT_EQ(m.and_exists(f, g, qv), m.exists(m.bdd_and(f, g), qv));
  }
}

TEST(BddTest, RenameMonotoneShift) {
  BddMgr m(6);
  // f over odd variables 1,3,5 -> shift down to 0,2,4.
  const BddRef f =
      m.bdd_or(m.bdd_and(m.var(1), m.var(3)), m.nvar(5));
  std::vector<unsigned> map{0, 0, 2, 2, 4, 4};
  const BddRef g = m.rename(f, map);
  const BddRef expect =
      m.bdd_or(m.bdd_and(m.var(0), m.var(2)), m.nvar(4));
  EXPECT_EQ(g, expect);
}

TEST(BddTest, Support) {
  BddMgr m(5);
  const BddRef f = m.bdd_xor(m.var(0), m.var(4));
  const auto sup = m.support(f);
  ASSERT_EQ(sup.size(), 2u);
  EXPECT_EQ(sup[0], 0u);
  EXPECT_EQ(sup[1], 4u);
}

TEST(BddTest, EnumerateSmallSets) {
  BddMgr m(3);
  // f = x0 XOR x1 (x2 unused): assignments over {x0,x1} = {01, 10}.
  const BddRef f = m.bdd_xor(m.var(0), m.var(1));
  const auto sols = m.enumerate(f, {0, 1});
  ASSERT_EQ(sols.size(), 2u);
  EXPECT_EQ(sols[0], 0b01u);
  EXPECT_EQ(sols[1], 0b10u);
}

TEST(BddTest, EnumerateWithSkippedVariable) {
  BddMgr m(3);
  const BddRef f = m.var(0);  // x1 free
  const auto sols = m.enumerate(f, {0, 1});
  // {x0=1,x1=0} and {x0=1,x1=1}
  ASSERT_EQ(sols.size(), 2u);
  EXPECT_EQ(sols[0], 0b01u);
  EXPECT_EQ(sols[1], 0b11u);
}

TEST(BddTest, NodeLimitThrows) {
  BddMgr m(24, /*node_limit=*/64);
  BddRef f = m.one();
  EXPECT_THROW(
      {
        // Build a function whose BDD needs many nodes.
        for (unsigned i = 0; i + 1 < 24; i += 2)
          f = m.bdd_or(f == m.one() ? m.bdd_and(m.var(i), m.var(i + 1)) : f,
                       m.bdd_and(m.var(i), m.var(i + 1)));
      },
      BddOverflow);
}

// Brute-force cross-check: random expression DAGs evaluated both through
// the BDD and directly, over all 2^6 assignments.
TEST(BddTest, RandomExpressionsAgreeWithTruthTable) {
  Rng rng(99);
  const unsigned kVars = 6;
  for (int round = 0; round < 30; ++round) {
    BddMgr m(kVars);
    // Random RPN-ish expression over literals.
    std::vector<BddRef> stack;
    std::vector<std::vector<bool>> truth;  // parallel truth columns
    auto lit_column = [&](unsigned v, bool neg) {
      std::vector<bool> col(64);
      for (unsigned a = 0; a < 64; ++a)
        col[a] = (((a >> v) & 1u) != 0) != neg;
      return col;
    };
    for (int step = 0; step < 12; ++step) {
      if (stack.size() < 2 || rng.next_bool()) {
        const unsigned v = static_cast<unsigned>(rng.next_int(0, 5));
        const bool neg = rng.next_bool();
        stack.push_back(neg ? m.nvar(v) : m.var(v));
        truth.push_back(lit_column(v, neg));
      } else {
        const BddRef b = stack.back();
        stack.pop_back();
        const BddRef a = stack.back();
        stack.pop_back();
        auto tb = truth.back();
        truth.pop_back();
        auto ta = truth.back();
        truth.pop_back();
        std::vector<bool> tc(64);
        BddRef c;
        switch (rng.next_int(0, 2)) {
          case 0:
            c = m.bdd_and(a, b);
            for (int i = 0; i < 64; ++i) tc[i] = ta[i] && tb[i];
            break;
          case 1:
            c = m.bdd_or(a, b);
            for (int i = 0; i < 64; ++i) tc[i] = ta[i] || tb[i];
            break;
          default:
            c = m.bdd_xor(a, b);
            for (int i = 0; i < 64; ++i) tc[i] = ta[i] != tb[i];
        }
        stack.push_back(c);
        truth.push_back(std::move(tc));
      }
    }
    const BddRef f = stack.back();
    const auto& tf = truth.back();
    for (unsigned a = 0; a < 64; ++a) {
      std::vector<bool> assign(kVars);
      for (unsigned v = 0; v < kVars; ++v) assign[v] = (a >> v) & 1u;
      EXPECT_EQ(m.eval(f, assign), tf[a]);
    }
    // sat_count agrees with the truth table too.
    int ones = 0;
    for (unsigned a = 0; a < 64; ++a) ones += tf[a] ? 1 : 0;
    EXPECT_DOUBLE_EQ(m.sat_count(f, kVars), static_cast<double>(ones));
  }
}

}  // namespace
}  // namespace satpg
