// Tier-1 smoke test for the satpg CLI's telemetry flags: runs the real
// binary on a small cached MCNC circuit with --metrics-json and
// --trace-json, validates that both files are well-formed JSON, and checks
// the metrics report is byte-identical across thread counts — including
// with the live monitor (--heartbeat-json/--progress) enabled, which by
// the DESIGN.md §7 contract must not perturb the deterministic report.
// Also covers the replay round-trip (capture a watchdog-flagged search,
// re-run it, expect exit 0), the flight-recorder/--events-json and
// `satpg inspect` smoke (DESIGN.md §10), the §11 memory surface
// (--mem-budget-mb graceful degradation, inspect --memory, strict
// numeric-flag validation), the §12 cycle profiler (arming --profile-json
// must leave --metrics-json and --events-json byte-identical on the
// parent circuit and its retimed twin at 1/2/8 threads; the sidecar,
// inspect --profile, and the archive-joined inspect --trend all render
// deterministically), and the `--help`/`--version` conventions
// (stdout, exit 0, every subcommand). Paths are injected by CMake:
// SATPG_CLI_PATH is the built tool, SATPG_SMOKE_CIRCUIT a committed
// circuits_cache netlist (no FSM synthesis at test time).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "base/json.h"

namespace satpg {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// Runs `satpg <args>` redirecting stdout+stderr to files (either may be
// empty for /dev/null). Returns the exit status (-1 if the shell could
// not run it).
int run_satpg(const std::string& args, const std::string& stdout_path = "",
              const std::string& stderr_path = "") {
  std::string cmd = std::string("\"") + SATPG_CLI_PATH + "\" " + args;
  cmd += " > " + (stdout_path.empty() ? "/dev/null" : stdout_path);
  cmd += " 2> " + (stderr_path.empty() ? "/dev/null" : stderr_path);
  const int rc = std::system(cmd.c_str());
  return rc < 0 ? -1 : WEXITSTATUS(rc);
}

// Returns the CLI's exit status (-1 if the shell could not run it).
int run_cli(unsigned threads, const std::string& metrics_path,
            const std::string& trace_path, const std::string& extra = "") {
  std::string args = std::string("atpg \"") + SATPG_SMOKE_CIRCUIT +
                     "\" --budget=0.05 --threads=" + std::to_string(threads) +
                     " --metrics-json=" + metrics_path;
  if (!trace_path.empty()) args += " --trace-json=" + trace_path;
  if (!extra.empty()) args += " " + extra;
  return run_satpg(args);
}

TEST(CliSmokeTest, MetricsAndTraceJsonAreValid) {
  const std::string dir = ::testing::TempDir();
  const std::string metrics = dir + "cli_smoke_metrics.json";
  const std::string trace = dir + "cli_smoke_trace.json";
  ASSERT_EQ(run_cli(2, metrics, trace), 0);

  const std::string mjson = slurp(metrics);
  ASSERT_FALSE(mjson.empty());
  std::string err;
  EXPECT_TRUE(json_valid(mjson, &err)) << err;
  EXPECT_NE(mjson.find("\"schema\": \"satpg.atpg_run.v6\""),
            std::string::npos);
  EXPECT_NE(mjson.find("\"per_fault\""), std::string::npos);
  EXPECT_NE(mjson.find("\"metrics\""), std::string::npos);
  // v6: build provenance and the per-subsystem memory accounting block,
  // with a per-fault peak and the watchdog's budget verdict.
  EXPECT_NE(mjson.find("\"build_info\""), std::string::npos);
  EXPECT_NE(mjson.find("\"simd_dispatched\""), std::string::npos);
  EXPECT_NE(mjson.find("\"memory\""), std::string::npos);
  EXPECT_NE(mjson.find("\"subsystems\""), std::string::npos);
  EXPECT_NE(mjson.find("\"peak_bytes\""), std::string::npos);
  EXPECT_NE(mjson.find("\"verdict\": \"off\""), std::string::npos);
  // v5: the cube-sharing provenance rollup.
  EXPECT_NE(mjson.find("\"cube_provenance\""), std::string::npos);
  // v2: the invalid-state attribution block and run-level fraction.
  EXPECT_NE(mjson.find("\"attribution\""), std::string::npos);
  EXPECT_NE(mjson.find("\"effort_invalid_frac\""), std::string::npos);
  // v3: the watchdog block is always present (empty when off).
  EXPECT_NE(mjson.find("\"watchdog\""), std::string::npos);
  EXPECT_NE(mjson.find("\"stuck_faults\": []"), std::string::npos);
  // Wall-clock values must never leak into the deterministic report.
  EXPECT_EQ(mjson.find("wall"), std::string::npos);

  const std::string tjson = slurp(trace);
  ASSERT_FALSE(tjson.empty());
  EXPECT_TRUE(json_valid(tjson, &err)) << err;
  EXPECT_NE(tjson.find("\"traceEvents\""), std::string::npos);
}

TEST(CliSmokeTest, MetricsJsonIdenticalAcrossThreadCounts) {
  const std::string dir = ::testing::TempDir();
  const std::string m1 = dir + "cli_smoke_m1.json";
  const std::string m2 = dir + "cli_smoke_m2.json";
  ASSERT_EQ(run_cli(1, m1, ""), 0);
  ASSERT_EQ(run_cli(2, m2, ""), 0);
  const std::string a = slurp(m1);
  const std::string b = slurp(m2);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// The §7 contract: the monitor observes, it never steers. The report must
// be byte-identical with the monitor on or off, at any thread count.
TEST(CliSmokeTest, MonitorDoesNotPerturbMetricsJson) {
  const std::string dir = ::testing::TempDir();
  const std::string off = dir + "cli_mon_off.json";
  ASSERT_EQ(run_cli(1, off, ""), 0);
  for (unsigned threads : {1u, 8u}) {
    const std::string on =
        dir + "cli_mon_on_" + std::to_string(threads) + ".json";
    const std::string hb =
        dir + "cli_mon_hb_" + std::to_string(threads) + ".ndjson";
    ASSERT_EQ(run_cli(threads, on, "",
                      "--heartbeat-json=" + hb +
                          " --heartbeat-interval-ms=5 --progress"),
              0);
    EXPECT_EQ(slurp(off), slurp(on)) << "threads=" << threads;
  }
}

// Heartbeats are NDJSON: every line parses on its own and carries the
// schema tag; the --progress flag writes at least one line to stderr.
TEST(CliSmokeTest, HeartbeatStreamIsValidNdjson) {
  const std::string dir = ::testing::TempDir();
  const std::string hb = dir + "cli_hb.ndjson";
  const std::string progress_err = dir + "cli_hb_progress.err";
  const std::string args = std::string("atpg \"") + SATPG_SMOKE_CIRCUIT +
                           "\" --budget=0.05 --threads=2 --heartbeat-json=" +
                           hb + " --heartbeat-interval-ms=5 --progress";
  ASSERT_EQ(run_satpg(args, "", progress_err), 0);

  std::ifstream is(hb);
  std::string line, last, err;
  std::size_t lines = 0;
  std::uint64_t expect_seq = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ASSERT_TRUE(json_valid(line, &err)) << "line " << lines << ": " << err;
    EXPECT_NE(line.find("\"schema\": \"satpg.heartbeat.v2\""),
              std::string::npos);
    JsonValue v;
    ASSERT_TRUE(json_parse(line, &v, &err)) << err;
    EXPECT_EQ(v.uint_or("seq", ~0ull), expect_seq++);
    EXPECT_FALSE(v.str_or("phase", "").empty());
    last = line;
    ++lines;
  }
  // The final sample is taken synchronously at stop(), so even an
  // instant run emits at least one heartbeat, phase "done".
  ASSERT_GE(lines, 1u);
  EXPECT_NE(last.find("\"phase\": \"done\""), std::string::npos);
  // v2 memory fields: accounted live bytes plus the kernel's peak-RSS
  // reading (the one wall-side number, quarantined to the heartbeat
  // stream — it must never appear in the deterministic report).
  EXPECT_NE(last.find("\"mem_live_bytes\""), std::string::npos);
  EXPECT_NE(last.find("\"peak_rss_kb\""), std::string::npos);

  const std::string progress_text = slurp(progress_err);
  EXPECT_NE(progress_text.find("done"), std::string::npos);
  // The stderr summary reports the telemetry volume: heartbeat sample
  // count plus how many trace ring-buffer events were dropped.
  EXPECT_NE(progress_text.find("heartbeat samples"), std::string::npos);
  EXPECT_NE(progress_text.find("trace events dropped"), std::string::npos);
}

// Arm the capture on a watchdog-flagged fault, then replay it: the decision
// stream must reproduce exactly (exit 0). A corrupted capture must not
// (exit 1).
TEST(CliSmokeTest, CaptureReplayRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string cap = dir + "cli_capture.json";
  const std::string out = dir + "cli_replay.out";
  ASSERT_EQ(run_cli(2, dir + "cli_cap_m.json", "",
                    "--stuck-evals=200 --capture-json=" + cap),
            0);
  const std::string cap_text = slurp(cap);
  ASSERT_FALSE(cap_text.empty()) << "watchdog never triggered a capture";
  std::string err;
  EXPECT_TRUE(json_valid(cap_text, &err)) << err;
  EXPECT_NE(cap_text.find("\"schema\": \"satpg.search_capture.v1\""),
            std::string::npos);

  ASSERT_EQ(run_satpg("replay " + cap + " --circuit=\"" +
                          SATPG_SMOKE_CIRCUIT + "\"",
                      out),
            0);
  EXPECT_NE(slurp(out).find("replay matched"), std::string::npos);

  // Flip one recorded event: replay must detect the divergence.
  std::string bad_text = cap_text;
  const std::size_t pos = bad_text.find("[\"D\", ");
  ASSERT_NE(pos, std::string::npos);
  bad_text.replace(pos, 6, "[\"B\", ");
  const std::string bad = dir + "cli_capture_bad.json";
  std::ofstream(bad) << bad_text;
  EXPECT_EQ(run_satpg("replay " + bad + " --circuit=\"" +
                          SATPG_SMOKE_CIRCUIT + "\""),
            1);
}

// Flight recorder + inspect smoke (DESIGN.md §10): --events-json writes
// an NDJSON log that is byte-identical across thread counts, and `satpg
// inspect` renders it, diffs two runs' reports, and maps an unknown
// fault to exit 1.
TEST(CliSmokeTest, EventsJsonAndInspectSmoke) {
  const std::string dir = ::testing::TempDir();
  const std::string e1 = dir + "cli_events_1.ndjson";
  const std::string e2 = dir + "cli_events_2.ndjson";
  const std::string m1 = dir + "cli_events_m1.json";
  const std::string m2 = dir + "cli_events_m2.json";
  ASSERT_EQ(run_cli(1, m1, "", "--events-json=" + e1), 0);
  ASSERT_EQ(run_cli(2, m2, "", "--events-json=" + e2), 0);
  const std::string log = slurp(e1);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log, slurp(e2));
  EXPECT_NE(log.find("\"schema\": \"satpg.events.v1\""), std::string::npos);
  // NDJSON: every line parses on its own; no wall clock anywhere.
  std::istringstream is(log);
  std::string line, err;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ASSERT_TRUE(json_valid(line, &err)) << "line " << lines << ": " << err;
    ++lines;
  }
  ASSERT_GE(lines, 2u) << "header plus at least one fault line";
  EXPECT_EQ(log.find("wall"), std::string::npos);

  const std::string out = dir + "cli_inspect.out";
  ASSERT_EQ(run_satpg("inspect " + e1, out), 0);
  EXPECT_NE(slurp(out).find("hardest faults"), std::string::npos);
  ASSERT_EQ(run_satpg("inspect " + m1, out), 0);
  EXPECT_NE(slurp(out).find("hardest faults"), std::string::npos);
  // Two deterministic runs of the same configuration diff clean.
  ASSERT_EQ(run_satpg("inspect --diff " + m1 + " " + m2, out), 0);
  EXPECT_NE(slurp(out).find("per-fault trajectories identical"),
            std::string::npos);
  // Unknown fault: runtime failure, exit 1 (README "Exit codes").
  EXPECT_EQ(run_satpg("inspect " + e1 + " --fault=bogus"), 1);
}

// Wide-fsim engine selection on the real CLI. The determinism contract
// (DESIGN.md §8): the metrics report and the human-readable result lines
// are byte-identical whether the wide engine runs its widest SIMD tier,
// the portable scalar kernel (--force-scalar or SATPG_FORCE_SCALAR=1),
// or any explicit --width; the baseline engine agrees on every result
// line (its registry differs only in engine-scoped fsim.wide.* rows).
TEST(CliSmokeTest, FsimEngineFlagsAreDeterministic) {
  const std::string dir = ::testing::TempDir();
  auto fsim_run = [&](const std::string& tag, const std::string& extra,
                      const std::string& env = "") {
    const std::string metrics = dir + "cli_fsim_" + tag + ".json";
    const std::string out = dir + "cli_fsim_" + tag + ".out";
    std::string args = std::string("fsim \"") + SATPG_SMOKE_CIRCUIT +
                       "\" --sequences=8 --length=16 --metrics-json=" +
                       metrics;
    if (!extra.empty()) args += " " + extra;
    if (!env.empty()) args = env + " \"" + SATPG_CLI_PATH + "\" " + args;
    EXPECT_EQ(env.empty()
                  ? run_satpg(args, out)
                  : WEXITSTATUS(std::system(
                        (args + " > " + out + " 2> /dev/null").c_str())),
              0)
        << tag;
    // Drop the engine-name line: it names the tier on purpose.
    std::string body, line;
    std::istringstream is(slurp(out));
    while (std::getline(is, line))
      if (line.compare(0, 6, "engine") != 0 &&
          line.compare(0, 7, "metrics") != 0)
        body += line + "\n";
    return std::make_pair(slurp(metrics), body);
  };

  const auto def = fsim_run("default", "");
  const auto scalar = fsim_run("scalar", "--force-scalar");
  const auto env_scalar = fsim_run("env", "", "SATPG_FORCE_SCALAR=1");
  ASSERT_FALSE(def.first.empty());
  EXPECT_EQ(scalar.first, def.first);
  EXPECT_EQ(env_scalar.first, def.first);
  EXPECT_EQ(scalar.second, def.second);
  EXPECT_EQ(env_scalar.second, def.second);
  for (const char* width : {"64", "128", "256", "512"}) {
    const auto w = fsim_run(std::string("w") + width,
                            std::string("--width=") + width);
    // A tier the CPU lacks exits 1 with an empty report; a supported one
    // must match the default byte-for-byte.
    if (!w.first.empty()) {
      EXPECT_EQ(w.first, def.first) << "--width=" << width;
      EXPECT_EQ(w.second, def.second) << "--width=" << width;
    }
  }
  // Result lines agree across engines even though registries differ.
  const auto base = fsim_run("baseline", "--engine=baseline");
  const auto wide = fsim_run("wide", "--engine=wide");
  EXPECT_EQ(base.second, def.second);
  EXPECT_EQ(wide.second, def.second);
}

// Bad engine/width values are usage errors (exit 2, README "Exit codes").
TEST(CliSmokeTest, FsimEngineFlagErrors) {
  const std::string args_prefix =
      std::string("fsim \"") + SATPG_SMOKE_CIRCUIT + "\" ";
  EXPECT_EQ(run_satpg(args_prefix + "--width=7"), 2);
  EXPECT_EQ(run_satpg(args_prefix + "--engine=bogus"), 2);
}

// Malformed numeric telemetry flags are usage errors: exit 2 with a usage
// message, never a silent clamp to some default (README "Exit codes",
// DESIGN.md §11). Zero is out of range for all three — an interval of 0
// would spin, a stuck threshold of 0 would flag everything, a budget of 0
// is spelled by omitting the flag.
TEST(CliSmokeTest, MalformedTelemetryFlagsExitUsage) {
  const std::string dir = ::testing::TempDir();
  const std::string args_prefix =
      std::string("atpg \"") + SATPG_SMOKE_CIRCUIT + "\" --budget=0.05 ";
  for (const char* bad :
       {"--mem-budget-mb=-3", "--mem-budget-mb=0", "--mem-budget-mb=abc",
        "--mem-budget-mb=", "--stuck-evals=0", "--stuck-evals=-1",
        "--stuck-evals=20x", "--heartbeat-interval-ms=0",
        "--heartbeat-interval-ms=fast", "--profile-interval-ms=0",
        "--profile-interval-ms=abc", "--profile-interval-ms=-5",
        "--profile-max-samples=0", "--profile-max-samples=junk"}) {
    const std::string err = dir + "cli_badflag.err";
    EXPECT_EQ(run_satpg(args_prefix + bad, "", err), 2) << bad;
    EXPECT_NE(slurp(err).find("usage: satpg"), std::string::npos) << bad;
  }
}

// Memory budget smoke (DESIGN.md §11): a deliberately tiny budget trips
// mid-search, parks the offenders, and requeues them with the limit
// lifted — so the final coverage and per-fault statuses are identical to
// the unbudgeted run, and the watchdog block says so. The report stays
// byte-identical across thread counts, and `satpg inspect --memory`
// renders the accounting block in both formats.
TEST(CliSmokeTest, MemBudgetDegradesGracefullyAndInspectReadsItBack) {
  const std::string dir = ::testing::TempDir();
  const std::string plain = dir + "cli_mem_plain.json";
  ASSERT_EQ(run_cli(2, plain, ""), 0);
  const std::string b1 = dir + "cli_mem_b1.json";
  const std::string b2 = dir + "cli_mem_b2.json";
  ASSERT_EQ(run_cli(1, b1, "", "--mem-budget-mb=0.05"), 0);
  ASSERT_EQ(run_cli(2, b2, "", "--mem-budget-mb=0.05"), 0);
  const std::string budgeted = slurp(b1);
  ASSERT_FALSE(budgeted.empty());
  EXPECT_EQ(budgeted, slurp(b2));
  EXPECT_NE(budgeted.find("\"memory\": {\"budget\": 52428"),
            std::string::npos);

  // Same coverage line with and without the budget: degradation must not
  // cost detections. (Compare the summary blocks; effort counters differ
  // because tripped attempts run twice.)
  const std::string plain_text = slurp(plain);
  const auto coverage_of = [](const std::string& text) {
    const std::size_t pos = text.find("\"fault_coverage\"");
    return text.substr(pos, text.find('\n', pos) - pos);
  };
  EXPECT_EQ(coverage_of(budgeted), coverage_of(plain_text));

  const std::string out = dir + "cli_mem_inspect.out";
  ASSERT_EQ(run_satpg("inspect " + b1 + " --memory", out), 0);
  const std::string txt = slurp(out);
  EXPECT_NE(txt.find("subsystem"), std::string::npos);
  EXPECT_NE(txt.find("hungriest faults"), std::string::npos);
  ASSERT_EQ(run_satpg("inspect " + b1 + " --memory --format=json", out), 0);
  const std::string mem_json = slurp(out);
  std::string err;
  EXPECT_TRUE(json_valid(mem_json, &err)) << err;
  EXPECT_NE(mem_json.find("\"schema\": \"satpg.inspect_memory.v1\""),
            std::string::npos);
  // An event log has no memory block: runtime failure, exit 1.
  const std::string ev = dir + "cli_mem_events.ndjson";
  ASSERT_EQ(run_cli(1, dir + "cli_mem_ev_m.json", "", "--events-json=" + ev),
            0);
  EXPECT_EQ(run_satpg("inspect " + ev + " --memory"), 1);
}

// Pins the CI runner's backend so the smoke runs behave the same on a
// developer machine with perf_event available; the byte-identity
// contracts under test hold for either backend.
struct FallbackBackendGuard {
  FallbackBackendGuard() { ::setenv("SATPG_PROFILE_BACKEND", "fallback", 1); }
  ~FallbackBackendGuard() { ::unsetenv("SATPG_PROFILE_BACKEND"); }
};

// The §12 contract: the profiler observes on the wall-clock plane only.
// Arming --profile-json must leave both deterministic artifacts
// (--metrics-json, --events-json) byte-identical, at any thread count,
// on the parent circuit and on its CLI-retimed twin.
TEST(CliSmokeTest, ProfilerDoesNotPerturbMetricsOrEvents) {
  FallbackBackendGuard backend;
  const std::string dir = ::testing::TempDir();
  const std::string twin = dir + "cli_prof_twin.bench";
  ASSERT_EQ(run_satpg(std::string("retime \"") + SATPG_SMOKE_CIRCUIT +
                      "\" " + twin),
            0);

  const std::string circuits[] = {SATPG_SMOKE_CIRCUIT, twin};
  for (int c = 0; c < 2; ++c) {
    const std::string tag = c == 0 ? "parent" : "twin";
    auto atpg_run = [&](const std::string& run_tag, unsigned threads,
                        bool profiled) {
      const std::string m = dir + "cli_prof_" + run_tag + ".json";
      const std::string e = dir + "cli_prof_" + run_tag + ".ndjson";
      std::string args = std::string("atpg \"") + circuits[c] +
                         "\" --budget=0.05 --threads=" +
                         std::to_string(threads) + " --metrics-json=" + m +
                         " --events-json=" + e;
      if (profiled)
        args += " --profile-json=" + dir + "cli_prof_" + run_tag + "_p.json";
      EXPECT_EQ(run_satpg(args), 0) << run_tag;
      return std::make_pair(slurp(m), slurp(e));
    };

    const auto off = atpg_run(tag + "_off", 1, false);
    ASSERT_FALSE(off.first.empty());
    ASSERT_FALSE(off.second.empty());
    for (unsigned threads : {1u, 2u, 8u}) {
      const auto on =
          atpg_run(tag + "_on" + std::to_string(threads), threads, true);
      EXPECT_EQ(off.first, on.first)
          << tag << " metrics perturbed at threads=" << threads;
      EXPECT_EQ(off.second, on.second)
          << tag << " events perturbed at threads=" << threads;
    }
    // The sidecar itself is well-formed and tagged.
    const std::string prof = slurp(dir + "cli_prof_" + tag + "_on1_p.json");
    ASSERT_FALSE(prof.empty());
    std::string err;
    EXPECT_TRUE(json_valid(prof, &err)) << err;
    EXPECT_NE(prof.find("\"schema\": \"satpg.profile.v1\""),
              std::string::npos);
    EXPECT_NE(prof.find("\"backend\": \"fallback\""), std::string::npos);
    EXPECT_NE(prof.find("\"phases\""), std::string::npos);
    EXPECT_NE(prof.find("\"build_info\""), std::string::npos);
  }
}

// `satpg inspect --profile` renders the ranked where-do-the-cycles-go
// table from a sidecar, in both formats; a report is not a profile
// (exit 1), and --profile composes with neither --diff nor --trend
// (exit 2).
TEST(CliSmokeTest, InspectProfileRendersSidecar) {
  FallbackBackendGuard backend;
  const std::string dir = ::testing::TempDir();
  const std::string m = dir + "cli_iprof_m.json";
  const std::string p = dir + "cli_iprof_p.json";
  ASSERT_EQ(run_cli(1, m, "", "--profile-json=" + p), 0);

  const std::string out = dir + "cli_iprof.out";
  ASSERT_EQ(run_satpg("inspect " + p + " --profile", out), 0);
  const std::string txt = slurp(out);
  EXPECT_NE(txt.find("phase"), std::string::npos);
  EXPECT_NE(txt.find("task"), std::string::npos);

  ASSERT_EQ(run_satpg("inspect " + p + " --profile --format=json", out), 0);
  const std::string pjson = slurp(out);
  std::string err;
  EXPECT_TRUE(json_valid(pjson, &err)) << err;
  EXPECT_NE(pjson.find("\"schema\": \"satpg.inspect_profile.v1\""),
            std::string::npos);

  EXPECT_EQ(run_satpg("inspect " + m + " --profile"), 1);
  EXPECT_EQ(run_satpg("inspect " + p + " --profile --trend"), 2);
  EXPECT_EQ(run_satpg("inspect --diff --profile " + p + " " + m), 2);
}

// Archive two runs plus their profile sidecars, then `inspect --trend`:
// one row per report with evals/s joined from the matching-configuration
// sidecar, byte-stable across invocations, in both formats.
TEST(CliSmokeTest, ArchiveTrendJoinsProfilesByteStably) {
  FallbackBackendGuard backend;
  const std::string dir = ::testing::TempDir();
  const std::string runs = dir + "cli_trend_runs";
  const std::string twin = dir + "cli_trend_twin.bench";
  ASSERT_EQ(run_satpg(std::string("retime \"") + SATPG_SMOKE_CIRCUIT +
                      "\" " + twin),
            0);

  const std::string circuits[] = {SATPG_SMOKE_CIRCUIT, twin};
  for (int c = 0; c < 2; ++c) {
    const std::string m = dir + "cli_trend_m" + std::to_string(c) + ".json";
    const std::string p = dir + "cli_trend_p" + std::to_string(c) + ".json";
    ASSERT_EQ(run_satpg(std::string("atpg \"") + circuits[c] +
                        "\" --budget=0.05 --threads=2 --metrics-json=" + m +
                        " --profile-json=" + p),
              0);
    ASSERT_EQ(run_satpg("archive " + m + " " + p + " --dir=" + runs), 0);
  }

  const std::string out1 = dir + "cli_trend_1.out";
  const std::string out2 = dir + "cli_trend_2.out";
  ASSERT_EQ(run_satpg("inspect --trend --dir=" + runs, out1), 0);
  ASSERT_EQ(run_satpg("inspect --trend --dir=" + runs, out2), 0);
  const std::string trend = slurp(out1);
  ASSERT_FALSE(trend.empty());
  EXPECT_EQ(trend, slurp(out2)) << "--trend must be byte-stable";
  EXPECT_NE(trend.find("evals/s"), std::string::npos);
  // Both archived runs have a matching-config sidecar, so no run joins
  // to "-" in the evals/s column... but cycles/eval is "-" under the
  // fallback backend (no cycle counter). Check via json, which is exact.
  const std::string outj = dir + "cli_trend_j.out";
  ASSERT_EQ(run_satpg("inspect --trend --dir=" + runs + " --format=json",
                      outj),
            0);
  const std::string tjson = slurp(outj);
  std::string err;
  EXPECT_TRUE(json_valid(tjson, &err)) << err;
  EXPECT_NE(tjson.find("\"schema\": \"satpg.inspect_trend.v1\""),
            std::string::npos);
  EXPECT_NE(tjson.find("\"evals_per_second\""), std::string::npos);
  EXPECT_EQ(tjson.find("\"profile\": null"), std::string::npos)
      << "every report row must join a sidecar";

  // An empty archive is a runtime failure, not a crash.
  EXPECT_EQ(run_satpg("inspect --trend --dir=" + dir + "cli_trend_none"), 1);
}

// `--help` anywhere prints usage to stdout and exits 0, for every
// subcommand (README "Exit codes").
TEST(CliSmokeTest, HelpExitsZeroForEverySubcommand) {
  const std::string dir = ::testing::TempDir();
  const std::string out = dir + "cli_help.out";
  for (const char* sub :
       {"", "info", "analyze", "atpg", "fsim", "retime", "scan", "faults",
        "archive", "diff", "replay", "inspect"}) {
    const std::string args =
        (*sub ? std::string(sub) + " --help" : std::string("--help"));
    ASSERT_EQ(run_satpg(args, out), 0) << "subcommand: " << args;
    EXPECT_NE(slurp(out).find("usage: satpg"), std::string::npos)
        << "subcommand: " << args;
  }
}

// `--version` anywhere prints the build provenance (compiler, build
// type, SIMD tiers, host CPU) to stdout and exits 0, for every
// subcommand — so a bug report can always name the binary exactly.
TEST(CliSmokeTest, VersionExitsZeroForEverySubcommand) {
  const std::string dir = ::testing::TempDir();
  const std::string out = dir + "cli_version.out";
  for (const char* sub :
       {"", "info", "analyze", "atpg", "fsim", "retime", "scan", "faults",
        "archive", "diff", "replay", "inspect"}) {
    const std::string args =
        (*sub ? std::string(sub) + " --version" : std::string("--version"));
    ASSERT_EQ(run_satpg(args, out), 0) << "subcommand: " << args;
    const std::string text = slurp(out);
    EXPECT_NE(text.find("satpg ("), std::string::npos) << args;
    EXPECT_NE(text.find("host cpu"), std::string::npos) << args;
    EXPECT_NE(text.find("simd"), std::string::npos) << args;
  }
}

}  // namespace
}  // namespace satpg
