// Tier-1 smoke test for the satpg CLI's telemetry flags: runs the real
// binary on a small cached MCNC circuit with --metrics-json and
// --trace-json, validates that both files are well-formed JSON, and checks
// the metrics report is byte-identical across thread counts. Paths are
// injected by CMake: SATPG_CLI_PATH is the built tool, SATPG_SMOKE_CIRCUIT
// a committed circuits_cache netlist (no FSM synthesis at test time).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "base/json.h"

namespace satpg {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// Returns the CLI's exit status (-1 if the shell could not run it).
int run_cli(unsigned threads, const std::string& metrics_path,
            const std::string& trace_path) {
  std::string cmd = std::string("\"") + SATPG_CLI_PATH + "\" atpg \"" +
                    SATPG_SMOKE_CIRCUIT + "\" --budget=0.05 --threads=" +
                    std::to_string(threads) +
                    " --metrics-json=" + metrics_path;
  if (!trace_path.empty()) cmd += " --trace-json=" + trace_path;
  cmd += " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  return rc < 0 ? -1 : WEXITSTATUS(rc);
}

TEST(CliSmokeTest, MetricsAndTraceJsonAreValid) {
  const std::string dir = ::testing::TempDir();
  const std::string metrics = dir + "cli_smoke_metrics.json";
  const std::string trace = dir + "cli_smoke_trace.json";
  ASSERT_EQ(run_cli(2, metrics, trace), 0);

  const std::string mjson = slurp(metrics);
  ASSERT_FALSE(mjson.empty());
  std::string err;
  EXPECT_TRUE(json_valid(mjson, &err)) << err;
  EXPECT_NE(mjson.find("\"schema\": \"satpg.atpg_run.v2\""),
            std::string::npos);
  EXPECT_NE(mjson.find("\"per_fault\""), std::string::npos);
  EXPECT_NE(mjson.find("\"metrics\""), std::string::npos);
  // v2: the invalid-state attribution block and run-level fraction.
  EXPECT_NE(mjson.find("\"attribution\""), std::string::npos);
  EXPECT_NE(mjson.find("\"effort_invalid_frac\""), std::string::npos);
  // Wall-clock values must never leak into the deterministic report.
  EXPECT_EQ(mjson.find("wall"), std::string::npos);

  const std::string tjson = slurp(trace);
  ASSERT_FALSE(tjson.empty());
  EXPECT_TRUE(json_valid(tjson, &err)) << err;
  EXPECT_NE(tjson.find("\"traceEvents\""), std::string::npos);
}

TEST(CliSmokeTest, MetricsJsonIdenticalAcrossThreadCounts) {
  const std::string dir = ::testing::TempDir();
  const std::string m1 = dir + "cli_smoke_m1.json";
  const std::string m2 = dir + "cli_smoke_m2.json";
  ASSERT_EQ(run_cli(1, m1, ""), 0);
  ASSERT_EQ(run_cli(2, m2, ""), 0);
  const std::string a = slurp(m1);
  const std::string b = slurp(m2);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace satpg
