// Unit and integration tests for the kCdcl engine stack (DESIGN.md §9):
// Tseitin gate encodings checked truth-table-exhaustively against V3
// semantics, unit-propagation / watch-list invariants, 1UIP learning on
// hand-built conflict graphs (the solver's analyze() is minimization-free,
// so the learned clause is predictable literal-for-literal), the
// charge_cdcl budget conversion (satellite of the budget-counting fix),
// thread-count byte-identity of full CDCL runs on an MCNC circuit and its
// retimed twin (the digest includes per-fault cube provenance), the
// cube-provenance round-trip (every recorded source names a fault that
// really exported cubes), and the budget-abort capture/replay regression:
// a CDCL attempt cut by the eval budget must replay bit-for-bit.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "atpg/capture.h"
#include "fault/fault.h"
#include "atpg/cdcl/cnf.h"
#include "atpg/cdcl/solver.h"
#include "atpg/parallel.h"
#include "atpg/podem.h"
#include "fsm/mcnc_suite.h"
#include "netlist/netlist.h"
#include "retime/retime.h"
#include "sim/simulator.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

// --- Tseitin gate encodings --------------------------------------------------

// One gate feeding one output; every input assignment is pushed through the
// CNF as assumptions and the model value of the gate's variable must equal
// the two-valued gate function computed by src/sim on the same netlist.
void check_gate_truth_table(GateType t, int arity) {
  Netlist nl("tt");
  std::vector<NodeId> ins;
  for (int i = 0; i < arity; ++i)
    ins.push_back(nl.add_input("i" + std::to_string(i)));
  const NodeId g = nl.add_gate(t, "g", ins);
  nl.add_output("o", g);

  CdclSolver solver;
  TimeFrameCnf cnf(nl, std::nullopt, 1, &solver);
  SeqSimulator sim(nl);
  for (int m = 0; m < (1 << arity); ++m) {
    std::vector<CnfLit> assume;
    std::vector<V3> pi(static_cast<std::size_t>(arity));
    for (int i = 0; i < arity; ++i) {
      const bool one = ((m >> i) & 1) != 0;
      pi[static_cast<std::size_t>(i)] = one ? V3::kOne : V3::kZero;
      assume.push_back(mk_lit(cnf.good(0, ins[static_cast<std::size_t>(i)]),
                              /*neg=*/!one));
    }
    sim.eval_outputs(pi);
    ASSERT_EQ(solver.solve_under(assume), SolveStatus::kSat)
        << "gate " << static_cast<int>(t) << " minterm " << m;
    const bool want = sim.value(g) == V3::kOne;
    EXPECT_EQ(solver.model_value(cnf.good(0, g)), want)
        << "gate " << static_cast<int>(t) << " minterm " << m;
    EXPECT_TRUE(solver.check_watch_invariants());
  }
}

TEST(TseitinTest, AllPrimitiveGatesMatchSimulatorTruthTables) {
  check_gate_truth_table(GateType::kBuf, 1);
  check_gate_truth_table(GateType::kNot, 1);
  for (const GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr,
                           GateType::kNor, GateType::kXor, GateType::kXnor}) {
    check_gate_truth_table(t, 2);
    check_gate_truth_table(t, 3);  // wide + chained encodings
  }
}

// A stuck-at fault on the only observation path must make the detection
// objective UNSAT exactly when no input assignment distinguishes the rails.
TEST(TseitinTest, DetectionObjectiveMatchesExcitability) {
  // y = OR(a, AND(b, NOT b)): the AND output s-a-0 is unexcitable, s-a-1
  // is detectable (set a=0).
  Netlist nl("exc");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId nb = nl.add_gate(GateType::kNot, "nb", {b});
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {b, nb});
  const NodeId y = nl.add_gate(GateType::kOr, "y", {a, g});
  nl.add_output("o", y);

  {
    CdclSolver s;
    TimeFrameCnf cnf(nl, Fault{g, -1, false}, 1, &s);
    if (cnf.add_detect_objective(/*include_boundary=*/true))
      EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
  }
  {
    CdclSolver s;
    TimeFrameCnf cnf(nl, Fault{g, -1, true}, 1, &s);
    ASSERT_TRUE(cnf.add_detect_objective(/*include_boundary=*/true));
    EXPECT_EQ(s.solve(), SolveStatus::kSat);
    EXPECT_FALSE(s.model_value(cnf.good(0, a)));  // a=0 exposes the fault
  }
}

// --- unit propagation & watch lists ------------------------------------------

TEST(CdclSolverTest, UnitChainPropagatesWithoutDecisions) {
  CdclSolver s;
  for (int i = 0; i < 6; ++i) s.new_var();
  // x0; x0->x1; x1->x2; ... a pure implication chain.
  s.add_clause({mk_lit(0)});
  for (int i = 0; i + 1 < 6; ++i)
    s.add_clause({mk_lit(i, true), mk_lit(i + 1)});
  ASSERT_EQ(s.solve(), SolveStatus::kSat);
  EXPECT_EQ(s.stats().decisions, 0u);
  EXPECT_EQ(s.stats().conflicts, 0u);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(s.model_value(i));
  EXPECT_TRUE(s.check_watch_invariants());
}

TEST(CdclSolverTest, WatchInvariantsSurviveConflictsAndRestarts) {
  // Pigeonhole PHP(4,3): 4 pigeons, 3 holes — UNSAT after real search with
  // learning, restarts and many watch migrations.
  CdclSolver s;
  const auto var = [](int p, int h) { return p * 3 + h; };
  for (int i = 0; i < 12; ++i) s.new_var();
  for (int p = 0; p < 4; ++p)
    s.add_clause({mk_lit(var(p, 0)), mk_lit(var(p, 1)), mk_lit(var(p, 2))});
  for (int h = 0; h < 3; ++h)
    for (int p1 = 0; p1 < 4; ++p1)
      for (int p2 = p1 + 1; p2 < 4; ++p2)
        s.add_clause({mk_lit(var(p1, h), true), mk_lit(var(p2, h), true)});
  EXPECT_EQ(s.solve(), SolveStatus::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().learned, 0u);
  EXPECT_TRUE(s.check_watch_invariants());
}

// --- 1UIP on hand-built conflict graphs --------------------------------------

// Assumptions act as the solver's decisions in order, so the implication
// graph of the first conflict is fully scripted and the minimization-free
// 1UIP clause is predictable exactly.
TEST(CdclSolverTest, FirstUipIsTheDecisionWhenItDominates) {
  // Assume x0@1: x0 -> x1, x0 -> x2, and (¬x1 ∨ ¬x2) conflicts. Resolving
  // back reaches the decision itself: learnt = {¬x0}.
  CdclSolver s;
  for (int i = 0; i < 3; ++i) s.new_var();
  s.add_clause({mk_lit(0, true), mk_lit(1)});
  s.add_clause({mk_lit(0, true), mk_lit(2)});
  s.add_clause({mk_lit(1, true), mk_lit(2, true)});
  EXPECT_EQ(s.solve_under({mk_lit(0)}), SolveStatus::kUnsat);
  ASSERT_EQ(s.last_learned_clause().size(), 1u);
  EXPECT_EQ(s.last_learned_clause()[0], mk_lit(0, true));
}

TEST(CdclSolverTest, FirstUipCutsAtTheDominatorWithLowerLevelContext) {
  // Level 1 (assume x0): x0 -> x2.          [reason ¬x0 ∨ x2]
  // Level 2 (assume x1): x1 -> x3,          [¬x1 ∨ x3]
  //                      x2∧x3 -> x4,       [¬x2 ∨ ¬x3 ∨ x4]
  //                      x3∧x4 -> x5,       [¬x3 ∨ ¬x4 ∨ x5]
  //                      (¬x4 ∨ ¬x5) conflicts.
  // x3 dominates the conflict at level 2 (the 1UIP); x2 rides along from
  // level 1. Textbook asserting clause: {¬x3, ¬x2}, asserting literal
  // first, backjump to level 1.
  CdclSolver s;
  for (int i = 0; i < 6; ++i) s.new_var();
  s.add_clause({mk_lit(0, true), mk_lit(2)});
  s.add_clause({mk_lit(1, true), mk_lit(3)});
  s.add_clause({mk_lit(2, true), mk_lit(3, true), mk_lit(4)});
  s.add_clause({mk_lit(3, true), mk_lit(4, true), mk_lit(5)});
  s.add_clause({mk_lit(4, true), mk_lit(5, true)});
  EXPECT_EQ(s.solve_under({mk_lit(0), mk_lit(1)}), SolveStatus::kUnsat);
  const std::vector<CnfLit> want{mk_lit(3, true), mk_lit(2, true)};
  EXPECT_EQ(s.last_learned_clause(), want);
}

// --- the budget conversion (satellite: budget-counting consistency) ----------

TEST(CdclBudgetTest, ChargeCdclIsTheOneDocumentedConversion) {
  PodemBudget b;
  b.max_evals = 1000;
  b.max_backtracks = 100;
  b.charge_cdcl(3, 17);
  EXPECT_EQ(b.evals, 17u + 3u * PodemBudget::kCdclConflictEvals);
  EXPECT_EQ(b.backtracks, 3u);
  b.charge_cdcl(0, 5);  // propagation-only flush charges no backtracks
  EXPECT_EQ(b.evals, 22u + 3u * PodemBudget::kCdclConflictEvals);
  EXPECT_EQ(b.backtracks, 3u);
  static_assert(PodemBudget::kCdclConflictEvals == 8,
                "the documented conversion rate (podem.h) changed — update "
                "DESIGN.md §9 and the report consumers together");
}

TEST(CdclBudgetTest, SolverChargesThroughTheBudgetAndAborts) {
  // A solver with an attached budget must spend evals/backtracks through
  // charge_cdcl and honor exhaustion with kAborted.
  CdclSolver s;
  const auto var = [](int p, int h) { return p * 3 + h; };
  for (int i = 0; i < 12; ++i) s.new_var();
  for (int p = 0; p < 4; ++p)
    s.add_clause({mk_lit(var(p, 0)), mk_lit(var(p, 1)), mk_lit(var(p, 2))});
  for (int h = 0; h < 3; ++h)
    for (int p1 = 0; p1 < 4; ++p1)
      for (int p2 = p1 + 1; p2 < 4; ++p2)
        s.add_clause({mk_lit(var(p1, h), true), mk_lit(var(p2, h), true)});
  PodemBudget b;
  b.max_evals = 20;  // a handful of conflicts' worth
  b.max_backtracks = 1000;
  s.set_budget(&b);
  EXPECT_EQ(s.solve(), SolveStatus::kAborted);
  EXPECT_GE(b.evals, b.max_evals);
  EXPECT_EQ(b.backtracks, s.stats().conflicts);
}

// --- thread-count byte-identity on MCNC + retimed twin -----------------------

Netlist mcnc_circuit(const std::string& name, double scale) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == name) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, scale));
  return synthesize(fsm, {}).netlist;
}

ParallelAtpgOptions cdcl_options(unsigned threads, bool share) {
  ParallelAtpgOptions popts;
  popts.run.engine.kind = EngineKind::kCdcl;
  popts.run.engine.share_learning = share;
  popts.run.engine.eval_limit = 60'000;
  popts.run.engine.backtrack_limit = 200;
  popts.run.random_sequences = 2;
  popts.run.random_length = 16;
  popts.num_threads = threads;
  return popts;
}

// Everything the deterministic contract covers, in one string: statuses,
// detectors, tests, and the per-fault counter block (the metrics registry
// is process-global and deliberately excluded — report bytes are compared
// end-to-end by the CLI determinism CI leg instead).
std::string run_digest(const Netlist& nl, const ParallelAtpgResult& r) {
  std::ostringstream os;
  os << r.run.detected << '/' << r.run.redundant << '/' << r.run.aborted
     << '/' << r.run.evals << '/' << r.run.backtracks << '/'
     << r.run.conflicts << '/' << r.run.propagations << '/'
     << r.run.restarts << '/' << r.run.learned_clauses << '/'
     << r.run.cube_exports << '\n';
  for (const auto& seq : r.run.tests) {
    for (const auto& vec : seq) {
      for (const V3 v : vec)
        os << (v == V3::kX ? 'x' : v == V3::kOne ? '1' : '0');
      os << '|';
    }
    os << '\n';
  }
  for (std::size_t i = 0; i < r.status.size(); ++i) {
    const FaultSearchStats& s = r.fault_stats[i];
    os << static_cast<int>(r.status[i]) << ',' << r.detected_by[i] << ','
       << int{r.attempted[i]} << ',' << s.evals << ',' << s.backtracks << ','
       << s.conflicts << ',' << s.propagations << ',' << s.restarts << ','
       << s.learned_clauses << ',' << s.cube_blocks << ',' << s.cube_exports;
    for (const CubeSource& src : r.cube_sources[i])
      os << ',' << src.exporter << ':' << src.epoch << ':' << src.hits;
    os << '\n';
  }
  (void)nl;
  return os.str();
}

TEST(CdclDeterminismTest, ThreadCountsAgreeOnParentAndRetimedTwin) {
  const Netlist parent = mcnc_circuit("dk16", 0.35);
  const RetimeResult rt = retime_to_dff_target(
      parent, 2 * parent.num_dffs(), parent.name() + ".re");
  for (const Netlist* nl : {&parent, &rt.netlist}) {
    const auto r1 = run_parallel_atpg(*nl, cdcl_options(1, true));
    const auto r2 = run_parallel_atpg(*nl, cdcl_options(2, true));
    const auto r8 = run_parallel_atpg(*nl, cdcl_options(8, true));
    const std::string d1 = run_digest(*nl, r1);
    EXPECT_EQ(d1, run_digest(*nl, r2)) << nl->name();
    EXPECT_EQ(d1, run_digest(*nl, r8)) << nl->name();
    EXPECT_GT(r1.run.detected, 0u) << nl->name();
  }
}

// --- cube provenance round-trip ----------------------------------------------

// Every cube source a fault records must close the provenance graph:
// a named exporter is an attempted collapsed fault whose committed stats
// show cube_exports > 0 (kCdcl bumps the counter at export time and the
// merge keeps the attempt, so the attribution can never dangle). Empty
// names are unit-local origins and carry no attribution.
TEST(CdclProvenanceTest, CubeSourcesNameRealExporters) {
  const Netlist parent = mcnc_circuit("dk16", 0.35);
  const RetimeResult rt = retime_to_dff_target(
      parent, 2 * parent.num_dffs(), parent.name() + ".re");
  std::size_t attributed = 0;
  for (const Netlist* nl : {&parent, &rt.netlist}) {
    const auto res = run_parallel_atpg(*nl, cdcl_options(2, true));
    const auto collapsed = collapse_faults(*nl);
    std::map<std::string, std::size_t> by_name;
    for (std::size_t i = 0; i < collapsed.size(); ++i)
      by_name.emplace(fault_name(*nl, collapsed[i].representative), i);
    ASSERT_EQ(res.cube_sources.size(), collapsed.size()) << nl->name();
    for (const auto& sources : res.cube_sources) {
      for (const CubeSource& src : sources) {
        EXPECT_GT(src.hits, 0u);
        if (src.exporter.empty()) continue;
        ++attributed;
        const auto it = by_name.find(src.exporter);
        ASSERT_NE(it, by_name.end()) << nl->name() << ": " << src.exporter;
        EXPECT_TRUE(res.attempted[it->second]) << src.exporter;
        EXPECT_GT(res.fault_stats[it->second].cube_exports, 0u)
            << nl->name() << ": " << src.exporter;
      }
    }
  }
  EXPECT_GT(attributed, 0u) << "no cross-fault cube reuse at this budget";
}

// --- budget-abort capture replays bit-for-bit (satellite regression) ---------

TEST(CdclReplayTest, BudgetAbortedAttemptReplaysExactly) {
  const Netlist nl = mcnc_circuit("dk16", 0.35);

  // Starve the engine so deterministic attempts die on the eval budget,
  // with sharing off (the per-fault replay contract: generate() is then a
  // pure function of netlist + fault + options).
  ParallelAtpgOptions popts = cdcl_options(2, /*share=*/false);
  popts.run.engine.eval_limit = 600;
  popts.run.engine.backtrack_limit = 20;
  popts.run.random_sequences = 0;
  const auto probe = run_parallel_atpg(nl, popts);

  const auto collapsed = collapse_faults(nl);
  std::ptrdiff_t target = -1;
  for (std::size_t i = 0; i < probe.status.size(); ++i)
    if (probe.attempted[i] && probe.status[i] == FaultStatus::kAborted &&
        probe.fault_stats[i].budget_exhausted) {
      target = static_cast<std::ptrdiff_t>(i);
      break;
    }
  ASSERT_GE(target, 0) << "no budget-aborted CDCL attempt at this budget";

  popts.capture.armed = true;
  popts.capture.fault =
      fault_name(nl, collapsed[static_cast<std::size_t>(target)].representative);
  const auto captured = run_parallel_atpg(nl, popts);
  ASSERT_TRUE(captured.capture.has_value());
  EXPECT_EQ(captured.capture->status, "aborted");

  const ReplayResult replay = replay_capture(nl, *captured.capture);
  EXPECT_TRUE(replay.ok) << replay.message;
  EXPECT_EQ(replay.mismatch_index, -1);
  EXPECT_EQ(replay.status, captured.capture->status);
  EXPECT_EQ(replay.replayed_events, captured.capture->ring_total);
}

}  // namespace
}  // namespace satpg
