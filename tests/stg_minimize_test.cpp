// STG extraction + minimizer property tests: the synthesized netlist's
// extracted state graph must agree with the source FSM state-for-state,
// and minimization must be idempotent and behaviour-preserving.
#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.h"
#include "fsm/fsm.h"
#include "fsm/mcnc_suite.h"
#include "fsm/minimize.h"
#include "fsm/stg_extract.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

TEST(StgExtractTest, RecoversCounterGraph) {
  // mod-3 counter: 3 states, deterministic autonomous graph.
  Netlist nl("mod3");
  const NodeId tie = nl.add_input("tie");
  const NodeId q0 = nl.add_dff("q0", tie, FfInit::kZero);
  const NodeId q1 = nl.add_dff("q1", tie, FfInit::kZero);
  const NodeId n0 = nl.add_gate(GateType::kNot, "n0", {q0});
  const NodeId n1 = nl.add_gate(GateType::kNot, "n1", {q1});
  const NodeId d0 = nl.add_gate(GateType::kAnd, "d0", {n0, n1});
  nl.set_fanin(q0, 0, d0);
  nl.set_fanin(q1, 0, q0);
  nl.add_output("o", q1);

  StgExtractOptions opts;
  opts.fixed_inputs = {V3::kZero};
  const auto stg = extract_stg(nl, BitVec::from_string("00"), opts);
  EXPECT_FALSE(stg.truncated);
  ASSERT_EQ(stg.states.size(), 3u);
  // 00 -> 01 -> 10 -> 00 (codes are [q1 q0] MSB-first in to_string()).
  EXPECT_EQ(stg.states[0].to_string(), "00");
  EXPECT_EQ(stg.states[1].to_string(), "01");
  EXPECT_EQ(stg.states[2].to_string(), "10");
  ASSERT_EQ(stg.edges.size(), 3u);
  EXPECT_EQ(stg.edges[0].to, 1);
  EXPECT_EQ(stg.edges[1].to, 2);
  EXPECT_EQ(stg.edges[2].to, 0);
}

TEST(StgExtractTest, SynthesizedCircuitStgMatchesFsm) {
  // Full loop: FSM -> netlist -> extracted STG == FSM (state count and
  // per-edge behaviour), probing every FSM input.
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.4));
  const SynthResult res = synthesize(fsm, {});
  const Fsm& m = res.minimized;
  const Netlist& nl = res.netlist;

  StgExtractOptions opts;
  opts.fixed_inputs.assign(nl.num_inputs(), V3::kZero);  // rst held 0
  for (std::size_t i = 0; i + 1 < nl.num_inputs(); ++i)  // all but rst
    opts.probe_inputs.push_back(i);

  const BitVec start =
      res.encoding.code[static_cast<std::size_t>(m.reset_state())];
  const auto stg = extract_stg(nl, start, opts);
  EXPECT_FALSE(stg.truncated);
  EXPECT_EQ(static_cast<int>(stg.states.size()), m.num_states());

  // Every edge agrees with the symbolic machine.
  for (const auto& e : stg.edges) {
    const int from_fsm = res.encoding.state_of(
        stg.states[static_cast<std::size_t>(e.from)]);
    ASSERT_GE(from_fsm, 0);
    BitVec fsm_in(static_cast<std::size_t>(m.num_inputs()));
    for (std::size_t k = 0; k < opts.probe_inputs.size(); ++k)
      fsm_in.set(opts.probe_inputs[k], e.input.get(k));
    const auto step = m.step(from_fsm, fsm_in);
    ASSERT_TRUE(step.specified);
    EXPECT_EQ(res.encoding.state_of(
                  stg.states[static_cast<std::size_t>(e.to)]),
              step.next_state);
    for (int o = 0; o < m.num_outputs(); ++o) {
      if (step.outputs[static_cast<std::size_t>(o)] == V3::kX) continue;
      EXPECT_EQ(e.outputs[static_cast<std::size_t>(o)],
                step.outputs[static_cast<std::size_t>(o)]);
    }
  }
}

TEST(MinimizeProperty, IdempotentOnSuiteMachines) {
  for (const char* name : {"dk16", "s820", "s832"}) {
    FsmGenSpec spec;
    for (const auto& s : mcnc_specs())
      if (s.name == name) spec = s;
    const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.4));
    const Fsm once = minimize_fsm(fsm);
    const Fsm twice = minimize_fsm(once);
    EXPECT_EQ(once.num_states(), twice.num_states()) << name;
  }
}

TEST(MinimizeProperty, PreservesBehaviourInLockStep) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "s832") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.5));
  const Fsm min = minimize_fsm(fsm);
  Rng rng(4);
  int s_full = fsm.reset_state();
  int s_min = min.reset_state();
  for (int t = 0; t < 500; ++t) {
    BitVec in(static_cast<std::size_t>(fsm.num_inputs()));
    for (std::size_t b = 0; b < in.size(); ++b) in.set(b, rng.next_bool());
    const auto a = fsm.step(s_full, in);
    const auto b = min.step(s_min, in);
    ASSERT_TRUE(a.specified && b.specified);
    for (int o = 0; o < fsm.num_outputs(); ++o) {
      const auto av = a.outputs[static_cast<std::size_t>(o)];
      const auto bv = b.outputs[static_cast<std::size_t>(o)];
      if (av != V3::kX && bv != V3::kX) EXPECT_EQ(av, bv) << "cycle " << t;
    }
    s_full = a.next_state;
    s_min = b.next_state;
  }
}

}  // namespace
}  // namespace satpg
