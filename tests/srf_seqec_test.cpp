// Tests for the exact product-machine analyses: fault detectability /
// SRF taxonomy (srf.h) and sequential equivalence checking (seqec.h).
#include <gtest/gtest.h>

#include "analysis/seqec.h"
#include "analysis/srf.h"
#include "atpg/engine.h"
#include "fault/fault.h"
#include "fsm/mcnc_suite.h"
#include "retime/retime.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

// q' = rst ? 0 : !q ; out = q.
Netlist toggler() {
  Netlist nl("tog");
  const NodeId rst = nl.add_input("rst");
  const NodeId q = nl.add_dff("q", rst, FfInit::kUnknown);
  const NodeId nq = nl.add_gate(GateType::kNot, "nq", {q});
  const NodeId nrst = nl.add_gate(GateType::kNot, "nrst", {rst});
  const NodeId d = nl.add_gate(GateType::kAnd, "d", {nq, nrst});
  nl.set_fanin(q, 0, d);
  nl.add_output("o", q);
  return nl;
}

TEST(SrfTest, DetectableFaultClassified) {
  const Netlist nl = toggler();
  EXPECT_EQ(classify_srf(nl, {nl.find("d"), -1, false}),
            SrfClass::kDetectable);
}

TEST(SrfTest, InvalidSrfOnUnexcitableLine) {
  // g = AND(b, !b) is always 0: g s-a-0 has no excitation state at all.
  Netlist nl("red");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId nb = nl.add_gate(GateType::kNot, "nb", {b});
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {b, nb});
  const NodeId y = nl.add_gate(GateType::kOr, "y", {a, g});
  const NodeId q = nl.add_dff("q", y, FfInit::kZero);
  nl.add_output("o", q);
  EXPECT_EQ(classify_srf(nl, {g, -1, false}), SrfClass::kInvalidSrf);
  // g s-a-1 IS excitable (g would be 0, stuck makes it 1) and observable.
  EXPECT_EQ(classify_srf(nl, {g, -1, true}), SrfClass::kDetectable);
}

TEST(SrfTest, UnobservableSrf) {
  // Fault on logic masked by a constant-like OR: y = a OR (a AND x) —
  // the AND's output fault never changes y... use: y = OR(a, g), g=AND(a,x):
  // g s-a-0: excitable (a=1,x=1 makes g=1) but y stays a. Unobservable.
  Netlist nl("mask");
  const NodeId a = nl.add_input("a");
  const NodeId x = nl.add_input("x");
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {a, x});
  const NodeId y = nl.add_gate(GateType::kOr, "y", {a, g});
  const NodeId q = nl.add_dff("q", y, FfInit::kZero);
  nl.add_output("o", q);
  EXPECT_EQ(classify_srf(nl, {g, -1, false}), SrfClass::kUnobservableSrf);
}

TEST(SrfTest, InvalidStateExcitationIsInvalidSrf) {
  // mod-3 counter (state 11 unreachable); a fault excitable ONLY in state
  // 11 is an invalid-SRF. Build: flag = AND(q0, q1); out = OR(q1, flag).
  // flag s-a-1? excitable whenever flag==0 — reachable. Instead target
  // flag s-a-0: excitation needs flag==1, i.e. state 11 — invalid.
  Netlist nl("mod3x");
  const NodeId tie = nl.add_input("tie");
  const NodeId q0 = nl.add_dff("q0", tie, FfInit::kZero);
  const NodeId q1 = nl.add_dff("q1", tie, FfInit::kZero);
  const NodeId n0 = nl.add_gate(GateType::kNot, "n0", {q0});
  const NodeId n1 = nl.add_gate(GateType::kNot, "n1", {q1});
  const NodeId d0 = nl.add_gate(GateType::kAnd, "d0", {n0, n1});
  nl.set_fanin(q0, 0, d0);
  nl.set_fanin(q1, 0, q0);
  const NodeId flag = nl.add_gate(GateType::kAnd, "flag", {q0, q1});
  const NodeId out = nl.add_gate(GateType::kOr, "out", {q1, flag});
  nl.add_output("o", out);
  SrfOptions opts;
  opts.reset_input = "";  // init comes from the FF init values
  EXPECT_EQ(classify_srf(nl, {flag, -1, false}, opts),
            SrfClass::kInvalidSrf);
}

TEST(SrfTest, OracleAuditsEngineOnSmallMachine) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.35));
  const SynthResult res = synthesize(fsm, {});
  const Netlist& nl = res.netlist;

  EngineOptions eopts;
  eopts.eval_limit = 300'000;
  eopts.backtrack_limit = 400;
  AtpgEngine engine(nl, eopts);
  SrfOptions sopts;
  int audited = 0;
  for (const auto& cf : collapse_faults(nl)) {
    const auto attempt = engine.generate(cf.representative);
    const SrfClass oracle = classify_srf(nl, cf.representative, sopts);
    if (attempt.status == FaultStatus::kDetected) {
      // Everything the engine detects must be detectable.
      EXPECT_EQ(oracle, SrfClass::kDetectable)
          << fault_name(nl, cf.representative);
      ++audited;
    } else if (attempt.status == FaultStatus::kRedundant) {
      // Everything the engine proves redundant must be non-detectable.
      EXPECT_NE(oracle, SrfClass::kDetectable)
          << fault_name(nl, cf.representative);
      ++audited;
    }
  }
  EXPECT_GT(audited, 50);
}

TEST(SeqecTest, CircuitEquivalentToItself) {
  const Netlist nl = toggler();
  const auto r = check_sequential_equivalence(nl, nl);
  EXPECT_TRUE(r.equivalent) << r.note;
}

TEST(SeqecTest, DetectsBehaviouralDifference) {
  const Netlist a = toggler();
  Netlist b = toggler();
  // Flip the output polarity of b.
  const NodeId o = b.outputs()[0];
  const NodeId drv = b.node(o).fanins[0];
  const NodeId inv = b.add_gate(GateType::kNot, "flip", {drv});
  b.set_fanin(o, 0, inv);
  const auto r = check_sequential_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_NE(r.note.find("output"), std::string::npos);
}

TEST(SeqecTest, InterfaceMismatchReported) {
  const Netlist a = toggler();
  Netlist b("other");
  b.add_input("rst");
  b.add_input("extra");
  const auto r = check_sequential_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.note, "interface mismatch");
}

TEST(SeqecTest, ProvesRetimingEquivalence) {
  // Formal version of the randomized retiming tests: the scatter-retimed
  // circuit is sequentially equivalent to its original.
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "s820") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.35));
  const SynthResult res = synthesize(fsm, {});
  const RetimeResult rt = retime_to_dff_target(
      res.netlist, 2 * res.netlist.num_dffs(), res.name + ".re");
  const auto r = check_sequential_equivalence(res.netlist, rt.netlist);
  EXPECT_TRUE(r.equivalent) << r.note;
}

TEST(SeqecTest, ProvesSynthesisScriptsAgree)
{
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.35));
  SynthOptions rugged;
  rugged.script = ScriptKind::kRugged;
  SynthOptions delay;
  delay.script = ScriptKind::kDelay;
  const auto a = synthesize(fsm, rugged);
  const auto b = synthesize(fsm, delay);
  const auto r = check_sequential_equivalence(a.netlist, b.netlist);
  EXPECT_TRUE(r.equivalent) << r.note;
}

}  // namespace
}  // namespace satpg
