// Stress tests for the time-frame model: the event-driven incremental
// implication with trail undo is compared against a from-scratch oracle
// (fresh model, same assignments) across random assignment/undo schedules,
// fault types, and window sizes. Also checks the incrementally-maintained
// D-set against a full rescan.
#include <gtest/gtest.h>

#include <map>

#include "atpg/tfm.h"
#include "base/rng.h"
#include "fault/fault.h"
#include "fsm/mcnc_suite.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

Netlist small_machine(std::uint64_t salt) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "dk16") spec = s;
  spec.seed += salt;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.3));
  return synthesize(fsm, {}).netlist;
}

// All decision variables of a model.
std::vector<std::pair<int, NodeId>> decision_vars(const Netlist& nl,
                                                  int frames) {
  std::vector<std::pair<int, NodeId>> vars;
  for (int t = 0; t < frames; ++t)
    for (NodeId pi : nl.inputs()) vars.push_back({t, pi});
  for (NodeId ff : nl.dffs()) vars.push_back({0, ff});
  return vars;
}

void expect_models_equal(const TimeFrameModel& a, const TimeFrameModel& b,
                         const Netlist& nl, int frames) {
  for (int t = 0; t < frames; ++t)
    for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
      const NodeId id = static_cast<NodeId>(i);
      ASSERT_EQ(a.value(t, id), b.value(t, id))
          << "frame " << t << " node " << nl.node(id).name;
    }
}

class TfmStress : public ::testing::TestWithParam<int> {};

TEST_P(TfmStress, IncrementalMatchesFromScratch) {
  const Netlist nl = small_machine(static_cast<std::uint64_t>(GetParam()));
  const int frames = 3;
  // Pick a fault (cycling through kinds) or none.
  std::optional<Fault> fault;
  const auto universe = enumerate_faults(nl);
  if (GetParam() % 4 != 0)
    fault = universe[static_cast<std::size_t>(GetParam() * 37) %
                     universe.size()];

  TimeFrameModel inc(nl, fault, frames);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 5);
  const auto vars = decision_vars(nl, frames);

  // Random schedule: assignments with occasional undo to a random mark.
  std::vector<std::pair<std::size_t, std::map<std::pair<int, NodeId>, V3>>>
      marks;  // (trail mark, assignment snapshot)
  std::map<std::pair<int, NodeId>, V3> current;

  for (int step = 0; step < 60; ++step) {
    if (!marks.empty() && rng.next_bernoulli(0.25)) {
      const std::size_t k = static_cast<std::size_t>(rng.next_below(
          marks.size()));
      inc.undo_to(marks[k].first);
      current = marks[k].second;
      marks.resize(k);
      continue;
    }
    // Assign a random unassigned variable.
    const auto& v = vars[static_cast<std::size_t>(rng.next_below(
        vars.size()))];
    if (current.count(v)) continue;
    const V3 val = rng.next_bool() ? V3::kOne : V3::kZero;
    marks.push_back({inc.assign(v.first, v.second, val), current});
    current[v] = val;
  }

  // Oracle: fresh model, replay the surviving assignments in order.
  TimeFrameModel oracle(nl, fault, frames);
  for (const auto& [v, val] : current) oracle.assign(v.first, v.second, val);
  expect_models_equal(inc, oracle, nl, frames);

  // D-set agrees with a full rescan.
  std::set<std::pair<int, NodeId>> rescan;
  for (int t = 0; t < frames; ++t)
    for (std::size_t i = 0; i < nl.num_nodes(); ++i)
      if (inc.value(t, static_cast<NodeId>(i)).is_d())
        rescan.insert({t, static_cast<NodeId>(i)});
  EXPECT_EQ(inc.d_set(), rescan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TfmStress, ::testing::Range(0, 10));

TEST(TfmFaultKinds, EveryFaultKindInjectsOnFaultyRailOnly) {
  const Netlist nl = small_machine(3);
  const auto universe = enumerate_faults(nl);
  Rng rng(77);
  int checked = 0;
  for (std::size_t fi = 0; fi < universe.size(); fi += 7) {
    const Fault f = universe[fi];
    TimeFrameModel tfm(nl, f, 2);
    // Fully assign frame 0.
    for (NodeId pi : nl.inputs())
      tfm.assign(0, pi, rng.next_bool() ? V3::kOne : V3::kZero);
    for (NodeId ff : nl.dffs())
      tfm.assign(0, ff, rng.next_bool() ? V3::kOne : V3::kZero);
    // Good rails must match the fault-free model under the same inputs.
    TimeFrameModel clean(nl, std::nullopt, 2);
    for (NodeId pi : nl.inputs())
      clean.assign(0, pi, tfm.decision_value(0, pi));
    for (NodeId ff : nl.dffs())
      clean.assign(0, ff, tfm.decision_value(0, ff));
    for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
      const NodeId id = static_cast<NodeId>(i);
      ASSERT_EQ(tfm.value(0, id).g, clean.value(0, id).g)
          << fault_name(nl, f) << " node " << nl.node(id).name;
    }
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

TEST(TfmBoundary, DReachesBoundaryDetectsStoredEffects) {
  // Fault on a next-state line that cannot reach a PO in one frame must
  // still be visible at the frame boundary.
  Netlist nl("store");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff("q", a, FfInit::kUnknown);
  const NodeId g = nl.add_gate(GateType::kBuf, "g", {a});
  nl.set_fanin(q, 0, g);
  nl.add_output("o", q);
  const Fault f{g, -1, true};  // g s-a-1: effect stores into q
  TimeFrameModel tfm(nl, f, 1);
  tfm.assign(0, a, V3::kZero);  // good g=0, faulty g=1
  EXPECT_FALSE(tfm.detected_at_po());
  EXPECT_TRUE(tfm.d_reaches_boundary());
}

}  // namespace
}  // namespace satpg
