// Unit tests for src/netlist: construction, invariants, topological order,
// and .bench round-tripping.
#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/bench_io.h"
#include "netlist/netlist.h"

namespace satpg {
namespace {

// A tiny 2-bit counter-ish machine used across tests:
//   d0 = XOR(q0, en); d1 = XOR(q1, AND(q0, en)); out = AND(q0, q1)
Netlist make_counter() {
  Netlist nl("counter2");
  const NodeId en = nl.add_input("en");
  // Temporary drivers replaced below (DFFs need a driver at creation, so
  // build q flops on `en` first, then retarget through set_fanin).
  const NodeId q0 = nl.add_dff("q0", en, FfInit::kZero);
  const NodeId q1 = nl.add_dff("q1", en, FfInit::kZero);
  const NodeId d0 = nl.add_gate(GateType::kXor, "d0", {q0, en});
  const NodeId a = nl.add_gate(GateType::kAnd, "carry", {q0, en});
  const NodeId d1 = nl.add_gate(GateType::kXor, "d1", {q1, a});
  nl.set_fanin(q0, 0, d0);
  nl.set_fanin(q1, 0, d1);
  const NodeId both = nl.add_gate(GateType::kAnd, "both", {q0, q1});
  nl.add_output("out", both);
  return nl;
}

TEST(NetlistTest, CounterIsValid) {
  const Netlist nl = make_counter();
  EXPECT_EQ(nl.validate(), std::nullopt);
  EXPECT_EQ(nl.num_inputs(), 1u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.num_dffs(), 2u);
  EXPECT_EQ(nl.num_gates(), 4u);
}

TEST(NetlistTest, FindByName) {
  const Netlist nl = make_counter();
  EXPECT_NE(nl.find("carry"), kNoNode);
  EXPECT_EQ(nl.find("nonexistent"), kNoNode);
  EXPECT_EQ(nl.node(nl.find("carry")).type, GateType::kAnd);
}

TEST(NetlistTest, TopoOrderRespectsDependencies) {
  const Netlist nl = make_counter();
  const auto& topo = nl.topo_order();
  std::vector<int> pos(nl.num_nodes(), -1);
  for (std::size_t i = 0; i < topo.size(); ++i)
    pos[static_cast<std::size_t>(topo[i])] = static_cast<int>(i);
  for (NodeId id : topo) {
    const auto& n = nl.node(id);
    if (!is_combinational(n.type)) continue;
    for (NodeId f : n.fanins)
      EXPECT_LT(pos[static_cast<std::size_t>(f)],
                pos[static_cast<std::size_t>(id)])
          << "node " << n.name;
  }
  EXPECT_EQ(topo.size(), nl.num_nodes());
}

TEST(NetlistTest, FanoutsAreInverseOfFanins) {
  const Netlist nl = make_counter();
  const auto& fo = nl.fanouts();
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    for (NodeId f : nl.node(static_cast<NodeId>(i)).fanins) {
      const auto& lst = fo[static_cast<std::size_t>(f)];
      EXPECT_NE(std::find(lst.begin(), lst.end(), static_cast<NodeId>(i)),
                lst.end());
    }
  }
}

TEST(NetlistTest, KillAndCompact) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::kAnd, "g", {a, b});
  nl.add_output("o", g);
  const NodeId dead = nl.add_gate(GateType::kOr, "dead", {a, b});
  (void)dead;
  nl.kill_node(dead);
  nl.compact();
  EXPECT_EQ(nl.validate(), std::nullopt);
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_EQ(nl.find("dead"), kNoNode);
  EXPECT_NE(nl.find("g"), kNoNode);
}

TEST(NetlistTest, ValidateCatchesCombinationalCycle) {
  Netlist nl("cyc");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(GateType::kAnd, "g1", {a, a});
  const NodeId g2 = nl.add_gate(GateType::kOr, "g2", {g1, a});
  nl.set_fanin(g1, 1, g2);  // g1 <-> g2 cycle
  nl.add_output("o", g2);
  const auto err = nl.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("cycle"), std::string::npos);
}

TEST(NetlistTest, DffBreaksCycle) {
  // A feedback loop through a DFF is legal.
  Netlist nl("loop");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_dff("q", a, FfInit::kZero);
  const NodeId g = nl.add_gate(GateType::kXor, "g", {q, a});
  nl.set_fanin(q, 0, g);
  nl.add_output("o", g);
  EXPECT_EQ(nl.validate(), std::nullopt);
}

TEST(NetlistTest, CloneIsDeepAndIndependent) {
  Netlist nl = make_counter();
  Netlist c = nl.clone("copy");
  c.kill_node(c.find("both"));
  EXPECT_NE(nl.find("both"), kNoNode);
  EXPECT_EQ(c.name(), "copy");
}

TEST(NetlistTest, TotalAreaCountsGatesAndFfs) {
  const Netlist nl = make_counter();
  // 4 gates at area 1 + 2 DFFs at area 4.
  EXPECT_DOUBLE_EQ(nl.total_area(), 12.0);
}

TEST(BenchIoTest, ParseSimpleCircuit) {
  const std::string text = R"(
# comment
INPUT(G0)
INPUT(G1)
OUTPUT(G5)

G3 = DFF(G5)
G4 = NAND(G0, G3)
G5 = AND(G4, G1)
)";
  const Netlist nl = read_bench_string(text, "mini");
  EXPECT_EQ(nl.validate(), std::nullopt);
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.num_dffs(), 1u);
  EXPECT_EQ(nl.num_gates(), 2u);
  EXPECT_EQ(nl.node(nl.find("G4")).type, GateType::kNand);
}

TEST(BenchIoTest, ForwardReferencesResolve) {
  const std::string text = R"(
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = AND(a, q)
q = DFF(m)
)";
  const Netlist nl = read_bench_string(text, "fwd");
  EXPECT_EQ(nl.validate(), std::nullopt);
  EXPECT_EQ(nl.num_dffs(), 1u);
}

TEST(BenchIoTest, RoundTripPreservesStructure) {
  const Netlist a = make_counter();
  const std::string text = write_bench_string(a);
  const Netlist b = read_bench_string(text, "counter2");
  EXPECT_EQ(b.validate(), std::nullopt);
  EXPECT_EQ(a.num_inputs(), b.num_inputs());
  EXPECT_EQ(a.num_outputs(), b.num_outputs());
  EXPECT_EQ(a.num_dffs(), b.num_dffs());
  EXPECT_EQ(a.num_gates(), b.num_gates());
  // Second round trip is textually stable.
  EXPECT_EQ(write_bench_string(b), text);
}

TEST(BenchIoTest, RejectsMalformedInput) {
  EXPECT_THROW(read_bench_string("G1 = AND(a", "x"), std::runtime_error);
  EXPECT_THROW(read_bench_string("G1 = FROB(a, b)\n", "x"),
               std::runtime_error);
  EXPECT_THROW(read_bench_string("OUTPUT(nosuch)\n", "x"),
               std::runtime_error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nG1 = AND(a, missing)\n", "x"),
               std::runtime_error);
}

TEST(BenchIoTest, RejectsRedefinedSignal) {
  const std::string text = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
y = OR(a, b)
)";
  EXPECT_THROW(read_bench_string(text, "x"), std::runtime_error);
}

}  // namespace
}  // namespace satpg
