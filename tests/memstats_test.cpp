// Tests for the base/memstats byte-accounting layer (DESIGN.md §11): the
// MemTally fold semantics the parallel driver's merge barrier relies on,
// the disabled-mode no-op contract of both accounting planes, and the
// merge contract itself on a real MCNC circuit and its retimed twin —
// the folded memory block must be byte-identical at 1/2/8 threads, the
// per-fault attempt peaks must be consistent with the folded totals, and
// a deterministic memory budget must park-and-requeue its way to the
// exact coverage of the unbudgeted run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>

#include "atpg/parallel.h"
#include "base/memstats.h"
#include "fsm/mcnc_suite.h"
#include "retime/retime.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

// --- tally / registry unit contracts ---------------------------------------

TEST(MemTallyTest, ChargeReleaseTracksLiveAndPeak) {
  MemTally t;
  t.charge(MemSubsystem::kCdclClauseDb, 100);
  t.charge(MemSubsystem::kCnfEncoder, 50);
  EXPECT_EQ(t.live, 150u);
  EXPECT_EQ(t.peak, 150u);
  t.release(MemSubsystem::kCnfEncoder, 50);
  t.charge(MemSubsystem::kCdclClauseDb, 20);
  EXPECT_EQ(t.live, 120u);
  EXPECT_EQ(t.peak, 150u) << "peak is the historical maximum";
  const auto& db = t.acct[static_cast<std::size_t>(MemSubsystem::kCdclClauseDb)];
  EXPECT_EQ(db.allocated, 120u);
  EXPECT_EQ(db.allocs, 2u);
  EXPECT_EQ(db.peak, 120u);
  EXPECT_EQ(t.total_allocated(), 170u);
  // Subsystem peaks need not coincide in time: the upper bound is their
  // sum, never less than the true cross-subsystem peak.
  EXPECT_EQ(t.peak_upper_bound(), 170u);
  EXPECT_GE(t.peak_upper_bound(), t.peak);
}

TEST(MemTallyTest, AddIsCommutative) {
  MemTally a, b;
  a.charge(MemSubsystem::kTfmFrames, 300);
  a.release(MemSubsystem::kTfmFrames, 300);
  b.charge(MemSubsystem::kTfmFrames, 100);
  b.charge(MemSubsystem::kDecisionRing, 40);

  MemTally ab = a, ba = b;
  ab.add(b);
  ba.add(a);
  std::ostringstream os_ab, os_ba;
  ab.write_json(os_ab);
  ba.write_json(os_ba);
  EXPECT_EQ(os_ab.str(), os_ba.str())
      << "fold must not depend on merge order";
  EXPECT_EQ(ab.total_allocated(), 440u);
  EXPECT_EQ(ab.peak, 300u);
}

TEST(MemTallyTest, JsonEmitsEverySubsystemSortedAndNoWall) {
  MemTally t;
  std::ostringstream os;
  t.write_json(os);
  const std::string json = os.str();
  // Zero-activity rows still appear: the block's shape is a schema
  // constant. Enum order is sorted-name order, so the text order is too.
  std::size_t prev = 0;
  for (std::size_t i = 0; i < kNumMemSubsystems; ++i) {
    const char* name = mem_subsystem_name(static_cast<MemSubsystem>(i));
    const std::size_t at = json.find(std::string("\"") + name + "\"");
    ASSERT_NE(at, std::string::npos) << name;
    EXPECT_GT(at, prev) << name << " out of sorted order";
    prev = at;
    EXPECT_EQ(std::string(name).find("wall"), std::string::npos);
  }
  EXPECT_NE(json.find("\"total\""), std::string::npos);
}

TEST(MemScopeTest, NullTallyIsANoOpAndResizeRestates) {
  MemScope noop(nullptr, MemSubsystem::kFsimArena, 1000);  // must not crash
  MemTally t;
  {
    MemScope s(&t, MemSubsystem::kFsimArena, 100);
    EXPECT_EQ(t.live, 100u);
    s.resize(250);
    EXPECT_EQ(t.live, 250u);
    EXPECT_EQ(t.peak, 250u);
    s.resize(80);
    EXPECT_EQ(t.live, 80u);
  }
  EXPECT_EQ(t.live, 0u) << "scope releases its footprint on destruction";
  EXPECT_EQ(t.peak, 250u);
}

TEST(MemRegistryTest, DisabledChargesAreDropped) {
  MemStatsRegistry& reg = MemStatsRegistry::global();
  reg.reset();
  set_memstats_enabled(false);
  reg.charge(MemSubsystem::kBddOracle, 4096, 4096);
  EXPECT_EQ(reg.live_bytes(), 0u);
  EXPECT_EQ(reg.snapshot().total_allocated(), 0u);
}

TEST(MemRegistryTest, PeakIsMaxOfHintsAndLive) {
  MemStatsRegistry& reg = MemStatsRegistry::global();
  reg.reset();
  set_memstats_enabled(true);
  reg.charge(MemSubsystem::kFsimArena, 100, 700);
  reg.release(MemSubsystem::kFsimArena, 100);
  reg.charge(MemSubsystem::kFsimArena, 300, 300);
  const MemTally snap = reg.snapshot();
  set_memstats_enabled(false);
  reg.reset();
  const auto& a = snap.acct[static_cast<std::size_t>(MemSubsystem::kFsimArena)];
  EXPECT_EQ(a.live(), 300u);
  EXPECT_EQ(a.peak, 700u) << "explicit hint dominates live-at-snapshot";
  EXPECT_EQ(a.allocated, 400u);
}

// --- merge contract on a real circuit --------------------------------------

Netlist mcnc_circuit(const std::string& name, double scale) {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == name) spec = s;
  const Fsm fsm = generate_control_fsm(scaled_spec(spec, scale));
  return synthesize(fsm, {}).netlist;
}

ParallelAtpgOptions small_options(EngineKind kind, unsigned threads) {
  ParallelAtpgOptions popts;
  popts.run.engine.kind = kind;
  popts.run.engine.eval_limit = 150'000;
  popts.run.engine.backtrack_limit = 300;
  popts.run.random_sequences = 4;
  popts.run.random_length = 24;
  popts.num_threads = threads;
  return popts;
}

// Run with both accounting planes armed, leaving the global registry
// clean afterwards so suites stay order-independent.
ParallelAtpgResult armed_run(const Netlist& nl,
                             const ParallelAtpgOptions& popts) {
  MemStatsRegistry::global().reset();
  set_memstats_enabled(true);
  ParallelAtpgResult r = run_parallel_atpg(nl, popts);
  set_memstats_enabled(false);
  MemStatsRegistry::global().reset();
  return r;
}

std::string mem_json(const MemTally& t) {
  std::ostringstream os;
  t.write_json(os);
  return os.str();
}

// The tentpole contract: the folded memory block is a pure function of
// (netlist, faults, options) — byte-identical at any thread count, on
// the parent circuit and on its state-equivalent retimed twin, for a
// structural engine and for the cdcl engine.
TEST(MemstatsMergeTest, MemoryBlockThreadInvariantOnMcncPair) {
  const Netlist orig = mcnc_circuit("s820", 0.3);
  const Netlist twin =
      retime_to_dff_target(orig, orig.num_dffs() * 2, orig.name() + ".re")
          .netlist;
  for (const Netlist* nl : {&orig, &twin}) {
    for (EngineKind kind : {EngineKind::kHitec, EngineKind::kCdcl}) {
      const ParallelAtpgResult base =
          armed_run(*nl, small_options(kind, 1));
      const std::string base_json = mem_json(base.mem);
      EXPECT_GT(base.mem.total_allocated(), 0u)
          << nl->name() << " never charged a byte with accounting armed";
      for (unsigned threads : {2u, 8u}) {
        const ParallelAtpgResult r =
            armed_run(*nl, small_options(kind, threads));
        EXPECT_EQ(mem_json(r.mem), base_json)
            << nl->name() << " engine=" << engine_kind_name(kind)
            << " threads=" << threads;
      }
    }
  }
}

// Disabled mode is a true no-op: no tally attached, no registry charges,
// all-zero block, zero per-fault peaks.
TEST(MemstatsMergeTest, DisabledRunCarriesZeroBytes) {
  const Netlist nl = mcnc_circuit("s820", 0.3);
  set_memstats_enabled(false);
  MemStatsRegistry::global().reset();
  const ParallelAtpgResult r =
      run_parallel_atpg(nl, small_options(EngineKind::kCdcl, 2));
  EXPECT_EQ(r.mem.total_allocated(), 0u);
  EXPECT_EQ(r.mem.peak, 0u);
  for (const FaultSearchStats& s : r.fault_stats)
    EXPECT_EQ(s.peak_bytes, 0u);
}

// Per-fault attempt peaks must be consistent with the folded block: the
// fold takes the max over attempts, so no fault can report a peak above
// the block's, and the block's peak never exceeds the sum-of-subsystem
// upper bound it is reported under.
TEST(MemstatsMergeTest, PerFaultPeaksConsistentWithFold) {
  const Netlist nl = mcnc_circuit("s820", 0.3);
  const ParallelAtpgResult r =
      armed_run(nl, small_options(EngineKind::kCdcl, 2));
  std::uint64_t max_peak = 0;
  for (const FaultSearchStats& s : r.fault_stats) {
    EXPECT_LE(s.peak_bytes, r.mem.peak);
    max_peak = std::max(max_peak, s.peak_bytes);
  }
  EXPECT_GT(max_peak, 0u) << "cdcl attempts never charged the clause DB";
  EXPECT_LE(r.mem.peak, r.mem.peak_upper_bound());
  EXPECT_GE(r.mem.total_allocated(), max_peak);
}

// The budget contract: a budget tight enough to trip mid-search parks the
// offending faults and requeues them with the limit lifted, so statuses
// and coverage are bit-identical to the unbudgeted run — and the budgeted
// run itself stays thread-invariant.
TEST(MemstatsMergeTest, BudgetParksRequeuesAndPreservesCoverage) {
  const Netlist nl = mcnc_circuit("s820", 0.3);
  const ParallelAtpgResult free_run =
      armed_run(nl, small_options(EngineKind::kCdcl, 2));
  std::uint64_t max_peak = 0;
  for (const FaultSearchStats& s : free_run.fault_stats)
    max_peak = std::max(max_peak, s.peak_bytes);
  ASSERT_GT(max_peak, 0u);

  // Half the hungriest attempt's peak: guaranteed to trip at least once.
  ParallelAtpgOptions popts = small_options(EngineKind::kCdcl, 2);
  popts.mem_budget_bytes = max_peak / 2;
  const ParallelAtpgResult budgeted = armed_run(nl, popts);
  EXPECT_GT(budgeted.mem_tripped, 0u);
  EXPECT_GT(budgeted.mem_requeued, 0u);
  EXPECT_EQ(budgeted.mem_budget_bytes, popts.mem_budget_bytes);

  EXPECT_EQ(budgeted.status, free_run.status)
      << "degradation must not change any fault's outcome";
  EXPECT_EQ(budgeted.run.detected, free_run.run.detected);
  EXPECT_EQ(budgeted.run.fault_coverage, free_run.run.fault_coverage);
  EXPECT_EQ(budgeted.run.fault_efficiency, free_run.run.fault_efficiency);

  for (unsigned threads : {1u, 8u}) {
    ParallelAtpgOptions p2 = popts;
    p2.num_threads = threads;
    const ParallelAtpgResult r = armed_run(nl, p2);
    EXPECT_EQ(r.status, budgeted.status) << "threads=" << threads;
    EXPECT_EQ(r.mem_tripped, budgeted.mem_tripped) << "threads=" << threads;
    EXPECT_EQ(r.mem_requeued, budgeted.mem_requeued)
        << "threads=" << threads;
    EXPECT_EQ(mem_json(r.mem), mem_json(budgeted.mem))
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace satpg
