#!/bin/sh
# Regenerates the checked-in golden atpg_run.v6 reports in bench/golden/
# that the tier-2 bench_gate_test gates against: the default (hitec)
# engine and the cdcl engine, each on one cached MCNC circuit and its
# retimed twin.
#
#   tools/gen_golden.sh [build-dir]
#
# Run from the repository root after an intentional engine change shifts
# coverage or effort; the flags below must stay in lockstep with
# tests/bench_gate_test.cpp (kGoldenFlags). Reports are deterministic
# (DESIGN.md §5/§6), so regeneration on any machine gives the same bytes
# apart from the circuit name (which echoes the path passed here) and the
# v6 build_info block, which records the generating compiler and SIMD
# tiers on purpose — bench_gate compares thresholds, not bytes, so the
# goldens stay usable across toolchains.
set -eu

BUILD="${1:-build}"
SATPG="$BUILD/tools/satpg"
CIRCUIT="circuits_cache/dk16.ji.sd_s3_x30.bench"
FLAGS="--budget=0.2 --seed=7 --threads=2"
OUT="bench/golden"

[ -x "$SATPG" ] || { echo "error: $SATPG not built" >&2; exit 1; }
mkdir -p "$OUT"

TWIN="$(mktemp -t gate_twin.XXXXXX.bench)"
trap 'rm -f "$TWIN"' EXIT

"$SATPG" atpg "$CIRCUIT" $FLAGS --metrics-json="$OUT/dk16_parent.v6.json"
"$SATPG" retime "$CIRCUIT" "$TWIN" --dffs=6
"$SATPG" atpg "$TWIN" $FLAGS --metrics-json="$OUT/dk16_retimed.v6.json"

"$SATPG" atpg "$CIRCUIT" $FLAGS --engine=cdcl \
    --metrics-json="$OUT/dk16_parent_cdcl.v6.json"
"$SATPG" atpg "$TWIN" $FLAGS --engine=cdcl \
    --metrics-json="$OUT/dk16_retimed_cdcl.v6.json"

echo "golden reports written to $OUT/"
