// satpg — command-line front end.
//
//   satpg info     <circuit.bench>              structural summary
//   satpg analyze  <circuit.bench>              depth/cycles/density report
//   satpg atpg     <circuit.bench> [options]    run an engine, write tests
//   satpg fsim     <circuit.bench> [options]    grade random sequences
//   satpg retime   <in.bench> <out.bench> [--dffs=N | --min-period]
//   satpg scan     <in.bench> <out.bench> [--partial]
//   satpg faults   <circuit.bench>              fault universe summary
//   satpg archive  <report.json>|--list         store run reports by hash
//   satpg diff     <a> <b>                      compare two run reports
//   satpg inspect  <src> [--fault=ID]           event-log / report analytics
//   satpg inspect  --diff <a> <b>               two-run trajectory diff
//   satpg replay   <capture.json>               re-run a captured search
//
// ATPG options: --engine=hitec|forward|learning|cdcl  --budget=F  --seed=N
//               --no-shared-learning (cdcl: per-fault caches only)
//               --strict (no potential-detection credit)
//               --tests=FILE (write the test sequences)
//               --metrics-json=FILE (deterministic structured run report)
//               --events-json=FILE (deterministic flight-recorder NDJSON)
//               --trace-json=FILE (Chrome trace_event timeline; wall-clock)
//               --heartbeat-json=FILE / --progress (live monitor, §7)
//               --stuck-evals=N / --stuck-seconds=F / --defer-stuck
//               --mem-budget-mb=F (deterministic per-attempt byte cap)
//               --capture-json=FILE / --capture-fault=ID
//               --profile-json=FILE (cycle-level profile sidecar; wall-clock)
//               --profile-interval-ms=N / --profile-max-samples=N
// Every engine-running subcommand accepts --metrics-json/--trace-json; the
// flags are parsed by the shared TelemetryFlags helper. The monitor,
// watchdog, capture, and flight-recorder flags are wired in `satpg atpg`
// only; --profile-json is wired in atpg and fsim.
//
// archive/diff/inspect operate on satpg.atpg_run.* reports (inspect also
// reads satpg.events.v1 logs and, with --profile, satpg.profile.v1
// sidecars; the archive stores profile sidecars too so `inspect --trend`
// can join them to their runs); <a>/<b>/<src> may each be a file path or
// a stored report's hash prefix (see harness/archive.h).
//
// Exit codes: 0 success; 1 runtime failure (bad file, replay mismatch);
// 2 usage error. `--help` anywhere prints usage to stdout and exits 0;
// `--version` anywhere prints build provenance to stdout and exits 0.
// (tools/bench_gate uses the same convention: 0 pass, 1 regression,
// 2 usage/missing-golden.)
//
// Circuits are ISCAS-89 .bench files; flip-flops power up unknown and the
// tool follows the library convention that an input named "rst" is the
// reset line.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/reach.h"
#include "analysis/structure.h"
#include "atpg/capture.h"
#include "atpg/compact.h"
#include "atpg/engine.h"
#include "atpg/parallel.h"
#include "base/cpu.h"
#include "base/memstats.h"
#include "base/metrics.h"
#include "base/profiler.h"
#include "base/telemetry_flags.h"
#include "dft/scan.h"
#include "fsim/fsim.h"
#include "base/trace.h"
#include "harness/archive.h"
#include "harness/build_info.h"
#include "harness/diff.h"
#include "harness/inspect.h"
#include "harness/profile.h"
#include "harness/report.h"
#include "netlist/bench_io.h"
#include "retime/retime.h"
#include "synth/library.h"
#include "synth/techmap.h"

using namespace satpg;

namespace {

void print_usage(std::FILE* f) {
  std::fprintf(
      f,
      "usage: satpg"
      " <info|analyze|atpg|fsim|retime|scan|faults|archive|diff|inspect|"
      "replay> ...\n"
      "  satpg info    c.bench\n"
      "  satpg analyze c.bench\n"
      "  satpg faults  c.bench\n"
      "  satpg atpg    c.bench [--engine=hitec|forward|learning|cdcl]"
      " [--budget=F] [--seed=N]\n"
      "                [--no-shared-learning] [--strict] [--tests=FILE]"
      " [--compact]\n"
      "                [--threads=N] [--deadline-ms=N]"
      " [--metrics-json=FILE] [--events-json=FILE]\n"
      "                [--trace-json=FILE]\n"
      "                [--heartbeat-json=FILE] [--heartbeat-interval-ms=N]"
      " [--progress]\n"
      "                [--stuck-evals=N] [--stuck-seconds=F]"
      " [--defer-stuck]\n"
      "                [--mem-budget-mb=F] (per-attempt accounted-byte cap;"
      " trips park + requeue)\n"
      "                [--capture-json=FILE] [--capture-fault=NAME|INDEX]\n"
      "                [--profile-json=FILE] [--profile-interval-ms=N]"
      " [--profile-max-samples=N]\n"
      "  satpg fsim    c.bench [--sequences=N] [--length=N] [--seed=N]"
      " [--threads=N]\n"
      "                [--engine=auto|baseline|wide]"
      " [--width=64|128|256|512] [--force-scalar]\n"
      "                [--metrics-json=FILE] [--trace-json=FILE]"
      " [--profile-json=FILE]\n"
      "                (SATPG_FORCE_SCALAR=1 in the environment pins the"
      " scalar kernel too)\n"
      "  satpg retime  in.bench out.bench [--dffs=N]\n"
      "  satpg scan    in.bench out.bench [--partial]\n"
      "  satpg archive <report.json>... [--dir=DIR]\n"
      "  satpg archive --list [--dir=DIR]\n"
      "  satpg diff    <a> <b> [--dir=DIR] [--top=N]"
      "   (a/b: file path or archive hash)\n"
      "  satpg inspect <src> [--fault=NAME|INDEX] [--top=N] [--memory]"
      " [--format=txt|json] [--dir=DIR]\n"
      "  satpg inspect --profile <profile.json> [--format=txt|json]"
      " [--dir=DIR]\n"
      "  satpg inspect --trend [--format=txt|json] [--dir=DIR]"
      "   (whole archive, append order)\n"
      "  satpg inspect --diff <a> <b> [--top=N] [--format=txt|json]"
      " [--dir=DIR]\n"
      "                (src: events-json log, report file, or archive"
      " hash)\n"
      "  satpg replay  capture.json [--circuit=FILE] [--dump]\n"
      "exit codes: 0 ok, 1 failure/replay-mismatch, 2 usage\n"
      "`satpg --version` (any position) prints build provenance and"
      " exits 0\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

Netlist load(const std::string& path) {
  Netlist nl = read_bench_file(path);
  annotate_library(nl);
  return nl;
}

const char* flag_value(const char* arg, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
}

int cmd_info(const Netlist& nl) {
  std::printf("circuit  : %s\n", nl.name().c_str());
  std::printf("inputs   : %zu\n", nl.num_inputs());
  std::printf("outputs  : %zu\n", nl.num_outputs());
  std::printf("gates    : %zu\n", nl.num_gates());
  std::printf("flipflops: %zu\n", nl.num_dffs());
  std::printf("area     : %.1f\n", nl.total_area());
  std::printf("delay    : %.2f\n", critical_path_delay(nl));
  return 0;
}

int cmd_analyze(const Netlist& nl) {
  cmd_info(nl);
  const auto depth = max_sequential_depth(nl);
  std::printf("max sequential depth: %d%s\n", depth.max_depth,
              depth.saturated ? " (lower bound)" : "");
  const auto cycles = count_cycles(nl);
  std::printf("cycle census        : %d cycles, max length %d%s\n",
              cycles.num_cycles, cycles.max_cycle_length,
              cycles.saturated ? " (lower bounds)" : "");
  const auto reach = compute_reachable(nl);
  std::printf("valid states        : %.0f of %.6g\n", reach.num_valid,
              reach.total_states);
  std::printf("density of encoding : %.3g\n", reach.density);
  return 0;
}

int cmd_faults(const Netlist& nl) {
  const auto all = enumerate_faults(nl);
  const auto collapsed = collapse_faults(nl);
  std::printf("fault universe : %zu stuck-at faults\n", all.size());
  std::printf("collapsed      : %zu equivalence classes\n", collapsed.size());
  return 0;
}

int cmd_atpg(const Netlist& nl, const std::string& circuit_path, int argc,
             char** argv) {
  ParallelAtpgOptions popts;
  AtpgRunOptions& opts = popts.run;
  std::string tests_file;
  std::string capture_file;
  TelemetryFlags telemetry;
  bool do_compact = false;
  for (int i = 0; i < argc; ++i) {
    if (telemetry.parse(argv[i])) {
      continue;
    }
    if (const char* v = flag_value(argv[i], "--engine=")) {
      if (!std::strcmp(v, "hitec"))
        opts.engine.kind = EngineKind::kHitec;
      else if (!std::strcmp(v, "forward"))
        opts.engine.kind = EngineKind::kForward;
      else if (!std::strcmp(v, "learning"))
        opts.engine.kind = EngineKind::kLearning;
      else if (!std::strcmp(v, "cdcl"))
        opts.engine.kind = EngineKind::kCdcl;
      else
        return usage();
    } else if (!std::strcmp(argv[i], "--no-shared-learning")) {
      opts.engine.share_learning = false;
    } else if (const char* v2 = flag_value(argv[i], "--budget=")) {
      const double f = std::atof(v2);
      opts.engine.eval_limit =
          static_cast<std::uint64_t>(opts.engine.eval_limit * f);
      opts.engine.backtrack_limit =
          static_cast<std::uint64_t>(opts.engine.backtrack_limit * f);
    } else if (const char* v3 = flag_value(argv[i], "--seed=")) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(v3));
    } else if (!std::strcmp(argv[i], "--strict")) {
      opts.count_potential_detections = false;
    } else if (const char* v4 = flag_value(argv[i], "--tests=")) {
      tests_file = v4;
    } else if (!std::strcmp(argv[i], "--compact")) {
      do_compact = true;
    } else if (const char* v5 = flag_value(argv[i], "--threads=")) {
      popts.num_threads = static_cast<unsigned>(std::atoi(v5));
    } else if (const char* v6 = flag_value(argv[i], "--deadline-ms=")) {
      popts.deadline_ms = static_cast<std::uint64_t>(std::atoll(v6));
    } else if (const char* v7 = flag_value(argv[i], "--stuck-evals=")) {
      if (!parse_positive_u64(v7, &popts.watchdog.stuck_evals)) {
        std::fprintf(stderr, "error: bad value --stuck-evals=%s\n", v7);
        return usage();
      }
    } else if (const char* vm = flag_value(argv[i], "--mem-budget-mb=")) {
      // Fractional MB are legal: small circuits trip at sub-MB footprints.
      double mb = 0.0;
      if (!parse_positive_double(vm, &mb)) {
        std::fprintf(stderr, "error: bad value --mem-budget-mb=%s\n", vm);
        return usage();
      }
      popts.mem_budget_bytes =
          static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
    } else if (const char* v8 = flag_value(argv[i], "--stuck-seconds=")) {
      popts.watchdog.stuck_seconds = std::atof(v8);
    } else if (!std::strcmp(argv[i], "--defer-stuck")) {
      popts.watchdog.defer = true;
    } else if (const char* v9 = flag_value(argv[i], "--capture-json=")) {
      capture_file = v9;
    } else if (const char* v10 = flag_value(argv[i], "--capture-fault=")) {
      popts.capture.fault = v10;
    } else {
      return usage();
    }
  }
  if (!telemetry.error.empty()) {
    std::fprintf(stderr, "error: bad value %s\n", telemetry.error.c_str());
    return usage();
  }
  if (popts.watchdog.defer && !popts.watchdog.enabled()) {
    std::fprintf(stderr, "--defer-stuck requires --stuck-evals=N\n");
    return 2;
  }
  if (!popts.capture.fault.empty() && capture_file.empty())
    capture_file = "satpg_capture.json";
  popts.capture.armed = !capture_file.empty();
  popts.monitor = telemetry.monitor_options();
  popts.record_events = telemetry.events_enabled();
  telemetry.arm();
  ParallelAtpgResult pres = run_parallel_atpg(nl, popts);
  if (!telemetry.finish_trace(&std::cout)) return 1;
  // End-of-run telemetry accounting goes to stderr: both numbers are
  // wall-clock shaped (sample cadence, buffer pressure), so they must stay
  // out of every deterministic artifact.
  if (telemetry.monitor_enabled() || telemetry.trace_enabled())
    std::fprintf(stderr,
                 "telemetry        : %llu heartbeat samples, "
                 "%zu trace events dropped\n",
                 static_cast<unsigned long long>(pres.heartbeat_samples),
                 TraceRecorder::global().num_dropped());
  if (telemetry.events_enabled()) {
    if (!write_events_json(telemetry.events_json, nl, popts, pres)) {
      std::fprintf(stderr, "cannot write %s\n", telemetry.events_json.c_str());
      return 1;
    }
    std::printf("events written   : %s\n", telemetry.events_json.c_str());
  }
  if (popts.capture.armed) {
    if (pres.capture) {
      pres.capture->circuit_path = circuit_path;
      if (!write_capture_json(capture_file, *pres.capture)) {
        std::fprintf(stderr, "cannot write %s\n", capture_file.c_str());
        return 1;
      }
      std::printf("capture written  : %s (%s, %s)\n", capture_file.c_str(),
                  pres.capture->fault.c_str(), pres.capture->reason.c_str());
    } else {
      std::printf("capture armed    : no trigger (nothing written)\n");
    }
  }
  if (telemetry.metrics_enabled()) {
    // atpg has a richer schema than the generic registry dump: the full
    // satpg.atpg_run.v6 report (harness/report). Freeze both registries
    // first so writing the report cannot perturb what it reports.
    set_metrics_enabled(false);
    set_memstats_enabled(false);
    if (!write_atpg_report_json(telemetry.metrics_json, nl, popts, pres)) {
      std::fprintf(stderr, "cannot write %s\n",
                   telemetry.metrics_json.c_str());
      return 1;
    }
    std::printf("metrics written  : %s\n", telemetry.metrics_json.c_str());
  }
  if (telemetry.profile_enabled()) {
    // Stop before snapshotting so the sidecar sees a frozen wall clock;
    // the profile lives entirely on the wall-clock plane and never feeds
    // back into the deterministic artifacts above.
    Profiler::global().stop();
    ProfileArtifact pa;
    pa.tool = "atpg";
    pa.circuit = nl.name();
    pa.engine_kind = engine_kind_name(opts.engine.kind);
    pa.eval_limit = opts.engine.eval_limit;
    pa.backtrack_limit = opts.engine.backtrack_limit;
    pa.max_forward_frames =
        static_cast<std::uint64_t>(opts.engine.max_forward_frames);
    pa.max_backward_frames =
        static_cast<std::uint64_t>(opts.engine.max_backward_frames);
    pa.seed = opts.seed;
    pa.evals = pres.run.evals;
    pa.snap = Profiler::global().snapshot();
    if (!write_profile_json(telemetry.profile_json, pa)) return 1;
    std::printf("profile written  : %s (backend %s)\n",
                telemetry.profile_json.c_str(),
                prof_backend_name(pa.snap.backend));
  }
  AtpgRunResult& run = pres.run;
  std::printf("engine           : %s\n", engine_kind_name(opts.engine.kind));
  std::printf("fault coverage   : %.2f%%\n", run.fault_coverage);
  std::printf("fault efficiency : %.2f%%\n", run.fault_efficiency);
  std::printf("faults           : %zu total, %zu detected, %zu redundant, "
              "%zu aborted\n",
              run.total_faults, run.detected, run.redundant, run.aborted);
  std::printf("work             : %llu evals, %llu backtracks, %.1f s\n",
              static_cast<unsigned long long>(run.evals),
              static_cast<unsigned long long>(run.backtracks),
              run.wall_seconds);
  if (opts.engine.kind == EngineKind::kCdcl)
    std::printf("cdcl             : %llu conflicts, %llu propagations, "
                "%llu restarts, %llu cube exports\n",
                static_cast<unsigned long long>(run.conflicts),
                static_cast<unsigned long long>(run.propagations),
                static_cast<unsigned long long>(run.restarts),
                static_cast<unsigned long long>(run.cube_exports));
  std::printf("test sequences   : %zu\n", run.tests.size());
  std::printf("states traversed : %zu\n", run.states_traversed.size());
  if (pres.aborted_by_deadline > 0)
    std::printf("deadline aborts  : %zu faults\n", pres.aborted_by_deadline);
  if (popts.watchdog.enabled())
    std::printf("watchdog         : %zu stuck faults, %zu requeued\n",
                pres.stuck_faults.size(), pres.deferred_requeued);
  if (popts.mem_budget_bytes != 0)
    std::printf("memory budget    : %llu bytes, %zu tripped, %zu requeued\n",
                static_cast<unsigned long long>(pres.mem_budget_bytes),
                pres.mem_tripped, pres.mem_requeued);
  if (do_compact) {
    const auto c = compact_tests(nl, run.tests);
    std::printf("compacted        : %zu -> %zu sequences\n", c.before,
                c.after);
    run.tests = c.tests;
  }
  if (!tests_file.empty()) {
    std::ofstream os(tests_file);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", tests_file.c_str());
      return 1;
    }
    os << "# test sequences for " << nl.name() << "\n# inputs:";
    for (NodeId pi : nl.inputs()) os << ' ' << nl.node(pi).name;
    os << "\n";
    for (std::size_t s = 0; s < run.tests.size(); ++s) {
      os << "sequence " << s << "\n";
      for (const auto& vec : run.tests[s]) {
        for (V3 v : vec) os << v3_char(v);
        os << "\n";
      }
    }
    std::printf("tests written    : %s\n", tests_file.c_str());
  }
  return 0;
}

int cmd_replay(int argc, char** argv) {
  std::string capture_path;
  std::string circuit_path;
  bool dump = false;
  for (int i = 0; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--circuit=")) {
      circuit_path = v;
    } else if (!std::strcmp(argv[i], "--dump")) {
      dump = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (capture_path.empty()) {
      capture_path = argv[i];
    } else {
      return usage();
    }
  }
  if (capture_path.empty()) return usage();
  SearchCapture cap;
  std::string err;
  if (!parse_capture_json(capture_path, &cap, &err)) {
    std::fprintf(stderr, "error: %s: %s\n", capture_path.c_str(),
                 err.c_str());
    return 1;
  }
  if (circuit_path.empty()) circuit_path = cap.circuit_path;
  if (circuit_path.empty()) {
    std::fprintf(stderr,
                 "error: capture has no circuit_path; pass --circuit=FILE\n");
    return 1;
  }
  const Netlist nl = load(circuit_path);
  std::printf("capture          : %s (%s, reason %s, %llu events)\n",
              capture_path.c_str(), cap.fault.c_str(), cap.reason.c_str(),
              static_cast<unsigned long long>(cap.ring_total));
  const ReplayResult res = replay_capture(nl, cap);
  if (dump) {
    const std::size_t kept =
        std::min<std::size_t>(cap.events.size(), res.events.size());
    const std::size_t base =
        cap.ring_total - std::min<std::uint64_t>(cap.ring_total,
                                                 cap.ring_capacity);
    for (std::size_t i = 0; i < res.events.size(); ++i) {
      const DecisionEvent& e = res.events[i];
      const bool matches = i < kept && e == cap.events[i];
      std::printf("  [%zu] %s frame=%d node=%d value=%u aux=%llu%s\n",
                  base + i, decision_event_code(e.kind), e.frame, e.node,
                  static_cast<unsigned>(e.value),
                  static_cast<unsigned long long>(e.aux),
                  matches ? "" : "   <- differs from capture");
    }
  }
  std::printf("replay           : %s\n", res.message.c_str());
  return res.ok ? 0 : 1;
}

int cmd_fsim(const Netlist& nl, int argc, char** argv) {
  int sequences = 32;
  int length = 64;
  std::uint64_t seed = 1;
  FsimOptions fopts;
  TelemetryFlags telemetry;
  for (int i = 0; i < argc; ++i) {
    if (telemetry.parse(argv[i])) {
      continue;
    }
    if (const char* v = flag_value(argv[i], "--sequences=")) {
      sequences = std::atoi(v);
    } else if (const char* v2 = flag_value(argv[i], "--length=")) {
      length = std::atoi(v2);
    } else if (const char* v3 = flag_value(argv[i], "--seed=")) {
      seed = static_cast<std::uint64_t>(std::atoll(v3));
    } else if (const char* v4 = flag_value(argv[i], "--threads=")) {
      fopts.num_threads = static_cast<unsigned>(std::atoi(v4));
    } else if (const char* v5 = flag_value(argv[i], "--engine=")) {
      if (std::strcmp(v5, "auto") == 0) {
        fopts.engine = FsimEngine::kAuto;
      } else if (std::strcmp(v5, "baseline") == 0) {
        fopts.engine = FsimEngine::kBaseline64;
      } else if (std::strcmp(v5, "wide") == 0) {
        fopts.engine = FsimEngine::kWide;
      } else {
        std::fprintf(stderr, "error: unknown --engine=%s\n", v5);
        return 2;
      }
    } else if (const char* v6 = flag_value(argv[i], "--width=")) {
      SimdTier tier;
      if (!simd_tier_from_width(static_cast<unsigned>(std::atoi(v6)),
                                &tier)) {
        std::fprintf(stderr,
                     "error: --width must be 64, 128, 256 or 512\n");
        return 2;
      }
      if (!fsim_wide_tier_usable(tier)) {
        std::fprintf(stderr,
                     "error: --width=%s kernel is not available on this "
                     "machine/build\n",
                     v6);
        return 1;
      }
      fopts.simd = tier;
    } else if (std::strcmp(argv[i], "--force-scalar") == 0) {
      fopts.simd = SimdTier::kScalar;
    } else {
      return usage();
    }
  }
  if (!telemetry.error.empty()) {
    std::fprintf(stderr, "error: bad value %s\n", telemetry.error.c_str());
    return usage();
  }
  if (telemetry.monitor_enabled())
    std::fprintf(stderr,
                 "note: --heartbeat-json/--progress are wired in `satpg atpg`"
                 " only; ignored here\n");
  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  faults.reserve(collapsed.size());
  for (const auto& c : collapsed) faults.push_back(c.representative);
  const auto seqs = make_random_sequences(nl, sequences, length, seed);

  telemetry.arm();
  const FsimResult r = run_fault_simulation(nl, faults, seqs, fopts);
  if (!telemetry.finish_trace(&std::cout)) return 1;
  if (!telemetry.write_metrics_registry("satpg.metrics.v1", "fsim",
                                        &std::cout))
    return 1;
  if (telemetry.profile_enabled()) {
    Profiler::global().stop();
    ProfileArtifact pa;
    pa.tool = "fsim";
    pa.circuit = nl.name();
    pa.seed = seed;
    // One pattern = one simulated frame across all sequences: the unit the
    // per-tier cycles_per_pattern rates divide by.
    pa.patterns = static_cast<std::uint64_t>(sequences) *
                  static_cast<std::uint64_t>(length);
    pa.snap = Profiler::global().snapshot();
    if (!write_profile_json(telemetry.profile_json, pa)) return 1;
    std::printf("profile written  : %s (backend %s)\n",
                telemetry.profile_json.c_str(),
                prof_backend_name(pa.snap.backend));
  }

  const auto [detected_weight, total_weight] =
      graded_coverage(collapsed, r.detected_at);
  const bool used_wide =
      fopts.engine == FsimEngine::kWide ||
      (fopts.engine == FsimEngine::kAuto && seqs.size() >= 2);
  std::printf("engine           : %s\n",
              used_wide ? (std::string("wide/") +
                           simd_tier_name(fsim_wide_resolve_tier(fopts.simd)))
                              .c_str()
                        : "baseline64");
  std::printf("sequences        : %d x %d cycles (seed %llu)\n", sequences,
              length, static_cast<unsigned long long>(seed));
  std::printf("faults           : %zu collapsed classes (%zu weighted)\n",
              collapsed.size(), total_weight);
  std::printf("detected         : %zu classes (%zu weighted)\n",
              r.num_detected, detected_weight);
  std::printf("fault coverage   : %.2f%%\n",
              total_weight == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(detected_weight) /
                        static_cast<double>(total_weight));
  std::printf("states traversed : %zu\n", r.good_states.size());
  return 0;
}

int cmd_archive(int argc, char** argv) {
  std::string dir = "runs";
  bool do_list = false;
  std::vector<std::string> files;
  for (int i = 0; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--dir=")) {
      dir = v;
    } else if (!std::strcmp(argv[i], "--list")) {
      do_list = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (!do_list && files.empty()) return usage();
  RunArchive archive(dir);
  for (const std::string& f : files) {
    const ArchiveEntry e = archive.add_file(f);
    std::printf("archived %s  %s %s (config %s)\n", e.hash.c_str(),
                e.circuit.c_str(), e.engine.c_str(), e.config_digest.c_str());
  }
  if (do_list) {
    const auto entries = archive.list();
    if (entries.empty()) {
      std::printf("archive %s/ is empty\n", archive.dir().c_str());
      return 0;
    }
    std::printf("%-16s  %-18s  %-16s  %-8s  %s\n", "hash", "schema",
                "circuit", "engine", "config");
    for (const ArchiveEntry& e : entries)
      std::printf("%-16s  %-18s  %-16s  %-8s  %s\n", e.hash.c_str(),
                  e.schema.c_str(), e.circuit.c_str(), e.engine.c_str(),
                  e.config_digest.c_str());
  }
  return 0;
}

int cmd_diff(int argc, char** argv) {
  std::string dir = "runs";
  DiffOptions dopts;
  std::vector<std::string> specs;
  for (int i = 0; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--dir=")) {
      dir = v;
    } else if (const char* v2 = flag_value(argv[i], "--top=")) {
      dopts.top_regressions = static_cast<std::size_t>(std::atoll(v2));
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      specs.emplace_back(argv[i]);
    }
  }
  if (specs.size() != 2) return usage();
  const RunArchive archive(dir);
  RunReport a, b;
  std::string err;
  if (!parse_run_report(load_report_spec(archive, specs[0]), &a, &err)) {
    std::fprintf(stderr, "error: %s: %s\n", specs[0].c_str(), err.c_str());
    return 1;
  }
  if (!parse_run_report(load_report_spec(archive, specs[1]), &b, &err)) {
    std::fprintf(stderr, "error: %s: %s\n", specs[1].c_str(), err.c_str());
    return 1;
  }
  const RunDiff d = diff_runs(a, b, dopts);
  write_run_diff(std::cout, a, b, d);
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  std::string dir = "runs";
  InspectOptions iopts;
  bool do_diff = false;
  bool do_trend = false;
  std::vector<std::string> specs;
  for (int i = 0; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--dir=")) {
      dir = v;
    } else if (const char* v2 = flag_value(argv[i], "--fault=")) {
      iopts.fault = v2;
    } else if (const char* v3 = flag_value(argv[i], "--top=")) {
      iopts.top = static_cast<std::size_t>(std::atoll(v3));
    } else if (const char* v4 = flag_value(argv[i], "--format=")) {
      if (!std::strcmp(v4, "json"))
        iopts.json = true;
      else if (std::strcmp(v4, "txt") != 0)
        return usage();
    } else if (!std::strcmp(argv[i], "--memory")) {
      iopts.memory = true;
    } else if (!std::strcmp(argv[i], "--profile")) {
      iopts.profile = true;
    } else if (!std::strcmp(argv[i], "--trend")) {
      do_trend = true;
    } else if (!std::strcmp(argv[i], "--diff")) {
      do_diff = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      specs.emplace_back(argv[i]);
    }
  }
  if (do_diff + do_trend + (iopts.profile ? 1 : 0) > 1) return usage();
  if (specs.size() != (do_diff ? 2u : do_trend ? 0u : 1u)) return usage();
  const RunArchive archive(dir);
  std::string err;
  bool ok = false;
  try {
    if (do_diff) {
      ok = inspect_diff(std::cout, load_report_spec(archive, specs[0]),
                        load_report_spec(archive, specs[1]), iopts, &err);
    } else if (do_trend) {
      // The whole archive in append order; inspect joins profile sidecars
      // to their reports by configuration.
      std::vector<TrendEntry> entries;
      for (const ArchiveEntry& e : archive.list())
        entries.push_back({e.hash, archive.load(e)});
      ok = inspect_trend(std::cout, entries, iopts, &err);
    } else {
      ok = inspect_source(std::cout, load_report_spec(archive, specs[0]),
                          iopts, &err);
    }
  } catch (const std::exception& e) {
    err = e.what();
  }
  if (!ok) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  return 0;
}

int cmd_retime(const Netlist& nl, const std::string& out_path, int argc,
               char** argv) {
  std::size_t dffs = 0;
  for (int i = 0; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--dffs="))
      dffs = static_cast<std::size_t>(std::atoll(v));
    else
      return usage();
  }
  const RetimeResult r =
      dffs > 0 ? retime_to_dff_target(nl, dffs, nl.name() + ".re")
               : retime_min_period(nl, nl.name() + ".re");
  std::printf("period: %.2f -> %.2f, flip-flops: %zu -> %zu\n",
              r.period_before, r.period_after, nl.num_dffs(),
              r.netlist.num_dffs());
  std::ofstream os(out_path);
  if (!os) return 1;
  write_bench(r.netlist, os);
  std::printf("written: %s\n", out_path.c_str());
  return 0;
}

int cmd_scan(const Netlist& nl, const std::string& out_path, bool partial) {
  const ScanResult r = partial
                           ? insert_partial_scan(
                                 nl, select_cycle_breaking_ffs(nl))
                           : insert_full_scan(nl);
  std::printf("scanned %zu of %zu flip-flops\n", r.chain.size(),
              nl.num_dffs());
  std::ofstream os(out_path);
  if (!os) return 1;
  write_bench(r.netlist, os);
  std::printf("written: %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help")) {
      print_usage(stdout);
      return 0;
    }
    if (!std::strcmp(argv[i], "--version")) {
      // Build provenance (DESIGN.md §11) plus the host CPU: everything
      // needed to label a measurement taken with this binary.
      const BuildInfo& b = build_info();
      std::printf("satpg (%s %s, %s, sanitizer %s)\n", b.compiler.c_str(),
                  b.compiler_version.c_str(), b.build_type.c_str(),
                  b.sanitizer.c_str());
      std::printf("simd     : compiled %s, dispatched %s\n",
                  b.simd_compiled.c_str(), b.simd_dispatched.c_str());
      std::printf("host cpu : %s\n", cpu_model_name().c_str());
      return 0;
    }
  }
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "info") return cmd_info(load(argv[2]));
    if (cmd == "analyze") return cmd_analyze(load(argv[2]));
    if (cmd == "faults") return cmd_faults(load(argv[2]));
    if (cmd == "atpg")
      return cmd_atpg(load(argv[2]), argv[2], argc - 3, argv + 3);
    if (cmd == "fsim") return cmd_fsim(load(argv[2]), argc - 3, argv + 3);
    if (cmd == "archive") return cmd_archive(argc - 2, argv + 2);
    if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
    if (cmd == "inspect") return cmd_inspect(argc - 2, argv + 2);
    if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
    if (cmd == "retime") {
      if (argc < 4) return usage();
      return cmd_retime(load(argv[2]), argv[3], argc - 4, argv + 4);
    }
    if (cmd == "scan") {
      if (argc < 4) return usage();
      const bool partial = argc > 4 && !std::strcmp(argv[4], "--partial");
      return cmd_scan(load(argv[2]), argv[3], partial);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
