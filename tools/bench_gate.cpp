// bench_gate — CI regression gate over two atpg_run reports.
//
//   bench_gate <baseline> <candidate> [--max-coverage-drop=F]
//              [--max-effort-ratio=F] [--mem] [--max-mem-ratio=F]
//              [--dir=DIR]
//   bench_gate --fsim <BENCH_fsim.json> [--min-fsim-speedup=F]
//
// <baseline>/<candidate> are report file paths or archive hash prefixes
// (resolved against --dir, default "runs"); any satpg.atpg_run.v1-v6
// schema is accepted. Prints the full deterministic diff, then PASS or
// FAIL with one line per violated threshold. v5 reports additionally get
// an internal-consistency check: the cube_provenance block's exports
// total must equal the summary cube_exports counter (a mismatch means
// the provenance plumbing dropped or double-counted an export).
//
// --mem adds a memory check over the v6 memory block totals: the
// candidate's accounted peak bytes must stay within --max-mem-ratio
// (default 1.25x) of the baseline's. Skipped with a note when either
// side reports zero peak bytes (pre-v6 report, or a run with memstats
// disarmed) — absence of accounting is not evidence of regression.
// Wired non-blocking in CI, like --fsim: logical-byte footprints are
// deterministic, but budget tuning belongs to a human.
//
// --fsim mode reads the packed-vs-baseline table the microbench writes
// (schema satpg.bench_fsim.v3), prints it, and passes iff the engines
// agreed on detection counts and the best wide row reached the speedup
// floor (default 2.0x over the 64-slot baseline). Wired non-blocking in
// CI: wall-clock on shared runners is advisory, determinism is not.
//
// --profile mode is purely advisory: it reads a satpg.profile.v1 sidecar
// (--profile-json output), prints the backend and the ranked per-phase
// cost table plus cycles/eval, and exits 0 for any well-formed sidecar
// (2 when malformed). There is no threshold — cycle counts on shared
// runners are for reading trends, not for gating merges.
//
// Exit codes: 0 = pass, 1 = threshold violated, 2 = usage/load error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/json.h"
#include "harness/archive.h"
#include "harness/diff.h"

using namespace satpg;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_gate <baseline> <candidate>"
               " [--max-coverage-drop=F] [--max-effort-ratio=F]"
               " [--mem] [--max-mem-ratio=F] [--dir=DIR]\n"
               "       bench_gate --fsim <BENCH_fsim.json>"
               " [--min-fsim-speedup=F]\n"
               "       bench_gate --profile <profile.json>   (advisory,"
               " always 0 when well-formed)\n"
               "  baseline/candidate: report file path or archive hash\n");
  return 2;
}

const char* flag_value(const char* arg, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
}

// --fsim mode: gate on the microbench's packed-vs-baseline table.
int run_fsim_gate(const std::string& path, double min_speedup) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << is.rdbuf();

  JsonValue doc;
  std::string err;
  if (!json_parse(ss.str(), &doc, &err)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), err.c_str());
    return 2;
  }
  const JsonValue* rows = doc.find("rows");
  if (!rows || !rows->is_array() || rows->array().empty()) {
    std::fprintf(stderr, "error: %s: missing rows[]\n", path.c_str());
    return 2;
  }

  std::printf("fsim bench: %s on %s (%llu faults, %llu x %llu patterns, "
              "%llu threads)\n",
              doc.str_or("bench", "?").c_str(),
              doc.str_or("circuit", "?").c_str(),
              static_cast<unsigned long long>(doc.uint_or("faults", 0)),
              static_cast<unsigned long long>(doc.uint_or("sequences", 0)),
              static_cast<unsigned long long>(
                  doc.uint_or("frames_per_sequence", 0)),
              static_cast<unsigned long long>(doc.uint_or("num_threads", 0)));
  std::printf("  %-14s %10s %16s %10s %14s\n", "engine", "seconds",
              "patterns/s", "speedup", "peak bytes");
  double best_wide_speedup = 0.0;
  for (const JsonValue& row : rows->array()) {
    const std::string engine = row.str_or("engine", "?");
    const double speedup = row.num_or("speedup_vs_baseline", 0.0);
    std::printf("  %-14s %10.4f %16.0f %9.2fx %14llu\n", engine.c_str(),
                row.num_or("seconds", 0.0),
                row.num_or("patterns_per_second", 0.0), speedup,
                static_cast<unsigned long long>(row.uint_or("peak_bytes", 0)));
    if (engine.compare(0, 5, "wide/") == 0)
      best_wide_speedup = std::max(best_wide_speedup, speedup);
  }

  bool pass = true;
  if (!doc.bool_or("deterministic", false)) {
    std::printf("VIOLATION: engines disagreed on detection counts\n");
    pass = false;
  }
  if (best_wide_speedup < min_speedup) {
    std::printf("VIOLATION: best wide speedup %.2fx below the %.2fx floor\n",
                best_wide_speedup, min_speedup);
    pass = false;
  }
  std::printf("gate threshold: wide speedup >= %.2fx over baseline64\n",
              min_speedup);
  std::printf("%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

// --profile mode: advisory where-do-the-cycles-go report off a
// satpg.profile.v1 sidecar. No thresholds; exit 0 iff well-formed.
int run_profile_report(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << is.rdbuf();

  JsonValue doc;
  std::string err;
  if (!json_parse(ss.str(), &doc, &err)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), err.c_str());
    return 2;
  }
  const std::string schema = doc.str_or("schema", "");
  if (schema.rfind("satpg.profile.", 0) != 0) {
    std::fprintf(stderr, "error: %s: not a profile sidecar (schema \"%s\")\n",
                 path.c_str(), schema.c_str());
    return 2;
  }
  const JsonValue* phases = doc.find("phases");
  if (!phases || !phases->is_object()) {
    std::fprintf(stderr, "error: %s: missing phases{}\n", path.c_str());
    return 2;
  }

  std::string circuit = "?";
  if (const JsonValue* c = doc.find("circuit"))
    circuit = c->str_or("name", "?");
  std::printf("profile: %s (%s) backend=%s wall=%.6g s\n", circuit.c_str(),
              doc.str_or("tool", "?").c_str(),
              doc.str_or("backend", "?").c_str(),
              doc.num_or("wall_seconds", 0.0));

  struct Row {
    std::string name;
    std::uint64_t calls;
    std::uint64_t task_ns;
    std::uint64_t cycles;
  };
  std::vector<Row> rows;
  std::uint64_t total_ns = 0;
  for (const auto& [name, v] : phases->members()) {
    const std::uint64_t calls = v.uint_or("calls", 0);
    if (calls == 0) continue;
    rows.push_back({name, calls, v.uint_or("task_clock_ns", 0),
                    v.uint_or("cycles", 0)});
    total_ns += rows.back().task_ns;
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.task_ns != b.task_ns) return a.task_ns > b.task_ns;
    return a.name < b.name;
  });
  std::printf("  %-26s %10s %12s %7s %16s\n", "phase", "calls", "task ms",
              "share", "cycles");
  for (const Row& r : rows)
    std::printf("  %-26s %10llu %12.3f %6.1f%% %16llu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.calls),
                static_cast<double>(r.task_ns) / 1e6,
                total_ns == 0 ? 0.0
                              : 100.0 * static_cast<double>(r.task_ns) /
                                    static_cast<double>(total_ns),
                static_cast<unsigned long long>(r.cycles));
  if (const JsonValue* d = doc.find("derived"); d && d->is_object())
    for (const auto& [name, v] : d->members())
      if (v.is_number())
        std::printf("  derived %-32s %.6g\n", name.c_str(), v.number());
  std::printf("advisory: no thresholds (cycle counts on shared runners"
              " are for trends, not gates)\nPASS\n");
  return 0;
}

// v5 internal consistency: cube_provenance.exports must mirror the
// summary cube_exports counter. Pre-v5 reports (no provenance block) pass
// vacuously. Returns false and appends a violation line on mismatch.
bool check_provenance(const std::string& label, const std::string& text,
                      std::vector<std::string>* violations) {
  JsonValue doc;
  if (!json_parse(text, &doc)) return true;  // parse errors caught earlier
  const JsonValue* prov = doc.find("cube_provenance");
  if (prov == nullptr) return true;
  // Defer-requeue runs legitimately diverge: a parked fault's first
  // attempt adds to the summary counters while per_fault (and with it the
  // provenance rollup) keeps only the requeued attempt.
  if (const JsonValue* wd = doc.find("watchdog");
      wd && wd->bool_or("defer", false))
    return true;
  const JsonValue* summary = doc.find("summary");
  const std::uint64_t prov_exports = prov->uint_or("exports", 0);
  const std::uint64_t summary_exports =
      summary ? summary->uint_or("cube_exports", 0) : 0;
  if (prov_exports == summary_exports) return true;
  violations->push_back(
      label + ": cube_provenance.exports " + std::to_string(prov_exports) +
      " != summary cube_exports " + std::to_string(summary_exports));
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "runs";
  GateOptions gopts;
  std::string fsim_path;
  std::string profile_path;
  double min_fsim_speedup = 2.0;
  bool fsim_mode = false;
  bool profile_mode = false;
  bool mem_gate = false;
  double max_mem_ratio = 1.25;
  std::vector<std::string> specs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fsim") == 0) {
      if (i + 1 >= argc) return usage();
      fsim_mode = true;
      fsim_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      if (i + 1 >= argc) return usage();
      profile_mode = true;
      profile_path = argv[++i];
    } else if (std::strcmp(argv[i], "--mem") == 0) {
      mem_gate = true;
    } else if (const char* v5 = flag_value(argv[i], "--max-mem-ratio=")) {
      max_mem_ratio = std::atof(v5);
    } else if (const char* v4 = flag_value(argv[i], "--min-fsim-speedup=")) {
      min_fsim_speedup = std::atof(v4);
    } else if (const char* v = flag_value(argv[i], "--max-coverage-drop=")) {
      gopts.max_coverage_drop = std::atof(v);
    } else if (const char* v2 = flag_value(argv[i], "--max-effort-ratio=")) {
      gopts.max_effort_ratio = std::atof(v2);
    } else if (const char* v3 = flag_value(argv[i], "--dir=")) {
      dir = v3;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      specs.emplace_back(argv[i]);
    }
  }
  if (fsim_mode && profile_mode) return usage();
  if (fsim_mode) {
    if (!specs.empty()) return usage();
    return run_fsim_gate(fsim_path, min_fsim_speedup);
  }
  if (profile_mode) {
    if (!specs.empty()) return usage();
    return run_profile_report(profile_path);
  }
  if (specs.size() != 2) return usage();

  RunReport baseline, candidate;
  std::string baseline_text, candidate_text;
  try {
    const RunArchive archive(dir);
    std::string err;
    baseline_text = load_report_spec(archive, specs[0]);
    if (!parse_run_report(baseline_text, &baseline, &err)) {
      std::fprintf(stderr, "error: %s: %s\n", specs[0].c_str(), err.c_str());
      return 2;
    }
    candidate_text = load_report_spec(archive, specs[1]);
    if (!parse_run_report(candidate_text, &candidate, &err)) {
      std::fprintf(stderr, "error: %s: %s\n", specs[1].c_str(), err.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const RunDiff d = diff_runs(baseline, candidate);
  write_run_diff(std::cout, baseline, candidate, d);

  GateResult gate = evaluate_gate(baseline, candidate, gopts);
  if (!check_provenance("baseline", baseline_text, &gate.violations))
    gate.pass = false;
  if (!check_provenance("candidate", candidate_text, &gate.violations))
    gate.pass = false;
  if (mem_gate) {
    if (baseline.mem_peak_bytes == 0 || candidate.mem_peak_bytes == 0) {
      std::cout << "memory gate: skipped (peak bytes unavailable on "
                << (baseline.mem_peak_bytes == 0 ? "baseline" : "candidate")
                << " — pre-v6 report or memstats disarmed)\n";
    } else {
      const double limit =
          static_cast<double>(baseline.mem_peak_bytes) * max_mem_ratio;
      if (static_cast<double>(candidate.mem_peak_bytes) > limit) {
        gate.violations.push_back(
            "peak mem bytes " + std::to_string(candidate.mem_peak_bytes) +
            " exceeds " + std::to_string(max_mem_ratio) + "x baseline " +
            std::to_string(baseline.mem_peak_bytes));
        gate.pass = false;
      }
    }
  }
  std::cout << "\ngate thresholds: coverage drop <= "
            << gopts.max_coverage_drop << " points, effort ratio <= "
            << gopts.max_effort_ratio
            << "x, cube_provenance.exports == cube_exports";
  if (mem_gate)
    std::cout << ", peak mem ratio <= " << max_mem_ratio << "x";
  std::cout << "\n";
  for (const std::string& v : gate.violations)
    std::cout << "VIOLATION: " << v << "\n";
  std::cout << (gate.pass ? "PASS" : "FAIL") << "\n";
  return gate.pass ? 0 : 1;
}
