// bench_gate — CI regression gate over two atpg_run reports.
//
//   bench_gate <baseline> <candidate> [--max-coverage-drop=F]
//              [--max-effort-ratio=F] [--dir=DIR]
//
// <baseline>/<candidate> are report file paths or archive hash prefixes
// (resolved against --dir, default "runs"). Prints the full deterministic
// diff, then PASS or FAIL with one line per violated threshold.
//
// Exit codes: 0 = pass, 1 = threshold violated, 2 = usage/load error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/archive.h"
#include "harness/diff.h"

using namespace satpg;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_gate <baseline> <candidate>"
               " [--max-coverage-drop=F] [--max-effort-ratio=F]"
               " [--dir=DIR]\n"
               "  baseline/candidate: report file path or archive hash\n");
  return 2;
}

const char* flag_value(const char* arg, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "runs";
  GateOptions gopts;
  std::vector<std::string> specs;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flag_value(argv[i], "--max-coverage-drop=")) {
      gopts.max_coverage_drop = std::atof(v);
    } else if (const char* v2 = flag_value(argv[i], "--max-effort-ratio=")) {
      gopts.max_effort_ratio = std::atof(v2);
    } else if (const char* v3 = flag_value(argv[i], "--dir=")) {
      dir = v3;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      specs.emplace_back(argv[i]);
    }
  }
  if (specs.size() != 2) return usage();

  RunReport baseline, candidate;
  try {
    const RunArchive archive(dir);
    std::string err;
    if (!parse_run_report(load_report_spec(archive, specs[0]), &baseline,
                          &err)) {
      std::fprintf(stderr, "error: %s: %s\n", specs[0].c_str(), err.c_str());
      return 2;
    }
    if (!parse_run_report(load_report_spec(archive, specs[1]), &candidate,
                          &err)) {
      std::fprintf(stderr, "error: %s: %s\n", specs[1].c_str(), err.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const RunDiff d = diff_runs(baseline, candidate);
  write_run_diff(std::cout, baseline, candidate, d);

  const GateResult gate = evaluate_gate(baseline, candidate, gopts);
  std::cout << "\ngate thresholds: coverage drop <= "
            << gopts.max_coverage_drop << " points, effort ratio <= "
            << gopts.max_effort_ratio << "x\n";
  for (const std::string& v : gate.violations)
    std::cout << "VIOLATION: " << v << "\n";
  std::cout << (gate.pass ? "PASS" : "FAIL") << "\n";
  return gate.pass ? 0 : 1;
}
