// Ablation: cross-fault proven-cube sharing on vs off for the cdcl engine
// on retimed twins (conflicts, cube exports, work).
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Ablation: cdcl cube sharing on retimed circuits",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_ablation_cdcl_sharing(suite, opts);
      });
}
