// Regenerates the paper's Table 7: the s510.jo.sr retiming ladder
// (.v1/.v2/.v3/.re) — delay, #DFF, valid states, and density of encoding.
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Table 7: density of encoding sensitivity analysis",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_table7_sensitivity(suite, opts);
      });
}
