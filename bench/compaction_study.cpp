// Extension: static test-set compaction over suite circuits.
#include "bench_main.h"
#include "harness/extensions.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Extension: reverse-order test-set compaction",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_compaction_study(suite, opts);
      });
}
