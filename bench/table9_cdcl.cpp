// Fourth engine column for Tables 2-4: the SAT/CDCL engine on the Table-4
// circuit pairs next to the hitec baseline, including the attribution
// oracle's invalid-state effort fraction for both engines.
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Table 9: SAT/CDCL engine vs structural baseline",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_table9_cdcl(suite, opts);
      });
}
