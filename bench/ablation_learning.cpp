// Ablation (paper §5): does SEST-style dynamic state learning recover the
// retiming-induced blowup? Compares the base engine against the learning
// engine on retimed circuits.
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Ablation: dynamic state learning on retimed circuits",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_ablation_learning(suite, opts);
      });
}
