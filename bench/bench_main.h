// Shared main() scaffold for the table benches: parse flags, build the
// suite, print one header + the regenerated table, and write the
// machine-readable sidecar (BENCH_<bench>.json) that the trajectory
// tooling diffs across commits. --metrics-json / --trace-json arm the
// telemetry subsystem for the whole run.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "base/telemetry_flags.h"
#include "harness/experiments.h"

namespace satpg {

inline std::string bench_sidecar_path(const char* argv0) {
  std::string base = argv0;
  const std::size_t slash = base.find_last_of("/\\");
  if (slash != std::string::npos) base = base.substr(slash + 1);
  return "BENCH_" + base + ".json";
}

template <typename Fn>
int bench_table_main(int argc, char** argv, const char* title, Fn&& body) {
  BenchConfig cfg = parse_bench_flags(argc, argv);
  Suite suite(cfg.suite);
  std::cout << "=== " << title << " ===\n";
  std::cout << "(budget=" << cfg.experiment.budget_scale
            << ", fsm-scale=" << cfg.suite.fsm_scale
            << ", seed=" << cfg.experiment.seed << ")\n\n";

  cfg.telemetry.arm();

  const Table table = body(suite, cfg.experiment);
  std::cout << table.to_string() << "\n";

  cfg.telemetry.finish_trace(&std::cout);
  cfg.telemetry.write_metrics_registry("satpg.metrics.v1", title, &std::cout);
  if (cfg.write_sidecar) {
    const std::string path = bench_sidecar_path(argv[0]);
    std::ofstream os(path);
    if (os) {
      os << "{\"schema\": \"satpg.bench_table.v1\", \"bench\": \"" << title
         << "\",\n \"budget\": " << cfg.experiment.budget_scale
         << ", \"fsm_scale\": " << cfg.suite.fsm_scale
         << ", \"seed\": " << cfg.experiment.seed << ",\n \"table\": "
         << table.to_json() << "\n}\n";
    }
  }
  return 0;
}

}  // namespace satpg
