// Shared main() scaffold for the table benches: parse flags, build the
// suite, print one header + the regenerated table.
#pragma once

#include <iostream>

#include "harness/experiments.h"

namespace satpg {

template <typename Fn>
int bench_table_main(int argc, char** argv, const char* title, Fn&& body) {
  BenchConfig cfg = parse_bench_flags(argc, argv);
  Suite suite(cfg.suite);
  std::cout << "=== " << title << " ===\n";
  std::cout << "(budget=" << cfg.experiment.budget_scale
            << ", fsm-scale=" << cfg.suite.fsm_scale
            << ", seed=" << cfg.experiment.seed << ")\n\n";
  const Table table = body(suite, cfg.experiment);
  std::cout << table.to_string() << "\n";
  return 0;
}

}  // namespace satpg
