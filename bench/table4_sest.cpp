// Regenerates the paper's Table 4: the state-learning engine (Sequential
// EST stand-in) on five circuit pairs.
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Table 4: SEST-substitute (state-learning engine) results",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_table4_sest(suite, opts);
      });
}
