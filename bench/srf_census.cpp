// Extension: exact product-machine detectability census over an
// original/retimed pair — machine-checks the paper's §4.1 argument that
// retiming does not inject sequentially redundant faults (Theorem 1); the
// ATPG blowup is search cost on a sparse state encoding, not redundancy.
#include "bench_main.h"
#include "harness/extensions.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Extension: exact SRF census (original vs retimed)",
      [](satpg::Suite&, const satpg::ExperimentOptions& opts) {
        return satpg::run_srf_census(opts);
      });
}
