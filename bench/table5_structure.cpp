// Regenerates the paper's Table 5: maximum sequential depth, maximum cycle
// length, and the DFF-subset cycle census for every pair — the structural
// attributes that do NOT explain the ATPG blowup (Theorems 2-4).
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Table 5: structural attributes of each circuit",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_table5_structure(suite, opts);
      });
}
