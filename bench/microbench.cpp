// google-benchmark microbenchmarks for the performance-critical substrates:
// logic simulation, parallel fault simulation, BDD reachability, espresso
// minimization, and the time-frame model's event propagation. These guard
// the throughput the experiment harness depends on.
#include <benchmark/benchmark.h>

#include "analysis/reach.h"
#include "atpg/engine.h"
#include "atpg/podem.h"
#include "atpg/scoap.h"
#include "atpg/tfm.h"
#include "base/rng.h"
#include "fsim/fsim.h"
#include "fsm/mcnc_suite.h"
#include "sim/simulator.h"
#include "synth/cover.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

// One mid-sized circuit shared by the benchmarks (built once).
const SynthResult& shared_circuit() {
  static const SynthResult res = [] {
    FsmGenSpec spec;
    for (const auto& s : mcnc_specs())
      if (s.name == "s820") spec = s;
    const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.6));
    SynthOptions so;
    so.encode = EncodeAlgo::kOutputDominant;
    return synthesize(fsm, so);
  }();
  return res;
}

void BM_SeqSimulatorStep(benchmark::State& state) {
  const Netlist& nl = shared_circuit().netlist;
  SeqSimulator sim(nl);
  Rng rng(1);
  std::vector<V3> in(nl.num_inputs(), V3::kZero);
  for (auto _ : state) {
    for (auto& v : in) v = rng.next_bool() ? V3::kOne : V3::kZero;
    benchmark::DoNotOptimize(sim.step(in));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nl.num_gates()));
}
BENCHMARK(BM_SeqSimulatorStep);

void BM_ParallelFaultSim(benchmark::State& state) {
  const Netlist& nl = shared_circuit().netlist;
  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  for (const auto& cf : collapsed) faults.push_back(cf.representative);
  const auto seqs = make_random_sequences(nl, 2, 32, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_fault_simulation(nl, faults, seqs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_ParallelFaultSim);

void BM_BddReachability(benchmark::State& state) {
  const Netlist& nl = shared_circuit().netlist;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_reachable(nl));
  }
}
BENCHMARK(BM_BddReachability);

void BM_EspressoMinimize(benchmark::State& state) {
  // Random 8-variable single-output function.
  Rng rng(3);
  const std::size_t nv = 8;
  Cover on, dc;
  for (std::size_t m = 0; m < (1u << nv); ++m) {
    const int k = rng.next_int(0, 5);
    if (k >= 4) continue;
    Cube c;
    c.value = BitVec::from_value(nv, m);
    c.care = BitVec(nv);
    c.care.set_all();
    if (k < 2)
      on.push_back(c);
    else if (k == 2)
      dc.push_back(c);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(espresso_lite(on, dc, nv, {}));
  }
}
BENCHMARK(BM_EspressoMinimize);

void BM_TimeFrameAssignUndo(benchmark::State& state) {
  const Netlist& nl = shared_circuit().netlist;
  TimeFrameModel tfm(nl, std::nullopt, 4);
  Rng rng(5);
  for (auto _ : state) {
    const std::size_t mark = tfm.trail_mark();
    for (int k = 0; k < 8; ++k) {
      const NodeId pi = nl.inputs()[static_cast<std::size_t>(rng.next_int(
          0, static_cast<int>(nl.num_inputs()) - 1))];
      const int frame = rng.next_int(0, 3);
      if (tfm.decision_value(frame, pi) == V3::kX)
        tfm.assign(frame, pi, rng.next_bool() ? V3::kOne : V3::kZero);
    }
    tfm.undo_to(mark);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_TimeFrameAssignUndo);

void BM_ScoapAnalysis(benchmark::State& state) {
  const Netlist& nl = shared_circuit().netlist;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_scoap(nl));
  }
}
BENCHMARK(BM_ScoapAnalysis);

}  // namespace
}  // namespace satpg

BENCHMARK_MAIN();
