// google-benchmark microbenchmarks for the performance-critical substrates:
// logic simulation, parallel fault simulation, BDD reachability, espresso
// minimization, and the time-frame model's event propagation. These guard
// the throughput the experiment harness depends on.
//
// In addition to the google-benchmark suite, main() times the fault
// simulator and the fault-parallel ATPG driver serial-vs-parallel on a
// Table-2-sized circuit and writes BENCH_fsim.json / BENCH_atpg.json so
// both perf trajectories are tracked from PR to PR.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/reach.h"
#include "base/cpu.h"
#include "base/memstats.h"
#include "base/metrics.h"
#include "base/profiler.h"
#include "base/threadpool.h"
#include "harness/build_info.h"
#include "atpg/engine.h"
#include "atpg/parallel.h"
#include "atpg/podem.h"
#include "atpg/scoap.h"
#include "atpg/tfm.h"
#include "base/rng.h"
#include "fsim/fsim.h"
#include "fsm/mcnc_suite.h"
#include "sim/simulator.h"
#include "synth/cover.h"
#include "synth/synthesize.h"

namespace satpg {
namespace {

// One mid-sized circuit shared by the benchmarks (built once).
const SynthResult& shared_circuit() {
  static const SynthResult res = [] {
    FsmGenSpec spec;
    for (const auto& s : mcnc_specs())
      if (s.name == "s820") spec = s;
    const Fsm fsm = generate_control_fsm(scaled_spec(spec, 0.6));
    SynthOptions so;
    so.encode = EncodeAlgo::kOutputDominant;
    return synthesize(fsm, so);
  }();
  return res;
}

void BM_SeqSimulatorStep(benchmark::State& state) {
  const Netlist& nl = shared_circuit().netlist;
  SeqSimulator sim(nl);
  Rng rng(1);
  std::vector<V3> in(nl.num_inputs(), V3::kZero);
  for (auto _ : state) {
    for (auto& v : in) v = rng.next_bool() ? V3::kOne : V3::kZero;
    benchmark::DoNotOptimize(sim.step(in));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nl.num_gates()));
}
BENCHMARK(BM_SeqSimulatorStep);

void BM_ParallelFaultSim(benchmark::State& state) {
  // arg 0: fsim worker threads (1 = serial reference, 0 = hardware).
  const Netlist& nl = shared_circuit().netlist;
  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  for (const auto& cf : collapsed) faults.push_back(cf.representative);
  const auto seqs = make_random_sequences(nl, 2, 32, 7);
  FsimOptions opts;
  opts.num_threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_fault_simulation(nl, faults, seqs, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_ParallelFaultSim)->Arg(1)->Arg(0);

void BM_BddReachability(benchmark::State& state) {
  const Netlist& nl = shared_circuit().netlist;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_reachable(nl));
  }
}
BENCHMARK(BM_BddReachability);

void BM_EspressoMinimize(benchmark::State& state) {
  // Random 8-variable single-output function.
  Rng rng(3);
  const std::size_t nv = 8;
  Cover on, dc;
  for (std::size_t m = 0; m < (1u << nv); ++m) {
    const int k = rng.next_int(0, 5);
    if (k >= 4) continue;
    Cube c;
    c.value = BitVec::from_value(nv, m);
    c.care = BitVec(nv);
    c.care.set_all();
    if (k < 2)
      on.push_back(c);
    else if (k == 2)
      dc.push_back(c);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(espresso_lite(on, dc, nv, {}));
  }
}
BENCHMARK(BM_EspressoMinimize);

void BM_TimeFrameAssignUndo(benchmark::State& state) {
  const Netlist& nl = shared_circuit().netlist;
  TimeFrameModel tfm(nl, std::nullopt, 4);
  Rng rng(5);
  for (auto _ : state) {
    const std::size_t mark = tfm.trail_mark();
    for (int k = 0; k < 8; ++k) {
      const NodeId pi = nl.inputs()[static_cast<std::size_t>(rng.next_int(
          0, static_cast<int>(nl.num_inputs()) - 1))];
      const int frame = rng.next_int(0, 3);
      if (tfm.decision_value(frame, pi) == V3::kX)
        tfm.assign(frame, pi, rng.next_bool() ? V3::kOne : V3::kZero);
    }
    tfm.undo_to(mark);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_TimeFrameAssignUndo);

void BM_ScoapAnalysis(benchmark::State& state) {
  const Netlist& nl = shared_circuit().netlist;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_scoap(nl));
  }
}
BENCHMARK(BM_ScoapAnalysis);

// The build_info block rendered for embedding in fprintf-written JSON.
std::string build_info_str(int indent) {
  std::ostringstream ss;
  write_build_info_json(ss, build_info(), indent);
  return ss.str();
}

// Packed-vs-baseline fault-simulation comparison on the Table-8 replay
// workload (full s820, collapsed faults, 64 random sequences x 32
// frames), written to BENCH_fsim.json. One row for the seed 64-slot
// engine and one wide-engine row per usable SIMD tier; all rows run at
// hardware threads so the comparison isolates the pattern-parallel
// dimension. Detection counts are cross-checked on the spot: every
// engine/tier must agree or the file records a determinism violation.
// v3 adds build_info + host_cpu provenance and per-row cycle costs from
// one extra profiled (untimed) pass per row — cycles are zero under the
// fallback backend, task-clock is always live.
// tools/bench_gate --fsim consumes this file (non-blocking in CI).
void write_fsim_bench_json() {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "s820") spec = s;
  SynthOptions so;
  so.encode = EncodeAlgo::kOutputDominant;
  const SynthResult res = synthesize(generate_control_fsm(spec), so);
  const Netlist& nl = res.netlist;

  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  for (const auto& cf : collapsed) faults.push_back(cf.representative);
  const auto seqs = make_random_sequences(nl, 64, 32, 7);
  const double patterns =
      static_cast<double>(seqs.size()) *
      static_cast<double>(seqs.empty() ? std::size_t{0} : seqs[0].size());
  const unsigned hw = ThreadPool::hardware_threads();

  struct Row {
    std::string label;
    FsimEngine engine;
    SimdTier tier;
    double seconds = 0.0;
    std::size_t detected = 0;
    std::uint64_t peak_bytes = 0;  ///< accounted arena/lane peak (memstats)
    std::uint64_t span_task_ns = 0;  ///< profiled pass: span task-clock
    std::uint64_t span_cycles = 0;   ///< profiled pass: span cycles (perf)
  };
  std::vector<Row> rows;
  rows.push_back({"baseline64", FsimEngine::kBaseline64, SimdTier::kAuto});
  for (const SimdTier tier : {SimdTier::kScalar, SimdTier::kSse2,
                              SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (!fsim_wide_tier_usable(tier)) continue;
    rows.push_back({std::string("wide/") + simd_tier_name(tier),
                    FsimEngine::kWide, tier});
  }

  ProfBackend prof_backend = ProfBackend::kOff;
  for (auto& row : rows) {
    FsimOptions opts;
    opts.num_threads = hw;
    opts.engine = row.engine;
    opts.simd = row.tier;
    // Warm the netlist caches and the thread pool outside the timed runs;
    // the warm pass doubles as the byte-accounted pass (memstats armed),
    // so the timed loop below runs with accounting off.
    MemStatsRegistry::global().reset();
    set_memstats_enabled(true);
    const FsimResult warm = run_fault_simulation(nl, faults, seqs, opts);
    set_memstats_enabled(false);
    row.detected = warm.num_detected;
    row.peak_bytes = MemStatsRegistry::global().snapshot().peak_upper_bound();
    MemStatsRegistry::global().reset();
    // One profiled (untimed) pass per row: where do this engine's cycles
    // go. The timed loop below runs with the profiler disarmed.
    Profiler::global().start();
    run_fault_simulation(nl, faults, seqs, opts);
    Profiler::global().stop();
    const ProfSnapshot prof = Profiler::global().snapshot();
    const ProfPhaseTotals prof_total = prof.total();
    row.span_task_ns = prof_total.counter(ProfCounter::kTaskClockNs);
    row.span_cycles = prof_total.counter(ProfCounter::kCycles);
    prof_backend = prof.backend;
    double best = 1e100;
    for (int r = 0; r < 3; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(run_fault_simulation(nl, faults, seqs, opts));
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      best = std::min(best, s);
    }
    row.seconds = best;
  }

  bool deterministic = true;
  for (const auto& row : rows)
    if (row.detected != rows[0].detected) deterministic = false;
  if (!deterministic)
    std::fprintf(stderr,
                 "BENCH_fsim: DETERMINISM VIOLATION: engines disagree on "
                 "detection counts\n");

  const double base_s = rows[0].seconds;
  double best_speedup = 1.0;
  for (const auto& row : rows)
    best_speedup =
        std::max(best_speedup, base_s / std::max(row.seconds, 1e-12));

  std::FILE* f = std::fopen("BENCH_fsim.json", "w");
  if (!f) {
    std::fprintf(stderr, "BENCH_fsim.json: cannot open for writing\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"satpg.bench_fsim.v3\",\n"
               "  \"bench\": \"fsim_packed_vs_baseline\",\n"
               "  \"circuit\": \"%s\",\n"
               "  \"nodes\": %zu,\n"
               "  \"dffs\": %zu,\n"
               "  \"faults\": %zu,\n"
               "  \"sequences\": %zu,\n"
               "  \"frames_per_sequence\": %zu,\n"
               "  \"num_threads\": %u,\n"
               "  \"build_info\": %s,\n"
               "  \"host_cpu\": \"%s\",\n"
               "  \"profile_backend\": \"%s\",\n"
               "  \"deterministic\": %s,\n"
               "  \"rows\": [\n",
               nl.name().c_str(), nl.num_nodes(), nl.num_dffs(),
               faults.size(), seqs.size(),
               seqs.empty() ? std::size_t{0} : seqs[0].size(), hw,
               build_info_str(16).c_str(), cpu_model_name().c_str(),
               prof_backend_name(prof_backend),
               deterministic ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"seconds\": %.6f, "
                 "\"patterns_per_second\": %.1f, "
                 "\"faults_per_second\": %.1f, "
                 "\"speedup_vs_baseline\": %.3f, "
                 "\"peak_bytes\": %llu, "
                 "\"task_clock_ns_per_pattern\": %.1f, "
                 "\"cycles_per_pattern\": %.1f}%s\n",
                 row.label.c_str(), row.seconds,
                 patterns / std::max(row.seconds, 1e-12),
                 static_cast<double>(faults.size()) /
                     std::max(row.seconds, 1e-12),
                 base_s / std::max(row.seconds, 1e-12),
                 static_cast<unsigned long long>(row.peak_bytes),
                 static_cast<double>(row.span_task_ns) /
                     std::max(patterns, 1.0),
                 static_cast<double>(row.span_cycles) /
                     std::max(patterns, 1.0),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"best_speedup\": %.3f\n"
               "}\n",
               best_speedup);
  std::fclose(f);
  for (const auto& row : rows)
    std::printf("BENCH_fsim.json: %-12s %.3fs  %9.0f patterns/s  %.2fx  "
                "%llu peak bytes  %.0f cyc/pat\n",
                row.label.c_str(), row.seconds,
                patterns / std::max(row.seconds, 1e-12),
                base_s / std::max(row.seconds, 1e-12),
                static_cast<unsigned long long>(row.peak_bytes),
                static_cast<double>(row.span_cycles) /
                    std::max(patterns, 1.0));
}

// Serial-vs-parallel comparison of the fault-parallel ATPG driver
// (DESIGN.md §4d) on a Table-2-sized circuit, written to BENCH_atpg.json.
// Beyond wall time it asserts the determinism contract on the spot: the
// parallel run's eval count must equal the serial run's.
void write_atpg_bench_json() {
  FsmGenSpec spec;
  for (const auto& s : mcnc_specs())
    if (s.name == "s820") spec = s;
  SynthOptions so;
  so.encode = EncodeAlgo::kOutputDominant;
  const SynthResult res = synthesize(generate_control_fsm(spec), so);
  const Netlist& nl = res.netlist;

  ParallelAtpgOptions popts;
  popts.run.engine.eval_limit = 400'000;
  popts.run.engine.backtrack_limit = 600;

  auto time_run = [&](unsigned num_threads, int reps, std::uint64_t* evals) {
    popts.num_threads = num_threads;
    run_parallel_atpg(nl, popts);  // warm caches and the thread pool
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto pr = run_parallel_atpg(nl, popts);
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      best = std::min(best, s);
      *evals = pr.run.evals;
    }
    return best;
  };

  const unsigned hw = ThreadPool::hardware_threads();
  std::uint64_t serial_evals = 0, parallel_evals = 0;
  const double serial_s = time_run(1, 3, &serial_evals);
  const double parallel_s = time_run(hw, 3, &parallel_evals);
  if (serial_evals != parallel_evals)
    std::fprintf(stderr,
                 "BENCH_atpg: DETERMINISM VIOLATION: serial %llu evals vs "
                 "parallel %llu\n",
                 static_cast<unsigned long long>(serial_evals),
                 static_cast<unsigned long long>(parallel_evals));

  std::FILE* f = std::fopen("BENCH_atpg.json", "w");
  if (!f) {
    std::fprintf(stderr, "BENCH_atpg.json: cannot open for writing\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"atpg_serial_vs_parallel\",\n"
               "  \"circuit\": \"%s\",\n"
               "  \"nodes\": %zu,\n"
               "  \"dffs\": %zu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"serial_seconds\": %.6f,\n"
               "  \"parallel_num_threads\": %u,\n"
               "  \"parallel_seconds\": %.6f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"evals\": %llu,\n"
               "  \"deterministic\": %s\n"
               "}\n",
               nl.name().c_str(), nl.num_nodes(), nl.num_dffs(), hw, serial_s,
               hw, parallel_s, serial_s / std::max(parallel_s, 1e-12),
               static_cast<unsigned long long>(serial_evals),
               serial_evals == parallel_evals ? "true" : "false");
  std::fclose(f);
  std::printf("BENCH_atpg.json: serial %.3fs, parallel(x%u) %.3fs, "
              "speedup %.2fx, deterministic=%s\n",
              serial_s, hw, parallel_s,
              serial_s / std::max(parallel_s, 1e-12),
              serial_evals == parallel_evals ? "true" : "false");
}

// Telemetry overhead guard (DESIGN.md §5/§10): the metrics registry
// promises near-zero cost on the fsim hot path, and the flight recorder
// promises the same for an armed --events-json run on the ATPG search
// path. Times each pair disabled vs enabled (best of 5, interleaved
// against drift) and flags a violation when an enabled run is more than
// 3% slower. Written to BENCH_metrics_overhead.json so the trajectory is
// tracked.
void write_metrics_overhead_json() {
  const Netlist& nl = shared_circuit().netlist;
  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  for (const auto& cf : collapsed) faults.push_back(cf.representative);
  const auto seqs = make_random_sequences(nl, 4, 32, 7);
  FsimOptions opts;
  opts.num_threads = ThreadPool::hardware_threads();

  run_fault_simulation(nl, faults, seqs, opts);  // warm caches + pool
  auto timed_run = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(run_fault_simulation(nl, faults, seqs, opts));
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  // The enabled arm arms BOTH observability planes — the metrics registry
  // and memstats byte accounting — so the 3% budget covers the full cost
  // of an instrumented run, not just the counter half.
  constexpr int kReps = 5;
  double off_s = 1e100, on_s = 1e100;
  std::uint64_t fsim_peak_bytes = 0;
  for (int r = 0; r < kReps; ++r) {
    set_metrics_enabled(false);
    set_memstats_enabled(false);
    off_s = std::min(off_s, timed_run());
    MetricsRegistry::global().reset();
    MemStatsRegistry::global().reset();
    set_metrics_enabled(true);
    set_memstats_enabled(true);
    on_s = std::min(on_s, timed_run());
    fsim_peak_bytes =
        MemStatsRegistry::global().snapshot().peak_upper_bound();
    set_metrics_enabled(false);
    set_memstats_enabled(false);
  }
  const double overhead = on_s / std::max(off_s, 1e-12) - 1.0;
  const bool ok = overhead < 0.03;
  if (!ok)
    std::fprintf(stderr,
                 "BENCH_metrics_overhead: METRICS OVERHEAD VIOLATION: "
                 "enabled %.6fs vs disabled %.6fs (%.2f%% > 3%%)\n",
                 on_s, off_s, overhead * 100.0);

  // Flight-recorder pair: a full parallel ATPG run with the recorder
  // disarmed vs armed. The event buffers ride the existing merge, so the
  // only admissible cost is appending to per-attempt vectors.
  ParallelAtpgOptions popts;
  popts.run.engine.eval_limit = 60'000;
  popts.run.engine.backtrack_limit = 200;
  popts.num_threads = ThreadPool::hardware_threads();
  auto timed_atpg = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(run_parallel_atpg(nl, popts));
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  run_parallel_atpg(nl, popts);  // warm caches and the thread pool
  double ev_off_s = 1e100, ev_on_s = 1e100;
  for (int r = 0; r < kReps; ++r) {
    popts.record_events = false;
    ev_off_s = std::min(ev_off_s, timed_atpg());
    popts.record_events = true;
    ev_on_s = std::min(ev_on_s, timed_atpg());
  }
  const double ev_overhead = ev_on_s / std::max(ev_off_s, 1e-12) - 1.0;
  const bool ev_ok = ev_overhead < 0.03;
  if (!ev_ok)
    std::fprintf(stderr,
                 "BENCH_metrics_overhead: EVENTS OVERHEAD VIOLATION: "
                 "armed %.6fs vs disabled %.6fs (%.2f%% > 3%%)\n",
                 ev_on_s, ev_off_s, ev_overhead * 100.0);

  // Profiler pair: the same fsim workload with the cycle profiler
  // disarmed vs armed. The fsim spans are coarse (one per good-machine
  // pass / 63-fault batch / kernel dispatch), so an armed run must stay
  // inside the same 3% budget as the metrics registry.
  double prof_off_s = 1e100, prof_on_s = 1e100;
  for (int r = 0; r < kReps; ++r) {
    prof_off_s = std::min(prof_off_s, timed_run());
    Profiler::global().start();
    prof_on_s = std::min(prof_on_s, timed_run());
    Profiler::global().stop();
  }
  const double prof_overhead = prof_on_s / std::max(prof_off_s, 1e-12) - 1.0;
  const bool prof_ok = prof_overhead < 0.03;
  if (!prof_ok)
    std::fprintf(stderr,
                 "BENCH_metrics_overhead: PROFILER OVERHEAD VIOLATION: "
                 "armed %.6fs vs disabled %.6fs (%.2f%% > 3%%)\n",
                 prof_on_s, prof_off_s, prof_overhead * 100.0);

  std::FILE* f = std::fopen("BENCH_metrics_overhead.json", "w");
  if (!f) {
    std::fprintf(stderr,
                 "BENCH_metrics_overhead.json: cannot open for writing\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fsim_metrics_overhead\",\n"
               "  \"circuit\": \"%s\",\n"
               "  \"faults\": %zu,\n"
               "  \"disabled_seconds\": %.6f,\n"
               "  \"enabled_seconds\": %.6f,\n"
               "  \"overhead_fraction\": %.4f,\n"
               "  \"budget_fraction\": 0.03,\n"
               "  \"within_budget\": %s,\n"
               "  \"fsim_peak_bytes\": %llu,\n"
               "  \"events_disabled_seconds\": %.6f,\n"
               "  \"events_armed_seconds\": %.6f,\n"
               "  \"events_overhead_fraction\": %.4f,\n"
               "  \"events_within_budget\": %s,\n"
               "  \"profile_disabled_seconds\": %.6f,\n"
               "  \"profile_armed_seconds\": %.6f,\n"
               "  \"profile_overhead_fraction\": %.4f,\n"
               "  \"profile_within_budget\": %s\n"
               "}\n",
               nl.name().c_str(), faults.size(), off_s, on_s, overhead,
               ok ? "true" : "false",
               static_cast<unsigned long long>(fsim_peak_bytes), ev_off_s,
               ev_on_s, ev_overhead, ev_ok ? "true" : "false", prof_off_s,
               prof_on_s, prof_overhead, prof_ok ? "true" : "false");
  std::fclose(f);
  std::printf("BENCH_metrics_overhead.json: disabled %.3fs, enabled %.3fs, "
              "overhead %.2f%% (budget 3%%)\n",
              off_s, on_s, overhead * 100.0);
  std::printf("BENCH_metrics_overhead.json: events disabled %.3fs, "
              "armed %.3fs, overhead %.2f%% (budget 3%%)\n",
              ev_off_s, ev_on_s, ev_overhead * 100.0);
  std::printf("BENCH_metrics_overhead.json: profiler disabled %.3fs, "
              "armed %.3fs, overhead %.2f%% (budget 3%%)\n",
              prof_off_s, prof_on_s, prof_overhead * 100.0);
}

}  // namespace
}  // namespace satpg

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  satpg::write_fsim_bench_json();
  satpg::write_atpg_bench_json();
  satpg::write_metrics_overhead_json();
  return 0;
}
