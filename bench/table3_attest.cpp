// Regenerates the paper's Table 3: the forward-time engine (Attest
// stand-in) on the five pairs with the most dramatic differences.
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Table 3: Attest-substitute (forward-time engine) results",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_table3_attest(suite, opts);
      });
}
