// Ablation: fault coverage/efficiency as a function of the per-fault search
// budget on a retimed circuit — the non-linear CPU/coverage relationship
// the paper cautions about when reading Table 6.
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Ablation: per-fault budget vs attained coverage",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_ablation_budget(suite, opts);
      });
}
