// Regenerates the paper's Table 6: states traversed by the ATPG, exact
// valid-state counts (BDD reachability), total state-space size, and the
// paper's headline metric — density of encoding.
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Table 6: HITEC-substitute state traversal information",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_table6_density(suite, opts);
      });
}
