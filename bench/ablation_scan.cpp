// Extension: the DFT answer the paper's conclusion points at — scan
// insertion on retimed circuits restores testability that sequential ATPG
// cannot reach within budget.
#include "bench_main.h"
#include "harness/extensions.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Extension: scan DFT on retimed circuits",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_ablation_scan(suite, opts);
      });
}
