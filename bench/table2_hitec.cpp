// Regenerates the paper's Table 2: HITEC-substitute results on every
// original/retimed circuit pair — fault coverage, fault efficiency, the
// deterministic CPU metric, and the retimed/original CPU ratio.
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Table 2: HITEC-substitute ATPG results",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_table2_hitec(suite, opts);
      });
}
