// Regenerates the paper's Table 1: the FSM population used to synthesize
// every circuit in the study (PI/PO/state counts; the min-states column
// shows what the stamina-substitute collapses each machine to).
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Table 1: finite state machines used to synthesize circuits",
      [](satpg::Suite& suite, const satpg::ExperimentOptions&) {
        return satpg::run_table1_fsms(suite);
      });
}
