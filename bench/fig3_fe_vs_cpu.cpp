// Regenerates the paper's Figure 3: ATPG CPU (work metric) against fault
// efficiency attained, one series per circuit of the Table 7 ladder. As
// density of encoding falls, the work needed for a given FE level grows.
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Figure 3: ATPG performance vs density of encoding",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_fig3_fe_vs_cpu(suite, opts);
      });
}
