// Regenerates the paper's Table 8: for the four lowest-coverage retimed
// circuits, the states the ATPG managed to traverse versus the states (and
// coverage) the ORIGINAL circuit's test set achieves when replayed on the
// retimed circuit (retiming preserves testability — Theorem 1).
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv,
      "Table 8: states needed for higher coverage (original-test replay)",
      [](satpg::Suite& suite, const satpg::ExperimentOptions& opts) {
        return satpg::run_table8_replay(suite, opts);
      });
}
