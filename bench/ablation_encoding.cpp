// Ablation: density of encoding varied directly through the state encoder
// (minimum-bit vs one-hot) with NO retiming — isolating the paper's claim
// that density, not retiming per se, drives ATPG complexity.
#include "bench_main.h"

int main(int argc, char** argv) {
  return satpg::bench_table_main(
      argc, argv, "Ablation: state encoding density without retiming",
      [](satpg::Suite&, const satpg::ExperimentOptions& opts) {
        return satpg::run_ablation_encoding(opts);
      });
}
