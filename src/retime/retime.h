// Retiming (Leiserson-Saxe) — the transformation at the heart of the study.
//
// The netlist is abstracted into the classic retiming graph: vertices are
// combinational gates plus a single host vertex (all PIs, POs, and
// constants), edges are connections with weight = number of flip-flops on
// them. A retiming is a lag function r: V -> Z with r(host) = 0; edge
// weights transform as w_r(e) = w(e) + r(head) - r(tail) and must stay
// non-negative.
//
// Feasibility for a target clock period uses the FEAS relaxation
// (Leiserson-Saxe §8 / Shenoy-Rudell): repeatedly compute combinational
// arrival times under the current lags and increment the lag of every
// vertex whose arrival exceeds the target; a legal retiming exists iff this
// converges within |V| rounds. Minimum period is found by binary search.
//
// Rebuild shares flip-flops on fanout stems through per-driver FF chains
// (a stem with branch weights w1..wk materializes max(wi) FFs and taps each
// branch at depth wi), which is how SIS's retime materializes registers.
// All rebuilt FFs power up unknown — the circuits' explicit reset line
// remains the initialization mechanism, matching the paper's setup.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace satpg {

/// Retiming graph; vertex 0 is the host.
struct RetimeGraph {
  struct Edge {
    int from;
    int to;
    int weight;           ///< flip-flops on the connection
    // Rebuild bookkeeping: the concrete connection this edge models.
    NodeId source_node = kNoNode;  ///< driving PI/const/gate in the netlist
    NodeId sink_node = kNoNode;    ///< consuming gate or OUTPUT marker
    int sink_slot = 0;             ///< fanin slot at the sink
    /// The actual DFF nodes traversed (sink-side first). Fanout branches
    /// sharing a register chain list the same NodeIds — structural
    /// analyses use this to identify flip-flops exactly.
    std::vector<NodeId> ffs;
  };
  std::vector<double> delay;       ///< per vertex; host = 0
  std::vector<Edge> edges;
  std::vector<NodeId> vertex_node; ///< vertex -> gate NodeId (host: kNoNode)

  int num_vertices() const { return static_cast<int>(delay.size()); }
};

/// Build the graph from a netlist (collapsing DFF chains into weights).
RetimeGraph build_retime_graph(const Netlist& nl);

/// Clock period of the graph under lags `r` (max combinational arrival on
/// the zero-weight subgraph). CHECK-fails if some retimed weight is
/// negative or the zero-weight subgraph is cyclic.
double graph_period(const RetimeGraph& g, const std::vector<int>& r);

/// FEAS: least lag vector achieving `target` period, or std::nullopt.
std::optional<std::vector<int>> feasible_retiming(const RetimeGraph& g,
                                                  double target);

struct RetimeResult {
  Netlist netlist;
  std::vector<int> lag;        ///< per graph vertex (host first, = 0)
  double period_before = 0.0;
  double period_after = 0.0;
};

/// Retime to the minimum feasible clock period (least lags — registers move
/// only where the critical path demands).
RetimeResult retime_min_period(const Netlist& nl, const std::string& name);

/// Retime to `target` with *maximal* backward register shift: after the
/// least-lag solution, vertex lags are greedily incremented as long as the
/// retiming stays legal and the period stays within target. This models the
/// SIS retime behaviour the paper observed — min-period retiming without
/// register-count recovery scatters many registers deep into the next-state
/// logic (Table 2's #DFF column: 5-7 FFs ballooning to 19-28) — and is the
/// transformation used to build the study's ".re" circuit class.
RetimeResult retime_max_shift(const Netlist& nl, double target,
                              const std::string& name);

/// Max-shift retiming at the minimum feasible period.
RetimeResult retime_min_period_max_shift(const Netlist& nl,
                                         const std::string& name);

/// Maximal legal backward lags, ignoring the clock period: the pointwise
/// largest r with w_r >= 0 everywhere and r(host) = 0. Equals each vertex's
/// minimum-weight path to the host (Dijkstra), the standard difference-
/// constraint potential.
std::vector<int> max_backward_lags(const RetimeGraph& g);

/// Flip-flop count of the netlist that rebuild would produce for lags `r`
/// (accounts for FF-chain sharing at fanout stems), without materializing.
std::size_t effective_dff_count(const RetimeGraph& g,
                                const std::vector<int>& r);

/// "Scatter" retiming — the study's .re / .v<k> transformation.
///
/// Starts from the FEAS least-lag solution at the minimum feasible period
/// (so real slack is exploited exactly as SIS's min-period retime would),
/// then sweeps registers backward one gate level at a time — shifting any
/// vertex whose out-edges all still carry a register — until the rebuilt
/// circuit would have at least `target_dffs` flip-flops or no legal shift
/// remains. Level sweeps keep every state loop's register in the loop, so
/// the clock period stays near the loop bound while the register count
/// multiplies: precisely the behaviour the paper observed in SIS-retimed
/// circuits (Table 2's 5-7 FFs ballooning to 19-28; Table 7's ladder).
RetimeResult retime_to_dff_target(const Netlist& nl, std::size_t target_dffs,
                                  const std::string& name);

/// Retime to the smallest achievable period that is <= `target`.
/// CHECK-fails when target is below the minimum feasible period.
RetimeResult retime_to_period(const Netlist& nl, double target,
                              const std::string& name);

/// Minimum feasible clock period without materializing the result.
double min_feasible_period(const Netlist& nl);

// ---- atomic moves (Figure 1/2 of the paper; used by theorem tests) --------

/// Can all of `gate`'s fanins (each currently a DFF output) donate one FF
/// forward across the gate?
bool can_move_forward(const Netlist& nl, NodeId gate);

/// Perform the forward atomic move. The new output FF's initial value is
/// the gate function of the donated FFs' initial values (3-valued), so
/// initialized circuits stay initialized. CHECK-fails if !can_move_forward.
void move_forward(Netlist& nl, NodeId gate);

/// Can the FF driven by `gate` move backward across it? (gate must feed
/// exactly one DFF and nothing else).
bool can_move_backward(const Netlist& nl, NodeId gate);

/// Perform the backward atomic move; new input FFs power up unknown unless
/// a unique consistent preimage of the old FF's initial value exists.
void move_backward(Netlist& nl, NodeId gate);

}  // namespace satpg
