#include "retime/retime.h"

#include <algorithm>
#include <map>
#include <optional>

#include "sim/simulator.h"

namespace satpg {

RetimeGraph build_retime_graph(const Netlist& nl) {
  RetimeGraph g;
  g.delay.push_back(0.0);         // host
  g.vertex_node.push_back(kNoNode);

  std::vector<int> vertex_of(nl.num_nodes(), -1);
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto& n = nl.node(static_cast<NodeId>(i));
    if (n.dead || !is_combinational(n.type)) continue;
    if (n.type == GateType::kConst0 || n.type == GateType::kConst1)
      continue;  // constants belong to the host (no FF may cross them)
    vertex_of[i] = g.num_vertices();
    g.delay.push_back(n.delay);
    g.vertex_node.push_back(static_cast<NodeId>(i));
  }

  // Trace a connection backward through the DFF chain; returns the source
  // node and the DFFs encountered (sink-side first).
  auto trace = [&nl](NodeId f) {
    std::vector<NodeId> ffs;
    std::size_t guard = 0;
    while (nl.node(f).type == GateType::kDff) {
      ffs.push_back(f);
      f = nl.node(f).fanins[0];
      SATPG_CHECK_MSG(++guard <= nl.num_nodes(),
                      "pure flip-flop cycle in netlist");
    }
    return std::pair<NodeId, std::vector<NodeId>>(f, std::move(ffs));
  };

  auto src_vertex = [&](NodeId src) {
    const int v = vertex_of[static_cast<std::size_t>(src)];
    return v >= 0 ? v : 0;  // PIs and constants are the host
  };

  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const auto& n = nl.node(id);
    if (n.dead) continue;
    const bool comb_sink =
        vertex_of[i] >= 0;  // mapped combinational gates
    const bool po_sink = n.type == GateType::kOutput;
    if (!comb_sink && !po_sink) continue;
    for (std::size_t slot = 0; slot < n.fanins.size(); ++slot) {
      auto [src, ffs] = trace(n.fanins[slot]);
      RetimeGraph::Edge e;
      e.from = src_vertex(src);
      e.to = comb_sink ? vertex_of[i] : 0;
      e.weight = static_cast<int>(ffs.size());
      e.source_node = src;
      e.sink_node = id;
      e.sink_slot = static_cast<int>(slot);
      e.ffs = std::move(ffs);
      g.edges.push_back(e);
    }
  }
  return g;
}

namespace {

std::vector<int> retimed_weights(const RetimeGraph& g,
                                 const std::vector<int>& r) {
  std::vector<int> w;
  w.reserve(g.edges.size());
  for (const auto& e : g.edges)
    w.push_back(e.weight + r[static_cast<std::size_t>(e.to)] -
                r[static_cast<std::size_t>(e.from)]);
  return w;
}

// Combinational arrival times treating edges with weight <= 0 as wires.
// Host out-edges launch at 0; host in-edges do not propagate (the host is
// split into source/sink roles). Returns nullopt when the zero-weight
// subgraph is cyclic.
std::optional<std::vector<double>> cp_delta(const RetimeGraph& g,
                                            const std::vector<int>& wr) {
  const int nv = g.num_vertices();
  std::vector<std::vector<std::pair<int, int>>> zin(
      static_cast<std::size_t>(nv));  // (from, edge idx) zero-weight, per to
  std::vector<int> pending(static_cast<std::size_t>(nv), 0);
  std::vector<std::vector<int>> zout(static_cast<std::size_t>(nv));
  for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
    const auto& e = g.edges[ei];
    if (wr[ei] > 0) continue;
    if (e.to == 0) continue;  // host as sink: no propagation out of it
    if (e.from != 0) {
      zin[static_cast<std::size_t>(e.to)].push_back(
          {e.from, static_cast<int>(ei)});
      zout[static_cast<std::size_t>(e.from)].push_back(e.to);
      ++pending[static_cast<std::size_t>(e.to)];
    }
  }
  std::vector<double> delta(static_cast<std::size_t>(nv), 0.0);
  std::vector<int> ready;
  for (int v = 1; v < nv; ++v)
    if (pending[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  std::size_t head = 0;
  std::size_t emitted = 0;
  while (head < ready.size()) {
    const int v = ready[head++];
    ++emitted;
    double in_max = 0.0;
    for (const auto& [u, ei] : zin[static_cast<std::size_t>(v)])
      in_max = std::max(in_max, delta[static_cast<std::size_t>(u)]);
    delta[static_cast<std::size_t>(v)] =
        in_max + g.delay[static_cast<std::size_t>(v)];
    for (int s : zout[static_cast<std::size_t>(v)])
      if (--pending[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
  }
  if (emitted != static_cast<std::size_t>(nv - 1)) return std::nullopt;
  return delta;
}

}  // namespace

double graph_period(const RetimeGraph& g, const std::vector<int>& r) {
  const auto wr = retimed_weights(g, r);
  for (int w : wr) SATPG_CHECK_MSG(w >= 0, "illegal retiming (negative weight)");
  const auto delta = cp_delta(g, wr);
  SATPG_CHECK_MSG(delta.has_value(), "combinational cycle under retiming");
  double period = 0.0;
  for (double d : *delta) period = std::max(period, d);
  return period;
}

std::optional<std::vector<int>> feasible_retiming(const RetimeGraph& g,
                                                  double target) {
  const int nv = g.num_vertices();
  std::vector<int> r(static_cast<std::size_t>(nv), 0);
  for (int iter = 0; iter <= nv; ++iter) {
    const auto wr = retimed_weights(g, r);
    const auto delta = cp_delta(g, wr);
    if (!delta) return std::nullopt;  // conservative: reject this period
    bool violated = false;
    for (int v = 1; v < nv; ++v)
      if ((*delta)[static_cast<std::size_t>(v)] > target + 1e-9) {
        ++r[static_cast<std::size_t>(v)];
        violated = true;
      }
    if (!violated) {
      // Final legality check (host edges can still be negative).
      for (std::size_t ei = 0; ei < g.edges.size(); ++ei)
        if (wr[ei] < 0) return std::nullopt;
      return r;
    }
  }
  return std::nullopt;
}

namespace {

// Materialize the retimed netlist. FF chains are shared per source signal.
Netlist rebuild(const Netlist& nl, const RetimeGraph& g,
                const std::vector<int>& r, const std::string& name) {
  const auto wr = retimed_weights(g, r);
  Netlist out(name);

  // Copy PIs, constants, and combinational gates (placeholder fanins).
  std::vector<NodeId> map_node(nl.num_nodes(), kNoNode);
  for (NodeId id : nl.inputs())
    map_node[static_cast<std::size_t>(id)] = out.add_input(nl.node(id).name);
  NodeId any_source = out.inputs().empty() ? kNoNode : out.inputs()[0];
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto& n = nl.node(static_cast<NodeId>(i));
    if (n.dead) continue;
    if (n.type == GateType::kConst0 || n.type == GateType::kConst1) {
      map_node[i] = out.add_const(n.type == GateType::kConst1, n.name);
      if (any_source == kNoNode) any_source = map_node[i];
    }
  }
  SATPG_CHECK(any_source != kNoNode);
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto& n = nl.node(static_cast<NodeId>(i));
    if (n.dead || !is_combinational(n.type)) continue;
    if (map_node[i] != kNoNode) continue;  // constants already copied
    std::vector<NodeId> ph(n.fanins.size(), any_source);
    map_node[i] = out.add_gate(n.type, n.name, ph);
    auto& m = out.node_mut(map_node[i]);
    m.delay = n.delay;
    m.area = n.area;
  }

  // FF chains per source signal, grown on demand. tap(src, 0) = the signal.
  std::map<NodeId, std::vector<NodeId>> chain;  // old src -> new FF stages
  auto tap = [&](NodeId old_src, int depth) -> NodeId {
    const NodeId base = map_node[static_cast<std::size_t>(old_src)];
    SATPG_CHECK(base != kNoNode);
    if (depth == 0) return base;
    auto& stages = chain[old_src];
    while (static_cast<int>(stages.size()) < depth) {
      const NodeId prev = stages.empty() ? base : stages.back();
      stages.push_back(out.add_dff(
          "rt_" + nl.node(old_src).name + "_" +
              std::to_string(stages.size() + 1),
          prev, FfInit::kUnknown));
    }
    return stages[static_cast<std::size_t>(depth - 1)];
  };

  // Wire every recorded connection.
  for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
    const auto& e = g.edges[ei];
    const NodeId driver = tap(e.source_node, wr[ei]);
    const auto& sink = nl.node(e.sink_node);
    if (sink.type == GateType::kOutput) {
      out.add_output(sink.name, driver);
    } else {
      out.set_fanin(map_node[static_cast<std::size_t>(e.sink_node)],
                    static_cast<std::size_t>(e.sink_slot), driver);
    }
  }
  out.compact();
  SATPG_CHECK(out.validate() == std::nullopt);
  return out;
}

}  // namespace

double min_feasible_period(const Netlist& nl) {
  const RetimeGraph g = build_retime_graph(nl);
  const std::vector<int> zero(static_cast<std::size_t>(g.num_vertices()), 0);
  double lo = 0.0;
  for (double d : g.delay) lo = std::max(lo, d);
  double hi = graph_period(g, zero);
  std::vector<int> best = zero;
  for (int it = 0; it < 48 && hi - lo > 1e-6; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (auto r = feasible_retiming(g, mid)) {
      best = *r;
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return graph_period(g, best);
}

RetimeResult retime_to_period(const Netlist& nl, double target,
                              const std::string& name) {
  const RetimeGraph g = build_retime_graph(nl);
  const std::vector<int> zero(static_cast<std::size_t>(g.num_vertices()), 0);
  RetimeResult res{Netlist(""), {}, graph_period(g, zero), 0.0};
  auto r = feasible_retiming(g, target);
  SATPG_CHECK_MSG(r.has_value(), "retime_to_period: target infeasible");
  res.lag = *r;
  res.period_after = graph_period(g, res.lag);
  res.netlist = rebuild(nl, g, res.lag, name);
  return res;
}

RetimeResult retime_min_period(const Netlist& nl, const std::string& name) {
  return retime_to_period(nl, min_feasible_period(nl) + 1e-7, name);
}

RetimeResult retime_max_shift(const Netlist& nl, double target,
                              const std::string& name) {
  const RetimeGraph g = build_retime_graph(nl);
  const std::vector<int> zero(static_cast<std::size_t>(g.num_vertices()), 0);
  RetimeResult res{Netlist(""), {}, graph_period(g, zero), 0.0};
  auto base = feasible_retiming(g, target);
  SATPG_CHECK_MSG(base.has_value(), "retime_max_shift: target infeasible");
  std::vector<int> r = *base;

  auto legal_within_target = [&](const std::vector<int>& cand) {
    const auto wr = retimed_weights(g, cand);
    for (int w : wr)
      if (w < 0) return false;
    const auto delta = cp_delta(g, wr);
    if (!delta) return false;
    for (double d : *delta)
      if (d > target + 1e-9) return false;
    return true;
  };

  // Greedy maximal shift: push every vertex's lag as far as legality and
  // the target period allow. Any vertex with a path to the host is bounded
  // by that path's weight; the explicit cap below guards the degenerate
  // case of logic with no path to any output (an isolated loop could
  // otherwise shift forever).
  int total_weight = 0;
  for (const auto& e : g.edges) total_weight += e.weight;
  const int lag_cap = total_weight + g.num_vertices() + 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int v = 1; v < g.num_vertices(); ++v) {
      if (r[static_cast<std::size_t>(v)] >=
          (*base)[static_cast<std::size_t>(v)] + lag_cap)
        continue;
      std::vector<int> cand = r;
      ++cand[static_cast<std::size_t>(v)];
      if (legal_within_target(cand)) {
        r = std::move(cand);
        changed = true;
      }
    }
  }
  res.lag = r;
  res.period_after = graph_period(g, r);
  res.netlist = rebuild(nl, g, r, name);
  return res;
}

RetimeResult retime_min_period_max_shift(const Netlist& nl,
                                         const std::string& name) {
  return retime_max_shift(nl, min_feasible_period(nl) + 1e-7, name);
}

std::vector<int> max_backward_lags(const RetimeGraph& g) {
  // Min-weight distance from each vertex to the host over forward edges
  // (Dijkstra on the reversed graph from the host; weights >= 0).
  const int nv = g.num_vertices();
  constexpr int kInf = 1 << 29;
  std::vector<std::vector<std::pair<int, int>>> radj(
      static_cast<std::size_t>(nv));  // reversed: to -> (from, w)
  for (const auto& e : g.edges)
    radj[static_cast<std::size_t>(e.to)].push_back({e.from, e.weight});
  std::vector<int> dist(static_cast<std::size_t>(nv), kInf);
  dist[0] = 0;
  // Dijkstra via repeated scans (graphs are small; no heap needed).
  std::vector<bool> done(static_cast<std::size_t>(nv), false);
  for (int round = 0; round < nv; ++round) {
    int best = -1;
    for (int v = 0; v < nv; ++v)
      if (!done[static_cast<std::size_t>(v)] &&
          dist[static_cast<std::size_t>(v)] < kInf &&
          (best < 0 || dist[static_cast<std::size_t>(v)] <
                           dist[static_cast<std::size_t>(best)]))
        best = v;
    if (best < 0) break;
    done[static_cast<std::size_t>(best)] = true;
    for (const auto& [u, w] : radj[static_cast<std::size_t>(best)]) {
      const int cand = dist[static_cast<std::size_t>(best)] + w;
      if (cand < dist[static_cast<std::size_t>(u)])
        dist[static_cast<std::size_t>(u)] = cand;
    }
  }
  // Unreachable-from-host logic (no path to any output) cannot shift.
  for (auto& d : dist)
    if (d >= kInf) d = 0;
  return dist;
}

std::size_t effective_dff_count(const RetimeGraph& g,
                                const std::vector<int>& r) {
  const auto wr = retimed_weights(g, r);
  // Chains are shared per driving signal: a source whose out-edges need
  // weights w1..wk materializes max(wi) flip-flops.
  std::map<NodeId, int> max_w;
  for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
    int& m = max_w[g.edges[ei].source_node];
    m = std::max(m, wr[ei]);
  }
  std::size_t total = 0;
  for (const auto& [src, m] : max_w) total += static_cast<std::size_t>(m);
  return total;
}

RetimeResult retime_to_dff_target(const Netlist& nl, std::size_t target_dffs,
                                  const std::string& name) {
  const RetimeGraph g = build_retime_graph(nl);
  const int nv = g.num_vertices();
  const std::vector<int> zero(static_cast<std::size_t>(nv), 0);
  RetimeResult res{Netlist(""), {}, graph_period(g, zero), 0.0};

  // Baseline: least-lag FEAS at the minimum feasible period.
  double lo = 0.0;
  for (double d : g.delay) lo = std::max(lo, d);
  double hi = res.period_before;
  std::vector<int> r = zero;
  for (int it = 0; it < 48 && hi - lo > 1e-6; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (auto cand = feasible_retiming(g, mid)) {
      r = *cand;
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // Out-edge lists for shift eligibility.
  std::vector<std::vector<std::size_t>> out_edges(
      static_cast<std::size_t>(nv));
  for (std::size_t ei = 0; ei < g.edges.size(); ++ei)
    out_edges[static_cast<std::size_t>(g.edges[ei].from)].push_back(ei);

  // Level sweeps: shift every currently-eligible vertex once per round
  // (deterministic vertex order), stopping as soon as the effective FF
  // count reaches the target.
  const int kMaxRounds = 64;
  for (int round = 0;
       round < kMaxRounds && effective_dff_count(g, r) < target_dffs;
       ++round) {
    const auto wr = retimed_weights(g, r);
    bool any = false;
    for (int v = 1; v < nv; ++v) {
      const auto& oe = out_edges[static_cast<std::size_t>(v)];
      if (oe.empty()) continue;
      bool eligible = true;
      for (std::size_t ei : oe) {
        // Shifting v and possibly other vertices this round: use the
        // round-start weights; requiring w >= 1 keeps the all-at-once
        // round legal regardless of which heads also shift.
        if (wr[ei] < 1) {
          eligible = false;
          break;
        }
      }
      if (eligible) {
        ++r[static_cast<std::size_t>(v)];
        any = true;
      }
      if (effective_dff_count(g, r) >= target_dffs) break;
    }
    if (!any) break;
  }

  res.lag = r;
  res.period_after = graph_period(g, r);  // CHECKs legality
  res.netlist = rebuild(nl, g, r, name);
  return res;
}

// ---- atomic moves -----------------------------------------------------------

bool can_move_forward(const Netlist& nl, NodeId gate) {
  const auto& n = nl.node(gate);
  if (!is_combinational(n.type) || n.fanins.empty()) return false;
  if (n.type == GateType::kConst0 || n.type == GateType::kConst1)
    return false;
  for (NodeId f : n.fanins)
    if (nl.node(f).type != GateType::kDff) return false;
  return true;
}

void move_forward(Netlist& nl, NodeId gate) {
  SATPG_CHECK(can_move_forward(nl, gate));
  const std::vector<NodeId> old_ffs = nl.node(gate).fanins;

  // New initial value = gate function over old initial values.
  std::vector<V3> vals(nl.num_nodes(), V3::kX);
  for (NodeId f : old_ffs) {
    const auto init = nl.node(f).init;
    vals[static_cast<std::size_t>(f)] =
        init == FfInit::kZero ? V3::kZero
        : init == FfInit::kOne ? V3::kOne
                               : V3::kX;
  }
  const V3 new_init = eval_gate_v3(nl.node(gate).type,
                                   nl.node(gate).fanins, vals);

  // Record the gate's current fanouts before rewiring.
  std::vector<NodeId> readers;
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto& n = nl.node(static_cast<NodeId>(i));
    if (n.dead) continue;
    for (NodeId f : n.fanins)
      if (f == gate) {
        readers.push_back(static_cast<NodeId>(i));
        break;
      }
  }

  // Bypass the input FFs.
  for (std::size_t s = 0; s < old_ffs.size(); ++s)
    nl.set_fanin(gate, s, nl.node(old_ffs[s]).fanins[0]);

  // Insert the output FF and redirect former readers to it.
  const NodeId q = nl.add_dff(
      "fw_" + nl.node(gate).name, gate,
      new_init == V3::kZero ? FfInit::kZero
      : new_init == V3::kOne ? FfInit::kOne
                             : FfInit::kUnknown);
  for (NodeId rd : readers) {
    auto& rn = nl.node_mut(rd);
    for (auto& f : rn.fanins)
      if (f == gate) f = q;
  }

  // Old FFs that lost their last reader disappear.
  const auto& fo = nl.fanouts();
  for (NodeId f : old_ffs)
    if (!nl.node(f).dead && fo[static_cast<std::size_t>(f)].empty())
      nl.kill_node(f);
}

bool can_move_backward(const Netlist& nl, NodeId gate) {
  const auto& n = nl.node(gate);
  if (!is_combinational(n.type) || n.fanins.empty()) return false;
  if (n.type == GateType::kConst0 || n.type == GateType::kConst1)
    return false;
  const auto& fo = nl.fanouts()[static_cast<std::size_t>(gate)];
  return fo.size() == 1 && nl.node(fo[0]).type == GateType::kDff;
}

void move_backward(Netlist& nl, NodeId gate) {
  SATPG_CHECK(can_move_backward(nl, gate));
  const NodeId q = nl.fanouts()[static_cast<std::size_t>(gate)][0];
  const auto q_init = nl.node(q).init;
  const auto fanins = nl.node(gate).fanins;

  // Unique-preimage initial values when the old FF was initialized.
  std::vector<FfInit> new_init(fanins.size(), FfInit::kUnknown);
  if (q_init != FfInit::kUnknown && fanins.size() <= 6) {
    const V3 want = q_init == FfInit::kZero ? V3::kZero : V3::kOne;
    int matches = 0;
    std::vector<bool> match_combo;
    for (unsigned combo = 0; combo < (1u << fanins.size()); ++combo) {
      std::vector<V3> vals(nl.num_nodes(), V3::kX);
      for (std::size_t i = 0; i < fanins.size(); ++i)
        vals[static_cast<std::size_t>(fanins[i])] =
            (combo >> i) & 1u ? V3::kOne : V3::kZero;
      if (eval_gate_v3(nl.node(gate).type, fanins, vals) == want) {
        ++matches;
        match_combo.assign(fanins.size(), false);
        for (std::size_t i = 0; i < fanins.size(); ++i)
          match_combo[i] = (combo >> i) & 1u;
      }
    }
    if (matches == 1)
      for (std::size_t i = 0; i < fanins.size(); ++i)
        new_init[i] = match_combo[i] ? FfInit::kOne : FfInit::kZero;
  }

  // Insert one FF per fanin.
  for (std::size_t s = 0; s < fanins.size(); ++s) {
    const NodeId ff = nl.add_dff(
        "bw_" + nl.node(gate).name + "_" + std::to_string(s), fanins[s],
        new_init[s]);
    nl.set_fanin(gate, s, ff);
  }
  // Readers of q now read the gate.
  nl.replace_uses(q, gate);
  nl.kill_node(q);
}

}  // namespace satpg
