#include "dft/scan.h"

#include <algorithm>
#include <set>

#include "synth/library.h"

namespace satpg {

namespace {

// FF dependency graph: edge i -> j when FF j's D cone reads FF i's Q
// through combinational logic only (direct FF-to-FF wires count too).
std::vector<std::vector<int>> ff_dependency_graph(const Netlist& nl) {
  const int n = static_cast<int>(nl.num_dffs());
  std::vector<int> ff_index(nl.num_nodes(), -1);
  for (std::size_t i = 0; i < nl.dffs().size(); ++i)
    ff_index[static_cast<std::size_t>(nl.dffs()[i])] = static_cast<int>(i);

  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  const auto& fanouts = nl.fanouts();
  for (int i = 0; i < n; ++i) {
    std::vector<bool> seen(nl.num_nodes(), false);
    std::vector<NodeId> stack{nl.dffs()[static_cast<std::size_t>(i)]};
    std::set<int> hits;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId s : fanouts[static_cast<std::size_t>(u)]) {
        if (seen[static_cast<std::size_t>(s)]) continue;
        seen[static_cast<std::size_t>(s)] = true;
        const auto& node = nl.node(s);
        if (node.type == GateType::kDff)
          hits.insert(ff_index[static_cast<std::size_t>(s)]);
        else if (node.type != GateType::kOutput)
          stack.push_back(s);
      }
    }
    for (int h : hits) adj[static_cast<std::size_t>(i)].push_back(h);
  }
  return adj;
}

// Is the subgraph induced by keeping only `alive` vertices acyclic?
bool acyclic_without(const std::vector<std::vector<int>>& adj,
                     const std::vector<bool>& removed) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (int u = 0; u < n; ++u) {
    if (removed[static_cast<std::size_t>(u)]) continue;
    for (int v : adj[static_cast<std::size_t>(u)])
      if (!removed[static_cast<std::size_t>(v)])
        ++indeg[static_cast<std::size_t>(v)];
  }
  std::vector<int> ready;
  int alive = 0;
  for (int v = 0; v < n; ++v) {
    if (removed[static_cast<std::size_t>(v)]) continue;
    ++alive;
    if (indeg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }
  int emitted = 0;
  while (!ready.empty()) {
    const int v = ready.back();
    ready.pop_back();
    ++emitted;
    for (int s : adj[static_cast<std::size_t>(v)]) {
      if (removed[static_cast<std::size_t>(s)]) continue;
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  return emitted == alive;
}

}  // namespace

bool breaks_all_cycles(const Netlist& nl,
                       const std::vector<NodeId>& scanned) {
  const auto adj = ff_dependency_graph(nl);
  std::vector<bool> removed(nl.num_dffs(), false);
  std::vector<int> ff_index(nl.num_nodes(), -1);
  for (std::size_t i = 0; i < nl.dffs().size(); ++i)
    ff_index[static_cast<std::size_t>(nl.dffs()[i])] = static_cast<int>(i);
  for (NodeId ff : scanned) {
    const int idx = ff_index[static_cast<std::size_t>(ff)];
    SATPG_CHECK_MSG(idx >= 0, "breaks_all_cycles: not a DFF");
    removed[static_cast<std::size_t>(idx)] = true;
  }
  return acyclic_without(adj, removed);
}

std::vector<NodeId> select_cycle_breaking_ffs(const Netlist& nl) {
  const auto adj = ff_dependency_graph(nl);
  const int n = static_cast<int>(adj.size());
  std::vector<bool> removed(static_cast<std::size_t>(n), false);
  std::vector<NodeId> picked;

  // Greedy: while cyclic, remove the vertex with the highest degree
  // product (classic MFVS heuristic); self-loop vertices first.
  while (!acyclic_without(adj, removed)) {
    int best = -1;
    long best_score = -1;
    for (int v = 0; v < n; ++v) {
      if (removed[static_cast<std::size_t>(v)]) continue;
      long out = 0, in = 0;
      bool self = false;
      for (int s : adj[static_cast<std::size_t>(v)]) {
        if (removed[static_cast<std::size_t>(s)]) continue;
        ++out;
        if (s == v) self = true;
      }
      for (int u = 0; u < n; ++u) {
        if (removed[static_cast<std::size_t>(u)]) continue;
        for (int s : adj[static_cast<std::size_t>(u)])
          if (s == v) ++in;
      }
      const long score = (self ? 1'000'000 : 0) + in * out;
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    SATPG_CHECK(best >= 0);
    removed[static_cast<std::size_t>(best)] = true;
    picked.push_back(nl.dffs()[static_cast<std::size_t>(best)]);
  }
  return picked;
}

ScanResult insert_partial_scan(const Netlist& nl,
                               const std::vector<NodeId>& ffs) {
  for (NodeId ff : ffs)
    SATPG_CHECK_MSG(nl.node(ff).type == GateType::kDff,
                    "insert_partial_scan: id is not a DFF");

  ScanResult res{nl.clone(nl.name() + ".scan"), {}, kNoNode, kNoNode,
                 kNoNode};
  Netlist& out = res.netlist;
  res.scan_in = out.add_input("scan_in");
  res.scan_en = out.add_input("scan_en");
  const NodeId nse = out.add_gate(GateType::kNot, "scan_nen", {res.scan_en});

  NodeId prev_q = res.scan_in;
  int seq = 0;
  for (NodeId ff : ffs) {
    // Same id space: clone preserves node ids.
    const NodeId d = out.node(ff).fanins[0];
    const std::string base = "scan" + std::to_string(seq++);
    // D' = (D & !scan_en) | (prev_q & scan_en)
    const NodeId func = out.add_gate(GateType::kAnd, base + "_func",
                                     {d, nse});
    const NodeId shift = out.add_gate(GateType::kAnd, base + "_shift",
                                      {prev_q, res.scan_en});
    const NodeId mux = out.add_gate(GateType::kOr, base + "_mux",
                                    {func, shift});
    out.set_fanin(ff, 0, mux);
    prev_q = ff;
    res.chain.push_back(ff);
  }
  res.scan_out = out.add_output("scan_out", prev_q);
  annotate_library(out);
  SATPG_CHECK(out.validate() == std::nullopt);
  return res;
}

ScanResult insert_full_scan(const Netlist& nl) {
  return insert_partial_scan(nl, nl.dffs());
}

}  // namespace satpg
