// Scan design-for-testability transformations.
//
// The paper's closing argument is that understanding what makes sequential
// ATPG expensive should drive DFT decisions. This module provides the
// classic answer the industry converged on: replace flip-flops with scan
// flip-flops so state becomes directly controllable/observable and the
// sequential problem collapses to a combinational one.
//
// Model: a scan flip-flop is a DFF with a 2:1 mux in front of D —
//   D' = scan_en ? scan_in : D
// Scan FFs are stitched into a chain: scan_in of the first is the new
// primary input "scan_in"; each subsequent FF's scan input is the previous
// FF's Q; the last Q drives the new primary output "scan_out". The mux is
// synthesized from library gates (AND/AND/OR + NOT), so the transformed
// netlist stays in the plain gate vocabulary every analysis understands.
//
// Full scan includes every FF; partial scan takes an explicit subset (the
// classic cycle-breaking heuristic `select_cycle_breaking_ffs` picks FFs
// whose removal from the FF dependency graph breaks all state cycles —
// Cheng/Agrawal style).
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace satpg {

struct ScanResult {
  Netlist netlist;
  std::vector<NodeId> chain;  ///< scanned FFs in chain order (new netlist ids)
  NodeId scan_in = kNoNode;   ///< added PI
  NodeId scan_en = kNoNode;   ///< added PI
  NodeId scan_out = kNoNode;  ///< added PO marker
};

/// Full scan: every flip-flop joins the chain.
ScanResult insert_full_scan(const Netlist& nl);

/// Partial scan over the given FF subset (ids in `nl`; order = chain
/// order). CHECK-fails on non-DFF ids.
ScanResult insert_partial_scan(const Netlist& nl,
                               const std::vector<NodeId>& ffs);

/// Cycle-breaking FF selection: greedily pick flip-flops until the FF
/// dependency graph (self-loops included) is acyclic. Returns ids in `nl`.
std::vector<NodeId> select_cycle_breaking_ffs(const Netlist& nl);

/// Number of state cycles remaining if `scanned` were removed from the FF
/// dependency graph — 0 means combinationally testable with time-frame
/// count bounded by the remaining depth. (Cheap SCC-based check, exposed
/// for tests and reports.)
bool breaks_all_cycles(const Netlist& nl, const std::vector<NodeId>& scanned);

}  // namespace satpg
