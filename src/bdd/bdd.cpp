#include "bdd/bdd.h"

#include <algorithm>

namespace satpg {

BddMgr::BddMgr(unsigned num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
  // Terminal sentinels; var = num_vars_ marks "below all variables".
  nodes_.push_back({num_vars_, 0, 0});  // false
  nodes_.push_back({num_vars_, 1, 1});  // true
}

BddRef BddMgr::mk(unsigned var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  const NodeKey key{var, lo, hi};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_) throw BddOverflow();
  const BddRef r = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(key, r);
  return r;
}

BddRef BddMgr::var(unsigned v) {
  SATPG_CHECK(v < num_vars_);
  return mk(v, 0, 1);
}

BddRef BddMgr::nvar(unsigned v) {
  SATPG_CHECK(v < num_vars_);
  return mk(v, 1, 0);
}

BddRef BddMgr::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;
  const TripleKey key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const unsigned top = std::min({level(f), level(g), level(h)});
  auto cofactor = [&](BddRef r, bool hi) -> BddRef {
    if (level(r) != top) return r;
    return hi ? nodes_[r].hi : nodes_[r].lo;
  };
  const BddRef t = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const BddRef e =
      ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const BddRef r = mk(top, e, t);
  ite_cache_.emplace(key, r);
  return r;
}

BddRef BddMgr::bdd_not(BddRef f) { return ite(f, 0, 1); }
BddRef BddMgr::bdd_and(BddRef f, BddRef g) { return ite(f, g, 0); }
BddRef BddMgr::bdd_or(BddRef f, BddRef g) { return ite(f, 1, g); }
BddRef BddMgr::bdd_xor(BddRef f, BddRef g) { return ite(f, bdd_not(g), g); }

BddRef BddMgr::exists_rec(BddRef f, const std::vector<bool>& qvars,
                          std::unordered_map<BddRef, BddRef>& cache) {
  if (f <= 1) return f;
  auto it = cache.find(f);
  if (it != cache.end()) return it->second;
  const Node n = nodes_[f];
  const BddRef lo = exists_rec(n.lo, qvars, cache);
  const BddRef hi = exists_rec(n.hi, qvars, cache);
  const BddRef r = qvars[n.var] ? bdd_or(lo, hi) : mk(n.var, lo, hi);
  cache.emplace(f, r);
  return r;
}

BddRef BddMgr::exists(BddRef f, const std::vector<unsigned>& vars) {
  std::vector<bool> qvars(num_vars_, false);
  for (unsigned v : vars) {
    SATPG_CHECK(v < num_vars_);
    qvars[v] = true;
  }
  std::unordered_map<BddRef, BddRef> cache;
  return exists_rec(f, qvars, cache);
}

BddRef BddMgr::and_exists_rec(
    BddRef f, BddRef g, const std::vector<bool>& qvars,
    std::unordered_map<TripleKey, BddRef, TripleKeyHash>& cache) {
  if (f == 0 || g == 0) return 0;
  if (f == 1 && g == 1) return 1;
  if (f > g) std::swap(f, g);  // AND is commutative; canonicalize cache key
  const TripleKey key{f, g, 0};
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const unsigned top = std::min(level(f), level(g));
  auto cofactor = [&](BddRef r, bool hi) -> BddRef {
    if (level(r) != top) return r;
    return hi ? nodes_[r].hi : nodes_[r].lo;
  };
  const BddRef t = and_exists_rec(cofactor(f, true), cofactor(g, true), qvars,
                                  cache);
  BddRef r;
  if (qvars[top] && t == 1) {
    r = 1;  // short-circuit: ∃x.(1 ∨ e) = 1
  } else {
    const BddRef e = and_exists_rec(cofactor(f, false), cofactor(g, false),
                                    qvars, cache);
    r = qvars[top] ? bdd_or(t, e) : mk(top, e, t);
  }
  cache.emplace(key, r);
  return r;
}

BddRef BddMgr::and_exists(BddRef f, BddRef g,
                          const std::vector<unsigned>& vars) {
  std::vector<bool> qvars(num_vars_, false);
  for (unsigned v : vars) {
    SATPG_CHECK(v < num_vars_);
    qvars[v] = true;
  }
  std::unordered_map<TripleKey, BddRef, TripleKeyHash> cache;
  return and_exists_rec(f, g, qvars, cache);
}

BddRef BddMgr::rename_rec(BddRef f, const std::vector<unsigned>& map,
                          std::unordered_map<BddRef, BddRef>& cache) {
  if (f <= 1) return f;
  auto it = cache.find(f);
  if (it != cache.end()) return it->second;
  const Node n = nodes_[f];
  const BddRef lo = rename_rec(n.lo, map, cache);
  const BddRef hi = rename_rec(n.hi, map, cache);
  const unsigned nv = map[n.var];
  // Monotonicity check: children roots must be strictly below nv.
  SATPG_CHECK_MSG(level(lo) > nv && level(hi) > nv,
                  "BddMgr::rename: non-monotone variable map");
  const BddRef r = mk(nv, lo, hi);
  cache.emplace(f, r);
  return r;
}

BddRef BddMgr::rename(BddRef f, const std::vector<unsigned>& map) {
  SATPG_CHECK(map.size() == num_vars_);
  std::unordered_map<BddRef, BddRef> cache;
  return rename_rec(f, map, cache);
}

double BddMgr::sat_count_rec(BddRef f,
                             std::unordered_map<BddRef, double>& cache) {
  // Returns count over the variables *below* level(f) exclusive — we
  // normalize: count(f) over remaining vars = ... easier: define weight(f) =
  // satisfying fraction, then multiply by 2^nvars at the end.
  if (f == 0) return 0.0;
  if (f == 1) return 1.0;
  auto it = cache.find(f);
  if (it != cache.end()) return it->second;
  const Node n = nodes_[f];
  const double lo = sat_count_rec(n.lo, cache);
  const double hi = sat_count_rec(n.hi, cache);
  // Each child's fraction already accounts for the vars it skips; skipped
  // variables halve nothing because both branches average out. Using
  // fractions makes the skip handling automatic:
  const double r = 0.5 * lo + 0.5 * hi;
  cache.emplace(f, r);
  return r;
}

double BddMgr::sat_count(BddRef f, unsigned nvars) {
  std::unordered_map<BddRef, double> cache;
  const double frac = sat_count_rec(f, cache);
  double scale = 1.0;
  for (unsigned i = 0; i < nvars; ++i) scale *= 2.0;
  return frac * scale;
}

bool BddMgr::eval(BddRef f, const std::vector<bool>& assignment) const {
  while (f > 1) {
    const Node& n = nodes_[f];
    SATPG_DCHECK(n.var < assignment.size());
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == 1;
}

std::vector<unsigned> BddMgr::support(BddRef f) {
  std::vector<bool> seen_node(nodes_.size(), false);
  std::vector<bool> in_support(num_vars_, false);
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (r <= 1 || seen_node[r]) continue;
    seen_node[r] = true;
    in_support[nodes_[r].var] = true;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  std::vector<unsigned> out;
  for (unsigned v = 0; v < num_vars_; ++v)
    if (in_support[v]) out.push_back(v);
  return out;
}

std::vector<std::uint64_t> BddMgr::enumerate(
    BddRef f, const std::vector<unsigned>& vars) {
  SATPG_CHECK_MSG(vars.size() <= 64, "enumerate: too many variables");
  // Verify support ⊆ vars.
  const auto sup = support(f);
  std::vector<int> var_pos(num_vars_, -1);
  for (std::size_t i = 0; i < vars.size(); ++i)
    var_pos[vars[i]] = static_cast<int>(i);
  for (unsigned v : sup)
    SATPG_CHECK_MSG(var_pos[v] >= 0, "enumerate: support exceeds vars");

  // Order vars by level so we can walk the BDD while enumerating skipped
  // variables explicitly.
  std::vector<unsigned> ordered(vars);
  std::sort(ordered.begin(), ordered.end());

  std::vector<std::uint64_t> out;
  // Recursive descent enumerating assignments to `ordered[idx..]`.
  struct Frame {
    BddRef f;
    std::size_t idx;
    std::uint64_t bits;
  };
  std::vector<Frame> stack{{f, 0, 0}};
  while (!stack.empty()) {
    auto [node, idx, bits] = stack.back();
    stack.pop_back();
    if (node == 0) continue;
    if (idx == ordered.size()) {
      SATPG_CHECK(node == 1);
      out.push_back(bits);
      continue;
    }
    const unsigned v = ordered[idx];
    const std::uint64_t bit =
        1ULL << static_cast<unsigned>(var_pos[v]);
    if (level(node) == v) {
      stack.push_back({nodes_[node].lo, idx + 1, bits});
      stack.push_back({nodes_[node].hi, idx + 1, bits | bit});
    } else {
      // Variable skipped: both values lead to the same subgraph.
      stack.push_back({node, idx + 1, bits});
      stack.push_back({node, idx + 1, bits | bit});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace satpg
