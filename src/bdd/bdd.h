// Small ROBDD package.
//
// Purpose-built for exact reachable-state analysis of the study's circuits
// (≤ ~30 flip-flops, ≤ ~30 primary inputs): reduced ordered BDDs with a
// unique table, ITE-based apply, existential quantification, relational
// product (and_exists), and a monotone variable renaming used to map
// next-state variables back onto present-state variables.
//
// Design notes:
//   * No complement edges and no garbage collection — managers are created
//     per analysis and discarded; a hard node cap guards against blowup
//     (BddOverflow is thrown, callers fall back or fail loudly).
//   * Variable indices are "levels": smaller index = closer to the root.
//     Callers choose the order (reachability interleaves present/next state
//     variables, which keeps the transition relation compact).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "base/check.h"

namespace satpg {

using BddRef = std::uint32_t;

struct BddOverflow : std::runtime_error {
  BddOverflow() : std::runtime_error("BDD node limit exceeded") {}
};

class BddMgr {
 public:
  /// `num_vars` is the variable universe size; `node_limit` caps live nodes.
  explicit BddMgr(unsigned num_vars, std::size_t node_limit = 8u << 20);

  unsigned num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  BddRef zero() const { return 0; }
  BddRef one() const { return 1; }

  BddRef var(unsigned v);   ///< literal v
  BddRef nvar(unsigned v);  ///< literal !v

  BddRef bdd_not(BddRef f);
  BddRef bdd_and(BddRef f, BddRef g);
  BddRef bdd_or(BddRef f, BddRef g);
  BddRef bdd_xor(BddRef f, BddRef g);
  BddRef ite(BddRef f, BddRef g, BddRef h);

  /// ∃ vars . f  — `vars` is a set of variable indices (any order).
  BddRef exists(BddRef f, const std::vector<unsigned>& vars);

  /// ∃ vars . (f ∧ g) — relational product with early quantification.
  BddRef and_exists(BddRef f, BddRef g, const std::vector<unsigned>& vars);

  /// Rename variables via `map` (map[v] = new index, or v itself when
  /// unchanged). The map must be strictly monotone on the variables present
  /// in f (checked), so the result stays ordered without reordering.
  BddRef rename(BddRef f, const std::vector<unsigned>& map);

  /// Number of satisfying assignments over `nvars` variables (double — the
  /// study's state spaces reach 2^28).
  double sat_count(BddRef f, unsigned nvars);

  /// Evaluate under a complete assignment (assignment[v] in {0,1}).
  bool eval(BddRef f, const std::vector<bool>& assignment) const;

  /// Enumerate all satisfying assignments restricted to `vars` (other
  /// variables must not appear in f; CHECKed). Returns each assignment as a
  /// bit pattern over vars (bit i corresponds to vars[i]). Intended for
  /// extracting explicit valid-state sets when they are small.
  std::vector<std::uint64_t> enumerate(BddRef f,
                                       const std::vector<unsigned>& vars);

  /// Support: which variables appear in f.
  std::vector<unsigned> support(BddRef f);

 private:
  struct Node {
    unsigned var;
    BddRef lo, hi;
  };
  struct NodeKey {
    unsigned var;
    BddRef lo, hi;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::uint64_t h = k.var;
      h = h * 0x9e3779b97f4a7c15ULL + k.lo;
      h = h * 0x9e3779b97f4a7c15ULL + k.hi;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };
  struct TripleKey {
    BddRef a, b, c;
    bool operator==(const TripleKey&) const = default;
  };
  struct TripleKeyHash {
    std::size_t operator()(const TripleKey& k) const {
      std::uint64_t h = k.a;
      h = h * 0x9e3779b97f4a7c15ULL + k.b;
      h = h * 0x9e3779b97f4a7c15ULL + k.c;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };

  unsigned level(BddRef f) const {
    return f <= 1 ? num_vars_ : nodes_[f].var;
  }
  BddRef mk(unsigned var, BddRef lo, BddRef hi);
  BddRef exists_rec(BddRef f, const std::vector<bool>& qvars,
                    std::unordered_map<BddRef, BddRef>& cache);
  BddRef and_exists_rec(BddRef f, BddRef g, const std::vector<bool>& qvars,
                        std::unordered_map<TripleKey, BddRef, TripleKeyHash>&
                            cache);
  BddRef rename_rec(BddRef f, const std::vector<unsigned>& map,
                    std::unordered_map<BddRef, BddRef>& cache);
  double sat_count_rec(BddRef f,
                       std::unordered_map<BddRef, double>& cache);

  unsigned num_vars_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;  // [0]=false, [1]=true sentinels
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_;
  std::unordered_map<TripleKey, BddRef, TripleKeyHash> ite_cache_;
};

}  // namespace satpg
