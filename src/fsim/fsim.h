// Sequential stuck-at fault simulation (PROOFS substitute).
//
// Semantics follow the HITEC/PROOFS era conventions:
//   * every test sequence starts from the unknown (all-X) power-up state —
//     sequences are self-initializing through the circuit's reset line;
//   * a fault is detected at cycle t when some primary output is a known
//     value in both machines and the values differ (conservative X
//     handling — possible-detects do not count);
//   * faults are permanent: active in every cycle including initialization.
//
// Three engines share the semantics:
//   * a serial three-valued reference (one fault at a time), used for
//     cross-checking and small runs;
//   * a 64-slot bit-parallel engine (slot 0 carries the good machine,
//     slots 1..63 carry faulty machines), one sequence at a time;
//   * a wide pattern-parallel (PPSFP) engine that packs a lane group of
//     PVW::kSubWords sequences into one simulation — one packed
//     good-machine pass per group, and every fault batch simulated across
//     all lanes at once on SIMD kernels selected by a one-time CPUID
//     dispatch (scalar / SSE2 / AVX2 / AVX-512, see DESIGN.md §8). It is
//     the default for multi-sequence grading and the Table 8 replay.
//
// The bit-parallel engines are cone-restricted and parallel: the good
// machine is simulated exactly once per sequence (resp. lane group), each
// 63-fault batch evaluates only nodes inside the union of its fault
// sites' sequential fanout cones (everything outside is known to equal
// the good value), and batches run concurrently on a thread pool.
// Per-worker scratch arenas keep the per-frame hot path allocation-free.
// Results are bit-identical for every thread count, engine, lane width
// and dispatch tier — batches are formed before any batch runs, each
// batch writes only its own faults' flags, lane order equals sequence
// order, and first-detection ties resolve to the lowest lane index.
//
// The good machine's state trajectory is recorded so experiments can count
// the distinct states a test set traverses (Tables 6 and 8).
#pragma once

#include <vector>

#include "base/cpu.h"
#include "fault/fault.h"
#include "netlist/netlist.h"
#include "sim/statekey.h"
#include "sim/value.h"

namespace satpg {

/// One test sequence: per-cycle primary-input vectors (nl.inputs() order).
using TestSequence = std::vector<std::vector<V3>>;

/// Serial reference: cycle index of first detection, or -1.
int simulate_fault_serial(const Netlist& nl, const Fault& fault,
                          const TestSequence& seq);

enum class FsimEngine : std::uint8_t {
  /// Wide engine for multi-sequence runs, 64-slot engine for a single
  /// sequence (where lane padding would waste work, e.g. ATPG inner
  /// loops). Results are identical either way.
  kAuto = 0,
  kBaseline64,  ///< always the one-sequence-at-a-time 64-slot engine
  kWide,        ///< always the pattern-parallel PVW engine
};

struct FsimOptions {
  /// Worker threads for batch-level parallelism: 1 = in-caller serial
  /// execution (the reference path), 0 = one worker per hardware thread.
  /// Results are bit-identical for every value.
  unsigned num_threads = 0;
  FsimEngine engine = FsimEngine::kAuto;
  /// Physical kernel width for the wide engine. kAuto picks the widest
  /// tier that is compiled in and CPU-supported; an explicit tier that is
  /// unavailable is a fatal error (callers can pre-validate with
  /// fsim_wide_tier_usable). SATPG_FORCE_SCALAR=1 in the environment caps
  /// resolution at kScalar and wins over explicit requests. Results are
  /// bit-identical for every tier.
  SimdTier simd = SimdTier::kAuto;
};

/// True when the wide engine can run `tier` in this process: the kernel
/// is compiled in and the CPU supports it (kScalar/kAuto always can).
bool fsim_wide_tier_usable(SimdTier tier);

/// The widest tier whose kernel this BINARY contains, ignoring what the
/// running CPU supports (build provenance — harness/build_info).
SimdTier fsim_wide_widest_compiled_tier();

/// The tier run_fault_simulation's wide engine would actually execute for
/// a request of `tier` (applies SATPG_FORCE_SCALAR, resolves kAuto to the
/// widest usable tier).
SimdTier fsim_wide_resolve_tier(SimdTier tier);

/// Lane-by-lane semantic selftest of `tier`'s kernel ops against the V3
/// truth tables. False when the tier is not compiled in; CHECK-fails
/// never. kAuto tests the tier fsim_wide_resolve_tier(kAuto) picks.
bool run_wide_kernel_selftest(SimdTier tier);

struct FsimResult {
  std::vector<int> detected_at;   ///< per fault: sequence index, or -1
  /// Potential detections (good output known, faulty output X — the fault
  /// may or may not be observed on silicon; PROOFS-era tools credited
  /// these separately).
  std::vector<int> potential_at;  ///< per fault: sequence index, or -1
  /// Distinct good-machine states entered across all sequences (packed
  /// {0,1,X} codes, digit i = nl.dffs()[i]). The all-X power-up state is
  /// not counted; partially-known states are.
  StateSet good_states;
  std::size_t num_detected = 0;
};

/// Parallel fault simulation of `faults` against every sequence. A fault
/// is dropped after its first detecting sequence.
FsimResult run_fault_simulation(const Netlist& nl,
                                const std::vector<Fault>& faults,
                                const std::vector<TestSequence>& sequences,
                                const FsimOptions& opts = {});

/// Convenience for graded coverage over a collapsed list: returns
/// (detected weight, total weight) using class sizes.
std::pair<std::size_t, std::size_t> graded_coverage(
    const std::vector<CollapsedFault>& faults,
    const std::vector<int>& detected_at);

}  // namespace satpg
