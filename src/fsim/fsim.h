// Sequential stuck-at fault simulation (PROOFS substitute).
//
// Semantics follow the HITEC/PROOFS era conventions:
//   * every test sequence starts from the unknown (all-X) power-up state —
//     sequences are self-initializing through the circuit's reset line;
//   * a fault is detected at cycle t when some primary output is a known
//     value in both machines and the values differ (conservative X
//     handling — possible-detects do not count);
//   * faults are permanent: active in every cycle including initialization.
//
// Two engines share the semantics:
//   * a serial three-valued reference (one fault at a time), used for
//     cross-checking and small runs;
//   * a 64-slot bit-parallel engine (slot 0 carries the good machine,
//     slots 1..63 carry faulty machines), the workhorse for test-set
//     grading and the Table 8 replay experiment.
//
// The bit-parallel engine is cone-restricted and parallel: the good
// machine is simulated exactly once per sequence, each 63-fault batch
// evaluates only nodes inside the union of its fault sites' sequential
// fanout cones (everything outside is known to equal the good value), and
// batches run concurrently on a thread pool. Per-worker scratch arenas
// keep the per-frame hot path allocation-free. Results are bit-identical
// for every thread count — batches are formed per sequence before any
// batch runs, each batch writes only its own faults' slots, and merging
// happens at a per-sequence barrier.
//
// The good machine's state trajectory is recorded so experiments can count
// the distinct states a test set traverses (Tables 6 and 8).
#pragma once

#include <vector>

#include "fault/fault.h"
#include "netlist/netlist.h"
#include "sim/statekey.h"
#include "sim/value.h"

namespace satpg {

/// One test sequence: per-cycle primary-input vectors (nl.inputs() order).
using TestSequence = std::vector<std::vector<V3>>;

/// Serial reference: cycle index of first detection, or -1.
int simulate_fault_serial(const Netlist& nl, const Fault& fault,
                          const TestSequence& seq);

struct FsimOptions {
  /// Worker threads for batch-level parallelism: 1 = in-caller serial
  /// execution (the reference path), 0 = one worker per hardware thread.
  /// Results are bit-identical for every value.
  unsigned num_threads = 0;
};

struct FsimResult {
  std::vector<int> detected_at;   ///< per fault: sequence index, or -1
  /// Potential detections (good output known, faulty output X — the fault
  /// may or may not be observed on silicon; PROOFS-era tools credited
  /// these separately).
  std::vector<int> potential_at;  ///< per fault: sequence index, or -1
  /// Distinct good-machine states entered across all sequences (packed
  /// {0,1,X} codes, digit i = nl.dffs()[i]). The all-X power-up state is
  /// not counted; partially-known states are.
  StateSet good_states;
  std::size_t num_detected = 0;
};

/// Parallel fault simulation of `faults` against every sequence. A fault
/// is dropped after its first detecting sequence.
FsimResult run_fault_simulation(const Netlist& nl,
                                const std::vector<Fault>& faults,
                                const std::vector<TestSequence>& sequences,
                                const FsimOptions& opts = {});

/// Convenience for graded coverage over a collapsed list: returns
/// (detected weight, total weight) using class sizes.
std::pair<std::size_t, std::size_t> graded_coverage(
    const std::vector<CollapsedFault>& faults,
    const std::vector<int>& detected_at);

}  // namespace satpg
