// SSE2 PPSFP kernel: each 512-bit logical plane is four PV128 (128-bit)
// vectors. SSE2 is baseline on x86-64, so no extra compile flags are
// needed; on other architectures this TU compiles to stubs.
#include "fsim/wide_kernel.h"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace satpg {
namespace fsim_wide {
namespace {

/// 128-bit view of two adjacent sub-words of a PVW plane.
struct PV128 {
  __m128i v;
  static PV128 load(const std::uint64_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(std::uint64_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
};

struct Sse2Ops {
  static void fill_x(PVW& d) {
    const __m128i z = _mm_setzero_si128();
    for (unsigned i = 0; i < kLanes; i += 2) {
      PV128{z}.store(d.zero + i);
      PV128{z}.store(d.one + i);
    }
  }
  static void copy(PVW& d, const PVW& s) {
    for (unsigned i = 0; i < kLanes; i += 2) {
      PV128::load(s.zero + i).store(d.zero + i);
      PV128::load(s.one + i).store(d.one + i);
    }
  }
  // SSE2 has no 64-bit compare, so mask expansion stays scalar; the bulk
  // plane ops below are where the vectors pay off.
  static void expand(PVW& d, std::uint8_t zm, std::uint8_t om) {
    for (unsigned g = 0; g < kLanes; ++g) {
      d.zero[g] = 0ULL - static_cast<std::uint64_t>((zm >> g) & 1);
      d.one[g] = 0ULL - static_cast<std::uint64_t>((om >> g) & 1);
    }
  }
  static void not_ip(PVW& d) {
    for (unsigned i = 0; i < kLanes; i += 2) {
      const PV128 z = PV128::load(d.zero + i);
      PV128::load(d.one + i).store(d.zero + i);
      z.store(d.one + i);
    }
  }
  static void and_acc(PVW& d, const PVW& s) {
    for (unsigned i = 0; i < kLanes; i += 2) {
      PV128{_mm_or_si128(PV128::load(d.zero + i).v,
                         PV128::load(s.zero + i).v)}
          .store(d.zero + i);
      PV128{_mm_and_si128(PV128::load(d.one + i).v,
                          PV128::load(s.one + i).v)}
          .store(d.one + i);
    }
  }
  static void or_acc(PVW& d, const PVW& s) {
    for (unsigned i = 0; i < kLanes; i += 2) {
      PV128{_mm_and_si128(PV128::load(d.zero + i).v,
                          PV128::load(s.zero + i).v)}
          .store(d.zero + i);
      PV128{_mm_or_si128(PV128::load(d.one + i).v,
                         PV128::load(s.one + i).v)}
          .store(d.one + i);
    }
  }
  static void xor_acc(PVW& d, const PVW& s) {
    for (unsigned i = 0; i < kLanes; i += 2) {
      const __m128i dz = PV128::load(d.zero + i).v;
      const __m128i d1 = PV128::load(d.one + i).v;
      const __m128i sz = PV128::load(s.zero + i).v;
      const __m128i s1 = PV128::load(s.one + i).v;
      const __m128i known = _mm_and_si128(_mm_or_si128(dz, d1),
                                          _mm_or_si128(sz, s1));
      const __m128i x = _mm_and_si128(_mm_xor_si128(d1, s1), known);
      PV128{_mm_andnot_si128(x, known)}.store(d.zero + i);
      PV128{x}.store(d.one + i);
    }
  }
  static bool eq_expand(const PVW& d, std::uint8_t zm, std::uint8_t om) {
    std::uint64_t acc = 0;
    for (unsigned g = 0; g < kLanes; ++g) {
      acc |= d.zero[g] ^ (0ULL - static_cast<std::uint64_t>((zm >> g) & 1));
      acc |= d.one[g] ^ (0ULL - static_cast<std::uint64_t>((om >> g) & 1));
    }
    return acc == 0;
  }
};

void run_sse2(const WideView& w) { run_group_batch<Sse2Ops>(w); }

}  // namespace

KernelFn kernel_sse2() { return &run_sse2; }

bool selftest_sse2() { return backend_selftest<Sse2Ops>(); }

}  // namespace fsim_wide
}  // namespace satpg

#else  // !__SSE2__

namespace satpg {
namespace fsim_wide {
KernelFn kernel_sse2() { return nullptr; }
bool selftest_sse2() { return false; }
}  // namespace fsim_wide
}  // namespace satpg

#endif
