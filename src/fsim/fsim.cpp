#include "fsim/fsim.h"

#include <algorithm>
#include <cstdint>

#include "base/memstats.h"
#include "base/metrics.h"
#include "base/profiler.h"
#include "base/threadpool.h"
#include "base/trace.h"
#include "fsim/wide_driver.h"
#include "sim/simulator.h"

namespace satpg {

int simulate_fault_serial(const Netlist& nl, const Fault& fault,
                          const TestSequence& seq) {
  // Good and faulty machines in lockstep, all-X initial states.
  std::vector<V3> gstate(nl.num_dffs(), V3::kX);
  std::vector<V3> fstate(nl.num_dffs(), V3::kX);
  std::vector<V3> gval(nl.num_nodes(), V3::kX);
  std::vector<V3> fval(nl.num_nodes(), V3::kX);
  std::vector<V3> pin_scratch;  // forced-pin fanin staging, reused

  for (std::size_t t = 0; t < seq.size(); ++t) {
    const auto& pi = seq[t];
    SATPG_CHECK(pi.size() == nl.num_inputs());
    auto eval_machine = [&](std::vector<V3>& val,
                            const std::vector<V3>& state, bool faulty) {
      const auto& inputs = nl.inputs();
      for (std::size_t i = 0; i < inputs.size(); ++i)
        val[static_cast<std::size_t>(inputs[i])] = pi[i];
      const auto& dffs = nl.dffs();
      for (std::size_t i = 0; i < dffs.size(); ++i)
        val[static_cast<std::size_t>(dffs[i])] = state[i];
      if (faulty && fault.pin < 0) {
        // Output fault on a PI or DFF overrides the source value.
        const auto& fn = nl.node(fault.node);
        if (fn.type == GateType::kInput || fn.type == GateType::kDff)
          val[static_cast<std::size_t>(fault.node)] =
              fault.stuck1 ? V3::kOne : V3::kZero;
      }
      for (NodeId id : nl.topo_order()) {
        const auto& n = nl.node(id);
        V3 v;
        if (is_combinational(n.type)) {
          if (faulty && fault.pin >= 0 && id == fault.node) {
            pin_scratch.resize(n.fanins.size());
            for (std::size_t k = 0; k < n.fanins.size(); ++k)
              pin_scratch[k] = val[static_cast<std::size_t>(n.fanins[k])];
            pin_scratch[static_cast<std::size_t>(fault.pin)] =
                fault.stuck1 ? V3::kOne : V3::kZero;
            v = eval_gate_v3_packed(n.type, pin_scratch.data(),
                                    n.fanins.size());
          } else {
            v = eval_gate_v3(n.type, n.fanins, val);
          }
          if (faulty && fault.pin < 0 && id == fault.node)
            v = fault.stuck1 ? V3::kOne : V3::kZero;
          val[static_cast<std::size_t>(id)] = v;
        } else if (n.type == GateType::kOutput) {
          if (faulty && fault.pin >= 0 && id == fault.node)
            val[static_cast<std::size_t>(id)] =
                fault.stuck1 ? V3::kOne : V3::kZero;
          else
            val[static_cast<std::size_t>(id)] =
                val[static_cast<std::size_t>(n.fanins[0])];
        }
      }
    };
    eval_machine(gval, gstate, false);
    eval_machine(fval, fstate, true);

    for (NodeId po : nl.outputs()) {
      const V3 g = gval[static_cast<std::size_t>(po)];
      const V3 f = fval[static_cast<std::size_t>(po)];
      if (g != V3::kX && f != V3::kX && g != f)
        return static_cast<int>(t);
    }

    auto next_state = [&](const std::vector<V3>& val,
                          std::vector<V3>& state, bool faulty) {
      const auto& dffs = nl.dffs();
      for (std::size_t i = 0; i < dffs.size(); ++i) {
        const auto& n = nl.node(dffs[i]);
        V3 v = val[static_cast<std::size_t>(n.fanins[0])];
        if (faulty && fault.node == dffs[i] && fault.pin == 0)
          v = fault.stuck1 ? V3::kOne : V3::kZero;  // D-pin fault
        state[i] = v;
      }
    };
    next_state(gval, gstate, false);
    next_state(fval, fstate, true);
  }
  return -1;
}

namespace {

// Good-machine values for every node of every frame of one sequence, plus
// the state trajectory. Simulated exactly once per sequence; every batch
// reads good values from here instead of re-deriving them in slot 0 of a
// full-netlist parallel sweep. Buffers are reused across sequences.
struct GoodTrace {
  std::vector<std::vector<V3>> val;  ///< [frame][node], pre-clock values
  std::vector<V3> state;             ///< scratch: state while simulating
};

void simulate_good(const Netlist& nl, const TestSequence& seq,
                   GoodTrace& trace, StateSet* good_states) {
  const auto& inputs = nl.inputs();
  const auto& dffs = nl.dffs();
  trace.state.assign(dffs.size(), V3::kX);
  if (trace.val.size() < seq.size()) trace.val.resize(seq.size());

  for (std::size_t t = 0; t < seq.size(); ++t) {
    const auto& pi = seq[t];
    SATPG_CHECK(pi.size() == nl.num_inputs());
    auto& val = trace.val[t];
    val.assign(nl.num_nodes(), V3::kX);
    for (std::size_t i = 0; i < inputs.size(); ++i)
      val[static_cast<std::size_t>(inputs[i])] = pi[i];
    for (std::size_t i = 0; i < dffs.size(); ++i)
      val[static_cast<std::size_t>(dffs[i])] = trace.state[i];
    for (NodeId id : nl.topo_order()) {
      const auto& n = nl.node(id);
      if (is_combinational(n.type))
        val[static_cast<std::size_t>(id)] =
            eval_gate_v3(n.type, n.fanins, val);
      else if (n.type == GateType::kOutput)
        val[static_cast<std::size_t>(id)] =
            val[static_cast<std::size_t>(n.fanins[0])];
    }
    // Clock.
    for (std::size_t i = 0; i < dffs.size(); ++i)
      trace.state[i] =
          val[static_cast<std::size_t>(nl.node(dffs[i]).fanins[0])];
    if (good_states) {
      StateKey key(trace.state.size());
      bool known = false;
      for (std::size_t i = 0; i < trace.state.size(); ++i) {
        key.set(i, trace.state[i]);
        known |= trace.state[i] != V3::kX;
      }
      if (known) good_states->insert(key);
    }
  }
}

// Per-worker scratch arena. All buffers are sized once per netlist and
// reused across every batch and frame the worker simulates — the per-frame
// hot path performs no heap allocation.
struct FsimArena {
  struct Inject {
    NodeId node;
    int pin;
    unsigned slot;
    bool stuck1;
    std::int32_t next;  ///< next injection on the same node, or -1
  };

  std::vector<PV> val;                 ///< per node
  std::vector<PV> state;               ///< per DFF
  std::vector<std::uint8_t> active;    ///< per node: differs from good?
  std::vector<std::int32_t> inj_head;  ///< per node -> index into inj, -1
  std::vector<Inject> inj;             ///< flattened injection table
  std::vector<std::uint32_t> cone_pis;   ///< PI indices inside the cone
  std::vector<std::uint32_t> cone_dffs;  ///< DFF indices inside the cone
  std::vector<NodeId> cone_eval;  ///< cone comb/PO nodes in topo order
  std::vector<NodeId> cone_pos;   ///< cone PO markers, nl.outputs() order
  std::vector<PV> pv_gather;      ///< fanin staging for gate evaluation
  std::vector<V3> v3_gather;      ///< fanin staging for forced-pin slots
  BitVec cone;                    ///< union of batch fault-site cones
  bool prepared = false;

  void prepare(const Netlist& nl) {
    if (prepared && val.size() == nl.num_nodes()) return;
    val.assign(nl.num_nodes(), PV{});
    state.assign(nl.num_dffs(), PV{});
    active.assign(nl.num_nodes(), 0);
    inj_head.assign(nl.num_nodes(), -1);
    inj.reserve(63);
    std::size_t max_fanins = 1;
    for (std::size_t i = 0; i < nl.num_nodes(); ++i)
      max_fanins = std::max(
          max_fanins, nl.node(static_cast<NodeId>(i)).fanins.size());
    pv_gather.resize(max_fanins);
    v3_gather.resize(max_fanins);
    cone.resize(nl.num_nodes());
    prepared = true;
  }
};

// Logical footprint of ONE prepared arena — a pure function of the
// netlist, mirroring FsimArena::prepare element for element. The registry
// is charged this once per simulation call regardless of worker count, so
// the accounted bytes are thread-count invariant.
std::uint64_t arena_logical_bytes(const Netlist& nl) {
  std::size_t max_fanins = 1;
  for (std::size_t i = 0; i < nl.num_nodes(); ++i)
    max_fanins =
        std::max(max_fanins, nl.node(static_cast<NodeId>(i)).fanins.size());
  return nl.num_nodes() *
             (sizeof(PV) + sizeof(std::uint8_t) + sizeof(std::int32_t)) +
         nl.num_dffs() * sizeof(PV) + 63 * sizeof(FsimArena::Inject) +
         max_fanins * (sizeof(PV) + sizeof(V3)) + (nl.num_nodes() + 7) / 8;
}

// One 63-fault batch simulated against one sequence, restricted to the
// union of the batch's fault-site fanout cones. Nodes outside the cone are
// provably identical to the good machine, whose per-frame values arrive in
// `good`; inside the cone an activity check skips any gate whose fanins
// all match the good values and which carries no injection. Sets
// newly[faults index] / newly_pot[faults index] — each batch owns disjoint
// fault indices, so concurrent batches never write the same slot.
void simulate_batch(const Netlist& nl, const std::vector<Fault>& faults,
                    const std::size_t* batch, std::size_t batch_size,
                    const TestSequence& seq, const GoodTrace& good,
                    FsimArena& a, std::uint8_t* newly,
                    std::uint8_t* newly_pot) {
  SATPG_DCHECK(batch_size >= 1 && batch_size <= 63);
  a.prepare(nl);
  const auto& cones = nl.fanout_cones();
  const auto& inputs = nl.inputs();
  const auto& dffs = nl.dffs();

  // Union cone of the batch's fault sites.
  a.cone.clear_all();
  for (std::size_t k = 0; k < batch_size; ++k)
    a.cone |= cones[static_cast<std::size_t>(faults[batch[k]].node)];

  // Flattened injection table: clear the previous batch's heads (bounded
  // by 63 entries, not netlist size), then chain this batch's faults.
  for (const auto& e : a.inj)
    a.inj_head[static_cast<std::size_t>(e.node)] = -1;
  a.inj.clear();
  for (std::size_t k = 0; k < batch_size; ++k) {
    const Fault& f = faults[batch[k]];
    const auto ni = static_cast<std::size_t>(f.node);
    a.inj.push_back({f.node, f.pin, static_cast<unsigned>(k + 1), f.stuck1,
                     a.inj_head[ni]});
    a.inj_head[ni] = static_cast<std::int32_t>(a.inj.size()) - 1;
  }

  // Cone membership lists, in evaluation order.
  a.cone_pis.clear();
  a.cone_dffs.clear();
  a.cone_eval.clear();
  a.cone_pos.clear();
  for (std::size_t i = 0; i < inputs.size(); ++i)
    if (a.cone.get(static_cast<std::size_t>(inputs[i])))
      a.cone_pis.push_back(static_cast<std::uint32_t>(i));
  for (std::size_t i = 0; i < dffs.size(); ++i)
    if (a.cone.get(static_cast<std::size_t>(dffs[i])))
      a.cone_dffs.push_back(static_cast<std::uint32_t>(i));
  for (NodeId id : nl.topo_order()) {
    if (!a.cone.get(static_cast<std::size_t>(id))) continue;
    const auto& n = nl.node(id);
    if (is_combinational(n.type) || n.type == GateType::kOutput)
      a.cone_eval.push_back(id);
  }
  for (NodeId po : nl.outputs())
    if (a.cone.get(static_cast<std::size_t>(po))) a.cone_pos.push_back(po);

  // All-X power-up state for the cone's flip-flops. Stale `active` flags
  // are harmless: every cone node's flag is rewritten each frame before
  // any topologically-later consumer reads it.
  for (std::uint32_t i : a.cone_dffs) a.state[i] = PV::all(V3::kX);

  auto forced = [](const FsimArena::Inject& j) {
    return j.stuck1 ? V3::kOne : V3::kZero;
  };

  // Telemetry stays off the per-gate path: counts accumulate in locals and
  // are bulk-added once per (batch, sequence). Batch composition is fixed
  // before any worker runs, so these totals are thread-count invariant.
  const bool count_metrics = metrics_enabled();
  std::uint64_t gate_evals = 0;
  std::uint64_t activity_skips = 0;

  for (std::size_t t = 0; t < seq.size(); ++t) {
    const auto& pi = seq[t];
    const std::vector<V3>& gval = good.val[t];

    // Cone sources: PIs and DFF outputs, with stem injections.
    for (std::uint32_t idx : a.cone_pis) {
      const auto id = static_cast<std::size_t>(inputs[idx]);
      PV v = PV::all(pi[idx]);
      for (std::int32_t e = a.inj_head[id]; e >= 0; e = a.inj[e].next)
        if (a.inj[e].pin < 0) v.set_slot(a.inj[e].slot, forced(a.inj[e]));
      a.val[id] = v;
      a.active[id] = v != PV::all(gval[id]) ? 1 : 0;
    }
    for (std::uint32_t i : a.cone_dffs) {
      const auto id = static_cast<std::size_t>(dffs[i]);
      PV v = a.state[i];
      for (std::int32_t e = a.inj_head[id]; e >= 0; e = a.inj[e].next)
        if (a.inj[e].pin < 0) v.set_slot(a.inj[e].slot, forced(a.inj[e]));
      a.val[id] = v;
      a.active[id] = v != PV::all(gval[id]) ? 1 : 0;
    }

    // Cone gates and PO markers in topological order.
    for (NodeId id : a.cone_eval) {
      const auto& n = nl.node(id);
      const auto ni = static_cast<std::size_t>(id);
      const V3 g = gval[ni];
      // Activity check: a gate whose fanins all equal the good machine in
      // every slot and which injects nothing evaluates to the good value.
      bool act = a.inj_head[ni] >= 0;
      if (!act)
        for (NodeId f : n.fanins) {
          const auto fi = static_cast<std::size_t>(f);
          if (a.cone.get(fi) && a.active[fi]) {
            act = true;
            break;
          }
        }
      if (!act) {
        if (count_metrics) ++activity_skips;
        a.val[ni] = PV::all(g);
        a.active[ni] = 0;
        continue;
      }
      if (count_metrics) ++gate_evals;
      const std::size_t nfi = n.fanins.size();
      for (std::size_t k = 0; k < nfi; ++k) {
        const auto fi = static_cast<std::size_t>(n.fanins[k]);
        a.pv_gather[k] =
            a.cone.get(fi) ? a.val[fi] : PV::all(gval[fi]);
      }
      PV v = eval_gate_pv_packed(n.type, a.pv_gather.data(), nfi);
      for (std::int32_t e = a.inj_head[ni]; e >= 0; e = a.inj[e].next) {
        const auto& j = a.inj[e];
        if (n.type == GateType::kOutput) {
          if (j.pin == 0) v.set_slot(j.slot, forced(j));
        } else if (j.pin < 0) {
          v.set_slot(j.slot, forced(j));
        } else {
          // Recompute this slot scalar with the forced pin.
          for (std::size_t k = 0; k < nfi; ++k)
            a.v3_gather[k] = a.pv_gather[k].slot(j.slot);
          a.v3_gather[static_cast<std::size_t>(j.pin)] = forced(j);
          v.set_slot(j.slot,
                     eval_gate_v3_packed(n.type, a.v3_gather.data(), nfi));
        }
      }
      a.val[ni] = v;
      a.active[ni] = v != PV::all(g) ? 1 : 0;
    }

    // Detection: slot differs from the good value with both known.
    // Potential detection: good known, slot X. POs outside the cone carry
    // the good value in every slot and can contribute neither.
    for (NodeId po : a.cone_pos) {
      const PV v = a.val[static_cast<std::size_t>(po)];
      const V3 g = v.slot(0);
      if (g == V3::kX) continue;
      const std::uint64_t good_mask = g == V3::kOne ? v.zero : v.one;
      std::uint64_t diff = good_mask & ~1ULL;  // known-opposite slots
      while (diff) {
        const unsigned slot = static_cast<unsigned>(__builtin_ctzll(diff));
        diff &= diff - 1;
        if (slot >= 1 && slot <= batch_size) newly[batch[slot - 1]] = 1;
      }
      std::uint64_t xs = ~(v.zero | v.one) & ~1ULL;
      while (xs) {
        const unsigned slot = static_cast<unsigned>(__builtin_ctzll(xs));
        xs &= xs - 1;
        if (slot >= 1 && slot <= batch_size) newly_pot[batch[slot - 1]] = 1;
      }
    }

    // Clock the cone's flip-flops (D-pin faults inject here).
    for (std::uint32_t i : a.cone_dffs) {
      const auto id = static_cast<std::size_t>(dffs[i]);
      const auto d = static_cast<std::size_t>(nl.node(dffs[i]).fanins[0]);
      PV v = a.cone.get(d) ? a.val[d] : PV::all(gval[d]);
      for (std::int32_t e = a.inj_head[id]; e >= 0; e = a.inj[e].next)
        if (a.inj[e].pin == 0) v.set_slot(a.inj[e].slot, forced(a.inj[e]));
      a.state[i] = v;
    }
  }

  if (count_metrics) {
    static MetricsRegistry::Counter& ge =
        MetricsRegistry::global().counter("fsim.gate_evals");
    static MetricsRegistry::Counter& as =
        MetricsRegistry::global().counter("fsim.activity_skips");
    ge.add(gate_evals);
    as.add(activity_skips);
  }
}

}  // namespace

FsimResult run_fault_simulation(const Netlist& nl,
                                const std::vector<Fault>& faults,
                                const std::vector<TestSequence>& sequences,
                                const FsimOptions& opts) {
  FsimResult res;
  res.detected_at.assign(faults.size(), -1);
  res.potential_at.assign(faults.size(), -1);
  if (sequences.empty()) return res;

  TraceSpan fsim_span("fsim.run", "fsim");
  if (metrics_enabled()) {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("fsim.calls").add();
    reg.counter("fsim.sequences").add(sequences.size());
    std::uint64_t vectors = 0;
    for (const auto& s : sequences) vectors += s.size();
    reg.counter("fsim.vectors").add(vectors);
  }

  // Build the netlist's lazy caches before workers share it: the const
  // accessors populate mutable caches on first use and must not race.
  nl.topo_order();
  if (!faults.empty()) nl.fanout_cones();

  const unsigned max_workers = opts.num_threads == 0
                                   ? ThreadPool::hardware_threads()
                                   : opts.num_threads;

  // Engine dispatch: the wide (pattern-parallel) engine pays off whenever
  // there is more than one sequence to pack into a lane group; single-
  // sequence calls (ATPG inner loops) stay on the 64-slot engine where no
  // lane would be live beyond lane 0. Results are identical either way.
  const bool use_wide =
      opts.engine == FsimEngine::kWide ||
      (opts.engine == FsimEngine::kAuto && sequences.size() >= 2);
  if (use_wide)
    return fsim_wide::run_wide(nl, faults, sequences, opts, max_workers);

  // One arena's footprint for the duration of the call (never x workers).
  const MemRegistryScope arena_mem(
      MemSubsystem::kFsimArena,
      memstats_enabled() ? arena_logical_bytes(nl) : 0);

  std::vector<std::uint8_t> detected(faults.size(), 0);
  std::vector<std::uint8_t> newly(faults.size(), 0);
  std::vector<std::uint8_t> newly_pot(faults.size(), 0);
  std::vector<std::size_t> remaining;
  remaining.reserve(faults.size());
  GoodTrace trace;
  std::vector<FsimArena> arenas;

  for (std::size_t si = 0; si < sequences.size(); ++si) {
    // The good machine runs once per sequence; batches only re-simulate
    // the faulty cones against it. This also records the state trajectory
    // without ever simulating an empty batch.
    {
      ProfileSpan good_span(ProfPhase::kFsimGood);
      simulate_good(nl, sequences[si], trace, &res.good_states);
    }

    // Remaining (undetected) faults, batched 63 at a time. The batch
    // partition is fixed before any batch runs and every batch writes only
    // its own faults' flags, so results are independent of worker count
    // and scheduling order.
    remaining.clear();
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (!detected[i]) remaining.push_back(i);
    if (remaining.empty()) continue;
    const std::size_t num_batches = (remaining.size() + 62) / 63;
    if (metrics_enabled()) {
      static MetricsRegistry::Counter& c =
          MetricsRegistry::global().counter("fsim.batches");
      c.add(num_batches);
    }
    std::fill(newly.begin(), newly.end(), 0);
    std::fill(newly_pot.begin(), newly_pot.end(), 0);

    auto run_batch = [&](std::size_t b, FsimArena& arena) {
      const std::size_t lo = b * 63;
      const std::size_t n =
          std::min<std::size_t>(63, remaining.size() - lo);
      ProfileSpan batch_span(ProfPhase::kFsimBatch);
      simulate_batch(nl, faults, remaining.data() + lo, n, sequences[si],
                     trace, arena, newly.data(), newly_pot.data());
    };

    const auto workers = static_cast<unsigned>(
        std::min<std::size_t>(max_workers, num_batches));
    if (arenas.size() < workers) arenas.resize(workers);
    if (workers <= 1) {
      for (std::size_t b = 0; b < num_batches; ++b)
        run_batch(b, arenas[0]);
    } else {
      ThreadPool::shared().run_on_workers(
          workers, [&run_batch, workers, num_batches, &arenas](unsigned w) {
            for (std::size_t b = w; b < num_batches; b += workers)
              run_batch(b, arenas[w]);
          });
    }

    for (std::size_t idx : remaining) {
      if (newly[idx]) {
        detected[idx] = 1;
        res.detected_at[idx] = static_cast<int>(si);
      }
      if (newly_pot[idx] && res.potential_at[idx] < 0)
        res.potential_at[idx] = static_cast<int>(si);
    }
  }
  res.num_detected = static_cast<std::size_t>(
      std::count(detected.begin(), detected.end(), 1));
  return res;
}

std::pair<std::size_t, std::size_t> graded_coverage(
    const std::vector<CollapsedFault>& faults,
    const std::vector<int>& detected_at) {
  SATPG_CHECK(faults.size() == detected_at.size());
  std::size_t det = 0, total = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    total += static_cast<std::size_t>(faults[i].class_size);
    if (detected_at[i] >= 0)
      det += static_cast<std::size_t>(faults[i].class_size);
  }
  return {det, total};
}

}  // namespace satpg
