#include "fsim/fsim.h"

#include <algorithm>

#include "sim/simulator.h"

namespace satpg {

namespace {

// Scalar gate evaluation with one fanin overridden (for input-pin faults).
V3 eval_with_forced_pin(const Netlist& nl, NodeId id, int pin, V3 forced,
                        const std::vector<V3>& values) {
  const auto& n = nl.node(id);
  std::vector<V3> tmp(n.fanins.size());
  for (std::size_t k = 0; k < n.fanins.size(); ++k)
    tmp[k] = values[static_cast<std::size_t>(n.fanins[k])];
  tmp[static_cast<std::size_t>(pin)] = forced;
  // Evaluate over the temporary fanin values through a scratch vector
  // indexed by position: reuse eval_gate_v3 by building a fake fanin list.
  // Cheaper: inline the fold here.
  auto fold_and = [&tmp]() {
    V3 v = tmp[0];
    for (std::size_t i = 1; i < tmp.size(); ++i) v = v3_and(v, tmp[i]);
    return v;
  };
  auto fold_or = [&tmp]() {
    V3 v = tmp[0];
    for (std::size_t i = 1; i < tmp.size(); ++i) v = v3_or(v, tmp[i]);
    return v;
  };
  auto fold_xor = [&tmp]() {
    V3 v = tmp[0];
    for (std::size_t i = 1; i < tmp.size(); ++i) v = v3_xor(v, tmp[i]);
    return v;
  };
  switch (n.type) {
    case GateType::kBuf:
      return tmp[0];
    case GateType::kNot:
      return v3_not(tmp[0]);
    case GateType::kAnd:
      return fold_and();
    case GateType::kNand:
      return v3_not(fold_and());
    case GateType::kOr:
      return fold_or();
    case GateType::kNor:
      return v3_not(fold_or());
    case GateType::kXor:
      return fold_xor();
    case GateType::kXnor:
      return v3_not(fold_xor());
    case GateType::kDff:
    case GateType::kOutput:
      return tmp[0];  // D / PO marker pass-through
    default:
      SATPG_CHECK(false);
  }
  return V3::kX;
}

}  // namespace

int simulate_fault_serial(const Netlist& nl, const Fault& fault,
                          const TestSequence& seq) {
  // Good and faulty machines in lockstep, all-X initial states.
  std::vector<V3> gstate(nl.num_dffs(), V3::kX);
  std::vector<V3> fstate(nl.num_dffs(), V3::kX);
  std::vector<V3> gval(nl.num_nodes(), V3::kX);
  std::vector<V3> fval(nl.num_nodes(), V3::kX);

  for (std::size_t t = 0; t < seq.size(); ++t) {
    const auto& pi = seq[t];
    SATPG_CHECK(pi.size() == nl.num_inputs());
    auto eval_machine = [&](std::vector<V3>& val,
                            const std::vector<V3>& state, bool faulty) {
      const auto& inputs = nl.inputs();
      for (std::size_t i = 0; i < inputs.size(); ++i)
        val[static_cast<std::size_t>(inputs[i])] = pi[i];
      const auto& dffs = nl.dffs();
      for (std::size_t i = 0; i < dffs.size(); ++i)
        val[static_cast<std::size_t>(dffs[i])] = state[i];
      if (faulty && fault.pin < 0) {
        // Output fault on a PI or DFF overrides the source value.
        const auto& fn = nl.node(fault.node);
        if (fn.type == GateType::kInput || fn.type == GateType::kDff)
          val[static_cast<std::size_t>(fault.node)] =
              fault.stuck1 ? V3::kOne : V3::kZero;
      }
      for (NodeId id : nl.topo_order()) {
        const auto& n = nl.node(id);
        V3 v;
        if (is_combinational(n.type)) {
          if (faulty && fault.pin >= 0 && id == fault.node)
            v = eval_with_forced_pin(nl, id, fault.pin,
                                     fault.stuck1 ? V3::kOne : V3::kZero,
                                     val);
          else
            v = eval_gate_v3(n.type, n.fanins, val);
          if (faulty && fault.pin < 0 && id == fault.node)
            v = fault.stuck1 ? V3::kOne : V3::kZero;
          val[static_cast<std::size_t>(id)] = v;
        } else if (n.type == GateType::kOutput) {
          if (faulty && fault.pin >= 0 && id == fault.node)
            val[static_cast<std::size_t>(id)] =
                fault.stuck1 ? V3::kOne : V3::kZero;
          else
            val[static_cast<std::size_t>(id)] =
                val[static_cast<std::size_t>(n.fanins[0])];
        }
      }
    };
    eval_machine(gval, gstate, false);
    eval_machine(fval, fstate, true);

    for (NodeId po : nl.outputs()) {
      const V3 g = gval[static_cast<std::size_t>(po)];
      const V3 f = fval[static_cast<std::size_t>(po)];
      if (g != V3::kX && f != V3::kX && g != f)
        return static_cast<int>(t);
    }

    auto next_state = [&](const std::vector<V3>& val,
                          std::vector<V3>& state, bool faulty) {
      const auto& dffs = nl.dffs();
      for (std::size_t i = 0; i < dffs.size(); ++i) {
        const auto& n = nl.node(dffs[i]);
        V3 v = val[static_cast<std::size_t>(n.fanins[0])];
        if (faulty && fault.node == dffs[i] && fault.pin == 0)
          v = fault.stuck1 ? V3::kOne : V3::kZero;  // D-pin fault
        state[i] = v;
      }
    };
    next_state(gval, gstate, false);
    next_state(fval, fstate, true);
  }
  return -1;
}

namespace {

// One 63-fault batch simulated against one sequence. Returns per-batch-slot
// detection flag; also appends good states to `good_states`.
void simulate_batch(const Netlist& nl, const std::vector<Fault>& faults,
                    const std::vector<std::size_t>& batch,
                    const TestSequence& seq, std::vector<bool>& detected_out,
                    std::vector<bool>& potential_out,
                    std::set<std::string>* good_states) {
  // Injection tables.
  struct Inject {
    unsigned slot;
    int pin;
    bool stuck1;
  };
  std::vector<std::vector<Inject>> inj(nl.num_nodes());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const Fault& f = faults[batch[k]];
    inj[static_cast<std::size_t>(f.node)].push_back(
        {static_cast<unsigned>(k + 1), f.pin, f.stuck1});
  }

  std::vector<PV> state(nl.num_dffs(), PV::all(V3::kX));
  std::vector<PV> val(nl.num_nodes(), PV::all(V3::kX));
  std::vector<bool> det(batch.size(), false);
  std::vector<bool> pot(batch.size(), false);

  for (std::size_t t = 0; t < seq.size(); ++t) {
    const auto& pi = seq[t];
    const auto& inputs = nl.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i)
      val[static_cast<std::size_t>(inputs[i])] = PV::all(pi[i]);
    const auto& dffs = nl.dffs();
    for (std::size_t i = 0; i < dffs.size(); ++i)
      val[static_cast<std::size_t>(dffs[i])] = state[i];
    // Source-node output faults (PI/DFF stems).
    for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
      const auto& n = nl.node(static_cast<NodeId>(i));
      if (n.dead || inj[i].empty()) continue;
      if (n.type == GateType::kInput || n.type == GateType::kDff) {
        for (const auto& j : inj[i])
          if (j.pin < 0)
            val[i].set_slot(j.slot, j.stuck1 ? V3::kOne : V3::kZero);
      }
    }

    for (NodeId id : nl.topo_order()) {
      const auto& n = nl.node(id);
      if (is_combinational(n.type)) {
        PV v = eval_gate_pv(n.type, n.fanins, val);
        for (const auto& j : inj[static_cast<std::size_t>(id)]) {
          if (j.pin < 0) {
            v.set_slot(j.slot, j.stuck1 ? V3::kOne : V3::kZero);
          } else {
            // Recompute this slot scalar with the forced pin.
            std::vector<V3> sc(nl.num_nodes(), V3::kX);
            for (NodeId f : n.fanins)
              sc[static_cast<std::size_t>(f)] =
                  val[static_cast<std::size_t>(f)].slot(j.slot);
            v.set_slot(j.slot,
                       eval_with_forced_pin(nl, id, j.pin,
                                            j.stuck1 ? V3::kOne : V3::kZero,
                                            sc));
          }
        }
        val[static_cast<std::size_t>(id)] = v;
      } else if (n.type == GateType::kOutput) {
        PV v = val[static_cast<std::size_t>(n.fanins[0])];
        for (const auto& j : inj[static_cast<std::size_t>(id)])
          if (j.pin == 0)
            v.set_slot(j.slot, j.stuck1 ? V3::kOne : V3::kZero);
        val[static_cast<std::size_t>(id)] = v;
      }
    }

    // Detection: slot differs from slot 0 with both known. Potential
    // detection: good known, slot X.
    for (NodeId po : nl.outputs()) {
      const PV v = val[static_cast<std::size_t>(po)];
      const V3 good = v.slot(0);
      if (good == V3::kX) continue;
      const std::uint64_t good_mask = good == V3::kOne ? v.zero : v.one;
      std::uint64_t diff = good_mask & ~1ULL;  // known-opposite slots
      while (diff) {
        const unsigned slot =
            static_cast<unsigned>(__builtin_ctzll(diff));
        diff &= diff - 1;
        if (slot >= 1 && slot <= batch.size()) det[slot - 1] = true;
      }
      std::uint64_t xs = ~(v.zero | v.one) & ~1ULL;
      while (xs) {
        const unsigned slot = static_cast<unsigned>(__builtin_ctzll(xs));
        xs &= xs - 1;
        if (slot >= 1 && slot <= batch.size()) pot[slot - 1] = true;
      }
    }

    // Clock.
    for (std::size_t i = 0; i < dffs.size(); ++i) {
      const auto& n = nl.node(dffs[i]);
      PV v = val[static_cast<std::size_t>(n.fanins[0])];
      for (const auto& j : inj[static_cast<std::size_t>(dffs[i])])
        if (j.pin == 0)
          v.set_slot(j.slot, j.stuck1 ? V3::kOne : V3::kZero);
      state[i] = v;
    }
    if (good_states) {
      std::string s;
      s.reserve(state.size());
      for (std::size_t i = state.size(); i-- > 0;)
        s.push_back(v3_char(state[i].slot(0)));
      if (s.find_first_not_of('X') != std::string::npos)
        good_states->insert(s);
    }
  }
  for (std::size_t k = 0; k < batch.size(); ++k) {
    if (det[k]) detected_out[batch[k]] = true;
    if (pot[k]) potential_out[batch[k]] = true;
  }
}

}  // namespace

FsimResult run_fault_simulation(const Netlist& nl,
                                const std::vector<Fault>& faults,
                                const std::vector<TestSequence>& sequences) {
  FsimResult res;
  res.detected_at.assign(faults.size(), -1);
  res.potential_at.assign(faults.size(), -1);
  std::vector<bool> detected(faults.size(), false);

  for (std::size_t si = 0; si < sequences.size(); ++si) {
    // Remaining (undetected) faults, batched 63 at a time.
    std::vector<std::size_t> remaining;
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (!detected[i]) remaining.push_back(i);
    // Track good states once per sequence (first batch; the good machine is
    // identical in every batch). When no faults remain we still simulate an
    // empty batch to record the trajectory.
    bool first_batch = true;
    std::size_t at = 0;
    do {
      std::vector<std::size_t> batch;
      for (; at < remaining.size() && batch.size() < 63; ++at)
        batch.push_back(remaining[at]);
      std::vector<bool> newly(faults.size(), false);
      std::vector<bool> newly_pot(faults.size(), false);
      simulate_batch(nl, faults, batch, sequences[si], newly, newly_pot,
                     first_batch ? &res.good_states : nullptr);
      first_batch = false;
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (newly[i] && !detected[i]) {
          detected[i] = true;
          res.detected_at[i] = static_cast<int>(si);
        }
        if (newly_pot[i] && res.potential_at[i] < 0)
          res.potential_at[i] = static_cast<int>(si);
      }
    } while (at < remaining.size());
  }
  res.num_detected =
      static_cast<std::size_t>(std::count(detected.begin(), detected.end(),
                                          true));
  return res;
}

std::pair<std::size_t, std::size_t> graded_coverage(
    const std::vector<CollapsedFault>& faults,
    const std::vector<int>& detected_at) {
  SATPG_CHECK(faults.size() == detected_at.size());
  std::size_t det = 0, total = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    total += static_cast<std::size_t>(faults[i].class_size);
    if (detected_at[i] >= 0)
      det += static_cast<std::size_t>(faults[i].class_size);
  }
  return {det, total};
}

}  // namespace satpg
