// AVX-512 PPSFP kernel: each 512-bit logical plane is one PV512 register,
// and the per-lane good masks map directly onto __mmask8. Compiled with
// -mavx512f when the compiler supports it (see CMakeLists.txt); the
// exported entries are only called after the runtime CPUID + XGETBV check
// in src/base/cpu.cpp.
#include "fsim/wide_kernel.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace satpg {
namespace fsim_wide {
namespace {

/// 512-bit view of a whole PVW plane (all eight sub-words).
struct PV512 {
  __m512i v;
  static PV512 load(const std::uint64_t* p) {
    return {_mm512_loadu_si512(p)};
  }
  void store(std::uint64_t* p) const { _mm512_storeu_si512(p, v); }
};

inline __m512i mask_to_lanes(std::uint8_t m) {
  return _mm512_maskz_set1_epi64(static_cast<__mmask8>(m), -1LL);
}

struct Avx512Ops {
  static void fill_x(PVW& d) {
    const __m512i z = _mm512_setzero_si512();
    PV512{z}.store(d.zero);
    PV512{z}.store(d.one);
  }
  static void copy(PVW& d, const PVW& s) {
    PV512::load(s.zero).store(d.zero);
    PV512::load(s.one).store(d.one);
  }
  static void expand(PVW& d, std::uint8_t zm, std::uint8_t om) {
    PV512{mask_to_lanes(zm)}.store(d.zero);
    PV512{mask_to_lanes(om)}.store(d.one);
  }
  static void not_ip(PVW& d) {
    const PV512 z = PV512::load(d.zero);
    PV512::load(d.one).store(d.zero);
    z.store(d.one);
  }
  static void and_acc(PVW& d, const PVW& s) {
    PV512{_mm512_or_si512(PV512::load(d.zero).v, PV512::load(s.zero).v)}
        .store(d.zero);
    PV512{_mm512_and_si512(PV512::load(d.one).v, PV512::load(s.one).v)}
        .store(d.one);
  }
  static void or_acc(PVW& d, const PVW& s) {
    PV512{_mm512_and_si512(PV512::load(d.zero).v, PV512::load(s.zero).v)}
        .store(d.zero);
    PV512{_mm512_or_si512(PV512::load(d.one).v, PV512::load(s.one).v)}
        .store(d.one);
  }
  static void xor_acc(PVW& d, const PVW& s) {
    const __m512i dz = PV512::load(d.zero).v;
    const __m512i d1 = PV512::load(d.one).v;
    const __m512i sz = PV512::load(s.zero).v;
    const __m512i s1 = PV512::load(s.one).v;
    const __m512i known = _mm512_and_si512(_mm512_or_si512(dz, d1),
                                           _mm512_or_si512(sz, s1));
    const __m512i x = _mm512_and_si512(_mm512_xor_si512(d1, s1), known);
    PV512{_mm512_andnot_si512(x, known)}.store(d.zero);
    PV512{x}.store(d.one);
  }
  static bool eq_expand(const PVW& d, std::uint8_t zm, std::uint8_t om) {
    const __mmask8 nz = _mm512_cmpneq_epi64_mask(PV512::load(d.zero).v,
                                                 mask_to_lanes(zm));
    const __mmask8 no = _mm512_cmpneq_epi64_mask(PV512::load(d.one).v,
                                                 mask_to_lanes(om));
    return static_cast<unsigned>(nz | no) == 0;
  }
};

void run_avx512(const WideView& w) { run_group_batch<Avx512Ops>(w); }

}  // namespace

KernelFn kernel_avx512() { return &run_avx512; }

bool selftest_avx512() { return backend_selftest<Avx512Ops>(); }

}  // namespace fsim_wide
}  // namespace satpg

#else  // !__AVX512F__

namespace satpg {
namespace fsim_wide {
KernelFn kernel_avx512() { return nullptr; }
bool selftest_avx512() { return false; }
}  // namespace fsim_wide
}  // namespace satpg

#endif
