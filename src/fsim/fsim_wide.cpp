// Wide pattern-parallel (PPSFP) fault-simulation driver.
//
// Packs a lane group of PVW::kSubWords sequences into one simulation: one
// packed good-machine pass per group produces per-frame per-node 8-lane
// good masks, then every 63-fault batch is simulated across all lanes at
// once by a SIMD kernel (wide_scalar/sse2/avx2/avx512.cpp) chosen by a
// one-time CPUID dispatch. The driver owns everything that is not
// ISA-sensitive: netlist flattening, cone construction, injection tables,
// the thread-pool fan-out, and the merge that maps per-lane detection
// masks back to per-sequence results.
//
// Determinism contract (DESIGN.md §8): lane g of group gi is sequence
// index gi*kLanes + g, fixed before any batch runs. detected_at is the
// lowest detecting lane; potential_at considers only lanes up to and
// including the detecting lane (later lanes are never simulated by the
// 64-slot engine, which drops a fault after its detecting sequence).
// Batch partitions are fixed per group and each batch writes only its own
// faults' lane masks, so results are identical for every thread count;
// every kernel tier computes the same fixed-width logical word, so they
// are identical across tiers too. The semantic counters fsim.batches /
// calls / sequences / vectors match the 64-slot engine exactly
// (fsim.batches is derived from the detection results, reproducing the
// per-sequence drop schedule the 64-slot engine would have executed);
// engine-internal hot-path counters live under fsim.wide.* because the
// wide engine's evaluation schedule is legitimately different.
#include <algorithm>
#include <cstring>

#include "base/cpu.h"
#include "base/memstats.h"
#include "base/metrics.h"
#include "base/profiler.h"
#include "base/threadpool.h"
#include "fsim/wide_driver.h"
#include "fsim/wide_internal.h"
#include "sim/simulator.h"

namespace satpg {

namespace {

fsim_wide::KernelFn tier_kernel(SimdTier t) {
  switch (t) {
    case SimdTier::kScalar:
      return fsim_wide::kernel_scalar();
    case SimdTier::kSse2:
      return fsim_wide::kernel_sse2();
    case SimdTier::kAvx2:
      return fsim_wide::kernel_avx2();
    case SimdTier::kAvx512:
      return fsim_wide::kernel_avx512();
    case SimdTier::kAuto:
      break;
  }
  return nullptr;
}

}  // namespace

bool fsim_wide_tier_usable(SimdTier tier) {
  if (tier == SimdTier::kAuto || tier == SimdTier::kScalar) return true;
  return tier_kernel(tier) != nullptr && simd_tier_supported(tier);
}

SimdTier fsim_wide_widest_compiled_tier() {
  for (SimdTier t : {SimdTier::kAvx512, SimdTier::kAvx2, SimdTier::kSse2})
    if (tier_kernel(t) != nullptr) return t;
  return SimdTier::kScalar;
}

SimdTier fsim_wide_resolve_tier(SimdTier tier) {
  if (simd_force_scalar_env()) return SimdTier::kScalar;
  if (tier != SimdTier::kAuto) return tier;
  for (SimdTier t : {SimdTier::kAvx512, SimdTier::kAvx2, SimdTier::kSse2})
    if (tier_kernel(t) != nullptr && simd_tier_supported(t)) return t;
  return SimdTier::kScalar;
}

bool run_wide_kernel_selftest(SimdTier tier) {
  switch (tier == SimdTier::kAuto ? fsim_wide_resolve_tier(tier) : tier) {
    case SimdTier::kScalar:
      return fsim_wide::selftest_scalar();
    case SimdTier::kSse2:
      return fsim_wide::selftest_sse2();
    case SimdTier::kAvx2:
      return fsim_wide::selftest_avx2();
    case SimdTier::kAvx512:
      return fsim_wide::selftest_avx512();
    case SimdTier::kAuto:
      break;
  }
  return false;
}

namespace fsim_wide {
namespace {

/// Netlist flattened once per run: CSR fanins and the topological
/// evaluation list translated to kernel opcodes.
struct Topo {
  std::vector<std::int32_t> fanin_nodes;
  std::vector<std::uint32_t> fanin_begin;  ///< per node, size N+1
  std::vector<std::int32_t> eval_ids;      ///< comb + PO nodes, topo order
  std::vector<std::uint8_t> eval_ops;      ///< WOp per eval entry
  std::size_t max_fanins = 1;
};

std::uint8_t wop_of(GateType t) {
  switch (t) {
    case GateType::kConst0:
      return kWConst0;
    case GateType::kConst1:
      return kWConst1;
    case GateType::kBuf:
      return kWBuf;
    case GateType::kNot:
      return kWNot;
    case GateType::kAnd:
      return kWAnd;
    case GateType::kNand:
      return kWNand;
    case GateType::kOr:
      return kWOr;
    case GateType::kNor:
      return kWNor;
    case GateType::kXor:
      return kWXor;
    case GateType::kXnor:
      return kWXnor;
    case GateType::kOutput:
      return kWOutput;
    default:
      SATPG_CHECK_MSG(false, "node type never evaluated by the kernel");
      return 0;
  }
}

void build_topo(const Netlist& nl, Topo& tp) {
  const std::size_t n = nl.num_nodes();
  tp.fanin_begin.assign(n + 1, 0);
  tp.fanin_nodes.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& fanins = nl.node(static_cast<NodeId>(i)).fanins;
    tp.fanin_begin[i] = static_cast<std::uint32_t>(tp.fanin_nodes.size());
    tp.fanin_nodes.insert(tp.fanin_nodes.end(), fanins.begin(),
                          fanins.end());
    tp.max_fanins = std::max(tp.max_fanins, fanins.size());
  }
  tp.fanin_begin[n] = static_cast<std::uint32_t>(tp.fanin_nodes.size());
  tp.eval_ids.clear();
  tp.eval_ops.clear();
  for (NodeId id : nl.topo_order()) {
    const auto& node = nl.node(id);
    if (is_combinational(node.type) || node.type == GateType::kOutput) {
      tp.eval_ids.push_back(id);
      tp.eval_ops.push_back(wop_of(node.type));
    }
  }
}

/// Packed good-machine trace of one lane group: one PV pass (slot g =
/// lane g) over the full netlist per frame, flattened to the per-node
/// 8-lane 0/1 masks the kernels consume.
struct GroupGood {
  std::vector<std::uint8_t> zm, om;  ///< [frame * num_nodes + node]
  std::vector<std::uint8_t> live;    ///< per frame: lane still in-sequence
  std::size_t frames = 0;
  std::vector<PV> val;    // scratch
  std::vector<PV> state;  // scratch
};

void simulate_group_good(const Netlist& nl,
                         const std::vector<TestSequence>& seqs,
                         std::size_t base, unsigned lanes, GroupGood& gg,
                         StateSet* good_states) {
  const auto& inputs = nl.inputs();
  const auto& dffs = nl.dffs();
  const std::size_t n = nl.num_nodes();

  gg.frames = 0;
  for (unsigned g = 0; g < lanes; ++g)
    gg.frames = std::max(gg.frames, seqs[base + g].size());
  gg.zm.assign(gg.frames * n, 0);
  gg.om.assign(gg.frames * n, 0);
  gg.live.assign(gg.frames, 0);
  gg.val.assign(n, PV{});
  gg.state.assign(dffs.size(), PV{});

  for (std::size_t t = 0; t < gg.frames; ++t) {
    std::uint8_t live = 0;
    for (unsigned g = 0; g < lanes; ++g)
      if (t < seqs[base + g].size()) {
        SATPG_CHECK(seqs[base + g][t].size() == nl.num_inputs());
        live |= static_cast<std::uint8_t>(1u << g);
      }
    gg.live[t] = live;

    // Dead lanes keep all-X inputs: their machines idle along harmlessly
    // and the live mask gates everything observable.
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      PV w{};
      for (unsigned g = 0; g < lanes; ++g)
        if ((live >> g) & 1) w.set_slot(g, seqs[base + g][t][i]);
      gg.val[static_cast<std::size_t>(inputs[i])] = w;
    }
    for (std::size_t i = 0; i < dffs.size(); ++i)
      gg.val[static_cast<std::size_t>(dffs[i])] = gg.state[i];
    for (NodeId id : nl.topo_order()) {
      const auto& node = nl.node(id);
      if (is_combinational(node.type))
        gg.val[static_cast<std::size_t>(id)] =
            eval_gate_pv(node.type, node.fanins, gg.val);
      else if (node.type == GateType::kOutput)
        gg.val[static_cast<std::size_t>(id)] =
            gg.val[static_cast<std::size_t>(node.fanins[0])];
    }
    std::uint8_t* zrow = gg.zm.data() + t * n;
    std::uint8_t* orow = gg.om.data() + t * n;
    for (std::size_t i = 0; i < n; ++i) {
      zrow[i] = static_cast<std::uint8_t>(gg.val[i].zero & 0xff);
      orow[i] = static_cast<std::uint8_t>(gg.val[i].one & 0xff);
    }
    // Clock, then record each live lane's entered state (matches the
    // per-sequence engine; StateSet equality is content-based, so the
    // lane-major insertion order is irrelevant).
    for (std::size_t i = 0; i < dffs.size(); ++i)
      gg.state[i] = gg.val[static_cast<std::size_t>(
          nl.node(dffs[i]).fanins[0])];
    if (good_states) {
      for (unsigned g = 0; g < lanes; ++g) {
        if (!((live >> g) & 1)) continue;
        StateKey key(dffs.size());
        bool known = false;
        for (std::size_t i = 0; i < dffs.size(); ++i) {
          const V3 v = gg.state[i].slot(g);
          key.set(i, v);
          known |= v != V3::kX;
        }
        if (known) good_states->insert(key);
      }
    }
  }
}

/// Per-worker scratch, PVW-sized twin of fsim.cpp's FsimArena.
struct WideArena {
  std::vector<PVW> val;    ///< per node
  std::vector<PVW> state;  ///< per DFF
  std::vector<PVW> gather;
  std::vector<const PVW*> gather_ptrs;
  std::vector<V3> v3_gather;
  std::vector<std::uint8_t> active;
  std::vector<std::uint8_t> in_cone;
  std::vector<std::int32_t> inj_head;
  std::vector<WInject> inj;
  std::vector<std::int32_t> eval_ids;
  std::vector<std::uint8_t> eval_ops;
  std::vector<std::int32_t> pi_ids, dff_ids, dff_dnode, dff_index, po_ids;
  BitVec cone;
  std::uint64_t det_acc[kLanes];
  std::uint64_t pot_acc[kLanes];
  bool prepared = false;

  void prepare(const Netlist& nl, std::size_t max_fanins) {
    if (prepared && val.size() == nl.num_nodes()) return;
    val.assign(nl.num_nodes(), PVW{});
    state.assign(nl.num_dffs(), PVW{});
    gather.resize(max_fanins);
    gather_ptrs.resize(max_fanins);
    v3_gather.resize(max_fanins);
    active.assign(nl.num_nodes(), 0);
    in_cone.assign(nl.num_nodes(), 0);
    inj_head.assign(nl.num_nodes(), -1);
    inj.reserve(63);
    cone.resize(nl.num_nodes());
    prepared = true;
  }
};

/// Logical footprint of one prepared WideArena plus the group-good image
/// at its largest (frames = longest sequence) — a pure function of
/// (netlist, sequences), charged once per run_wide call regardless of
/// worker count so the accounted bytes are thread-count invariant. The
/// per-batch id lists are rebuilt in place from prepare()-sized storage
/// and are covered by the node-indexed terms.
std::uint64_t wide_logical_bytes(const Netlist& nl, const Topo& tp,
                                 std::size_t max_frames) {
  const std::uint64_t n = nl.num_nodes();
  const std::uint64_t arena =
      n * (sizeof(PVW) + 2 * sizeof(std::uint8_t) + sizeof(std::int32_t)) +
      nl.num_dffs() * sizeof(PVW) +
      tp.max_fanins * (sizeof(PVW) + sizeof(const PVW*) + sizeof(V3)) +
      63 * sizeof(WInject) + (n + 7) / 8;
  const std::uint64_t group = max_frames * (2 * n + 1) +
                              (n + nl.num_dffs()) * sizeof(PV);
  return arena + group;
}

/// One (group, batch): build the cone-restricted flattened view, run the
/// kernel over all frames, then unpack the per-fault 8-bit lane masks.
/// Each batch owns disjoint fault indices, so concurrent batches never
/// write the same det_lanes/pot_lanes byte.
void simulate_group_batch(const Netlist& nl, const Topo& tp,
                          const std::vector<Fault>& faults,
                          const std::size_t* batch, std::size_t batch_size,
                          const GroupGood& gg, KernelFn kernel,
                          ProfPhase kernel_phase, WideArena& a,
                          std::uint8_t* det_lanes,
                          std::uint8_t* pot_lanes) {
  SATPG_DCHECK(batch_size >= 1 && batch_size <= 63);
  a.prepare(nl, tp.max_fanins);
  const auto& cones = nl.fanout_cones();
  const auto& inputs = nl.inputs();
  const auto& dffs = nl.dffs();

  a.cone.clear_all();
  for (std::size_t k = 0; k < batch_size; ++k)
    a.cone |= cones[static_cast<std::size_t>(faults[batch[k]].node)];
  std::memset(a.in_cone.data(), 0, a.in_cone.size());
  for (std::size_t i = a.cone.find_first(); i < a.cone.size();
       i = a.cone.find_next(i))
    a.in_cone[i] = 1;

  for (const auto& e : a.inj)
    a.inj_head[static_cast<std::size_t>(e.node)] = -1;
  a.inj.clear();
  for (std::size_t k = 0; k < batch_size; ++k) {
    const Fault& f = faults[batch[k]];
    const auto ni = static_cast<std::size_t>(f.node);
    a.inj.push_back({f.node, f.pin, static_cast<std::uint32_t>(k + 1),
                     static_cast<std::uint8_t>(f.stuck1 ? 1 : 0),
                     a.inj_head[ni]});
    a.inj_head[ni] = static_cast<std::int32_t>(a.inj.size()) - 1;
  }

  a.pi_ids.clear();
  a.dff_ids.clear();
  a.dff_dnode.clear();
  a.dff_index.clear();
  a.eval_ids.clear();
  a.eval_ops.clear();
  a.po_ids.clear();
  for (NodeId id : inputs)
    if (a.in_cone[static_cast<std::size_t>(id)]) a.pi_ids.push_back(id);
  for (std::size_t i = 0; i < dffs.size(); ++i)
    if (a.in_cone[static_cast<std::size_t>(dffs[i])]) {
      a.dff_ids.push_back(dffs[i]);
      a.dff_dnode.push_back(nl.node(dffs[i]).fanins[0]);
      a.dff_index.push_back(static_cast<std::int32_t>(i));
    }
  for (std::size_t e = 0; e < tp.eval_ids.size(); ++e)
    if (a.in_cone[static_cast<std::size_t>(tp.eval_ids[e])]) {
      a.eval_ids.push_back(tp.eval_ids[e]);
      a.eval_ops.push_back(tp.eval_ops[e]);
    }
  for (NodeId po : nl.outputs())
    if (a.in_cone[static_cast<std::size_t>(po)]) a.po_ids.push_back(po);

  const bool count_metrics = metrics_enabled();
  std::uint64_t gate_evals = 0;
  std::uint64_t activity_skips = 0;

  WideView w;
  w.fanin_nodes = tp.fanin_nodes.data();
  w.fanin_begin = tp.fanin_begin.data();
  w.num_nodes = nl.num_nodes();
  w.in_cone = a.in_cone.data();
  w.eval_ids = a.eval_ids.data();
  w.eval_ops = a.eval_ops.data();
  w.eval_count = a.eval_ids.size();
  w.pi_ids = a.pi_ids.data();
  w.pi_count = a.pi_ids.size();
  w.dff_ids = a.dff_ids.data();
  w.dff_dnode = a.dff_dnode.data();
  w.dff_index = a.dff_index.data();
  w.dff_count = a.dff_ids.size();
  w.po_ids = a.po_ids.data();
  w.po_count = a.po_ids.size();
  w.inj_head = a.inj_head.data();
  w.inj = a.inj.data();
  w.zm = gg.zm.data();
  w.om = gg.om.data();
  w.live = gg.live.data();
  w.frames = gg.frames;
  w.val = a.val.data();
  w.state = a.state.data();
  w.active = a.active.data();
  w.gather = a.gather.data();
  w.gather_ptrs = a.gather_ptrs.data();
  w.v3_gather = a.v3_gather.data();
  w.batch_size = batch_size;
  w.det_acc = a.det_acc;
  w.pot_acc = a.pot_acc;
  w.count_metrics = count_metrics;
  w.gate_evals = &gate_evals;
  w.activity_skips = &activity_skips;

  {
    // Attributed to the dispatched tier's phase, so a profile splits the
    // wide-kernel cycles by the instruction set that actually ran.
    ProfileSpan kernel_span(kernel_phase);
    kernel(w);
  }

  for (std::size_t k = 0; k < batch_size; ++k) {
    const unsigned slot = static_cast<unsigned>(k + 1);
    std::uint8_t dm = 0, pm = 0;
    for (unsigned g = 0; g < kLanes; ++g) {
      dm |= static_cast<std::uint8_t>(((a.det_acc[g] >> slot) & 1) << g);
      pm |= static_cast<std::uint8_t>(((a.pot_acc[g] >> slot) & 1) << g);
    }
    det_lanes[batch[k]] = dm;
    pot_lanes[batch[k]] = pm;
  }

  if (count_metrics) {
    static MetricsRegistry::Counter& ge =
        MetricsRegistry::global().counter("fsim.wide.gate_evals");
    static MetricsRegistry::Counter& as =
        MetricsRegistry::global().counter("fsim.wide.activity_skips");
    ge.add(gate_evals);
    as.add(activity_skips);
  }
}

}  // namespace

FsimResult run_wide(const Netlist& nl, const std::vector<Fault>& faults,
                    const std::vector<TestSequence>& sequences,
                    const FsimOptions& opts, unsigned max_workers) {
  FsimResult res;
  res.detected_at.assign(faults.size(), -1);
  res.potential_at.assign(faults.size(), -1);
  if (sequences.empty()) return res;

  const SimdTier tier = fsim_wide_resolve_tier(opts.simd);
  SATPG_CHECK_MSG(fsim_wide_tier_usable(tier),
                  "requested wide-fsim tier is not available on this "
                  "machine/build (see satpg fsim --width/--force-scalar)");
  KernelFn kernel = tier_kernel(tier);
  SATPG_CHECK(kernel != nullptr);
  const ProfPhase kernel_phase = prof_phase_for_wide_kernel(tier);

  Topo tp;
  build_topo(nl, tp);

  // One arena + one group image for the duration of the call (never
  // x workers, never x groups).
  std::uint64_t wide_bytes = 0;
  if (memstats_enabled()) {
    std::size_t max_frames = 0;
    for (const auto& s : sequences)
      max_frames = std::max(max_frames, s.size());
    wide_bytes = wide_logical_bytes(nl, tp, max_frames);
  }
  const MemRegistryScope lanes_mem(MemSubsystem::kFsimWideLanes, wide_bytes);

  const std::size_t num_groups = (sequences.size() + kLanes - 1) / kLanes;
  if (metrics_enabled()) {
    static MetricsRegistry::Counter& groups =
        MetricsRegistry::global().counter("fsim.wide.groups");
    groups.add(num_groups);
  }

  std::vector<std::uint8_t> detected(faults.size(), 0);
  std::vector<std::uint8_t> det_lanes(faults.size(), 0);
  std::vector<std::uint8_t> pot_lanes(faults.size(), 0);
  std::vector<std::size_t> remaining;
  remaining.reserve(faults.size());
  GroupGood gg;
  std::vector<WideArena> arenas;
  // The 64-slot engine counts one fsim.batches unit per (sequence,
  // 63-fault chunk of the then-remaining faults). Detection results are
  // drop-schedule invariant, so that count can be reproduced exactly from
  // detected_at — keeping the semantic metrics engine-independent even
  // though the wide engine batches per group.
  std::uint64_t logical_batches = 0;

  for (std::size_t base = 0; base < sequences.size(); base += kLanes) {
    const unsigned lanes = static_cast<unsigned>(
        std::min<std::size_t>(kLanes, sequences.size() - base));
    {
      ProfileSpan good_span(ProfPhase::kFsimWideGood);
      simulate_group_good(nl, sequences, base, lanes, gg,
                          &res.good_states);
    }

    remaining.clear();
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (!detected[i]) remaining.push_back(i);
    if (remaining.empty()) continue;

    const std::size_t num_batches = (remaining.size() + 62) / 63;
    auto run_batch = [&](std::size_t b, WideArena& arena) {
      const std::size_t lo = b * 63;
      const std::size_t nb =
          std::min<std::size_t>(63, remaining.size() - lo);
      simulate_group_batch(nl, tp, faults, remaining.data() + lo, nb, gg,
                           kernel, kernel_phase, arena, det_lanes.data(),
                           pot_lanes.data());
    };
    const auto workers = static_cast<unsigned>(
        std::min<std::size_t>(max_workers, num_batches));
    if (arenas.size() < workers) arenas.resize(workers);
    if (workers <= 1) {
      if (arenas.empty()) arenas.resize(1);
      for (std::size_t b = 0; b < num_batches; ++b) run_batch(b, arenas[0]);
    } else {
      ThreadPool::shared().run_on_workers(
          workers, [&run_batch, workers, num_batches, &arenas](unsigned w) {
            for (std::size_t b = w; b < num_batches; b += workers)
              run_batch(b, arenas[w]);
          });
    }

    // Merge: lowest detecting lane wins (lane index == sequence index);
    // potential detections count only up to and including that lane — the
    // per-sequence engine drops a fault right after its detecting
    // sequence and would never observe later ones.
    std::size_t det_in_lane[kLanes] = {};
    for (std::size_t idx : remaining) {
      const std::uint8_t dm = det_lanes[idx];
      std::uint8_t pm = pot_lanes[idx];
      if (dm) {
        const unsigned lane = static_cast<unsigned>(__builtin_ctz(dm));
        detected[idx] = 1;
        res.detected_at[idx] = static_cast<int>(base + lane);
        ++det_in_lane[lane];
        pm &= static_cast<std::uint8_t>((2u << lane) - 1);
      }
      if (pm && res.potential_at[idx] < 0)
        res.potential_at[idx] =
            static_cast<int>(base + static_cast<unsigned>(__builtin_ctz(pm)));
    }
    std::size_t rem = remaining.size();
    for (unsigned g = 0; g < lanes; ++g) {
      if (rem > 0) logical_batches += (rem + 62) / 63;
      rem -= det_in_lane[g];
    }
  }

  if (metrics_enabled() && logical_batches > 0) {
    static MetricsRegistry::Counter& batches =
        MetricsRegistry::global().counter("fsim.batches");
    batches.add(logical_batches);
  }
  res.num_detected = static_cast<std::size_t>(
      std::count(detected.begin(), detected.end(), 1));
  return res;
}

}  // namespace fsim_wide
}  // namespace satpg
