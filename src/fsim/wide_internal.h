// Interface between the wide (PPSFP) fault-simulation driver in
// fsim_wide.cpp and the per-tier SIMD kernel translation units
// (wide_scalar.cpp / wide_sse2.cpp / wide_avx2.cpp / wide_avx512.cpp).
//
// Everything that crosses this boundary is plain data: the driver
// pre-flattens the netlist (CSR fanins, opcode array), the batch (cone
// membership bytes, injection table, eval/source/PO lists) and the group
// good-machine trace (per-frame per-node 8-lane 0/1 masks) into raw
// arrays, and the kernel runs the whole frame loop against them. The
// kernel TUs are compiled with wider -m flags than the rest of the build,
// so they must not instantiate any inline code shared with other TUs —
// POD views keep the ISA boundary airtight (see wide_kernel.h).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/value.h"

namespace satpg {
namespace fsim_wide {

/// Sequence lanes per group == PVW sub-words. Lane g of group gi carries
/// sequence index gi*kLanes + g; this mapping is fixed before any batch
/// runs and is what makes first-detection tie-breaks deterministic.
constexpr unsigned kLanes = PVW::kSubWords;

/// Gate opcodes private to the wide kernel. The driver translates
/// GateType; the kernel never touches netlist headers.
enum WOp : std::uint8_t {
  kWConst0,
  kWConst1,
  kWBuf,
  kWNot,
  kWAnd,
  kWNand,
  kWOr,
  kWNor,
  kWXor,
  kWXnor,
  kWOutput,  ///< PO marker: pass through fanin 0, pin-0 faults force it
};

/// One fault injection, chained per node via `next` (same layout as the
/// 64-slot engine's table). `slot` is the fault's PV slot (1..63), shared
/// by every sub-word.
struct WInject {
  std::int32_t node;
  std::int32_t pin;  ///< -1 stem; >=0 forced fanin pin (0 = DFF D at clock)
  std::uint32_t slot;
  std::uint8_t stuck1;
  std::int32_t next;  ///< next injection on the same node, or -1
};

/// Flattened inputs/scratch/outputs of one (group, batch) kernel run.
struct WideView {
  // Netlist topology, built once per run and shared read-only.
  const std::int32_t* fanin_nodes = nullptr;   ///< CSR fanin ids
  const std::uint32_t* fanin_begin = nullptr;  ///< per node, size N+1
  std::size_t num_nodes = 0;

  // Batch cone: byte per node, 1 = inside the union fanout cone.
  const std::uint8_t* in_cone = nullptr;

  // Cone gate/PO evaluation list in topological order.
  const std::int32_t* eval_ids = nullptr;
  const std::uint8_t* eval_ops = nullptr;  ///< WOp per eval entry
  std::size_t eval_count = 0;

  // Cone sources.
  const std::int32_t* pi_ids = nullptr;  ///< PI node ids
  std::size_t pi_count = 0;
  const std::int32_t* dff_ids = nullptr;    ///< DFF node ids
  const std::int32_t* dff_dnode = nullptr;  ///< D-fanin node id
  const std::int32_t* dff_index = nullptr;  ///< nl.dffs() position
  std::size_t dff_count = 0;

  // Cone PO markers (subset of eval list, nl.outputs() order).
  const std::int32_t* po_ids = nullptr;
  std::size_t po_count = 0;

  // Injection table.
  const std::int32_t* inj_head = nullptr;  ///< per node -> inj index, -1
  const WInject* inj = nullptr;

  // Group good trace: bit g of zm/om[t*num_nodes+n] says lane g's good
  // value at node n in frame t is 0/1 (neither bit: X). live[t] masks
  // lanes whose sequence still has a vector at frame t.
  const std::uint8_t* zm = nullptr;
  const std::uint8_t* om = nullptr;
  const std::uint8_t* live = nullptr;
  std::size_t frames = 0;

  // Scratch (per-worker arena, reused across batches).
  PVW* val = nullptr;            ///< per node
  PVW* state = nullptr;          ///< per nl.dffs() index
  std::uint8_t* active = nullptr;  ///< per node: differs from good?
  PVW* gather = nullptr;           ///< max_fanins staging
  const PVW** gather_ptrs = nullptr;
  V3* v3_gather = nullptr;  ///< forced-pin scalar re-evaluation staging

  std::size_t batch_size = 0;  ///< faults in this batch (1..63)

  // Outputs: per-lane accumulated detection / potential-detection slot
  // masks (bit s of det_acc[g] = slot s differed on some PO in lane g).
  std::uint64_t* det_acc = nullptr;  ///< [kLanes], kernel zeroes them
  std::uint64_t* pot_acc = nullptr;

  // Metrics: locals accumulated by the kernel, bulk-added by the driver.
  bool count_metrics = false;
  std::uint64_t* gate_evals = nullptr;
  std::uint64_t* activity_skips = nullptr;
};

using KernelFn = void (*)(const WideView&);

// Per-tier kernel entry points. A tier whose instruction set the compiler
// cannot target returns nullptr (the driver then falls back down the
// ladder for kAuto and fails loudly for explicit requests).
KernelFn kernel_scalar();
KernelFn kernel_sse2();
KernelFn kernel_avx2();
KernelFn kernel_avx512();

// Per-tier backend-op selftests: verify the SIMD plane ops lane-by-lane
// against V3 truth tables on pseudo-random well-formed words. Return
// false when the tier is not compiled in.
bool selftest_scalar();
bool selftest_sse2();
bool selftest_avx2();
bool selftest_avx512();

}  // namespace fsim_wide
}  // namespace satpg
