// AVX2 PPSFP kernel: each 512-bit logical plane is two PV256 (256-bit)
// vectors. Compiled with -mavx2 when the compiler supports it (see
// CMakeLists.txt); the exported entries are only called after the runtime
// CPUID check in src/base/cpu.cpp.
#include "fsim/wide_kernel.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace satpg {
namespace fsim_wide {
namespace {

/// 256-bit view of four adjacent sub-words of a PVW plane.
struct PV256 {
  __m256i v;
  static PV256 load(const std::uint64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::uint64_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
};

/// Lane-mask bits half*4 .. half*4+3 broadcast to 64-bit all-ones lanes.
inline __m256i mask_to_lanes(std::uint8_t m, int half) {
  const __m256i bits = _mm256_set1_epi64x(m);
  const __m256i sel = half == 0 ? _mm256_setr_epi64x(1, 2, 4, 8)
                                : _mm256_setr_epi64x(16, 32, 64, 128);
  return _mm256_cmpeq_epi64(_mm256_and_si256(bits, sel), sel);
}

struct Avx2Ops {
  static void fill_x(PVW& d) {
    const __m256i z = _mm256_setzero_si256();
    for (unsigned i = 0; i < kLanes; i += 4) {
      PV256{z}.store(d.zero + i);
      PV256{z}.store(d.one + i);
    }
  }
  static void copy(PVW& d, const PVW& s) {
    for (unsigned i = 0; i < kLanes; i += 4) {
      PV256::load(s.zero + i).store(d.zero + i);
      PV256::load(s.one + i).store(d.one + i);
    }
  }
  static void expand(PVW& d, std::uint8_t zm, std::uint8_t om) {
    for (int half = 0; half < 2; ++half) {
      const unsigned i = static_cast<unsigned>(half) * 4;
      PV256{mask_to_lanes(zm, half)}.store(d.zero + i);
      PV256{mask_to_lanes(om, half)}.store(d.one + i);
    }
  }
  static void not_ip(PVW& d) {
    for (unsigned i = 0; i < kLanes; i += 4) {
      const PV256 z = PV256::load(d.zero + i);
      PV256::load(d.one + i).store(d.zero + i);
      z.store(d.one + i);
    }
  }
  static void and_acc(PVW& d, const PVW& s) {
    for (unsigned i = 0; i < kLanes; i += 4) {
      PV256{_mm256_or_si256(PV256::load(d.zero + i).v,
                            PV256::load(s.zero + i).v)}
          .store(d.zero + i);
      PV256{_mm256_and_si256(PV256::load(d.one + i).v,
                             PV256::load(s.one + i).v)}
          .store(d.one + i);
    }
  }
  static void or_acc(PVW& d, const PVW& s) {
    for (unsigned i = 0; i < kLanes; i += 4) {
      PV256{_mm256_and_si256(PV256::load(d.zero + i).v,
                             PV256::load(s.zero + i).v)}
          .store(d.zero + i);
      PV256{_mm256_or_si256(PV256::load(d.one + i).v,
                            PV256::load(s.one + i).v)}
          .store(d.one + i);
    }
  }
  static void xor_acc(PVW& d, const PVW& s) {
    for (unsigned i = 0; i < kLanes; i += 4) {
      const __m256i dz = PV256::load(d.zero + i).v;
      const __m256i d1 = PV256::load(d.one + i).v;
      const __m256i sz = PV256::load(s.zero + i).v;
      const __m256i s1 = PV256::load(s.one + i).v;
      const __m256i known = _mm256_and_si256(_mm256_or_si256(dz, d1),
                                             _mm256_or_si256(sz, s1));
      const __m256i x = _mm256_and_si256(_mm256_xor_si256(d1, s1), known);
      PV256{_mm256_andnot_si256(x, known)}.store(d.zero + i);
      PV256{x}.store(d.one + i);
    }
  }
  static bool eq_expand(const PVW& d, std::uint8_t zm, std::uint8_t om) {
    __m256i acc = _mm256_setzero_si256();
    for (int half = 0; half < 2; ++half) {
      const unsigned i = static_cast<unsigned>(half) * 4;
      acc = _mm256_or_si256(
          acc, _mm256_xor_si256(PV256::load(d.zero + i).v,
                                mask_to_lanes(zm, half)));
      acc = _mm256_or_si256(
          acc, _mm256_xor_si256(PV256::load(d.one + i).v,
                                mask_to_lanes(om, half)));
    }
    return _mm256_testz_si256(acc, acc) != 0;
  }
};

void run_avx2(const WideView& w) { run_group_batch<Avx2Ops>(w); }

}  // namespace

KernelFn kernel_avx2() { return &run_avx2; }

bool selftest_avx2() { return backend_selftest<Avx2Ops>(); }

}  // namespace fsim_wide
}  // namespace satpg

#else  // !__AVX2__

namespace satpg {
namespace fsim_wide {
KernelFn kernel_avx2() { return nullptr; }
bool selftest_avx2() { return false; }
}  // namespace fsim_wide
}  // namespace satpg

#endif
