// Backend-templated PPSFP batch kernel, included ONLY by the per-tier
// translation units (wide_scalar.cpp / wide_sse2.cpp / wide_avx2.cpp /
// wide_avx512.cpp).
//
// Everything here lives in an anonymous namespace ON PURPOSE: those TUs
// are compiled with wider -m flags than the rest of the build, and any
// external-linkage inline/template code they emitted could be the copy
// the linker picks for the whole program — which would leak AVX
// instructions into binaries that must also run on narrower CPUs. With
// internal linkage every TU keeps its own private copies and the ISA
// boundary is exactly the exported kernel_*/selftest_* functions, which
// are only called after the runtime CPUID check (src/base/cpu.h).
//
// The kernel runs one (lane-group, fault-batch) frame loop over the
// flattened WideView (see wide_internal.h). Semantics mirror
// fsim.cpp::simulate_batch exactly, lifted from one PV word to
// PVW::kSubWords sub-words — sub-word g is sequence lane g, slot 0 of
// every sub-word is that lane's good machine, slots 1..63 are the batch's
// faulty machines.
#pragma once

#include "fsim/wide_internal.h"

namespace satpg {
namespace fsim_wide {
namespace {  // internal linkage on purpose — see header comment

// Private three-valued helpers (duplicated from sim/value.h so the kernel
// never odr-uses inline functions shared with other TUs).
inline V3 wv_not3(V3 a) {
  if (a == V3::kZero) return V3::kOne;
  if (a == V3::kOne) return V3::kZero;
  return V3::kX;
}

inline V3 wv_and3(V3 a, V3 b) {
  if (a == V3::kZero || b == V3::kZero) return V3::kZero;
  if (a == V3::kOne && b == V3::kOne) return V3::kOne;
  return V3::kX;
}

inline V3 wv_or3(V3 a, V3 b) {
  if (a == V3::kOne || b == V3::kOne) return V3::kOne;
  if (a == V3::kZero && b == V3::kZero) return V3::kZero;
  return V3::kX;
}

inline V3 wv_xor3(V3 a, V3 b) {
  if (a == V3::kX || b == V3::kX) return V3::kX;
  return (a == b) ? V3::kZero : V3::kOne;
}

/// Scalar evaluation of one gate over gathered V3 pins — the forced-pin
/// injection re-evaluation path (mirrors eval_gate_v3_packed).
inline V3 wv_eval3(std::uint8_t op, const V3* v, std::size_t n) {
  switch (static_cast<WOp>(op)) {
    case kWConst0:
      return V3::kZero;
    case kWConst1:
      return V3::kOne;
    case kWBuf:
    case kWOutput:
      return v[0];
    case kWNot:
      return wv_not3(v[0]);
    case kWAnd:
    case kWNand: {
      V3 r = v[0];
      for (std::size_t k = 1; k < n; ++k) r = wv_and3(r, v[k]);
      return static_cast<WOp>(op) == kWNand ? wv_not3(r) : r;
    }
    case kWOr:
    case kWNor: {
      V3 r = v[0];
      for (std::size_t k = 1; k < n; ++k) r = wv_or3(r, v[k]);
      return static_cast<WOp>(op) == kWNor ? wv_not3(r) : r;
    }
    case kWXor:
    case kWXnor: {
      V3 r = v[0];
      for (std::size_t k = 1; k < n; ++k) r = wv_xor3(r, v[k]);
      return static_cast<WOp>(op) == kWXnor ? wv_not3(r) : r;
    }
  }
  return V3::kX;
}

inline V3 wv_slot(const PVW& w, unsigned g, unsigned s) {
  const std::uint64_t m = 1ULL << s;
  if (w.zero[g] & m) return V3::kZero;
  if (w.one[g] & m) return V3::kOne;
  return V3::kX;
}

inline void wv_set_slot(PVW& w, unsigned g, unsigned s, V3 v) {
  const std::uint64_t m = 1ULL << s;
  w.zero[g] &= ~m;
  w.one[g] &= ~m;
  if (v == V3::kZero)
    w.zero[g] |= m;
  else if (v == V3::kOne)
    w.one[g] |= m;
}

/// Force `slot` to the stuck value in every sub-word (stem injection).
inline void wv_force_slot(PVW& w, unsigned slot, bool stuck1) {
  const std::uint64_t m = 1ULL << slot;
  for (unsigned g = 0; g < kLanes; ++g) {
    w.zero[g] &= ~m;
    w.one[g] &= ~m;
    if (stuck1)
      w.one[g] |= m;
    else
      w.zero[g] |= m;
  }
}

inline bool wv_well_formed(const PVW& w) {
  std::uint64_t bad = 0;
  for (unsigned g = 0; g < kLanes; ++g) bad |= w.zero[g] & w.one[g];
  return bad == 0;
}

/// Portable backend: plain uint64_t loops over the kSubWords sub-words.
/// Also the semantic reference the per-tier selftests are checked against.
struct ScalarOps {
  static void fill_x(PVW& d) {
    for (unsigned g = 0; g < kLanes; ++g) {
      d.zero[g] = 0;
      d.one[g] = 0;
    }
  }
  static void copy(PVW& d, const PVW& s) {
    for (unsigned g = 0; g < kLanes; ++g) {
      d.zero[g] = s.zero[g];
      d.one[g] = s.one[g];
    }
  }
  /// Broadcast per-lane good masks: bit g of zm/om => sub-word g is
  /// all-0 / all-1 (neither => all-X).
  static void expand(PVW& d, std::uint8_t zm, std::uint8_t om) {
    for (unsigned g = 0; g < kLanes; ++g) {
      d.zero[g] = 0ULL - static_cast<std::uint64_t>((zm >> g) & 1);
      d.one[g] = 0ULL - static_cast<std::uint64_t>((om >> g) & 1);
    }
  }
  static void not_ip(PVW& d) {
    for (unsigned g = 0; g < kLanes; ++g) {
      const std::uint64_t z = d.zero[g];
      d.zero[g] = d.one[g];
      d.one[g] = z;
    }
  }
  static void and_acc(PVW& d, const PVW& s) {
    for (unsigned g = 0; g < kLanes; ++g) {
      d.zero[g] |= s.zero[g];
      d.one[g] &= s.one[g];
    }
  }
  static void or_acc(PVW& d, const PVW& s) {
    for (unsigned g = 0; g < kLanes; ++g) {
      d.zero[g] &= s.zero[g];
      d.one[g] |= s.one[g];
    }
  }
  static void xor_acc(PVW& d, const PVW& s) {
    for (unsigned g = 0; g < kLanes; ++g) {
      const std::uint64_t known =
          (d.zero[g] | d.one[g]) & (s.zero[g] | s.one[g]);
      const std::uint64_t x = (d.one[g] ^ s.one[g]) & known;
      d.zero[g] = known & ~x;
      d.one[g] = x;
    }
  }
  /// d == expand(zm, om)? (the activity check).
  static bool eq_expand(const PVW& d, std::uint8_t zm, std::uint8_t om) {
    std::uint64_t acc = 0;
    for (unsigned g = 0; g < kLanes; ++g) {
      acc |= d.zero[g] ^ (0ULL - static_cast<std::uint64_t>((zm >> g) & 1));
      acc |= d.one[g] ^ (0ULL - static_cast<std::uint64_t>((om >> g) & 1));
    }
    return acc == 0;
  }
};

template <class Ops>
inline void eval_wop(std::uint8_t op, const PVW* const* s, std::size_t n,
                     PVW& v) {
  switch (static_cast<WOp>(op)) {
    case kWConst0:
      Ops::expand(v, 0xff, 0x00);
      break;
    case kWConst1:
      Ops::expand(v, 0x00, 0xff);
      break;
    case kWBuf:
    case kWOutput:
      Ops::copy(v, *s[0]);
      break;
    case kWNot:
      Ops::copy(v, *s[0]);
      Ops::not_ip(v);
      break;
    case kWAnd:
    case kWNand:
      Ops::copy(v, *s[0]);
      for (std::size_t k = 1; k < n; ++k) Ops::and_acc(v, *s[k]);
      if (static_cast<WOp>(op) == kWNand) Ops::not_ip(v);
      break;
    case kWOr:
    case kWNor:
      Ops::copy(v, *s[0]);
      for (std::size_t k = 1; k < n; ++k) Ops::or_acc(v, *s[k]);
      if (static_cast<WOp>(op) == kWNor) Ops::not_ip(v);
      break;
    case kWXor:
    case kWXnor:
      Ops::copy(v, *s[0]);
      for (std::size_t k = 1; k < n; ++k) Ops::xor_acc(v, *s[k]);
      if (static_cast<WOp>(op) == kWXnor) Ops::not_ip(v);
      break;
  }
}

#if !defined(NDEBUG)
/// Debug invariant: well-formed planes, and slot 0 of every live lane
/// equals that lane's good value (the good machine never sees injections).
inline bool wv_good_slot0_ok(const PVW& v, std::uint8_t zm, std::uint8_t om,
                             std::uint8_t live) {
  if (!wv_well_formed(v)) return false;
  for (unsigned g = 0; g < kLanes; ++g) {
    if (!((live >> g) & 1)) continue;
    const V3 good = (zm >> g) & 1   ? V3::kZero
                    : (om >> g) & 1 ? V3::kOne
                                    : V3::kX;
    if (wv_slot(v, g, 0) != good) return false;
  }
  return true;
}
#endif

/// One (lane-group, batch) simulation across all frames. Mirrors
/// fsim.cpp::simulate_batch; see WideView for the data contract.
template <class Ops>
void run_group_batch(const WideView& w) {
  std::uint64_t evals = 0, skips = 0;
  for (unsigned g = 0; g < kLanes; ++g) {
    w.det_acc[g] = 0;
    w.pot_acc[g] = 0;
  }
  for (std::size_t i = 0; i < w.dff_count; ++i)
    Ops::fill_x(w.state[w.dff_index[i]]);

  for (std::size_t t = 0; t < w.frames; ++t) {
    const std::uint8_t* zm = w.zm + t * w.num_nodes;
    const std::uint8_t* om = w.om + t * w.num_nodes;
    const std::uint8_t live = w.live[t];

    // Cone sources. A PI carries its good value in every slot (the good
    // trace at a PI is the applied vector; dead lanes are all-X), so it
    // is active only when a stem injection actually changed something.
    for (std::size_t i = 0; i < w.pi_count; ++i) {
      const auto id = static_cast<std::size_t>(w.pi_ids[i]);
      PVW& v = w.val[id];
      Ops::expand(v, zm[id], om[id]);
      bool injected = false;
      for (std::int32_t e = w.inj_head[id]; e >= 0; e = w.inj[e].next)
        if (w.inj[e].pin < 0) {
          wv_force_slot(v, w.inj[e].slot, w.inj[e].stuck1 != 0);
          injected = true;
        }
      w.active[id] = injected && !Ops::eq_expand(v, zm[id], om[id]) ? 1 : 0;
    }
    for (std::size_t i = 0; i < w.dff_count; ++i) {
      const auto id = static_cast<std::size_t>(w.dff_ids[i]);
      PVW& v = w.val[id];
      Ops::copy(v, w.state[w.dff_index[i]]);
      for (std::int32_t e = w.inj_head[id]; e >= 0; e = w.inj[e].next)
        if (w.inj[e].pin < 0)
          wv_force_slot(v, w.inj[e].slot, w.inj[e].stuck1 != 0);
      w.active[id] = Ops::eq_expand(v, zm[id], om[id]) ? 0 : 1;
    }

    // Cone gates and PO markers in topological order.
    for (std::size_t ei = 0; ei < w.eval_count; ++ei) {
      const auto id = static_cast<std::size_t>(w.eval_ids[ei]);
      const std::uint8_t op = w.eval_ops[ei];
      const std::uint32_t fb = w.fanin_begin[id];
      const std::uint32_t fe = w.fanin_begin[id + 1];
      bool act = w.inj_head[id] >= 0;
      if (!act)
        for (std::uint32_t k = fb; k < fe; ++k) {
          const auto f = static_cast<std::size_t>(w.fanin_nodes[k]);
          if (w.in_cone[f] && w.active[f]) {
            act = true;
            break;
          }
        }
      if (!act) {
        ++skips;
        Ops::expand(w.val[id], zm[id], om[id]);
        w.active[id] = 0;
        continue;
      }
      ++evals;
      const std::size_t nfi = fe - fb;
      for (std::size_t k = 0; k < nfi; ++k) {
        const auto f = static_cast<std::size_t>(w.fanin_nodes[fb + k]);
        if (w.in_cone[f]) {
          w.gather_ptrs[k] = &w.val[f];
        } else {
          Ops::expand(w.gather[k], zm[f], om[f]);
          w.gather_ptrs[k] = &w.gather[k];
        }
      }
      PVW& v = w.val[id];
      eval_wop<Ops>(op, w.gather_ptrs, nfi, v);
      for (std::int32_t e = w.inj_head[id]; e >= 0; e = w.inj[e].next) {
        const WInject& j = w.inj[e];
        if (static_cast<WOp>(op) == kWOutput) {
          if (j.pin == 0) wv_force_slot(v, j.slot, j.stuck1 != 0);
        } else if (j.pin < 0) {
          wv_force_slot(v, j.slot, j.stuck1 != 0);
        } else {
          // Recompute this slot scalar with the forced pin, per lane.
          const V3 forced = j.stuck1 ? V3::kOne : V3::kZero;
          for (unsigned g = 0; g < kLanes; ++g) {
            for (std::size_t k = 0; k < nfi; ++k)
              w.v3_gather[k] = wv_slot(*w.gather_ptrs[k], g, j.slot);
            w.v3_gather[static_cast<std::size_t>(j.pin)] = forced;
            wv_set_slot(v, g, j.slot, wv_eval3(op, w.v3_gather, nfi));
          }
        }
      }
      w.active[id] = Ops::eq_expand(v, zm[id], om[id]) ? 0 : 1;
#if !defined(NDEBUG)
      if (!wv_good_slot0_ok(v, zm[id], om[id], live))
        __builtin_trap();  // wide-word invariant broken
#endif
    }

    // Detection per live lane with a known good value: slot differs from
    // good with both known => detect; slot X => potential detect. Slot 0
    // (the good machine) is masked out of both.
    for (std::size_t p = 0; p < w.po_count; ++p) {
      const auto id = static_cast<std::size_t>(w.po_ids[p]);
      const PVW& v = w.val[id];
      const std::uint8_t gz = zm[id] & live;
      const std::uint8_t go = om[id] & live;
      unsigned lanes = gz | go;
      while (lanes) {
        const unsigned g =
            static_cast<unsigned>(__builtin_ctz(lanes));
        lanes &= lanes - 1;
        const std::uint64_t diff =
            (((go >> g) & 1) ? v.zero[g] : v.one[g]) & ~1ULL;
        w.det_acc[g] |= diff;
        w.pot_acc[g] |= ~(v.zero[g] | v.one[g]) & ~1ULL;
      }
    }

    // Clock the cone's flip-flops (D-pin faults inject here).
    for (std::size_t i = 0; i < w.dff_count; ++i) {
      const auto id = static_cast<std::size_t>(w.dff_ids[i]);
      const auto d = static_cast<std::size_t>(w.dff_dnode[i]);
      PVW& v = w.state[w.dff_index[i]];
      if (w.in_cone[d])
        Ops::copy(v, w.val[d]);
      else
        Ops::expand(v, zm[d], om[d]);
      for (std::int32_t e = w.inj_head[id]; e >= 0; e = w.inj[e].next)
        if (w.inj[e].pin == 0)
          wv_force_slot(v, w.inj[e].slot, w.inj[e].stuck1 != 0);
    }
  }

  if (w.count_metrics) {
    *w.gate_evals += evals;
    *w.activity_skips += skips;
  }
}

/// Lane-by-lane verification of a backend's plane ops against the V3
/// truth tables, on deterministic pseudo-random well-formed words.
template <class Ops>
bool backend_selftest() {
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  auto rand_v3 = [&next]() {
    const std::uint64_t r = next() % 3;
    return r == 0 ? V3::kZero : r == 1 ? V3::kOne : V3::kX;
  };
  auto rand_pvw = [&](PVW& d) {
    Ops::fill_x(d);
    for (unsigned g = 0; g < kLanes; ++g)
      for (unsigned s = 0; s < 64; ++s) wv_set_slot(d, g, s, rand_v3());
  };

  bool ok = true;
  for (int round = 0; round < 64 && ok; ++round) {
    PVW a, b, c;
    rand_pvw(a);
    rand_pvw(b);

    // expand / eq_expand round-trip on disjoint lane masks.
    const auto zm = static_cast<std::uint8_t>(next());
    const auto om = static_cast<std::uint8_t>(next() & ~zm);
    Ops::expand(c, zm, om);
    ok = ok && wv_well_formed(c) && Ops::eq_expand(c, zm, om);
    for (unsigned g = 0; g < kLanes && ok; ++g) {
      const V3 want = (zm >> g) & 1   ? V3::kZero
                      : (om >> g) & 1 ? V3::kOne
                                      : V3::kX;
      for (unsigned s = 0; s < 64; ++s) ok = ok && wv_slot(c, g, s) == want;
    }
    // Perturb one slot: eq_expand must notice.
    const unsigned pg = static_cast<unsigned>(next() % kLanes);
    const unsigned ps = static_cast<unsigned>(next() % 64);
    const V3 old = wv_slot(c, pg, ps);
    wv_set_slot(c, pg, ps, old == V3::kOne ? V3::kZero : V3::kOne);
    ok = ok && !Ops::eq_expand(c, zm, om);

    // copy + not/and/or/xor vs V3 semantics, slot by slot.
    for (int op = 0; op < 4 && ok; ++op) {
      Ops::copy(c, a);
      switch (op) {
        case 0:
          Ops::not_ip(c);
          break;
        case 1:
          Ops::and_acc(c, b);
          break;
        case 2:
          Ops::or_acc(c, b);
          break;
        case 3:
          Ops::xor_acc(c, b);
          break;
      }
      ok = ok && wv_well_formed(c);
      for (unsigned g = 0; g < kLanes && ok; ++g)
        for (unsigned s = 0; s < 64 && ok; ++s) {
          const V3 x = wv_slot(a, g, s);
          const V3 y = wv_slot(b, g, s);
          const V3 want = op == 0   ? wv_not3(x)
                          : op == 1 ? wv_and3(x, y)
                          : op == 2 ? wv_or3(x, y)
                                    : wv_xor3(x, y);
          ok = ok && wv_slot(c, g, s) == want;
        }
    }

    // fill_x.
    Ops::fill_x(c);
    ok = ok && Ops::eq_expand(c, 0, 0);
  }
  return ok;
}

}  // namespace
}  // namespace fsim_wide
}  // namespace satpg
