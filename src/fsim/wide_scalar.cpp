// Portable PPSFP kernel: the ScalarOps uint64_t[] backend from
// wide_kernel.h. Always compiled, always runnable; also the semantic
// reference every SIMD tier must match bit-for-bit.
#include "fsim/wide_kernel.h"

namespace satpg {
namespace fsim_wide {

namespace {
void run_scalar(const WideView& w) { run_group_batch<ScalarOps>(w); }
}  // namespace

KernelFn kernel_scalar() { return &run_scalar; }

bool selftest_scalar() { return backend_selftest<ScalarOps>(); }

}  // namespace fsim_wide
}  // namespace satpg
