// Internal handoff from run_fault_simulation (fsim.cpp) to the wide
// pattern-parallel engine (fsim_wide.cpp). Callers must have emitted the
// common fsim.* call metrics and warmed the netlist caches already.
#pragma once

#include "fsim/fsim.h"

namespace satpg {
namespace fsim_wide {

FsimResult run_wide(const Netlist& nl, const std::vector<Fault>& faults,
                    const std::vector<TestSequence>& sequences,
                    const FsimOptions& opts, unsigned max_workers);

}  // namespace fsim_wide
}  // namespace satpg
