#include "atpg/podem.h"

#include <algorithm>

#include "atpg/capture.h"
#include "base/metrics.h"
#include "base/profiler.h"

namespace satpg {

const char* search_phase_name(SearchPhase p) {
  switch (p) {
    case SearchPhase::kIdle:
      return "idle";
    case SearchPhase::kWindow:
      return "window";
    case SearchPhase::kJustify:
      return "justify";
    case SearchPhase::kRedundancy:
      return "redundancy";
  }
  return "idle";
}

namespace {

inline std::uint8_t v3_bit(V3 v) { return v == V3::kOne ? 1 : 0; }

inline void ring_push(PodemBudget& budget, DecisionEventKind kind, int frame,
                      NodeId node, V3 value, std::uint64_t aux) {
  if (budget.ring == nullptr) return;
  budget.ring->push({kind, v3_bit(value), static_cast<std::int32_t>(frame),
                     static_cast<std::int32_t>(node), aux});
}

inline void publish_progress(PodemBudget& budget) {
  if (budget.progress == nullptr) return;
  budget.progress->evals.store(budget.evals, std::memory_order_relaxed);
  budget.progress->backtracks.store(budget.backtracks,
                                    std::memory_order_relaxed);
  budget.progress->implications.store(budget.decisions,
                                      std::memory_order_relaxed);
}

}  // namespace

Podem::Podem(TimeFrameModel& tfm, const Scoap& scoap,
             bool allow_state_decisions, PodemGoal goal,
             std::vector<std::pair<NodeId, V3>> just_targets)
    : tfm_(tfm),
      scoap_(scoap),
      allow_state_(allow_state_decisions),
      goal_(goal),
      just_targets_(std::move(just_targets)),
      base_mark_(tfm.trail_mark()) {
  const auto& topo = tfm_.netlist().topo_order();
  topo_pos_.assign(tfm_.netlist().num_nodes(), 0);
  for (std::size_t i = 0; i < topo.size(); ++i)
    topo_pos_[static_cast<std::size_t>(topo[i])] = static_cast<int>(i);
}

void Podem::reset() {
  stack_.clear();
  tfm_.undo_to(base_mark_);
}

bool Podem::goal_met() const {
  switch (goal_) {
    case PodemGoal::kDetect:
      return tfm_.detected_at_po();
    case PodemGoal::kDetectOrStore:
      return tfm_.detected_at_po() || tfm_.d_reaches_boundary();
    case PodemGoal::kJustify: {
      // The justified state has to hold in the faulty machine as well (the
      // fault is active while the initialization prefix runs): the good
      // rail must equal the target and the faulty rail must not contradict
      // it (an X faulty rail is allowed through — final fault-simulation
      // verification arbitrates those).
      const Netlist& nl = tfm_.netlist();
      for (const auto& [ff, want] : just_targets_) {
        const NodeId d = nl.node(ff).fanins[0];
        const V5 v = tfm_.value(0, d);
        if (v.g != want) return false;
        if (v.f != V3::kX && v.f != want) return false;
      }
      return true;
    }
  }
  return false;
}

bool Podem::failed() const {
  switch (goal_) {
    case PodemGoal::kDetect:
      return !tfm_.effect_still_possible(/*allow_boundary=*/false);
    case PodemGoal::kDetectOrStore:
      return !tfm_.effect_still_possible(/*allow_boundary=*/true);
    case PodemGoal::kJustify: {
      const Netlist& nl = tfm_.netlist();
      for (const auto& [ff, want] : just_targets_) {
        const V5 have = tfm_.value(0, nl.node(ff).fanins[0]);
        if (have.g != V3::kX && have.g != want) return true;
        if (have.f != V3::kX && have.f != want) return true;
      }
      return false;
    }
  }
  return false;
}

std::optional<Podem::Objective> Podem::pick_objective() const {
  const Netlist& nl = tfm_.netlist();

  if (goal_ == PodemGoal::kJustify) {
    for (const auto& [ff, want] : just_targets_) {
      const NodeId d = nl.node(ff).fanins[0];
      if (tfm_.value(0, d).g == V3::kX) return Objective{0, d, want};
    }
    // Good rails are all set; a faulty-rail mismatch surfaces through
    // failed(), an X faulty rail through more input assignments — drive an
    // arbitrary unassigned support input... handled by returning nullopt
    // and letting the search backtrack (the faulty rail is a function of
    // the same decision variables; X there means some good-rail X remains
    // upstream, which later objectives bind).
    return std::nullopt;
  }

  const auto& fault = tfm_.fault();
  SATPG_CHECK(fault.has_value());
  const V3 stuck = fault->stuck1 ? V3::kOne : V3::kZero;
  const V3 excite = v3_not(stuck);

  // Is the fault excited anywhere (any D in the model)?
  const bool have_d = !tfm_.d_set().empty();

  if (!have_d) {
    // Excitation: drive the faulted line to the non-stuck value.
    const NodeId line =
        fault->pin >= 0
            ? nl.node(fault->node)
                  .fanins[static_cast<std::size_t>(fault->pin)]
            : fault->node;
    for (int t = 0; t < tfm_.num_frames(); ++t)
      if (tfm_.value(t, line).g == V3::kX) return Objective{t, line, excite};
    // Line already excited somewhere but the fault effect is masked at the
    // host gate (pin faults): unblock the host gate's other inputs.
    if (fault->pin >= 0) {
      const auto& host = nl.node(fault->node);
      const V3 noncontrol =
          (host.type == GateType::kAnd || host.type == GateType::kNand)
              ? V3::kOne
              : (host.type == GateType::kOr || host.type == GateType::kNor)
                    ? V3::kZero
                    : V3::kZero;
      for (int t = 0; t < tfm_.num_frames(); ++t) {
        if (tfm_.value(t, line).g != excite) continue;
        for (std::size_t k = 0; k < host.fanins.size(); ++k) {
          if (static_cast<int>(k) == fault->pin) continue;
          const NodeId other = host.fanins[k];
          if (tfm_.value(t, other).g == V3::kX)
            return Objective{t, other, noncontrol};
        }
      }
    }
    return std::nullopt;
  }

  // D-frontier: gate with an X-ish output and a D on some input — found by
  // walking the fanouts of the incrementally-maintained D set. Prefer the
  // latest frame and the structurally deepest gate (closest to outputs).
  std::optional<Objective> best;
  int best_frame = -1, best_pos = -1;
  const auto& pos = topo_pos_;
  const auto& fanouts = nl.fanouts();

  for (const auto& [t, d_node] : tfm_.d_set()) {
    for (NodeId id : fanouts[static_cast<std::size_t>(d_node)]) {
      const auto& n = nl.node(id);
      if (!is_combinational(n.type)) continue;
      const V5 out = tfm_.value(t, id);
      if (!out.any_x()) continue;
      // Pick an X side-input and its non-controlling value.
      V3 noncontrol;
      switch (n.type) {
        case GateType::kAnd:
        case GateType::kNand:
          noncontrol = V3::kOne;
          break;
        case GateType::kOr:
        case GateType::kNor:
          noncontrol = V3::kZero;
          break;
        default:
          noncontrol = V3::kZero;  // XOR-family: any value propagates
      }
      for (NodeId fi : n.fanins) {
        if (tfm_.value(t, fi).g != V3::kX) continue;
        if (t > best_frame ||
            (t == best_frame && pos[static_cast<std::size_t>(id)] > best_pos)) {
          best = Objective{t, fi, noncontrol};
          best_frame = t;
          best_pos = pos[static_cast<std::size_t>(id)];
        }
        break;
      }
    }
  }
  return best;
}

std::optional<Podem::Objective> Podem::backtrace(Objective obj) const {
  ProfileSpan prof_span(ProfPhase::kPodemBacktrace);
  const Netlist& nl = tfm_.netlist();
  int frame = obj.frame;
  NodeId node = obj.node;
  V3 v = obj.value;
  for (std::size_t guard = 0;
       guard < nl.num_nodes() * static_cast<std::size_t>(tfm_.num_frames()) +
                   16;
       ++guard) {
    const auto& n = nl.node(node);
    switch (n.type) {
      case GateType::kInput:
        return Objective{frame, node, v};
      case GateType::kDff:
        if (frame == 0)
          return allow_state_ ? std::optional<Objective>({0, node, v})
                              : std::nullopt;
        node = n.fanins[0];
        --frame;
        break;
      case GateType::kOutput:
      case GateType::kBuf:
        node = n.fanins[0];
        break;
      case GateType::kNot:
        node = n.fanins[0];
        v = v3_not(v);
        break;
      case GateType::kConst0:
      case GateType::kConst1:
        return std::nullopt;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool inverted =
            n.type == GateType::kNand || n.type == GateType::kNor;
        const bool and_like =
            n.type == GateType::kAnd || n.type == GateType::kNand;
        const V3 veff = inverted ? v3_not(v) : v;
        // and_like: veff==1 needs ALL inputs 1 (pick hardest X input);
        // veff==0 needs ONE input 0 (pick easiest X input). OR dual.
        const bool need_all = and_like ? (veff == V3::kOne)
                                       : (veff == V3::kZero);
        const V3 child_v = and_like ? (need_all ? V3::kOne : V3::kZero)
                                    : (need_all ? V3::kZero : V3::kOne);
        NodeId choice = kNoNode;
        double best_cost = 0.0;
        for (NodeId fi : n.fanins) {
          if (tfm_.value(frame, fi).g != V3::kX) continue;
          const double cost =
              child_v == V3::kOne
                  ? scoap_.cc1[static_cast<std::size_t>(fi)]
                  : scoap_.cc0[static_cast<std::size_t>(fi)];
          const bool better = choice == kNoNode ||
                              (need_all ? cost > best_cost
                                        : cost < best_cost);
          if (better) {
            choice = fi;
            best_cost = cost;
          }
        }
        if (choice == kNoNode) return std::nullopt;
        node = choice;
        v = child_v;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // Choose an X input; the value needed depends on the other inputs'
        // current parity (X siblings treated as 0 — heuristic, corrected by
        // later decisions or backtracking).
        NodeId choice = kNoNode;
        V3 parity = n.type == GateType::kXnor ? V3::kOne : V3::kZero;
        for (NodeId fi : n.fanins) {
          const V3 val = tfm_.value(frame, fi).g;
          if (val == V3::kX && choice == kNoNode) {
            choice = fi;
          } else if (val == V3::kOne) {
            parity = v3_not(parity);
          }
        }
        if (choice == kNoNode) return std::nullopt;
        node = choice;
        v = (parity == v) ? V3::kZero : V3::kOne;
        break;
      }
    }
  }
  return std::nullopt;  // structural anomaly guard
}

bool Podem::backtrack(PodemBudget& budget) {
  ++budget.backtracks;
  if (metrics_enabled()) {
    static MetricsRegistry::Counter& c =
        MetricsRegistry::global().counter("podem.backtracks");
    c.add();
  }
  while (!stack_.empty()) {
    Decision& top = stack_.back();
    tfm_.undo_to(top.mark);
    if (!top.flipped) {
      top.flipped = true;
      top.value = v3_not(top.value);
      top.mark = tfm_.assign(top.frame, top.node, top.value);
      ++budget.decisions;
      ring_push(budget, DecisionEventKind::kBacktrack, top.frame, top.node,
                top.value, stack_.size());
      return true;
    }
    stack_.pop_back();
  }
  return false;
}

PodemStatus Podem::run(PodemBudget& budget) {
  for (;;) {
    publish_progress(budget);
    if (budget.exhausted_evals() || budget.exhausted_backtracks() ||
        budget.mem_exceeded() || budget.aborted_externally())
      return PodemStatus::kAborted;
    if (goal_met()) return PodemStatus::kSuccess;
    std::optional<Objective> obj;
    if (!failed()) obj = pick_objective();
    if (obj) {
      ring_push(budget, DecisionEventKind::kObjective, obj->frame, obj->node,
                obj->value, 0);
      const auto dec = backtrace(*obj);
      if (dec) {
        const std::size_t mark = tfm_.assign(dec->frame, dec->node,
                                             dec->value);
        stack_.push_back({dec->frame, dec->node, dec->value, false, mark});
        ++budget.decisions;
        ring_push(budget, DecisionEventKind::kDecision, dec->frame, dec->node,
                  dec->value, stack_.size());
        if (metrics_enabled()) {
          static MetricsRegistry::Counter& c =
              MetricsRegistry::global().counter("podem.decisions");
          c.add();
        }
        continue;
      }
    }
    if (!backtrack(budget)) return PodemStatus::kExhausted;
  }
}

PodemStatus Podem::search(PodemBudget& budget) { return run(budget); }

PodemStatus Podem::resume(PodemBudget& budget) {
  if (!backtrack(budget)) return PodemStatus::kExhausted;
  return run(budget);
}

}  // namespace satpg
