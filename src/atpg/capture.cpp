#include "atpg/capture.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/json.h"
#include "base/strutil.h"

namespace satpg {

namespace {

const char* fault_status_name(FaultStatus s) {
  switch (s) {
    case FaultStatus::kDetected:
      return "detected";
    case FaultStatus::kRedundant:
      return "redundant";
    case FaultStatus::kAborted:
      return "aborted";
  }
  return "aborted";
}

bool parse_engine_kind(const std::string& s, EngineKind* out) {
  if (s == "hitec") *out = EngineKind::kHitec;
  else if (s == "forward") *out = EngineKind::kForward;
  else if (s == "learning") *out = EngineKind::kLearning;
  else if (s == "cdcl") *out = EngineKind::kCdcl;
  else return false;
  return true;
}

std::uint64_t parse_hex64(const std::string& s) {
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint64_t>(c - 'A' + 10);
    else return 0;
  }
  return v;
}

bool parse_event_code(const std::string& s, DecisionEventKind* out) {
  if (s == "O") *out = DecisionEventKind::kObjective;
  else if (s == "D") *out = DecisionEventKind::kDecision;
  else if (s == "B") *out = DecisionEventKind::kBacktrack;
  else if (s == "L") *out = DecisionEventKind::kLearnHit;
  else return false;
  return true;
}

}  // namespace

const char* decision_event_code(DecisionEventKind k) {
  switch (k) {
    case DecisionEventKind::kObjective:
      return "O";
    case DecisionEventKind::kDecision:
      return "D";
    case DecisionEventKind::kBacktrack:
      return "B";
    case DecisionEventKind::kLearnHit:
      return "L";
  }
  return "?";
}

std::vector<DecisionEvent> DecisionRing::window() const {
  const std::uint64_t kept =
      std::min<std::uint64_t>(total_, static_cast<std::uint64_t>(capacity_));
  std::vector<DecisionEvent> out;
  out.reserve(static_cast<std::size_t>(kept));
  for (std::uint64_t i = total_ - kept; i < total_; ++i)
    out.push_back(buf_[static_cast<std::size_t>(i % capacity_)]);
  return out;
}

std::string capture_config_digest(const SearchCapture& cap) {
  // Exactly the inputs replay depends on — not the recorded outcome — so a
  // hand-edited event stream still replays (and simply mismatches), while a
  // hand-edited circuit/options pairing is rejected up front.
  const std::string blob = strprintf(
      "%s|%s|%d|%d|%llu|%llu|%d|%d|%llu|%s|%zu|%zu|%d|%llu",
      cap.circuit.c_str(), engine_kind_name(cap.options.kind),
      cap.options.max_forward_frames, cap.options.max_backward_frames,
      static_cast<unsigned long long>(cap.options.backtrack_limit),
      static_cast<unsigned long long>(cap.options.eval_limit),
      cap.options.verify_reject_limit,
      cap.options.share_learning ? 1 : 0,
      static_cast<unsigned long long>(cap.soft_eval_cap),
      cap.fault.c_str(), cap.fault_index, cap.ring_capacity,
      cap.wall_aborted ? 1 : 0,
      static_cast<unsigned long long>(cap.abort_check));
  return fnv1a64_hex(blob);
}

SearchCapture make_capture(const Netlist& nl, const Fault& fault,
                           std::size_t fault_index,
                           const EngineOptions& options,
                           std::uint64_t soft_eval_cap,
                           const std::string& reason, bool wall_aborted,
                           const FaultAttempt& attempt,
                           const DecisionRing& ring) {
  SearchCapture cap;
  cap.circuit = nl.name();
  cap.options = options;
  cap.soft_eval_cap = soft_eval_cap;
  cap.fault = fault_name(nl, fault);
  cap.fault_index = fault_index;
  cap.reason = reason;
  cap.wall_aborted = wall_aborted;
  cap.abort_check = attempt.first_abort_check;
  cap.status = fault_status_name(attempt.status);
  cap.evals = attempt.stats.evals;
  cap.backtracks = attempt.stats.backtracks;
  cap.implications = attempt.stats.implications;
  cap.ring_capacity = ring.capacity();
  cap.ring_total = ring.total();
  cap.events = ring.window();
  cap.config_digest = capture_config_digest(cap);
  return cap;
}

bool write_capture_json(const std::string& path, const SearchCapture& cap) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\"schema\": \"" << json_escape(cap.schema) << "\",\n"
     << " \"circuit\": \"" << json_escape(cap.circuit) << "\",\n"
     << " \"circuit_path\": \"" << json_escape(cap.circuit_path) << "\",\n"
     << " \"engine\": {\"kind\": \"" << engine_kind_name(cap.options.kind)
     << "\", \"max_forward_frames\": " << cap.options.max_forward_frames
     << ", \"max_backward_frames\": " << cap.options.max_backward_frames
     << ", \"backtrack_limit\": " << cap.options.backtrack_limit
     << ", \"eval_limit\": " << cap.options.eval_limit
     << ", \"verify_reject_limit\": " << cap.options.verify_reject_limit
     << ", \"share_learning\": "
     << (cap.options.share_learning ? "true" : "false") << "},\n"
     << " \"seed\": " << cap.seed
     << ", \"soft_eval_cap\": " << cap.soft_eval_cap
     << ", \"config_digest\": \"" << cap.config_digest << "\",\n"
     << " \"fault\": \"" << json_escape(cap.fault) << "\""
     << ", \"fault_index\": " << cap.fault_index
     << ", \"reason\": \"" << json_escape(cap.reason) << "\""
     << ", \"status\": \"" << json_escape(cap.status) << "\""
     << ", \"wall_aborted\": " << (cap.wall_aborted ? "true" : "false")
     << ", \"abort_check\": " << cap.abort_check << ",\n"
     << " \"stats\": {\"evals\": " << cap.evals
     << ", \"backtracks\": " << cap.backtracks
     << ", \"implications\": " << cap.implications << "},\n"
     << " \"ring\": {\"capacity\": " << cap.ring_capacity
     << ", \"total\": " << cap.ring_total << ",\n  \"events\": [";
  for (std::size_t i = 0; i < cap.events.size(); ++i) {
    const DecisionEvent& e = cap.events[i];
    os << (i == 0 ? "\n   " : ",\n   ") << "[\""
       << decision_event_code(e.kind) << "\", " << e.frame << ", " << e.node
       << ", " << static_cast<int>(e.value) << ", \""
       << strprintf("%016llx", static_cast<unsigned long long>(e.aux))
       << "\"]";
  }
  os << "\n  ]}\n}\n";
  return os.good();
}

bool parse_capture_json(const std::string& path, SearchCapture* out,
                        std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = path + ": " + msg;
    return false;
  };
  std::ifstream is(path);
  if (!is) return fail("cannot open");
  std::ostringstream buf;
  buf << is.rdbuf();
  JsonValue root;
  std::string jerr;
  if (!json_parse(buf.str(), &root, &jerr)) return fail(jerr);
  if (!root.is_object()) return fail("not a JSON object");

  SearchCapture cap;
  cap.schema = root.str_or("schema", "");
  if (cap.schema.rfind("satpg.search_capture.", 0) != 0)
    return fail("unexpected schema \"" + cap.schema + "\"");
  cap.circuit = root.str_or("circuit", "");
  cap.circuit_path = root.str_or("circuit_path", "");
  const JsonValue* eng = root.find("engine");
  if (eng == nullptr || !eng->is_object()) return fail("missing engine block");
  if (!parse_engine_kind(eng->str_or("kind", ""), &cap.options.kind))
    return fail("unknown engine kind \"" + eng->str_or("kind", "") + "\"");
  cap.options.max_forward_frames =
      static_cast<int>(eng->num_or("max_forward_frames", 10));
  cap.options.max_backward_frames =
      static_cast<int>(eng->num_or("max_backward_frames", 24));
  cap.options.backtrack_limit = eng->uint_or("backtrack_limit", 4000);
  cap.options.eval_limit = eng->uint_or("eval_limit", 4'000'000);
  cap.options.verify_reject_limit =
      static_cast<int>(eng->num_or("verify_reject_limit", 25));
  cap.options.share_learning = eng->bool_or("share_learning", true);
  cap.seed = root.uint_or("seed", 0);
  cap.soft_eval_cap = root.uint_or("soft_eval_cap", 0);
  cap.config_digest = root.str_or("config_digest", "");
  cap.fault = root.str_or("fault", "");
  cap.fault_index = static_cast<std::size_t>(root.uint_or("fault_index", 0));
  cap.reason = root.str_or("reason", "");
  cap.status = root.str_or("status", "");
  cap.wall_aborted = root.bool_or("wall_aborted", false);
  cap.abort_check = root.uint_or("abort_check", 0);
  if (const JsonValue* stats = root.find("stats")) {
    cap.evals = stats->uint_or("evals", 0);
    cap.backtracks = stats->uint_or("backtracks", 0);
    cap.implications = stats->uint_or("implications", 0);
  }
  const JsonValue* ring = root.find("ring");
  if (ring == nullptr || !ring->is_object()) return fail("missing ring block");
  cap.ring_capacity = static_cast<std::size_t>(
      ring->uint_or("capacity", DecisionRing::kDefaultCapacity));
  if (cap.ring_capacity == 0) return fail("ring capacity must be positive");
  cap.ring_total = ring->uint_or("total", 0);
  const JsonValue* events = ring->find("events");
  if (events == nullptr || !events->is_array())
    return fail("missing ring.events array");
  for (const JsonValue& ev : events->array()) {
    if (!ev.is_array() || ev.array().size() != 5)
      return fail("malformed event (want [code, frame, node, value, aux])");
    const auto& a = ev.array();
    if (!a[0].is_string() || !a[1].is_number() || !a[2].is_number() ||
        !a[3].is_number() || !a[4].is_string())
      return fail("malformed event field types");
    DecisionEvent e;
    if (!parse_event_code(a[0].string(), &e.kind))
      return fail("unknown event code \"" + a[0].string() + "\"");
    e.frame = static_cast<std::int32_t>(a[1].number());
    e.node = static_cast<std::int32_t>(a[2].number());
    e.value = static_cast<std::uint8_t>(a[3].number());
    e.aux = parse_hex64(a[4].string());
    cap.events.push_back(e);
  }
  if (cap.events.size() >
      std::min<std::uint64_t>(cap.ring_total, cap.ring_capacity))
    return fail("more events than the ring could have kept");
  *out = cap;
  return true;
}

ReplayResult replay_capture(const Netlist& nl, const SearchCapture& cap) {
  ReplayResult res;
  if (nl.name() != cap.circuit) {
    res.message = strprintf("circuit mismatch: netlist \"%s\" vs capture \"%s\"",
                            nl.name().c_str(), cap.circuit.c_str());
    return res;
  }
  const std::string digest = capture_config_digest(cap);
  if (!cap.config_digest.empty() && digest != cap.config_digest) {
    res.message = "config_digest mismatch (capture edited?): computed " +
                  digest + " vs recorded " + cap.config_digest;
    return res;
  }
  const auto collapsed = collapse_faults(nl);
  if (cap.fault_index >= collapsed.size()) {
    res.message = strprintf("fault_index %zu out of range (%zu collapsed faults)",
                            cap.fault_index, collapsed.size());
    return res;
  }
  const Fault& fault = collapsed[cap.fault_index].representative;
  const std::string name = fault_name(nl, fault);
  if (name != cap.fault) {
    res.message = "fault name mismatch at index " +
                  std::to_string(cap.fault_index) + ": netlist has \"" + name +
                  "\" vs capture \"" + cap.fault + "\"";
    return res;
  }

  // Re-run the attempt with an identically-configured engine. Only a
  // capture cut short by the wall-clock abort needs intervention: the
  // engine re-cuts the search at the recorded decision-loop check index,
  // which is a pure function of the search path, so the replay follows
  // the identical trajectory through the cut. Deterministic endings
  // (detected/redundant/budget) must reproduce the same stream with no
  // forcing at all.
  nl.topo_order();
  nl.fanouts();
  nl.fanout_cones();
  DecisionRing ring(cap.ring_capacity);
  AtpgEngine engine(nl, cap.options);
  engine.set_decision_ring(&ring);
  engine.set_soft_eval_cap(cap.soft_eval_cap);
  if (cap.abort_check != 0) engine.set_abort_at_check(cap.abort_check);
  const FaultAttempt attempt = engine.generate(fault);

  res.status = fault_status_name(attempt.status);
  res.replayed_events = ring.total();
  res.events = ring.window();

  const std::string learn_note =
      cap.options.kind == EngineKind::kLearning ||
              (cap.options.kind == EngineKind::kCdcl &&
               cap.options.share_learning)
          ? " (note: this engine consults caches warmed by other faults; "
            "single-fault replay cannot reconstruct them — divergence is "
            "expected, see DESIGN.md §7. For kCdcl, re-capture with "
            "--no-shared-learning for a bit-exact replay)"
          : "";
  if (ring.total() != cap.ring_total) {
    res.mismatch_index = static_cast<std::int64_t>(
        std::min<std::uint64_t>(ring.total(), cap.ring_total));
    res.message = strprintf(
        "event count diverged: replay produced %llu events, capture recorded "
        "%llu",
        static_cast<unsigned long long>(ring.total()),
        static_cast<unsigned long long>(cap.ring_total)) + learn_note;
    return res;
  }
  const std::uint64_t base =
      cap.ring_total -
      std::min<std::uint64_t>(cap.ring_total, cap.ring_capacity);
  const std::size_t n = std::min(res.events.size(), cap.events.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (res.events[i] == cap.events[i]) continue;
    res.mismatch_index = static_cast<std::int64_t>(base + i);
    const DecisionEvent& want = cap.events[i];
    const DecisionEvent& got = res.events[i];
    res.message = strprintf(
        "decision stream diverged at absolute event %llu: capture "
        "[%s %d %d %d] vs replay [%s %d %d %d]",
        static_cast<unsigned long long>(base + i),
        decision_event_code(want.kind), want.frame, want.node,
        static_cast<int>(want.value), decision_event_code(got.kind),
        got.frame, got.node, static_cast<int>(got.value)) + learn_note;
    return res;
  }
  if (res.events.size() != cap.events.size()) {
    res.mismatch_index = static_cast<std::int64_t>(base + n);
    res.message = "kept-window size diverged" + learn_note;
    return res;
  }
  res.ok = true;
  res.message = strprintf(
      "replay matched: %llu events (window of %zu), status %s",
      static_cast<unsigned long long>(cap.ring_total), cap.events.size(),
      res.status.c_str());
  return res;
}

}  // namespace satpg
