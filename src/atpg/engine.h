// Structural sequential ATPG engines and the per-circuit driver.
//
// Three engines reproduce the paper's three tools as algorithm families
// (DESIGN.md §2 documents the substitution):
//
//   kHitec    — iterative-array PODEM with free frame-0 state (pseudo
//               primary inputs), forward window growth for propagation and
//               recursive backward state justification. The justification
//               search over concrete state cubes is precisely the part that
//               drowns when the density of encoding collapses.
//   kForward  — forward-time only: the window starts from the all-X
//               power-up state (no pseudo-PI decisions); tests must
//               self-initialize through the reset line. Attest stand-in.
//   kLearning — kHitec plus dynamic state learning: justification outcomes
//               (success prefixes and budget-failures) are cached across
//               faults, the distinguishing feature of SEST.
//
// A fourth engine, kCdcl (atpg/cdcl/), answers the same window/justify/
// redundancy queries with an embedded CDCL SAT solver over a Tseitin
// encoding of the time-frame array, sharing proven-unreachable state cubes
// across faults and workers through the same learning-cache plumbing.
//
// Redundancy identification is sound: a fault is labelled redundant only
// when a complete single-frame search over ALL (state, input) assignments
// proves the effect can never be excited and reach a PO or any flip-flop.
// Everything else undetected is aborted (counts against fault efficiency,
// exactly as in the paper's tables).
//
// Every generated sequence is verified by the fault simulator from the
// all-X power-up state before a fault is declared detected (justification
// runs on the good machine; verification closes that soundness gap).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/reach.h"
#include "atpg/podem.h"
#include "base/events.h"
#include "atpg/scoap.h"
#include "fault/fault.h"
#include "fsim/fsim.h"
#include "netlist/netlist.h"
#include "sim/statekey.h"

namespace satpg {

enum class EngineKind { kHitec, kForward, kLearning, kCdcl };

const char* engine_kind_name(EngineKind k);

struct EngineOptions {
  EngineKind kind = EngineKind::kHitec;
  int max_forward_frames = 10;   ///< propagation window growth limit
  int max_backward_frames = 24;  ///< justification depth limit
  std::uint64_t backtrack_limit = 4000;    ///< per fault, all phases
  std::uint64_t eval_limit = 4'000'000;    ///< per fault, node evaluations
  int verify_reject_limit = 25;  ///< candidate re-derivations per fault
  /// kCdcl only: keep/publish proven-unreachable state cubes across faults
  /// (and, under the parallel driver, across workers). When off, the
  /// engine clears its caches at the start of every generate() so each
  /// attempt is a pure function of (netlist, fault, options) — the mode
  /// `satpg replay` uses, and the baseline for the sharing ablation.
  bool share_learning = true;
};

enum class FaultStatus { kDetected, kRedundant, kAborted };

/// Justification effort split by whether the requested present-state cube
/// intersects the reachable set (analysis/reach's StateValidityOracle).
/// Arrays are indexed by static_cast<size_t>(StateValidity): [0] valid,
/// [1] invalid, [2] unknown. All zeros when no oracle is attached (the
/// kForward engine never justifies, so it stays all-zero too). Every field
/// is deterministic and thread-count invariant — the oracle is immutable
/// and its queries are pure, so classification can never depend on
/// scheduling.
struct EffortAttribution {
  std::array<std::uint64_t, 3> justify_calls{};
  std::array<std::uint64_t, 3> justify_failures{};
  /// Node evaluations spent inside this level's PODEM search for cubes of
  /// each class (nested justification levels attribute to their own cube).
  std::array<std::uint64_t, 3> justify_evals{};
  std::array<std::uint64_t, 3> justify_backtracks{};

  void add(const EffortAttribution& o) {
    for (std::size_t b = 0; b < 3; ++b) {
      justify_calls[b] += o.justify_calls[b];
      justify_failures[b] += o.justify_failures[b];
      justify_evals[b] += o.justify_evals[b];
      justify_backtracks[b] += o.justify_backtracks[b];
    }
  }
  /// Fraction of `total_evals` spent justifying provably-invalid cubes —
  /// the per-fault / per-run `effort_invalid_frac` observable.
  double invalid_frac(std::uint64_t total_evals) const {
    if (total_evals == 0) return 0.0;
    return static_cast<double>(
               justify_evals[static_cast<std::size_t>(
                   StateValidity::kInvalid)]) /
           static_cast<double>(total_evals);
  }
};

/// Per-fault search-effort breakdown (the substrate for the paper's
/// effort-vs-density analysis). Every integer field is a deterministic
/// function of (netlist, fault, options) — independent of thread count and
/// scheduling — and may appear in metrics reports. `wall_seconds` is the
/// lone wall-clock field and must never enter the metrics JSON
/// (DESIGN.md §5).
struct FaultSearchStats {
  std::uint64_t evals = 0;          ///< node evaluations, all phases
  std::uint64_t backtracks = 0;     ///< PODEM backtracks, all phases
  std::uint64_t implications = 0;   ///< decision assignments propagated
  std::uint64_t window_growths = 0; ///< forward frames beyond the first
  std::uint64_t justify_calls = 0;  ///< backward justification recursions
  std::uint64_t justify_failures = 0;  ///< state cubes that failed
  std::uint64_t max_justify_depth = 0; ///< deepest frame reached backward
  std::uint64_t learn_hits = 0;     ///< learning-cache hits (local+shared)
  std::uint64_t learn_misses = 0;   ///< lookups that found nothing
  std::uint64_t learn_inserts = 0;  ///< new entries learned
  std::uint64_t verify_rejects = 0; ///< candidates the fsim refused
  // CDCL-engine counters (all zero for the structural engines). They are
  // raw solver work, NOT budget currency — the one conversion into
  // evals/backtracks is PodemBudget::charge_cdcl.
  std::uint64_t conflicts = 0;        ///< CDCL conflicts, all solvers
  std::uint64_t propagations = 0;     ///< BCP assignments, all solvers
  std::uint64_t restarts = 0;         ///< solver restarts
  std::uint64_t learned_clauses = 0;  ///< clauses learned (pre-reduction)
  std::uint64_t cube_blocks = 0;      ///< blocking clauses imported
  std::uint64_t cube_exports = 0;     ///< unreachable cubes proven+exported
  /// Peak simultaneous accounted bytes of this attempt (base/memstats;
  /// zero when no tally was attached). Logical bytes are a pure function
  /// of the search path, so the field is report-safe.
  std::uint64_t peak_bytes = 0;
  bool budget_exhausted = false;    ///< ran out of evals or backtracks
  double wall_seconds = 0.0;        ///< wall clock; trace/debug only
  /// Justification effort split by state-cube validity (all zeros when the
  /// driver attached no oracle).
  EffortAttribution attribution;
};

struct FaultAttempt {
  FaultStatus status = FaultStatus::kAborted;
  TestSequence sequence;  ///< meaningful when detected
  FaultSearchStats stats; ///< effort spent on this fault
  /// The attempt stopped because the engine's soft eval cap (watchdog
  /// defer mode) ran out — NOT the fault's real eval_limit. The driver
  /// requeues such faults for a full-budget retry.
  bool soft_capped = false;
  /// The attempt tripped the deterministic memory budget
  /// (--mem-budget-mb). The driver parks such faults and requeues them
  /// with the budget lifted, mirroring the soft-cap defer path.
  bool mem_capped = false;
  /// Byte accounting of this attempt (base/memstats): per-subsystem
  /// charges the search made, folded by the driver at its merge barrier in
  /// unit/fault order. All-zero when accounting was not armed.
  MemTally mem;
  /// 1-based decision-loop check index at which the wall-clock abort was
  /// first observed (0 = never). Recorded into search captures so replay
  /// can re-cut the search at the identical point (atpg/capture.h).
  std::uint64_t first_abort_check = 0;
  /// Flight-recorder events of this attempt, in emission order (empty
  /// unless set_record_events(true)). Deterministic: event content is
  /// wall-clock free (base/events.h).
  SearchEventList events;
  /// Cube-sharing provenance: which (exporter, epoch) sources this attempt
  /// benefited from, sorted by (exporter, epoch). Always recorded (cheap);
  /// empty for engines that never hit a shared/learned cube.
  std::vector<CubeSource> cube_sources;
};

/// Read-only view of justification outcomes learned by OTHER engines.
/// The parallel driver hands one to each per-unit engine so kLearning
/// shares state knowledge across workers; the view's visibility rule
/// (which entries a reader may see) is the implementer's contract — the
/// engine just consults it after its local caches miss.
class LearningShare {
 public:
  virtual ~LearningShare() = default;
  /// Known success: fills `prefix` (oldest vector first) and returns true.
  virtual bool lookup_ok(const StateKey& key,
                         std::vector<std::vector<V3>>* prefix) const = 0;
  /// Known complete-search failure for this cube.
  virtual bool lookup_fail(const StateKey& key) const = 0;
  /// Every visible failure cube, sorted by StateKey::to_string(). The
  /// kCdcl engine imports these as blocking clauses at attempt start; the
  /// default (no sharing backend) is empty.
  virtual std::vector<StateKey> fail_cubes() const { return {}; }

  /// A failure cube with its provenance tag: the fault that proved it and
  /// the epoch it became visible in (SharedLearningCache rounds).
  struct FailCubeInfo {
    StateKey key;
    std::string exporter;
    std::uint32_t epoch = 0;
  };
  /// lookup_fail plus provenance (exporter/epoch untouched on miss or when
  /// the backend carries no tags).
  virtual bool lookup_fail_info(const StateKey& key, std::string* exporter,
                                std::uint32_t* epoch) const {
    (void)exporter;
    (void)epoch;
    return lookup_fail(key);
  }
  /// fail_cubes() plus provenance, same order.
  virtual std::vector<FailCubeInfo> fail_cube_infos() const { return {}; }
};

class CdclAtpg;  // atpg/cdcl/cdcl.h

/// Per-circuit deterministic test generator.
class AtpgEngine {
 public:
  AtpgEngine(const Netlist& nl, const EngineOptions& opts);

  FaultAttempt generate(const Fault& fault);

  /// Cumulative work across all generate() calls.
  std::uint64_t total_evals() const { return total_evals_; }
  std::uint64_t total_backtracks() const { return total_backtracks_; }

  /// Consult `share` (may be nullptr) when the local learning caches miss.
  /// kLearning only; ignored by the other engine kinds.
  void set_shared_learning(const LearningShare* share) { shared_ = share; }

  /// Cooperative cancellation: when `*abort` becomes true every in-flight
  /// search returns kAborted at its next decision-loop check. The flag must
  /// outlive the engine. Pass nullptr to detach.
  void set_abort_flag(const std::atomic<bool>* abort) { abort_ = abort; }

  /// Cap the NEXT generate() calls at min(cap, eval_limit) node
  /// evaluations (0 = no cap). Used by the watchdog's defer mode for
  /// deterministic first attempts; because the full-budget retry starts a
  /// fresh PodemBudget, it is bit-identical to an uncapped first attempt.
  void set_soft_eval_cap(std::uint64_t cap) { soft_eval_cap_ = cap; }

  /// Publish live search progress into `cell` (sampled by the run monitor
  /// from another thread). Observation only: the search never reads the
  /// cell, so results are unchanged. Pass nullptr to detach.
  void set_search_progress(SearchProgress* cell) { progress_ = cell; }

  /// Record decision events of each generate() into `ring`
  /// (atpg/capture.h); the ring is reset at the start of every attempt.
  /// Observation only. Pass nullptr to detach.
  void set_decision_ring(DecisionRing* ring) { ring_ = ring; }

  /// Arm per-attempt byte accounting (base/memstats) and/or a
  /// deterministic memory budget. When `armed`, every generate() charges
  /// its allocation-heavy structures into FaultAttempt::mem and reports
  /// the attempt peak in FaultSearchStats::peak_bytes. `limit_bytes` > 0
  /// additionally trips the search (status kAborted, mem_capped set) once
  /// the attempt's peak accounted bytes reach the limit — checked at the
  /// same deterministic decision-loop/conflict points as the eval budget.
  /// Setting a limit implies accounting is armed.
  void set_mem_accounting(bool armed, std::uint64_t limit_bytes) {
    mem_armed_ = armed || limit_bytes != 0;
    mem_limit_ = limit_bytes;
  }

  /// Replay of wall-clock-aborted captures: force the external abort to be
  /// observed at the `check`-th decision-loop check (1-based; 0 = off).
  /// The check count is a pure function of the search path, so cutting at
  /// the recorded index reproduces the aborted attempt bit-for-bit.
  void set_abort_at_check(std::uint64_t check) { abort_at_check_ = check; }

  /// Record flight-recorder events (base/events.h) of each generate() into
  /// FaultAttempt::events. Off by default; when off the only cost on the
  /// search path is one branch on a plain bool.
  void set_record_events(bool on) { record_events_ = on; }

  /// Attribute justification effort by cube validity. The oracle must
  /// outlive the engine; it is never mutated (classifications memoize
  /// per-engine). Pass nullptr to detach — attribution buckets then stay
  /// all-zero. Attaching or detaching the oracle NEVER changes the search
  /// itself: classification is observation only.
  void set_validity_oracle(const StateValidityOracle* oracle) {
    validity_ = (oracle != nullptr && oracle->enabled()) ? oracle : nullptr;
  }

  /// Local learning caches (entries this engine learned itself, plus any it
  /// copied down from the shared view). The parallel driver harvests these
  /// after a work unit completes to publish them.
  const std::unordered_map<StateKey, std::vector<std::vector<V3>>,
                           StateKeyHash>&
  learned_ok() const {
    return learned_ok_;
  }
  const StateSet& learned_fail() const { return learned_fail_; }

  /// Provenance tag of a known failure cube: the fault whose attempt
  /// proved it and — for cubes copied down from the shared view — the
  /// epoch it became visible in (0 = proven locally, not yet published).
  struct CubeOrigin {
    std::string exporter;
    std::uint32_t epoch = 0;
  };
  /// key -> origin for every failure cube this engine knows. The driver's
  /// publish reads the exporter tag; first-writer-wins in the shared cache
  /// keeps original attribution stable when copies are republished.
  const std::unordered_map<StateKey, CubeOrigin, StateKeyHash>&
  cube_origins() const {
    return cube_origins_;
  }

  /// Distinct fully/partially specified state cubes the justification
  /// search visited (Table 6's "#states traversed" uses the good-machine
  /// trajectory of the final tests; this is the search-side counterpart).
  std::size_t justification_cubes_visited() const {
    return cubes_visited_.size();
  }

  /// Candidate tests rejected by in-engine faulty-machine verification.
  std::size_t verify_rejects() const { return verify_rejects_; }

 private:
  // The SAT-based engine is a per-attempt driver over this engine's
  // caches, stats and hooks; generate() delegates to it for kCdcl.
  friend class CdclAtpg;

  struct JustifyOutcome {
    bool ok = false;
    std::vector<std::vector<V3>> prefix;  ///< oldest vector first
  };
  JustifyOutcome justify(const std::vector<std::pair<NodeId, V3>>& cube,
                         int depth, StateSet& on_path, PodemBudget& budget);
  /// Packed key of a state cube ('-' digits are X). O(cube size) via the
  /// precomputed DFF index map.
  StateKey cube_key(const std::vector<std::pair<NodeId, V3>>& cube) const;
  /// Oracle verdict for `key`, memoized per engine (pure queries — the
  /// memo only affects speed, never answers). Returns kUnknown with no
  /// bucket accounting use when no oracle is attached.
  StateValidity classify_cube(const StateKey& key);
  /// Flight-recorder emission: append when recording is armed. The single
  /// bool test is the entire disabled-mode cost (metrics discipline).
  void emit_event(SearchEvent e) {
    if (record_events_) events_buf_.push_back(std::move(e));
  }
  /// Count one provenance hit against (exporter, epoch) for the current
  /// attempt (epoch 0 = unit-local cube).
  void count_cube_source(const std::string& exporter, std::uint32_t epoch) {
    ++attempt_sources_[{exporter, epoch}];
  }
  /// Move the attempt-scoped event buffer and provenance map into the
  /// finished attempt (shared by the structural paths and CdclAtpg).
  void flush_attempt_observability(FaultAttempt* attempt);

  const Netlist& nl_;
  EngineOptions opts_;
  Scoap scoap_;
  std::vector<int> dff_index_;  ///< NodeId -> position in nl.dffs(), or -1
  std::optional<Fault> current_fault_;  ///< fault modelled by justification
  const LearningShare* shared_ = nullptr;
  const std::atomic<bool>* abort_ = nullptr;
  std::uint64_t soft_eval_cap_ = 0;
  std::uint64_t abort_at_check_ = 0;
  bool mem_armed_ = false;
  std::uint64_t mem_limit_ = 0;
  MemTally attempt_mem_;  ///< in-flight tally of the current generate()
  SearchProgress* progress_ = nullptr;
  DecisionRing* ring_ = nullptr;
  const StateValidityOracle* validity_ = nullptr;
  std::unordered_map<StateKey, StateValidity, StateKeyHash> validity_memo_;
  std::uint64_t total_evals_ = 0;
  std::uint64_t total_backtracks_ = 0;
  FaultSearchStats stats_;  ///< in-flight stats of the current generate()
  bool record_events_ = false;
  SearchEventList events_buf_;  ///< in-flight events of the current attempt
  std::string fault_name_;      ///< current fault, for provenance tags
  /// (exporter, epoch) -> hits for the current attempt; ordered map so the
  /// flushed cube_sources vector is deterministically sorted.
  std::map<std::pair<std::string, std::uint32_t>, std::uint64_t>
      attempt_sources_;
  /// Known failure-cube origins (see cube_origins()).
  std::unordered_map<StateKey, CubeOrigin, StateKeyHash> cube_origins_;

  // Learning caches (kLearning only): cube -> known prefix / known failure.
  std::unordered_map<StateKey, std::vector<std::vector<V3>>, StateKeyHash>
      learned_ok_;
  StateSet learned_fail_;
  StateSet cubes_visited_;
  std::size_t verify_rejects_ = 0;
};

// ---- driver -----------------------------------------------------------------

struct AtpgRunOptions {
  EngineOptions engine;
  int random_sequences = 8;    ///< random-phase warm-up sequences
  int random_length = 40;
  std::uint64_t seed = 1;
  /// Total deterministic-phase evaluation budget (the "CPU time" the run is
  /// allowed; 0 = unlimited). Faults not reached before exhaustion abort.
  std::uint64_t total_eval_budget = 0;
  /// Credit potential detections (good output known, faulty X) toward
  /// coverage — the PROOFS-era convention, needed chiefly for reset-line
  /// faults whose faulty machine never initializes. Ablation can turn this
  /// off for strict-detection numbers.
  bool count_potential_detections = true;
  /// Fault-simulation knobs (random phase, per-test fault dropping, final
  /// replay). Defaults to one worker per hardware thread; results are
  /// bit-identical for every thread count.
  FsimOptions fsim;
  /// Build a StateValidityOracle for the circuit and attribute every
  /// justification call/failure/eval/backtrack to a valid/invalid/unknown
  /// bucket (AtpgRunResult::attribution, effort_invalid_frac). Observation
  /// only — never changes search results. Off skips the oracle build and
  /// leaves every bucket zero.
  bool attribute_effort = true;
};

struct AtpgRunResult {
  std::vector<TestSequence> tests;
  // Weighted by equivalence-class sizes (uncollapsed universe).
  double fault_coverage = 0.0;    ///< percent detected
  double fault_efficiency = 0.0;  ///< percent detected-or-redundant
  std::size_t total_faults = 0;   ///< uncollapsed count
  std::size_t detected = 0, redundant = 0, aborted = 0;  ///< weighted
  std::uint64_t evals = 0;         ///< deterministic work metric
  std::uint64_t backtracks = 0;
  // Aggregated FaultSearchStats over the deterministic phase, merged in the
  // same deterministic order as evals/backtracks (parallel driver: unit
  // order, fault order; speculative work counts). Bit-identical at any
  // thread count.
  std::uint64_t implications = 0;
  std::uint64_t window_growths = 0;
  std::uint64_t justify_calls = 0;
  std::uint64_t justify_failures = 0;
  std::uint64_t learn_hits = 0;
  std::uint64_t learn_misses = 0;
  std::uint64_t learn_inserts = 0;
  /// CDCL-engine aggregates (zero for the structural engines), merged in
  /// the same deterministic order as the counters above.
  std::uint64_t conflicts = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t cube_exports = 0;
  /// Justification-effort buckets summed over attempted faults, merged in
  /// the same deterministic order as the counters above.
  EffortAttribution attribution;
  /// attribution.justify_evals[invalid] / evals — the run-level share of
  /// the deterministic work metric burned justifying provably-unreachable
  /// state cubes (the paper's "drowning in invalid states", Figure 3).
  double effort_invalid_frac = 0.0;
  /// How cube validity was decided for this run (disabled when
  /// attribute_effort was off).
  ValidityOracleInfo oracle;
  double wall_seconds = 0.0;
  /// Distinct good-machine states entered while applying the final test
  /// set (the paper's "#states traversed", Tables 6/8).
  StateSet states_traversed;
  std::size_t verify_failures = 0;  ///< generated tests the fsim rejected
  /// (cumulative evals, fault efficiency %) after each deterministic-phase
  /// fault — the series behind the paper's Figure 3. Strict statuses
  /// (potential-detection credit is applied only in the final numbers).
  std::vector<std::pair<std::uint64_t, double>> fe_trace;
};

AtpgRunResult run_atpg(const Netlist& nl, const AtpgRunOptions& opts);

/// Record one fault attempt's search stats into the global metrics
/// registry ("atpg.*" histograms and counters). No-op while metrics are
/// disabled. Both drivers call this once per attempted fault, in their
/// deterministic merge order.
void record_fault_stats(const FaultSearchStats& stats, FaultStatus status);

/// Random test sequences in the shape the study's circuits expect: the
/// first vector asserts the reset line (when present), later vectors pulse
/// it rarely. Used by the driver's random phase and by experiments.
std::vector<TestSequence> make_random_sequences(const Netlist& nl, int count,
                                                int length,
                                                std::uint64_t seed);

/// Replace every X in `seq` with 0 — deterministic, and keeps the reset
/// line quiet. Shared by the serial and parallel drivers so both produce
/// the same fully-specified sequences.
void fill_x_with_zero(TestSequence& seq);

}  // namespace satpg
