#include "atpg/parallel.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "base/json.h"
#include "base/memstats.h"
#include "base/metrics.h"
#include "base/profiler.h"
#include "base/strutil.h"
#include "base/threadpool.h"
#include "base/trace.h"

namespace satpg {

// ---- SharedLearningCache ----------------------------------------------------

SharedLearningCache::SharedLearningCache(std::size_t num_shards)
    : shards_(std::max<std::size_t>(1, num_shards)) {}

bool SharedLearningCache::View::lookup_ok(
    const StateKey& key, std::vector<std::vector<V3>>* prefix) const {
  const Shard& sh = cache_->shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(key);
  if (it == sh.map.end()) return false;
  const Entry& e = it->second;
  if (!e.ok || e.epoch > read_epoch_) return false;
  *prefix = e.prefix;
  return true;
}

bool SharedLearningCache::View::lookup_fail(const StateKey& key) const {
  const Shard& sh = cache_->shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(key);
  if (it == sh.map.end()) return false;
  const Entry& e = it->second;
  return !e.ok && e.epoch <= read_epoch_;
}

bool SharedLearningCache::View::lookup_fail_info(const StateKey& key,
                                                 std::string* exporter,
                                                 std::uint32_t* epoch) const {
  const Shard& sh = cache_->shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(key);
  if (it == sh.map.end()) return false;
  const Entry& e = it->second;
  if (e.ok || e.epoch > read_epoch_) return false;
  if (exporter != nullptr) *exporter = e.exporter;
  if (epoch != nullptr) *epoch = e.epoch;
  return true;
}

std::vector<LearningShare::FailCubeInfo>
SharedLearningCache::View::fail_cube_infos() const {
  // Same frozen-for-the-round snapshot as fail_cubes(), with each entry's
  // provenance tag along for the ride.
  std::vector<FailCubeInfo> cubes;
  for (const Shard& sh : cache_->shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& [key, e] : sh.map)
      if (!e.ok && e.epoch <= read_epoch_)
        cubes.push_back({key, e.exporter, e.epoch});
  }
  std::sort(cubes.begin(), cubes.end(),
            [](const FailCubeInfo& a, const FailCubeInfo& b) {
              return a.key.to_string() < b.key.to_string();
            });
  return cubes;
}

std::vector<StateKey> SharedLearningCache::View::fail_cubes() const {
  // Shard scan, then a canonical sort: the visible set is frozen for the
  // round (same-round publishes carry epoch read_epoch_+1), so the result
  // depends only on the committed cache content, never on shard layout or
  // scheduling.
  std::vector<StateKey> cubes;
  for (const Shard& sh : cache_->shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& [key, e] : sh.map)
      if (!e.ok && e.epoch <= read_epoch_) cubes.push_back(key);
  }
  std::sort(cubes.begin(), cubes.end(),
            [](const StateKey& a, const StateKey& b) {
              return a.to_string() < b.to_string();
            });
  return cubes;
}

void SharedLearningCache::publish(std::uint32_t round, std::uint32_t unit,
                                  const AtpgEngine& engine) {
  const std::uint32_t epoch = round + 1;
  const auto insert = [&](const StateKey& key, bool ok,
                          const std::vector<std::vector<V3>>* prefix,
                          const std::string* exporter) {
    Shard& sh = shard_for(key);
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      // First writer in (epoch, unit) order wins, so the surviving entry
      // does not depend on publish arrival order — and a visible entry is
      // never replaced (any racing publish carries a larger epoch).
      // Provenance tags inherit the same stability: the original
      // exporter's entry survives republishing by beneficiaries.
      const Entry& e = it->second;
      if (std::make_pair(e.epoch, e.unit) <= std::make_pair(epoch, unit))
        return;
    }
    Entry e;
    e.ok = ok;
    e.epoch = epoch;
    e.unit = unit;
    if (prefix != nullptr) e.prefix = *prefix;
    if (exporter != nullptr) e.exporter = *exporter;
    sh.map[key] = std::move(e);
  };
  const auto& origins = engine.cube_origins();
  for (const auto& [key, prefix] : engine.learned_ok())
    insert(key, true, &prefix, nullptr);
  for (const auto& key : engine.learned_fail()) {
    const auto origin = origins.find(key);
    insert(key, false, nullptr,
           origin != origins.end() ? &origin->second.exporter : nullptr);
  }
}

std::size_t SharedLearningCache::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    n += sh.map.size();
  }
  return n;
}

std::uint64_t SharedLearningCache::logical_bytes() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& [key, e] : sh.map) {
      n += key.size() + e.exporter.size() + sizeof(Entry);
      for (const auto& v : e.prefix) n += v.size() * sizeof(V3);
    }
  }
  return n;
}

// ---- driver -----------------------------------------------------------------

namespace {

// Fixed work-unit geometry — deliberately independent of the thread count
// so the round structure (and with it every result bit) never varies with
// num_threads. kUnitSize trades per-unit engine construction (SCOAP) cost
// against fault-drop responsiveness; kUnitsPerRound bounds how much
// speculative generation one round can waste on faults a sibling unit is
// about to drop.
constexpr std::size_t kUnitSize = 4;
constexpr std::size_t kUnitsPerRound = 16;

struct UnitOutcome {
  std::vector<FaultAttempt> attempts;        ///< slot per unit fault
  std::vector<std::uint8_t> budget_skipped;  ///< never attempted: budget
  std::vector<std::uint8_t> deadline_skipped;
  std::size_t verify_rejects = 0;
  /// First triggered capture of this unit (fault order within the unit).
  std::optional<SearchCapture> capture;
};

// ---- live monitoring --------------------------------------------------------

enum class RunPhase : std::uint32_t {
  kRandom = 0,
  kOracle,
  kRounds,
  kReplay,
  kDone,
};

const char* run_phase_name(RunPhase p) {
  switch (p) {
    case RunPhase::kRandom:
      return "random";
    case RunPhase::kOracle:
      return "oracle";
    case RunPhase::kRounds:
      return "rounds";
    case RunPhase::kReplay:
      return "replay";
    case RunPhase::kDone:
      return "done";
  }
  return "?";
}

/// Shared scoreboard between the orchestrating thread (writer, at merge
/// barriers), the workers (writers of their own SearchProgress slot), and
/// the monitor thread (reader). Atomics only — safe to sample mid-round;
/// a heartbeat may catch values from two different merge steps, which is
/// fine for display (DESIGN.md §7).
struct ProgressBoard {
  std::vector<SearchProgress> slots;  ///< one per worker thread
  std::atomic<std::uint32_t> phase{0};
  std::atomic<std::uint32_t> round{0};
  std::atomic<std::uint64_t> faults{0};    ///< collapsed faults
  std::atomic<std::uint64_t> resolved{0};  ///< settled collapsed faults
  std::atomic<std::uint64_t> detected{0};
  std::atomic<std::uint64_t> redundant{0};
  std::atomic<std::uint64_t> aborted{0};
  std::atomic<std::uint64_t> evals{0};  ///< committed (merged) evals
  std::atomic<std::uint64_t> backtracks{0};
  std::atomic<std::uint64_t> tests{0};
  std::atomic<std::uint64_t> coverage_milli{0};  ///< strict FE, milli-%
  std::atomic<std::uint64_t> deferred_parked{0};
  std::atomic<std::uint64_t> stuck_flagged{0};

  explicit ProgressBoard(std::size_t num_slots) : slots(num_slots) {}
};

class AtpgMonitorSource final : public MonitorSource {
 public:
  AtpgMonitorSource(const ProgressBoard* board,
                    std::vector<std::string> fault_names,
                    std::chrono::steady_clock::time_point run_t0,
                    const WatchdogOptions& wd)
      : board_(board),
        fault_names_(std::move(fault_names)),
        run_t0_(run_t0),
        stuck_seconds_(wd.stuck_seconds),
        stuck_evals_(wd.stuck_evals) {}

  std::string heartbeat_json(std::uint64_t seq, double elapsed_s) override {
    const ProgressBoard& b = *board_;
    std::string s = strprintf(
        "{\"schema\": \"satpg.heartbeat.v2\", \"seq\": %llu, "
        "\"elapsed_s\": %.3f, \"phase\": \"%s\", \"round\": %u, "
        "\"faults\": %llu, \"resolved\": %llu, \"detected\": %llu, "
        "\"redundant\": %llu, \"aborted\": %llu, \"coverage_pct\": %.3f, "
        "\"evals\": %llu, \"backtracks\": %llu, \"tests\": %llu, "
        "\"deferred\": %llu, \"stuck_flagged\": %llu, "
        "\"mem_live_bytes\": %llu, \"peak_rss_kb\": %llu, \"inflight\": [",
        static_cast<unsigned long long>(seq), elapsed_s,
        run_phase_name(static_cast<RunPhase>(
            b.phase.load(std::memory_order_relaxed))),
        b.round.load(std::memory_order_relaxed),
        ull(b.faults), ull(b.resolved), ull(b.detected), ull(b.redundant),
        ull(b.aborted),
        static_cast<double>(b.coverage_milli.load(
            std::memory_order_relaxed)) / 1000.0,
        ull(b.evals), ull(b.backtracks), ull(b.tests),
        ull(b.deferred_parked), ull(b.stuck_flagged),
        // Process-level truth rides the heartbeat stream ONLY: VmHWM and
        // the racy registry live count are wall-clock-shaped and never
        // enter a deterministic report (DESIGN.md §11).
        static_cast<unsigned long long>(
            MemStatsRegistry::global().live_bytes()),
        static_cast<unsigned long long>(process_peak_rss_kb()));
    const double run_elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - run_t0_)
                                   .count();
    bool first = true;
    for (std::size_t w = 0; w < b.slots.size(); ++w) {
      const SearchProgress& p = b.slots[w];
      const std::uint64_t tag = p.fault_tag.load(std::memory_order_relaxed);
      if (tag == 0) continue;
      const std::size_t fi = static_cast<std::size_t>(tag - 1);
      const std::string name =
          fi < fault_names_.size() ? fault_names_[fi] : "?";
      const double slot_elapsed = std::max(
          0.0, run_elapsed - static_cast<double>(p.start_us.load(
                                 std::memory_order_relaxed)) /
                                 1e6);
      const std::uint64_t evals = p.evals.load(std::memory_order_relaxed);
      const bool stuck =
          (stuck_seconds_ > 0.0 && slot_elapsed >= stuck_seconds_) ||
          (stuck_evals_ > 0 && evals >= stuck_evals_);
      s += strprintf(
          "%s{\"slot\": %zu, \"fault\": \"%s\", \"phase\": \"%s\", "
          "\"evals\": %llu, \"backtracks\": %llu, \"implications\": %llu, "
          "\"invalid_evals\": %llu, \"conflicts\": %llu, "
          "\"propagations\": %llu, \"restarts\": %llu, "
          "\"elapsed_s\": %.3f, \"stuck\": %s}",
          first ? "" : ", ", w, json_escape(name).c_str(),
          search_phase_name(static_cast<SearchPhase>(
              p.phase.load(std::memory_order_relaxed))),
          static_cast<unsigned long long>(evals),
          static_cast<unsigned long long>(
              p.backtracks.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              p.implications.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              p.invalid_evals.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              p.conflicts.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              p.propagations.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              p.restarts.load(std::memory_order_relaxed)),
          slot_elapsed, stuck ? "true" : "false");
      first = false;
    }
    s += "]}";
    return s;
  }

  std::string progress_line(double elapsed_s) override {
    const ProgressBoard& b = *board_;
    std::size_t inflight = 0;
    for (const SearchProgress& p : b.slots)
      if (p.fault_tag.load(std::memory_order_relaxed) != 0) ++inflight;
    return strprintf(
        "[%8.1fs] %s r%u  %llu/%llu faults  FE %.2f%%  %llu tests  "
        "%llu evals  %zu in-flight  %llu stuck  %llu deferred",
        elapsed_s,
        run_phase_name(static_cast<RunPhase>(
            b.phase.load(std::memory_order_relaxed))),
        b.round.load(std::memory_order_relaxed), ull(b.resolved),
        ull(b.faults),
        static_cast<double>(b.coverage_milli.load(
            std::memory_order_relaxed)) / 1000.0,
        ull(b.tests), ull(b.evals), inflight, ull(b.stuck_flagged),
        ull(b.deferred_parked));
  }

 private:
  static unsigned long long ull(const std::atomic<std::uint64_t>& a) {
    return static_cast<unsigned long long>(
        a.load(std::memory_order_relaxed));
  }

  const ProgressBoard* board_;
  const std::vector<std::string> fault_names_;
  const std::chrono::steady_clock::time_point run_t0_;
  const double stuck_seconds_;
  const std::uint64_t stuck_evals_;
};

/// Resolve CaptureOptions::fault (fault_name string or all-digits
/// collapsed index) against the collapsed list. Returns -1 when unmatched.
std::ptrdiff_t resolve_capture_target(const Netlist& nl,
                                      const std::vector<Fault>& faults,
                                      const std::string& spec) {
  if (spec.empty()) return -1;
  const bool all_digits =
      spec.find_first_not_of("0123456789") == std::string::npos;
  if (all_digits) {
    const std::size_t i = static_cast<std::size_t>(std::atoll(spec.c_str()));
    return i < faults.size() ? static_cast<std::ptrdiff_t>(i) : -1;
  }
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (fault_name(nl, faults[i]) == spec)
      return static_cast<std::ptrdiff_t>(i);
  return -1;
}

}  // namespace

ParallelAtpgResult run_parallel_atpg(const Netlist& nl,
                                     const ParallelAtpgOptions& opts) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  ParallelAtpgResult res;
  AtpgRunResult& run = res.run;

  // Build the netlist's lazy caches before workers share it: the const
  // accessors populate mutable caches on first use and must not race.
  nl.topo_order();
  nl.fanouts();
  nl.fanout_cones();

  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  faults.reserve(collapsed.size());
  for (const auto& cf : collapsed) faults.push_back(cf.representative);

  enum class S { kUndetected, kDetected, kRedundant, kAborted };
  std::vector<S> status(faults.size(), S::kUndetected);
  std::vector<bool> potential(faults.size(), false);
  res.detected_by.assign(faults.size(), -1);
  res.attempted.assign(faults.size(), 0);
  res.fault_stats.assign(faults.size(), FaultSearchStats{});
  res.fault_events.assign(faults.size(), SearchEventList{});
  res.cube_sources.assign(faults.size(), {});

  const unsigned num_threads = opts.num_threads == 0
                                   ? ThreadPool::hardware_threads()
                                   : opts.num_threads;

  // ---- live monitor (observer only; DESIGN.md §7) ----
  // Everything the monitor thread reads is either atomic (the board) or
  // immutable from here on (the fault-name vector, built before start()).
  const bool monitored = opts.monitor.enabled();
  std::unique_ptr<ProgressBoard> board;
  std::unique_ptr<AtpgMonitorSource> source;
  std::unique_ptr<RunMonitor> monitor;
  if (monitored) {
    board = std::make_unique<ProgressBoard>(
        std::max<std::size_t>(1, num_threads));
    board->faults.store(faults.size(), std::memory_order_relaxed);
    std::vector<std::string> names;
    names.reserve(faults.size());
    for (const Fault& f : faults) names.push_back(fault_name(nl, f));
    source = std::make_unique<AtpgMonitorSource>(board.get(),
                                                 std::move(names), t0,
                                                 opts.watchdog);
    monitor = std::make_unique<RunMonitor>(source.get(), opts.monitor);
    monitor->start();
  }
  const auto set_phase = [&](RunPhase p) {
    if (board) board->phase.store(static_cast<std::uint32_t>(p),
                                  std::memory_order_relaxed);
  };
  const auto now_us = [&t0] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              t0)
            .count());
  };

  // ---- watchdog / capture / memory-budget state ----
  const bool wd = opts.watchdog.enabled();
  const bool defer = wd && opts.watchdog.defer;
  // A budget arms per-attempt accounting even when the registry plane is
  // off; mem-capped faults ride the same park-and-requeue machinery as
  // watchdog deferral (and work without it).
  const bool mem_budget = opts.mem_budget_bytes != 0;
  const bool mem_armed = memstats_enabled() || mem_budget;
  res.mem_budget_bytes = opts.mem_budget_bytes;
  std::vector<std::uint8_t> parked(faults.size(), 0);
  std::vector<std::uint8_t> requeued(faults.size(), 0);
  std::vector<std::uint8_t> tripped(faults.size(), 0);
  std::vector<std::uint8_t> was_deferred(faults.size(), 0);
  std::vector<std::uint8_t> mem_parked(faults.size(), 0);
  std::vector<std::uint64_t> trip_evals(faults.size(), 0);
  const bool capturing = opts.capture.armed;
  const std::ptrdiff_t capture_target =
      capturing ? resolve_capture_target(nl, faults, opts.capture.fault)
                : -1;

  // ---- random phase (identical to the serial driver) ----
  set_phase(RunPhase::kRandom);
  const auto random_seqs =
      make_random_sequences(nl, opts.run.random_sequences,
                            opts.run.random_length, opts.run.seed);
  if (!random_seqs.empty()) {
    TraceSpan span("atpg.random_phase");
    const auto fr =
        run_fault_simulation(nl, faults, random_seqs, opts.run.fsim);
    std::vector<int> seq_test_index(random_seqs.size(), -1);
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (fr.detected_at[i] >= 0)
        seq_test_index[static_cast<std::size_t>(fr.detected_at[i])] = 0;
    for (std::size_t s = 0; s < random_seqs.size(); ++s)
      if (seq_test_index[s] >= 0) {
        seq_test_index[s] = static_cast<int>(run.tests.size());
        run.tests.push_back(random_seqs[s]);
      }
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (fr.detected_at[i] >= 0) {
        status[i] = S::kDetected;
        res.detected_by[i] =
            seq_test_index[static_cast<std::size_t>(fr.detected_at[i])];
      }
      if (fr.potential_at[i] >= 0) potential[i] = true;
    }
  }

  // ---- deterministic phase: rounds of fixed work units ----
  // kCdcl shares proven-unreachable cubes through the same epoch-gated
  // cache unless sharing is ablated away (--no-shared-learning).
  const bool learning =
      opts.run.engine.kind == EngineKind::kLearning ||
      (opts.run.engine.kind == EngineKind::kCdcl &&
       opts.run.engine.share_learning);
  // Built once on the orchestrating thread, then shared read-only by every
  // unit engine: the oracle is immutable and classify() is pure, so the
  // attribution buckets are as thread-count invariant as the search stats.
  StateValidityOracle oracle;
  if (opts.run.attribute_effort) {
    TraceSpan oracle_span("atpg.oracle_build");
    set_phase(RunPhase::kOracle);
    oracle = StateValidityOracle::build(nl);
    run.oracle = oracle.info();
  }
  // The oracle's answer structures live for the rest of the run; charge
  // them once, post-build, on the orchestrator (deterministic bytes).
  const MemRegistryScope oracle_mem(
      MemSubsystem::kBddOracle,
      memstats_enabled() ? oracle.footprint_bytes() : 0);
  set_phase(RunPhase::kRounds);
  SharedLearningCache cache;
  std::uint64_t cache_bytes_charged = 0;
  std::atomic<bool> abort{false};
  const bool have_deadline = opts.deadline_ms > 0;
  const auto deadline = t0 + std::chrono::milliseconds(opts.deadline_ms);

  std::size_t w_all = 0;
  for (const auto& cf : collapsed)
    w_all += static_cast<std::size_t>(cf.class_size);
  const auto current_fe = [&]() {
    std::size_t w = 0;
    for (std::size_t j = 0; j < faults.size(); ++j)
      if (status[j] == S::kDetected || status[j] == S::kRedundant)
        w += static_cast<std::size_t>(collapsed[j].class_size);
    return 100.0 * static_cast<double>(w) /
           static_cast<double>(std::max<std::size_t>(1, w_all));
  };

  std::uint64_t committed_evals = 0;
  std::uint64_t committed_backtracks = 0;
  std::size_t verify_rejects = 0;

  std::vector<std::size_t> todo;
  for (std::uint32_t round = 0;; ++round) {
    todo.clear();
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (status[i] == S::kUndetected && !parked[i]) todo.push_back(i);
    if (todo.empty() && (defer || mem_budget)) {
      // Every non-parked fault has settled: requeue the parked ones with
      // the full original budget (and the memory budget lifted). A parked
      // fault a sibling's test already dropped stays dropped; the rest get
      // the exact attempt they would have had without deferral/budget
      // (fresh engine, fresh budget, no cap).
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (!parked[i]) continue;
        parked[i] = 0;
        if (status[i] != S::kUndetected) continue;
        requeued[i] = 1;
        todo.push_back(i);
        if (was_deferred[i]) ++res.deferred_requeued;
        if (mem_parked[i]) ++res.mem_requeued;
      }
      if (board)
        board->deferred_parked.store(0, std::memory_order_relaxed);
    }
    if (todo.empty()) break;

    if (opts.run.total_eval_budget &&
        committed_evals > opts.run.total_eval_budget) {
      for (const std::size_t i : todo) status[i] = S::kAborted;
      break;
    }
    if (have_deadline && (abort.load(std::memory_order_relaxed) ||
                          Clock::now() >= deadline)) {
      abort.store(true, std::memory_order_relaxed);
      res.aborted_by_deadline += todo.size();
      for (const std::size_t i : todo) status[i] = S::kAborted;
      break;
    }

    if (board) board->round.store(round + 1, std::memory_order_relaxed);
    const std::size_t round_faults =
        std::min(todo.size(), kUnitSize * kUnitsPerRound);
    const std::size_t num_units =
        (round_faults + kUnitSize - 1) / kUnitSize;
    std::vector<UnitOutcome> outcome(num_units);
    const std::uint64_t round_start_evals = committed_evals;
    // Soft caps are decided HERE, before the parallel section, from
    // orchestrator-owned state only — workers never read driver state, so
    // which attempts run capped is thread-count invariant.
    std::vector<std::uint8_t> round_capped(round_faults, 0);
    if (defer)
      for (std::size_t k = 0; k < round_faults; ++k)
        round_capped[k] = requeued[todo[k]] ? 0 : 1;
    // Same pre-parallel decision for the memory budget: requeued faults
    // run with the budget lifted.
    std::vector<std::uint8_t> round_mem_limited(round_faults, 0);
    if (mem_budget)
      for (std::size_t k = 0; k < round_faults; ++k)
        round_mem_limited[k] = requeued[todo[k]] ? 0 : 1;

    const auto run_unit = [&](std::size_t u, unsigned w) {
      TraceSpan span("atpg.unit", "atpg");
      const std::size_t lo = u * kUnitSize;
      const std::size_t n = std::min(kUnitSize, round_faults - lo);
      UnitOutcome& out = outcome[u];
      out.attempts.resize(n);
      out.budget_skipped.assign(n, 0);
      out.deadline_skipped.assign(n, 0);
      AtpgEngine engine(nl, opts.run.engine);
      const SharedLearningCache::View view = cache.view_for_round(round);
      if (learning) engine.set_shared_learning(&view);
      engine.set_abort_flag(&abort);
      engine.set_record_events(opts.record_events);
      if (opts.run.attribute_effort) engine.set_validity_oracle(&oracle);
      SearchProgress* cell = board ? &board->slots[w] : nullptr;
      if (cell) engine.set_search_progress(cell);
      DecisionRing ring(opts.capture.ring_capacity);
      if (capturing) engine.set_decision_ring(&ring);
      for (std::size_t k = 0; k < n; ++k) {
        if (have_deadline && Clock::now() >= deadline)
          abort.store(true, std::memory_order_relaxed);
        if (abort.load(std::memory_order_relaxed)) {
          out.deadline_skipped[k] = 1;
          continue;
        }
        // Budget check against the committed count at round start plus
        // this unit's own spend — both deterministic, unlike a live shared
        // counter whose reading would depend on sibling-unit timing.
        if (opts.run.total_eval_budget &&
            round_start_evals + engine.total_evals() >
                opts.run.total_eval_budget) {
          out.budget_skipped[k] = 1;
          continue;
        }
        const std::size_t fi = todo[lo + k];
        const std::uint64_t cap =
            round_capped[lo + k] ? opts.watchdog.stuck_evals : 0;
        engine.set_soft_eval_cap(cap);
        engine.set_mem_accounting(
            mem_armed,
            round_mem_limited[lo + k] ? opts.mem_budget_bytes : 0);
        if (cell) cell->begin_fault(fi + 1, now_us());
        out.attempts[k] = engine.generate(faults[fi]);
        if (cell) cell->end_fault();
        if (capturing && !out.capture) {
          const FaultAttempt& a = out.attempts[k];
          const char* reason = nullptr;
          if (capture_target >= 0 &&
              static_cast<std::size_t>(capture_target) == fi)
            reason = "requested";
          else if (wd && (a.soft_capped ||
                          a.stats.evals >= opts.watchdog.stuck_evals))
            reason = "watchdog";
          else if (have_deadline && a.status == FaultStatus::kAborted &&
                   abort.load(std::memory_order_relaxed))
            reason = "deadline";
          if (reason != nullptr) {
            const bool wall_cut = a.status == FaultStatus::kAborted &&
                                  abort.load(std::memory_order_relaxed);
            out.capture = make_capture(nl, faults[fi], fi, opts.run.engine,
                                       cap, reason, wall_cut, a, ring);
            out.capture->seed = opts.run.seed;
          }
        }
      }
      out.verify_rejects = engine.verify_rejects();
      if (learning)
        cache.publish(round, static_cast<std::uint32_t>(u), engine);
    };

    const auto workers = static_cast<unsigned>(
        std::min<std::size_t>(num_threads, num_units));
    if (workers <= 1) {
      for (std::size_t u = 0; u < num_units; ++u) run_unit(u, 0);
    } else {
      ThreadPool::shared().run_on_workers(workers, [&](unsigned w) {
        for (std::size_t u = w; u < num_units; u += workers)
          run_unit(u, w);
      });
    }

    // ---- merge barrier: unit order, fault order within a unit ----
    TraceSpan merge_span("atpg.merge", "atpg");
    ProfileSpan merge_prof(ProfPhase::kAtpgMerge);
    for (std::size_t u = 0; u < num_units; ++u) {
      const std::size_t lo = u * kUnitSize;
      UnitOutcome& out = outcome[u];
      verify_rejects += out.verify_rejects;
      if (out.capture && !res.capture) res.capture = std::move(out.capture);
      for (std::size_t k = 0; k < out.attempts.size(); ++k) {
        const std::size_t i = todo[lo + k];
        FaultAttempt& attempt = out.attempts[k];
        // Work spent on a fault a sibling unit dropped still counts: the
        // speculation really ran.
        committed_evals += attempt.stats.evals;
        committed_backtracks += attempt.stats.backtracks;
        const bool ran =
            !out.deadline_skipped[k] && !out.budget_skipped[k];
        if (ran) {
          // Speculative attempts fold too — the bytes were really spent —
          // keeping the tally a function of the fixed round structure.
          res.mem.add(attempt.mem);
          if (attempt.mem_capped) ++res.mem_tripped;
          run.implications += attempt.stats.implications;
          run.window_growths += attempt.stats.window_growths;
          run.justify_calls += attempt.stats.justify_calls;
          run.justify_failures += attempt.stats.justify_failures;
          run.learn_hits += attempt.stats.learn_hits;
          run.learn_misses += attempt.stats.learn_misses;
          run.learn_inserts += attempt.stats.learn_inserts;
          run.conflicts += attempt.stats.conflicts;
          run.propagations += attempt.stats.propagations;
          run.restarts += attempt.stats.restarts;
          run.learned_clauses += attempt.stats.learned_clauses;
          run.cube_exports += attempt.stats.cube_exports;
          run.attribution.add(attempt.stats.attribution);
          res.attempted[i] = 1;
          res.fault_stats[i] = attempt.stats;
          res.fault_events[i] = std::move(attempt.events);
          res.cube_sources[i] = std::move(attempt.cube_sources);
          record_fault_stats(attempt.stats, attempt.status);
          // Watchdog flag: a deterministic function of the attempt's own
          // eval count (a capped attempt that hit its cap counts too).
          if (wd && !tripped[i] &&
              (attempt.soft_capped ||
               attempt.stats.evals >= opts.watchdog.stuck_evals)) {
            tripped[i] = 1;
            trip_evals[i] = attempt.stats.evals;
            if (board)
              board->stuck_flagged.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (status[i] != S::kUndetected) continue;  // dropped this round
        if (out.deadline_skipped[k]) {
          status[i] = S::kAborted;
          ++res.aborted_by_deadline;
          continue;
        }
        if (out.budget_skipped[k]) {
          status[i] = S::kAborted;
          continue;
        }
        if (((defer && attempt.soft_capped) ||
             (mem_budget && attempt.mem_capped)) &&
            !requeued[i]) {
          // Park: the fault stays undetected (still droppable by sibling
          // tests) and re-enters the queue with the full budget once the
          // non-parked faults have drained. Memory-budget parks use the
          // same machinery and work with the watchdog off.
          parked[i] = 1;
          if (defer && attempt.soft_capped) was_deferred[i] = 1;
          if (mem_budget && attempt.mem_capped) mem_parked[i] = 1;
          if (board)
            board->deferred_parked.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        switch (attempt.status) {
          case FaultStatus::kRedundant:
            status[i] = S::kRedundant;
            break;
          case FaultStatus::kAborted:
            status[i] = S::kAborted;
            break;
          case FaultStatus::kDetected: {
            fill_x_with_zero(attempt.sequence);
            // Verify and drop everything else this sequence catches.
            std::vector<Fault> remaining;
            std::vector<std::size_t> remap;
            for (std::size_t j = 0; j < faults.size(); ++j)
              if (j == i || status[j] == S::kUndetected) {
                remaining.push_back(faults[j]);
                remap.push_back(j);
              }
            const auto fr = run_fault_simulation(
                nl, remaining, {attempt.sequence}, opts.run.fsim);
            bool target_confirmed = false;
            const int test_index = static_cast<int>(run.tests.size());
            for (std::size_t m = 0; m < remaining.size(); ++m) {
              if (fr.potential_at[m] >= 0) potential[remap[m]] = true;
              if (fr.detected_at[m] < 0) continue;
              if (remap[m] == i) target_confirmed = true;
              status[remap[m]] = S::kDetected;
              res.detected_by[remap[m]] = test_index;
            }
            // The engine verified the target on the faulty machine
            // already; belt-and-braces against simulator disagreement.
            SATPG_CHECK_MSG(target_confirmed,
                            "engine-verified test rejected by parallel fsim");
            run.tests.push_back(std::move(attempt.sequence));
            break;
          }
        }
        run.fe_trace.push_back({committed_evals, current_fe()});
      }
    }

    if (board) {
      std::uint64_t det = 0, red = 0, ab = 0;
      for (std::size_t j = 0; j < faults.size(); ++j) {
        if (status[j] == S::kDetected) ++det;
        else if (status[j] == S::kRedundant) ++red;
        else if (status[j] == S::kAborted) ++ab;
      }
      board->detected.store(det, std::memory_order_relaxed);
      board->redundant.store(red, std::memory_order_relaxed);
      board->aborted.store(ab, std::memory_order_relaxed);
      board->resolved.store(det + red + ab, std::memory_order_relaxed);
      board->evals.store(committed_evals, std::memory_order_relaxed);
      board->backtracks.store(committed_backtracks,
                              std::memory_order_relaxed);
      board->tests.store(run.tests.size(), std::memory_order_relaxed);
      board->coverage_milli.store(
          static_cast<std::uint64_t>(current_fe() * 1000.0),
          std::memory_order_relaxed);
    }

    // Shared-cube accounting happens HERE, at the barrier, never inside
    // publish(): the committed cache content at a round boundary is
    // deterministic (and monotone — epochs only grow), while the publish
    // race inside a round is not. One growth charge per round keeps the
    // registry row thread-count invariant.
    if (learning && memstats_enabled()) {
      const std::uint64_t b = cache.logical_bytes();
      if (b > cache_bytes_charged) {
        MemStatsRegistry::global().charge(MemSubsystem::kSharedCubes,
                                          b - cache_bytes_charged);
        cache_bytes_charged = b;
      }
    }
  }

  // ---- watchdog verdicts (fault-index order: deterministic) ----
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (tripped[i])
      res.stuck_faults.push_back({i, trip_evals[i], was_deferred[i] != 0});
  if (wd && metrics_enabled()) {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("atpg.watchdog_stuck").add(res.stuck_faults.size());
    reg.counter("atpg.watchdog_requeued").add(res.deferred_requeued);
  }

  // ---- accounting (same rules as the serial driver) ----
  std::size_t w_det = 0, w_red = 0, w_abort = 0, w_total = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const std::size_t w = static_cast<std::size_t>(collapsed[i].class_size);
    w_total += w;
    S s = status[i];
    if (opts.run.count_potential_detections && potential[i] &&
        (s == S::kUndetected || s == S::kAborted))
      s = S::kDetected;
    switch (s) {
      case S::kDetected:
        w_det += w;
        break;
      case S::kRedundant:
        w_red += w;
        break;
      default:
        w_abort += w;
    }
  }
  run.total_faults = w_total;
  run.detected = w_det;
  run.redundant = w_red;
  run.aborted = w_abort;
  run.fault_coverage =
      100.0 * static_cast<double>(w_det) /
      static_cast<double>(std::max<std::size_t>(1, w_total));
  run.fault_efficiency =
      100.0 * static_cast<double>(w_det + w_red) /
      static_cast<double>(std::max<std::size_t>(1, w_total));
  run.evals = committed_evals;
  run.backtracks = committed_backtracks;
  run.verify_failures = verify_rejects;
  run.effort_invalid_frac = run.attribution.invalid_frac(run.evals);

  res.status.assign(faults.size(), FaultStatus::kAborted);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (status[i] == S::kDetected)
      res.status[i] = FaultStatus::kDetected;
    else if (status[i] == S::kRedundant)
      res.status[i] = FaultStatus::kRedundant;
  }

  // Final replay for the state-traversal census.
  if (!run.tests.empty()) {
    TraceSpan span("atpg.replay");
    set_phase(RunPhase::kReplay);
    auto fr = run_fault_simulation(nl, {}, run.tests, opts.run.fsim);
    run.states_traversed = std::move(fr.good_states);
  }
  set_phase(RunPhase::kDone);
  // Fold the process-global registry plane (fsim arenas, wide lanes, BDD
  // oracle, shared cubes) into the per-attempt plane folded at the merge
  // barriers. The two planes touch disjoint subsystems, so adding the
  // snapshot never double-counts a byte. Taken after the final replay so
  // its arena charge is included.
  if (memstats_enabled()) res.mem.add(MemStatsRegistry::global().snapshot());
  // Stop (join + final heartbeat) before returning so the stream is
  // complete before the caller writes any report.
  if (monitor) {
    monitor->stop();
    res.heartbeat_samples = monitor->samples();
  }
  run.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return res;
}

}  // namespace satpg
