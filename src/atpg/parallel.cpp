#include "atpg/parallel.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "base/metrics.h"
#include "base/threadpool.h"
#include "base/trace.h"

namespace satpg {

// ---- SharedLearningCache ----------------------------------------------------

SharedLearningCache::SharedLearningCache(std::size_t num_shards)
    : shards_(std::max<std::size_t>(1, num_shards)) {}

bool SharedLearningCache::View::lookup_ok(
    const StateKey& key, std::vector<std::vector<V3>>* prefix) const {
  const Shard& sh = cache_->shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(key);
  if (it == sh.map.end()) return false;
  const Entry& e = it->second;
  if (!e.ok || e.epoch > read_epoch_) return false;
  *prefix = e.prefix;
  return true;
}

bool SharedLearningCache::View::lookup_fail(const StateKey& key) const {
  const Shard& sh = cache_->shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(key);
  if (it == sh.map.end()) return false;
  const Entry& e = it->second;
  return !e.ok && e.epoch <= read_epoch_;
}

void SharedLearningCache::publish(std::uint32_t round, std::uint32_t unit,
                                  const AtpgEngine& engine) {
  const std::uint32_t epoch = round + 1;
  const auto insert = [&](const StateKey& key, bool ok,
                          const std::vector<std::vector<V3>>* prefix) {
    Shard& sh = shard_for(key);
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      // First writer in (epoch, unit) order wins, so the surviving entry
      // does not depend on publish arrival order — and a visible entry is
      // never replaced (any racing publish carries a larger epoch).
      const Entry& e = it->second;
      if (std::make_pair(e.epoch, e.unit) <= std::make_pair(epoch, unit))
        return;
    }
    Entry e;
    e.ok = ok;
    e.epoch = epoch;
    e.unit = unit;
    if (prefix != nullptr) e.prefix = *prefix;
    sh.map[key] = std::move(e);
  };
  for (const auto& [key, prefix] : engine.learned_ok())
    insert(key, true, &prefix);
  for (const auto& key : engine.learned_fail()) insert(key, false, nullptr);
}

std::size_t SharedLearningCache::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    n += sh.map.size();
  }
  return n;
}

// ---- driver -----------------------------------------------------------------

namespace {

// Fixed work-unit geometry — deliberately independent of the thread count
// so the round structure (and with it every result bit) never varies with
// num_threads. kUnitSize trades per-unit engine construction (SCOAP) cost
// against fault-drop responsiveness; kUnitsPerRound bounds how much
// speculative generation one round can waste on faults a sibling unit is
// about to drop.
constexpr std::size_t kUnitSize = 4;
constexpr std::size_t kUnitsPerRound = 16;

struct UnitOutcome {
  std::vector<FaultAttempt> attempts;        ///< slot per unit fault
  std::vector<std::uint8_t> budget_skipped;  ///< never attempted: budget
  std::vector<std::uint8_t> deadline_skipped;
  std::size_t verify_rejects = 0;
};

}  // namespace

ParallelAtpgResult run_parallel_atpg(const Netlist& nl,
                                     const ParallelAtpgOptions& opts) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  ParallelAtpgResult res;
  AtpgRunResult& run = res.run;

  // Build the netlist's lazy caches before workers share it: the const
  // accessors populate mutable caches on first use and must not race.
  nl.topo_order();
  nl.fanouts();
  nl.fanout_cones();

  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  faults.reserve(collapsed.size());
  for (const auto& cf : collapsed) faults.push_back(cf.representative);

  enum class S { kUndetected, kDetected, kRedundant, kAborted };
  std::vector<S> status(faults.size(), S::kUndetected);
  std::vector<bool> potential(faults.size(), false);
  res.detected_by.assign(faults.size(), -1);
  res.attempted.assign(faults.size(), 0);
  res.fault_stats.assign(faults.size(), FaultSearchStats{});

  // ---- random phase (identical to the serial driver) ----
  const auto random_seqs =
      make_random_sequences(nl, opts.run.random_sequences,
                            opts.run.random_length, opts.run.seed);
  if (!random_seqs.empty()) {
    TraceSpan span("atpg.random_phase");
    const auto fr =
        run_fault_simulation(nl, faults, random_seqs, opts.run.fsim);
    std::vector<int> seq_test_index(random_seqs.size(), -1);
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (fr.detected_at[i] >= 0)
        seq_test_index[static_cast<std::size_t>(fr.detected_at[i])] = 0;
    for (std::size_t s = 0; s < random_seqs.size(); ++s)
      if (seq_test_index[s] >= 0) {
        seq_test_index[s] = static_cast<int>(run.tests.size());
        run.tests.push_back(random_seqs[s]);
      }
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (fr.detected_at[i] >= 0) {
        status[i] = S::kDetected;
        res.detected_by[i] =
            seq_test_index[static_cast<std::size_t>(fr.detected_at[i])];
      }
      if (fr.potential_at[i] >= 0) potential[i] = true;
    }
  }

  // ---- deterministic phase: rounds of fixed work units ----
  const unsigned num_threads = opts.num_threads == 0
                                   ? ThreadPool::hardware_threads()
                                   : opts.num_threads;
  const bool learning = opts.run.engine.kind == EngineKind::kLearning;
  // Built once on the orchestrating thread, then shared read-only by every
  // unit engine: the oracle is immutable and classify() is pure, so the
  // attribution buckets are as thread-count invariant as the search stats.
  StateValidityOracle oracle;
  if (opts.run.attribute_effort) {
    TraceSpan oracle_span("atpg.oracle_build");
    oracle = StateValidityOracle::build(nl);
    run.oracle = oracle.info();
  }
  SharedLearningCache cache;
  std::atomic<bool> abort{false};
  const bool have_deadline = opts.deadline_ms > 0;
  const auto deadline = t0 + std::chrono::milliseconds(opts.deadline_ms);

  std::size_t w_all = 0;
  for (const auto& cf : collapsed)
    w_all += static_cast<std::size_t>(cf.class_size);
  const auto current_fe = [&]() {
    std::size_t w = 0;
    for (std::size_t j = 0; j < faults.size(); ++j)
      if (status[j] == S::kDetected || status[j] == S::kRedundant)
        w += static_cast<std::size_t>(collapsed[j].class_size);
    return 100.0 * static_cast<double>(w) /
           static_cast<double>(std::max<std::size_t>(1, w_all));
  };

  std::uint64_t committed_evals = 0;
  std::uint64_t committed_backtracks = 0;
  std::size_t verify_rejects = 0;

  std::vector<std::size_t> todo;
  for (std::uint32_t round = 0;; ++round) {
    todo.clear();
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (status[i] == S::kUndetected) todo.push_back(i);
    if (todo.empty()) break;

    if (opts.run.total_eval_budget &&
        committed_evals > opts.run.total_eval_budget) {
      for (const std::size_t i : todo) status[i] = S::kAborted;
      break;
    }
    if (have_deadline && (abort.load(std::memory_order_relaxed) ||
                          Clock::now() >= deadline)) {
      abort.store(true, std::memory_order_relaxed);
      res.aborted_by_deadline += todo.size();
      for (const std::size_t i : todo) status[i] = S::kAborted;
      break;
    }

    const std::size_t round_faults =
        std::min(todo.size(), kUnitSize * kUnitsPerRound);
    const std::size_t num_units =
        (round_faults + kUnitSize - 1) / kUnitSize;
    std::vector<UnitOutcome> outcome(num_units);
    const std::uint64_t round_start_evals = committed_evals;

    const auto run_unit = [&](std::size_t u) {
      TraceSpan span("atpg.unit", "atpg");
      const std::size_t lo = u * kUnitSize;
      const std::size_t n = std::min(kUnitSize, round_faults - lo);
      UnitOutcome& out = outcome[u];
      out.attempts.resize(n);
      out.budget_skipped.assign(n, 0);
      out.deadline_skipped.assign(n, 0);
      AtpgEngine engine(nl, opts.run.engine);
      const SharedLearningCache::View view = cache.view_for_round(round);
      if (learning) engine.set_shared_learning(&view);
      engine.set_abort_flag(&abort);
      if (opts.run.attribute_effort) engine.set_validity_oracle(&oracle);
      for (std::size_t k = 0; k < n; ++k) {
        if (have_deadline && Clock::now() >= deadline)
          abort.store(true, std::memory_order_relaxed);
        if (abort.load(std::memory_order_relaxed)) {
          out.deadline_skipped[k] = 1;
          continue;
        }
        // Budget check against the committed count at round start plus
        // this unit's own spend — both deterministic, unlike a live shared
        // counter whose reading would depend on sibling-unit timing.
        if (opts.run.total_eval_budget &&
            round_start_evals + engine.total_evals() >
                opts.run.total_eval_budget) {
          out.budget_skipped[k] = 1;
          continue;
        }
        out.attempts[k] = engine.generate(faults[todo[lo + k]]);
      }
      out.verify_rejects = engine.verify_rejects();
      if (learning)
        cache.publish(round, static_cast<std::uint32_t>(u), engine);
    };

    const auto workers = static_cast<unsigned>(
        std::min<std::size_t>(num_threads, num_units));
    if (workers <= 1) {
      for (std::size_t u = 0; u < num_units; ++u) run_unit(u);
    } else {
      ThreadPool::shared().run_on_workers(workers, [&](unsigned w) {
        for (std::size_t u = w; u < num_units; u += workers) run_unit(u);
      });
    }

    // ---- merge barrier: unit order, fault order within a unit ----
    TraceSpan merge_span("atpg.merge", "atpg");
    for (std::size_t u = 0; u < num_units; ++u) {
      const std::size_t lo = u * kUnitSize;
      UnitOutcome& out = outcome[u];
      verify_rejects += out.verify_rejects;
      for (std::size_t k = 0; k < out.attempts.size(); ++k) {
        const std::size_t i = todo[lo + k];
        FaultAttempt& attempt = out.attempts[k];
        // Work spent on a fault a sibling unit dropped still counts: the
        // speculation really ran.
        committed_evals += attempt.stats.evals;
        committed_backtracks += attempt.stats.backtracks;
        const bool ran =
            !out.deadline_skipped[k] && !out.budget_skipped[k];
        if (ran) {
          run.implications += attempt.stats.implications;
          run.window_growths += attempt.stats.window_growths;
          run.justify_calls += attempt.stats.justify_calls;
          run.justify_failures += attempt.stats.justify_failures;
          run.learn_hits += attempt.stats.learn_hits;
          run.learn_misses += attempt.stats.learn_misses;
          run.learn_inserts += attempt.stats.learn_inserts;
          run.attribution.add(attempt.stats.attribution);
          res.attempted[i] = 1;
          res.fault_stats[i] = attempt.stats;
          record_fault_stats(attempt.stats, attempt.status);
        }
        if (status[i] != S::kUndetected) continue;  // dropped this round
        if (out.deadline_skipped[k]) {
          status[i] = S::kAborted;
          ++res.aborted_by_deadline;
          continue;
        }
        if (out.budget_skipped[k]) {
          status[i] = S::kAborted;
          continue;
        }
        switch (attempt.status) {
          case FaultStatus::kRedundant:
            status[i] = S::kRedundant;
            break;
          case FaultStatus::kAborted:
            status[i] = S::kAborted;
            break;
          case FaultStatus::kDetected: {
            fill_x_with_zero(attempt.sequence);
            // Verify and drop everything else this sequence catches.
            std::vector<Fault> remaining;
            std::vector<std::size_t> remap;
            for (std::size_t j = 0; j < faults.size(); ++j)
              if (j == i || status[j] == S::kUndetected) {
                remaining.push_back(faults[j]);
                remap.push_back(j);
              }
            const auto fr = run_fault_simulation(
                nl, remaining, {attempt.sequence}, opts.run.fsim);
            bool target_confirmed = false;
            const int test_index = static_cast<int>(run.tests.size());
            for (std::size_t m = 0; m < remaining.size(); ++m) {
              if (fr.potential_at[m] >= 0) potential[remap[m]] = true;
              if (fr.detected_at[m] < 0) continue;
              if (remap[m] == i) target_confirmed = true;
              status[remap[m]] = S::kDetected;
              res.detected_by[remap[m]] = test_index;
            }
            // The engine verified the target on the faulty machine
            // already; belt-and-braces against simulator disagreement.
            SATPG_CHECK_MSG(target_confirmed,
                            "engine-verified test rejected by parallel fsim");
            run.tests.push_back(std::move(attempt.sequence));
            break;
          }
        }
        run.fe_trace.push_back({committed_evals, current_fe()});
      }
    }
  }

  // ---- accounting (same rules as the serial driver) ----
  std::size_t w_det = 0, w_red = 0, w_abort = 0, w_total = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const std::size_t w = static_cast<std::size_t>(collapsed[i].class_size);
    w_total += w;
    S s = status[i];
    if (opts.run.count_potential_detections && potential[i] &&
        (s == S::kUndetected || s == S::kAborted))
      s = S::kDetected;
    switch (s) {
      case S::kDetected:
        w_det += w;
        break;
      case S::kRedundant:
        w_red += w;
        break;
      default:
        w_abort += w;
    }
  }
  run.total_faults = w_total;
  run.detected = w_det;
  run.redundant = w_red;
  run.aborted = w_abort;
  run.fault_coverage =
      100.0 * static_cast<double>(w_det) /
      static_cast<double>(std::max<std::size_t>(1, w_total));
  run.fault_efficiency =
      100.0 * static_cast<double>(w_det + w_red) /
      static_cast<double>(std::max<std::size_t>(1, w_total));
  run.evals = committed_evals;
  run.backtracks = committed_backtracks;
  run.verify_failures = verify_rejects;
  run.effort_invalid_frac = run.attribution.invalid_frac(run.evals);

  res.status.assign(faults.size(), FaultStatus::kAborted);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (status[i] == S::kDetected)
      res.status[i] = FaultStatus::kDetected;
    else if (status[i] == S::kRedundant)
      res.status[i] = FaultStatus::kRedundant;
  }

  // Final replay for the state-traversal census.
  if (!run.tests.empty()) {
    TraceSpan span("atpg.replay");
    auto fr = run_fault_simulation(nl, {}, run.tests, opts.run.fsim);
    run.states_traversed = std::move(fr.good_states);
  }
  run.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return res;
}

}  // namespace satpg
