#include "atpg/compact.h"

#include <algorithm>

#include "fault/fault.h"

namespace satpg {

CompactionResult compact_tests(const Netlist& nl,
                               const std::vector<TestSequence>& tests) {
  CompactionResult res;
  res.before = tests.size();

  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  for (const auto& cf : collapsed) faults.push_back(cf.representative);

  // Baseline coverage.
  const auto base = run_fault_simulation(nl, faults, tests);
  res.detected_before = base.num_detected;

  // Reverse order: later (deterministic, targeted) sequences first.
  std::vector<bool> covered(faults.size(), false);
  std::vector<const TestSequence*> kept;
  for (std::size_t k = tests.size(); k-- > 0;) {
    std::vector<Fault> remaining;
    std::vector<std::size_t> remap;
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (!covered[i] && base.detected_at[i] >= 0) {
        remaining.push_back(faults[i]);
        remap.push_back(i);
      }
    if (remaining.empty()) break;
    const auto fr = run_fault_simulation(nl, remaining, {tests[k]});
    bool useful = false;
    for (std::size_t i = 0; i < remaining.size(); ++i)
      if (fr.detected_at[i] >= 0) {
        covered[remap[i]] = true;
        useful = true;
      }
    if (useful) kept.push_back(&tests[k]);
  }
  // Restore original relative order.
  std::reverse(kept.begin(), kept.end());
  for (const auto* t : kept) res.tests.push_back(*t);
  res.after = res.tests.size();

  const auto post = run_fault_simulation(nl, faults, res.tests);
  res.detected_after = post.num_detected;
  SATPG_CHECK_MSG(res.detected_after >= res.detected_before,
                  "compaction lost strict coverage");
  return res;
}

}  // namespace satpg
