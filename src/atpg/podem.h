// PODEM search over the dual-rail time-frame model.
//
// Decision variables are primary inputs (any frame) and — when state
// decisions are enabled — the frame-0 flip-flop values (pseudo primary
// inputs). Objectives are met by backtracing through X-valued lines with
// SCOAP guidance, branch-and-bound with value flipping on backtrack.
//
// Three goals cover the engines' needs:
//   kDetect        — some PO carries D/D' (a test exists within the window)
//   kDetectOrStore — D/D' at a PO or at a last-frame FF D input (used by
//                    the sound single-frame redundancy check: a fault that
//                    can never be excited-and-stored from ANY state/input
//                    is sequentially redundant)
//   kJustify       — given (FF, value) targets, make frame-0 next-state
//                    lines produce them (used frame-by-frame by backward
//                    state justification)
//
// search() runs to the first solution; resume() continues the same search
// for the next distinct solution (HITEC-style state-cube re-selection when
// a justification attempt fails).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "atpg/scoap.h"
#include "atpg/tfm.h"
#include "base/memstats.h"

namespace satpg {

enum class PodemGoal { kDetect, kDetectOrStore, kJustify };
enum class PodemStatus { kSuccess, kExhausted, kAborted };

class DecisionRing;  // atpg/capture.h

/// What a fault search is doing right now, for live display.
enum class SearchPhase : std::uint32_t {
  kIdle = 0,
  kWindow,      ///< forward-window detection search
  kJustify,     ///< backward state justification
  kRedundancy,  ///< single-frame complete redundancy proof
};

const char* search_phase_name(SearchPhase p);

/// Live progress cell for one in-flight fault search, sampled by the run
/// monitor (base/monitor.h) from another thread. Strictly observational:
/// the search writes relaxed stores at coarse checkpoints (one per
/// decision/backtrack, plus phase boundaries) and never reads it back, so
/// attaching a cell cannot perturb any deterministic result. `fault_tag`
/// is 1 + the driver's collapsed-fault index while a search is in flight,
/// 0 when the slot is idle.
struct alignas(64) SearchProgress {
  std::atomic<std::uint64_t> fault_tag{0};
  std::atomic<std::uint32_t> phase{0};  ///< SearchPhase
  std::atomic<std::uint64_t> evals{0};
  std::atomic<std::uint64_t> backtracks{0};
  std::atomic<std::uint64_t> implications{0};
  std::atomic<std::uint64_t> invalid_evals{0};  ///< attribution-so-far
  std::atomic<std::uint64_t> start_us{0};  ///< run-relative attempt start
  // Native CDCL counters (zero for structural engines) — the budget
  // conversion hides solver dynamics, so a stuck --engine=cdcl search is
  // opaque without these.
  std::atomic<std::uint64_t> conflicts{0};
  std::atomic<std::uint64_t> propagations{0};
  std::atomic<std::uint64_t> restarts{0};

  void begin_fault(std::uint64_t tag, std::uint64_t now_us) {
    evals.store(0, std::memory_order_relaxed);
    backtracks.store(0, std::memory_order_relaxed);
    implications.store(0, std::memory_order_relaxed);
    invalid_evals.store(0, std::memory_order_relaxed);
    conflicts.store(0, std::memory_order_relaxed);
    propagations.store(0, std::memory_order_relaxed);
    restarts.store(0, std::memory_order_relaxed);
    phase.store(0, std::memory_order_relaxed);
    start_us.store(now_us, std::memory_order_relaxed);
    fault_tag.store(tag, std::memory_order_relaxed);
  }
  void end_fault() { fault_tag.store(0, std::memory_order_relaxed); }
};

struct PodemBudget {
  std::uint64_t max_backtracks = 1000;
  std::uint64_t max_evals = 2'000'000;
  // Consumed counters (shared across ALL phases of one fault — window
  // growth, every justification level, and the redundancy check). `evals`
  // is fed live by each phase's TimeFrameModel via attach_eval_counter(),
  // so no phase can restart the count.
  std::uint64_t backtracks = 0;
  std::uint64_t evals = 0;
  /// Decision assignments applied (initial picks and backtrack flips) —
  /// each triggers one forward-implication pass over the model.
  std::uint64_t decisions = 0;
  /// Cooperative cancellation (wall-clock deadline): when set and true, the
  /// search returns kAborted at the next decision-loop check.
  const std::atomic<bool>* abort = nullptr;
  /// Optional live-progress cell (monitor sampling) — written, never read.
  SearchProgress* progress = nullptr;
  /// Optional decision-event recorder (atpg/capture.h) for deterministic
  /// capture/replay. Owned by the engine's caller.
  DecisionRing* ring = nullptr;
  /// Abort-check bookkeeping for replay: `abort_checks` counts
  /// aborted_externally() calls, `first_abort_check` records the 1-based
  /// check index at which the wall-clock abort was first observed (0 =
  /// never). A replay sets `abort_at_check` to that index to force the
  /// abort at the exact same decision-loop check, making even wall-clock
  /// cuts bit-reproducible (the check count, unlike elapsed time, is a
  /// pure function of the search path).
  std::uint64_t abort_checks = 0;
  std::uint64_t first_abort_check = 0;
  std::uint64_t abort_at_check = 0;
  /// Byte accounting for this fault (base/memstats): every phase charges
  /// its allocation-heavy structures here (TFM frames, CNF encoder, CDCL
  /// clause DB, decision ring). nullptr = accounting off — the pointer
  /// test is the entire disabled-mode cost.
  MemTally* mem = nullptr;
  /// Deterministic memory budget in accounted bytes (0 = unlimited). The
  /// trip condition compares the attempt's PEAK accounted bytes — a
  /// monotone pure function of the search path — at the same
  /// decision-loop/conflict checkpoints the eval budget uses, so a
  /// budgeted run degrades identically at any thread count.
  std::uint64_t mem_limit = 0;

  /// THE conversion from CDCL work to the budget's common currency — every
  /// engine kind draws on the same eval_limit/backtrack_limit pair, so the
  /// exchange rate lives here, once, instead of per-call-site (DESIGN.md
  /// §9). Each BCP propagation is one eval (one implied line value — the
  /// same granularity as a structural node evaluation), and each conflict
  /// is one backtrack plus kCdclConflictEvals evals (conflict analysis
  /// re-walks the implication graph it cancels). Nothing else may scale
  /// CDCL counters into evals/backtracks.
  static constexpr std::uint64_t kCdclConflictEvals = 8;
  void charge_cdcl(std::uint64_t conflicts, std::uint64_t propagations) {
    const std::uint64_t add = propagations + conflicts * kCdclConflictEvals;
    SATPG_DCHECK(evals + add >= evals);  // additive, never resets or wraps
    evals += add;
    backtracks += conflicts;
  }

  bool exhausted_backtracks() const { return backtracks >= max_backtracks; }
  bool exhausted_evals() const { return evals >= max_evals; }
  bool mem_exceeded() const {
    return mem_limit != 0 && mem != nullptr && mem->peak >= mem_limit;
  }
  /// Early-warning threshold (3/4 of the limit): the CDCL engine responds
  /// by tightening its clause-DB reduction schedule before the hard trip.
  bool mem_pressure() const {
    return mem_limit != 0 && mem != nullptr &&
           mem->peak >= mem_limit - mem_limit / 4;
  }
  bool aborted_externally() {
    ++abort_checks;
    if (abort_at_check != 0 && abort_checks >= abort_at_check) return true;
    if (abort == nullptr || !abort->load(std::memory_order_relaxed))
      return false;
    if (first_abort_check == 0) first_abort_check = abort_checks;
    return true;
  }
};

class Podem {
 public:
  /// `just_targets`: for kJustify, required good values on the D inputs of
  /// these flip-flops at frame 0.
  Podem(TimeFrameModel& tfm, const Scoap& scoap, bool allow_state_decisions,
        PodemGoal goal,
        std::vector<std::pair<NodeId, V3>> just_targets = {});

  PodemStatus search(PodemBudget& budget);
  /// After kSuccess: backtrack once and keep searching (next solution).
  PodemStatus resume(PodemBudget& budget);

  /// Assigned decision values after kSuccess.
  V3 pi_value(int frame, NodeId pi) const {
    return tfm_.decision_value(frame, pi);
  }
  V3 state_value(NodeId ff) const { return tfm_.decision_value(0, ff); }

  /// Undo every decision this solver made (restores the TFM).
  void reset();

 private:
  struct Decision {
    int frame;
    NodeId node;
    V3 value;
    bool flipped;
    std::size_t mark;
  };
  struct Objective {
    int frame;
    NodeId node;
    V3 value;
  };

  bool goal_met() const;
  bool failed() const;
  std::optional<Objective> pick_objective() const;
  std::optional<Objective> backtrace(Objective obj) const;
  /// Returns false when the decision stack is exhausted.
  bool backtrack(PodemBudget& budget);
  PodemStatus run(PodemBudget& budget);

  TimeFrameModel& tfm_;
  const Scoap& scoap_;
  bool allow_state_;
  PodemGoal goal_;
  std::vector<std::pair<NodeId, V3>> just_targets_;
  std::vector<Decision> stack_;
  std::size_t base_mark_;
  std::vector<int> topo_pos_;
};

}  // namespace satpg
