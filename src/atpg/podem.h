// PODEM search over the dual-rail time-frame model.
//
// Decision variables are primary inputs (any frame) and — when state
// decisions are enabled — the frame-0 flip-flop values (pseudo primary
// inputs). Objectives are met by backtracing through X-valued lines with
// SCOAP guidance, branch-and-bound with value flipping on backtrack.
//
// Three goals cover the engines' needs:
//   kDetect        — some PO carries D/D' (a test exists within the window)
//   kDetectOrStore — D/D' at a PO or at a last-frame FF D input (used by
//                    the sound single-frame redundancy check: a fault that
//                    can never be excited-and-stored from ANY state/input
//                    is sequentially redundant)
//   kJustify       — given (FF, value) targets, make frame-0 next-state
//                    lines produce them (used frame-by-frame by backward
//                    state justification)
//
// search() runs to the first solution; resume() continues the same search
// for the next distinct solution (HITEC-style state-cube re-selection when
// a justification attempt fails).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "atpg/scoap.h"
#include "atpg/tfm.h"

namespace satpg {

enum class PodemGoal { kDetect, kDetectOrStore, kJustify };
enum class PodemStatus { kSuccess, kExhausted, kAborted };

struct PodemBudget {
  std::uint64_t max_backtracks = 1000;
  std::uint64_t max_evals = 2'000'000;
  // Consumed counters (shared across ALL phases of one fault — window
  // growth, every justification level, and the redundancy check). `evals`
  // is fed live by each phase's TimeFrameModel via attach_eval_counter(),
  // so no phase can restart the count.
  std::uint64_t backtracks = 0;
  std::uint64_t evals = 0;
  /// Decision assignments applied (initial picks and backtrack flips) —
  /// each triggers one forward-implication pass over the model.
  std::uint64_t decisions = 0;
  /// Cooperative cancellation (wall-clock deadline): when set and true, the
  /// search returns kAborted at the next decision-loop check.
  const std::atomic<bool>* abort = nullptr;

  bool exhausted_backtracks() const { return backtracks >= max_backtracks; }
  bool exhausted_evals() const { return evals >= max_evals; }
  bool aborted_externally() const {
    return abort != nullptr && abort->load(std::memory_order_relaxed);
  }
};

class Podem {
 public:
  /// `just_targets`: for kJustify, required good values on the D inputs of
  /// these flip-flops at frame 0.
  Podem(TimeFrameModel& tfm, const Scoap& scoap, bool allow_state_decisions,
        PodemGoal goal,
        std::vector<std::pair<NodeId, V3>> just_targets = {});

  PodemStatus search(PodemBudget& budget);
  /// After kSuccess: backtrack once and keep searching (next solution).
  PodemStatus resume(PodemBudget& budget);

  /// Assigned decision values after kSuccess.
  V3 pi_value(int frame, NodeId pi) const {
    return tfm_.decision_value(frame, pi);
  }
  V3 state_value(NodeId ff) const { return tfm_.decision_value(0, ff); }

  /// Undo every decision this solver made (restores the TFM).
  void reset();

 private:
  struct Decision {
    int frame;
    NodeId node;
    V3 value;
    bool flipped;
    std::size_t mark;
  };
  struct Objective {
    int frame;
    NodeId node;
    V3 value;
  };

  bool goal_met() const;
  bool failed() const;
  std::optional<Objective> pick_objective() const;
  std::optional<Objective> backtrace(Objective obj) const;
  /// Returns false when the decision stack is exhausted.
  bool backtrack(PodemBudget& budget);
  PodemStatus run(PodemBudget& budget);

  TimeFrameModel& tfm_;
  const Scoap& scoap_;
  bool allow_state_;
  PodemGoal goal_;
  std::vector<std::pair<NodeId, V3>> just_targets_;
  std::vector<Decision> stack_;
  std::size_t base_mark_;
  std::vector<int> topo_pos_;
};

}  // namespace satpg
