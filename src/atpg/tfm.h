// Dual-rail time-frame model: the iterative-array circuit expansion that
// every structural sequential ATPG in this study is built on.
//
// Values are pairs (good, faulty) of three-valued logic — the classic
// 5-valued D-calculus {0,1,X,D,D'} plus the partially-known combinations.
// The target fault (when present) is injected on the faulty rail in every
// frame: stuck-at faults are permanent.
//
// The model holds a window of frames [0, num_frames). Frame 0's flip-flop
// values are *pseudo primary inputs* — free variables a HITEC-style engine
// decides on and later justifies. Assignments are made only on decision
// variables (a PI at any frame, or a frame-0 FF); implication is forward
// event propagation in (frame, topological) order with a trail for O(1)
// backtracking.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "netlist/netlist.h"
#include "sim/value.h"

namespace satpg {

/// Dual-rail value.
struct V5 {
  V3 g = V3::kX;  ///< good machine
  V3 f = V3::kX;  ///< faulty machine
  bool operator==(const V5&) const = default;

  bool is_d() const {  // D or D': both known, different
    return g != V3::kX && f != V3::kX && g != f;
  }
  bool any_x() const { return g == V3::kX || f == V3::kX; }
};

class TimeFrameModel {
 public:
  /// `fault` absent models the fault-free machine (used by justification).
  TimeFrameModel(const Netlist& nl, std::optional<Fault> fault,
                 int num_frames);
  /// Flushes this model's eval count into the "tfm.evals" registry counter
  /// (one bulk add per model, never per evaluation).
  ~TimeFrameModel();

  const Netlist& netlist() const { return nl_; }
  int num_frames() const { return num_frames_; }

  V5 value(int frame, NodeId node) const {
    return values_[flat(frame, node)];
  }

  /// Assign a decision variable: a PI at any frame or a FF at frame 0.
  /// Both rails take `v` (stem faults on the variable keep the faulty rail
  /// pinned). Returns the trail mark to undo to.
  std::size_t assign(int frame, NodeId node, V3 v);

  /// Undo assignments/propagations back to `mark`.
  void undo_to(std::size_t mark);
  std::size_t trail_mark() const { return trail_.size(); }

  bool is_decision_var(int frame, NodeId node) const;
  /// Current decision value (X when unassigned).
  V3 decision_value(int frame, NodeId node) const;

  /// Total node evaluations performed — the study's deterministic work
  /// metric ("CPU seconds" proxy).
  std::uint64_t evals() const { return evals_; }

  /// Logical footprint of the window's dense arrays (element counts x
  /// element sizes, fixed at construction) — the deterministic byte charge
  /// a search phase records against base/memstats.
  std::uint64_t footprint_bytes() const {
    return values_.size() * sizeof(V5) + decisions_.size() * sizeof(V3) +
           topo_pos_.size() * sizeof(int) + by_topo_.size() * sizeof(NodeId) +
           in_queue_.size() * sizeof(char);
  }

  /// Mirror every evaluation into an external counter as well (e.g. the
  /// fault-cumulative PodemBudget::evals, which outlives any one model).
  /// Pass nullptr to detach. The counter must outlive the attachment.
  void attach_eval_counter(std::uint64_t* counter) {
    external_evals_ = counter;
  }

  /// Fault-effect presence: any D/D' on a PO marker within the window.
  bool detected_at_po() const;
  /// Any D/D' on a D-input of the last frame's flip-flops (effect would
  /// cross into the next frame).
  bool d_reaches_boundary() const;

  /// Conservative X-path check: can the fault effect still reach a PO in
  /// the window, or the window boundary (when `allow_boundary`)? Also true
  /// while the fault is not yet excited but still excitable.
  bool effect_still_possible(bool allow_boundary) const;

  /// Current (frame, node) pairs carrying D/D' — maintained incrementally
  /// so the PODEM inner loop never rescans the window.
  const std::set<std::pair<int, NodeId>>& d_set() const { return d_set_; }

  const std::optional<Fault>& fault() const { return fault_; }

 private:
  std::size_t flat(int frame, NodeId node) const {
    return static_cast<std::size_t>(frame) * nl_.num_nodes() +
           static_cast<std::size_t>(node);
  }
  void set_value(std::size_t idx, V5 v);
  void mark_dirty(int frame, NodeId node);
  void propagate();
  V5 compute(int frame, NodeId node) const;
  V3 faulty_eval(int frame, const Node& n, NodeId id) const;

  const Netlist& nl_;
  std::optional<Fault> fault_;
  int num_frames_;
  std::vector<V5> values_;
  std::vector<V3> decisions_;  ///< per flat index; X = unassigned

  // topo position per node, and reverse lookup used by the dirty queue.
  std::vector<int> topo_pos_;
  std::vector<NodeId> by_topo_;

  struct TrailEntry {
    std::size_t idx;
    V5 old_value;
    bool decision;
  };
  std::vector<TrailEntry> trail_;

  // Dirty queue: bucket per (frame, topo position).
  std::vector<char> in_queue_;
  std::vector<std::vector<int>> queue_;  // per frame, topo positions (heap)

  std::set<std::pair<int, NodeId>> d_set_;

  std::uint64_t evals_ = 0;
  std::uint64_t* external_evals_ = nullptr;
};

}  // namespace satpg
