// SCOAP-style sequential testability measures (backtrace guidance).
//
// CC0/CC1 approximate the effort to set a line to 0/1. Primary inputs cost
// 1; combinational gates follow the classic SCOAP rules; a flip-flop's
// output costs its D-input controllability plus a sequential penalty —
// iterated to a fixpoint so state feedback settles. The absolute numbers
// only steer heuristics (which X input PODEM backtraces through), so
// convergence tolerance is loose.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace satpg {

struct Scoap {
  std::vector<double> cc0;  ///< per node
  std::vector<double> cc1;
};

Scoap compute_scoap(const Netlist& nl, int iterations = 8,
                    double seq_penalty = 20.0);

}  // namespace satpg
