#include "atpg/tfm.h"

#include <algorithm>

#include "base/metrics.h"

namespace satpg {

TimeFrameModel::TimeFrameModel(const Netlist& nl, std::optional<Fault> fault,
                               int num_frames)
    : nl_(nl), fault_(std::move(fault)), num_frames_(num_frames) {
  SATPG_CHECK(num_frames >= 1);
  const std::size_t total =
      static_cast<std::size_t>(num_frames) * nl.num_nodes();
  values_.assign(total, V5{});
  decisions_.assign(total, V3::kX);
  topo_pos_.assign(nl.num_nodes(), -1);
  by_topo_ = nl.topo_order();
  for (std::size_t i = 0; i < by_topo_.size(); ++i)
    topo_pos_[static_cast<std::size_t>(by_topo_[i])] = static_cast<int>(i);
  in_queue_.assign(total, 0);
  queue_.resize(static_cast<std::size_t>(num_frames));

  // Initial full evaluation (everything X, but faulty-rail pins and
  // constants must settle).
  for (int t = 0; t < num_frames_; ++t)
    for (NodeId id : by_topo_) mark_dirty(t, id);
  propagate();
  trail_.clear();  // initial state is the baseline; not undoable
}

TimeFrameModel::~TimeFrameModel() {
  if (evals_ != 0 && metrics_enabled()) {
    static MetricsRegistry::Counter& c =
        MetricsRegistry::global().counter("tfm.evals");
    c.add(evals_);
  }
}

void TimeFrameModel::set_value(std::size_t idx, V5 v) {
  if (values_[idx] == v) return;
  trail_.push_back({idx, values_[idx], false});
  const bool was_d = values_[idx].is_d();
  values_[idx] = v;
  if (was_d != v.is_d()) {
    const int frame = static_cast<int>(idx / nl_.num_nodes());
    const NodeId node = static_cast<NodeId>(idx % nl_.num_nodes());
    if (v.is_d())
      d_set_.insert({frame, node});
    else
      d_set_.erase({frame, node});
  }
}

void TimeFrameModel::mark_dirty(int frame, NodeId node) {
  const std::size_t idx = flat(frame, node);
  if (in_queue_[idx]) return;
  in_queue_[idx] = 1;
  auto& q = queue_[static_cast<std::size_t>(frame)];
  q.push_back(topo_pos_[static_cast<std::size_t>(node)]);
  std::push_heap(q.begin(), q.end(), std::greater<>());
}

V3 TimeFrameModel::faulty_eval(int frame, const Node& n, NodeId id) const {
  // Faulty-rail evaluation of a combinational / OUTPUT node, honouring an
  // input-pin fault on this node.
  const bool pin_fault_here =
      fault_ && fault_->node == id && fault_->pin >= 0;
  auto in = [&](std::size_t k) -> V3 {
    if (pin_fault_here && static_cast<int>(k) == fault_->pin)
      return fault_->stuck1 ? V3::kOne : V3::kZero;
    return values_[flat(frame, n.fanins[k])].f;
  };
  auto fold = [&](V3 (*op)(V3, V3)) {
    V3 v = in(0);
    for (std::size_t k = 1; k < n.fanins.size(); ++k) v = op(v, in(k));
    return v;
  };
  switch (n.type) {
    case GateType::kConst0:
      return V3::kZero;
    case GateType::kConst1:
      return V3::kOne;
    case GateType::kBuf:
    case GateType::kOutput:
      return in(0);
    case GateType::kNot:
      return v3_not(in(0));
    case GateType::kAnd:
      return fold(v3_and);
    case GateType::kNand:
      return v3_not(fold(v3_and));
    case GateType::kOr:
      return fold(v3_or);
    case GateType::kNor:
      return v3_not(fold(v3_or));
    case GateType::kXor:
      return fold(v3_xor);
    case GateType::kXnor:
      return v3_not(fold(v3_xor));
    default:
      SATPG_CHECK(false);
  }
  return V3::kX;
}

V5 TimeFrameModel::compute(int frame, NodeId node) const {
  const auto& n = nl_.node(node);
  const bool stem_fault_here =
      fault_ && fault_->node == node && fault_->pin < 0;
  const V3 stuck = fault_ && fault_->stuck1 ? V3::kOne : V3::kZero;

  V5 v;
  switch (n.type) {
    case GateType::kInput: {
      const V3 d = decisions_[flat(frame, node)];
      v = {d, d};
      break;
    }
    case GateType::kDff: {
      if (frame == 0) {
        const V3 d = decisions_[flat(0, node)];
        v = {d, d};
      } else {
        const V5 prev = values_[flat(frame - 1, n.fanins[0])];
        v.g = prev.g;
        v.f = prev.f;
        if (fault_ && fault_->node == node && fault_->pin == 0)
          v.f = stuck;  // D-pin fault
      }
      break;
    }
    case GateType::kOutput: {
      const V5 in = values_[flat(frame, n.fanins[0])];
      v.g = in.g;
      v.f = faulty_eval(frame, n, node);
      break;
    }
    default: {
      // Combinational gate: good rail from fanin good rails.
      std::vector<NodeId> dummy;  // avoid alloc: inline fold on good rail
      auto in_g = [&](std::size_t k) {
        return values_[flat(frame, n.fanins[k])].g;
      };
      auto fold_g = [&](V3 (*op)(V3, V3)) {
        V3 x = in_g(0);
        for (std::size_t k = 1; k < n.fanins.size(); ++k) x = op(x, in_g(k));
        return x;
      };
      switch (n.type) {
        case GateType::kConst0:
          v.g = V3::kZero;
          break;
        case GateType::kConst1:
          v.g = V3::kOne;
          break;
        case GateType::kBuf:
          v.g = in_g(0);
          break;
        case GateType::kNot:
          v.g = v3_not(in_g(0));
          break;
        case GateType::kAnd:
          v.g = fold_g(v3_and);
          break;
        case GateType::kNand:
          v.g = v3_not(fold_g(v3_and));
          break;
        case GateType::kOr:
          v.g = fold_g(v3_or);
          break;
        case GateType::kNor:
          v.g = v3_not(fold_g(v3_or));
          break;
        case GateType::kXor:
          v.g = fold_g(v3_xor);
          break;
        case GateType::kXnor:
          v.g = v3_not(fold_g(v3_xor));
          break;
        default:
          SATPG_CHECK(false);
      }
      v.f = faulty_eval(frame, n, node);
      break;
    }
  }
  if (stem_fault_here) v.f = stuck;
  return v;
}

void TimeFrameModel::propagate() {
  const auto& fanouts = nl_.fanouts();
  for (int t = 0; t < num_frames_; ++t) {
    auto& q = queue_[static_cast<std::size_t>(t)];
    while (!q.empty()) {
      std::pop_heap(q.begin(), q.end(), std::greater<>());
      const int pos = q.back();
      q.pop_back();
      const NodeId id = by_topo_[static_cast<std::size_t>(pos)];
      const std::size_t idx = flat(t, id);
      in_queue_[idx] = 0;
      ++evals_;
      if (external_evals_ != nullptr) ++*external_evals_;
      const V5 nv = compute(t, id);
      if (nv == values_[idx]) continue;
      set_value(idx, nv);
      for (NodeId s : fanouts[static_cast<std::size_t>(id)]) {
        const auto& sn = nl_.node(s);
        if (sn.type == GateType::kDff) {
          if (t + 1 < num_frames_) mark_dirty(t + 1, s);
        } else {
          mark_dirty(t, s);
        }
      }
    }
  }
}

std::size_t TimeFrameModel::assign(int frame, NodeId node, V3 v) {
  SATPG_CHECK(is_decision_var(frame, node));
  const std::size_t mark = trail_.size();
  const std::size_t idx = flat(frame, node);
  SATPG_CHECK_MSG(decisions_[idx] == V3::kX, "reassigning a decision var");
  trail_.push_back({idx, values_[idx], true});
  decisions_[idx] = v;
  mark_dirty(frame, node);
  propagate();
  return mark;
}

void TimeFrameModel::undo_to(std::size_t mark) {
  while (trail_.size() > mark) {
    const TrailEntry e = trail_.back();
    trail_.pop_back();
    if (e.decision) decisions_[e.idx] = V3::kX;
    const bool was_d = values_[e.idx].is_d();
    values_[e.idx] = e.old_value;
    if (was_d != e.old_value.is_d()) {
      const int frame = static_cast<int>(e.idx / nl_.num_nodes());
      const NodeId node = static_cast<NodeId>(e.idx % nl_.num_nodes());
      if (e.old_value.is_d())
        d_set_.insert({frame, node});
      else
        d_set_.erase({frame, node});
    }
  }
}

bool TimeFrameModel::is_decision_var(int frame, NodeId node) const {
  const auto& n = nl_.node(node);
  if (n.type == GateType::kInput) return frame >= 0 && frame < num_frames_;
  if (n.type == GateType::kDff) return frame == 0;
  return false;
}

V3 TimeFrameModel::decision_value(int frame, NodeId node) const {
  return decisions_[flat(frame, node)];
}

bool TimeFrameModel::detected_at_po() const {
  for (int t = 0; t < num_frames_; ++t)
    for (NodeId po : nl_.outputs())
      if (values_[flat(t, po)].is_d()) return true;
  return false;
}

bool TimeFrameModel::d_reaches_boundary() const {
  const int last = num_frames_ - 1;
  for (NodeId ff : nl_.dffs()) {
    const NodeId d = nl_.node(ff).fanins[0];
    V5 v = values_[flat(last, d)];
    if (fault_ && fault_->node == ff && fault_->pin == 0)
      v.f = fault_->stuck1 ? V3::kOne : V3::kZero;
    if (v.is_d()) return true;
  }
  return false;
}

bool TimeFrameModel::effect_still_possible(bool allow_boundary) const {
  if (!fault_) return true;
  const V3 stuck = fault_->stuck1 ? V3::kOne : V3::kZero;

  // Current D nodes (maintained incrementally by set_value/undo_to).
  std::vector<std::pair<int, NodeId>> dset(d_set_.begin(), d_set_.end());

  if (dset.empty()) {
    // Not excited anywhere: excitable iff the faulted line's good value can
    // still become the opposite of the stuck value in some frame.
    const NodeId line = fault_->pin >= 0
                            ? nl_.node(fault_->node)
                                  .fanins[static_cast<std::size_t>(
                                      fault_->pin)]
                            : fault_->node;
    for (int t = 0; t < num_frames_; ++t) {
      const V3 g = values_[flat(t, line)].g;
      if (g == V3::kX || g != stuck) return true;
    }
    // A pin fault can also already be "excited" at the gate even when the
    // line equals stuck... no: excitation requires line good != stuck.
    return false;
  }

  // Forward reachability from D nodes through X-capable nodes.
  const auto& fanouts = nl_.fanouts();
  std::vector<char> seen(values_.size(), 0);
  std::vector<std::pair<int, NodeId>> stack = dset;
  for (const auto& [t, id] : dset) seen[flat(t, id)] = 1;
  while (!stack.empty()) {
    const auto [t, id] = stack.back();
    stack.pop_back();
    const auto& n = nl_.node(id);
    if (n.type == GateType::kOutput) return true;  // reachable or already D
    if (n.type == GateType::kDff && t == num_frames_ - 1) {
      // Effect sits in a FF that has no next frame; it already crossed.
    }
    // Does this node drive a FF into the next frame (or the boundary)?
    for (NodeId s : fanouts[static_cast<std::size_t>(id)]) {
      const auto& sn = nl_.node(s);
      int nt = t;
      if (sn.type == GateType::kDff) {
        if (t + 1 >= num_frames_) {
          if (allow_boundary) return true;
          continue;
        }
        nt = t + 1;
      }
      const std::size_t sidx = flat(nt, s);
      if (seen[sidx]) continue;
      const V5 sv = values_[sidx];
      if (!(sv.any_x() || sv.is_d())) continue;  // blocked
      seen[sidx] = 1;
      stack.push_back({nt, s});
    }
  }
  return false;
}

}  // namespace satpg
