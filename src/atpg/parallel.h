// Fault-parallel ATPG driver with deterministic scheduling.
//
// The driver partitions the collapsed fault list into fixed-size work
// units and runs one fresh AtpgEngine per unit on the shared thread pool,
// in rounds:
//
//   round:   snapshot the undetected faults (fault-index order) and cut
//            them into units of kUnitSize faults, at most kUnitsPerRound
//            units — constants that do NOT depend on the thread count, so
//            the work breakdown is identical for any num_threads;
//   workers: each unit generates tests for its faults independently and
//            writes into its own result slot (speculation: a fault another
//            unit detects this round is still attempted — its work is
//            counted, its outcome discarded at merge);
//   barrier: unit results merge on the orchestrating thread in unit order
//            (within a unit, fault order). Each detected sequence is fault
//            simulated against the still-undetected faults — reusing the
//            parallel fsim — and drops apply immediately in merge order.
//
// Because partitioning precedes the parallel section, every slot has one
// writer, and merging is a fixed serial order, results are bit-identical
// for every thread count. DESIGN.md §4d states the full contract.
//
// kLearning engines share justification outcomes through a sharded,
// mutex-striped SharedLearningCache with an epoch visibility rule: entries
// published while round R runs carry epoch R+1 and are invisible until
// round R+1 — so learning crosses workers without letting OS scheduling
// reorder who-learned-what-first into the results.
//
// Robustness plumbing the serial driver never had:
//   * total_eval_budget is enforced at fault granularity against the
//     committed (merged) eval count — deterministic; remaining faults
//     abort gracefully;
//   * deadline_ms arms a wall-clock deadline that flips an atomic abort
//     flag; every PODEM search polls it and unwinds. Deadline outcomes
//     are inherently timing-dependent: use it for bounded wall-clock,
//     never in determinism tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "atpg/capture.h"
#include "atpg/engine.h"
#include "base/monitor.h"

namespace satpg {

/// Cross-worker justification-outcome cache (kLearning).
///
/// Publish rule: a unit completing during round R publishes its engine's
/// local caches with epoch R+1 and its unit index as tie-break; an
/// existing entry is replaced only by one with a strictly smaller
/// (epoch, unit) pair. Readers of round R accept only entries with
/// epoch <= R. Consequences: visible entries are immutable (any publish
/// racing a reader carries a larger epoch), and the final cache content is
/// independent of worker scheduling — so every engine sees a deterministic
/// cache regardless of thread count.
class SharedLearningCache {
 public:
  explicit SharedLearningCache(std::size_t num_shards = 16);

  /// LearningShare implementation with the read epoch baked in; hand one
  /// to each engine of round `round` via view_for_round().
  class View final : public LearningShare {
   public:
    View(const SharedLearningCache* cache, std::uint32_t read_epoch)
        : cache_(cache), read_epoch_(read_epoch) {}
    bool lookup_ok(const StateKey& key,
                   std::vector<std::vector<V3>>* prefix) const override;
    bool lookup_fail(const StateKey& key) const override;
    /// Visible failure cubes, sorted by packed-key text (the kCdcl
    /// engine's blocking-clause import).
    std::vector<StateKey> fail_cubes() const override;
    /// lookup_fail plus the entry's provenance tag (exporter fault name +
    /// publish epoch).
    bool lookup_fail_info(const StateKey& key, std::string* exporter,
                          std::uint32_t* epoch) const override;
    /// fail_cubes() plus provenance, same packed-key order.
    std::vector<FailCubeInfo> fail_cube_infos() const override;

   private:
    const SharedLearningCache* cache_;
    std::uint32_t read_epoch_;
  };

  View view_for_round(std::uint32_t round) const { return View(this, round); }

  /// Publish `engine`'s local learning caches: called by the worker that
  /// ran unit `unit` of round `round`, as soon as the unit completes.
  void publish(std::uint32_t round, std::uint32_t unit,
               const AtpgEngine& engine);

  /// Entries currently stored (any epoch). For stats/tests.
  std::size_t size() const;

  /// Logical footprint of every stored entry (keys, prefixes, provenance
  /// tags, fixed per-entry overhead). Deterministic at round barriers: the
  /// committed cache content never depends on scheduling, and cross-round
  /// replacement cannot happen (epochs only grow), so the orchestrator can
  /// charge round-over-round growth under base/memstats subsystem
  /// shared_cubes without breaking thread invariance.
  std::uint64_t logical_bytes() const;

 private:
  struct Entry {
    std::vector<std::vector<V3>> prefix;  ///< meaningful when ok
    std::uint32_t epoch = 0;              ///< first round that may read it
    std::uint32_t unit = 0;               ///< publisher (tie-break)
    bool ok = false;
    /// Provenance (fail entries): name of the fault whose attempt proved
    /// the cube. First-writer-wins keeps it stable once published.
    std::string exporter;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<StateKey, Entry, StateKeyHash> map;
  };

  const Shard& shard_for(const StateKey& key) const {
    return shards_[key.hash() % shards_.size()];
  }
  Shard& shard_for(const StateKey& key) {
    return shards_[key.hash() % shards_.size()];
  }

  std::vector<Shard> shards_;
};

/// Stuck-search watchdog (DESIGN.md §7). The eval threshold is a
/// DETERMINISTIC run parameter: whether a fault trips depends only on
/// (netlist, fault, options), never on wall clock or thread count, so
/// enabling the watchdog keeps metrics/report JSON thread-invariant. The
/// seconds threshold is wall-clock and therefore heartbeat-only: it can
/// flag a slot as stuck in the live stream but never touches any
/// deterministic artifact.
struct WatchdogOptions {
  /// Flag a fault whose attempt spends >= this many node evaluations
  /// (0 = watchdog off).
  std::uint64_t stuck_evals = 0;
  /// Heartbeat-only: mark an in-flight slot "stuck" after this much wall
  /// time on one fault (0 = off). Never affects results.
  double stuck_seconds = 0.0;
  /// Defer-and-requeue: cap each fault's FIRST attempt at stuck_evals;
  /// faults that trip are parked (still undetected) until every other
  /// fault settles, then requeued with the full original budget. A
  /// requeued attempt starts a fresh engine + budget, so for kHitec /
  /// kForward it is bit-identical to the attempt the fault would have had
  /// without deferral — the final statuses match the no-watchdog run, only
  /// the order in which hard faults consume the run's tail changes.
  bool defer = false;

  bool enabled() const { return stuck_evals > 0; }
};

/// Per-fault decision-stream capture (atpg/capture.h). Writing the capture
/// file is a side artifact; arming never changes search results.
struct CaptureOptions {
  bool armed = false;   ///< record rings and keep the first triggered capture
  /// Capture this specific fault unconditionally: a fault_name() string or
  /// an all-digits collapsed-fault index. Empty = only capture on watchdog
  /// trip or deadline abort.
  std::string fault;
  std::size_t ring_capacity = DecisionRing::kDefaultCapacity;
};

struct ParallelAtpgOptions {
  AtpgRunOptions run;
  /// Record per-fault flight-recorder events (base/events.h) into
  /// ParallelAtpgResult::fault_events. Event content is wall-clock free
  /// and merged in the same deterministic order as fault_stats, so the
  /// serialized stream is byte-identical at any thread count.
  bool record_events = false;
  /// Worker threads for the deterministic phase: 1 = in-caller serial
  /// execution, 0 = one per hardware thread. Results are bit-identical
  /// for every value.
  unsigned num_threads = 0;
  /// Wall-clock deadline for the whole run in milliseconds (0 = none).
  /// When it fires, in-flight searches unwind and every remaining fault
  /// aborts. Timing-dependent by nature — results under a deadline are
  /// NOT reproducible across machines or runs.
  std::uint64_t deadline_ms = 0;
  /// Live heartbeat/progress sampling. Observer-only: any setting leaves
  /// every deterministic artifact byte-identical.
  RunMonitorOptions monitor;
  WatchdogOptions watchdog;
  CaptureOptions capture;
  /// Deterministic memory budget in accounted bytes per fault attempt
  /// (0 = none). An attempt whose PEAK accounted bytes reach the limit
  /// aborts (mem_capped); the driver parks such faults — exactly like the
  /// watchdog's defer path, and independent of it — and requeues them with
  /// the budget lifted once everything else settles, so final coverage is
  /// bit-identical to the unbudgeted run. Setting a budget arms byte
  /// accounting even when memstats are otherwise off.
  std::uint64_t mem_budget_bytes = 0;
};

struct ParallelAtpgResult {
  /// Summary in the serial driver's shape (tables print from this).
  AtpgRunResult run;
  /// Per collapsed fault: final strict status (no potential-detection
  /// credit — that credit is applied only inside run's summary numbers).
  std::vector<FaultStatus> status;
  /// Per collapsed fault: index into run.tests of the sequence that first
  /// detected it, or -1. Lets tests replay every detection independently.
  std::vector<int> detected_by;
  /// Per collapsed fault: 1 when a deterministic-phase engine actually ran
  /// on it (speculative attempts whose outcome was discarded still count —
  /// the work happened), 0 for faults settled by the random phase or
  /// skipped by budget/deadline.
  std::vector<std::uint8_t> attempted;
  /// Per collapsed fault: search-effort breakdown of its (unique) attempt.
  /// Meaningful where attempted[i] == 1. All integer fields bit-identical
  /// at any thread count; wall_seconds is not.
  std::vector<FaultSearchStats> fault_stats;
  /// Per collapsed fault: flight-recorder events of the committed attempt
  /// (empty unless ParallelAtpgOptions::record_events). Byte-identical at
  /// any thread count (event content is wall-clock free).
  std::vector<SearchEventList> fault_events;
  /// Per collapsed fault: cube-sharing provenance of the committed attempt
  /// — which (exporter fault, epoch) sources its cube_blocks / learn hits
  /// drew on. Always recorded; deterministic.
  std::vector<std::vector<CubeSource>> cube_sources;
  /// Heartbeat samples the monitor took (0 when unmonitored). Wall-clock
  /// dependent — stderr summary only, never in reports.
  std::uint64_t heartbeat_samples = 0;
  /// Faults aborted because the wall-clock deadline fired.
  std::size_t aborted_by_deadline = 0;
  /// Faults the watchdog flagged (first attempt spent >= stuck_evals),
  /// fault-index order. Deterministic: same content at any thread count;
  /// empty when the watchdog is off.
  struct StuckFault {
    std::size_t fault_index = 0;
    std::uint64_t evals = 0;   ///< evals of the tripping attempt
    bool deferred = false;     ///< parked and requeued (defer mode)
  };
  std::vector<StuckFault> stuck_faults;
  /// Faults that were parked by defer mode and later re-attempted with the
  /// full budget.
  std::size_t deferred_requeued = 0;
  /// Folded byte accounting (base/memstats): attempt tallies added at the
  /// merge barrier in unit/fault order, plus the global registry snapshot
  /// (fsim arenas, wide lanes, BDD oracle, shared cubes) taken at run end.
  /// Byte-identical at any thread count; all-zero when never armed.
  MemTally mem;
  /// The memory budget this run enforced (bytes; 0 = none).
  std::uint64_t mem_budget_bytes = 0;
  /// Committed attempts that tripped the memory budget (deterministic).
  std::size_t mem_tripped = 0;
  /// Faults parked by the budget and re-attempted with the budget lifted.
  std::size_t mem_requeued = 0;
  /// First triggered capture (requested fault, watchdog trip, or deadline
  /// abort), in deterministic (round, unit, fault) order — except deadline
  /// captures, which are inherently timing-dependent.
  std::optional<SearchCapture> capture;
};

ParallelAtpgResult run_parallel_atpg(const Netlist& nl,
                                     const ParallelAtpgOptions& opts);

}  // namespace satpg
