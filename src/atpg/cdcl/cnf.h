// Tseitin encoding of the iterative time-frame array to CNF.
//
// Mirrors atpg/tfm.h's dual-rail model in clause form: `frames` copies of
// the netlist, a good-rail variable per (frame, live node), and a faulty-
// rail variable only for nodes inside the fault's sequential fanout cone
// (everything else aliases its good variable — the same cone-scoping the
// fault simulator uses). Flip-flop variables at frame t are constrained
// equal to their D input at frame t-1; frame-0 flip-flops are free (pseudo
// primary inputs) and shared between the rails (common power-up). Stuck-at
// faults pin the faulty stem variable with unit clauses in every frame;
// pin faults substitute the stuck constant for the affected fanin slot of
// the faulty gate clause.
//
// Variable allocation order is fixed (rail-major, then frame-major, then
// node-id), so for a given (netlist, fault, frames) the CNF is always the
// same formula — the determinism of the kCdcl engine starts here.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/cdcl/solver.h"
#include "fault/fault.h"
#include "netlist/netlist.h"
#include "sim/statekey.h"

namespace satpg {

class TimeFrameCnf {
 public:
  /// Encodes into `solver` (which must be empty). `fault` absent models
  /// the fault-free machine — single rail, used by state justification.
  TimeFrameCnf(const Netlist& nl, std::optional<Fault> fault, int frames,
               CdclSolver* solver);

  const Netlist& netlist() const { return nl_; }
  int num_frames() const { return frames_; }

  /// Good-rail variable of (frame, node).
  int good(int frame, NodeId node) const {
    return good_[flat(frame, node)];
  }
  /// Faulty-rail variable (== good() outside the fault cone).
  int faulty(int frame, NodeId node) const {
    return faulty_[flat(frame, node)];
  }
  /// Frame-0 value of nl.dffs()[i] — the state the engine must justify.
  int state_var(std::size_t i) const { return good(0, nl_.dffs()[i]); }

  /// Detection objective: at least one PO in the window carries a
  /// good/faulty difference; with `include_boundary`, a difference on a
  /// last-frame flip-flop D input also counts (the kDetectOrStore goal of
  /// the sound single-frame redundancy check). Returns false — and adds
  /// nothing — when no observation point can ever differ, which itself
  /// proves no test exists within this window.
  bool add_detect_objective(bool include_boundary);

  /// Justification target: the D input of flip-flop `ff` must compute
  /// `value` on the good rail at the LAST frame (unit clause).
  void add_justify_target(NodeId ff, bool value);

  /// Forbid the frame-0 state from lying inside `cube` (digit i =
  /// nl.dffs()[i], X digits unconstrained). No-op on the all-X cube.
  /// Returns true when a clause was added.
  bool block_state_cube(const StateKey& cube);

  /// Logical footprint of the encoder's variable maps (element counts x
  /// element sizes, fixed at construction) — the deterministic byte charge
  /// recorded under base/memstats subsystem cnf_encoder. Clause storage is
  /// the solver's and is accounted there.
  std::uint64_t footprint_bytes() const {
    return good_.size() * sizeof(int) + faulty_.size() * sizeof(int) +
           in_cone_.size() * sizeof(char);
  }

 private:
  std::size_t flat(int frame, NodeId node) const {
    return static_cast<std::size_t>(frame) * nl_.num_nodes() +
           static_cast<std::size_t>(node);
  }
  CnfLit const_lit(bool value);
  /// Fresh variable d with d <-> (a XOR b).
  int add_xor(CnfLit a, CnfLit b);
  void encode_equiv(CnfLit y, CnfLit x);
  void encode_gate(GateType t, CnfLit y, const std::vector<CnfLit>& ins);
  void encode_rail(int frame, NodeId id, bool faulty_rail);
  CnfLit rail_fanin(int frame, NodeId id, std::size_t slot, bool faulty_rail);

  const Netlist& nl_;
  std::optional<Fault> fault_;
  int frames_;
  CdclSolver* solver_;
  std::vector<int> good_;
  std::vector<int> faulty_;
  std::vector<char> in_cone_;  ///< per NodeId; empty when fault-free
  int true_var_ = -1;          ///< lazily pinned constant
};

}  // namespace satpg
