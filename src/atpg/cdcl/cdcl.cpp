#include "atpg/cdcl/cdcl.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "atpg/capture.h"
#include "atpg/cdcl/cnf.h"
#include "atpg/tfm.h"
#include "base/memstats.h"

namespace satpg {

namespace {

/// Objective codes recorded into the decision ring's kObjective events
/// (value field), mirroring PodemGoal's order.
constexpr std::uint8_t kObjDetect = 0;
constexpr std::uint8_t kObjDetectOrStore = 1;
constexpr std::uint8_t kObjJustify = 2;

}  // namespace

void CdclAtpg::publish_phase(SearchPhase p) {
  if (e_.progress_ != nullptr)
    e_.progress_->phase.store(static_cast<std::uint32_t>(p),
                              std::memory_order_relaxed);
}

// Second leg of the unreachability proof. A predecessor-free cube is
// disjoint from the image of every state, so it can only intersect the
// reachable set through the INITIAL states (reachable = initial ∪ image
// closure, analysis/reach.h). Under the study's reset convention — an
// explicit reset input, the same default name reach.h keys on — the
// initial (reset) set is itself an image fixpoint, so predecessor-UNSAT
// already covers it. Otherwise the initial set comes from the FfInit
// values, and the cube must demand the opposite of some pinned init digit
// to provably miss it (a kUnknown digit admits both values, so only a
// pinned conflict excludes the whole set).
bool CdclAtpg::cube_excludes_initial(const StateKey& key) const {
  for (const NodeId in : e_.nl_.inputs())
    if (e_.nl_.node(in).name == "rst") return true;
  for (std::size_t i = 0; i < key.size(); ++i) {
    const V3 v = key.get(i);
    if (v == V3::kX) continue;
    const FfInit init = e_.nl_.node(e_.nl_.dffs()[i]).init;
    if (init == FfInit::kZero && v == V3::kOne) return true;
    if (init == FfInit::kOne && v == V3::kZero) return true;
  }
  return false;
}

void CdclAtpg::harvest(const CdclSolver& solver) {
  const SolverStats& s = solver.stats();
  e_.stats_.conflicts += s.conflicts;
  e_.stats_.propagations += s.propagations;
  e_.stats_.restarts += s.restarts;
  e_.stats_.learned_clauses += s.learned;
}

CdclAtpg::JustifyOutcome CdclAtpg::justify(
    const std::vector<std::pair<NodeId, V3>>& cube, int depth,
    StateSet& on_path, PodemBudget& budget) {
  JustifyOutcome out;
  if (cube.empty()) {
    out.status = JustifyOutcome::Status::kJustified;
    return out;
  }
  publish_phase(SearchPhase::kJustify);
  ++e_.stats_.justify_calls;
  e_.stats_.max_justify_depth =
      std::max<std::uint64_t>(e_.stats_.max_justify_depth,
                              static_cast<std::uint64_t>(depth) + 1);
  const StateKey key = e_.cube_key(cube);
  e_.cubes_visited_.insert(key);
  if (e_.record_events_) {
    SearchEvent e;
    e.kind = SearchEventKind::kJustifyEnter;
    e.a = depth;
    e.at = budget.evals;
    e.cube = key.to_string();
    e_.events_buf_.push_back(std::move(e));
  }
  // Leave outcome: 0 failed, 1 justified, 2 proven-invalid — mirrors
  // JustifyOutcome::Status so timelines show the proof verdicts too.
  const auto leave = [&](int outcome) {
    if (e_.record_events_) {
      SearchEvent e;
      e.kind = SearchEventKind::kJustifyLeave;
      e.a = depth;
      e.b = outcome;
      e.at = budget.evals;
      e_.events_buf_.push_back(std::move(e));
    }
  };
  const std::size_t bucket =
      static_cast<std::size_t>(e_.classify_cube(key));
  const bool attributed = e_.validity_ != nullptr;
  EffortAttribution& attr = e_.stats_.attribution;
  if (attributed) ++attr.justify_calls[bucket];
  const auto fail_bucket = [&] {
    if (attributed) ++attr.justify_failures[bucket];
  };
  if (depth > e_.opts_.max_backward_frames) {
    ++e_.stats_.justify_failures;
    fail_bucket();
    leave(0);
    return out;
  }
  if (on_path.count(key)) {
    ++e_.stats_.justify_failures;
    fail_bucket();
    leave(0);
    return out;  // state-requirement loop
  }

  // Cache consumption enters the decision stream exactly as in the
  // structural kLearning engine (same replay semantics).
  const auto ring_learn_hit = [&](bool ok) {
    if (e_.ring_ != nullptr)
      e_.ring_->push({DecisionEventKind::kLearnHit,
                      static_cast<std::uint8_t>(ok ? 1 : 0), depth, -1,
                      static_cast<std::uint64_t>(StateKeyHash{}(key))});
  };
  const auto event_learn_hit = [&](bool ok, const std::string& src) {
    if (e_.record_events_) {
      SearchEvent e;
      e.kind = SearchEventKind::kLearnHit;
      e.a = depth;
      e.b = ok ? 1 : 0;
      e.at = budget.evals;
      e.cube = key.to_string();
      e.src = src;
      e_.events_buf_.push_back(std::move(e));
    }
  };
  if (auto it = e_.learned_ok_.find(key); it != e_.learned_ok_.end()) {
    ++e_.stats_.learn_hits;
    ring_learn_hit(true);
    event_learn_hit(true, {});
    out.status = JustifyOutcome::Status::kJustified;
    out.prefix = it->second;
    leave(1);
    return out;
  }
  if (e_.learned_fail_.count(key)) {
    ++e_.stats_.learn_hits;
    ++e_.stats_.justify_failures;
    fail_bucket();
    ring_learn_hit(false);
    const auto origin = e_.cube_origins_.find(key);
    if (origin != e_.cube_origins_.end())
      e_.count_cube_source(origin->second.exporter, origin->second.epoch);
    event_learn_hit(false, origin != e_.cube_origins_.end()
                               ? origin->second.exporter
                               : std::string());
    out.status = JustifyOutcome::Status::kProvenInvalid;
    leave(2);
    return out;
  }
  if (e_.opts_.share_learning && e_.shared_ != nullptr) {
    std::vector<std::vector<V3>> prefix;
    if (e_.shared_->lookup_ok(key, &prefix)) {
      ++e_.stats_.learn_hits;
      ring_learn_hit(true);
      event_learn_hit(true, {});
      e_.learned_ok_[key] = prefix;
      out.status = JustifyOutcome::Status::kJustified;
      out.prefix = std::move(prefix);
      leave(1);
      return out;
    }
    std::string exporter;
    std::uint32_t epoch = 0;
    if (e_.shared_->lookup_fail_info(key, &exporter, &epoch)) {
      ++e_.stats_.learn_hits;
      ++e_.stats_.justify_failures;
      fail_bucket();
      ring_learn_hit(false);
      e_.count_cube_source(exporter, epoch);
      event_learn_hit(false, exporter);
      e_.learned_fail_.insert(key);
      e_.cube_origins_[key] = {exporter, epoch};
      out.status = JustifyOutcome::Status::kProvenInvalid;
      leave(2);
      return out;
    }
  }
  ++e_.stats_.learn_misses;

  on_path.insert(key);

  // One-frame fault-free predecessor query: free previous state and
  // inputs, the D lines of the cube's flip-flops pinned to its values.
  CdclSolver solver;
  TimeFrameCnf cnf(e_.nl_, std::nullopt, 1, &solver);
  const MemScope cnf_mem(budget.mem, MemSubsystem::kCnfEncoder,
                         cnf.footprint_bytes());
  solver.set_budget(&budget);
  solver.set_ring(e_.ring_);
  solver.set_event_sink(e_.record_events_ ? &e_.events_buf_ : nullptr);
  for (const auto& [ff, v] : cube)
    cnf.add_justify_target(ff, v == V3::kOne);
  // Blocking proven-unreachable cubes cannot hide a REACHABLE predecessor,
  // so an UNSAT below is still an exact unreachability proof (§9).
  std::size_t blocked = 0;
  if (e_.ring_ != nullptr)
    e_.ring_->push({DecisionEventKind::kObjective, kObjJustify, depth, -1,
                    static_cast<std::uint64_t>(StateKeyHash{}(key))});

  // Taint: any incomplete step (budget abort, depth/loop/budget failure of
  // a sub-cube we then blocked) makes a final UNSAT inconclusive — the
  // cube merely FAILED, it was not proven unreachable.
  bool tainted = false;
  std::uint64_t evals0 = budget.evals;
  std::uint64_t backtracks0 = budget.backtracks;
  const auto commit_spend = [&] {
    if (attributed) {
      attr.justify_evals[bucket] += budget.evals - evals0;
      attr.justify_backtracks[bucket] += budget.backtracks - backtracks0;
      if (e_.progress_ != nullptr)
        e_.progress_->invalid_evals.store(
            attr.justify_evals[static_cast<std::size_t>(
                StateValidity::kInvalid)],
            std::memory_order_relaxed);
    }
  };
  for (;;) {
    // Catch up on cubes proven since the last solve (imports at entry,
    // then anything deeper recursions exported mid-loop). Every successful
    // block is a provenance hit against the cube's exporter.
    while (blocked < blocking_.size()) {
      const Block& blk = blocking_[blocked];
      if (cnf.block_state_cube(blk.key)) {
        ++e_.stats_.cube_blocks;
        e_.count_cube_source(blk.exporter, blk.epoch);
        if (e_.record_events_) {
          SearchEvent e;
          e.kind = SearchEventKind::kCubeImport;
          e.a = static_cast<std::int32_t>(blk.epoch);
          e.at = budget.evals;
          e.cube = blk.key.to_string();
          e.src = blk.exporter;
          e_.events_buf_.push_back(std::move(e));
        }
      }
      ++blocked;
    }
    const SolveStatus st = solver.solve();
    if (st == SolveStatus::kAborted) {
      commit_spend();
      tainted = true;
      break;
    }
    if (st == SolveStatus::kUnsat) {
      commit_spend();
      break;
    }
    // Lift the model to a 3-valued (previous-state, input) pair: keep the
    // model's inputs, drop every flip-flop whose value the targets don't
    // need. Greedy in dffs() order, checked on the good rail of the TFM.
    std::vector<V3> vec(e_.nl_.num_inputs(), V3::kX);
    TimeFrameModel tfm(e_.nl_, std::nullopt, 1);
    const MemScope tfm_mem(budget.mem, MemSubsystem::kTfmFrames,
                           tfm.footprint_bytes());
    tfm.attach_eval_counter(&budget.evals);
    for (std::size_t i = 0; i < e_.nl_.inputs().size(); ++i) {
      const NodeId pi = e_.nl_.inputs()[i];
      vec[i] = solver.model_value(cnf.good(0, pi)) ? V3::kOne : V3::kZero;
      tfm.assign(0, pi, vec[i]);
    }
    const std::size_t pi_mark = tfm.trail_mark();
    const std::size_t n = e_.nl_.num_dffs();
    std::vector<V3> sv(n);
    for (std::size_t i = 0; i < n; ++i)
      sv[i] = solver.model_value(cnf.state_var(i)) ? V3::kOne : V3::kZero;
    std::vector<char> kept(n, 1);
    const auto targets_met = [&] {
      for (const auto& [ff, v] : cube)
        if (tfm.value(0, e_.nl_.node(ff).fanins[0]).g != v) return false;
      return true;
    };
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j)
        if (kept[j] && j != i) tfm.assign(0, e_.nl_.dffs()[j], sv[j]);
      const bool met = targets_met();
      tfm.undo_to(pi_mark);
      if (met) kept[i] = 0;
    }
    std::vector<std::pair<NodeId, V3>> prev_cube;
    for (std::size_t i = 0; i < n; ++i)
      if (kept[i]) prev_cube.push_back({e_.nl_.dffs()[i], sv[i]});
    commit_spend();

    auto sub = justify(prev_cube, depth + 1, on_path, budget);
    publish_phase(SearchPhase::kJustify);
    evals0 = budget.evals;
    backtracks0 = budget.backtracks;
    if (sub.status == JustifyOutcome::Status::kJustified) {
      out.status = JustifyOutcome::Status::kJustified;
      out.prefix = std::move(sub.prefix);
      out.prefix.push_back(std::move(vec));
      break;
    }
    if (sub.status == JustifyOutcome::Status::kFailed) {
      // Not proven unreachable — excluding it below makes any later UNSAT
      // inconclusive for THIS cube, but enumeration must move on.
      tainted = true;
      cnf.block_state_cube(e_.cube_key(prev_cube));
    }
    // kProvenInvalid: the recursion appended prev_cube to blocking_; the
    // catch-up at the top of the loop blocks it here.
    if (budget.exhausted_backtracks() || budget.exhausted_evals() ||
        budget.mem_exceeded()) {
      tainted = true;
      break;
    }
  }
  on_path.erase(key);
  harvest(solver);

  if (out.status == JustifyOutcome::Status::kJustified) {
    e_.learned_ok_[key] = out.prefix;
    ++e_.stats_.learn_inserts;
    leave(1);
    return out;
  }
  ++e_.stats_.justify_failures;
  fail_bucket();
  if (!tainted && cube_excludes_initial(key)) {
    // Complete UNSAT with only proven-unreachable cubes excluded AND the
    // initial set ruled out: no reachable predecessor produces this cube
    // and no initial state lies in it, so (reachable = initial ∪ image
    // closure, analysis/reach's fixpoint) the cube intersects no reachable
    // state. Export the proof, attributed to the current fault.
    out.status = JustifyOutcome::Status::kProvenInvalid;
    e_.learned_fail_.insert(key);
    ++e_.stats_.learn_inserts;
    ++e_.stats_.cube_exports;
    e_.cube_origins_[key] = {e_.fault_name_, 0};
    blocking_.push_back({key, e_.fault_name_, 0});
    if (e_.record_events_) {
      SearchEvent e;
      e.kind = SearchEventKind::kCubeExport;
      e.at = budget.evals;
      e.cube = key.to_string();
      e_.events_buf_.push_back(std::move(e));
    }
  }
  leave(out.status == JustifyOutcome::Status::kProvenInvalid ? 2 : 0);
  return out;
}

FaultAttempt CdclAtpg::generate(const Fault& fault) {
  const auto t0 = std::chrono::steady_clock::now();
  FaultAttempt attempt;
  e_.current_fault_ = fault;
  e_.stats_ = FaultSearchStats{};
  e_.events_buf_.clear();
  e_.attempt_sources_.clear();
  e_.fault_name_ = fault_name(e_.nl_, fault);
  if (!e_.opts_.share_learning) {
    // Pure per-attempt mode: every generate() is a function of (netlist,
    // fault, options) alone — the `satpg replay` contract.
    e_.learned_ok_.clear();
    e_.learned_fail_.clear();
  }

  PodemBudget budget;
  budget.max_backtracks = e_.opts_.backtrack_limit;
  budget.max_evals = e_.soft_eval_cap_ != 0
                         ? std::min(e_.opts_.eval_limit, e_.soft_eval_cap_)
                         : e_.opts_.eval_limit;
  budget.abort = e_.abort_;
  budget.abort_at_check = e_.abort_at_check_;
  budget.progress = e_.progress_;
  if (e_.ring_ != nullptr) e_.ring_->reset();
  budget.ring = e_.ring_;
  // Byte accounting, identical in shape to the structural path: a fresh
  // per-attempt tally, the ring's fixed buffer charged up front and
  // released before the tally is snapshotted into the attempt.
  e_.attempt_mem_ = MemTally{};
  budget.mem = e_.mem_armed_ ? &e_.attempt_mem_ : nullptr;
  budget.mem_limit = e_.mem_limit_;
  const std::uint64_t ring_bytes =
      budget.mem != nullptr && e_.ring_ != nullptr
          ? e_.ring_->capacity() * sizeof(DecisionEvent)
          : 0;
  if (ring_bytes != 0)
    budget.mem->charge(MemSubsystem::kDecisionRing, ring_bytes);

  // Visible proven-unreachable cubes, imported once per attempt in a
  // deterministic order: the shared view's snapshot (frozen for the round)
  // merged with the local failure cache, sorted by packed-key text. Each
  // entry keeps its provenance tag; when the same key exists both shared
  // and locally, the published (epoch-tagged) entry wins attribution.
  blocking_.clear();
  if (e_.opts_.share_learning && e_.shared_ != nullptr)
    for (const LearningShare::FailCubeInfo& info :
         e_.shared_->fail_cube_infos())
      blocking_.push_back({info.key, info.exporter, info.epoch});
  for (const StateKey& k : e_.learned_fail_) {
    const auto origin = e_.cube_origins_.find(k);
    if (origin != e_.cube_origins_.end())
      blocking_.push_back({k, origin->second.exporter,
                           origin->second.epoch});
    else
      blocking_.push_back({k, std::string(), 0});
  }
  std::sort(blocking_.begin(), blocking_.end(),
            [](const Block& a, const Block& b) {
              const std::string sa = a.key.to_string();
              const std::string sb = b.key.to_string();
              if (sa != sb) return sa < sb;
              if ((a.epoch != 0) != (b.epoch != 0)) return a.epoch != 0;
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.exporter < b.exporter;
            });
  blocking_.erase(std::unique(blocking_.begin(), blocking_.end(),
                              [](const Block& a, const Block& b) {
                                return a.key == b.key;
                              }),
                  blocking_.end());
  for (const Block& blk : blocking_) {
    e_.learned_fail_.insert(blk.key);
    if (!blk.exporter.empty())
      e_.cube_origins_.emplace(blk.key,
                               AtpgEngine::CubeOrigin{blk.exporter,
                                                      blk.epoch});
  }

  bool any_aborted = false;
  int rejects_this_fault = 0;

  for (int frames = 1;
       frames <= e_.opts_.max_forward_frames && !any_aborted; ++frames) {
    if (frames > 1) {
      ++e_.stats_.window_growths;
      if (e_.record_events_) {
        SearchEvent e;
        e.kind = SearchEventKind::kWindowGrow;
        e.a = frames;
        e.at = budget.evals;
        e_.events_buf_.push_back(std::move(e));
      }
    }
    publish_phase(SearchPhase::kWindow);
    CdclSolver solver;
    TimeFrameCnf cnf(e_.nl_, fault, frames, &solver);
    const MemScope cnf_mem(budget.mem, MemSubsystem::kCnfEncoder,
                           cnf.footprint_bytes());
    solver.set_budget(&budget);
    solver.set_ring(e_.ring_);
    solver.set_event_sink(e_.record_events_ ? &e_.events_buf_ : nullptr);
    if (!cnf.add_detect_objective(/*include_boundary=*/false))
      continue;  // no PO difference expressible in this window; widen
    if (e_.ring_ != nullptr)
      e_.ring_->push({DecisionEventKind::kObjective, kObjDetect, frames, -1,
                      static_cast<std::uint64_t>(blocking_.size())});
    std::size_t blocked = 0;
    for (;;) {
      while (blocked < blocking_.size()) {
        const Block& blk = blocking_[blocked];
        if (cnf.block_state_cube(blk.key)) {
          ++e_.stats_.cube_blocks;
          e_.count_cube_source(blk.exporter, blk.epoch);
          if (e_.record_events_) {
            SearchEvent e;
            e.kind = SearchEventKind::kCubeImport;
            e.a = static_cast<std::int32_t>(blk.epoch);
            e.at = budget.evals;
            e.cube = blk.key.to_string();
            e.src = blk.exporter;
            e_.events_buf_.push_back(std::move(e));
          }
        }
        ++blocked;
      }
      const SolveStatus st = solver.solve();
      if (st == SolveStatus::kAborted) {
        any_aborted = true;
        break;
      }
      if (st == SolveStatus::kUnsat) break;  // widen the window
      // Extract the window's input vectors and lift the frame-0 state:
      // drop every flip-flop the detection doesn't need, greedily in
      // dffs() order, re-checked on the dual-rail model.
      std::vector<std::vector<V3>> window(
          static_cast<std::size_t>(frames),
          std::vector<V3>(e_.nl_.num_inputs(), V3::kX));
      TimeFrameModel tfm(e_.nl_, fault, frames);
      const MemScope tfm_mem(budget.mem, MemSubsystem::kTfmFrames,
                             tfm.footprint_bytes());
      tfm.attach_eval_counter(&budget.evals);
      for (int t = 0; t < frames; ++t)
        for (std::size_t i = 0; i < e_.nl_.inputs().size(); ++i) {
          const NodeId pi = e_.nl_.inputs()[i];
          const V3 v =
              solver.model_value(cnf.good(t, pi)) ? V3::kOne : V3::kZero;
          window[static_cast<std::size_t>(t)][i] = v;
          tfm.assign(t, pi, v);
        }
      const std::size_t pi_mark = tfm.trail_mark();
      const std::size_t n = e_.nl_.num_dffs();
      std::vector<V3> sv(n);
      for (std::size_t i = 0; i < n; ++i)
        sv[i] = solver.model_value(cnf.state_var(i)) ? V3::kOne : V3::kZero;
      std::vector<char> kept(n, 1);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
          if (kept[j] && j != i) tfm.assign(0, e_.nl_.dffs()[j], sv[j]);
        const bool det = tfm.detected_at_po();
        tfm.undo_to(pi_mark);
        if (det) kept[i] = 0;
      }
      std::vector<std::pair<NodeId, V3>> cube;
      for (std::size_t i = 0; i < n; ++i)
        if (kept[i]) cube.push_back({e_.nl_.dffs()[i], sv[i]});

      StateSet on_path;
      auto just = justify(cube, 0, on_path, budget);
      publish_phase(SearchPhase::kWindow);
      if (just.status == JustifyOutcome::Status::kJustified) {
        TestSequence candidate = just.prefix;
        for (const auto& v : window) candidate.push_back(v);
        for (auto& vec : candidate)
          for (auto& x : vec)
            if (x == V3::kX) x = V3::kZero;
        if (simulate_fault_serial(e_.nl_, fault, candidate) >= 0) {
          attempt.status = FaultStatus::kDetected;
          attempt.sequence = std::move(candidate);
          break;
        }
        ++e_.verify_rejects_;
        if (++rejects_this_fault >= e_.opts_.verify_reject_limit) {
          any_aborted = true;
          break;
        }
        // Justification ran on the good machine and disagreed with the
        // faulty simulator: rule out only this exact decision assignment
        // and keep enumerating.
        std::vector<CnfLit> blk;
        for (int t = 0; t < frames; ++t)
          for (std::size_t i = 0; i < e_.nl_.inputs().size(); ++i) {
            const int var = cnf.good(t, e_.nl_.inputs()[i]);
            blk.push_back(mk_lit(var, solver.model_value(var)));
          }
        for (std::size_t i = 0; i < n; ++i)
          blk.push_back(mk_lit(cnf.state_var(i),
                               solver.model_value(cnf.state_var(i))));
        solver.add_clause(std::move(blk));
      } else {
        // The lifted cube cannot be justified (it is nonempty — the empty
        // cube trivially succeeds). Exclude it and enumerate on; when it
        // was PROVEN unreachable the catch-up above also blocks it in
        // every later solver of the attempt.
        cnf.block_state_cube(e_.cube_key(cube));
      }
      if (budget.exhausted_backtracks() || budget.exhausted_evals() ||
          budget.mem_exceeded()) {
        any_aborted = true;
        break;
      }
    }
    harvest(solver);
    if (attempt.status == FaultStatus::kDetected) break;
  }

  if (attempt.status != FaultStatus::kDetected && !any_aborted) {
    // Sound redundancy proof, same shape as the structural engines'
    // kDetectOrStore search: one frame, free state and inputs, NO blocking
    // clauses — the UNSAT must be unconditional. Runs on the same budget.
    publish_phase(SearchPhase::kRedundancy);
    if (e_.record_events_) {
      SearchEvent e;
      e.kind = SearchEventKind::kRedundancyStart;
      e.a = 1;
      e.at = budget.evals;
      e_.events_buf_.push_back(std::move(e));
    }
    CdclSolver solver;
    TimeFrameCnf cnf(e_.nl_, fault, 1, &solver);
    const MemScope cnf_mem(budget.mem, MemSubsystem::kCnfEncoder,
                           cnf.footprint_bytes());
    solver.set_budget(&budget);
    solver.set_ring(e_.ring_);
    solver.set_event_sink(e_.record_events_ ? &e_.events_buf_ : nullptr);
    if (e_.ring_ != nullptr)
      e_.ring_->push({DecisionEventKind::kObjective, kObjDetectOrStore, 1,
                      -1, 0});
    if (!cnf.add_detect_objective(/*include_boundary=*/true)) {
      // No observation point can ever carry a difference: the fault's
      // effect is structurally invisible from every state.
      attempt.status = FaultStatus::kRedundant;
    } else {
      const SolveStatus st = solver.solve();
      if (st == SolveStatus::kUnsat)
        attempt.status = FaultStatus::kRedundant;
      else if (st == SolveStatus::kAborted)
        any_aborted = true;
      // kSat: storable but not detected within the window — aborted.
    }
    harvest(solver);
    if (e_.record_events_) {
      SearchEvent e;
      e.kind = SearchEventKind::kRedundancyVerdict;
      e.b = attempt.status == FaultStatus::kRedundant ? 1 : 0;
      e.at = budget.evals;
      e_.events_buf_.push_back(std::move(e));
    }
  }

  e_.total_evals_ += budget.evals;
  e_.total_backtracks_ += budget.backtracks;
  e_.stats_.evals = budget.evals;
  e_.stats_.backtracks = budget.backtracks;
  e_.stats_.implications = budget.decisions;
  e_.stats_.verify_rejects =
      static_cast<std::uint64_t>(rejects_this_fault);
  e_.stats_.budget_exhausted =
      budget.exhausted_backtracks() || budget.exhausted_evals();
  attempt.soft_capped = e_.soft_eval_cap_ != 0 &&
                        e_.soft_eval_cap_ < e_.opts_.eval_limit &&
                        attempt.status == FaultStatus::kAborted &&
                        budget.exhausted_evals();
  attempt.mem_capped = attempt.status == FaultStatus::kAborted &&
                       budget.mem_exceeded();
  attempt.first_abort_check = budget.first_abort_check;
  if (ring_bytes != 0)
    budget.mem->release(MemSubsystem::kDecisionRing, ring_bytes);
  e_.stats_.peak_bytes = e_.attempt_mem_.peak;
  attempt.mem = e_.attempt_mem_;
  if (e_.record_events_) {
    if (e_.stats_.budget_exhausted || attempt.mem_capped) {
      SearchEvent e;
      e.kind = SearchEventKind::kBudgetAbort;
      e.a = budget.exhausted_evals() ? 1 : 0;
      e.b = budget.exhausted_backtracks() ? 1 : 0;
      e.at = budget.evals;
      if (budget.mem_exceeded()) e.bytes = e_.attempt_mem_.peak;
      e_.events_buf_.push_back(std::move(e));
    }
    if (budget.first_abort_check != 0) {
      SearchEvent e;
      e.kind = SearchEventKind::kExternalAbort;
      e.at = budget.evals;
      e_.events_buf_.push_back(std::move(e));
    }
  }
  e_.stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  attempt.stats = e_.stats_;
  e_.flush_attempt_observability(&attempt);
  return attempt;
}

}  // namespace satpg
