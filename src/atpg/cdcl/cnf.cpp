#include "atpg/cdcl/cnf.h"

#include "base/check.h"

namespace satpg {

CnfLit TimeFrameCnf::const_lit(bool value) {
  if (true_var_ < 0) {
    true_var_ = solver_->new_var();
    solver_->add_clause({mk_lit(true_var_)});
  }
  return mk_lit(true_var_, !value);
}

void TimeFrameCnf::encode_equiv(CnfLit y, CnfLit x) {
  solver_->add_clause({lit_not(y), x});
  solver_->add_clause({y, lit_not(x)});
}

int TimeFrameCnf::add_xor(CnfLit a, CnfLit b) {
  const int d = solver_->new_var();
  const CnfLit dl = mk_lit(d);
  solver_->add_clause({lit_not(dl), a, b});
  solver_->add_clause({lit_not(dl), lit_not(a), lit_not(b)});
  solver_->add_clause({dl, lit_not(a), b});
  solver_->add_clause({dl, a, lit_not(b)});
  return d;
}

void TimeFrameCnf::encode_gate(GateType t, CnfLit y,
                               const std::vector<CnfLit>& ins) {
  switch (t) {
    case GateType::kBuf:
    case GateType::kOutput:
      encode_equiv(y, ins[0]);
      return;
    case GateType::kNot:
      encode_equiv(y, lit_not(ins[0]));
      return;
    case GateType::kAnd:
    case GateType::kNand: {
      const CnfLit out = t == GateType::kNand ? lit_not(y) : y;
      std::vector<CnfLit> big{out};
      for (const CnfLit x : ins) {
        solver_->add_clause({lit_not(out), x});
        big.push_back(lit_not(x));
      }
      solver_->add_clause(std::move(big));
      return;
    }
    case GateType::kOr:
    case GateType::kNor: {
      const CnfLit out = t == GateType::kNor ? lit_not(y) : y;
      std::vector<CnfLit> big{lit_not(out)};
      for (const CnfLit x : ins) {
        solver_->add_clause({out, lit_not(x)});
        big.push_back(x);
      }
      solver_->add_clause(std::move(big));
      return;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      // Chain through auxiliaries, then tie y (or its negation) to the
      // final parity.
      CnfLit acc = ins[0];
      for (std::size_t i = 1; i < ins.size(); ++i)
        acc = mk_lit(add_xor(acc, ins[i]));
      encode_equiv(y, t == GateType::kXnor ? lit_not(acc) : acc);
      return;
    }
    default:
      SATPG_CHECK_MSG(false, "unencodable gate type");
  }
}

CnfLit TimeFrameCnf::rail_fanin(int frame, NodeId id, std::size_t slot,
                                bool faulty_rail) {
  if (faulty_rail && fault_.has_value() && fault_->node == id &&
      fault_->pin == static_cast<int>(slot))
    return const_lit(fault_->stuck1);
  const NodeId src = nl_.node(id).fanins[slot];
  const int var = faulty_rail ? faulty_[flat(frame, src)]
                              : good_[flat(frame, src)];
  return mk_lit(var);
}

void TimeFrameCnf::encode_rail(int frame, NodeId id, bool faulty_rail) {
  const Node& n = nl_.node(id);
  const int var =
      faulty_rail ? faulty_[flat(frame, id)] : good_[flat(frame, id)];
  const CnfLit y = mk_lit(var);

  // Stem fault: the faulty output is the stuck constant in every frame,
  // regardless of gate function.
  if (faulty_rail && fault_.has_value() && fault_->node == id &&
      fault_->pin < 0) {
    solver_->add_clause({mk_lit(var, !fault_->stuck1)});
    return;
  }

  switch (n.type) {
    case GateType::kInput:
      return;  // free
    case GateType::kConst0:
      solver_->add_clause({lit_not(y)});
      return;
    case GateType::kConst1:
      solver_->add_clause({y});
      return;
    case GateType::kDff:
      // Frame 0 is a free pseudo primary input; later frames latch the
      // previous frame's D value.
      if (frame > 0)
        encode_equiv(y, rail_fanin(frame - 1, id, 0, faulty_rail));
      return;
    default: {
      std::vector<CnfLit> ins;
      ins.reserve(n.fanins.size());
      for (std::size_t s = 0; s < n.fanins.size(); ++s)
        ins.push_back(rail_fanin(frame, id, s, faulty_rail));
      encode_gate(n.type, y, ins);
      return;
    }
  }
}

TimeFrameCnf::TimeFrameCnf(const Netlist& nl, std::optional<Fault> fault,
                           int frames, CdclSolver* solver)
    : nl_(nl), fault_(std::move(fault)), frames_(frames), solver_(solver) {
  SATPG_CHECK(frames_ >= 1);
  const std::size_t total =
      static_cast<std::size_t>(frames_) * nl_.num_nodes();
  good_.assign(total, -1);
  faulty_.assign(total, -1);

  // Good rail: one variable per (frame, live node), frame-major then
  // node-id order.
  for (int f = 0; f < frames_; ++f)
    for (NodeId id = 0; id < static_cast<NodeId>(nl_.num_nodes()); ++id) {
      if (nl_.node(id).dead) continue;
      good_[flat(f, id)] = solver_->new_var({f, id});
    }

  // Faulty rail: variables only inside the sequential fanout cone; frame-0
  // flip-flops in the cone share the good variable (common power-up)
  // unless the fault pins the flip-flop's own output.
  if (fault_.has_value()) {
    const BitVec& cone = nl_.fanout_cones()[
        static_cast<std::size_t>(fault_->node)];
    in_cone_.assign(nl_.num_nodes(), 0);
    for (NodeId id = 0; id < static_cast<NodeId>(nl_.num_nodes()); ++id)
      if (!nl_.node(id).dead && cone.get(static_cast<std::size_t>(id)))
        in_cone_[static_cast<std::size_t>(id)] = 1;
    const bool stem_on_fault_node = fault_->pin < 0;
    for (int f = 0; f < frames_; ++f)
      for (NodeId id = 0; id < static_cast<NodeId>(nl_.num_nodes()); ++id) {
        if (nl_.node(id).dead) continue;
        if (!in_cone_[static_cast<std::size_t>(id)]) {
          faulty_[flat(f, id)] = good_[flat(f, id)];
          continue;
        }
        const bool common_powerup =
            f == 0 && nl_.node(id).type == GateType::kDff &&
            !(stem_on_fault_node && fault_->node == id);
        faulty_[flat(f, id)] = common_powerup ? good_[flat(f, id)]
                                              : solver_->new_var({f, id});
      }
  } else {
    faulty_ = good_;
  }

  // Clauses, same deterministic order as allocation.
  for (int f = 0; f < frames_; ++f)
    for (NodeId id = 0; id < static_cast<NodeId>(nl_.num_nodes()); ++id) {
      if (nl_.node(id).dead) continue;
      encode_rail(f, id, /*faulty_rail=*/false);
      if (fault_.has_value() && in_cone_[static_cast<std::size_t>(id)] &&
          faulty_[flat(f, id)] != good_[flat(f, id)])
        encode_rail(f, id, /*faulty_rail=*/true);
    }
}

bool TimeFrameCnf::add_detect_objective(bool include_boundary) {
  SATPG_CHECK(fault_.has_value());
  std::vector<CnfLit> any;
  for (int f = 0; f < frames_; ++f)
    for (const NodeId po : nl_.outputs()) {
      const int g = good_[flat(f, po)];
      const int fv = faulty_[flat(f, po)];
      if (fv != g) any.push_back(mk_lit(add_xor(mk_lit(g), mk_lit(fv))));
    }
  if (include_boundary) {
    const int f = frames_ - 1;
    for (const NodeId dff : nl_.dffs()) {
      // A pin fault on the flip-flop's own D input diverges what gets
      // LATCHED, not the D line itself: the stored faulty value is the
      // stuck constant, so the difference condition is "good D line holds
      // the opposite of the stuck value".
      if (fault_->node == dff && fault_->pin == 0) {
        const NodeId d = nl_.node(dff).fanins[0];
        any.push_back(mk_lit(good_[flat(f, d)], fault_->stuck1));
        continue;
      }
      const NodeId d = nl_.node(dff).fanins[0];
      const int g = good_[flat(f, d)];
      const int fv = faulty_[flat(f, d)];
      if (fv != g) any.push_back(mk_lit(add_xor(mk_lit(g), mk_lit(fv))));
    }
  }
  if (any.empty()) return false;
  solver_->add_clause(std::move(any));
  return true;
}

void TimeFrameCnf::add_justify_target(NodeId ff, bool value) {
  SATPG_DCHECK(nl_.node(ff).type == GateType::kDff);
  const NodeId d = nl_.node(ff).fanins[0];
  solver_->add_clause({mk_lit(good_[flat(frames_ - 1, d)], !value)});
}

bool TimeFrameCnf::block_state_cube(const StateKey& cube) {
  SATPG_DCHECK(cube.size() == nl_.num_dffs());
  std::vector<CnfLit> clause;
  for (std::size_t i = 0; i < cube.size(); ++i) {
    const V3 v = cube.get(i);
    if (v == V3::kX) continue;
    clause.push_back(mk_lit(state_var(i), v == V3::kOne));
  }
  if (clause.empty()) return false;
  solver_->add_clause(std::move(clause));
  return true;
}

}  // namespace satpg
