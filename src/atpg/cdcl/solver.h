// Embedded CDCL SAT solver for the kCdcl ATPG engine.
//
// A deliberately small, fully deterministic solver: two-literal watched
// clauses, VSIDS-lite variable activities with a fixed decay and a
// lowest-index tie-break, phase saving (initial phase false), first-UIP
// conflict analysis WITHOUT clause minimization (so hand-built conflict
// graphs in tests predict the learned clause exactly), Luby restarts with
// a fixed unit of 64 conflicts, and LBD-ordered learned-clause reduction
// on a fixed arithmetic schedule with a clause-index tie-break. There is
// no randomization anywhere: for a given clause stream the search is a
// pure function, which is what the byte-identity contract of DESIGN.md §4d
// and capture/replay (atpg/capture.h) require.
//
// Budget integration: when a PodemBudget is attached the solver charges
// its work through PodemBudget::charge_cdcl — THE one conversion from
// (conflicts, propagations) to the study's common evals/backtracks
// currency — and polls aborted_externally() exactly once per conflict, so
// the abort-check count stays a pure function of the search path and
// wall-clock cuts replay bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "base/events.h"

namespace satpg {

struct PodemBudget;  // atpg/podem.h
class DecisionRing;  // atpg/capture.h

/// CNF literal: variable v (0-based) encoded as 2v (positive) / 2v+1
/// (negated) — the usual packed representation.
using CnfLit = std::int32_t;

inline CnfLit mk_lit(int var, bool neg = false) {
  return static_cast<CnfLit>((var << 1) | (neg ? 1 : 0));
}
inline int lit_var(CnfLit l) { return l >> 1; }
inline bool lit_sign(CnfLit l) { return (l & 1) != 0; }  ///< true = negated
inline CnfLit lit_not(CnfLit l) { return l ^ 1; }

enum class SolveStatus { kSat, kUnsat, kAborted };

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;  ///< implied assignments enqueued by BCP
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned = 0;       ///< clauses produced by 1UIP analysis
  std::uint64_t deleted = 0;       ///< learned clauses removed by reduction
};

/// What circuit line a CNF variable encodes (decision-ring labelling).
/// Tseitin auxiliaries carry {-1, -1}.
struct VarTag {
  std::int32_t frame = -1;
  std::int32_t node = -1;
};

class CdclSolver {
 public:
  CdclSolver() = default;
  /// Releases every accounted byte back to the attached budget's MemTally
  /// (the tally outlives the solver; attempt-end live bytes return to 0).
  ~CdclSolver();

  /// Allocate a fresh variable; returns its index.
  int new_var(VarTag tag = {});
  int num_vars() const { return static_cast<int>(assign_.size()); }

  /// Add a clause over existing variables. May be called before the first
  /// solve() or between solve() calls (incremental blocking clauses). An
  /// empty clause (after level-0 simplification) makes the formula
  /// permanently unsatisfiable.
  void add_clause(std::vector<CnfLit> lits);

  /// Solve the current formula. kAborted only when a budget is attached
  /// and it ran out (or its external abort fired). The trail is unwound to
  /// level 0 before returning; after kSat the model survives in
  /// model_value().
  SolveStatus solve() { return solve_under({}); }

  /// Solve with `assumptions` asserted as the first decisions, in order.
  /// kUnsat means unsatisfiable UNDER the assumptions.
  SolveStatus solve_under(const std::vector<CnfLit>& assumptions);

  /// Model value of `var` after kSat.
  bool model_value(int var) const { return model_[static_cast<std::size_t>(var)] != 0; }

  bool ok() const { return ok_; }  ///< false once level-0 UNSAT is known

  const SolverStats& stats() const { return stats_; }

  /// Attach the fault's cumulative budget (may be nullptr to detach). The
  /// budget must outlive every solve() call — and the solver itself, which
  /// returns its accounted bytes to the budget's MemTally on destruction.
  /// Attach order is irrelevant for byte accounting: the already-accounted
  /// backlog moves between tallies here.
  void set_budget(PodemBudget* budget);

  /// Record decisions/conflicts into `ring` (observation only).
  void set_ring(DecisionRing* ring) { ring_ = ring; }

  /// Record restart/db-reduce flight-recorder events into `sink` (may be
  /// nullptr). The solver only appends; event `at` stamps come from the
  /// attached budget's eval counter, so the stream stays wall-clock free.
  void set_event_sink(SearchEventList* sink) { events_ = sink; }

  // ---- test inspection ------------------------------------------------------

  /// The most recent 1UIP clause, asserting literal first (empty before
  /// the first conflict).
  const std::vector<CnfLit>& last_learned_clause() const {
    return last_learned_;
  }

  /// Watch-list invariant: every live clause of size >= 2 is watched on
  /// exactly its first two literals, each watch entry names a clause that
  /// really watches that literal, and no deleted/short clause is watched.
  bool check_watch_invariants() const;

 private:
  struct Clause {
    std::vector<CnfLit> lits;
    std::uint32_t lbd = 0;   ///< distinct decision levels at learn time
    bool learned = false;
    bool deleted = false;
  };

  using LBool = std::int8_t;  // -1 undef, 0 false, 1 true
  LBool value_of(CnfLit l) const {
    const LBool v = assign_[static_cast<std::size_t>(lit_var(l))];
    if (v < 0) return -1;
    return lit_sign(l) ? static_cast<LBool>(1 - v) : v;
  }

  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  void enqueue(CnfLit l, int reason);
  int propagate();  ///< returns conflicting clause index, or -1
  void attach(int ci);
  void analyze(int confl, std::vector<CnfLit>* learnt, int* bt_level);
  void cancel_until(int level);
  void bump_var(int v);
  void decay_var_inc();
  void reduce_db();
  void rebuild_watches();
  bool locked(int ci) const;
  int pick_branch_var() const;  ///< -1 when all assigned
  void charge_conflict(bool* out_abort);
  void publish_progress();

  // Deterministic clause-DB byte accounting (base/memstats, subsystem
  // cdcl_clause_db). Logical footprint only — element counts x element
  // sizes plus the two watch entries — so the charge stream is a pure
  // function of the clause stream, never of allocator behaviour.
  static std::uint64_t clause_bytes(const Clause& c) {
    return sizeof(Clause) + c.lits.size() * sizeof(CnfLit) +
           2 * sizeof(int);
  }
  void charge_mem(std::uint64_t bytes);
  void release_mem(std::uint64_t bytes);

  bool ok_ = true;
  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  ///< per literal: clause indices
  std::vector<LBool> assign_;              ///< per var
  std::vector<int> level_;                 ///< per var
  std::vector<int> reason_;                ///< per var: clause index or -1
  std::vector<CnfLit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<std::uint8_t> phase_;  ///< saved phase (initially false)
  std::vector<VarTag> tags_;
  std::vector<std::uint8_t> model_;
  std::vector<std::uint8_t> seen_;  ///< analyze() scratch
  std::vector<CnfLit> last_learned_;

  // Deterministic schedules (see DESIGN.md §9): restarts follow
  // luby(i) * kRestartUnit conflicts; the learned DB is reduced whenever
  // the live learned count reaches the limit, which then grows by a fixed
  // step.
  static constexpr std::uint64_t kRestartUnit = 64;
  static constexpr std::size_t kReduceBase = 2000;
  static constexpr std::size_t kReduceStep = 500;
  std::size_t reduce_limit_ = kReduceBase;
  std::size_t live_learned_ = 0;

  std::uint64_t props_uncharged_ = 0;
  std::uint64_t accounted_bytes_ = 0;  ///< live bytes charged to the tally
  PodemBudget* budget_ = nullptr;
  DecisionRing* ring_ = nullptr;
  SearchEventList* events_ = nullptr;

  SolverStats stats_;
};

}  // namespace satpg
