#include "atpg/cdcl/solver.h"

#include <algorithm>

#include "atpg/capture.h"
#include "atpg/podem.h"
#include "base/check.h"
#include "base/memstats.h"
#include "base/profiler.h"

namespace satpg {

namespace {

// Logical per-variable footprint: one element in each per-var array plus
// the two watch-list headers. A compile-time constant, so the byte stream
// charged for variable allocation is identical on every platform build
// with the same ABI (and thread-count invariant everywhere).
constexpr std::uint64_t kVarBytes =
    sizeof(std::int8_t) +            // assign_
    2 * sizeof(int) +                // level_, reason_
    sizeof(double) +                 // activity_
    3 * sizeof(std::uint8_t) +       // phase_, model_, seen_
    sizeof(VarTag) +                 // tags_
    2 * sizeof(std::vector<int>);    // watch-list headers

// Luby sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t k = 1;
  while ((1ULL << k) - 1 < i) ++k;
  while ((1ULL << k) - 1 != i) {
    i -= (1ULL << (k - 1)) - 1;
    k = 1;
    while ((1ULL << k) - 1 < i) ++k;
  }
  return 1ULL << (k - 1);
}

}  // namespace

CdclSolver::~CdclSolver() { release_mem(accounted_bytes_); }

void CdclSolver::set_budget(PodemBudget* budget) {
  if (budget_ == budget) return;
  // Move the accounted backlog between tallies so attach order never
  // changes what any one tally sees live.
  if (budget_ != nullptr && budget_->mem != nullptr)
    budget_->mem->release(MemSubsystem::kCdclClauseDb, accounted_bytes_);
  budget_ = budget;
  if (budget_ != nullptr && budget_->mem != nullptr)
    budget_->mem->charge(MemSubsystem::kCdclClauseDb, accounted_bytes_);
}

void CdclSolver::charge_mem(std::uint64_t bytes) {
  accounted_bytes_ += bytes;
  if (budget_ != nullptr && budget_->mem != nullptr)
    budget_->mem->charge(MemSubsystem::kCdclClauseDb, bytes);
}

void CdclSolver::release_mem(std::uint64_t bytes) {
  SATPG_DCHECK(bytes <= accounted_bytes_);
  accounted_bytes_ -= bytes;
  if (budget_ != nullptr && budget_->mem != nullptr)
    budget_->mem->release(MemSubsystem::kCdclClauseDb, bytes);
}

int CdclSolver::new_var(VarTag tag) {
  const int v = num_vars();
  charge_mem(kVarBytes);
  assign_.push_back(-1);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  phase_.push_back(0);
  tags_.push_back(tag);
  model_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

void CdclSolver::attach(int ci) {
  const Clause& c = clauses_[static_cast<std::size_t>(ci)];
  SATPG_DCHECK(c.lits.size() >= 2);
  watches_[static_cast<std::size_t>(c.lits[0])].push_back(ci);
  watches_[static_cast<std::size_t>(c.lits[1])].push_back(ci);
}

void CdclSolver::add_clause(std::vector<CnfLit> lits) {
  if (!ok_) return;
  SATPG_DCHECK(decision_level() == 0);
  // Level-0 simplification: drop duplicate and falsified literals, skip
  // satisfied and tautological clauses. Sort first so duplicates and l/¬l
  // pairs are adjacent (also canonicalizes storage order).
  std::sort(lits.begin(), lits.end());
  std::vector<CnfLit> out;
  out.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const CnfLit l = lits[i];
    SATPG_DCHECK(lit_var(l) >= 0 && lit_var(l) < num_vars());
    if (!out.empty() && out.back() == l) continue;
    if (!out.empty() && out.back() == lit_not(l)) return;  // tautology
    const LBool v = value_of(l);
    if (v == 1 && level_[static_cast<std::size_t>(lit_var(l))] == 0)
      return;  // satisfied at level 0
    if (v == 0 && level_[static_cast<std::size_t>(lit_var(l))] == 0)
      continue;  // falsified at level 0
    out.push_back(l);
  }
  if (out.empty()) {
    ok_ = false;
    return;
  }
  if (out.size() == 1) {
    if (value_of(out[0]) == 0) {
      ok_ = false;
      return;
    }
    if (value_of(out[0]) == -1) enqueue(out[0], -1);
    return;
  }
  Clause c;
  c.lits = std::move(out);
  charge_mem(clause_bytes(c));
  clauses_.push_back(std::move(c));
  attach(static_cast<int>(clauses_.size()) - 1);
}

void CdclSolver::enqueue(CnfLit l, int reason) {
  const int v = lit_var(l);
  SATPG_DCHECK(assign_[static_cast<std::size_t>(v)] < 0);
  assign_[static_cast<std::size_t>(v)] = lit_sign(l) ? 0 : 1;
  level_[static_cast<std::size_t>(v)] = decision_level();
  reason_[static_cast<std::size_t>(v)] = reason;
  trail_.push_back(l);
  if (reason >= 0) {
    ++stats_.propagations;
    ++props_uncharged_;
  }
}

int CdclSolver::propagate() {
  ProfileSpan prof_span(ProfPhase::kCdclPropagate);
  while (qhead_ < trail_.size()) {
    const CnfLit p = trail_[qhead_++];  // p is now true
    std::vector<int>& ws = watches_[static_cast<std::size_t>(lit_not(p))];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const int ci = ws[i];
      Clause& c = clauses_[static_cast<std::size_t>(ci)];
      if (c.deleted) continue;  // dropped by reduce_db; shed lazily
      // Put the false watch at lits[1].
      const CnfLit false_lit = lit_not(p);
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      SATPG_DCHECK(c.lits[1] == false_lit);
      if (value_of(c.lits[0]) == 1) {
        ws[keep++] = ci;  // satisfied; keep watching
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value_of(c.lits[k]) != 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<std::size_t>(c.lits[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watch migrated; drop from this list
      ws[keep++] = ci;      // unit or conflicting: watch stays
      if (value_of(c.lits[0]) == 0) {
        // Conflict: restore the remaining watchers and report.
        for (++i; i < ws.size(); ++i) ws[keep++] = ws[i];
        ws.resize(keep);
        qhead_ = trail_.size();
        return ci;
      }
      enqueue(c.lits[0], ci);
    }
    ws.resize(keep);
  }
  return -1;
}

void CdclSolver::bump_var(int v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
}

void CdclSolver::decay_var_inc() { var_inc_ *= (1.0 / 0.95); }

void CdclSolver::analyze(int confl, std::vector<CnfLit>* learnt,
                         int* bt_level) {
  ProfileSpan prof_span(ProfPhase::kCdclAnalyze);
  // Standard first-UIP resolution walk over the implication graph, with no
  // clause minimization afterwards: the result is exactly the asserting
  // clause the textbook construction yields, which the hand-built conflict
  // graphs in cdcl_test.cpp verify literal-for-literal.
  learnt->clear();
  learnt->push_back(0);  // slot for the asserting literal
  int counter = 0;
  CnfLit p = -1;
  std::size_t idx = trail_.size();
  int ci = confl;
  do {
    const Clause& c = clauses_[static_cast<std::size_t>(ci)];
    for (const CnfLit q : c.lits) {
      // Skip the implied literal of a reason clause (p is its negation —
      // the false form headed for the learnt clause).
      if (p >= 0 && q == lit_not(p)) continue;
      const int v = lit_var(q);
      if (seen_[static_cast<std::size_t>(v)] ||
          level_[static_cast<std::size_t>(v)] == 0)
        continue;
      seen_[static_cast<std::size_t>(v)] = 1;
      bump_var(v);
      if (level_[static_cast<std::size_t>(v)] >= decision_level())
        ++counter;
      else
        learnt->push_back(q);
    }
    while (!seen_[static_cast<std::size_t>(lit_var(trail_[idx - 1]))]) --idx;
    p = lit_not(trail_[idx - 1]);
    --idx;
    seen_[static_cast<std::size_t>(lit_var(p))] = 0;
    ci = reason_[static_cast<std::size_t>(lit_var(p))];
    --counter;
  } while (counter > 0);
  (*learnt)[0] = p;
  for (std::size_t i = 1; i < learnt->size(); ++i)
    seen_[static_cast<std::size_t>(lit_var((*learnt)[i]))] = 0;

  if (learnt->size() == 1) {
    *bt_level = 0;
  } else {
    // Second-highest level, its literal moved to slot 1 (the other watch).
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt->size(); ++i)
      if (level_[static_cast<std::size_t>(lit_var((*learnt)[i]))] >
          level_[static_cast<std::size_t>(lit_var((*learnt)[max_i]))])
        max_i = i;
    std::swap((*learnt)[1], (*learnt)[max_i]);
    *bt_level = level_[static_cast<std::size_t>(lit_var((*learnt)[1]))];
  }
}

void CdclSolver::cancel_until(int lvl) {
  if (decision_level() <= lvl) return;
  const std::size_t bound = trail_lim_[static_cast<std::size_t>(lvl)];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const int v = lit_var(trail_[i]);
    phase_[static_cast<std::size_t>(v)] =
        assign_[static_cast<std::size_t>(v)] > 0 ? 1 : 0;
    assign_[static_cast<std::size_t>(v)] = -1;
    reason_[static_cast<std::size_t>(v)] = -1;
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(lvl));
  qhead_ = trail_.size();
}

bool CdclSolver::locked(int ci) const {
  const Clause& c = clauses_[static_cast<std::size_t>(ci)];
  const int v = lit_var(c.lits[0]);
  return assign_[static_cast<std::size_t>(v)] >= 0 &&
         reason_[static_cast<std::size_t>(v)] == ci &&
         value_of(c.lits[0]) == 1;
}

void CdclSolver::rebuild_watches() {
  for (auto& w : watches_) w.clear();
  for (std::size_t ci = 0; ci < clauses_.size(); ++ci)
    if (!clauses_[ci].deleted) attach(static_cast<int>(ci));
}

void CdclSolver::reduce_db() {
  ProfileSpan prof_span(ProfPhase::kCdclReduceDb);
  // Candidates: learned, not binary, not a reason, LBD above the
  // keep-forever threshold. Order by (LBD, clause index): older clauses of
  // equal quality die first — a total order independent of anything but
  // the clause stream.
  std::vector<int> cand;
  for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
    const Clause& c = clauses_[ci];
    if (!c.learned || c.deleted || c.lits.size() <= 2 || c.lbd <= 2)
      continue;
    if (locked(static_cast<int>(ci))) continue;
    cand.push_back(static_cast<int>(ci));
  }
  std::sort(cand.begin(), cand.end(), [&](int a, int b) {
    const std::uint32_t la = clauses_[static_cast<std::size_t>(a)].lbd;
    const std::uint32_t lb = clauses_[static_cast<std::size_t>(b)].lbd;
    if (la != lb) return la > lb;  // worst (highest LBD) first
    return a < b;                  // then oldest first
  });
  const std::size_t kill = cand.size() / 2;
  std::uint64_t reclaimed = 0;
  for (std::size_t i = 0; i < kill; ++i)
    reclaimed += clause_bytes(clauses_[static_cast<std::size_t>(cand[i])]);
  if (events_ != nullptr) {
    // Snapshot the live learned-clause LBD distribution before the kill —
    // the flight recorder's view of clause-quality at reduction time.
    SearchEvent e;
    e.kind = SearchEventKind::kDbReduce;
    e.at = budget_ != nullptr ? budget_->evals : 0;
    e.a = static_cast<std::int32_t>(kill);
    e.b = static_cast<std::int32_t>(live_learned_ - kill);
    e.bytes = reclaimed;
    for (const Clause& c : clauses_) {
      if (!c.learned || c.deleted) continue;
      const std::size_t bucket =
          c.lbd < kLbdHistBuckets ? c.lbd : kLbdHistBuckets - 1;
      ++e.lbd[bucket];
    }
    events_->push_back(std::move(e));
  }
  for (std::size_t i = 0; i < kill; ++i) {
    Clause& c = clauses_[static_cast<std::size_t>(cand[i])];
    c.deleted = true;
    // Actually free the literal storage: every later pass skips deleted
    // clauses before touching lits, and freeing here is what makes the
    // reclaimed-bytes figure in the kDbReduce event real.
    std::vector<CnfLit>().swap(c.lits);
    --live_learned_;
    ++stats_.deleted;
  }
  release_mem(reclaimed);
  rebuild_watches();
  // Under memory pressure (budgeted run within a quarter of its limit),
  // hold the reduction threshold at the base instead of letting the DB
  // grow by another step — graceful degradation before the hard trip.
  if (budget_ != nullptr && budget_->mem_pressure())
    reduce_limit_ = kReduceBase;
  else
    reduce_limit_ += kReduceStep;
}

int CdclSolver::pick_branch_var() const {
  // VSIDS-lite: maximum activity, ties broken by LOWEST variable index.
  // A linear scan keeps the order trivially deterministic; variable counts
  // here are a few thousand at most.
  int best = -1;
  for (int v = 0; v < num_vars(); ++v) {
    if (assign_[static_cast<std::size_t>(v)] >= 0) continue;
    if (best < 0 ||
        activity_[static_cast<std::size_t>(v)] >
            activity_[static_cast<std::size_t>(best)])
      best = v;
  }
  return best;
}

void CdclSolver::publish_progress() {
  if (budget_ == nullptr || budget_->progress == nullptr) return;
  SearchProgress& p = *budget_->progress;
  p.evals.store(budget_->evals, std::memory_order_relaxed);
  p.backtracks.store(budget_->backtracks, std::memory_order_relaxed);
  p.implications.store(budget_->decisions, std::memory_order_relaxed);
  // Native solver counters, so a stuck CDCL search shows its real dynamics
  // in heartbeats instead of only the budget-converted currency.
  p.conflicts.store(stats_.conflicts, std::memory_order_relaxed);
  p.propagations.store(stats_.propagations, std::memory_order_relaxed);
  p.restarts.store(stats_.restarts, std::memory_order_relaxed);
}

void CdclSolver::charge_conflict(bool* out_abort) {
  *out_abort = false;
  if (budget_ == nullptr) return;
  budget_->charge_cdcl(1, props_uncharged_);
  props_uncharged_ = 0;
  publish_progress();
  // Exactly one external-abort poll per conflict keeps the check count a
  // pure function of the search path (the replay contract). The memory
  // trip joins it here: the tally's peak is itself path-pure, so a
  // budgeted abort lands at the same conflict on every run.
  if (budget_->aborted_externally() || budget_->exhausted_backtracks() ||
      budget_->exhausted_evals() || budget_->mem_exceeded())
    *out_abort = true;
}

SolveStatus CdclSolver::solve_under(const std::vector<CnfLit>& assumptions) {
  const auto finish = [&](SolveStatus st) {
    if (budget_ != nullptr && props_uncharged_ != 0) {
      budget_->charge_cdcl(0, props_uncharged_);
      props_uncharged_ = 0;
      publish_progress();
    }
    cancel_until(0);
    return st;
  };
  if (!ok_) return finish(SolveStatus::kUnsat);
  if (propagate() >= 0) {
    ok_ = false;
    return finish(SolveStatus::kUnsat);
  }

  std::uint64_t conflicts_since_restart = 0;
  std::uint64_t restart_limit = luby(stats_.restarts + 1) * kRestartUnit;
  std::vector<CnfLit> learnt;

  for (;;) {
    const int confl = propagate();
    if (confl >= 0) {
      ++stats_.conflicts;
      bool aborted = false;
      charge_conflict(&aborted);
      if (aborted) return finish(SolveStatus::kAborted);
      if (decision_level() == 0) {
        ok_ = false;
        return finish(SolveStatus::kUnsat);
      }
      int bt_level = 0;
      analyze(confl, &learnt, &bt_level);
      last_learned_ = learnt;
      if (ring_ != nullptr)
        ring_->push({DecisionEventKind::kBacktrack, 0, decision_level(),
                     -1, stats_.conflicts});
      cancel_until(bt_level);
      ++conflicts_since_restart;
      if (learnt.size() == 1) {
        enqueue(learnt[0], -1);
      } else {
        Clause c;
        c.lits = learnt;
        c.learned = true;
        // LBD = number of distinct decision levels among the literals.
        std::vector<int> lvls;
        lvls.reserve(learnt.size());
        for (const CnfLit l : learnt)
          lvls.push_back(level_[static_cast<std::size_t>(lit_var(l))]);
        std::sort(lvls.begin(), lvls.end());
        c.lbd = static_cast<std::uint32_t>(
            std::unique(lvls.begin(), lvls.end()) - lvls.begin());
        charge_mem(clause_bytes(c));
        clauses_.push_back(std::move(c));
        const int ci = static_cast<int>(clauses_.size()) - 1;
        attach(ci);
        ++live_learned_;
        ++stats_.learned;
        enqueue(learnt[0], ci);
      }
      decay_var_inc();
      if (live_learned_ >= reduce_limit_) reduce_db();
      continue;
    }

    if (conflicts_since_restart >= restart_limit) {
      ++stats_.restarts;
      if (events_ != nullptr) {
        SearchEvent e;
        e.kind = SearchEventKind::kRestart;
        e.at = budget_ != nullptr ? budget_->evals : 0;
        e.a = static_cast<std::int32_t>(stats_.restarts);
        events_->push_back(std::move(e));
      }
      conflicts_since_restart = 0;
      restart_limit = luby(stats_.restarts + 1) * kRestartUnit;
      cancel_until(0);
      continue;
    }

    // Assumptions act as the first decisions, re-asserted after every
    // backjump below them.
    if (static_cast<std::size_t>(decision_level()) < assumptions.size()) {
      const CnfLit a = assumptions[static_cast<std::size_t>(decision_level())];
      if (value_of(a) == 0) return finish(SolveStatus::kUnsat);
      trail_lim_.push_back(trail_.size());
      if (value_of(a) == -1) enqueue(a, -1);
      continue;
    }

    const int v = pick_branch_var();
    if (v < 0) {
      for (int u = 0; u < num_vars(); ++u)
        model_[static_cast<std::size_t>(u)] =
            assign_[static_cast<std::size_t>(u)] > 0 ? 1 : 0;
      return finish(SolveStatus::kSat);
    }
    ++stats_.decisions;
    if (budget_ != nullptr) {
      ++budget_->decisions;
      publish_progress();
    }
    const CnfLit l = mk_lit(v, phase_[static_cast<std::size_t>(v)] == 0);
    if (ring_ != nullptr)
      ring_->push({DecisionEventKind::kDecision,
                   static_cast<std::uint8_t>(lit_sign(l) ? 0 : 1),
                   tags_[static_cast<std::size_t>(v)].frame,
                   tags_[static_cast<std::size_t>(v)].node,
                   static_cast<std::uint64_t>(v)});
    trail_lim_.push_back(trail_.size());
    enqueue(l, -1);
  }
}

bool CdclSolver::check_watch_invariants() const {
  // Count watch entries per (clause, literal).
  std::vector<int> entries(clauses_.size(), 0);
  for (std::size_t l = 0; l < watches_.size(); ++l) {
    for (const int ci : watches_[l]) {
      if (ci < 0 || static_cast<std::size_t>(ci) >= clauses_.size())
        return false;
      const Clause& c = clauses_[static_cast<std::size_t>(ci)];
      if (c.deleted) continue;  // stale entry from lazy detach: tolerated
      if (c.lits.size() < 2) return false;
      if (c.lits[0] != static_cast<CnfLit>(l) &&
          c.lits[1] != static_cast<CnfLit>(l))
        return false;  // watched on a non-watch literal
      ++entries[static_cast<std::size_t>(ci)];
    }
  }
  for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
    const Clause& c = clauses_[ci];
    if (c.deleted) continue;
    if (c.lits.size() >= 2 && entries[ci] != 2) return false;
  }
  return true;
}

}  // namespace satpg
