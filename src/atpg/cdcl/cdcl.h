// SAT-based sequential ATPG engine (EngineKind::kCdcl).
//
// The fourth engine of the study: the same iterative-array search the
// structural engines run — forward window growth for propagation,
// recursive backward state justification, sound single-frame redundancy —
// but every per-window and per-justification-level query is answered by
// the embedded CDCL solver over a Tseitin encoding (cdcl/cnf.h) instead
// of PODEM branch-and-bound.
//
// Conflict learning crosses faults through state cubes, not raw clauses:
// when a predecessor query for a frame-0 state cube completes UNSAT with
// only proven-unreachable cubes blocked, that cube provably intersects no
// reachable state and is canonicalized to a StateKey, recorded in the
// engine's learned-failure cache, and published through the
// SharedLearningCache like kLearning's entries. Every later attempt (any
// fault, any worker) imports the visible proven cubes as blocking clauses
// on its frame-0 state variables. Raw learned clauses are NOT exported —
// they are conditional on the query's objective, so publishing them would
// let one fault's window constraint masquerade as a reachability fact;
// the cube form is exactly the sound, engine-independent residue
// (DESIGN.md §9 has the unreachability induction; the property suite
// checks every exported cube against the exact-BDD oracle).
//
// CdclAtpg is a per-attempt driver over AtpgEngine's state (a friend —
// caches, stats, hooks and budget plumbing are shared with the structural
// paths so the parallel driver, capture/replay, watchdog and attribution
// observability work unchanged).
#pragma once

#include "atpg/engine.h"
#include "atpg/cdcl/solver.h"

namespace satpg {

class CdclAtpg {
 public:
  explicit CdclAtpg(AtpgEngine& engine) : e_(engine) {}

  FaultAttempt generate(const Fault& fault);

 private:
  struct JustifyOutcome {
    enum class Status { kJustified, kProvenInvalid, kFailed };
    Status status = Status::kFailed;
    std::vector<std::vector<V3>> prefix;  ///< oldest vector first
  };

  JustifyOutcome justify(const std::vector<std::pair<NodeId, V3>>& cube,
                         int depth, StateSet& on_path, PodemBudget& budget);
  void publish_phase(SearchPhase p);
  void harvest(const CdclSolver& solver);
  bool cube_excludes_initial(const StateKey& key) const;

  AtpgEngine& e_;
  /// One visible proven-unreachable cube plus its provenance tag: the
  /// fault that proved it and the epoch it was published in (0 =
  /// unit-local, not yet published).
  struct Block {
    StateKey key;
    std::string exporter;
    std::uint32_t epoch = 0;
  };
  /// Proven-unreachable frame-0 cubes visible to this attempt: the sorted
  /// import of (shared view ∪ local failure cache) at attempt start, plus
  /// every cube proven during the attempt, in proof order. Every solver of
  /// the attempt blocks all of them; each successful block records a
  /// provenance hit against the cube's exporter.
  std::vector<Block> blocking_;
};

}  // namespace satpg
