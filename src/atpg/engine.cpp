#include "atpg/engine.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "atpg/capture.h"
#include "atpg/cdcl/cdcl.h"
#include "base/metrics.h"
#include "base/profiler.h"
#include "base/rng.h"
#include "base/trace.h"

namespace satpg {

const char* engine_kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kHitec:
      return "hitec";
    case EngineKind::kForward:
      return "forward";
    case EngineKind::kLearning:
      return "learning";
    case EngineKind::kCdcl:
      return "cdcl";
  }
  return "?";
}

AtpgEngine::AtpgEngine(const Netlist& nl, const EngineOptions& opts)
    : nl_(nl), opts_(opts), scoap_(compute_scoap(nl)),
      dff_index_(nl.num_nodes(), -1) {
  for (std::size_t i = 0; i < nl.dffs().size(); ++i)
    dff_index_[static_cast<std::size_t>(nl.dffs()[i])] =
        static_cast<int>(i);
}

StateKey AtpgEngine::cube_key(
    const std::vector<std::pair<NodeId, V3>>& cube) const {
  // nl_.dffs() order defines the key positions.
  StateKey key(nl_.num_dffs());
  for (const auto& [ff, v] : cube) {
    const int i = dff_index_[static_cast<std::size_t>(ff)];
    SATPG_DCHECK(i >= 0);
    key.set(static_cast<std::size_t>(i), v);
  }
  return key;
}

StateValidity AtpgEngine::classify_cube(const StateKey& key) {
  if (validity_ == nullptr) return StateValidity::kUnknown;
  const auto [it, inserted] =
      validity_memo_.try_emplace(key, StateValidity::kUnknown);
  if (inserted) it->second = validity_->classify(key);
  return it->second;
}

AtpgEngine::JustifyOutcome AtpgEngine::justify(
    const std::vector<std::pair<NodeId, V3>>& cube, int depth,
    StateSet& on_path, PodemBudget& budget) {
  if (cube.empty()) return {true, {}};
  // Span only the outermost call: justification recurses through nested
  // frames, and a span per level would double-count every inner cycle.
  std::optional<ProfileSpan> prof_span;
  if (depth == 0) prof_span.emplace(ProfPhase::kPodemJustify);
  if (progress_ != nullptr)
    progress_->phase.store(static_cast<std::uint32_t>(SearchPhase::kJustify),
                           std::memory_order_relaxed);
  ++stats_.justify_calls;
  stats_.max_justify_depth =
      std::max<std::uint64_t>(stats_.max_justify_depth,
                              static_cast<std::uint64_t>(depth) + 1);
  const StateKey key = cube_key(cube);
  cubes_visited_.insert(key);
  if (record_events_) {
    SearchEvent e;
    e.kind = SearchEventKind::kJustifyEnter;
    e.a = depth;
    e.at = budget.evals;
    e.cube = key.to_string();
    events_buf_.push_back(std::move(e));
  }
  // Every justify() return emits the matching leave event (outcome 0 fail,
  // 1 ok) so timelines can reconstruct the descent.
  const auto leave = [&](int outcome) {
    if (record_events_) {
      SearchEvent e;
      e.kind = SearchEventKind::kJustifyLeave;
      e.a = depth;
      e.b = outcome;
      e.at = budget.evals;
      events_buf_.push_back(std::move(e));
    }
  };
  // Attribution bucket for everything spent at THIS level on this cube
  // (nested levels classify their own cubes). Pure observation: the
  // verdict feeds counters only, never the search.
  const std::size_t bucket = static_cast<std::size_t>(classify_cube(key));
  const bool attributed = validity_ != nullptr;
  EffortAttribution& attr = stats_.attribution;
  if (attributed) ++attr.justify_calls[bucket];
  const auto fail_bucket = [&] {
    if (attributed) ++attr.justify_failures[bucket];
  };
  if (depth > opts_.max_backward_frames) {
    ++stats_.justify_failures;
    fail_bucket();
    leave(0);
    return {};
  }
  if (on_path.count(key)) {
    ++stats_.justify_failures;
    fail_bucket();
    leave(0);
    return {};  // state-requirement loop
  }

  const bool learning = opts_.kind == EngineKind::kLearning;
  // Learning-cache consumption enters the decision stream: a hit short-
  // circuits the search, so replay (atpg/capture.h) must see WHERE and
  // WITH WHAT VERDICT to explain a divergence against cache-less re-runs.
  const auto ring_learn_hit = [&](bool ok) {
    if (ring_ != nullptr)
      ring_->push({DecisionEventKind::kLearnHit,
                   static_cast<std::uint8_t>(ok ? 1 : 0), depth, -1,
                   static_cast<std::uint64_t>(StateKeyHash{}(key))});
  };
  const auto event_learn_hit = [&](bool ok, const std::string& src) {
    if (record_events_) {
      SearchEvent e;
      e.kind = SearchEventKind::kLearnHit;
      e.a = depth;
      e.b = ok ? 1 : 0;
      e.at = budget.evals;
      e.cube = key.to_string();
      e.src = src;
      events_buf_.push_back(std::move(e));
    }
  };
  if (learning) {
    if (auto it = learned_ok_.find(key); it != learned_ok_.end()) {
      ++stats_.learn_hits;
      ring_learn_hit(true);
      event_learn_hit(true, {});
      leave(1);
      return {true, it->second};
    }
    if (learned_fail_.count(key)) {
      ++stats_.learn_hits;
      ++stats_.justify_failures;
      fail_bucket();
      ring_learn_hit(false);
      const auto origin = cube_origins_.find(key);
      if (origin != cube_origins_.end())
        count_cube_source(origin->second.exporter, origin->second.epoch);
      event_learn_hit(false, origin != cube_origins_.end()
                                 ? origin->second.exporter
                                 : std::string());
      leave(0);
      return {};
    }
    if (shared_ != nullptr) {
      // Copy shared hits into the local caches so repeated lookups stay on
      // the fast path (and so the driver's harvest republishes them, a
      // no-op under the cache's first-writer-wins rule).
      std::vector<std::vector<V3>> prefix;
      if (shared_->lookup_ok(key, &prefix)) {
        ++stats_.learn_hits;
        ring_learn_hit(true);
        event_learn_hit(true, {});
        learned_ok_[key] = prefix;
        leave(1);
        return {true, std::move(prefix)};
      }
      std::string exporter;
      std::uint32_t epoch = 0;
      if (shared_->lookup_fail_info(key, &exporter, &epoch)) {
        ++stats_.learn_hits;
        ++stats_.justify_failures;
        fail_bucket();
        ring_learn_hit(false);
        count_cube_source(exporter, epoch);
        event_learn_hit(false, exporter);
        learned_fail_.insert(key);
        cube_origins_[key] = {exporter, epoch};
        leave(0);
        return {};
      }
    }
    ++stats_.learn_misses;
  }

  on_path.insert(key);
  JustifyOutcome out;

  TimeFrameModel tfm(nl_, current_fault_, 1);
  tfm.attach_eval_counter(&budget.evals);
  const MemScope tfm_mem(budget.mem, MemSubsystem::kTfmFrames,
                         tfm.footprint_bytes());
  Podem podem(tfm, scoap_, /*allow_state_decisions=*/true,
              PodemGoal::kJustify, cube);
  // Snapshot-delta accounting around search()/resume(): the budget counters
  // tick live during nested justify() recursions too, but those happen
  // between the snapshots below, so each level's spend lands on its own
  // cube's bucket.
  std::uint64_t evals0 = budget.evals;
  std::uint64_t backtracks0 = budget.backtracks;
  const auto commit_spend = [&] {
    if (attributed) {
      attr.justify_evals[bucket] += budget.evals - evals0;
      attr.justify_backtracks[bucket] += budget.backtracks - backtracks0;
      if (progress_ != nullptr)
        progress_->invalid_evals.store(
            attr.justify_evals[static_cast<std::size_t>(
                StateValidity::kInvalid)],
            std::memory_order_relaxed);
    }
  };
  PodemStatus st = podem.search(budget);
  commit_spend();
  while (st == PodemStatus::kSuccess) {
    // Extract this solution: the input vector and the new state demand.
    std::vector<V3> vec(nl_.num_inputs(), V3::kX);
    for (std::size_t i = 0; i < nl_.inputs().size(); ++i)
      vec[i] = podem.pi_value(0, nl_.inputs()[i]);
    std::vector<std::pair<NodeId, V3>> prev_cube;
    for (NodeId ff : nl_.dffs()) {
      const V3 v = podem.state_value(ff);
      if (v != V3::kX) prev_cube.push_back({ff, v});
    }
    auto sub = justify(prev_cube, depth + 1, on_path, budget);
    if (sub.ok) {
      out.ok = true;
      out.prefix = std::move(sub.prefix);
      out.prefix.push_back(std::move(vec));
      break;
    }
    if (budget.exhausted_backtracks() || budget.exhausted_evals()) break;
    evals0 = budget.evals;
    backtracks0 = budget.backtracks;
    st = podem.resume(budget);
    commit_spend();
  }
  on_path.erase(key);

  if (learning) {
    if (out.ok) {
      learned_ok_[key] = out.prefix;
      ++stats_.learn_inserts;
    } else if (st == PodemStatus::kExhausted) {
      learned_fail_.insert(key);  // complete search failed (budget-honest)
      ++stats_.learn_inserts;
      cube_origins_[key] = {fault_name_, 0};
      if (record_events_) {
        SearchEvent e;
        e.kind = SearchEventKind::kCubeExport;
        e.at = budget.evals;
        e.cube = key.to_string();
        e.bytes = e.cube.size();
        events_buf_.push_back(std::move(e));
      }
    }
  }
  if (!out.ok) {
    ++stats_.justify_failures;
    fail_bucket();
  }
  leave(out.ok ? 1 : 0);
  return out;
}

FaultAttempt AtpgEngine::generate(const Fault& fault) {
  if (opts_.kind == EngineKind::kCdcl) {
    CdclAtpg cdcl(*this);
    return cdcl.generate(fault);
  }
  const auto t0 = std::chrono::steady_clock::now();
  FaultAttempt attempt;
  current_fault_ = fault;
  stats_ = FaultSearchStats{};
  events_buf_.clear();
  attempt_sources_.clear();
  fault_name_ = fault_name(nl_, fault);
  // ONE budget for every phase of this fault: window growth, all
  // justification levels, and the redundancy check all consume the same
  // cumulative `evals` counter (fed by TimeFrameModel::attach_eval_counter)
  // so a fault can never overspend eval_limit by restarting the count in a
  // fresh model.
  PodemBudget budget;
  budget.max_backtracks = opts_.backtrack_limit;
  // The watchdog's defer mode trims the FIRST attempt with a soft cap; the
  // requeued retry runs uncapped from a fresh budget, so it spends exactly
  // the decisions an uncapped first attempt would have.
  budget.max_evals = soft_eval_cap_ != 0
                         ? std::min(opts_.eval_limit, soft_eval_cap_)
                         : opts_.eval_limit;
  budget.abort = abort_;
  budget.abort_at_check = abort_at_check_;
  budget.progress = progress_;
  if (ring_ != nullptr) ring_->reset();
  budget.ring = ring_;
  attempt_mem_ = MemTally{};
  budget.mem = mem_armed_ ? &attempt_mem_ : nullptr;
  budget.mem_limit = mem_limit_;
  // The capture ring is owned for the whole attempt; charged here and
  // released before the tally is snapshotted into the attempt below.
  const std::uint64_t ring_bytes =
      budget.mem != nullptr && ring_ != nullptr
          ? ring_->capacity() * sizeof(DecisionEvent)
          : 0;
  if (ring_bytes != 0)
    budget.mem->charge(MemSubsystem::kDecisionRing, ring_bytes);
  const auto publish_phase = [&](SearchPhase p) {
    if (progress_ != nullptr)
      progress_->phase.store(static_cast<std::uint32_t>(p),
                             std::memory_order_relaxed);
  };

  const bool allow_state = opts_.kind != EngineKind::kForward;
  bool any_aborted = false;
  int rejects_this_fault = 0;

  for (int frames = 1;
       frames <= opts_.max_forward_frames && !any_aborted;
       ++frames) {
    if (frames > 1) {
      ++stats_.window_growths;
      if (record_events_) {
        SearchEvent e;
        e.kind = SearchEventKind::kWindowGrow;
        e.a = frames;
        e.at = budget.evals;
        events_buf_.push_back(std::move(e));
      }
    }
    publish_phase(SearchPhase::kWindow);
    TimeFrameModel tfm(nl_, fault, frames);
    tfm.attach_eval_counter(&budget.evals);
    const MemScope tfm_mem(budget.mem, MemSubsystem::kTfmFrames,
                           tfm.footprint_bytes());
    Podem podem(tfm, scoap_, allow_state, PodemGoal::kDetect);
    PodemStatus st = podem.search(budget);
    while (st == PodemStatus::kSuccess) {
      // Window vectors.
      std::vector<std::vector<V3>> window(
          static_cast<std::size_t>(frames),
          std::vector<V3>(nl_.num_inputs(), V3::kX));
      for (int t = 0; t < frames; ++t)
        for (std::size_t i = 0; i < nl_.inputs().size(); ++i)
          window[static_cast<std::size_t>(t)][i] =
              podem.pi_value(t, nl_.inputs()[i]);
      // Required frame-0 state.
      std::vector<std::pair<NodeId, V3>> cube;
      if (allow_state)
        for (NodeId ff : nl_.dffs()) {
          const V3 v = podem.state_value(ff);
          if (v != V3::kX) cube.push_back({ff, v});
        }
      StateSet on_path;
      auto just = justify(cube, 0, on_path, budget);
      publish_phase(SearchPhase::kWindow);
      if (just.ok) {
        // Candidate sequence; justification ran on the good machine, so
        // confirm on the faulty machine before declaring success (HITEC
        // verifies with its fault simulator the same way). On mismatch the
        // enumeration continues with a different solution.
        TestSequence candidate = just.prefix;
        for (const auto& v : window) candidate.push_back(v);
        for (auto& vec : candidate)
          for (auto& x : vec)
            if (x == V3::kX) x = V3::kZero;
        if (simulate_fault_serial(nl_, fault, candidate) >= 0) {
          attempt.status = FaultStatus::kDetected;
          attempt.sequence = std::move(candidate);
          break;
        }
        ++verify_rejects_;
        if (++rejects_this_fault >= opts_.verify_reject_limit) {
          any_aborted = true;
          break;
        }
      }
      if (budget.exhausted_backtracks() || budget.exhausted_evals()) {
        any_aborted = true;
        break;
      }
      st = podem.resume(budget);
    }
    if (attempt.status == FaultStatus::kDetected) break;
    if (st == PodemStatus::kAborted) any_aborted = true;
    // kExhausted: no detection within this window from any state; widen.
  }

  if (attempt.status != FaultStatus::kDetected && !any_aborted) {
    // Sound redundancy check: complete single-frame search for
    // excite-and-store from a free state. Runs on the SAME budget — the
    // redundancy verdict requires the search to complete within whatever
    // this fault has left, so eval_limit really is per fault, all phases.
    publish_phase(SearchPhase::kRedundancy);
    if (record_events_) {
      SearchEvent e;
      e.kind = SearchEventKind::kRedundancyStart;
      e.a = 1;
      e.at = budget.evals;
      events_buf_.push_back(std::move(e));
    }
    TimeFrameModel tfm(nl_, fault, 1);
    tfm.attach_eval_counter(&budget.evals);
    const MemScope tfm_mem(budget.mem, MemSubsystem::kTfmFrames,
                           tfm.footprint_bytes());
    Podem podem(tfm, scoap_, /*allow_state=*/true,
                PodemGoal::kDetectOrStore);
    const PodemStatus st = podem.search(budget);
    if (st == PodemStatus::kExhausted)
      attempt.status = FaultStatus::kRedundant;
    // kSuccess: storable but not detected within the window — aborted.
    // kAborted: budget ran out mid-proof — aborted, never redundant.
    if (record_events_) {
      SearchEvent e;
      e.kind = SearchEventKind::kRedundancyVerdict;
      e.b = st == PodemStatus::kExhausted ? 1 : 0;
      e.at = budget.evals;
      events_buf_.push_back(std::move(e));
    }
  }

  total_evals_ += budget.evals;
  total_backtracks_ += budget.backtracks;
  stats_.evals = budget.evals;
  stats_.backtracks = budget.backtracks;
  stats_.implications = budget.decisions;
  stats_.verify_rejects = static_cast<std::uint64_t>(rejects_this_fault);
  stats_.budget_exhausted =
      budget.exhausted_backtracks() || budget.exhausted_evals();
  attempt.soft_capped = soft_eval_cap_ != 0 &&
                        soft_eval_cap_ < opts_.eval_limit &&
                        attempt.status == FaultStatus::kAborted &&
                        budget.exhausted_evals();
  attempt.mem_capped = attempt.status == FaultStatus::kAborted &&
                       budget.mem_exceeded();
  if (ring_bytes != 0)
    budget.mem->release(MemSubsystem::kDecisionRing, ring_bytes);
  stats_.peak_bytes = attempt_mem_.peak;
  attempt.mem = attempt_mem_;
  attempt.first_abort_check = budget.first_abort_check;
  if (record_events_) {
    if (stats_.budget_exhausted || attempt.mem_capped) {
      SearchEvent e;
      e.kind = SearchEventKind::kBudgetAbort;
      e.a = budget.exhausted_evals() ? 1 : 0;
      e.b = budget.exhausted_backtracks() ? 1 : 0;
      if (budget.mem_exceeded()) e.bytes = attempt_mem_.peak;
      e.at = budget.evals;
      events_buf_.push_back(std::move(e));
    }
    if (budget.first_abort_check != 0) {
      SearchEvent e;
      e.kind = SearchEventKind::kExternalAbort;
      e.at = budget.evals;
      events_buf_.push_back(std::move(e));
    }
  }
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  attempt.stats = stats_;
  flush_attempt_observability(&attempt);
  return attempt;
}

void AtpgEngine::flush_attempt_observability(FaultAttempt* attempt) {
  if (record_events_) {
    attempt->events = std::move(events_buf_);
    events_buf_.clear();
  }
  attempt->cube_sources.reserve(attempt_sources_.size());
  for (const auto& [src, hits] : attempt_sources_)
    attempt->cube_sources.push_back({src.first, src.second, hits});
  attempt_sources_.clear();
}

// ---- driver -----------------------------------------------------------------

void record_fault_stats(const FaultSearchStats& stats, FaultStatus status) {
  if (!metrics_enabled()) return;
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.histogram("atpg.evals_per_fault").record(stats.evals);
  reg.histogram("atpg.backtracks_per_fault").record(stats.backtracks);
  reg.histogram("atpg.implications_per_fault").record(stats.implications);
  reg.histogram("atpg.window_growths_per_fault")
      .record(stats.window_growths);
  reg.histogram("atpg.justify_depth").record(stats.max_justify_depth);
  reg.histogram("atpg.justify_failures_per_fault")
      .record(stats.justify_failures);
  reg.counter("atpg.justify_calls").add(stats.justify_calls);
  reg.counter("atpg.justify_failures").add(stats.justify_failures);
  reg.counter("atpg.learn_hits").add(stats.learn_hits);
  reg.counter("atpg.learn_misses").add(stats.learn_misses);
  reg.counter("atpg.learn_inserts").add(stats.learn_inserts);
  reg.counter("atpg.verify_rejects").add(stats.verify_rejects);
  reg.histogram("atpg.peak_bytes_per_fault").record(stats.peak_bytes);
  // CDCL solver counters: only recorded when the attempt did SAT work, so
  // structural-engine runs keep their metric registry unchanged.
  if (stats.conflicts != 0 || stats.propagations != 0) {
    reg.histogram("atpg.cdcl_conflicts_per_fault").record(stats.conflicts);
    reg.counter("atpg.cdcl_conflicts").add(stats.conflicts);
    reg.counter("atpg.cdcl_propagations").add(stats.propagations);
    reg.counter("atpg.cdcl_restarts").add(stats.restarts);
    reg.counter("atpg.cdcl_learned_clauses").add(stats.learned_clauses);
    reg.counter("atpg.cdcl_cube_blocks").add(stats.cube_blocks);
    reg.counter("atpg.cdcl_cube_exports").add(stats.cube_exports);
  }
  if (stats.budget_exhausted) reg.counter("atpg.budget_exhausted").add();
  // Invalid-state attribution (all zeros when no oracle was attached).
  // Bucket order: DESIGN.md §6 / StateValidity.
  static const char* const kBucketNames[3] = {"valid", "invalid", "unknown"};
  const EffortAttribution& a = stats.attribution;
  for (std::size_t b = 0; b < 3; ++b) {
    reg.counter(std::string("atpg.justify_calls_") + kBucketNames[b])
        .add(a.justify_calls[b]);
    reg.counter(std::string("atpg.justify_failures_") + kBucketNames[b])
        .add(a.justify_failures[b]);
    reg.counter(std::string("atpg.justify_evals_") + kBucketNames[b])
        .add(a.justify_evals[b]);
    reg.counter(std::string("atpg.justify_backtracks_") + kBucketNames[b])
        .add(a.justify_backtracks[b]);
  }
  // Integer percent so the histogram stays deterministic (DESIGN.md §5
  // allows only integral samples).
  const std::uint64_t invalid_evals =
      a.justify_evals[static_cast<std::size_t>(StateValidity::kInvalid)];
  reg.histogram("atpg.effort_invalid_pct")
      .record(stats.evals == 0 ? 0 : invalid_evals * 100 / stats.evals);
  switch (status) {
    case FaultStatus::kDetected:
      reg.counter("atpg.faults_detected").add();
      break;
    case FaultStatus::kRedundant:
      reg.counter("atpg.faults_redundant").add();
      break;
    case FaultStatus::kAborted:
      reg.counter("atpg.faults_aborted").add();
      break;
  }
}

std::vector<TestSequence> make_random_sequences(const Netlist& nl, int count,
                                                int length,
                                                std::uint64_t seed) {
  Rng rng(seed ^ 0x5eedf00dULL);
  const NodeId rst = nl.find("rst");
  int rst_index = -1;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    if (nl.inputs()[i] == rst) rst_index = static_cast<int>(i);

  std::vector<TestSequence> seqs;
  for (int s = 0; s < count; ++s) {
    TestSequence seq;
    for (int t = 0; t < length; ++t) {
      std::vector<V3> v(nl.num_inputs());
      for (auto& x : v) x = rng.next_bool() ? V3::kOne : V3::kZero;
      if (rst_index >= 0)
        v[static_cast<std::size_t>(rst_index)] =
            (t == 0 || rng.next_bernoulli(0.02)) ? V3::kOne : V3::kZero;
      seq.push_back(std::move(v));
    }
    seqs.push_back(std::move(seq));
  }
  return seqs;
}

void fill_x_with_zero(TestSequence& seq) {
  for (auto& vec : seq)
    for (auto& v : vec)
      if (v == V3::kX) v = V3::kZero;
}

AtpgRunResult run_atpg(const Netlist& nl, const AtpgRunOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  AtpgRunResult res;

  const auto collapsed = collapse_faults(nl);
  std::vector<Fault> faults;
  faults.reserve(collapsed.size());
  for (const auto& cf : collapsed) faults.push_back(cf.representative);

  enum class S { kUndetected, kDetected, kRedundant, kAborted };
  std::vector<S> status(faults.size(), S::kUndetected);
  std::vector<bool> potential(faults.size(), false);

  // ---- random phase ----
  auto random_seqs =
      make_random_sequences(nl, opts.random_sequences, opts.random_length,
                            opts.seed);
  if (!random_seqs.empty()) {
    TraceSpan span("atpg.random_phase");
    const auto fr = run_fault_simulation(nl, faults, random_seqs, opts.fsim);
    std::vector<bool> seq_used(random_seqs.size(), false);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (fr.detected_at[i] >= 0) {
        status[i] = S::kDetected;
        seq_used[static_cast<std::size_t>(fr.detected_at[i])] = true;
      }
      if (fr.potential_at[i] >= 0) potential[i] = true;
    }
    for (std::size_t s = 0; s < random_seqs.size(); ++s)
      if (seq_used[s]) res.tests.push_back(random_seqs[s]);
  }

  // ---- deterministic phase ----
  AtpgEngine engine(nl, opts.engine);
  StateValidityOracle oracle;
  if (opts.attribute_effort) {
    TraceSpan oracle_span("atpg.oracle_build");
    oracle = StateValidityOracle::build(nl);
    res.oracle = oracle.info();
    engine.set_validity_oracle(&oracle);
  }
  std::size_t w_all = 0;
  for (const auto& cf : collapsed)
    w_all += static_cast<std::size_t>(cf.class_size);
  auto current_fe = [&]() {
    std::size_t w = 0;
    for (std::size_t j = 0; j < faults.size(); ++j)
      if (status[j] == S::kDetected || status[j] == S::kRedundant)
        w += static_cast<std::size_t>(collapsed[j].class_size);
    return 100.0 * static_cast<double>(w) /
           static_cast<double>(std::max<std::size_t>(1, w_all));
  };
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (status[i] != S::kUndetected) continue;
    if (opts.total_eval_budget &&
        engine.total_evals() > opts.total_eval_budget) {
      status[i] = S::kAborted;
      continue;
    }
    FaultAttempt attempt = engine.generate(faults[i]);
    res.implications += attempt.stats.implications;
    res.window_growths += attempt.stats.window_growths;
    res.justify_calls += attempt.stats.justify_calls;
    res.justify_failures += attempt.stats.justify_failures;
    res.learn_hits += attempt.stats.learn_hits;
    res.learn_misses += attempt.stats.learn_misses;
    res.learn_inserts += attempt.stats.learn_inserts;
    res.conflicts += attempt.stats.conflicts;
    res.propagations += attempt.stats.propagations;
    res.restarts += attempt.stats.restarts;
    res.learned_clauses += attempt.stats.learned_clauses;
    res.cube_exports += attempt.stats.cube_exports;
    res.attribution.add(attempt.stats.attribution);
    record_fault_stats(attempt.stats, attempt.status);
    switch (attempt.status) {
      case FaultStatus::kRedundant:
        status[i] = S::kRedundant;
        break;
      case FaultStatus::kAborted:
        status[i] = S::kAborted;
        break;
      case FaultStatus::kDetected: {
        fill_x_with_zero(attempt.sequence);
        // Verify and drop everything else this sequence catches.
        std::vector<Fault> remaining;
        std::vector<std::size_t> remap;
        for (std::size_t j = 0; j < faults.size(); ++j)
          if (j == i || status[j] == S::kUndetected) {
            remaining.push_back(faults[j]);
            remap.push_back(j);
          }
        const auto fr = run_fault_simulation(nl, remaining,
                                             {attempt.sequence}, opts.fsim);
        bool target_confirmed = false;
        for (std::size_t k = 0; k < remaining.size(); ++k) {
          if (fr.potential_at[k] >= 0) potential[remap[k]] = true;
          if (fr.detected_at[k] < 0) continue;
          if (remap[k] == i) target_confirmed = true;
          status[remap[k]] = S::kDetected;
        }
        // The engine verified the target on the faulty machine already;
        // this is a belt-and-braces check against simulator disagreement.
        SATPG_CHECK_MSG(target_confirmed,
                        "engine-verified test rejected by parallel fsim");
        res.tests.push_back(std::move(attempt.sequence));
        break;
      }
    }
    res.fe_trace.push_back({engine.total_evals(), current_fe()});
  }

  // ---- accounting ----
  std::size_t w_det = 0, w_red = 0, w_abort = 0, w_total = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const std::size_t w = static_cast<std::size_t>(collapsed[i].class_size);
    w_total += w;
    S s = status[i];
    if (opts.count_potential_detections && potential[i] &&
        (s == S::kUndetected || s == S::kAborted))
      s = S::kDetected;
    switch (s) {
      case S::kDetected:
        w_det += w;
        break;
      case S::kRedundant:
        w_red += w;
        break;
      default:
        w_abort += w;
    }
  }
  res.total_faults = w_total;
  res.detected = w_det;
  res.redundant = w_red;
  res.aborted = w_abort;
  res.fault_coverage = 100.0 * static_cast<double>(w_det) /
                       static_cast<double>(std::max<std::size_t>(1, w_total));
  res.fault_efficiency =
      100.0 * static_cast<double>(w_det + w_red) /
      static_cast<double>(std::max<std::size_t>(1, w_total));
  res.evals = engine.total_evals();
  res.backtracks = engine.total_backtracks();
  res.verify_failures = engine.verify_rejects();
  res.effort_invalid_frac = res.attribution.invalid_frac(res.evals);

  // Final replay for the state-traversal census.
  if (!res.tests.empty()) {
    TraceSpan span("atpg.replay");
    auto fr = run_fault_simulation(nl, {}, res.tests, opts.fsim);
    res.states_traversed = std::move(fr.good_states);
  }
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

}  // namespace satpg
