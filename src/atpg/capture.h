// Deterministic per-fault search capture and replay.
//
// A DecisionRing records the last-K PODEM decision events (objective
// picked, decision assigned, backtrack flip, learning-cache hit) of one
// fault attempt together with the ABSOLUTE event count, so the kept window
// always covers the absolute indices [total - kept, total). When a search
// looks pathological — the watchdog trips, the wall-clock deadline fires
// mid-attempt, or the user asked for a specific fault — the driver dumps
// the ring plus everything needed to re-run the attempt as a
// `satpg.search_capture.v1` JSON file.
//
// replay_capture() rebuilds the exact same attempt: a fresh AtpgEngine
// with the captured EngineOptions and soft eval cap, a fresh ring of the
// same capacity. When the original attempt was cut short by the
// nondeterministic wall-clock abort (`wall_aborted`), the capture also
// records `abort_check` — the decision-loop check index at which the
// abort was first observed, a pure function of the search path — and the
// replay engine forces the abort at that exact check, so even a
// wall-clock cut replays bit-for-bit. Attempts that ended
// deterministically (detected, redundant, budget-exhausted) replay with
// no forcing and must reproduce the same stream on their own. For kHitec/kForward, generate() is a pure function of
// (netlist, fault, options), so the streams must match exactly; kLearning
// consults caches warmed by other faults, which a single-fault replay
// cannot reconstruct — replay still runs but a divergence there is
// expected, and tooling warns (DESIGN.md §7).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "atpg/engine.h"
#include "netlist/netlist.h"

namespace satpg {

enum class DecisionEventKind : std::uint8_t {
  kObjective = 0,  ///< objective chosen by pick_objective()
  kDecision = 1,   ///< decision assigned (initial pick after backtrace)
  kBacktrack = 2,  ///< backtrack flip applied (node re-assigned !value)
  kLearnHit = 3,   ///< learning-cache hit consumed (kLearning only)
};

const char* decision_event_code(DecisionEventKind k);  // "O"/"D"/"B"/"L"

struct DecisionEvent {
  DecisionEventKind kind = DecisionEventKind::kObjective;
  std::uint8_t value = 0;   ///< V3 as 0/1 (learn hits: ok flag)
  std::int32_t frame = 0;   ///< time frame (learn hits: recursion depth)
  std::int32_t node = -1;   ///< NodeId, -1 when not applicable
  std::uint64_t aux = 0;    ///< kind-specific (learn hits: cube key hash)

  bool operator==(const DecisionEvent&) const = default;
};

/// Fixed-capacity last-K recorder with an absolute event counter. Written
/// from exactly one search thread; never shared. Not a concurrency
/// primitive — the monitor reads SearchProgress cells, never the ring.
class DecisionRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit DecisionRing(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    buf_.resize(capacity_);
  }

  /// Clear recorded events and the absolute counter. The arm configuration
  /// (stop_after / flag) survives a reset.
  void reset() { total_ = 0; }

  /// Record `e` unless the armed stop point has been reached (recording
  /// stops exactly at `stop_after` events so the replay window covers the
  /// same absolute index range as the capture).
  void push(const DecisionEvent& e) {
    if (stop_after_ != 0 && total_ >= stop_after_) return;
    buf_[static_cast<std::size_t>(total_ % capacity_)] = e;
    ++total_;
    if (stop_after_ != 0 && total_ >= stop_after_ && stop_flag_ != nullptr)
      stop_flag_->store(true, std::memory_order_relaxed);
  }

  /// Raise `*flag` (and stop recording) once `stop_after` events have been
  /// pushed. Pass stop_after = 0 to disarm.
  void arm_stop(std::uint64_t stop_after, std::atomic<bool>* flag) {
    stop_after_ = stop_after;
    stop_flag_ = flag;
  }

  std::size_t capacity() const { return capacity_; }
  /// Absolute number of events pushed since reset().
  std::uint64_t total() const { return total_; }
  /// Kept events, oldest first: absolute indices [total - size, total).
  std::vector<DecisionEvent> window() const;

 private:
  std::size_t capacity_;
  std::vector<DecisionEvent> buf_;
  std::uint64_t total_ = 0;
  std::uint64_t stop_after_ = 0;  ///< 0 = disarmed
  std::atomic<bool>* stop_flag_ = nullptr;
};

/// Everything needed to re-run one fault attempt and compare decision
/// streams. Serialized as `satpg.search_capture.v1`.
struct SearchCapture {
  std::string schema = "satpg.search_capture.v1";
  std::string circuit;       ///< netlist name
  std::string circuit_path;  ///< source file, when the CLI knows it
  EngineOptions options;
  std::uint64_t seed = 0;          ///< run seed (context only)
  std::uint64_t soft_eval_cap = 0; ///< watchdog cap in force, 0 = none
  std::string config_digest;       ///< fnv1a64 over the replay inputs
  std::string fault;               ///< fault_name(nl, f)
  std::size_t fault_index = 0;     ///< index into collapse_faults(nl)
  std::string reason;              ///< "requested" | "watchdog" | "deadline"
  std::string status;              ///< "detected" | "redundant" | "aborted"
  bool wall_aborted = false;       ///< cut by the wall-clock abort flag
  std::uint64_t abort_check = 0;   ///< 1-based check index of the cut, 0=none
  std::uint64_t evals = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t implications = 0;
  std::size_t ring_capacity = DecisionRing::kDefaultCapacity;
  std::uint64_t ring_total = 0;    ///< absolute events in the capture run
  std::vector<DecisionEvent> events;  ///< the kept window, oldest first
};

/// Digest of the fields replay depends on; recomputed by replay_capture()
/// as a cheap guard against hand-edited captures.
std::string capture_config_digest(const SearchCapture& cap);

/// Build a capture from a finished attempt's ring + metadata. `wall_aborted`
/// is true when the attempt was cut by the wall-clock abort flag (replay
/// then forces the abort at the recorded `abort_check` to reproduce it).
SearchCapture make_capture(const Netlist& nl, const Fault& fault,
                           std::size_t fault_index,
                           const EngineOptions& options,
                           std::uint64_t soft_eval_cap,
                           const std::string& reason, bool wall_aborted,
                           const FaultAttempt& attempt,
                           const DecisionRing& ring);

bool write_capture_json(const std::string& path, const SearchCapture& cap);

/// Parse a capture file. Returns false with a one-line *error on syntax or
/// schema problems.
bool parse_capture_json(const std::string& path, SearchCapture* out,
                        std::string* error);

struct ReplayResult {
  bool ok = false;           ///< streams matched over the whole window
  std::string message;       ///< human-readable verdict / first divergence
  std::uint64_t replayed_events = 0;  ///< absolute event count on replay
  std::int64_t mismatch_index = -1;   ///< absolute index, -1 when ok
  std::string status;        ///< replayed attempt status
  std::vector<DecisionEvent> events;  ///< replayed window (for --dump)
};

/// Re-run the captured attempt on `nl` and compare decision streams.
ReplayResult replay_capture(const Netlist& nl, const SearchCapture& cap);

}  // namespace satpg
