// Static test-set compaction.
//
// ATPG emits one sequence per targeted fault plus random warm-up; many are
// subsumed by later sequences. Reverse-order compaction replays the test
// set through the parallel fault simulator, keeping a sequence only if it
// detects a fault nothing kept so far detects — typically shrinking test
// sets severalfold without losing coverage (verified by the caller
// re-grading, and by tests here).
#pragma once

#include <vector>

#include "fsim/fsim.h"
#include "netlist/netlist.h"

namespace satpg {

struct CompactionResult {
  std::vector<TestSequence> tests;
  std::size_t before = 0;
  std::size_t after = 0;
  std::size_t detected_before = 0;  ///< collapsed faults detected
  std::size_t detected_after = 0;   ///< must equal detected_before
};

/// Reverse-order compaction against the collapsed fault list of `nl`.
CompactionResult compact_tests(const Netlist& nl,
                               const std::vector<TestSequence>& tests);

}  // namespace satpg
