#include "atpg/scoap.h"

#include <algorithm>
#include <limits>

namespace satpg {

Scoap compute_scoap(const Netlist& nl, int iterations, double seq_penalty) {
  const double kBig = 1e9;
  Scoap s;
  s.cc0.assign(nl.num_nodes(), kBig);
  s.cc1.assign(nl.num_nodes(), kBig);
  // Optimistic flip-flop seed: without it, feedback loops through gates
  // that need every operand finite (XOR) would stay pinned at kBig and
  // the fixpoint could never start.
  for (NodeId ff : nl.dffs()) {
    s.cc0[static_cast<std::size_t>(ff)] = seq_penalty;
    s.cc1[static_cast<std::size_t>(ff)] = seq_penalty;
  }

  for (int round = 0; round < iterations; ++round) {
    for (NodeId id : nl.topo_order()) {
      const auto& n = nl.node(id);
      auto c0 = [&](std::size_t k) {
        return s.cc0[static_cast<std::size_t>(n.fanins[k])];
      };
      auto c1 = [&](std::size_t k) {
        return s.cc1[static_cast<std::size_t>(n.fanins[k])];
      };
      double v0 = kBig, v1 = kBig;
      switch (n.type) {
        case GateType::kInput:
          v0 = v1 = 1.0;
          break;
        case GateType::kConst0:
          v0 = 0.0;
          v1 = kBig;
          break;
        case GateType::kConst1:
          v0 = kBig;
          v1 = 0.0;
          break;
        case GateType::kDff:
          // Keep the optimistic seed until the D-cone produces something
          // better (monotone from below; purely heuristic guidance).
          v0 = std::min(s.cc0[static_cast<std::size_t>(id)],
                        c0(0) + seq_penalty);
          v1 = std::min(s.cc1[static_cast<std::size_t>(id)],
                        c1(0) + seq_penalty);
          break;
        case GateType::kOutput:
        case GateType::kBuf:
          v0 = c0(0) + 1.0;
          v1 = c1(0) + 1.0;
          break;
        case GateType::kNot:
          v0 = c1(0) + 1.0;
          v1 = c0(0) + 1.0;
          break;
        case GateType::kAnd:
        case GateType::kNand: {
          double all1 = 1.0, min0 = kBig;
          for (std::size_t k = 0; k < n.fanins.size(); ++k) {
            all1 += c1(k);
            min0 = std::min(min0, c0(k));
          }
          all1 = std::min(all1, kBig);
          const double out1 = all1, out0 = min0 + 1.0;
          if (n.type == GateType::kAnd) {
            v1 = out1;
            v0 = out0;
          } else {
            v0 = out1;
            v1 = out0;
          }
          break;
        }
        case GateType::kOr:
        case GateType::kNor: {
          double all0 = 1.0, min1 = kBig;
          for (std::size_t k = 0; k < n.fanins.size(); ++k) {
            all0 += c0(k);
            min1 = std::min(min1, c1(k));
          }
          all0 = std::min(all0, kBig);
          const double out0 = all0, out1 = min1 + 1.0;
          if (n.type == GateType::kOr) {
            v0 = out0;
            v1 = out1;
          } else {
            v1 = out0;
            v0 = out1;
          }
          break;
        }
        case GateType::kXor:
        case GateType::kXnor: {
          // Two-input approximation folded over the fanins.
          double e0 = c0(0), e1 = c1(0);
          for (std::size_t k = 1; k < n.fanins.size(); ++k) {
            const double a0 = e0, a1 = e1, b0 = c0(k), b1 = c1(k);
            e0 = std::min(a0 + b0, a1 + b1) + 1.0;
            e1 = std::min(a0 + b1, a1 + b0) + 1.0;
          }
          if (n.type == GateType::kXor) {
            v0 = e0;
            v1 = e1;
          } else {
            v0 = e1;
            v1 = e0;
          }
          break;
        }
      }
      s.cc0[static_cast<std::size_t>(id)] = std::min(v0, kBig);
      s.cc1[static_cast<std::size_t>(id)] = std::min(v1, kBig);
    }
  }
  return s;
}

}  // namespace satpg
