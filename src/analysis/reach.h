// Exact reachable-state analysis and the paper's density-of-encoding
// metric (SIS `extract_seq_dc` substitute), via the BDD package.
//
// Valid states are defined as in the paper (§5): states reachable from the
// reset state. The study's circuits power up unknown and are initialized
// through an explicit reset input, so the reset *set* of a circuit is
// computed first: starting from the universal state set, the image under
// rst=1 is iterated to a fixpoint (a decreasing chain — for the original
// circuits it collapses to the single reset code after one step; for
// retimed circuits it is the set of configurations the reset sequence can
// leave the moved flip-flops in). Valid states are then the least fixpoint
// of the unconstrained image from that reset set.
//
// Variable order: present-state bit i at 2i, next-state bit i at 2i+1
// (interleaved, keeps the transition relation small), primary inputs after.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/bitvec.h"
#include "netlist/netlist.h"
#include "sim/statekey.h"
#include "sim/value.h"

namespace satpg {

struct ReachOptions {
  /// Name of the reset input; when absent from the netlist (or empty) the
  /// initial set comes from the DFF init values instead (X bits free).
  std::string reset_input = "rst";
  /// Explicit state enumeration is produced when the valid-state count is
  /// at most this.
  std::size_t enumerate_limit = 1u << 16;
  /// BDD manager node cap.
  std::size_t bdd_node_limit = 16u << 20;
};

struct ReachResult {
  int num_dffs = 0;
  double num_valid = 0.0;      ///< |reachable states| (exact, as double)
  double total_states = 0.0;   ///< 2^num_dffs
  double density = 0.0;        ///< num_valid / total_states
  int fixpoint_iterations = 0;
  /// Explicit valid states (bit i = nl.dffs()[i]) when small enough.
  std::vector<BitVec> states;
  bool enumerated = false;
};

/// Exact reachability. Throws BddOverflow if the node cap is exceeded.
ReachResult compute_reachable(const Netlist& nl, const ReachOptions& opts = {});

/// Density of encoding of a circuit (convenience wrapper).
double density_of_encoding(const Netlist& nl);

// ---- state-validity oracle --------------------------------------------------

/// Verdict on whether a present-state cube intersects the reachable set.
/// Bucket order (and the index used by atpg::EffortAttribution arrays):
/// kValid = 0, kInvalid = 1, kUnknown = 2.
enum class StateValidity { kValid = 0, kInvalid = 1, kUnknown = 2 };

const char* state_validity_name(StateValidity v);

/// How a StateValidityOracle answers queries, for reports.
struct ValidityOracleInfo {
  enum class Mode {
    kDisabled,   ///< default-constructed: every query returns kUnknown
    kExact,      ///< explicit enumerated reachable set; no kUnknown answers
    kSuperset,   ///< 3-valued per-FF superset; kInvalid is proven, the rest
                 ///< is kUnknown (except the trivial all-X cube)
  };
  Mode mode = Mode::kDisabled;
  /// Exact |reachable| and density when the BDD analysis completed (even
  /// when classification had to fall back to kSuperset because the set was
  /// too large to enumerate); -1 when unknown.
  double num_valid = -1.0;
  double density = -1.0;
};

const char* oracle_mode_name(ValidityOracleInfo::Mode m);

/// 3-valued per-FF abstraction of the reachable set: digit i (order
/// nl.dffs()) is kZero/kOne when flip-flop i provably holds that constant
/// in EVERY reachable state, kX otherwise. Computed by a SeqSimulator
/// fixpoint: the reset-phase image chain (reset input asserted, other
/// inputs X) followed by a merge-to-X reachability fixpoint under free
/// inputs. Always a sound superset — a cube demanding the opposite of a
/// pinned digit cannot intersect the reachable set.
std::vector<V3> reachable_superset_v3(const Netlist& nl,
                                      const std::string& reset_input = "rst");

/// Classifies present-state cubes against the reachable set. Immutable
/// after build(): classify() is pure and safe to call concurrently from
/// any number of threads, so answers can never depend on thread count.
///
/// build() prefers the exact mode (reachable set enumerated by
/// compute_reachable and <= 64 flip-flops); when enumeration is
/// unavailable or the BDD overflows its node cap it degrades to the
/// 3-valued superset mode rather than failing.
class StateValidityOracle {
 public:
  /// Disabled oracle: classify() always returns kUnknown.
  StateValidityOracle() = default;

  static StateValidityOracle build(const Netlist& nl,
                                   const ReachOptions& opts = {});

  const ValidityOracleInfo& info() const { return info_; }
  bool enabled() const {
    return info_.mode != ValidityOracleInfo::Mode::kDisabled;
  }

  /// Does the cube (digit i = nl.dffs()[i], X = unconstrained) intersect
  /// the reachable set? Exact mode answers kValid/kInvalid only; superset
  /// mode proves kInvalid where it can and returns kUnknown otherwise.
  /// The empty (all-X) cube is always kValid: the reachable set is
  /// nonempty.
  StateValidity classify(const StateKey& cube) const;

  /// Logical footprint of the oracle's answer structures (element counts x
  /// element sizes, fixed once build() returns) — the deterministic byte
  /// charge the driver records under base/memstats subsystem bdd_oracle.
  std::uint64_t footprint_bytes() const {
    return states_.size() * sizeof(std::uint64_t) +
           pinned_.size() * sizeof(V3);
  }

 private:
  ValidityOracleInfo info_;
  std::size_t num_ffs_ = 0;
  /// Exact mode: sorted fully-specified reachable states, bit i = digit i.
  std::vector<std::uint64_t> states_;
  /// Superset mode: per-FF pinned constants (kX = unconstrained).
  std::vector<V3> pinned_;
};

}  // namespace satpg
