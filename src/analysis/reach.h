// Exact reachable-state analysis and the paper's density-of-encoding
// metric (SIS `extract_seq_dc` substitute), via the BDD package.
//
// Valid states are defined as in the paper (§5): states reachable from the
// reset state. The study's circuits power up unknown and are initialized
// through an explicit reset input, so the reset *set* of a circuit is
// computed first: starting from the universal state set, the image under
// rst=1 is iterated to a fixpoint (a decreasing chain — for the original
// circuits it collapses to the single reset code after one step; for
// retimed circuits it is the set of configurations the reset sequence can
// leave the moved flip-flops in). Valid states are then the least fixpoint
// of the unconstrained image from that reset set.
//
// Variable order: present-state bit i at 2i, next-state bit i at 2i+1
// (interleaved, keeps the transition relation small), primary inputs after.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/bitvec.h"
#include "netlist/netlist.h"

namespace satpg {

struct ReachOptions {
  /// Name of the reset input; when absent from the netlist (or empty) the
  /// initial set comes from the DFF init values instead (X bits free).
  std::string reset_input = "rst";
  /// Explicit state enumeration is produced when the valid-state count is
  /// at most this.
  std::size_t enumerate_limit = 1u << 16;
  /// BDD manager node cap.
  std::size_t bdd_node_limit = 16u << 20;
};

struct ReachResult {
  int num_dffs = 0;
  double num_valid = 0.0;      ///< |reachable states| (exact, as double)
  double total_states = 0.0;   ///< 2^num_dffs
  double density = 0.0;        ///< num_valid / total_states
  int fixpoint_iterations = 0;
  /// Explicit valid states (bit i = nl.dffs()[i]) when small enough.
  std::vector<BitVec> states;
  bool enumerated = false;
};

/// Exact reachability. Throws BddOverflow if the node cap is exceeded.
ReachResult compute_reachable(const Netlist& nl, const ReachOptions& opts = {});

/// Density of encoding of a circuit (convenience wrapper).
double density_of_encoding(const Netlist& nl);

}  // namespace satpg
