#include "analysis/bddcircuit.h"

namespace satpg {

std::vector<BddRef> build_node_functions(const Netlist& nl, BddMgr& mgr,
                                         const BddVarMap& vm,
                                         const std::optional<Fault>& fault) {
  std::vector<BddRef> fn(nl.num_nodes(), mgr.zero());
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    fn[static_cast<std::size_t>(nl.inputs()[i])] =
        mgr.var(vm.in(static_cast<unsigned>(i)));
  for (std::size_t i = 0; i < nl.dffs().size(); ++i)
    fn[static_cast<std::size_t>(nl.dffs()[i])] =
        mgr.var(vm.ps(static_cast<unsigned>(i)));

  // Stem faults on PIs / FFs pin the source itself.
  if (fault && fault->pin < 0) {
    const auto& n = nl.node(fault->node);
    if (n.type == GateType::kInput || n.type == GateType::kDff)
      fn[static_cast<std::size_t>(fault->node)] =
          fault->stuck1 ? mgr.one() : mgr.zero();
  }

  for (NodeId id : nl.topo_order()) {
    const auto& n = nl.node(id);
    if (!is_combinational(n.type) && n.type != GateType::kOutput) continue;
    const bool pin_fault_here =
        fault && fault->node == id && fault->pin >= 0;
    auto in = [&](std::size_t k) -> BddRef {
      if (pin_fault_here && static_cast<int>(k) == fault->pin)
        return fault->stuck1 ? mgr.one() : mgr.zero();
      return fn[static_cast<std::size_t>(n.fanins[k])];
    };
    BddRef v = mgr.zero();
    switch (n.type) {
      case GateType::kConst0:
        v = mgr.zero();
        break;
      case GateType::kConst1:
        v = mgr.one();
        break;
      case GateType::kBuf:
      case GateType::kOutput:
        v = in(0);
        break;
      case GateType::kNot:
        v = mgr.bdd_not(in(0));
        break;
      case GateType::kAnd:
      case GateType::kNand:
        v = in(0);
        for (std::size_t k = 1; k < n.fanins.size(); ++k)
          v = mgr.bdd_and(v, in(k));
        if (n.type == GateType::kNand) v = mgr.bdd_not(v);
        break;
      case GateType::kOr:
      case GateType::kNor:
        v = in(0);
        for (std::size_t k = 1; k < n.fanins.size(); ++k)
          v = mgr.bdd_or(v, in(k));
        if (n.type == GateType::kNor) v = mgr.bdd_not(v);
        break;
      case GateType::kXor:
      case GateType::kXnor:
        v = in(0);
        for (std::size_t k = 1; k < n.fanins.size(); ++k)
          v = mgr.bdd_xor(v, in(k));
        if (n.type == GateType::kXnor) v = mgr.bdd_not(v);
        break;
      default:
        SATPG_CHECK(false);
    }
    if (fault && fault->pin < 0 && fault->node == id)
      v = fault->stuck1 ? mgr.one() : mgr.zero();  // comb stem fault
    fn[static_cast<std::size_t>(id)] = v;
  }
  return fn;
}

BddRef build_transition_relation(const Netlist& nl, BddMgr& mgr,
                                 const BddVarMap& vm,
                                 const std::vector<BddRef>& fn) {
  BddRef tr = mgr.one();
  for (unsigned i = 0; i < vm.num_ffs; ++i) {
    const NodeId d =
        nl.node(nl.dffs()[static_cast<std::size_t>(i)]).fanins[0];
    const BddRef bit = mgr.bdd_not(
        mgr.bdd_xor(mgr.var(vm.ns(i)), fn[static_cast<std::size_t>(d)]));
    tr = mgr.bdd_and(tr, bit);
  }
  return tr;
}

BddRef compute_reached_set(const Netlist& nl, BddMgr& mgr,
                           const BddVarMap& vm, const std::vector<BddRef>& fn,
                           const std::string& reset_input, int* iterations) {
  const BddRef tr = build_transition_relation(nl, mgr, vm, fn);

  std::vector<unsigned> ps_and_inputs;
  std::vector<unsigned> rename_map(vm.total());
  for (unsigned v = 0; v < vm.total(); ++v) rename_map[v] = v;
  for (unsigned i = 0; i < vm.num_ffs; ++i) {
    ps_and_inputs.push_back(vm.ps(i));
    rename_map[vm.ns(i)] = vm.ps(i);  // monotone: 2i+1 -> 2i
  }
  for (unsigned j = 0; j < vm.num_pis; ++j)
    ps_and_inputs.push_back(vm.in(j));

  int local_iters = 0;
  int& iters = iterations ? *iterations : local_iters;
  auto image = [&](BddRef set, BddRef rel) {
    const BddRef img_ns = mgr.and_exists(set, rel, ps_and_inputs);
    return mgr.rename(img_ns, rename_map);
  };

  // Initial set.
  BddRef init;
  const NodeId rst =
      reset_input.empty() ? kNoNode : nl.find(reset_input);
  if (rst != kNoNode && nl.node(rst).type == GateType::kInput) {
    int rst_index = -1;
    for (std::size_t j = 0; j < nl.inputs().size(); ++j)
      if (nl.inputs()[j] == rst) rst_index = static_cast<int>(j);
    SATPG_CHECK(rst_index >= 0);
    const BddRef rst_on = mgr.var(vm.in(static_cast<unsigned>(rst_index)));
    const BddRef tr_rst = mgr.bdd_and(tr, rst_on);
    BddRef s = mgr.one();
    for (;;) {
      const BddRef next = image(s, tr_rst);
      ++iters;
      if (next == s) break;
      s = next;
      SATPG_CHECK_MSG(iters < 100000, "reset fixpoint did not converge");
    }
    init = s;
  } else {
    init = mgr.one();
    for (unsigned i = 0; i < vm.num_ffs; ++i) {
      const auto ff_init =
          nl.node(nl.dffs()[static_cast<std::size_t>(i)]).init;
      if (ff_init == FfInit::kZero)
        init = mgr.bdd_and(init, mgr.nvar(vm.ps(i)));
      else if (ff_init == FfInit::kOne)
        init = mgr.bdd_and(init, mgr.var(vm.ps(i)));
    }
  }

  BddRef reached = init;
  for (;;) {
    const BddRef next = mgr.bdd_or(reached, image(reached, tr));
    ++iters;
    if (next == reached) break;
    reached = next;
    SATPG_CHECK_MSG(iters < 1000000,
                    "reachability fixpoint did not converge");
  }
  return reached;
}

}  // namespace satpg
