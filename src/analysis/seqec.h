// BDD-based sequential equivalence checking.
//
// Proves that two netlists with identical primary-input/-output interfaces
// implement the same sequential behaviour after synchronized
// initialization: the product machine of the two circuits is initialized
// with the rst=1 image fixpoint from the universal product set (the
// study's reset convention — both circuits settle under held reset), the
// reachable product set is computed, and every primary-output pair must
// agree on it.
//
// This turns the test suite's randomized synth/retiming equivalence checks
// into proofs on the circuits where the BDDs stay tractable: retiming
// preserves behaviour (Theorem 1's premise), and the synthesized netlist
// implements its FSM.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace satpg {

struct SeqecOptions {
  std::string reset_input = "rst";
  std::size_t bdd_node_limit = 32u << 20;
};

struct SeqecResult {
  bool equivalent = false;
  /// Human-readable reason when not equivalent (mismatching PO index) or
  /// when the check degraded ("interface mismatch").
  std::string note;
};

/// Exact equivalence on the synchronized reachable product space. Inputs
/// are matched by name; POs by position. Throws BddOverflow on blowup.
SeqecResult check_sequential_equivalence(const Netlist& a, const Netlist& b,
                                         const SeqecOptions& opts = {});

}  // namespace satpg
