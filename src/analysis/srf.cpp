#include "analysis/srf.h"

#include "analysis/bddcircuit.h"
#include "bdd/bdd.h"

namespace satpg {

const char* srf_class_name(SrfClass c) {
  switch (c) {
    case SrfClass::kInvalidSrf:
      return "invalid-SRF";
    case SrfClass::kUnobservableSrf:
      return "unobservable-SRF";
    case SrfClass::kDetectable:
      return "detectable";
  }
  return "?";
}

namespace {

// Product machine analyzer: good machine at variable base 0, faulty
// machine at base 2 (stride 4 each), inputs after.
struct ProductAnalyzer {
  const Netlist& nl;
  BddVarMap vm_g;
  BddVarMap vm_f;
  BddMgr mgr;
  std::vector<BddRef> good;
  std::vector<unsigned> input_vars;
  std::vector<unsigned> all_current;  // ps_g + ps_f + inputs (image quant)
  std::vector<unsigned> rename_map;   // ns -> ps, both machines
  int rst_index = -1;

  explicit ProductAnalyzer(const Netlist& netlist, const SrfOptions& opts)
      : nl(netlist),
        vm_g(),
        vm_f(),
        mgr(4 * static_cast<unsigned>(netlist.num_dffs()) +
                static_cast<unsigned>(netlist.num_inputs()),
            opts.bdd_node_limit),
        good() {
    const unsigned ffs = static_cast<unsigned>(nl.num_dffs());
    const unsigned pis = static_cast<unsigned>(nl.num_inputs());
    vm_g.num_ffs = vm_f.num_ffs = ffs;
    vm_g.num_pis = vm_f.num_pis = pis;
    vm_g.ps_base = 0;
    vm_f.ps_base = 2;
    vm_g.stride = vm_f.stride = 4;
    vm_g.in_base = vm_f.in_base = 4 * ffs;
    vm_g.num_vars = vm_f.num_vars = 4 * ffs + pis;

    good = build_node_functions(nl, mgr, vm_g);

    for (unsigned j = 0; j < pis; ++j) input_vars.push_back(vm_g.in(j));
    for (unsigned i = 0; i < ffs; ++i) {
      all_current.push_back(vm_g.ps(i));
      all_current.push_back(vm_f.ps(i));
    }
    for (unsigned v : input_vars) all_current.push_back(v);
    rename_map.resize(vm_g.total());
    for (unsigned v = 0; v < vm_g.total(); ++v) rename_map[v] = v;
    for (unsigned i = 0; i < ffs; ++i) {
      rename_map[vm_g.ns(i)] = vm_g.ps(i);  // 4i+1 -> 4i
      rename_map[vm_f.ns(i)] = vm_f.ps(i);  // 4i+3 -> 4i+2
    }
    if (!opts.reset_input.empty()) {
      const NodeId rst = nl.find(opts.reset_input);
      if (rst != kNoNode && nl.node(rst).type == GateType::kInput)
        for (std::size_t j = 0; j < nl.inputs().size(); ++j)
          if (nl.inputs()[j] == rst) rst_index = static_cast<int>(j);
    }
  }

  BddRef image(BddRef set, BddRef rel) {
    return mgr.rename(mgr.and_exists(set, rel, all_current), rename_map);
  }

  SrfClass classify(const Fault& fault) {
    const auto faulty = build_node_functions(nl, mgr, vm_f, fault);

    // Product transition relation.
    const BddRef tr_g = build_transition_relation(nl, mgr, vm_g, good);
    BddRef tr_f = mgr.one();
    for (unsigned i = 0; i < vm_f.num_ffs; ++i) {
      const NodeId d =
          nl.node(nl.dffs()[static_cast<std::size_t>(i)]).fanins[0];
      BddRef fd = faulty[static_cast<std::size_t>(d)];
      if (fault.pin == 0 &&
          fault.node == nl.dffs()[static_cast<std::size_t>(i)])
        fd = fault.stuck1 ? mgr.one() : mgr.zero();  // D-pin fault
      tr_f = mgr.bdd_and(
          tr_f, mgr.bdd_not(mgr.bdd_xor(mgr.var(vm_f.ns(i)), fd)));
    }
    const BddRef tr = mgr.bdd_and(tr_g, tr_f);

    // Synchronized initialization: rst=1 image fixpoint from the universal
    // product set; or the FF init cubes without a reset line.
    BddRef init;
    if (rst_index >= 0) {
      const BddRef rst_on =
          mgr.var(vm_g.in(static_cast<unsigned>(rst_index)));
      const BddRef tr_rst = mgr.bdd_and(tr, rst_on);
      BddRef s = mgr.one();
      for (int guard = 0;; ++guard) {
        const BddRef next = image(s, tr_rst);
        if (next == s) break;
        s = next;
        SATPG_CHECK_MSG(guard < 100000, "product reset fixpoint diverged");
      }
      init = s;
    } else {
      init = mgr.one();
      for (unsigned i = 0; i < vm_g.num_ffs; ++i) {
        const auto ff_init =
            nl.node(nl.dffs()[static_cast<std::size_t>(i)]).init;
        if (ff_init == FfInit::kUnknown) continue;
        const bool one = ff_init == FfInit::kOne;
        init = mgr.bdd_and(init, one ? mgr.var(vm_g.ps(i))
                                     : mgr.nvar(vm_g.ps(i)));
        init = mgr.bdd_and(init, one ? mgr.var(vm_f.ps(i))
                                     : mgr.nvar(vm_f.ps(i)));
      }
    }

    BddRef reached = init;
    for (int guard = 0;; ++guard) {
      const BddRef next = mgr.bdd_or(reached, image(reached, tr));
      if (next == reached) break;
      reached = next;
      SATPG_CHECK_MSG(guard < 1000000, "product fixpoint diverged");
    }

    // Excitation in the faulty machine: the faulted line would compute the
    // non-stuck value (as a function of the faulty machine's state).
    const NodeId line =
        fault.pin >= 0
            ? nl.node(fault.node).fanins[static_cast<std::size_t>(fault.pin)]
            : fault.node;
    // The line's *driver function* in the faulty machine's state space,
    // without the fault forcing (what the line would carry).
    const auto faulty_nofault = build_node_functions(nl, mgr, vm_f);
    const BddRef would = faulty_nofault[static_cast<std::size_t>(line)];
    const BddRef excite = fault.stuck1 ? mgr.bdd_not(would) : would;
    if (mgr.bdd_and(reached, excite) == mgr.zero())
      return SrfClass::kInvalidSrf;

    // Observability: a PO pair differs on some reachable product state.
    BddRef diff = mgr.zero();
    for (NodeId po : nl.outputs())
      diff = mgr.bdd_or(diff,
                        mgr.bdd_xor(good[static_cast<std::size_t>(po)],
                                    faulty[static_cast<std::size_t>(po)]));
    if (mgr.bdd_and(reached, diff) == mgr.zero())
      return SrfClass::kUnobservableSrf;
    return SrfClass::kDetectable;
  }
};

}  // namespace

SrfClass classify_srf(const Netlist& nl, const Fault& fault,
                      const SrfOptions& opts) {
  ProductAnalyzer analyzer(nl, opts);
  return analyzer.classify(fault);
}

SrfCensus classify_faults(const Netlist& nl, const std::vector<Fault>& faults,
                          const SrfOptions& opts) {
  ProductAnalyzer analyzer(nl, opts);
  SrfCensus census;
  for (const auto& f : faults) {
    switch (analyzer.classify(f)) {
      case SrfClass::kInvalidSrf:
        ++census.invalid;
        break;
      case SrfClass::kUnobservableSrf:
        ++census.unobservable;
        break;
      case SrfClass::kDetectable:
        ++census.detectable;
        break;
    }
  }
  return census;
}

}  // namespace satpg
