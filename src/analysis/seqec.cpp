#include "analysis/seqec.h"

#include "analysis/bddcircuit.h"
#include "bdd/bdd.h"

namespace satpg {

SeqecResult check_sequential_equivalence(const Netlist& a, const Netlist& b,
                                         const SeqecOptions& opts) {
  SeqecResult res;
  if (a.num_inputs() != b.num_inputs() ||
      a.num_outputs() != b.num_outputs()) {
    res.note = "interface mismatch";
    return res;
  }
  // Inputs must correspond by name (order may differ).
  std::vector<int> b_input_of_a(a.num_inputs(), -1);
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    const std::string& name = a.node(a.inputs()[i]).name;
    for (std::size_t j = 0; j < b.inputs().size(); ++j)
      if (b.node(b.inputs()[j]).name == name)
        b_input_of_a[i] = static_cast<int>(j);
    if (b_input_of_a[i] < 0) {
      res.note = "input name mismatch: " + name;
      return res;
    }
  }

  const unsigned na = static_cast<unsigned>(a.num_dffs());
  const unsigned nb = static_cast<unsigned>(b.num_dffs());
  const unsigned pis = static_cast<unsigned>(a.num_inputs());
  const unsigned total = 2 * na + 2 * nb + pis;

  BddVarMap vma, vmb;
  vma.num_ffs = na;
  vma.num_pis = pis;
  vma.ps_base = 0;
  vma.stride = 2;
  vma.in_base = 2 * na + 2 * nb;
  vma.num_vars = total;
  vmb = vma;
  vmb.num_ffs = nb;
  vmb.ps_base = 2 * na;

  BddMgr mgr(total, opts.bdd_node_limit);
  const auto fa = build_node_functions(a, mgr, vma);
  // b's inputs must read the same variables as a's (by name).
  // build_node_functions assigns b's input j to vmb.in(j) == vma.in(j), so
  // remap afterwards is wrong — instead we permute b's functions by
  // building with a shim: easiest is to build b's functions manually with
  // the permuted input variables. Reuse the builder by constructing a
  // varmap whose in() follows the permutation is not possible (in() is
  // affine), so substitute: since inputs are terminal variables, we build
  // b with its natural in(j) vars and require the permutation to be the
  // identity after matching — enforce that by checking names positionally.
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    if (b_input_of_a[i] != static_cast<int>(i)) {
      res.note = "input order differs; align inputs before checking";
      return res;
    }
  }
  const auto fb = build_node_functions(b, mgr, vmb);

  const BddRef tra = build_transition_relation(a, mgr, vma, fa);
  const BddRef trb = build_transition_relation(b, mgr, vmb, fb);
  const BddRef tr = mgr.bdd_and(tra, trb);

  std::vector<unsigned> current;
  std::vector<unsigned> rename_map(total);
  for (unsigned v = 0; v < total; ++v) rename_map[v] = v;
  for (unsigned i = 0; i < na; ++i) {
    current.push_back(vma.ps(i));
    rename_map[vma.ns(i)] = vma.ps(i);
  }
  for (unsigned i = 0; i < nb; ++i) {
    current.push_back(vmb.ps(i));
    rename_map[vmb.ns(i)] = vmb.ps(i);
  }
  for (unsigned j = 0; j < pis; ++j) current.push_back(vma.in(j));

  auto image = [&](BddRef set, BddRef rel) {
    return mgr.rename(mgr.and_exists(set, rel, current), rename_map);
  };

  // Synchronized initialization via the reset line.
  BddRef init = mgr.one();
  const NodeId rst_a =
      opts.reset_input.empty() ? kNoNode : a.find(opts.reset_input);
  if (rst_a != kNoNode && a.node(rst_a).type == GateType::kInput) {
    int idx = -1;
    for (std::size_t j = 0; j < a.inputs().size(); ++j)
      if (a.inputs()[j] == rst_a) idx = static_cast<int>(j);
    SATPG_CHECK(idx >= 0);
    const BddRef rst_on = mgr.var(vma.in(static_cast<unsigned>(idx)));
    const BddRef tr_rst = mgr.bdd_and(tr, rst_on);
    BddRef s = mgr.one();
    for (int guard = 0;; ++guard) {
      const BddRef next = image(s, tr_rst);
      if (next == s) break;
      s = next;
      SATPG_CHECK_MSG(guard < 100000, "seqec reset fixpoint diverged");
    }
    init = s;
  } else {
    // Init-value cubes from both machines.
    auto add_cube = [&](const Netlist& nl, const BddVarMap& vm) {
      for (unsigned i = 0; i < vm.num_ffs; ++i) {
        const auto ff_init =
            nl.node(nl.dffs()[static_cast<std::size_t>(i)]).init;
        if (ff_init == FfInit::kZero)
          init = mgr.bdd_and(init, mgr.nvar(vm.ps(i)));
        else if (ff_init == FfInit::kOne)
          init = mgr.bdd_and(init, mgr.var(vm.ps(i)));
      }
    };
    add_cube(a, vma);
    add_cube(b, vmb);
  }

  BddRef reached = init;
  for (int guard = 0;; ++guard) {
    const BddRef next = mgr.bdd_or(reached, image(reached, tr));
    if (next == reached) break;
    reached = next;
    SATPG_CHECK_MSG(guard < 1000000, "seqec fixpoint diverged");
  }

  for (std::size_t o = 0; o < a.outputs().size(); ++o) {
    const BddRef diff = mgr.bdd_xor(
        fa[static_cast<std::size_t>(a.outputs()[o])],
        fb[static_cast<std::size_t>(b.outputs()[o])]);
    if (mgr.bdd_and(reached, diff) != mgr.zero()) {
      res.note = "primary output " + std::to_string(o) + " (" +
                 a.node(a.outputs()[o]).name + ") differs on a reachable "
                 "state";
      return res;
    }
  }
  res.equivalent = true;
  return res;
}

}  // namespace satpg
