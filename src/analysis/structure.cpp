#include "analysis/structure.h"

#include <algorithm>
#include <set>
#include <vector>

#include "base/bitvec.h"
#include "retime/retime.h"

namespace satpg {

namespace {

// Compact view of the gate skeleton for the searches: per-vertex out-edge
// lists with (target, weight, ff-set-key) and host split into source/sink.
struct Skeleton {
  int nv = 0;  // comb vertices + 1 (vertex 0 = host)
  struct Arc {
    int to;
    int weight;
    std::vector<int> ff_ids;  // dense DFF indices on this connection
  };
  std::vector<std::vector<Arc>> out;
  int num_ffs = 0;
};

Skeleton build_skeleton(const Netlist& nl) {
  const RetimeGraph g = build_retime_graph(nl);
  Skeleton s;
  s.nv = g.num_vertices();
  s.out.assign(static_cast<std::size_t>(s.nv), {});
  // Dense DFF ids.
  std::vector<int> ff_index(nl.num_nodes(), -1);
  for (std::size_t i = 0; i < nl.dffs().size(); ++i)
    ff_index[static_cast<std::size_t>(nl.dffs()[i])] = static_cast<int>(i);
  s.num_ffs = static_cast<int>(nl.dffs().size());
  for (const auto& e : g.edges) {
    Skeleton::Arc a;
    a.to = e.to;
    a.weight = e.weight;
    for (NodeId ff : e.ffs)
      a.ff_ids.push_back(ff_index[static_cast<std::size_t>(ff)]);
    s.out[static_cast<std::size_t>(e.from)].push_back(std::move(a));
  }
  return s;
}

struct DepthSearch {
  const Skeleton& s;
  std::vector<bool> visited;  // comb vertices on the current path
  int best = -1;
  std::uint64_t steps = 0;
  std::uint64_t cap;
  bool saturated = false;
  std::vector<int> mark;     // scratch for the bound BFS (vertices)
  std::vector<int> ff_mark;  // scratch (FF ids)
  int mark_gen = 0;

  // Upper bound on additional FFs from v through unvisited vertices
  // (distinct FF identities — shared chains count once); -1 when the host
  // (sink) is unreachable.
  int reach_bound(int v) {
    ++mark_gen;
    bool sink_ok = false;
    int potential = 0;
    std::vector<int> stack{v};
    mark[static_cast<std::size_t>(v)] = mark_gen;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (const auto& a : s.out[static_cast<std::size_t>(u)]) {
        for (int id : a.ff_ids) {
          if (ff_mark[static_cast<std::size_t>(id)] != mark_gen) {
            ff_mark[static_cast<std::size_t>(id)] = mark_gen;
            ++potential;
          }
        }
        if (a.to == 0) {
          sink_ok = true;
          continue;
        }
        if (visited[static_cast<std::size_t>(a.to)]) continue;
        if (mark[static_cast<std::size_t>(a.to)] == mark_gen) continue;
        mark[static_cast<std::size_t>(a.to)] = mark_gen;
        stack.push_back(a.to);
      }
    }
    if (!sink_ok) return -1;
    return potential;
  }

  void dfs(int v, int ffs_so_far) {
    if (saturated) return;
    if (++steps > cap) {
      saturated = true;
      return;
    }
    const int bound = reach_bound(v);
    if (bound < 0) return;
    if (ffs_so_far + bound <= best) return;
    for (const auto& a : s.out[static_cast<std::size_t>(v)]) {
      if (a.to == 0) {  // reached the sink side of the host
        best = std::max(best, ffs_so_far + a.weight);
        continue;
      }
      if (visited[static_cast<std::size_t>(a.to)]) continue;
      visited[static_cast<std::size_t>(a.to)] = true;
      dfs(a.to, ffs_so_far + a.weight);
      visited[static_cast<std::size_t>(a.to)] = false;
      if (saturated) return;
    }
  }
};

}  // namespace

SeqDepthResult max_sequential_depth(const Netlist& nl,
                                    std::uint64_t step_cap) {
  const Skeleton s = build_skeleton(nl);
  DepthSearch search{s,
                     std::vector<bool>(static_cast<std::size_t>(s.nv), false),
                     -1,
                     0,
                     step_cap,
                     false,
                     std::vector<int>(static_cast<std::size_t>(s.nv), 0),
                     std::vector<int>(static_cast<std::size_t>(s.num_ffs), 0),
                     0};
  search.dfs(0, 0);  // host as source; arcs back to host close at the sink
  SeqDepthResult r;
  r.max_depth = std::max(0, search.best);
  r.saturated = search.saturated;
  return r;
}

namespace {

// Candidate cycles are enumerated on the flip-flop existence graph
// (FF u -> FF v when v's D input is reached from u's Q through
// combinational logic only, or v follows u directly in a register chain).
// That enumeration is cheap but ignores the definition's node-distinctness
// inside the combinational segments, so each *new* FF subset is verified
// once by greedily routing all segments through pairwise-disjoint gates.
struct FfLevel {
  int num_ffs = 0;
  std::vector<std::vector<int>> adj;          // FF id -> successor FF ids
  std::vector<std::vector<NodeId>> comb_out;  // FF id -> comb gates fed by Q
  std::vector<int> chain_next;                // direct FF->FF wire, or -1
  std::vector<NodeId> driver_gate;            // comb gate driving D, or kNoNode
  std::vector<NodeId> ff_node;                // dense id -> netlist node
};

FfLevel build_ff_level(const Netlist& nl) {
  FfLevel f;
  f.num_ffs = static_cast<int>(nl.num_dffs());
  f.adj.assign(static_cast<std::size_t>(f.num_ffs), {});
  f.comb_out.assign(static_cast<std::size_t>(f.num_ffs), {});
  f.chain_next.assign(static_cast<std::size_t>(f.num_ffs), -1);
  f.driver_gate.assign(static_cast<std::size_t>(f.num_ffs), kNoNode);
  std::vector<int> ff_index(nl.num_nodes(), -1);
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    ff_index[static_cast<std::size_t>(nl.dffs()[i])] = static_cast<int>(i);
    f.ff_node.push_back(nl.dffs()[i]);
  }
  const auto& fanouts = nl.fanouts();
  for (int i = 0; i < f.num_ffs; ++i) {
    const NodeId q = f.ff_node[static_cast<std::size_t>(i)];
    const NodeId d = nl.node(q).fanins[0];
    if (nl.node(d).type == GateType::kDff) {
      // q follows d in a chain: edge d -> q.
      f.chain_next[static_cast<std::size_t>(
          ff_index[static_cast<std::size_t>(d)])] = i;
    } else if (is_combinational(nl.node(d).type)) {
      f.driver_gate[static_cast<std::size_t>(i)] = d;
    }
  }
  // Comb forward reachability from each Q to every FF D-driver gate.
  for (int i = 0; i < f.num_ffs; ++i) {
    const NodeId q = f.ff_node[static_cast<std::size_t>(i)];
    std::vector<bool> seen(nl.num_nodes(), false);
    std::vector<NodeId> stack{q};
    std::set<int> hits;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId sx : fanouts[static_cast<std::size_t>(u)]) {
        if (seen[static_cast<std::size_t>(sx)]) continue;
        seen[static_cast<std::size_t>(sx)] = true;
        const auto& n = nl.node(sx);
        if (n.type == GateType::kDff) continue;  // stop at registers
        if (n.type == GateType::kOutput) continue;
        stack.push_back(sx);
      }
    }
    for (int j = 0; j < f.num_ffs; ++j) {
      const NodeId drv = f.driver_gate[static_cast<std::size_t>(j)];
      if (drv != kNoNode && seen[static_cast<std::size_t>(drv)])
        hits.insert(j);
    }
    if (f.chain_next[static_cast<std::size_t>(i)] >= 0)
      hits.insert(f.chain_next[static_cast<std::size_t>(i)]);
    for (int h : hits) f.adj[static_cast<std::size_t>(i)].push_back(h);
  }
  return f;
}

// Greedy gate-disjoint verification: route every consecutive segment of the
// cycle through combinational gates no earlier segment used. BFS shortest
// routes, two rotation attempts — conservative (may reject a routable cycle
// in pathological sharing, never accepts an unroutable one).
bool verify_cycle_routing(const Netlist& nl, const FfLevel& f,
                          const std::vector<int>& cycle) {
  const auto& fanouts = nl.fanouts();
  const std::size_t n = cycle.size();
  for (std::size_t rot = 0; rot < std::min<std::size_t>(n, 2); ++rot) {
    std::vector<bool> used(nl.num_nodes(), false);
    bool ok = true;
    for (std::size_t k = 0; k < n && ok; ++k) {
      const int a = cycle[(k + rot) % n];
      const int b = cycle[(k + rot + 1) % n];
      if (f.chain_next[static_cast<std::size_t>(a)] == b) continue;  // wire
      const NodeId target = f.driver_gate[static_cast<std::size_t>(b)];
      if (target == kNoNode) {
        ok = false;
        break;
      }
      // BFS from a's Q over unused comb gates to `target`; mark the found
      // path's gates used.
      const NodeId start = f.ff_node[static_cast<std::size_t>(a)];
      std::vector<NodeId> parent(nl.num_nodes(), kNoNode);
      std::vector<bool> seen(nl.num_nodes(), false);
      std::vector<NodeId> queue{start};
      seen[static_cast<std::size_t>(start)] = true;
      NodeId found = kNoNode;
      for (std::size_t head = 0; head < queue.size() && found == kNoNode;
           ++head) {
        const NodeId u = queue[head];
        for (NodeId sx : fanouts[static_cast<std::size_t>(u)]) {
          if (seen[static_cast<std::size_t>(sx)]) continue;
          const auto& node = nl.node(sx);
          if (!is_combinational(node.type)) continue;
          if (used[static_cast<std::size_t>(sx)]) continue;
          seen[static_cast<std::size_t>(sx)] = true;
          parent[static_cast<std::size_t>(sx)] = u;
          if (sx == target) {
            found = sx;
            break;
          }
          queue.push_back(sx);
        }
      }
      if (found == kNoNode) {
        ok = false;
        break;
      }
      for (NodeId p = found; p != start && p != kNoNode;
           p = parent[static_cast<std::size_t>(p)])
        used[static_cast<std::size_t>(p)] = true;
    }
    if (ok) return true;
  }
  return false;
}

struct FfCycleSearch {
  const Netlist& nl;
  const FfLevel& f;
  int root = 0;
  std::vector<bool> on_path;
  std::vector<int> path;
  std::set<BitVec> verified;
  std::set<BitVec> rejected;
  int max_len = 0;
  std::uint64_t steps = 0;
  std::uint64_t step_cap;
  std::size_t subset_cap;
  bool saturated = false;

  void close_cycle() {
    BitVec key(static_cast<std::size_t>(f.num_ffs));
    for (int p : path) key.set(static_cast<std::size_t>(p), true);
    if (verified.count(key) || rejected.count(key)) return;
    if (verify_cycle_routing(nl, f, path)) {
      verified.insert(key);
      max_len = std::max(max_len, static_cast<int>(path.size()));
    } else {
      rejected.insert(key);
    }
  }

  void dfs(int v) {
    if (saturated) return;
    if (++steps > step_cap ||
        verified.size() + rejected.size() > subset_cap) {
      saturated = true;
      return;
    }
    on_path[static_cast<std::size_t>(v)] = true;
    path.push_back(v);
    for (int s : f.adj[static_cast<std::size_t>(v)]) {
      if (s < root) continue;
      if (s == root) {
        close_cycle();
      } else if (!on_path[static_cast<std::size_t>(s)]) {
        dfs(s);
        if (saturated) break;
      }
    }
    path.pop_back();
    on_path[static_cast<std::size_t>(v)] = false;
  }
};

}  // namespace

CycleCensus count_cycles(const Netlist& nl, std::uint64_t step_cap,
                         std::size_t subset_cap) {
  const FfLevel f = build_ff_level(nl);
  CycleCensus census;
  std::set<BitVec> all;
  std::uint64_t steps_used = 0;
  for (int root = 0; root < f.num_ffs; ++root) {
    FfCycleSearch search{nl,       f,
                         root,     std::vector<bool>(
                                       static_cast<std::size_t>(f.num_ffs),
                                       false),
                         {},       {},
                         {},       0,
                         0,        step_cap - steps_used,
                         subset_cap, false};
    search.dfs(root);
    steps_used += search.steps;
    for (const auto& s : search.verified) all.insert(s);
    census.max_cycle_length =
        std::max(census.max_cycle_length, search.max_len);
    if (search.saturated || steps_used >= step_cap) {
      census.saturated = true;
      break;
    }
  }
  census.num_cycles = static_cast<int>(all.size());
  return census;
}

}  // namespace satpg
