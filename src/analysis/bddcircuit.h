// Shared BDD encoding of a sequential netlist over (present-state, input)
// variables — the substrate for reachability (reach.h), the SRF classifier
// (srf.h), and the sequential equivalence checker (seqec.h).
//
// Variable order: present-state bit i at 2i, next-state bit i at 2i+1
// (interleaving keeps transition relations small), primary inputs after.
#pragma once

#include <optional>
#include <vector>

#include "bdd/bdd.h"
#include "fault/fault.h"
#include "netlist/netlist.h"

namespace satpg {

struct BddVarMap {
  unsigned num_ffs = 0;
  unsigned num_pis = 0;
  // Strided layout: present-state bit i at ps_base + i*stride, next-state
  // at ps + 1. The default (base 0, stride 2) is the single-machine
  // interleaving; the product-machine analyses place a second machine at
  // base 2 with stride 4.
  unsigned ps_base = 0;
  unsigned stride = 2;
  unsigned in_base = 0;  ///< set by make()/callers
  unsigned num_vars = 0;

  static BddVarMap single(unsigned ffs, unsigned pis) {
    BddVarMap vm;
    vm.num_ffs = ffs;
    vm.num_pis = pis;
    vm.in_base = 2 * ffs;
    vm.num_vars = 2 * ffs + pis;
    return vm;
  }

  unsigned ps(unsigned i) const { return ps_base + i * stride; }
  unsigned ns(unsigned i) const { return ps(i) + 1; }
  unsigned in(unsigned j) const { return in_base + j; }
  unsigned total() const { return num_vars; }
};

/// Build every node's function over (ps, in) variables. When `fault` is
/// given, the returned functions are those of the *faulty* machine (the
/// stuck line is injected; present-state variables still represent the
/// faulty machine's register contents).
std::vector<BddRef> build_node_functions(
    const Netlist& nl, BddMgr& mgr, const BddVarMap& vm,
    const std::optional<Fault>& fault = std::nullopt);

/// Transition relation ∧_i ns_i ↔ D_i(ps, in) from node functions.
BddRef build_transition_relation(const Netlist& nl, BddMgr& mgr,
                                 const BddVarMap& vm,
                                 const std::vector<BddRef>& fn);

/// Reachable-state fixpoint over present-state variables. Initialization
/// follows the study's convention: when `reset_input` names a PI, the
/// initial set is the rst=1 image fixpoint from the universal set;
/// otherwise the DFF init-value cube. `iterations`, when non-null,
/// accumulates fixpoint steps.
BddRef compute_reached_set(const Netlist& nl, BddMgr& mgr,
                           const BddVarMap& vm, const std::vector<BddRef>& fn,
                           const std::string& reset_input,
                           int* iterations = nullptr);

}  // namespace satpg
