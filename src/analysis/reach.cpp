#include "analysis/reach.h"

#include <algorithm>
#include <cmath>

#include "analysis/bddcircuit.h"
#include "bdd/bdd.h"

namespace satpg {

ReachResult compute_reachable(const Netlist& nl, const ReachOptions& opts) {
  ReachResult res;
  res.num_dffs = static_cast<int>(nl.num_dffs());
  res.total_states = std::pow(2.0, res.num_dffs);
  if (res.num_dffs == 0) {
    res.num_valid = 1.0;
    res.density = 1.0;
    return res;
  }

  const BddVarMap vm = BddVarMap::single(
      static_cast<unsigned>(nl.num_dffs()),
      static_cast<unsigned>(nl.num_inputs()));
  BddMgr mgr(vm.total(), opts.bdd_node_limit);

  const auto fn = build_node_functions(nl, mgr, vm);
  const BddRef reached = compute_reached_set(nl, mgr, vm, fn,
                                             opts.reset_input,
                                             &res.fixpoint_iterations);

  res.num_valid = mgr.sat_count(reached, vm.num_ffs);
  res.density = res.num_valid / res.total_states;

  if (res.num_valid <= static_cast<double>(opts.enumerate_limit) &&
      vm.num_ffs <= 64) {
    std::vector<unsigned> ps_vars;
    for (unsigned i = 0; i < vm.num_ffs; ++i) ps_vars.push_back(vm.ps(i));
    for (std::uint64_t bits : mgr.enumerate(reached, ps_vars))
      res.states.push_back(BitVec::from_value(vm.num_ffs, bits));
    res.enumerated = true;
  }
  return res;
}

double density_of_encoding(const Netlist& nl) {
  return compute_reachable(nl).density;
}

}  // namespace satpg
