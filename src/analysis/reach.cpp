#include "analysis/reach.h"

#include <algorithm>
#include <cmath>

#include "analysis/bddcircuit.h"
#include "bdd/bdd.h"
#include "sim/simulator.h"

namespace satpg {

ReachResult compute_reachable(const Netlist& nl, const ReachOptions& opts) {
  ReachResult res;
  res.num_dffs = static_cast<int>(nl.num_dffs());
  res.total_states = std::pow(2.0, res.num_dffs);
  if (res.num_dffs == 0) {
    res.num_valid = 1.0;
    res.density = 1.0;
    return res;
  }

  const BddVarMap vm = BddVarMap::single(
      static_cast<unsigned>(nl.num_dffs()),
      static_cast<unsigned>(nl.num_inputs()));
  BddMgr mgr(vm.total(), opts.bdd_node_limit);

  const auto fn = build_node_functions(nl, mgr, vm);
  const BddRef reached = compute_reached_set(nl, mgr, vm, fn,
                                             opts.reset_input,
                                             &res.fixpoint_iterations);

  res.num_valid = mgr.sat_count(reached, vm.num_ffs);
  res.density = res.num_valid / res.total_states;

  if (res.num_valid <= static_cast<double>(opts.enumerate_limit) &&
      vm.num_ffs <= 64) {
    std::vector<unsigned> ps_vars;
    for (unsigned i = 0; i < vm.num_ffs; ++i) ps_vars.push_back(vm.ps(i));
    for (std::uint64_t bits : mgr.enumerate(reached, ps_vars))
      res.states.push_back(BitVec::from_value(vm.num_ffs, bits));
    res.enumerated = true;
  }
  return res;
}

double density_of_encoding(const Netlist& nl) {
  return compute_reachable(nl).density;
}

// ---- state-validity oracle --------------------------------------------------

const char* state_validity_name(StateValidity v) {
  switch (v) {
    case StateValidity::kValid:
      return "valid";
    case StateValidity::kInvalid:
      return "invalid";
    case StateValidity::kUnknown:
      return "unknown";
  }
  return "?";
}

const char* oracle_mode_name(ValidityOracleInfo::Mode m) {
  switch (m) {
    case ValidityOracleInfo::Mode::kDisabled:
      return "disabled";
    case ValidityOracleInfo::Mode::kExact:
      return "exact";
    case ValidityOracleInfo::Mode::kSuperset:
      return "superset";
  }
  return "?";
}

std::vector<V3> reachable_superset_v3(const Netlist& nl,
                                      const std::string& reset_input) {
  const std::size_t nff = nl.num_dffs();
  if (nff == 0) return {};
  SeqSimulator sim(nl);

  const NodeId rst = nl.find(reset_input);
  int rst_index = -1;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    if (nl.inputs()[i] == rst) rst_index = static_cast<int>(i);

  std::vector<V3> state(nff, V3::kX);
  if (rst_index >= 0) {
    // Reset-phase image chain under rst=1, other inputs free. Each iterate
    // abstracts img^k(universal), so EVERY iterate is a superset of the
    // reset set — a missing fixpoint within the cap is still sound.
    std::vector<V3> in(nl.num_inputs(), V3::kX);
    in[static_cast<std::size_t>(rst_index)] = V3::kOne;
    const std::size_t cap = 2 * nff + 4;
    for (std::size_t it = 0; it < cap; ++it) {
      sim.set_state(state);
      sim.step(in);
      if (sim.state() == state) break;
      state = sim.state();
    }
  } else {
    // No reset line: the initial set comes from the DFF init values, the
    // same convention compute_reachable uses.
    sim.reset_to_init();
    state = sim.state();
  }

  // Merge-to-X reachability fixpoint under free inputs. Digits only move
  // toward X, so this terminates within nff+1 sweeps.
  const std::vector<V3> free_in(nl.num_inputs(), V3::kX);
  for (;;) {
    sim.set_state(state);
    sim.step(free_in);
    const std::vector<V3>& next = sim.state();
    bool changed = false;
    for (std::size_t i = 0; i < nff; ++i) {
      if (state[i] != V3::kX && next[i] != state[i]) {
        state[i] = V3::kX;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return state;
}

StateValidityOracle StateValidityOracle::build(const Netlist& nl,
                                               const ReachOptions& opts) {
  StateValidityOracle o;
  o.num_ffs_ = nl.num_dffs();
  if (o.num_ffs_ == 0) {
    // One (empty) state, trivially reachable.
    o.info_.mode = ValidityOracleInfo::Mode::kExact;
    o.info_.num_valid = 1.0;
    o.info_.density = 1.0;
    return o;
  }
  try {
    const ReachResult r = compute_reachable(nl, opts);
    o.info_.num_valid = r.num_valid;
    o.info_.density = r.density;
    if (r.enumerated && o.num_ffs_ <= 64) {
      o.info_.mode = ValidityOracleInfo::Mode::kExact;
      o.states_.reserve(r.states.size());
      for (const BitVec& s : r.states) {
        std::uint64_t bits = 0;
        for (std::size_t i = 0; i < o.num_ffs_; ++i)
          if (s.get(i)) bits |= 1ULL << i;
        o.states_.push_back(bits);
      }
      std::sort(o.states_.begin(), o.states_.end());
      return o;
    }
  } catch (const BddOverflow&) {
    // Degrade to the superset mode; num_valid/density stay unknown (-1).
  }
  o.info_.mode = ValidityOracleInfo::Mode::kSuperset;
  o.pinned_ = reachable_superset_v3(nl, opts.reset_input);
  return o;
}

StateValidity StateValidityOracle::classify(const StateKey& cube) const {
  switch (info_.mode) {
    case ValidityOracleInfo::Mode::kDisabled:
      return StateValidity::kUnknown;
    case ValidityOracleInfo::Mode::kExact: {
      if (num_ffs_ == 0) return StateValidity::kValid;
      std::uint64_t care = 0, ones = 0;
      for (std::size_t i = 0; i < num_ffs_; ++i) {
        const V3 v = cube.get(i);
        if (v == V3::kX) continue;
        care |= 1ULL << i;
        if (v == V3::kOne) ones |= 1ULL << i;
      }
      if (care == 0) return StateValidity::kValid;
      for (const std::uint64_t s : states_)
        if (((s ^ ones) & care) == 0) return StateValidity::kValid;
      return StateValidity::kInvalid;
    }
    case ValidityOracleInfo::Mode::kSuperset: {
      bool any_known = false;
      for (std::size_t i = 0; i < num_ffs_; ++i) {
        const V3 v = cube.get(i);
        if (v == V3::kX) continue;
        any_known = true;
        if (pinned_[i] != V3::kX && pinned_[i] != v)
          return StateValidity::kInvalid;
      }
      return any_known ? StateValidity::kUnknown : StateValidity::kValid;
    }
  }
  return StateValidity::kUnknown;
}

}  // namespace satpg
