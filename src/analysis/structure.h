// Structural circuit attributes studied by the paper's Table 5.
//
// Definitions follow the paper exactly: a path (PI to PO) or cycle visits
// every *node* at most once, and its sequential depth / length is the
// number of D flip-flops encountered. Both metrics are evaluated on the
// gate skeleton — combinational gates as vertices, register chains
// collapsed onto weighted edges that remember the identity of the DFFs
// they carry (fanout branches sharing a register chain reference the same
// DFF nodes). On this representation:
//
//   * node-distinctness of the skeleton path == node-distinctness in the
//     circuit (chain FFs are inline on exactly one connection);
//   * Theorems 2 and 4 hold *by construction*: retiming redistributes
//     weights but path/cycle totals between the same endpoints are
//     invariant, so measured depth and cycle length match across a
//     retiming pair;
//   * the cycle census counts one cycle per unique DFF *subset* — the
//     counting behaviour of the algorithm the paper borrowed from Lioy et
//     al. and dissects in its Figure 2 (parallel combinational paths
//     through the same DFFs count once; a retimed FF split into two
//     parallel FFs makes two subsets and counts twice). This is the value
//     that *grows* under retiming in Table 5.
//
// Longest-simple-path and cycle enumeration are exponential in the worst
// case; both searches carry explicit work caps and report saturation
// (values are then lower bounds) instead of silently truncating.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace satpg {

struct SeqDepthResult {
  int max_depth = 0;
  bool saturated = false;  ///< search hit the work cap; value is a lower bound
};

/// Maximum sequential depth: most DFFs on any node-distinct PI -> PO path.
SeqDepthResult max_sequential_depth(const Netlist& nl,
                                    std::uint64_t step_cap = 20'000'000);

struct CycleCensus {
  int num_cycles = 0;        ///< distinct DFF subsets forming a cycle
  int max_cycle_length = 0;  ///< most DFFs in any node-distinct cycle
  bool saturated = false;    ///< enumeration hit a cap; values lower bounds
};

/// Cycle census per the subset counting described above.
CycleCensus count_cycles(const Netlist& nl,
                         std::uint64_t step_cap = 20'000'000,
                         std::size_t subset_cap = 1'000'000);

}  // namespace satpg
