// Exact sequential fault detectability and the sequentially-redundant-
// fault taxonomy (paper §3, after Devadas et al.).
//
// The analysis builds the *product machine* of the good and faulty
// circuits symbolically: state variables for both machines, a shared input
// vector, synchronized initialization through the reset line (the rst=1
// image fixpoint from the universal product set — the same convention the
// reachability analysis uses). On the reachable product set:
//
//   * the fault is EXCITABLE when some reachable (s_g, s_f, in) makes the
//     faulty machine's faulted line compute the opposite of the stuck
//     value — otherwise it is an **invalid-SRF** (the paper's dominant
//     class: every excitation state lies in the invalid state space);
//   * the fault is DETECTABLE when some reachable (s_g, s_f, in) drives a
//     primary output to differ between the machines — excitable but
//     undetectable faults are reported **unobservable-SRF**;
//   * otherwise the fault is provably detectable.
//
// This is an exact oracle (within the synchronized-reset initialization
// convention), so it doubles as an auditor for the ATPG engines: every
// fault an engine labels redundant must be non-detectable here, and the
// aborted faults can be split into "actually redundant" vs "missed" —
// which is precisely the paper's question about what retiming injects.
//
// Cost: BDDs over 2·#FF state variables + inputs. Fine for the original
// circuits; deeply-retimed circuits can exceed the node limit, in which
// case BddOverflow propagates and callers degrade gracefully.
#pragma once

#include "analysis/reach.h"
#include "fault/fault.h"
#include "netlist/netlist.h"

namespace satpg {

enum class SrfClass {
  kInvalidSrf,       ///< unexcitable from any reachable product state
  kUnobservableSrf,  ///< excitable, but no reachable state reveals it
  kDetectable,       ///< a distinguishing reachable (state, input) exists
};

const char* srf_class_name(SrfClass c);

struct SrfOptions {
  std::string reset_input = "rst";
  std::size_t bdd_node_limit = 32u << 20;
};

/// Classify one fault exactly. Throws BddOverflow on blowup.
SrfClass classify_srf(const Netlist& nl, const Fault& fault,
                      const SrfOptions& opts = {});

struct SrfCensus {
  std::size_t invalid = 0;
  std::size_t unobservable = 0;
  std::size_t detectable = 0;
};

/// Classify a whole fault list (typically an engine's aborted faults),
/// sharing one product-machine build.
SrfCensus classify_faults(const Netlist& nl, const std::vector<Fault>& faults,
                          const SrfOptions& opts = {});

}  // namespace satpg
