// Three-valued levelized sequential logic simulation.
//
// Circuits in this study are small (tens of FFs, hundreds of gates), so the
// good-machine simulator performs a full levelized sweep per cycle rather
// than event scheduling — simpler, branch-predictable, and fast enough that
// the ATPG engines, not simulation, dominate experiment time. The parallel
// fault simulator (src/fsim) adds the bit-parallel machinery where
// throughput actually matters.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "sim/value.h"

namespace satpg {

/// Evaluate one combinational gate over V3 fanin values.
V3 eval_gate_v3(GateType t, const std::vector<NodeId>& fanins,
                const std::vector<V3>& values);

/// Evaluate one combinational gate over PV fanin values.
PV eval_gate_pv(GateType t, const std::vector<NodeId>& fanins,
                const std::vector<PV>& values);

/// Evaluate over already-gathered fanin values (`vals[0..n)` in pin
/// order). Lets callers that stage fanins in a scratch buffer — the fault
/// simulator's cone-restricted batches and forced-pin re-evaluation —
/// avoid a netlist-sized value array per evaluation.
V3 eval_gate_v3_packed(GateType t, const V3* vals, std::size_t n);
PV eval_gate_pv_packed(GateType t, const PV* vals, std::size_t n);

/// Sequential three-valued simulator with explicit state.
///
/// Usage:
///   SeqSimulator sim(nl);
///   sim.reset_to_init();                 // FF init values (often all-X)
///   auto pos = sim.step(pi_values);      // one clock cycle
///
/// step() evaluates the combinational logic from the current state and the
/// given PI values, returns PO values, and advances FF state to the D
/// values (edge-triggered semantics: all FFs clock simultaneously).
class SeqSimulator {
 public:
  explicit SeqSimulator(const Netlist& nl);

  /// Load FF state from each DFF's FfInit field.
  void reset_to_init();

  /// Set the state explicitly; `state[i]` corresponds to nl.dffs()[i].
  void set_state(const std::vector<V3>& state);
  const std::vector<V3>& state() const { return state_; }

  /// Fully-specified state as a bit string (CHECKs no X bits), LSB = dff[0].
  std::string state_string() const;

  /// Apply one input vector (pi[i] corresponds to nl.inputs()[i]); returns
  /// PO values in nl.outputs() order and clocks the flip-flops.
  std::vector<V3> step(const std::vector<V3>& pi);

  /// Like step() but does not clock the FFs (pure combinational evaluate).
  std::vector<V3> eval_outputs(const std::vector<V3>& pi);

  /// Value of an arbitrary node after the most recent evaluation.
  V3 value(NodeId id) const { return values_[static_cast<std::size_t>(id)]; }

  /// Next-state (D input) values from the most recent evaluation.
  std::vector<V3> next_state() const;

  const Netlist& netlist() const { return nl_; }

 private:
  void evaluate(const std::vector<V3>& pi);

  const Netlist& nl_;
  std::vector<V3> state_;   // per DFF, indexed as nl.dffs()
  std::vector<V3> values_;  // per node, after evaluate()
};

/// Convenience: simulate an input sequence from the initial state and return
/// the PO response matrix (one row per cycle).
std::vector<std::vector<V3>> simulate_sequence(
    const Netlist& nl, const std::vector<std::vector<V3>>& inputs);

}  // namespace satpg
