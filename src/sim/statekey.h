// Packed three-valued state code.
//
// StateKey replaces the {0,1,X} state *strings* the fault simulator and the
// ATPG learning caches used to key their sets with: each flip-flop digit is
// 2 bits in a fixed array of uint64_t words, so construction, equality, and
// hashing are a handful of word operations instead of a heap allocation
// plus a byte-wise compare. Digit i corresponds to nl.dffs()[i]; the string
// rendering keeps the historical convention (most-significant character =
// last DFF), so keys compare textually equal to BitVec::to_string() state
// codes when fully specified.
//
// Encoding per digit: 00 = X / unspecified, 01 = 0, 10 = 1. The all-X key
// is therefore all-zero words, which makes "any digit known" a word scan
// and default construction free.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_set>

#include "base/check.h"
#include "sim/value.h"

namespace satpg {

class StateKey {
 public:
  static constexpr std::size_t kDigitsPerWord = 32;  // 2 bits per digit
  static constexpr std::size_t kMaxWords = 8;
  static constexpr std::size_t kMaxDigits = kDigitsPerWord * kMaxWords;

  StateKey() = default;

  /// All-X key over `num_digits` flip-flops.
  explicit StateKey(std::size_t num_digits)
      : num_digits_(static_cast<std::uint32_t>(num_digits)) {
    SATPG_CHECK(num_digits <= kMaxDigits);
  }

  std::size_t size() const { return num_digits_; }

  V3 get(std::size_t i) const {
    SATPG_DCHECK(i < num_digits_);
    const unsigned code =
        static_cast<unsigned>(words_[i / kDigitsPerWord] >>
                              (2 * (i % kDigitsPerWord))) &
        3u;
    return code == 1 ? V3::kZero : code == 2 ? V3::kOne : V3::kX;
  }

  void set(std::size_t i, V3 v) {
    SATPG_DCHECK(i < num_digits_);
    const unsigned sh = 2 * (i % kDigitsPerWord);
    std::uint64_t& w = words_[i / kDigitsPerWord];
    w &= ~(3ULL << sh);
    if (v == V3::kZero)
      w |= 1ULL << sh;
    else if (v == V3::kOne)
      w |= 2ULL << sh;
  }

  /// True when at least one digit is 0 or 1 (not the all-X key).
  bool any_known() const {
    for (std::size_t w = 0; w < used_words(); ++w)
      if (words_[w]) return true;
    return false;
  }

  /// True when every digit is 0 or 1.
  bool fully_specified() const {
    for (std::size_t i = 0; i < num_digits_; ++i)
      if (get(i) == V3::kX) return false;
    return true;
  }

  /// Historical string rendering: index size()-1 first, chars '0'/'1'/'X'.
  std::string to_string() const {
    std::string s;
    s.reserve(num_digits_);
    for (std::size_t i = num_digits_; i-- > 0;) s.push_back(v3_char(get(i)));
    return s;
  }

  /// Inverse of to_string(). '0' and '1' map to known digits; any other
  /// character ('X', '-') maps to X.
  static StateKey from_string(const std::string& s) {
    StateKey k(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[s.size() - 1 - i];
      if (c == '0')
        k.set(i, V3::kZero);
      else if (c == '1')
        k.set(i, V3::kOne);
    }
    return k;
  }

  bool operator==(const StateKey& o) const {
    if (num_digits_ != o.num_digits_) return false;
    for (std::size_t w = 0; w < used_words(); ++w)
      if (words_[w] != o.words_[w]) return false;
    return true;
  }
  bool operator!=(const StateKey& o) const { return !(*this == o); }

  std::size_t hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ num_digits_;
    for (std::size_t w = 0; w < used_words(); ++w) {
      h ^= words_[w];
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
    }
    return static_cast<std::size_t>(h);
  }

 private:
  std::size_t used_words() const {
    return (num_digits_ + kDigitsPerWord - 1) / kDigitsPerWord;
  }

  std::uint32_t num_digits_ = 0;
  std::array<std::uint64_t, kMaxWords> words_{};
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const { return k.hash(); }
};

/// Set of visited/recorded states.
using StateSet = std::unordered_set<StateKey, StateKeyHash>;

}  // namespace satpg
