#include "sim/simulator.h"

namespace satpg {

V3 eval_gate_v3(GateType t, const std::vector<NodeId>& fanins,
                const std::vector<V3>& values) {
  auto in = [&](std::size_t i) {
    return values[static_cast<std::size_t>(fanins[i])];
  };
  switch (t) {
    case GateType::kConst0:
      return V3::kZero;
    case GateType::kConst1:
      return V3::kOne;
    case GateType::kBuf:
      return in(0);
    case GateType::kNot:
      return v3_not(in(0));
    case GateType::kAnd:
    case GateType::kNand: {
      V3 v = in(0);
      for (std::size_t i = 1; i < fanins.size(); ++i) v = v3_and(v, in(i));
      return t == GateType::kAnd ? v : v3_not(v);
    }
    case GateType::kOr:
    case GateType::kNor: {
      V3 v = in(0);
      for (std::size_t i = 1; i < fanins.size(); ++i) v = v3_or(v, in(i));
      return t == GateType::kOr ? v : v3_not(v);
    }
    case GateType::kXor:
    case GateType::kXnor: {
      V3 v = in(0);
      for (std::size_t i = 1; i < fanins.size(); ++i) v = v3_xor(v, in(i));
      return t == GateType::kXor ? v : v3_not(v);
    }
    default:
      SATPG_CHECK_MSG(false, "eval_gate_v3: not a combinational gate");
  }
  return V3::kX;
}

PV eval_gate_pv(GateType t, const std::vector<NodeId>& fanins,
                const std::vector<PV>& values) {
  auto in = [&](std::size_t i) {
    return values[static_cast<std::size_t>(fanins[i])];
  };
  switch (t) {
    case GateType::kConst0:
      return PV::all(V3::kZero);
    case GateType::kConst1:
      return PV::all(V3::kOne);
    case GateType::kBuf:
      return in(0);
    case GateType::kNot:
      return pv_not(in(0));
    case GateType::kAnd:
    case GateType::kNand: {
      PV v = in(0);
      for (std::size_t i = 1; i < fanins.size(); ++i) v = pv_and(v, in(i));
      return t == GateType::kAnd ? v : pv_not(v);
    }
    case GateType::kOr:
    case GateType::kNor: {
      PV v = in(0);
      for (std::size_t i = 1; i < fanins.size(); ++i) v = pv_or(v, in(i));
      return t == GateType::kOr ? v : pv_not(v);
    }
    case GateType::kXor:
    case GateType::kXnor: {
      PV v = in(0);
      for (std::size_t i = 1; i < fanins.size(); ++i) v = pv_xor(v, in(i));
      return t == GateType::kXor ? v : pv_not(v);
    }
    default:
      SATPG_CHECK_MSG(false, "eval_gate_pv: not a combinational gate");
  }
  return PV{};
}

V3 eval_gate_v3_packed(GateType t, const V3* vals, std::size_t n) {
  switch (t) {
    case GateType::kConst0:
      return V3::kZero;
    case GateType::kConst1:
      return V3::kOne;
    case GateType::kBuf:
    case GateType::kDff:
    case GateType::kOutput:
      return vals[0];  // D / PO marker pass-through
    case GateType::kNot:
      return v3_not(vals[0]);
    case GateType::kAnd:
    case GateType::kNand: {
      V3 v = vals[0];
      for (std::size_t i = 1; i < n; ++i) v = v3_and(v, vals[i]);
      return t == GateType::kAnd ? v : v3_not(v);
    }
    case GateType::kOr:
    case GateType::kNor: {
      V3 v = vals[0];
      for (std::size_t i = 1; i < n; ++i) v = v3_or(v, vals[i]);
      return t == GateType::kOr ? v : v3_not(v);
    }
    case GateType::kXor:
    case GateType::kXnor: {
      V3 v = vals[0];
      for (std::size_t i = 1; i < n; ++i) v = v3_xor(v, vals[i]);
      return t == GateType::kXor ? v : v3_not(v);
    }
    default:
      SATPG_CHECK_MSG(false, "eval_gate_v3_packed: unexpected gate");
  }
  return V3::kX;
}

PV eval_gate_pv_packed(GateType t, const PV* vals, std::size_t n) {
  switch (t) {
    case GateType::kConst0:
      return PV::all(V3::kZero);
    case GateType::kConst1:
      return PV::all(V3::kOne);
    case GateType::kBuf:
    case GateType::kDff:
    case GateType::kOutput:
      return vals[0];
    case GateType::kNot:
      return pv_not(vals[0]);
    case GateType::kAnd:
    case GateType::kNand: {
      PV v = vals[0];
      for (std::size_t i = 1; i < n; ++i) v = pv_and(v, vals[i]);
      return t == GateType::kAnd ? v : pv_not(v);
    }
    case GateType::kOr:
    case GateType::kNor: {
      PV v = vals[0];
      for (std::size_t i = 1; i < n; ++i) v = pv_or(v, vals[i]);
      return t == GateType::kOr ? v : pv_not(v);
    }
    case GateType::kXor:
    case GateType::kXnor: {
      PV v = vals[0];
      for (std::size_t i = 1; i < n; ++i) v = pv_xor(v, vals[i]);
      return t == GateType::kXor ? v : pv_not(v);
    }
    default:
      SATPG_CHECK_MSG(false, "eval_gate_pv_packed: unexpected gate");
  }
  return PV{};
}

SeqSimulator::SeqSimulator(const Netlist& nl)
    : nl_(nl),
      state_(nl.num_dffs(), V3::kX),
      values_(nl.num_nodes(), V3::kX) {
  nl.topo_order();  // pre-build caches so step() never mutates them
  reset_to_init();
}

void SeqSimulator::reset_to_init() {
  const auto& dffs = nl_.dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    switch (nl_.node(dffs[i]).init) {
      case FfInit::kZero:
        state_[i] = V3::kZero;
        break;
      case FfInit::kOne:
        state_[i] = V3::kOne;
        break;
      case FfInit::kUnknown:
        state_[i] = V3::kX;
        break;
    }
  }
}

void SeqSimulator::set_state(const std::vector<V3>& state) {
  SATPG_CHECK(state.size() == state_.size());
  state_ = state;
}

std::string SeqSimulator::state_string() const {
  std::string s;
  s.reserve(state_.size());
  for (std::size_t i = state_.size(); i-- > 0;) s.push_back(v3_char(state_[i]));
  return s;
}

void SeqSimulator::evaluate(const std::vector<V3>& pi) {
  SATPG_CHECK(pi.size() == nl_.num_inputs());
  const auto& inputs = nl_.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i)
    values_[static_cast<std::size_t>(inputs[i])] = pi[i];
  const auto& dffs = nl_.dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i)
    values_[static_cast<std::size_t>(dffs[i])] = state_[i];
  for (NodeId id : nl_.topo_order()) {
    const auto& n = nl_.node(id);
    if (is_combinational(n.type))
      values_[static_cast<std::size_t>(id)] =
          eval_gate_v3(n.type, n.fanins, values_);
    else if (n.type == GateType::kOutput)
      values_[static_cast<std::size_t>(id)] =
          values_[static_cast<std::size_t>(n.fanins[0])];
  }
}

std::vector<V3> SeqSimulator::eval_outputs(const std::vector<V3>& pi) {
  evaluate(pi);
  std::vector<V3> out;
  out.reserve(nl_.num_outputs());
  for (NodeId id : nl_.outputs())
    out.push_back(values_[static_cast<std::size_t>(id)]);
  return out;
}

std::vector<V3> SeqSimulator::next_state() const {
  std::vector<V3> ns;
  ns.reserve(nl_.num_dffs());
  for (NodeId id : nl_.dffs())
    ns.push_back(values_[static_cast<std::size_t>(nl_.node(id).fanins[0])]);
  return ns;
}

std::vector<V3> SeqSimulator::step(const std::vector<V3>& pi) {
  auto out = eval_outputs(pi);
  state_ = next_state();
  return out;
}

std::vector<std::vector<V3>> simulate_sequence(
    const Netlist& nl, const std::vector<std::vector<V3>>& inputs) {
  SeqSimulator sim(nl);
  std::vector<std::vector<V3>> out;
  out.reserve(inputs.size());
  for (const auto& pi : inputs) out.push_back(sim.step(pi));
  return out;
}

}  // namespace satpg
