// Logic value domains.
//
// V3  — three-valued (0, 1, X) scalar logic used by the sequential
//       simulator, reachability seeding, and ATPG good-machine values.
// PV  — 64-way bit-parallel three-valued encoding used by the parallel
//       fault simulator: bit i of `zero` means "slot i is 0", bit i of
//       `one` means "slot i is 1"; neither bit set means X. A slot never
//       has both bits set (checked in debug builds).
#pragma once

#include <cstdint>

#include "base/check.h"

namespace satpg {

enum class V3 : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

inline char v3_char(V3 v) {
  switch (v) {
    case V3::kZero:
      return '0';
    case V3::kOne:
      return '1';
    case V3::kX:
      return 'X';
  }
  return '?';
}

inline V3 v3_not(V3 a) {
  if (a == V3::kZero) return V3::kOne;
  if (a == V3::kOne) return V3::kZero;
  return V3::kX;
}

inline V3 v3_and(V3 a, V3 b) {
  if (a == V3::kZero || b == V3::kZero) return V3::kZero;
  if (a == V3::kOne && b == V3::kOne) return V3::kOne;
  return V3::kX;
}

inline V3 v3_or(V3 a, V3 b) {
  if (a == V3::kOne || b == V3::kOne) return V3::kOne;
  if (a == V3::kZero && b == V3::kZero) return V3::kZero;
  return V3::kX;
}

inline V3 v3_xor(V3 a, V3 b) {
  if (a == V3::kX || b == V3::kX) return V3::kX;
  return (a == b) ? V3::kZero : V3::kOne;
}

/// 64-slot parallel three-valued word.
struct PV {
  std::uint64_t zero = 0;
  std::uint64_t one = 0;

  static PV all(V3 v) {
    switch (v) {
      case V3::kZero:
        return {~0ULL, 0};
      case V3::kOne:
        return {0, ~0ULL};
      default:
        return {0, 0};
    }
  }

  V3 slot(unsigned i) const {
    const std::uint64_t m = 1ULL << i;
    if (zero & m) return V3::kZero;
    if (one & m) return V3::kOne;
    return V3::kX;
  }

  void set_slot(unsigned i, V3 v) {
    const std::uint64_t m = 1ULL << i;
    zero &= ~m;
    one &= ~m;
    if (v == V3::kZero)
      zero |= m;
    else if (v == V3::kOne)
      one |= m;
  }

  bool well_formed() const { return (zero & one) == 0; }

  bool operator==(const PV& o) const = default;
};

inline PV pv_not(PV a) { return {a.one, a.zero}; }

inline PV pv_and(PV a, PV b) {
  return {a.zero | b.zero, a.one & b.one};
}

inline PV pv_or(PV a, PV b) {
  return {a.zero & b.zero, a.one | b.one};
}

inline PV pv_xor(PV a, PV b) {
  const std::uint64_t known = (a.zero | a.one) & (b.zero | b.one);
  const std::uint64_t x = (a.one ^ b.one) & known;
  return {known & ~x, x};
}

}  // namespace satpg
