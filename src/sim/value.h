// Logic value domains.
//
// V3  — three-valued (0, 1, X) scalar logic used by the sequential
//       simulator, reachability seeding, and ATPG good-machine values.
// PV  — 64-way bit-parallel three-valued encoding used by the parallel
//       fault simulator: bit i of `zero` means "slot i is 0", bit i of
//       `one` means "slot i is 1"; neither bit set means X. A slot never
//       has both bits set (checked in debug builds).
// PVW — the wide (pattern-parallel) word: kSubWords 64-slot PV sub-words
//       simulated together by the PPSFP engine. Sub-word g carries
//       sequence lane g of a lane group; within each sub-word slot 0 is
//       that lane's good machine and slots 1..63 carry the batch's faulty
//       machines (same fault→slot map in every sub-word). The SSE2 /
//       AVX2 / AVX-512 kernels view a plane as 4×128-, 2×256-, or 1×512-
//       bit vectors (PV128/PV256/PV512); the logical width is fixed at
//       kSubWords regardless of the physical kernel, which is what makes
//       results and metrics identical across dispatch tiers.
#pragma once

#include <cstdint>

#include "base/check.h"

namespace satpg {

enum class V3 : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

inline char v3_char(V3 v) {
  switch (v) {
    case V3::kZero:
      return '0';
    case V3::kOne:
      return '1';
    case V3::kX:
      return 'X';
  }
  return '?';
}

inline V3 v3_not(V3 a) {
  if (a == V3::kZero) return V3::kOne;
  if (a == V3::kOne) return V3::kZero;
  return V3::kX;
}

inline V3 v3_and(V3 a, V3 b) {
  if (a == V3::kZero || b == V3::kZero) return V3::kZero;
  if (a == V3::kOne && b == V3::kOne) return V3::kOne;
  return V3::kX;
}

inline V3 v3_or(V3 a, V3 b) {
  if (a == V3::kOne || b == V3::kOne) return V3::kOne;
  if (a == V3::kZero && b == V3::kZero) return V3::kZero;
  return V3::kX;
}

inline V3 v3_xor(V3 a, V3 b) {
  if (a == V3::kX || b == V3::kX) return V3::kX;
  return (a == b) ? V3::kZero : V3::kOne;
}

/// 64-slot parallel three-valued word.
struct PV {
  std::uint64_t zero = 0;
  std::uint64_t one = 0;

  static PV all(V3 v) {
    switch (v) {
      case V3::kZero:
        return {~0ULL, 0};
      case V3::kOne:
        return {0, ~0ULL};
      default:
        return {0, 0};
    }
  }

  V3 slot(unsigned i) const {
    const std::uint64_t m = 1ULL << i;
    if (zero & m) return V3::kZero;
    if (one & m) return V3::kOne;
    return V3::kX;
  }

  void set_slot(unsigned i, V3 v) {
    const std::uint64_t m = 1ULL << i;
    zero &= ~m;
    one &= ~m;
    if (v == V3::kZero)
      zero |= m;
    else if (v == V3::kOne)
      one |= m;
  }

  bool well_formed() const { return (zero & one) == 0; }

  bool operator==(const PV& o) const = default;
};

inline PV pv_not(PV a) { return {a.one, a.zero}; }

inline PV pv_and(PV a, PV b) {
  return {a.zero | b.zero, a.one & b.one};
}

inline PV pv_or(PV a, PV b) {
  return {a.zero & b.zero, a.one | b.one};
}

inline PV pv_xor(PV a, PV b) {
  const std::uint64_t known = (a.zero | a.one) & (b.zero | b.one);
  const std::uint64_t x = (a.one ^ b.one) & known;
  return {known & ~x, x};
}

/// Wide parallel three-valued word: PVW::kSubWords independent 64-slot PV
/// sub-words, one per sequence lane of a PPSFP lane group. 64-byte
/// alignment lets the AVX-512 kernel treat a whole plane as one register.
///
/// These accessors exist for drivers and tests; the hot kernels operate on
/// the raw planes through per-translation-unit backend ops (see
/// src/fsim/wide_kernel.h) and never call member functions.
struct alignas(64) PVW {
  static constexpr unsigned kSubWords = 8;  ///< sequence lanes per group
  std::uint64_t zero[kSubWords];
  std::uint64_t one[kSubWords];

  static PVW all(V3 v) {
    PVW w;
    const PV p = PV::all(v);
    for (unsigned g = 0; g < kSubWords; ++g) {
      w.zero[g] = p.zero;
      w.one[g] = p.one;
    }
    return w;
  }

  PV sub(unsigned g) const { return {zero[g], one[g]}; }

  void set_sub(unsigned g, PV p) {
    zero[g] = p.zero;
    one[g] = p.one;
  }

  V3 slot(unsigned g, unsigned i) const {
    const std::uint64_t m = 1ULL << i;
    if (zero[g] & m) return V3::kZero;
    if (one[g] & m) return V3::kOne;
    return V3::kX;
  }

  void set_slot(unsigned g, unsigned i, V3 v) {
    const std::uint64_t m = 1ULL << i;
    zero[g] &= ~m;
    one[g] &= ~m;
    if (v == V3::kZero)
      zero[g] |= m;
    else if (v == V3::kOne)
      one[g] |= m;
  }

  /// No slot of any sub-word claims to be 0 and 1 at once.
  bool well_formed() const {
    for (unsigned g = 0; g < kSubWords; ++g)
      if ((zero[g] & one[g]) != 0) return false;
    return true;
  }

  bool operator==(const PVW& o) const {
    for (unsigned g = 0; g < kSubWords; ++g)
      if (zero[g] != o.zero[g] || one[g] != o.one[g]) return false;
    return true;
  }
};

}  // namespace satpg
