// Single stuck-at fault model.
//
// Fault sites follow the classic line-oriented model: every node output
// (stem) and every gate input pin (branch) can be stuck at 0 or 1. A fault
// on input pin `pin` of node `n` affects only the value `n` sees on that
// fanin; the driving node's other fanouts see the good value — this is what
// distinguishes branch faults on multi-fanout nets.
//
// Structural equivalence collapsing implements the standard rules
// (AND: in-sa0 ≡ out-sa0; OR: in-sa1 ≡ out-sa1; NAND: in-sa0 ≡ out-sa1;
// NOR: in-sa1 ≡ out-sa0; NOT/BUF/DFF/PO: both polarities pass through;
// single-fanout stems merge with their branch). One representative per
// class is kept; coverage accounting weights representatives by class size
// so reported fault coverage refers to the full uncollapsed universe,
// matching how HITEC-era tools reported numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace satpg {

struct Fault {
  NodeId node = kNoNode;
  int pin = -1;        ///< -1: output stem; >=0: fanin pin index
  bool stuck1 = false; ///< stuck-at-1 vs stuck-at-0

  bool operator==(const Fault&) const = default;
  bool operator<(const Fault& o) const {
    if (node != o.node) return node < o.node;
    if (pin != o.pin) return pin < o.pin;
    return stuck1 < o.stuck1;
  }
};

std::string fault_name(const Netlist& nl, const Fault& f);

/// All faults on gate/DFF/PO lines: an output fault per driving node (PI,
/// gate, DFF) and an input fault per (consumer, pin). OUTPUT markers
/// contribute their input pin only (same line as the driver's stem — kept
/// collapsible, not duplicated).
std::vector<Fault> enumerate_faults(const Netlist& nl);

struct CollapsedFault {
  Fault representative;
  int class_size = 1;  ///< uncollapsed faults this representative stands for
};

/// Structural equivalence collapsing over the full universe.
std::vector<CollapsedFault> collapse_faults(const Netlist& nl);

}  // namespace satpg
