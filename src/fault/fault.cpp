#include "fault/fault.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "base/strutil.h"

namespace satpg {

std::string fault_name(const Netlist& nl, const Fault& f) {
  const auto& n = nl.node(f.node);
  std::string line = n.name;
  if (f.pin >= 0)
    line += "/in" + std::to_string(f.pin) + "(" +
            nl.node(n.fanins[static_cast<std::size_t>(f.pin)]).name + ")";
  return line + (f.stuck1 ? " s-a-1" : " s-a-0");
}

std::vector<Fault> enumerate_faults(const Netlist& nl) {
  std::vector<Fault> out;
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const auto& n = nl.node(id);
    if (n.dead) continue;
    if (n.type == GateType::kConst0 || n.type == GateType::kConst1) continue;
    // Output stem faults for every value-producing node.
    if (n.type != GateType::kOutput) {
      out.push_back({id, -1, false});
      out.push_back({id, -1, true});
    }
    // Input pin (branch) faults.
    if (n.type != GateType::kInput) {
      for (int pin = 0; pin < static_cast<int>(n.fanins.size()); ++pin) {
        out.push_back({id, pin, false});
        out.push_back({id, pin, true});
      }
    }
  }
  return out;
}

namespace {

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] =
        std::min(a, b);
  }
};

}  // namespace

std::vector<CollapsedFault> collapse_faults(const Netlist& nl) {
  const std::vector<Fault> all = enumerate_faults(nl);
  std::map<Fault, int> index;
  for (std::size_t i = 0; i < all.size(); ++i)
    index.emplace(all[i], static_cast<int>(i));
  auto idx = [&index](const Fault& f) {
    auto it = index.find(f);
    return it == index.end() ? -1 : it->second;
  };
  UnionFind uf(all.size());
  auto unite_f = [&](const Fault& a, const Fault& b) {
    const int ia = idx(a), ib = idx(b);
    if (ia >= 0 && ib >= 0) uf.unite(ia, ib);
  };

  const auto& fanouts = nl.fanouts();
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const auto& n = nl.node(id);
    if (n.dead) continue;
    // Gate-rule equivalences between input pins and the output stem.
    for (int pin = 0; pin < static_cast<int>(n.fanins.size()); ++pin) {
      switch (n.type) {
        case GateType::kAnd:
          unite_f({id, pin, false}, {id, -1, false});
          break;
        case GateType::kNand:
          unite_f({id, pin, false}, {id, -1, true});
          break;
        case GateType::kOr:
          unite_f({id, pin, true}, {id, -1, true});
          break;
        case GateType::kNor:
          unite_f({id, pin, true}, {id, -1, false});
          break;
        case GateType::kBuf:
        case GateType::kDff:
          unite_f({id, pin, false}, {id, -1, false});
          unite_f({id, pin, true}, {id, -1, true});
          break;
        case GateType::kNot:
          unite_f({id, pin, false}, {id, -1, true});
          unite_f({id, pin, true}, {id, -1, false});
          break;
        default:
          break;  // XOR/XNOR/OUTPUT: no input-output equivalence
      }
    }
    // Single-fanout stems merge with their unique branch.
    if (n.type != GateType::kOutput && fanouts[i].size() == 1) {
      const NodeId sink = fanouts[i][0];
      const auto& s = nl.node(sink);
      for (int pin = 0; pin < static_cast<int>(s.fanins.size()); ++pin) {
        if (s.fanins[static_cast<std::size_t>(pin)] != id) continue;
        unite_f({id, -1, false}, {sink, pin, false});
        unite_f({id, -1, true}, {sink, pin, true});
      }
    }
  }

  std::map<int, CollapsedFault> classes;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const int root = uf.find(static_cast<int>(i));
    auto [it, inserted] =
        classes.emplace(root, CollapsedFault{all[static_cast<std::size_t>(
                                  root)],
                                  0});
    ++it->second.class_size;
    (void)inserted;
  }
  std::vector<CollapsedFault> out;
  out.reserve(classes.size());
  for (auto& [root, cf] : classes) out.push_back(cf);
  return out;
}

}  // namespace satpg
