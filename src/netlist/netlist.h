// Gate-level synchronous sequential netlist.
//
// The netlist is the common representation shared by synthesis output,
// retiming, logic/fault simulation, structural analysis, and ATPG. It is a
// flat node graph:
//
//   * kInput nodes are primary inputs (no fanins).
//   * kOutput nodes are explicit primary-output markers (one fanin). Making
//     POs real nodes keeps the retiming graph and path analyses uniform.
//   * kDff nodes are edge-triggered D flip-flops: one fanin (D), the node's
//     value is Q. Initial (power-up) value is 0/1/X; the paper's circuits
//     power up unknown and are initialized through an explicit reset line
//     synthesized into the next-state logic.
//   * Combinational nodes (BUF/NOT/AND/NAND/OR/NOR/XOR/XNOR, CONST0/1) have
//     1..k fanins.
//
// Node ids are dense indices into nodes(); deleted nodes are tombstoned and
// removed by compact(). Combinational topological order (DFFs and PIs as
// sources) is computed on demand and cached.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/bitvec.h"
#include "base/check.h"

namespace satpg {

using NodeId = std::int32_t;
constexpr NodeId kNoNode = -1;

enum class GateType : std::uint8_t {
  kInput,
  kOutput,
  kDff,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
};

/// Human-readable gate-type name ("AND", "DFF", ...).
const char* gate_type_name(GateType t);

/// True for BUF/NOT/AND/.../XNOR and CONST (anything evaluated by the
/// combinational simulator).
bool is_combinational(GateType t);

/// Three-valued initial state of a flip-flop.
enum class FfInit : std::uint8_t { kZero, kOne, kUnknown };

struct Node {
  GateType type = GateType::kBuf;
  std::vector<NodeId> fanins;
  std::string name;       ///< unique within the netlist; "" for tombstones
  FfInit init = FfInit::kUnknown;  ///< meaningful for kDff only
  double delay = 1.0;     ///< propagation delay (library units; 0 for DFF/IO)
  double area = 1.0;      ///< area contribution (library units)
  bool dead = false;      ///< tombstone flag (see Netlist::compact)
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -------------------------------------------------------
  NodeId add_input(const std::string& name);
  NodeId add_output(const std::string& name, NodeId driver);
  NodeId add_dff(const std::string& name, NodeId d, FfInit init);
  NodeId add_gate(GateType t, const std::string& name,
                  std::vector<NodeId> fanins);
  NodeId add_const(bool value, const std::string& name);

  /// Redirect every fanin reference of `old_id` to `new_id` (does not touch
  /// PI/PO/DFF membership lists). Used by rewriting passes and retiming.
  void replace_uses(NodeId old_id, NodeId new_id);

  /// Change the driver of a single fanin slot.
  void set_fanin(NodeId node, std::size_t slot, NodeId driver);

  /// Mark a node dead. Dead nodes are skipped by traversals and dropped by
  /// compact(); they must no longer be referenced by any live node.
  void kill_node(NodeId id);

  /// Remove dead nodes and renumber. Invalidates all NodeIds held outside.
  void compact();

  // ---- access --------------------------------------------------------------
  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const {
    SATPG_DCHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return nodes_[static_cast<std::size_t>(id)];
  }
  Node& node_mut(NodeId id) {
    invalidate_caches();
    SATPG_DCHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return nodes_[static_cast<std::size_t>(id)];
  }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::vector<NodeId>& dffs() const { return dffs_; }

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  std::size_t num_dffs() const { return dffs_.size(); }

  /// Count of live combinational gates (excludes PI/PO/DFF markers).
  std::size_t num_gates() const;

  /// Sum of node areas over live combinational gates and DFFs.
  double total_area() const;

  /// Lookup by unique name; kNoNode when absent.
  NodeId find(const std::string& name) const;

  /// Fanout lists (node -> nodes that reference it), computed lazily.
  const std::vector<std::vector<NodeId>>& fanouts() const;

  /// Sequential transitive-fanout cone of every live node: bit j of
  /// fanout_cones()[i] is set when a value change at node i can ever reach
  /// node j, crossing flip-flop boundaries into later cycles (a DFF is in
  /// the cone of its D source, and the cone continues through its Q
  /// fanouts). The node itself is always in its own cone. This is exactly
  /// the set of nodes a fault at i can perturb during sequential fault
  /// simulation, so the fault simulator restricts event evaluation to the
  /// union of its batch's cones. Lazily computed and cached.
  const std::vector<BitVec>& fanout_cones() const;

  /// Topological order of live nodes treating DFF outputs, PIs, and consts
  /// as sources (they appear first); every combinational node appears after
  /// all its fanins; OUTPUT marker nodes appear last. A DFF's D fanin
  /// appears *after* the DFF itself — simulators read D when clocking.
  /// CHECK-fails on a combinational cycle.
  const std::vector<NodeId>& topo_order() const;

  /// Validate structural invariants (arity, name uniqueness, reference
  /// liveness, combinational acyclicity). Returns an error description or
  /// std::nullopt when well-formed.
  std::optional<std::string> validate() const;

  /// Deep copy with a fresh name.
  Netlist clone(const std::string& new_name) const;

 private:
  NodeId new_node(GateType t, const std::string& name,
                  std::vector<NodeId> fanins);
  void invalidate_caches() const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> dffs_;
  std::unordered_map<std::string, NodeId> by_name_;

  mutable std::vector<std::vector<NodeId>> fanouts_;  // lazy caches
  mutable std::vector<NodeId> topo_;
  mutable std::vector<BitVec> cones_;
  mutable bool caches_valid_ = false;
  mutable bool cones_valid_ = false;
};

}  // namespace satpg
