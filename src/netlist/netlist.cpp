#include "netlist/netlist.h"

#include <algorithm>

namespace satpg {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::kInput:
      return "INPUT";
    case GateType::kOutput:
      return "OUTPUT";
    case GateType::kDff:
      return "DFF";
    case GateType::kConst0:
      return "CONST0";
    case GateType::kConst1:
      return "CONST1";
    case GateType::kBuf:
      return "BUF";
    case GateType::kNot:
      return "NOT";
    case GateType::kAnd:
      return "AND";
    case GateType::kNand:
      return "NAND";
    case GateType::kOr:
      return "OR";
    case GateType::kNor:
      return "NOR";
    case GateType::kXor:
      return "XOR";
    case GateType::kXnor:
      return "XNOR";
  }
  return "?";
}

bool is_combinational(GateType t) {
  switch (t) {
    case GateType::kInput:
    case GateType::kOutput:
    case GateType::kDff:
      return false;
    default:
      return true;
  }
}

NodeId Netlist::new_node(GateType t, const std::string& name,
                         std::vector<NodeId> fanins) {
  SATPG_CHECK_MSG(by_name_.find(name) == by_name_.end(),
                  "duplicate node name");
  for (NodeId f : fanins) {
    SATPG_CHECK_MSG(f >= 0 && static_cast<std::size_t>(f) < nodes_.size(),
                    "fanin id out of range");
    SATPG_CHECK_MSG(!nodes_[static_cast<std::size_t>(f)].dead,
                    "fanin references dead node");
  }
  Node n;
  n.type = t;
  n.fanins = std::move(fanins);
  n.name = name;
  if (t == GateType::kDff || t == GateType::kInput || t == GateType::kOutput) {
    n.delay = 0.0;
    n.area = (t == GateType::kDff) ? 4.0 : 0.0;  // FFs dominate area
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  by_name_.emplace(name, id);
  invalidate_caches();
  return id;
}

NodeId Netlist::add_input(const std::string& name) {
  const NodeId id = new_node(GateType::kInput, name, {});
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_output(const std::string& name, NodeId driver) {
  const NodeId id = new_node(GateType::kOutput, name, {driver});
  outputs_.push_back(id);
  return id;
}

NodeId Netlist::add_dff(const std::string& name, NodeId d, FfInit init) {
  const NodeId id = new_node(GateType::kDff, name, {d});
  nodes_[static_cast<std::size_t>(id)].init = init;
  dffs_.push_back(id);
  return id;
}

NodeId Netlist::add_gate(GateType t, const std::string& name,
                         std::vector<NodeId> fanins) {
  SATPG_CHECK_MSG(is_combinational(t) && t != GateType::kConst0 &&
                      t != GateType::kConst1,
                  "add_gate expects a combinational gate type");
  const std::size_t arity = fanins.size();
  if (t == GateType::kBuf || t == GateType::kNot)
    SATPG_CHECK_MSG(arity == 1, "BUF/NOT must have exactly one fanin");
  else
    SATPG_CHECK_MSG(arity >= 2, "multi-input gate needs >= 2 fanins");
  return new_node(t, name, std::move(fanins));
}

NodeId Netlist::add_const(bool value, const std::string& name) {
  return new_node(value ? GateType::kConst1 : GateType::kConst0, name, {});
}

void Netlist::replace_uses(NodeId old_id, NodeId new_id) {
  for (auto& n : nodes_) {
    if (n.dead) continue;
    for (auto& f : n.fanins)
      if (f == old_id) f = new_id;
  }
  invalidate_caches();
}

void Netlist::set_fanin(NodeId node, std::size_t slot, NodeId driver) {
  auto& n = nodes_[static_cast<std::size_t>(node)];
  SATPG_CHECK(slot < n.fanins.size());
  n.fanins[slot] = driver;
  invalidate_caches();
}

void Netlist::kill_node(NodeId id) {
  auto& n = nodes_[static_cast<std::size_t>(id)];
  SATPG_CHECK(!n.dead);
  by_name_.erase(n.name);
  n.dead = true;
  n.fanins.clear();
  n.name.clear();
  auto drop = [id](std::vector<NodeId>& v) {
    v.erase(std::remove(v.begin(), v.end(), id), v.end());
  };
  drop(inputs_);
  drop(outputs_);
  drop(dffs_);
  invalidate_caches();
}

void Netlist::compact() {
  std::vector<NodeId> remap(nodes_.size(), kNoNode);
  std::vector<Node> live;
  live.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].dead) continue;
    remap[i] = static_cast<NodeId>(live.size());
    live.push_back(std::move(nodes_[i]));
  }
  for (auto& n : live)
    for (auto& f : n.fanins) {
      SATPG_CHECK_MSG(remap[static_cast<std::size_t>(f)] != kNoNode,
                      "live node references dead node during compact");
      f = remap[static_cast<std::size_t>(f)];
    }
  auto remap_list = [&remap](std::vector<NodeId>& v) {
    for (auto& id : v) id = remap[static_cast<std::size_t>(id)];
  };
  remap_list(inputs_);
  remap_list(outputs_);
  remap_list(dffs_);
  nodes_ = std::move(live);
  by_name_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    by_name_.emplace(nodes_[i].name, static_cast<NodeId>(i));
  invalidate_caches();
}

std::size_t Netlist::num_gates() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (!node.dead && is_combinational(node.type)) ++n;
  return n;
}

double Netlist::total_area() const {
  double a = 0;
  for (const auto& node : nodes_)
    if (!node.dead && node.type != GateType::kInput &&
        node.type != GateType::kOutput)
      a += node.area;
  return a;
}

NodeId Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoNode : it->second;
}

const std::vector<std::vector<NodeId>>& Netlist::fanouts() const {
  if (!caches_valid_) {
    fanouts_.assign(nodes_.size(), {});
    topo_.clear();
    // fanouts
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const auto& n = nodes_[i];
      if (n.dead) continue;
      for (NodeId f : n.fanins)
        fanouts_[static_cast<std::size_t>(f)].push_back(
            static_cast<NodeId>(i));
    }
    // topo order: Kahn over combinational edges; PIs, consts, DFFs are
    // sources. DFF and OUTPUT nodes are appended after all comb nodes.
    std::vector<int> pending(nodes_.size(), 0);
    std::vector<NodeId> ready;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const auto& n = nodes_[i];
      if (n.dead) continue;
      if (n.type == GateType::kInput || n.type == GateType::kDff ||
          n.type == GateType::kConst0 || n.type == GateType::kConst1) {
        ready.push_back(static_cast<NodeId>(i));
      } else {
        pending[i] = static_cast<int>(n.fanins.size());
        if (pending[i] == 0) ready.push_back(static_cast<NodeId>(i));
      }
    }
    std::size_t live_count = 0;
    for (const auto& n : nodes_)
      if (!n.dead) ++live_count;
    std::vector<NodeId> tail;  // OUTPUT marker nodes, appended last
    std::size_t head = 0;
    while (head < ready.size()) {
      const NodeId id = ready[head++];
      const auto& n = nodes_[static_cast<std::size_t>(id)];
      if (n.type == GateType::kOutput)
        tail.push_back(id);
      else
        topo_.push_back(id);  // DFF/PI/const sources come out first
      for (NodeId s : fanouts_[static_cast<std::size_t>(id)]) {
        const auto& sn = nodes_[static_cast<std::size_t>(s)];
        if (sn.type == GateType::kDff) continue;  // already a source
        if (--pending[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
      }
    }
    for (NodeId id : tail) topo_.push_back(id);
    SATPG_CHECK_MSG(topo_.size() == live_count,
                    "combinational cycle detected in netlist");
    caches_valid_ = true;
  }
  return fanouts_;
}

const std::vector<NodeId>& Netlist::topo_order() const {
  fanouts();  // builds both caches
  return topo_;
}

const std::vector<BitVec>& Netlist::fanout_cones() const {
  if (!cones_valid_ || !caches_valid_) {
    const auto& fo = fanouts();
    cones_.assign(nodes_.size(), BitVec(nodes_.size()));
    // Breadth-first closure per node. The graph is cyclic through DFFs, so
    // a reverse-topological DP would need a fixpoint anyway; direct BFS is
    // simple and the circuits are small enough that O(V*E) is negligible
    // next to one fault-simulation run.
    std::vector<NodeId> work;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].dead) continue;
      BitVec& cone = cones_[i];
      cone.set(i, true);
      work.assign(1, static_cast<NodeId>(i));
      while (!work.empty()) {
        const NodeId id = work.back();
        work.pop_back();
        for (NodeId s : fo[static_cast<std::size_t>(id)]) {
          if (cone.get(static_cast<std::size_t>(s))) continue;
          cone.set(static_cast<std::size_t>(s), true);
          work.push_back(s);
        }
      }
    }
    cones_valid_ = true;
  }
  return cones_;
}

std::optional<std::string> Netlist::validate() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    if (n.dead) continue;
    auto it = by_name_.find(n.name);
    if (it == by_name_.end() || it->second != static_cast<NodeId>(i))
      return "name map inconsistent at node " + n.name;
    const std::size_t arity = n.fanins.size();
    switch (n.type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
        if (arity != 0) return n.name + ": source node with fanins";
        break;
      case GateType::kOutput:
      case GateType::kDff:
      case GateType::kBuf:
      case GateType::kNot:
        if (arity != 1) return n.name + ": expected exactly one fanin";
        break;
      default:
        if (arity < 2) return n.name + ": gate with < 2 fanins";
    }
    for (NodeId f : n.fanins) {
      if (f < 0 || static_cast<std::size_t>(f) >= nodes_.size())
        return n.name + ": fanin out of range";
      if (nodes_[static_cast<std::size_t>(f)].dead)
        return n.name + ": fanin is dead";
      const GateType ft = nodes_[static_cast<std::size_t>(f)].type;
      if (ft == GateType::kOutput) return n.name + ": fans in from OUTPUT";
    }
  }
  // Acyclicity: topo_order CHECK-fails on cycles, so probe via a copy of the
  // same Kahn logic without aborting.
  std::vector<int> pending(nodes_.size(), 0);
  std::vector<NodeId> ready;
  std::size_t live = 0, emitted = 0;
  std::vector<std::vector<NodeId>> fo(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    if (n.dead) continue;
    ++live;
    for (NodeId f : n.fanins) fo[static_cast<std::size_t>(f)].push_back(
        static_cast<NodeId>(i));
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    if (n.dead) continue;
    if (n.type == GateType::kInput || n.type == GateType::kDff ||
        n.type == GateType::kConst0 || n.type == GateType::kConst1 ||
        n.fanins.empty())
      ready.push_back(static_cast<NodeId>(i));
    else
      pending[i] = static_cast<int>(n.fanins.size());
  }
  std::size_t head = 0;
  while (head < ready.size()) {
    const NodeId id = ready[head++];
    ++emitted;
    const auto& n = nodes_[static_cast<std::size_t>(id)];
    if (n.type == GateType::kOutput) continue;
    for (NodeId s : fo[static_cast<std::size_t>(id)]) {
      const auto& sn = nodes_[static_cast<std::size_t>(s)];
      if (sn.type == GateType::kDff) continue;
      if (--pending[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  if (emitted != live) return "combinational cycle present";
  return std::nullopt;
}

Netlist Netlist::clone(const std::string& new_name) const {
  Netlist c(*this);
  c.name_ = new_name;
  return c;
}

void Netlist::invalidate_caches() const {
  caches_valid_ = false;
  cones_valid_ = false;
}

}  // namespace satpg
