// ISCAS-89 ".bench" reader/writer.
//
// The classic interchange format used by the sequential ATPG community:
//
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = DFF(G14)
//   G11 = NAND(G0, G10)
//   ...
//
// DFF initial state is not expressible in .bench; flip-flops read in are
// marked FfInit::kUnknown (the paper's circuits likewise power up unknown
// and rely on an explicit reset input). Gate types supported: AND, NAND,
// OR, NOR, XOR, XNOR, NOT, BUF(F), DFF.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace satpg {

/// Parse .bench text. Throws std::runtime_error with a line-numbered
/// message on malformed input.
Netlist read_bench(std::istream& is, const std::string& name);
Netlist read_bench_string(const std::string& text, const std::string& name);
Netlist read_bench_file(const std::string& path);

/// Serialize; reading the result back yields a structurally identical
/// netlist (up to node numbering).
void write_bench(const Netlist& nl, std::ostream& os);
std::string write_bench_string(const Netlist& nl);

}  // namespace satpg
