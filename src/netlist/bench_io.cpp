#include "netlist/bench_io.h"

#include <cctype>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "base/strutil.h"

namespace satpg {

namespace {

struct PendingGate {
  std::string output;
  std::string func;
  std::vector<std::string> args;
  int line;
};

[[noreturn]] void parse_error(int line, const std::string& msg) {
  throw std::runtime_error("bench parse error at line " +
                           std::to_string(line) + ": " + msg);
}

GateType gate_type_from(const std::string& f, int line) {
  if (f == "AND") return GateType::kAnd;
  if (f == "NAND") return GateType::kNand;
  if (f == "OR") return GateType::kOr;
  if (f == "NOR") return GateType::kNor;
  if (f == "XOR") return GateType::kXor;
  if (f == "XNOR") return GateType::kXnor;
  if (f == "NOT") return GateType::kNot;
  if (f == "BUF" || f == "BUFF") return GateType::kBuf;
  parse_error(line, "unknown gate function '" + f + "'");
}

}  // namespace

Netlist read_bench(std::istream& is, const std::string& name) {
  Netlist nl(name);
  std::vector<std::string> input_names, output_names;
  std::vector<PendingGate> gates;
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    std::string line(trim(raw));
    if (auto hash = line.find('#'); hash != std::string::npos)
      line = std::string(trim(line.substr(0, hash)));
    if (line.empty()) continue;

    auto read_parenthesized = [&](std::string_view head) -> std::string {
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open)
        parse_error(lineno, std::string(head) + ": malformed parentheses");
      return std::string(trim(line.substr(open + 1, close - open - 1)));
    };

    if (starts_with(line, "INPUT")) {
      input_names.push_back(read_parenthesized("INPUT"));
    } else if (starts_with(line, "OUTPUT")) {
      output_names.push_back(read_parenthesized("OUTPUT"));
    } else {
      const auto eq = line.find('=');
      if (eq == std::string::npos) parse_error(lineno, "expected '='");
      PendingGate g;
      g.output = std::string(trim(line.substr(0, eq)));
      g.line = lineno;
      std::string rhs(trim(line.substr(eq + 1)));
      const auto open = rhs.find('(');
      const auto close = rhs.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open)
        parse_error(lineno, "malformed gate right-hand side");
      g.func = std::string(trim(rhs.substr(0, open)));
      for (char& c : g.func) c = static_cast<char>(std::toupper(c));
      for (const auto& a : split(rhs.substr(open + 1, close - open - 1), ','))
        g.args.emplace_back(trim(a));
      if (g.output.empty()) parse_error(lineno, "empty gate output name");
      gates.push_back(std::move(g));
    }
  }

  // .bench names a *signal*; a signal that is also listed in OUTPUT(...)
  // gets an explicit OUTPUT marker node named "<signal>_po".
  std::map<std::string, NodeId> sig;
  for (const auto& in : input_names) sig[in] = nl.add_input(in);

  // DFFs first so combinational gates can reference FF outputs regardless of
  // declaration order; then iterate gates to fixpoint to tolerate any order.
  for (const auto& g : gates)
    if (g.func == "DFF") {
      if (g.args.size() != 1) parse_error(g.line, "DFF needs one argument");
      if (sig.count(g.output)) parse_error(g.line, "signal redefined");
      // D fanin patched after all signals exist; use a placeholder input of
      // itself via two-phase construction below.
      sig[g.output] = kNoNode;  // reserve the name slot
    }

  // Create DFF nodes with a temporary self-driver, patched later.
  std::map<std::string, const PendingGate*> dff_of;
  for (const auto& g : gates)
    if (g.func == "DFF") dff_of[g.output] = &g;
  // Temporary: DFFs need an existing driver at construction; create them
  // after combinational nodes exist. Instead, build comb gates iteratively,
  // allowing references to DFF names via a proxy map resolved at the end.
  // Simpler scheme: create all DFF nodes now fed by a dummy const that we
  // patch afterwards.
  NodeId dummy = kNoNode;
  if (!dff_of.empty()) dummy = nl.add_const(false, "__bench_dummy");
  for (auto& [name_, g] : dff_of)
    sig[name_] = nl.add_dff(name_, dummy, FfInit::kUnknown);

  // Combinational gates: iterate until all are resolvable (tolerates
  // forward references between gates).
  std::vector<const PendingGate*> todo;
  for (const auto& g : gates)
    if (g.func != "DFF") todo.push_back(&g);
  bool progress = true;
  while (!todo.empty() && progress) {
    progress = false;
    std::vector<const PendingGate*> next;
    for (const auto* g : todo) {
      bool ok = true;
      std::vector<NodeId> fanins;
      for (const auto& a : g->args) {
        auto it = sig.find(a);
        if (it == sig.end() || it->second == kNoNode) {
          ok = false;
          break;
        }
        fanins.push_back(it->second);
      }
      if (!ok) {
        next.push_back(g);
        continue;
      }
      if (sig.count(g->output) && sig[g->output] != kNoNode)
        parse_error(g->line, "signal '" + g->output + "' redefined");
      sig[g->output] =
          nl.add_gate(gate_type_from(g->func, g->line), g->output,
                      std::move(fanins));
      progress = true;
    }
    todo.swap(next);
  }
  if (!todo.empty())
    parse_error(todo.front()->line,
                "unresolved fanin '" + todo.front()->args.front() + "'");

  // Patch DFF D inputs.
  for (const auto& [name_, g] : dff_of) {
    auto it = sig.find(g->args.front());
    if (it == sig.end() || it->second == kNoNode)
      parse_error(g->line, "DFF fanin '" + g->args.front() + "' undefined");
    nl.set_fanin(sig[name_], 0, it->second);
  }
  if (dummy != kNoNode) nl.kill_node(dummy);

  for (const auto& out : output_names) {
    auto it = sig.find(out);
    if (it == sig.end())
      throw std::runtime_error("bench: OUTPUT(" + out + ") never defined");
    nl.add_output(out + "_po", it->second);
  }
  nl.compact();
  if (auto err = nl.validate())
    throw std::runtime_error("bench: invalid netlist: " + *err);
  return nl;
}

Netlist read_bench_string(const std::string& text, const std::string& name) {
  std::istringstream is(text);
  return read_bench(is, name);
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  return read_bench(is, path);
}

void write_bench(const Netlist& nl, std::ostream& os) {
  os << "# " << nl.name() << "\n";
  for (NodeId id : nl.inputs()) os << "INPUT(" << nl.node(id).name << ")\n";
  for (NodeId id : nl.outputs()) {
    const auto& n = nl.node(id);
    os << "OUTPUT(" << nl.node(n.fanins[0]).name << ")\n";
  }
  os << "\n";
  for (NodeId id : nl.topo_order()) {
    const auto& n = nl.node(id);
    switch (n.type) {
      case GateType::kInput:
      case GateType::kOutput:
        break;
      case GateType::kDff:
        os << n.name << " = DFF(" << nl.node(n.fanins[0]).name << ")\n";
        break;
      case GateType::kConst0:
        // .bench has no consts; emit XOR(x,x)-free workaround: a 0 constant
        // as AND of an input with its inverse is wasteful — instead emit a
        // comment and a self-evident gate. Constants only appear in
        // intermediate netlists; synthesized circuits are const-free.
        os << "# const0 " << n.name << " emitted as comment only\n";
        break;
      case GateType::kConst1:
        os << "# const1 " << n.name << " emitted as comment only\n";
        break;
      default: {
        os << n.name << " = ";
        switch (n.type) {
          case GateType::kBuf:
            os << "BUFF";
            break;
          case GateType::kNot:
            os << "NOT";
            break;
          case GateType::kAnd:
            os << "AND";
            break;
          case GateType::kNand:
            os << "NAND";
            break;
          case GateType::kOr:
            os << "OR";
            break;
          case GateType::kNor:
            os << "NOR";
            break;
          case GateType::kXor:
            os << "XOR";
            break;
          case GateType::kXnor:
            os << "XNOR";
            break;
          default:
            break;
        }
        os << "(";
        for (std::size_t i = 0; i < n.fanins.size(); ++i) {
          if (i) os << ", ";
          os << nl.node(n.fanins[i]).name;
        }
        os << ")\n";
      }
    }
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(nl, os);
  return os.str();
}

}  // namespace satpg
