// State-transition-graph extraction: recover a symbolic FSM from a
// synthesized gate-level netlist by explicit traversal (the inverse of the
// synthesis flow, for small machines).
//
// Starting from a given state code (by convention the reset code reached
// by asserting the circuit's reset line for one cycle), every reachable
// state is expanded over the netlist's input space. Exhaustive input
// enumeration is exponential in PIs, so callers pass `probe_inputs` —
// which input indices to enumerate — and fixed values for the rest; the
// generated control FSMs examine 1-3 inputs per state, making a modest
// probe set exact for them. Primarily a verification aid: the test suite
// extracts the STG of a synthesized circuit and replays it against the
// source FSM.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "base/bitvec.h"
#include "netlist/netlist.h"
#include "sim/value.h"

namespace satpg {

struct ExtractedStg {
  /// Dense state ids in discovery order; code per state.
  std::vector<BitVec> states;
  /// (state, input-assignment) -> (next state id, PO values).
  struct Edge {
    int from;
    BitVec input;  ///< over probe inputs only (bit i = probe_inputs[i])
    int to;
    std::vector<V3> outputs;
  };
  std::vector<Edge> edges;
  bool truncated = false;  ///< hit the state cap
};

struct StgExtractOptions {
  std::vector<std::size_t> probe_inputs;  ///< PI indices to enumerate
  std::vector<V3> fixed_inputs;           ///< value per PI when not probed
  std::size_t max_states = 4096;
};

/// Extract from a known start state (code over nl.dffs()).
ExtractedStg extract_stg(const Netlist& nl, const BitVec& start,
                         const StgExtractOptions& opts);

}  // namespace satpg
