// Symbolic finite state machine (state-transition-table form).
//
// Mirrors the KISS2 view of an FSM used by the MCNC benchmarks and by SIS:
// a Mealy machine whose transitions are input *cubes* (each input bit is
// 0, 1, or '-') from a symbolic present state to a symbolic next state with
// an output cube (each output bit 0, 1, or '-').
//
// Semantics: for a present state and a fully-specified input vector, the
// first transition whose cube matches determines next state and outputs.
// Machines used by the study are deterministic and completely specified
// (check_complete/check_deterministic verify this); KISS2 benchmarks with
// unspecified behaviour simulate to X outputs / unchanged state.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/bitvec.h"
#include "base/rng.h"
#include "sim/value.h"

namespace satpg {

/// A positional cube over n bits; care[i]=0 means '-' at position i.
struct Cube {
  BitVec value;  ///< bit values where care
  BitVec care;   ///< which bits are specified

  static Cube all_dontcare(std::size_t n) {
    return {BitVec(n), BitVec(n)};
  }
  static Cube from_string(const std::string& s);  ///< '0'/'1'/'-', MSB first

  std::size_t size() const { return care.size(); }

  bool matches(const BitVec& bits) const {
    SATPG_DCHECK(bits.size() == care.size());
    return ((bits ^ value) & care).none();
  }

  /// Do two cubes intersect (share at least one minterm)?
  bool intersects(const Cube& o) const {
    return ((value ^ o.value) & care & o.care).none();
  }

  std::string to_string() const;  ///< '0'/'1'/'-', MSB first
};

struct FsmTransition {
  Cube input;      ///< over num_inputs bits
  int from = 0;    ///< present-state index
  int to = 0;      ///< next-state index
  Cube output;     ///< over num_outputs bits
};

class Fsm {
 public:
  Fsm(std::string name, int num_inputs, int num_outputs);

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }
  int num_states() const { return static_cast<int>(state_names_.size()); }

  int add_state(const std::string& name);
  int find_state(const std::string& name) const;  ///< -1 when absent
  const std::string& state_name(int s) const { return state_names_[s]; }

  int reset_state() const { return reset_state_; }
  void set_reset_state(int s);

  void add_transition(FsmTransition t);
  const std::vector<FsmTransition>& transitions() const {
    return transitions_;
  }

  /// Transitions leaving state s (indices into transitions()).
  const std::vector<int>& transitions_from(int s) const;

  /// Step the machine: (state, input vector) -> (next state, outputs).
  /// Unspecified input combinations return state unchanged and X outputs
  /// (out[i] = kX); unspecified output bits are X.
  struct StepResult {
    int next_state;
    std::vector<V3> outputs;
    bool specified;  ///< false when no transition matched
  };
  StepResult step(int state, const BitVec& input) const;

  /// Every (state, input minterm) covered by at least one transition?
  /// Verified symbolically per state by cube-cover tautology, not by
  /// enumerating 2^num_inputs vectors.
  bool check_complete() const;

  /// No two overlapping cubes from one state disagree on next state or on a
  /// commonly-cared output bit?
  bool check_deterministic() const;

  /// States reachable from the reset state following any transition edge.
  std::vector<bool> reachable_states() const;

 private:
  std::string name_;
  int num_inputs_;
  int num_outputs_;
  std::vector<std::string> state_names_;
  int reset_state_ = 0;
  std::vector<FsmTransition> transitions_;
  mutable std::vector<std::vector<int>> from_index_;  // lazy
  mutable bool index_valid_ = false;
};

/// Cover-tautology helper: do the given input cubes cover the whole input
/// space? (Shannon expansion with unate shortcuts; exposed for tests.)
bool cubes_cover_everything(const std::vector<Cube>& cubes,
                            std::size_t num_bits);

}  // namespace satpg
