#include "fsm/fsm.h"

#include <algorithm>

namespace satpg {

Cube Cube::from_string(const std::string& s) {
  Cube c;
  c.value = BitVec(s.size());
  c.care = BitVec(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char ch = s[s.size() - 1 - i];
    switch (ch) {
      case '0':
        c.care.set(i, true);
        break;
      case '1':
        c.care.set(i, true);
        c.value.set(i, true);
        break;
      case '-':
        break;
      default:
        SATPG_CHECK_MSG(false, "Cube::from_string: bad char");
    }
  }
  return c;
}

std::string Cube::to_string() const {
  std::string s(size(), '-');
  for (std::size_t i = 0; i < size(); ++i)
    if (care.get(i)) s[size() - 1 - i] = value.get(i) ? '1' : '0';
  return s;
}

Fsm::Fsm(std::string name, int num_inputs, int num_outputs)
    : name_(std::move(name)),
      num_inputs_(num_inputs),
      num_outputs_(num_outputs) {
  SATPG_CHECK(num_inputs >= 0 && num_outputs >= 0);
}

int Fsm::add_state(const std::string& name) {
  SATPG_CHECK_MSG(find_state(name) < 0, "duplicate state name");
  state_names_.push_back(name);
  index_valid_ = false;
  return num_states() - 1;
}

int Fsm::find_state(const std::string& name) const {
  for (int i = 0; i < num_states(); ++i)
    if (state_names_[static_cast<std::size_t>(i)] == name) return i;
  return -1;
}

void Fsm::set_reset_state(int s) {
  SATPG_CHECK(s >= 0 && s < num_states());
  reset_state_ = s;
}

void Fsm::add_transition(FsmTransition t) {
  SATPG_CHECK(t.from >= 0 && t.from < num_states());
  SATPG_CHECK(t.to >= 0 && t.to < num_states());
  SATPG_CHECK(t.input.size() == static_cast<std::size_t>(num_inputs_));
  SATPG_CHECK(t.output.size() == static_cast<std::size_t>(num_outputs_));
  transitions_.push_back(std::move(t));
  index_valid_ = false;
}

const std::vector<int>& Fsm::transitions_from(int s) const {
  if (!index_valid_) {
    from_index_.assign(static_cast<std::size_t>(num_states()), {});
    for (std::size_t i = 0; i < transitions_.size(); ++i)
      from_index_[static_cast<std::size_t>(transitions_[i].from)].push_back(
          static_cast<int>(i));
    index_valid_ = true;
  }
  return from_index_[static_cast<std::size_t>(s)];
}

Fsm::StepResult Fsm::step(int state, const BitVec& input) const {
  SATPG_CHECK(input.size() == static_cast<std::size_t>(num_inputs_));
  for (int ti : transitions_from(state)) {
    const auto& t = transitions_[static_cast<std::size_t>(ti)];
    if (!t.input.matches(input)) continue;
    StepResult r;
    r.next_state = t.to;
    r.specified = true;
    r.outputs.resize(static_cast<std::size_t>(num_outputs_), V3::kX);
    for (int b = 0; b < num_outputs_; ++b)
      if (t.output.care.get(static_cast<std::size_t>(b)))
        r.outputs[static_cast<std::size_t>(b)] =
            t.output.value.get(static_cast<std::size_t>(b)) ? V3::kOne
                                                            : V3::kZero;
    return r;
  }
  StepResult r;
  r.next_state = state;
  r.specified = false;
  r.outputs.assign(static_cast<std::size_t>(num_outputs_), V3::kX);
  return r;
}

namespace {

// Recursive cover-tautology over input cubes: true iff the cubes cover all
// 2^n minterms. Splits on the most-bound variable; prunes with the classic
// unate checks.
bool tautology_rec(std::vector<Cube> cubes, std::size_t num_bits,
                   std::size_t depth) {
  // A cube with no cared bit covers everything.
  for (const auto& c : cubes)
    if (c.care.none()) return true;
  if (cubes.empty()) return false;

  // Pick the variable appearing (cared) in the most cubes.
  std::vector<int> freq(num_bits, 0);
  for (const auto& c : cubes)
    for (std::size_t b = c.care.find_first(); b < num_bits;
         b = c.care.find_next(b))
      ++freq[b];
  std::size_t var = 0;
  int best = -1;
  for (std::size_t b = 0; b < num_bits; ++b)
    if (freq[b] > best) {
      best = freq[b];
      var = b;
    }
  if (best <= 0) return false;  // no cared vars and no full cube
  SATPG_CHECK_MSG(depth <= num_bits, "tautology recursion depth exceeded");

  for (int phase = 0; phase < 2; ++phase) {
    std::vector<Cube> cof;
    cof.reserve(cubes.size());
    const bool v = phase == 1;
    for (const auto& c : cubes) {
      if (c.care.get(var)) {
        if (c.value.get(var) != v) continue;  // cube absent in this cofactor
        Cube r = c;
        r.care.set(var, false);
        r.value.set(var, false);
        cof.push_back(std::move(r));
      } else {
        cof.push_back(c);
      }
    }
    if (!tautology_rec(std::move(cof), num_bits, depth + 1)) return false;
  }
  return true;
}

}  // namespace

bool cubes_cover_everything(const std::vector<Cube>& cubes,
                            std::size_t num_bits) {
  return tautology_rec(cubes, num_bits, 0);
}

bool Fsm::check_complete() const {
  for (int s = 0; s < num_states(); ++s) {
    std::vector<Cube> cubes;
    for (int ti : transitions_from(s))
      cubes.push_back(transitions_[static_cast<std::size_t>(ti)].input);
    if (!cubes_cover_everything(cubes,
                                static_cast<std::size_t>(num_inputs_)))
      return false;
  }
  return true;
}

bool Fsm::check_deterministic() const {
  for (int s = 0; s < num_states(); ++s) {
    const auto& idx = transitions_from(s);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      for (std::size_t j = i + 1; j < idx.size(); ++j) {
        const auto& a = transitions_[static_cast<std::size_t>(idx[i])];
        const auto& b = transitions_[static_cast<std::size_t>(idx[j])];
        if (!a.input.intersects(b.input)) continue;
        if (a.to != b.to) return false;
        // Output bits cared by both must agree.
        const BitVec both = a.output.care & b.output.care;
        if (((a.output.value ^ b.output.value) & both).any()) return false;
      }
    }
  }
  return true;
}

std::vector<bool> Fsm::reachable_states() const {
  std::vector<bool> seen(static_cast<std::size_t>(num_states()), false);
  std::vector<int> stack{reset_state_};
  seen[static_cast<std::size_t>(reset_state_)] = true;
  while (!stack.empty()) {
    const int s = stack.back();
    stack.pop_back();
    for (int ti : transitions_from(s)) {
      const int t = transitions_[static_cast<std::size_t>(ti)].to;
      if (!seen[static_cast<std::size_t>(t)]) {
        seen[static_cast<std::size_t>(t)] = true;
        stack.push_back(t);
      }
    }
  }
  return seen;
}

}  // namespace satpg
