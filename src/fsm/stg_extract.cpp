#include "fsm/stg_extract.h"

#include "sim/simulator.h"

namespace satpg {

ExtractedStg extract_stg(const Netlist& nl, const BitVec& start,
                         const StgExtractOptions& opts) {
  SATPG_CHECK(start.size() == nl.num_dffs());
  SATPG_CHECK(opts.fixed_inputs.size() == nl.num_inputs());
  SATPG_CHECK_MSG(opts.probe_inputs.size() <= 20,
                  "extract_stg: too many probe inputs");

  ExtractedStg out;
  std::map<std::string, int> id_of;
  std::vector<int> frontier;
  auto intern = [&](const BitVec& code) {
    auto [it, inserted] = id_of.emplace(code.to_string(),
                                        static_cast<int>(out.states.size()));
    if (inserted) {
      out.states.push_back(code);
      frontier.push_back(it->second);
    }
    return it->second;
  };

  SeqSimulator sim(nl);
  intern(start);
  const std::size_t combos = 1ULL << opts.probe_inputs.size();
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const int s = frontier[head];
    if (out.states.size() > opts.max_states) {
      out.truncated = true;
      break;
    }
    for (std::size_t m = 0; m < combos; ++m) {
      // State and inputs for this probe.
      std::vector<V3> st(nl.num_dffs());
      for (std::size_t b = 0; b < st.size(); ++b)
        st[b] = out.states[static_cast<std::size_t>(s)].get(b) ? V3::kOne
                                                               : V3::kZero;
      sim.set_state(st);
      std::vector<V3> in = opts.fixed_inputs;
      BitVec probe(opts.probe_inputs.size());
      for (std::size_t k = 0; k < opts.probe_inputs.size(); ++k) {
        const bool bit = (m >> k) & 1u;
        probe.set(k, bit);
        in[opts.probe_inputs[k]] = bit ? V3::kOne : V3::kZero;
      }
      const auto po = sim.eval_outputs(in);
      const auto ns = sim.next_state();
      BitVec code(nl.num_dffs());
      bool known = true;
      for (std::size_t b = 0; b < ns.size(); ++b) {
        if (ns[b] == V3::kX) {
          known = false;
          break;
        }
        code.set(b, ns[b] == V3::kOne);
      }
      SATPG_CHECK_MSG(known, "extract_stg: X next state from a full state");
      const int to = intern(code);
      out.edges.push_back({s, probe, to, po});
    }
  }
  return out;
}

}  // namespace satpg
