#include "fsm/mcnc_suite.h"

#include <algorithm>

#include "base/logging.h"
#include "fsm/minimize.h"

namespace satpg {

namespace {

// One decision-tree leaf before materialization.
struct Leaf {
  Cube input;  // over all inputs; cares only the tree variables
  int to;
  BitVec out;
};

// Build a full decision tree over `vars` with 2^|vars| leaves.
std::vector<Cube> tree_cubes(int num_inputs, const std::vector<int>& vars) {
  const std::size_t leaves = 1ULL << vars.size();
  std::vector<Cube> cubes;
  cubes.reserve(leaves);
  for (std::size_t m = 0; m < leaves; ++m) {
    Cube c = Cube::all_dontcare(static_cast<std::size_t>(num_inputs));
    for (std::size_t i = 0; i < vars.size(); ++i) {
      c.care.set(static_cast<std::size_t>(vars[i]), true);
      c.value.set(static_cast<std::size_t>(vars[i]), (m >> i) & 1);
    }
    cubes.push_back(std::move(c));
  }
  return cubes;
}

// Mutable working form of the machine during generation/repair.
struct Work {
  int ni, no, ns;
  std::vector<std::vector<Leaf>> leaves;  // per state

  Fsm materialize(const std::string& name) const {
    Fsm fsm(name, ni, no);
    for (int s = 0; s < ns; ++s) fsm.add_state("s" + std::to_string(s));
    fsm.set_reset_state(0);
    for (int s = 0; s < ns; ++s) {
      for (const auto& leaf : leaves[static_cast<std::size_t>(s)]) {
        FsmTransition t;
        t.input = leaf.input;
        t.from = s;
        t.to = leaf.to;
        t.output.value = leaf.out;
        t.output.care = BitVec(static_cast<std::size_t>(no));
        t.output.care.set_all();
        fsm.add_transition(std::move(t));
      }
    }
    return fsm;
  }
};

// Random next state biased toward a locality window plus the reset state —
// gives the transition graphs the hub-and-cluster shape of real control
// FSMs instead of a uniform random digraph.
int pick_next_state(Rng& rng, int from, int ns) {
  const double r = rng.next_double();
  if (r < 0.15) return 0;  // back to reset/idle
  if (r < 0.55) {
    const int window = std::max(2, ns / 6);
    int d = rng.next_int(1, window);
    if (rng.next_bool()) d = -d;
    return ((from + d) % ns + ns) % ns;
  }
  return rng.next_int(0, ns - 1);
}

Work generate_raw(const FsmGenSpec& spec, Rng& rng, int ns) {
  Work w;
  w.ni = spec.num_inputs;
  w.no = spec.num_outputs;
  w.ns = ns;
  w.leaves.resize(static_cast<std::size_t>(ns));

  // Per-state Moore-ish base output pattern.
  std::vector<BitVec> base(static_cast<std::size_t>(ns));
  for (auto& b : base) {
    b = BitVec(static_cast<std::size_t>(spec.num_outputs));
    for (std::size_t i = 0; i < b.size(); ++i) b.set(i, rng.next_bool());
  }

  for (int s = 0; s < ns; ++s) {
    // 1-3 decision variables, distinct, chosen from the inputs.
    const int d = std::min(spec.num_inputs, rng.next_int(1, 3));
    std::vector<int> vars;
    while (static_cast<int>(vars.size()) < d) {
      const int v = rng.next_int(0, spec.num_inputs - 1);
      if (std::find(vars.begin(), vars.end(), v) == vars.end())
        vars.push_back(v);
    }
    for (auto& cube : tree_cubes(spec.num_inputs, vars)) {
      Leaf leaf;
      leaf.input = std::move(cube);
      leaf.to = pick_next_state(rng, s, ns);
      leaf.out = base[static_cast<std::size_t>(s)];
      // Mealy flavour: occasionally flip an output bit per leaf.
      if (spec.num_outputs > 0 && rng.next_bernoulli(0.3)) {
        const auto bit =
            static_cast<std::size_t>(rng.next_int(0, spec.num_outputs - 1));
        leaf.out.set(bit, !leaf.out.get(bit));
      }
      w.leaves[static_cast<std::size_t>(s)].push_back(std::move(leaf));
    }
  }
  return w;
}

// Redirect leaves until every state is reachable from state 0.
void repair_reachability(Work& w, Rng& rng) {
  for (int guard = 0; guard < 10000; ++guard) {
    // BFS over leaf targets.
    std::vector<bool> seen(static_cast<std::size_t>(w.ns), false);
    std::vector<int> stack{0};
    seen[0] = true;
    while (!stack.empty()) {
      const int s = stack.back();
      stack.pop_back();
      for (const auto& leaf : w.leaves[static_cast<std::size_t>(s)])
        if (!seen[static_cast<std::size_t>(leaf.to)]) {
          seen[static_cast<std::size_t>(leaf.to)] = true;
          stack.push_back(leaf.to);
        }
    }
    int missing = -1;
    for (int s = 0; s < w.ns; ++s)
      if (!seen[static_cast<std::size_t>(s)]) {
        missing = s;
        break;
      }
    if (missing < 0) return;
    // Redirect a random leaf of a random reachable state to `missing`.
    for (;;) {
      const int s = rng.next_int(0, w.ns - 1);
      if (!seen[static_cast<std::size_t>(s)]) continue;
      auto& ls = w.leaves[static_cast<std::size_t>(s)];
      ls[static_cast<std::size_t>(rng.next_int(
             0, static_cast<int>(ls.size()) - 1))]
          .to = missing;
      break;
    }
  }
  SATPG_CHECK_MSG(false, "repair_reachability did not converge");
}

}  // namespace

Fsm generate_control_fsm(const FsmGenSpec& spec) {
  SATPG_CHECK(spec.minimal_states >= 1);
  SATPG_CHECK(spec.padded_states >= spec.minimal_states);
  SATPG_CHECK(spec.num_inputs >= 1);
  Rng rng(spec.seed ^ 0xa77e57u);

  // Phase 1: a minimal machine with exactly `minimal_states` classes.
  Work w;
  for (int attempt = 0;; ++attempt) {
    SATPG_CHECK_MSG(attempt < 400, "generate_control_fsm: no minimal machine");
    w = generate_raw(spec, rng, spec.minimal_states);
    repair_reachability(w, rng);
    Fsm probe = w.materialize(spec.name);
    if (fsm_num_equivalence_classes(probe) == spec.minimal_states) break;
    // Perturb-by-regenerate: the RNG advances, so the next attempt differs.
  }

  // Phase 2: pad with behaviourally-equivalent duplicate states, each made
  // reachable by redirecting one edge that previously targeted the twin
  // (sound: the duplicate is equivalent, so redirects preserve behaviour).
  // A redirect can orphan some other state (e.g. steal an earlier
  // duplicate's only in-edge), so each candidate is validated with a full
  // reachability sweep and undone if it breaks anything.
  auto all_reachable = [](const Work& work) {
    std::vector<bool> seen(static_cast<std::size_t>(work.ns), false);
    std::vector<int> stack{0};
    seen[0] = true;
    while (!stack.empty()) {
      const int s = stack.back();
      stack.pop_back();
      for (const auto& leaf : work.leaves[static_cast<std::size_t>(s)])
        if (!seen[static_cast<std::size_t>(leaf.to)]) {
          seen[static_cast<std::size_t>(leaf.to)] = true;
          stack.push_back(leaf.to);
        }
    }
    for (int s = 0; s < work.ns; ++s)
      if (!seen[static_cast<std::size_t>(s)]) return false;
    return true;
  };

  const int extra = spec.padded_states - spec.minimal_states;
  int pad_attempts = 0;
  for (int e = 0; e < extra; ++e) {
    SATPG_CHECK_MSG(++pad_attempts < 1000 + 50 * extra,
                    "generate_control_fsm: padding did not converge");
    const int twin = rng.next_int(0, w.ns - 1);
    const int dup = w.ns++;
    w.leaves.push_back(w.leaves[static_cast<std::size_t>(twin)]);
    // Try random edges into `twin`; accept the first redirect that keeps
    // every state reachable.
    bool redirected = false;
    for (int guard = 0; guard < 2000 && !redirected; ++guard) {
      const int s = rng.next_int(0, w.ns - 1);
      if (s == dup) continue;
      auto& ls = w.leaves[static_cast<std::size_t>(s)];
      auto& leaf = ls[static_cast<std::size_t>(
          rng.next_int(0, static_cast<int>(ls.size()) - 1))];
      if (leaf.to != twin) continue;
      leaf.to = dup;
      if (all_reachable(w))
        redirected = true;
      else
        leaf.to = twin;  // undo and keep searching
    }
    if (!redirected) {
      // No workable edge for this twin; drop the duplicate and try a
      // different twin on the next attempt.
      --w.ns;
      w.leaves.pop_back();
      --e;
    }
  }

  Fsm fsm = w.materialize(spec.name);
  SATPG_CHECK(fsm.check_complete());
  SATPG_CHECK(fsm.check_deterministic());
  const auto reach = fsm.reachable_states();
  for (int s = 0; s < fsm.num_states(); ++s)
    SATPG_CHECK_MSG(reach[static_cast<std::size_t>(s)],
                    "generated FSM has unreachable state");
  SATPG_CHECK(fsm_num_equivalence_classes(fsm) == spec.minimal_states);
  SATPG_CHECK(fsm.num_states() == spec.padded_states);
  return fsm;
}

std::vector<FsmGenSpec> mcnc_specs() {
  // name, PI, PO, minimized classes, raw file states (paper Table 1; class
  // counts per Table 6's original-circuit valid states).
  return {
      {"dk16", 3, 3, 27, 27, 0xd16u},
      {"pma", 7, 8, 27, 27, 0x93au},
      {"s510", 20, 7, 47, 47, 0x510u},
      {"s820", 18, 19, 24, 25, 0x820u},
      {"s832", 18, 19, 24, 25, 0x832u},
      {"scf", 27, 54, 94, 121, 0x5cfu},
  };
}

Fsm mcnc_fsm(const std::string& name) {
  for (const auto& spec : mcnc_specs())
    if (spec.name == name) return generate_control_fsm(spec);
  SATPG_CHECK_MSG(false, "mcnc_fsm: unknown machine name");
  return Fsm("", 0, 0);
}

FsmGenSpec scaled_spec(const FsmGenSpec& spec, double scale) {
  FsmGenSpec s = spec;
  auto shrink = [scale](int v, int floor_v) {
    return std::max(floor_v, static_cast<int>(v * scale + 0.5));
  };
  s.num_inputs = shrink(spec.num_inputs, 1);
  s.num_outputs = shrink(spec.num_outputs, 1);
  s.minimal_states = shrink(spec.minimal_states, 2);
  s.padded_states = std::max(s.minimal_states, shrink(spec.padded_states, 2));
  return s;
}

}  // namespace satpg
