// FSM state minimization (the study's `stamina` substitute).
//
// For the completely-specified, deterministic machines used in this study
// this is exact equivalence-class minimization (Paull-Unger pair marking
// over transition cubes — no 2^n input enumeration). Incompletely specified
// machines are handled conservatively: only pairs whose specified behaviour
// provably agrees everywhere are merged, which is sound but not the NP-hard
// optimal cover.
#pragma once

#include <vector>

#include "fsm/fsm.h"

namespace satpg {

/// Equivalence-class id per state (ids are dense, 0-based; representatives
/// keep the lowest state index in their class).
std::vector<int> fsm_equivalence_classes(const Fsm& fsm);

/// Number of distinct classes (reachability is NOT considered here).
int fsm_num_equivalence_classes(const Fsm& fsm);

/// Build the minimized machine: unreachable states dropped, each
/// equivalence class collapsed to its representative.
Fsm minimize_fsm(const Fsm& fsm);

}  // namespace satpg
