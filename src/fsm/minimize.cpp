#include "fsm/minimize.h"

#include <algorithm>

namespace satpg {

namespace {

// Pair-table index for s < t.
inline std::size_t pair_index(int s, int t, int n) {
  SATPG_DCHECK(s < t);
  return static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(t);
}

}  // namespace

std::vector<int> fsm_equivalence_classes(const Fsm& fsm) {
  const int n = fsm.num_states();
  // distinguishable[s][t] for s<t.
  std::vector<bool> dist(static_cast<std::size_t>(n) *
                             static_cast<std::size_t>(n),
                         false);

  // Initial marking: a pair is distinguishable if some intersecting cube
  // pair disagrees on an output bit cared by both, or if one machine's
  // specified region is not matched (treated as distinguishable only when
  // outputs conflict — conservative for incomplete machines).
  auto outputs_conflict = [&](const FsmTransition& a, const FsmTransition& b) {
    const BitVec both = a.output.care & b.output.care;
    return ((a.output.value ^ b.output.value) & both).any();
  };

  for (int s = 0; s < n; ++s) {
    for (int t = s + 1; t < n; ++t) {
      bool marked = false;
      for (int ai : fsm.transitions_from(s)) {
        const auto& a = fsm.transitions()[static_cast<std::size_t>(ai)];
        for (int bi : fsm.transitions_from(t)) {
          const auto& b = fsm.transitions()[static_cast<std::size_t>(bi)];
          if (!a.input.intersects(b.input)) continue;
          if (outputs_conflict(a, b)) {
            marked = true;
            break;
          }
        }
        if (marked) break;
      }
      if (marked) dist[pair_index(s, t, n)] = true;
    }
  }

  // Refinement to fixpoint: (s,t) distinguishable if some intersecting cube
  // pair leads to a distinguishable successor pair.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < n; ++s) {
      for (int t = s + 1; t < n; ++t) {
        if (dist[pair_index(s, t, n)]) continue;
        bool marked = false;
        for (int ai : fsm.transitions_from(s)) {
          const auto& a = fsm.transitions()[static_cast<std::size_t>(ai)];
          for (int bi : fsm.transitions_from(t)) {
            const auto& b = fsm.transitions()[static_cast<std::size_t>(bi)];
            if (!a.input.intersects(b.input)) continue;
            const int u = std::min(a.to, b.to);
            const int v = std::max(a.to, b.to);
            if (u != v && dist[pair_index(u, v, n)]) {
              marked = true;
              break;
            }
          }
          if (marked) break;
        }
        if (marked) {
          dist[pair_index(s, t, n)] = true;
          changed = true;
        }
      }
    }
  }

  // Union undistinguished pairs into classes (equivalence is transitive for
  // complete deterministic machines).
  std::vector<int> cls(static_cast<std::size_t>(n), -1);
  int next_class = 0;
  for (int s = 0; s < n; ++s) {
    if (cls[static_cast<std::size_t>(s)] >= 0) continue;
    cls[static_cast<std::size_t>(s)] = next_class;
    for (int t = s + 1; t < n; ++t)
      if (cls[static_cast<std::size_t>(t)] < 0 && !dist[pair_index(s, t, n)])
        cls[static_cast<std::size_t>(t)] = next_class;
    ++next_class;
  }
  return cls;
}

int fsm_num_equivalence_classes(const Fsm& fsm) {
  const auto cls = fsm_equivalence_classes(fsm);
  return cls.empty() ? 0 : 1 + *std::max_element(cls.begin(), cls.end());
}

Fsm minimize_fsm(const Fsm& fsm) {
  const auto cls = fsm_equivalence_classes(fsm);
  const auto reach = fsm.reachable_states();
  const int n = fsm.num_states();

  // Representative per class = lowest reachable state index in the class.
  const int num_cls =
      cls.empty() ? 0 : 1 + *std::max_element(cls.begin(), cls.end());
  std::vector<int> rep(static_cast<std::size_t>(num_cls), -1);
  for (int s = 0; s < n; ++s) {
    if (!reach[static_cast<std::size_t>(s)]) continue;
    int& r = rep[static_cast<std::size_t>(cls[static_cast<std::size_t>(s)])];
    if (r < 0) r = s;
  }

  Fsm out(fsm.name() + ".min", fsm.num_inputs(), fsm.num_outputs());
  std::vector<int> new_id(static_cast<std::size_t>(num_cls), -1);
  for (int c = 0; c < num_cls; ++c)
    if (rep[static_cast<std::size_t>(c)] >= 0)
      new_id[static_cast<std::size_t>(c)] = out.add_state(
          fsm.state_name(rep[static_cast<std::size_t>(c)]));

  for (int c = 0; c < num_cls; ++c) {
    const int r = rep[static_cast<std::size_t>(c)];
    if (r < 0) continue;
    for (int ti : fsm.transitions_from(r)) {
      FsmTransition t = fsm.transitions()[static_cast<std::size_t>(ti)];
      t.from = new_id[static_cast<std::size_t>(c)];
      const int target_cls = cls[static_cast<std::size_t>(t.to)];
      const int nid = new_id[static_cast<std::size_t>(target_cls)];
      SATPG_CHECK_MSG(nid >= 0,
                      "minimize_fsm: reachable state targets dropped class");
      t.to = nid;
      out.add_transition(std::move(t));
    }
  }
  const int reset_cls = cls[static_cast<std::size_t>(fsm.reset_state())];
  out.set_reset_state(new_id[static_cast<std::size_t>(reset_cls)]);
  return out;
}

}  // namespace satpg
