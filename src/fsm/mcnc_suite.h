// Synthetic MCNC-suite substitute (see DESIGN.md §2).
//
// The paper synthesizes from six MCNC FSM benchmarks; those KISS2 files are
// not shipped here, so this generator produces deterministic "control
// logic"-shaped machines with the exact PI/PO/state dimensions of the
// paper's Table 1. Each state's behaviour is a small decision tree over
// 1-3 input variables (control logic examines few inputs per state), so
// transitions are wide cubes exactly as in the real benchmarks.
//
// Guarantees (enforced by a repair loop + the minimizer):
//   * completely specified and deterministic,
//   * all states reachable from the reset state,
//   * exactly `minimal_states` equivalence classes,
//   * `padded_states - minimal_states` extra states that are behaviourally
//     equivalent duplicates — these model the redundancy that the paper's
//     stamina pass removes (s820/s832: 25→24, scf: 121→94).
//
// Real benchmark files can replace the suite at any time through
// read_kiss_file(); everything downstream is format-agnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsm/fsm.h"

namespace satpg {

struct FsmGenSpec {
  std::string name;
  int num_inputs = 2;
  int num_outputs = 2;
  int minimal_states = 4;  ///< equivalence classes after minimization
  int padded_states = 4;   ///< raw state count in the generated file
  std::uint64_t seed = 1;
};

/// Generate one machine honouring the guarantees above. CHECK-fails if the
/// repair loop cannot reach the requested class count (never observed for
/// sane specs; the loop budget is generous).
Fsm generate_control_fsm(const FsmGenSpec& spec);

/// The six specs matching the paper's Table 1 (PI, PO, raw states) with
/// post-minimization class counts matching the paper's Table 6 valid-state
/// counts for original circuits (dk16 27, pma 27, s510 47, s820 24,
/// s832 24, scf 94).
std::vector<FsmGenSpec> mcnc_specs();

/// Generate one suite machine by name ("dk16", "pma", "s510", "s820",
/// "s832", "scf"). CHECK-fails on unknown names.
Fsm mcnc_fsm(const std::string& name);

/// Scaled-down spec for fast tests: same shape, fewer states/inputs.
FsmGenSpec scaled_spec(const FsmGenSpec& spec, double scale);

}  // namespace satpg
