// KISS2 reader/writer (the MCNC FSM benchmark interchange format).
//
//   .i 3        number of inputs
//   .o 3        number of outputs
//   .p 108      number of transitions (optional, checked when present)
//   .s 27       number of states (optional, checked when present)
//   .r s0       reset state (optional; defaults to first-mentioned state)
//   -01 s1 s2 010-   transitions: input-cube, from, to, output-cube
//   .e
//
// The synthetic MCNC-substitute suite ships through fsm/mcnc_suite.h, but
// real benchmark files drop straight in via read_kiss_file.
#pragma once

#include <iosfwd>
#include <string>

#include "fsm/fsm.h"

namespace satpg {

Fsm read_kiss(std::istream& is, const std::string& name);
Fsm read_kiss_string(const std::string& text, const std::string& name);
Fsm read_kiss_file(const std::string& path);

void write_kiss(const Fsm& fsm, std::ostream& os);
std::string write_kiss_string(const Fsm& fsm);

}  // namespace satpg
