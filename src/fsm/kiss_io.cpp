#include "fsm/kiss_io.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "base/strutil.h"

namespace satpg {

namespace {
[[noreturn]] void kiss_error(int line, const std::string& msg) {
  throw std::runtime_error("kiss parse error at line " + std::to_string(line) +
                           ": " + msg);
}
}  // namespace

Fsm read_kiss(std::istream& is, const std::string& name) {
  int ni = -1, no = -1, np = -1, ns = -1;
  std::string reset_name;
  struct RawT {
    std::string in, from, to, out;
    int line;
  };
  std::vector<RawT> raw;
  std::string line_text;
  int lineno = 0;
  bool ended = false;
  while (std::getline(is, line_text)) {
    ++lineno;
    std::string line(trim(line_text));
    if (line.empty() || line[0] == '#') continue;
    if (ended) continue;
    const auto tok = split_ws(line);
    if (tok[0] == ".i") {
      if (tok.size() != 2) kiss_error(lineno, ".i needs one argument");
      ni = std::stoi(tok[1]);
    } else if (tok[0] == ".o") {
      if (tok.size() != 2) kiss_error(lineno, ".o needs one argument");
      no = std::stoi(tok[1]);
    } else if (tok[0] == ".p") {
      np = std::stoi(tok[1]);
    } else if (tok[0] == ".s") {
      ns = std::stoi(tok[1]);
    } else if (tok[0] == ".r") {
      if (tok.size() != 2) kiss_error(lineno, ".r needs one argument");
      reset_name = tok[1];
    } else if (tok[0] == ".e" || tok[0] == ".end") {
      ended = true;
    } else if (tok[0][0] == '.') {
      kiss_error(lineno, "unknown directive " + tok[0]);
    } else {
      if (tok.size() != 4) kiss_error(lineno, "transition needs 4 fields");
      raw.push_back({tok[0], tok[1], tok[2], tok[3], lineno});
    }
  }
  if (ni < 0 || no < 0) throw std::runtime_error("kiss: missing .i/.o");

  Fsm fsm(name, ni, no);
  auto state_of = [&fsm](const std::string& s) {
    const int found = fsm.find_state(s);
    return found >= 0 ? found : fsm.add_state(s);
  };
  for (const auto& r : raw) {
    if (static_cast<int>(r.in.size()) != ni)
      kiss_error(r.line, "input cube width mismatch");
    if (static_cast<int>(r.out.size()) != no)
      kiss_error(r.line, "output cube width mismatch");
    FsmTransition t;
    t.input = Cube::from_string(r.in);
    t.from = state_of(r.from);
    t.to = state_of(r.to);
    t.output = Cube::from_string(r.out);
    fsm.add_transition(std::move(t));
  }
  if (np >= 0 && np != static_cast<int>(fsm.transitions().size()))
    throw std::runtime_error("kiss: .p count mismatch");
  if (ns >= 0 && ns != fsm.num_states())
    throw std::runtime_error("kiss: .s count mismatch");
  if (!reset_name.empty()) {
    const int r = fsm.find_state(reset_name);
    if (r < 0) throw std::runtime_error("kiss: reset state never used");
    fsm.set_reset_state(r);
  }
  return fsm;
}

Fsm read_kiss_string(const std::string& text, const std::string& name) {
  std::istringstream is(text);
  return read_kiss(is, name);
}

Fsm read_kiss_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  return read_kiss(is, path);
}

void write_kiss(const Fsm& fsm, std::ostream& os) {
  os << "# " << fsm.name() << "\n";
  os << ".i " << fsm.num_inputs() << "\n";
  os << ".o " << fsm.num_outputs() << "\n";
  os << ".p " << fsm.transitions().size() << "\n";
  os << ".s " << fsm.num_states() << "\n";
  os << ".r " << fsm.state_name(fsm.reset_state()) << "\n";
  for (const auto& t : fsm.transitions()) {
    os << t.input.to_string() << ' ' << fsm.state_name(t.from) << ' '
       << fsm.state_name(t.to) << ' ' << t.output.to_string() << "\n";
  }
  os << ".e\n";
}

std::string write_kiss_string(const Fsm& fsm) {
  std::ostringstream os;
  write_kiss(fsm, os);
  return os.str();
}

}  // namespace satpg
