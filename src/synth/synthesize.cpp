#include "synth/synthesize.h"

#include <algorithm>

#include "fsm/minimize.h"

namespace satpg {

namespace {

// Cube over (inputs + state bits): input part from the transition, state
// part the full minterm of the present state's code.
Cube transition_cube(const FsmTransition& t, const Encoding& enc,
                     std::size_t ni) {
  const std::size_t nv = ni + static_cast<std::size_t>(enc.bits);
  Cube c;
  c.value = BitVec(nv);
  c.care = BitVec(nv);
  for (std::size_t i = 0; i < ni; ++i) {
    if (t.input.care.get(i)) {
      c.care.set(i, true);
      c.value.set(i, t.input.value.get(i));
    }
  }
  const BitVec& code = enc.code[static_cast<std::size_t>(t.from)];
  for (std::size_t b = 0; b < code.size(); ++b) {
    c.care.set(ni + b, true);
    c.value.set(ni + b, code.get(b));
  }
  return c;
}

}  // namespace

TwoLevel build_two_level(const Fsm& fsm, const Encoding& enc,
                         const EspressoOptions& espresso) {
  const std::size_t ni = static_cast<std::size_t>(fsm.num_inputs());
  const std::size_t nb = static_cast<std::size_t>(enc.bits);
  const std::size_t nv = ni + nb;

  // Global DC cubes: unused state codes, any input. (One-hot encodings have
  // astronomically many unused codes; enumerate only when feasible —
  // otherwise the DC set is simply smaller and minimization is weaker,
  // which itself mirrors sparse encodings being harder to optimize.)
  Cover global_dc;
  const bool enumerable =
      nb <= 24 && (1ULL << nb) - enc.code.size() <= 4096;
  if (enumerable) {
    std::vector<bool> used(1ULL << nb, false);
    for (const auto& code : enc.code) used[code.to_u64()] = true;
    for (std::size_t v = 0; v < used.size(); ++v) {
      if (used[v]) continue;
      Cube c;
      c.value = BitVec(nv);
      c.care = BitVec(nv);
      const BitVec code = BitVec::from_value(nb, v);
      for (std::size_t b = 0; b < nb; ++b) {
        c.care.set(ni + b, true);
        c.value.set(ni + b, code.get(b));
      }
      global_dc.push_back(std::move(c));
    }
  } else if (enc.bits == fsm.num_states()) {
    // One-hot (or any encoding with a huge unused-code set): enumerating
    // every invalid code is quadratic suicide — approximate with the
    // empty-state cube (all state bits 0), the dominant invalid pattern
    // minimization can exploit. Sparse encodings thus get a weaker DC set,
    // which itself mirrors how hard they are to optimize.
    Cube c;
    c.value = BitVec(nv);
    c.care = BitVec(nv);
    for (std::size_t b = 0; b < nb; ++b) c.care.set(ni + b, true);
    global_dc.push_back(std::move(c));
  }

  TwoLevel tl;
  tl.num_vars = nv;
  tl.next_state.resize(nb);
  tl.outputs.resize(static_cast<std::size_t>(fsm.num_outputs()));

  // ON sets.
  std::vector<Cover> ns_on(nb);
  std::vector<Cover> out_on(static_cast<std::size_t>(fsm.num_outputs()));
  std::vector<Cover> out_dc(static_cast<std::size_t>(fsm.num_outputs()));
  for (const auto& t : fsm.transitions()) {
    const Cube base = transition_cube(t, enc, ni);
    const BitVec& to_code = enc.code[static_cast<std::size_t>(t.to)];
    for (std::size_t b = 0; b < nb; ++b)
      if (to_code.get(b)) ns_on[b].push_back(base);
    for (std::size_t o = 0; o < out_on.size(); ++o) {
      if (!t.output.care.get(o))
        out_dc[o].push_back(base);
      else if (t.output.value.get(o))
        out_on[o].push_back(base);
    }
  }

  for (std::size_t b = 0; b < nb; ++b)
    tl.next_state[b] = espresso_lite(ns_on[b], global_dc, nv, espresso);
  for (std::size_t o = 0; o < out_on.size(); ++o) {
    Cover dc = global_dc;
    dc.insert(dc.end(), out_dc[o].begin(), out_dc[o].end());
    tl.outputs[o] = espresso_lite(out_on[o], dc, nv, espresso);
  }
  return tl;
}

Netlist covers_to_netlist(const Fsm& fsm, const Encoding& enc,
                          const TwoLevel& tl, bool add_reset,
                          const std::string& name) {
  const std::size_t ni = static_cast<std::size_t>(fsm.num_inputs());
  const std::size_t nb = static_cast<std::size_t>(enc.bits);
  Netlist nl(name);

  std::vector<NodeId> pis;
  for (std::size_t i = 0; i < ni; ++i)
    pis.push_back(nl.add_input("x" + std::to_string(i)));
  const NodeId rst = add_reset ? nl.add_input("rst") : kNoNode;

  // FFs created with a placeholder driver; patched after covers build.
  std::vector<NodeId> ffs;
  const NodeId placeholder =
      pis.empty() ? nl.add_const(false, "ph") : pis[0];
  for (std::size_t b = 0; b < nb; ++b)
    ffs.push_back(
        nl.add_dff("st" + std::to_string(b), placeholder, FfInit::kUnknown));

  // Literal accessors with shared inverters, created lazily.
  std::vector<NodeId> inv_cache(ni + nb, kNoNode);
  auto var_node = [&](std::size_t v) {
    return v < ni ? pis[v] : ffs[v - ni];
  };
  auto literal = [&](std::size_t v, bool positive) -> NodeId {
    if (positive) return var_node(v);
    NodeId& slot = inv_cache[v];
    if (slot == kNoNode)
      slot = nl.add_gate(GateType::kNot, "n" + std::to_string(v),
                         {var_node(v)});
    return slot;
  };

  NodeId const0 = kNoNode, const1 = kNoNode;
  auto get_const = [&](bool v) -> NodeId {
    NodeId& slot = v ? const1 : const0;
    if (slot == kNoNode) slot = nl.add_const(v, v ? "one" : "zero");
    return slot;
  };

  int gate_seq = 0;
  auto build_cover = [&](const Cover& cover) -> NodeId {
    std::vector<NodeId> terms;
    for (const auto& cube : cover) {
      std::vector<NodeId> lits;
      for (std::size_t v = cube.care.find_first(); v < cube.care.size();
           v = cube.care.find_next(v))
        lits.push_back(literal(v, cube.value.get(v)));
      if (lits.empty()) return get_const(true);  // tautology cube
      if (lits.size() == 1) {
        terms.push_back(lits[0]);
      } else {
        terms.push_back(nl.add_gate(GateType::kAnd,
                                    "p" + std::to_string(gate_seq++), lits));
      }
    }
    if (terms.empty()) return get_const(false);
    if (terms.size() == 1) return terms[0];
    return nl.add_gate(GateType::kOr, "s" + std::to_string(gate_seq++),
                       terms);
  };

  // Next-state logic with the reset line folded in:
  //   d_b = rst ? reset_code_b : ns_b
  // i.e. OR(ns_b, rst) where the reset code bit is 1, AND(ns_b, !rst)
  // where it is 0. Minimum-bit encoders place reset at all-zero so the OR
  // branch is exercised only by one-hot/ablation encodings.
  const BitVec& reset_code =
      enc.code[static_cast<std::size_t>(fsm.reset_state())];
  NodeId not_rst = kNoNode;
  for (std::size_t b = 0; b < nb; ++b) {
    NodeId d = build_cover(tl.next_state[b]);
    if (add_reset) {
      if (reset_code.get(b)) {
        d = nl.add_gate(GateType::kOr, "rd" + std::to_string(b), {d, rst});
      } else {
        if (not_rst == kNoNode)
          not_rst = nl.add_gate(GateType::kNot, "nrst", {rst});
        d = nl.add_gate(GateType::kAnd, "rd" + std::to_string(b),
                        {d, not_rst});
      }
    }
    nl.set_fanin(ffs[b], 0, d);
  }
  for (std::size_t o = 0; o < tl.outputs.size(); ++o)
    nl.add_output("z" + std::to_string(o), build_cover(tl.outputs[o]));

  SATPG_CHECK(nl.validate() == std::nullopt);
  return nl;
}

SynthResult synthesize(const Fsm& fsm, const SynthOptions& opts) {
  SynthResult result{Netlist(""), Encoding{}, minimize_fsm(fsm), ""};
  const Fsm& m = result.minimized;
  result.encoding = assign_states(m, opts.encode, opts.seed);
  const TwoLevel tl = build_two_level(
      m, result.encoding, script_espresso_options(opts.script, opts.seed));
  result.name = fsm.name() + std::string(encode_algo_suffix(opts.encode)) +
                script_suffix(opts.script);
  result.netlist =
      covers_to_netlist(m, result.encoding, tl, opts.add_reset, result.name);
  run_script(result.netlist, opts.script);
  return result;
}

}  // namespace satpg
