// Multi-level synthesis scripts (script.rugged / script.delay substitutes).
//
// The SIS scripts differ in optimization goal: script.rugged grinds on
// area (algebraic factoring, sharing), script.delay on speed (balanced
// structures, duplication tolerated). The substitutes here keep exactly
// that trade-off:
//
//   kRugged (.sr): 2-pass espresso, common-cube extraction across product
//                  terms, structural sharing, chain decomposition.
//   kDelay  (.sd): 1-pass espresso, no sharing, balanced-tree
//                  decomposition.
//
// Both end in tech_map() so every circuit is in library gates.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"
#include "synth/cover.h"

namespace satpg {

enum class ScriptKind { kRugged, kDelay };

/// Paper-style suffix: ".sr" / ".sd".
const char* script_suffix(ScriptKind kind);

/// Espresso effort for the script.
EspressoOptions script_espresso_options(ScriptKind kind, std::uint64_t seed);

/// Multi-level restructuring over a two-level AND-OR netlist, ending in a
/// mapped, annotated netlist.
void run_script(Netlist& nl, ScriptKind kind);

/// Common-cube extraction: repeatedly extract the most frequent fanin pair
/// shared among AND gates (≥3 inputs) into an AND2. Exposed for tests;
/// returns the number of extractions performed.
int extract_common_cubes(Netlist& nl);

}  // namespace satpg
